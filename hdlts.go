package hdlts

import (
	"context"
	"io"
	"math/rand"
	"time"

	"hdlts/internal/core"
	"hdlts/internal/dag"
	"hdlts/internal/gen"
	"hdlts/internal/jobs"
	"hdlts/internal/metrics"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
	"hdlts/internal/server"
	"hdlts/internal/viz"
	"hdlts/internal/workflows"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Graph is a directed acyclic application workflow.
	Graph = dag.Graph
	// TaskID identifies a task within a Graph.
	TaskID = dag.TaskID
	// Task is one schedulable workflow node.
	Task = dag.Task
	// Arc is a directed dependency as seen from one endpoint.
	Arc = dag.Arc
	// Platform is a heterogeneous processor set with a bandwidth model.
	Platform = platform.Platform
	// Proc identifies a processor within a Platform.
	Proc = platform.Proc
	// Costs is the task × processor execution-time matrix (W of Eq. 1).
	Costs = platform.Costs
	// Problem bundles a workflow, a platform, and a cost matrix.
	Problem = sched.Problem
	// Schedule is a mapping of tasks (and entry duplicates) onto processors.
	Schedule = sched.Schedule
	// Placement records where one copy of a task executes.
	Placement = sched.Placement
	// Algorithm is any workflow scheduler in this library.
	Algorithm = sched.Algorithm
	// Policy selects insertion- vs avail-based placement and entry
	// duplication during EST/EFT computation.
	Policy = sched.Policy
	// Result carries the paper's metrics for one schedule.
	Result = metrics.Result
	// GenParams parameterises the Table II random-graph generator.
	GenParams = gen.Params
	// CostParams parameterises cost assignment for fixed workflow structures.
	CostParams = gen.CostParams
	// HDLTSOptions tunes HDLTS ablation variants.
	HDLTSOptions = core.Options
	// TraceStep is one ITQ iteration of an HDLTS trace (Table I rows).
	TraceStep = core.Step
)

// Estimate is one (task, processor) evaluation: ready time, EST, and EFT.
// Custom schedulers obtain estimates via Schedule.Estimate / BestEFT and
// commit them with Schedule.Commit.
type Estimate = sched.Estimate

// NewGraph returns an empty workflow with capacity for n tasks.
func NewGraph(n int) *Graph { return dag.New(n) }

// NewSchedule returns an empty schedule for the problem — the entry point
// for implementing custom scheduling algorithms on this library's
// substrate: obtain per-processor estimates with Schedule.Estimate (under a
// Policy), commit them with Schedule.Commit, and finish with
// Schedule.Validate. See examples/customsched.
func NewSchedule(pr *Problem) *Schedule { return sched.NewSchedule(pr) }

// InsertionPolicy is the insertion-based placement policy (HEFT et al.).
var InsertionPolicy = sched.InsertionPolicy

// HDLTSPolicy is the paper's avail-based policy with entry duplication.
var HDLTSPolicy = sched.HDLTSPolicy

// NewUniformPlatform returns a fully connected platform of p processors
// with unit bandwidth (communication time equals edge data volume).
func NewUniformPlatform(p int) (*Platform, error) { return platform.NewUniform(p) }

// NewPlatformWithBandwidth returns a platform with the given symmetric
// pairwise bandwidth matrix.
func NewPlatformWithBandwidth(b [][]float64) (*Platform, error) {
	return platform.NewWithBandwidth(b)
}

// CostsFromRows builds a cost matrix from per-task rows (tasks × procs).
func CostsFromRows(rows [][]float64) (*Costs, error) { return platform.CostsFromRows(rows) }

// NewProblem validates and bundles a problem instance.
func NewProblem(g *Graph, p *Platform, w *Costs) (*Problem, error) {
	return sched.NewProblem(g, p, w)
}

// NewHDLTS returns the paper's scheduler in its published configuration.
func NewHDLTS() Algorithm { return core.New() }

// NewHDLTSWithOptions returns an HDLTS ablation variant (duplication off,
// insertion placement, population-σ penalty values).
func NewHDLTSWithOptions(o HDLTSOptions) Algorithm { return core.NewWithOptions(o) }

// ScheduleWithTrace runs HDLTS and returns the per-iteration trace — ready
// sets, penalty values, EFT vectors, selections — i.e. the rows of the
// paper's Table I.
func ScheduleWithTrace(pr *Problem) (*Schedule, []TraceStep, error) {
	return core.New().ScheduleTrace(pr)
}

// Algorithms returns HDLTS plus the five baselines (HEFT, PETS, CPOP, PEFT,
// SDBATS), each in its canonical published configuration.
func Algorithms() []Algorithm { return registry.All() }

// PaperModeAlgorithms returns the same six schedulers with uniform
// avail-based placement — the configuration under which the paper's
// comparison shape reproduces (see EXPERIMENTS.md).
func PaperModeAlgorithms() []Algorithm { return registry.PaperMode() }

// GetAlgorithm looks an algorithm up by case-insensitive name: the paper's
// six ("hdlts", "heft", "cpop", "pets", "peft", "sdbats") plus the extra
// reference schedulers ("dheft", "dls", "dsc", "ga", "mct", "minmin",
// "maxmin").
func GetAlgorithm(name string) (Algorithm, error) { return registry.Get(name) }

// Evaluate computes makespan, SLR, speedup, and efficiency for a completed
// schedule.
func Evaluate(algorithm string, s *Schedule) (Result, error) {
	return metrics.Evaluate(algorithm, s)
}

// SLR returns the Scheduling Length Ratio (Eq. 10) for a makespan on a
// problem.
func SLR(pr *Problem, makespan float64) (float64, error) { return metrics.SLR(pr, makespan) }

// Speedup returns Eq. 11 for a makespan on a problem.
func Speedup(pr *Problem, makespan float64) (float64, error) { return metrics.Speedup(pr, makespan) }

// Efficiency returns Eq. 12 for a makespan on a problem.
func Efficiency(pr *Problem, makespan float64) (float64, error) {
	return metrics.Efficiency(pr, makespan)
}

// RPD returns each makespan's Relative Percentage Deviation from the best
// one in the slice — the standard same-instance cross-algorithm comparison.
func RPD(makespans []float64) ([]float64, error) { return metrics.RPD(makespans) }

// RandomProblem generates a synthetic problem from the Table II parameter
// model; all randomness is drawn from rng.
func RandomProblem(p GenParams, rng *rand.Rand) (*Problem, error) { return gen.Random(p, rng) }

// RandomGraph generates only the DAG structure for the parameters.
func RandomGraph(p GenParams, rng *rand.Rand) (*Graph, error) { return gen.Graph(p, rng) }

// AssignCosts draws Eq. 13–14 costs for a fixed workflow structure.
func AssignCosts(g *Graph, c CostParams, rng *rand.Rand) (*Problem, error) {
	return gen.AssignCosts(g, c, rng)
}

// PaperExample returns the Fig. 1 instance (10 tasks, 3 processors); HDLTS
// schedules it with makespan 73, HEFT with 80.
func PaperExample() *Problem { return workflows.PaperExample() }

// FFTGraph returns the FFT workflow structure for m input points
// (2(m−1)+1 recursive + m·log₂m butterfly tasks).
func FFTGraph(m int) (*Graph, error) { return workflows.FFTGraph(m) }

// MontageGraph returns the n-task Montage workflow structure.
func MontageGraph(n int) (*Graph, error) { return workflows.MontageGraph(n) }

// MolDynGraph returns the fixed 41-task Molecular Dynamics workflow.
func MolDynGraph() *Graph { return workflows.MolDynGraph() }

// GaussianGraph returns the Gaussian-elimination workflow for an m×m
// matrix: (m²+m−2)/2 tasks.
func GaussianGraph(m int) (*Graph, error) { return workflows.GaussianGraph(m) }

// EpigenomicsGraph returns the Epigenomics pipeline workflow for the given
// number of parallel lanes: 4·lanes + 4 tasks.
func EpigenomicsGraph(lanes int) (*Graph, error) { return workflows.EpigenomicsGraph(lanes) }

// CyberShakeGraph returns the CyberShake seismic workflow for the given
// number of rupture variations: 2·vars + 4 tasks.
func CyberShakeGraph(vars int) (*Graph, error) { return workflows.CyberShakeGraph(vars) }

// LIGOGraph returns the LIGO Inspiral workflow for the given number of
// analysis blocks: 4·blocks + 2·ceil(blocks/3) tasks.
func LIGOGraph(blocks int) (*Graph, error) { return workflows.LIGOGraph(blocks) }

// TwoClusters returns a fully connected platform split into two clusters
// with distinct intra- and inter-cluster bandwidths.
func TwoClusters(size1, size2 int, intra, inter float64) (*Platform, error) {
	return platform.TwoClusters(size1, size2, intra, inter)
}

// AssignCostsOn is AssignCosts against an explicit (e.g. two-cluster)
// platform.
func AssignCostsOn(g *Graph, pl *Platform, c CostParams, rng *rand.Rand) (*Problem, error) {
	return gen.AssignCostsOn(g, pl, c, rng)
}

// ExtendedAlgorithms returns the paper's six schedulers plus the extra
// reference schedulers (DHEFT, DLS, DSC, GA, MCT, Min-Min, Max-Min).
func ExtendedAlgorithms() []Algorithm { return registry.Extended() }

// MergeGraphs combines several workflows into one multi-entry/exit graph
// for co-scheduling on a shared platform; offsets[i] is the ID shift of
// input i's tasks.
func MergeGraphs(graphs ...*Graph) (*Graph, []TaskID, error) { return dag.Merge(graphs...) }

// GraphStats summarises a workflow's structure (size, shape, degrees).
type GraphStats = dag.GraphStats

// ComputeStats derives GraphStats for an acyclic workflow.
func ComputeStats(g *Graph) (*GraphStats, error) { return dag.ComputeStats(g) }

// ReadDOT imports a workflow from the Graphviz-DOT subset this library
// emits (see dag.ReadDOT for the accepted grammar).
func ReadDOT(r io.Reader) (*Graph, error) { return dag.ReadDOT(r) }

// SlackReport carries per-task schedule float; see Schedule.ComputeSlack.
type SlackReport = sched.SlackReport

// Compact re-times a complete schedule as early as feasible while keeping
// every assignment and per-processor order; the result never has a larger
// makespan. (Schedules from the built-in algorithms are already tight;
// this is for externally produced or edited schedules.)
func Compact(s *Schedule) (*Schedule, error) { return s.Compact() }

// Analysis summarises a completed schedule (utilisation, load imbalance,
// communication volume); obtain one with Schedule.Analyze.
type Analysis = sched.Analysis

// WriteGanttSVG renders a completed schedule as an SVG Gantt chart.
func WriteGanttSVG(w io.Writer, s *Schedule, title string) error {
	return viz.WriteGanttSVG(w, s, viz.GanttConfig{Title: title})
}

// Observability re-exports. Attach a Tracer to a Problem with
// Problem.WithTracer to receive structured decision events from any
// scheduler or the online executor; see docs/OBSERVABILITY.md.
type (
	// Tracer receives structured scheduling events; implementations must be
	// safe for concurrent use. The default on every Problem is a no-op.
	Tracer = obs.Tracer
	// Event is one structured scheduling decision (iteration, PV, estimate,
	// commit, dispatch, completion, failure, drain, or replan).
	Event = obs.Event
	// EventType discriminates Event records.
	EventType = obs.EventType
	// Stats is a registry of counters, gauges, and timing histograms with
	// Prometheus-text and JSON exposition.
	Stats = obs.Registry
	// JSONLTracer streams events as JSON Lines (one object per line).
	JSONLTracer = obs.JSONLSink
	// ChromeTracer accumulates events into a Chrome trace-event JSON
	// (chrome://tracing / Perfetto): one process track per algorithm, one
	// thread lane per processor, one span per committed task execution.
	ChromeTracer = obs.ChromeSink
	// EventCollector buffers events in memory for tests and analysis.
	EventCollector = obs.Collector
)

// NopTracer is the guaranteed-allocation-free tracer every untraced
// Problem uses.
var NopTracer = obs.Nop

// NewJSONLTracer returns a tracer streaming events to w as JSON Lines.
// Call Flush when done.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return obs.NewJSONL(w) }

// NewChromeTracer returns a tracer accumulating a Chrome trace; render it
// with WriteJSON after scheduling.
func NewChromeTracer() *ChromeTracer { return obs.NewChrome() }

// NewEventCollector returns an in-memory event buffer.
func NewEventCollector() *EventCollector { return obs.NewCollector() }

// MultiTracer fans events out to several tracers.
func MultiTracer(ts ...Tracer) Tracer { return obs.Multi(ts...) }

// NamedTracer stamps un-attributed events with an algorithm name — use it
// when tracing several algorithms into one sink.
func NamedTracer(t Tracer, alg string) Tracer { return obs.Named(t, alg) }

// DefaultStats returns the process-wide metrics registry populated by the
// schedulers, the validator, the online executor, and the experiment
// runner.
func DefaultStats() *Stats { return obs.Default() }

// Span-tracing re-exports. Where Event records what a scheduler decided,
// a Span records how long one operation took and under which parent; the
// trace ID flows through context.Context so the HTTP layer, the job
// subsystem, and the scheduler all stamp the same correlation ID. See
// docs/OBSERVABILITY.md ("Correlating a request end-to-end").
type (
	// Span is one timed operation in a trace (trace ID, span ID, parent,
	// name, start/end, attributes).
	Span = obs.Span
	// Trace is one recorded trace: the span tree plus the decision events
	// captured while it was active.
	Trace = obs.Trace
	// TraceStore is the bounded in-memory ring of recent traces backing the
	// service's GET /v1/jobs/{id}/trace and GET /v1/traces/{id}.
	TraceStore = obs.TraceStore
	// RuntimeCollector polls runtime/metrics into a Stats registry
	// (goroutines, heap, GC pauses, scheduler latency).
	RuntimeCollector = obs.RuntimeCollector
	// BuildInfo identifies the running binary (module version, Go
	// toolchain, VCS revision).
	BuildInfo = obs.BuildInfo
)

// NewTraceStore returns a trace ring retaining capacity traces and
// recording one in every sample new trace IDs (sample <= 1 records all).
func NewTraceStore(capacity, sample int) *TraceStore { return obs.NewTraceStore(capacity, sample) }

// StartSpan begins a span under ctx's current span. It is free — nil span,
// no allocation — unless ctx carries a trace store (WithTraceStore) and a
// retained trace ID (WithTraceID); nil-span methods are safe no-ops.
func StartSpan(ctx context.Context, name string, attrs ...string) (context.Context, *Span) {
	return obs.StartSpan(ctx, name, attrs...)
}

// WithTraceID returns ctx carrying the correlation ID every downstream
// span, job record, and decision event will stamp.
func WithTraceID(ctx context.Context, traceID string) context.Context {
	return obs.WithTraceID(ctx, traceID)
}

// TraceIDFrom returns the correlation ID carried by ctx, or "".
func TraceIDFrom(ctx context.Context) string { return obs.TraceIDFrom(ctx) }

// WithTraceStore returns ctx carrying the store StartSpan records into.
func WithTraceStore(ctx context.Context, ts *TraceStore) context.Context {
	return obs.WithTraceStore(ctx, ts)
}

// StartRuntimeTelemetry polls runtime/metrics into reg every interval
// under series named prefix_* (e.g. "hdltsd_runtime"); Stop the collector
// to end polling. A nil reg uses DefaultStats().
func StartRuntimeTelemetry(reg *Stats, prefix string, interval time.Duration) *RuntimeCollector {
	return obs.StartRuntime(reg, prefix, interval)
}

// ReadBuildInfo reports the running binary's identity from the build
// metadata the Go linker embedded.
func ReadBuildInfo() BuildInfo { return obs.ReadBuild() }

// Service re-exports. NewService returns the scheduler-as-a-service
// HTTP handler cmd/hdltsd serves — embed it in your own http.Server (or
// mount it under a prefix) to serve schedules next to other endpoints.
// See docs/SERVICE.md for endpoints and wire schemas.
type (
	// Service is the daemon's http.Handler: POST /v1/schedule, the
	// asynchronous /v1/jobs family (including GET /v1/jobs/{id}/trace),
	// GET /v1/algorithms, /v1/traces/{id}, /v1/version, /healthz, /readyz,
	// /metrics. Call Drain on SIGTERM and Shutdown to wait for in-flight
	// requests.
	Service = server.Server
	// ServiceConfig tunes workers, queue depth, per-request timeouts, body
	// limits, metrics registry, access logging, algorithm lookup, and the
	// job subsystem. The zero value serves with defaults.
	ServiceConfig = server.Config
	// ScheduleRequest is the POST /v1/schedule wire request.
	ScheduleRequest = server.ScheduleRequest
	// ScheduleResponse is the POST /v1/schedule wire response.
	ScheduleResponse = server.ScheduleResponse
)

// NewService builds the scheduling service handler from cfg. The error is
// the durable job store failing to open (unreadable or corrupt directory).
func NewService(cfg ServiceConfig) (*Service, error) { return server.New(cfg) }

// Asynchronous job re-exports. POST /v1/jobs decouples submission from
// execution: jobs survive daemon restarts via a write-ahead log when
// JobsConfig.Dir is set, identical problems are answered from a
// content-addressed result cache, and finished jobs expire after a TTL.
type (
	// Job is one asynchronous scheduling request and its lifecycle state.
	Job = jobs.Job
	// JobState is a job lifecycle phase: queued, running, done, failed, or
	// cancelled.
	JobState = jobs.State
	// JobsConfig tunes the job subsystem (ServiceConfig.Jobs): store
	// directory, workers, queue depth, retry policy, TTL, cache size.
	JobsConfig = jobs.Config
	// JobManager is the job subsystem behind /v1/jobs; reach it via
	// Service.Jobs for embedded submission without HTTP.
	JobManager = jobs.Manager
)

// CanonicalProblemHash returns the content address the job subsystem's
// result cache uses for one (algorithm, problem) pair: sha256 over the
// canonical algorithm name and the canonical problem serialisation.
func CanonicalProblemHash(algorithm string, pr *Problem) (string, error) {
	return server.CanonicalHash(algorithm, pr)
}
