package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"hdlts/internal/obs"
)

// The store is a two-file durability scheme in one directory:
//
//	snapshot.json — a JSON array of jobs, the state as of the last compaction
//	wal.jsonl     — one record per state transition since that snapshot
//
// Every transition appends the full job to the WAL and fsyncs, so the
// newest record for an ID wins on replay. When the WAL grows past a few
// multiples of the live set, compact writes a fresh snapshot (tmp file +
// rename, fsynced) and truncates the WAL. Load order is snapshot first,
// then WAL replay; a torn final line — the expected debris of SIGKILL
// mid-append — ends replay cleanly, losing at most the transition being
// written.

const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.jsonl"
)

// walRecord is one WAL line: a full-job upsert or a deletion.
type walRecord struct {
	Op  string `json:"op"`            // "put" | "del"
	Job *Job   `json:"job,omitempty"` // put payload
	ID  string `json:"id,omitempty"`  // del payload
}

// encodeRecord renders one WAL line (terminating newline included) so the
// Manager can stage records in memory and write them in batches.
func encodeRecord(rec walRecord) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("jobs: encode wal record: %w", err)
	}
	return append(b, '\n'), nil
}

// store owns the open WAL file handle and compaction bookkeeping for one
// two-file durability directory. It is record-agnostic: recovery is driven
// by the snapshot/replay callbacks passed to openStore, and writes take
// pre-encoded lines — so the same mechanics back both the job table here
// and the workflow records of internal/exec (via Log). All methods are
// called under the owner's WAL-writer lock, never under its table lock, so
// disk latency is invisible to readers.
type store struct {
	dir     string
	f       *os.File
	appends int // WAL records since the last compaction

	// minCompact floors the compaction trigger so small stores don't
	// rewrite the snapshot on every few transitions.
	minCompact int

	fsync *obs.Histogram // WAL fsync latency, owner-named
}

// openStore opens (creating if needed) the store in dir, recovering state
// through the two callbacks: snapshot receives the last compaction's
// payload (not called when none exists), then replay receives each WAL
// line in file order and reports whether it decoded — the first false
// stops replay, because after a crash mid-append the final line may be
// torn while everything before it is intact (each append was fsynced).
func openStore(dir string, fsync *obs.Histogram, snapshot func([]byte) error, replay func(line []byte) bool) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create store dir: %w", err)
	}
	b, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	switch {
	case os.IsNotExist(err):
	case err != nil:
		return nil, fmt.Errorf("jobs: read snapshot: %w", err)
	default:
		if err := snapshot(b); err != nil {
			return nil, err
		}
	}
	walPath := filepath.Join(dir, walFile)
	appends, err := replayWAL(walPath, replay)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open wal: %w", err)
	}
	return &store{dir: dir, f: f, appends: appends, minCompact: 256, fsync: fsync}, nil
}

// loadJobSnapshot decodes the snapshot payload into the job table.
func loadJobSnapshot(jobs map[string]*Job) func([]byte) error {
	return func(b []byte) error {
		var list []*Job
		if err := json.Unmarshal(b, &list); err != nil {
			return fmt.Errorf("jobs: decode snapshot: %w", err)
		}
		for _, j := range list {
			jobs[j.ID] = j
		}
		return nil
	}
}

// applyJobRecord decodes one WAL line into the job table, reporting false
// on the torn tail a crash mid-append leaves behind.
func applyJobRecord(jobs map[string]*Job) func(line []byte) bool {
	return func(line []byte) bool {
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return false
		}
		switch rec.Op {
		case "put":
			if rec.Job != nil && rec.Job.ID != "" {
				jobs[rec.Job.ID] = rec.Job
			}
		case "del":
			delete(jobs, rec.ID)
		}
		return true
	}
}

// replayWAL feeds every WAL line to apply in file order and returns how
// many records the WAL holds. Replay stops at the first line apply rejects.
func replayWAL(path string, apply func(line []byte) bool) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("jobs: open wal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	n := 0
	for sc.Scan() {
		if !apply(sc.Bytes()) {
			break // torn tail from a crash mid-append
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("jobs: replay wal: %w", err)
	}
	return n, nil
}

// appendBatch durably writes a group of pre-encoded records: one write,
// one fsync (timed into the fsync histogram) for the whole batch. Group
// commit is what keeps the fsync cost amortised across every transition
// staged since the previous flush.
func (s *store) appendBatch(encoded [][]byte) error {
	if len(encoded) == 0 {
		return nil
	}
	var buf []byte
	for _, b := range encoded {
		buf = append(buf, b...)
	}
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("jobs: append wal: %w", err)
	}
	start := time.Now()
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("jobs: fsync wal: %w", err)
	}
	if s.fsync != nil {
		s.fsync.ObserveSince(start)
	}
	s.appends += len(encoded)
	return nil
}

// shouldCompact reports whether the WAL holds several times more records
// than there are live jobs, flooring at minCompact.
func (s *store) shouldCompact(live int) bool {
	threshold := 4 * live
	if threshold < s.minCompact {
		threshold = s.minCompact
	}
	return s.appends >= threshold
}

// encodeSnapshot renders the live set, ordered by submission sequence, as
// the snapshot.json payload. Called under the job-table lock so the jobs
// cannot mutate mid-marshal; the file I/O happens later in compactWith.
func encodeSnapshot(live map[string]*Job) ([]byte, error) {
	list := make([]*Job, 0, len(live))
	for _, j := range live {
		list = append(list, j)
	}
	sort.Slice(list, func(i, k int) bool { return list[i].Seq < list[k].Seq })
	b, err := json.Marshal(list)
	if err != nil {
		return nil, fmt.Errorf("jobs: encode snapshot: %w", err)
	}
	return b, nil
}

// compactWith writes the pre-encoded snapshot atomically (tmp + fsync +
// rename) and truncates the WAL.
func (s *store) compactWith(b []byte) error {
	tmp := filepath.Join(s.dir, snapshotFile+".tmp")
	tf, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: create snapshot: %w", err)
	}
	if _, err := tf.Write(b); err != nil {
		tf.Close()
		return fmt.Errorf("jobs: write snapshot: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("jobs: fsync snapshot: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("jobs: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotFile)); err != nil {
		return fmt.Errorf("jobs: publish snapshot: %w", err)
	}
	// The snapshot now covers everything; restart the WAL.
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("jobs: close wal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(s.dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: truncate wal: %w", err)
	}
	s.f = f
	s.appends = 0
	return nil
}

// close releases the WAL file handle.
func (s *store) close() error { return s.f.Close() }
