package jobs

import (
	"sync"

	"hdlts/internal/obs"
)

// Log is the exported face of the two-file durability scheme (snapshot +
// fsynced JSONL WAL with compaction) for subsystems other than the job
// table — the workflow executor (internal/exec) persists its records
// through one. The Log is record-agnostic: recovery callbacks and
// pre-encoded lines keep the payload schema with the owner, while torn-
// tail-tolerant replay, group-committed appends, and atomic snapshot
// compaction stay here, shared with the Manager's store.
//
// The intended locking discipline mirrors the Manager's: the owner stages
// encoded records under its own table lock, then calls Append *after*
// releasing it. Append and CompactIfDue serialise on the Log's internal
// writer lock, so the owner's readers are never exposed to fsync latency.
type Log struct {
	// mu is the WAL-writer lock: it serialises appends and compaction and
	// is never held by the owner's table-reading paths.
	mu sync.Mutex
	st *store
}

// OpenLog opens (creating if needed) the store in dir and replays its
// state through the callbacks: snapshot receives the last compaction's
// payload (skipped when none exists), then replay receives each WAL line
// in file order and reports whether it decoded — the first undecodable
// line ends replay cleanly, losing at most the record a crash tore.
// fsync, when non-nil, observes the per-batch fsync latency.
func OpenLog(dir string, fsync *obs.Histogram, snapshot func([]byte) error, replay func(line []byte) bool) (*Log, error) {
	st, err := openStore(dir, fsync, snapshot, replay)
	if err != nil {
		return nil, err
	}
	return &Log{st: st}, nil
}

// Append durably writes a batch of pre-encoded WAL lines (terminating
// newlines included): one write, one fsync for the whole group.
func (l *Log) Append(batch [][]byte) error {
	if len(batch) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	//lint:hdltsvet-ignore lockedio mu is the WAL-writer lock; its whole purpose is covering this batch write
	return l.st.appendBatch(batch)
}

// CompactIfDue rewrites the snapshot and truncates the WAL when the WAL
// has outgrown the live set. live and snapshot are called under the
// writer lock (and may take the owner's table lock — writer-before-table
// is the shared lock order); snapshot runs only when compaction is due,
// so the owner does not pay for encoding on every call.
func (l *Log) CompactIfDue(live func() int, snapshot func() ([]byte, error)) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.st.shouldCompact(live()) {
		return nil
	}
	b, err := snapshot()
	if err != nil {
		return err
	}
	//lint:hdltsvet-ignore lockedio compaction runs under the WAL-writer lock by design; the owner's table lock is not held
	return l.st.compactWith(b)
}

// Close releases the WAL file handle, serialising with any in-flight
// append or compaction.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	//lint:hdltsvet-ignore lockedio shutdown path: closing the WAL must serialise with the final append under the writer lock
	return l.st.close()
}
