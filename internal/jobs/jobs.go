// Package jobs is the daemon's durable asynchronous job subsystem: submit
// a scheduling problem now, collect the result later. A job moves through
// queued → running → done | failed | cancelled, survives daemon restarts
// via a file-backed JSONL write-ahead log with snapshot compaction, and is
// executed by a bounded worker pool with per-job retry, exponential
// backoff, and TTL-based garbage collection of finished jobs.
//
// In front of execution sits a content-addressed result cache: callers
// submit a problem together with its canonical hash (see the server
// codec's CanonicalHash), duplicate in-flight submissions coalesce onto
// the active job singleflight-style, and completed results are served
// from an LRU without re-solving — scheduling is deterministic for a
// given (algorithm, problem) pair, so a cached answer is the answer.
//
// The package is deliberately ignorant of scheduling: execution is a
// RunFunc provided by the embedding layer (internal/server wires it to
// the schedule → validate → evaluate pipeline), and both the problem and
// the result are opaque JSON.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"time"
)

// State is one phase of the job lifecycle.
type State string

// The lifecycle: a job is admitted queued, a worker moves it to running,
// and it finishes done, failed (attempts exhausted), or cancelled.
const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// States lists every state in lifecycle order (gauge registration, docs).
var States = []State{Queued, Running, Done, Failed, Cancelled}

// Terminal reports whether a job in this state will never run again.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled
}

// Valid reports whether s is one of the five lifecycle states.
func (s State) Valid() bool {
	for _, t := range States {
		if s == t {
			return true
		}
	}
	return false
}

// Job is one asynchronous scheduling request. The struct is both the wire
// unit the WAL persists and the value the Manager hands back to callers
// (always as a private copy — mutating a returned Job affects nothing).
type Job struct {
	// ID is the unique job handle ("j-" + 16 hex chars).
	ID string `json:"id"`
	// Algorithm is the canonical registry name the job runs.
	Algorithm string `json:"algorithm"`
	// Hash is the content address of (algorithm, problem) — the cache and
	// coalescing key.
	Hash string `json:"hash"`
	// TraceID correlates this job with the HTTP request that submitted it:
	// the same ID appears in the X-Request-ID response header, the access
	// log, and the span/decision-event trace. Persisted with the job, so
	// the correlation survives crash recovery.
	TraceID string `json:"trace_id,omitempty"`
	// Problem is the canonically serialised problem, kept so a recovered
	// job can re-run without the original request.
	Problem json.RawMessage `json:"problem,omitempty"`
	// State is the current lifecycle phase.
	State State `json:"state"`
	// Attempts counts execution attempts consumed so far.
	Attempts int `json:"attempts"`
	// MaxAttempts bounds Attempts; the job fails when they are exhausted.
	MaxAttempts int `json:"max_attempts"`
	// Error holds the last execution error (failed jobs, and jobs awaiting
	// a retry).
	Error string `json:"error,omitempty"`
	// Result is the opaque JSON the RunFunc produced (done jobs only).
	Result json.RawMessage `json:"result,omitempty"`
	// CacheHit marks a job answered from the result cache without running.
	CacheHit bool `json:"cache_hit,omitempty"`
	// CancelRequested marks a running job whose result will be discarded.
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Seq orders jobs by submission (monotonic across restarts).
	Seq uint64 `json:"seq"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
}

// clone returns an independent copy safe to hand outside the Manager's
// lock. RawMessage contents are shared but never mutated after being set.
func (j *Job) clone() *Job {
	c := *j
	return &c
}

// newID draws a fresh job handle from crypto/rand; IDs stay unique across
// restarts without any persisted counter.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; there is no sensible
		// degraded mode for handle allocation.
		panic("jobs: crypto/rand: " + err.Error())
	}
	return "j-" + hex.EncodeToString(b[:])
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrNotFound: no job with that ID (404).
	ErrNotFound = errors.New("jobs: no such job")
	// ErrSaturated: the job queue is full; retry later (429).
	ErrSaturated = errors.New("jobs: queue full")
	// ErrFinished: the job already reached a terminal state (409 on cancel).
	ErrFinished = errors.New("jobs: job already finished")
	// ErrClosed: the manager has shut down (503).
	ErrClosed = errors.New("jobs: manager closed")
)
