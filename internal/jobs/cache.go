package jobs

import (
	"container/list"
	"encoding/json"
)

// lru is a plain least-recently-used result cache: content hash → opaque
// result JSON. It is not self-locking — every call happens under the
// Manager's mutex.
type lru struct {
	cap int
	ll  *list.List               // front = most recently used
	m   map[string]*list.Element // hash → element holding *lruEntry
}

type lruEntry struct {
	key string
	val json.RawMessage
}

func newLRU(capacity int) *lru {
	return &lru{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the cached result for key and marks it recently used.
func (c *lru) get(key string) (json.RawMessage, bool) {
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*lruEntry).val, true
}

// put inserts or refreshes key, evicting the least recently used entry
// beyond capacity.
func (c *lru) put(key string, val json.RawMessage) {
	if e, ok := c.m[key]; ok {
		e.Value.(*lruEntry).val = val
		c.ll.MoveToFront(e)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.m, back.Value.(*lruEntry).key)
	}
}

// len returns the number of cached results.
func (c *lru) len() int { return c.ll.Len() }
