package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"hdlts/internal/obs"
)

// Metric series registered by this package.
const (
	metricJobsQueueDepth  = "hdltsd_jobs_queue_depth"
	metricJobsRetries     = "hdltsd_jobs_retries_total"
	metricJobsCacheHits   = "hdltsd_jobs_cache_hits_total"
	metricJobsCacheMisses = "hdltsd_jobs_cache_misses_total"
	metricJobsCoalesced   = "hdltsd_jobs_coalesced_total"
	metricJobsExpired     = "hdltsd_jobs_expired_total"
	metricJobsWALErrors   = "hdltsd_jobs_wal_errors_total"
	metricJobsState       = "hdltsd_jobs_state"
	metricJobsWALFsync    = "hdltsd_jobs_wal_fsync_seconds"
)

// RunFunc executes one job: the algorithm's canonical registry name plus
// the canonically serialised problem in, opaque result JSON out. It runs
// on a worker goroutine and must be safe for concurrent use. ctx carries
// the job's trace ID (obs.TraceIDFrom) so the executing layer can record
// spans and decision events against the submitting request — including
// re-runs of jobs recovered after a crash.
type RunFunc func(ctx context.Context, algorithm string, problem json.RawMessage) (json.RawMessage, error)

// Config tunes a Manager. The zero value (plus a Run function) works:
// memory-only store, GOMAXPROCS workers, three attempts per job, one-hour
// retention of finished jobs.
type Config struct {
	// Dir is the durable store directory; empty means memory-only (jobs do
	// not survive a restart).
	Dir string
	// Workers is the number of concurrent job executors (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running; beyond it Submit
	// returns ErrSaturated (default 256).
	QueueDepth int
	// MaxAttempts bounds executions per job before it fails (default 3).
	MaxAttempts int
	// RetryBackoff is the first retry delay; it doubles per attempt
	// (default 100ms).
	RetryBackoff time.Duration
	// TTL is how long finished jobs remain queryable before the garbage
	// collector drops them (default 1h).
	TTL time.Duration
	// GCInterval is how often the collector scans (default 1m).
	GCInterval time.Duration
	// CacheSize is the result cache capacity in entries (default 1024).
	CacheSize int
	// Metrics receives the hdltsd_jobs_* series (default obs.Default()).
	Metrics *obs.Registry
	// Run executes one job; required.
	Run RunFunc
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.TTL <= 0 {
		c.TTL = time.Hour
	}
	if c.GCInterval <= 0 {
		c.GCInterval = time.Minute
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	return c
}

// Manager owns the job table, the durable store, the worker pool, and the
// result cache. All exported methods are safe for concurrent use.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[string]*Job
	byHash  map[string]string // hash → active (queued|running) job ID
	nextSeq uint64
	pending [][]byte // encoded WAL records staged for the next flush
	cache   *lru
	closed  bool
	timers  map[*time.Timer]struct{} // pending retry re-enqueues

	// wmu serialises WAL writes and compaction. Lock order is wmu → mu;
	// mu never covers disk I/O, so job-table readers are not exposed to
	// fsync latency. st is set once in Open and immutable afterwards
	// (nil in memory-only mode).
	wmu sync.Mutex
	st  *store

	// baseCtx is the process-lifetime root job executions derive from;
	// Close cancels it once the workers have drained.
	baseCtx context.Context
	cancel  context.CancelFunc

	queue chan string
	stop  chan struct{}
	wg    sync.WaitGroup

	now func() time.Time // test hook

	queueDepth *obs.Gauge
	states     map[State]*obs.Gauge
	retries    *obs.Counter
	cacheHits  *obs.Counter
	cacheMiss  *obs.Counter
	coalesced  *obs.Counter
	expired    *obs.Counter
	walErrors  *obs.Counter
}

// Open builds a Manager from cfg, recovering any durable state from
// cfg.Dir: done/failed/cancelled jobs become queryable again (done results
// re-seed the cache), and queued or running jobs — running means the
// previous process died mid-execution — are re-enqueued.
func Open(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Run == nil {
		return nil, fmt.Errorf("jobs: Config.Run is required")
	}
	m := &Manager{
		cfg:        cfg,
		jobs:       make(map[string]*Job),
		byHash:     make(map[string]string),
		cache:      newLRU(cfg.CacheSize),
		timers:     make(map[*time.Timer]struct{}),
		stop:       make(chan struct{}),
		now:        time.Now,
		queueDepth: cfg.Metrics.Gauge(metricJobsQueueDepth),
		states:     make(map[State]*obs.Gauge, len(States)),
		retries:    cfg.Metrics.Counter(metricJobsRetries),
		cacheHits:  cfg.Metrics.Counter(metricJobsCacheHits),
		cacheMiss:  cfg.Metrics.Counter(metricJobsCacheMisses),
		coalesced:  cfg.Metrics.Counter(metricJobsCoalesced),
		expired:    cfg.Metrics.Counter(metricJobsExpired),
		walErrors:  cfg.Metrics.Counter(metricJobsWALErrors),
	}
	for _, s := range States {
		m.states[s] = cfg.Metrics.Gauge(metricJobsState, "state", string(s))
	}
	// Job executions outlive the HTTP requests that submitted them (and,
	// after a crash, the process that did), so they hang off a root owned
	// by the Manager rather than any request context.
	//lint:hdltsvet-ignore ctxflow process-lifetime root: job executions outlive their submitting requests
	m.baseCtx, m.cancel = context.WithCancel(context.Background())
	var pending []*Job
	if cfg.Dir != "" {
		// Group-commit fsyncs sit between ~50µs (battery-backed or lying
		// disks) and tens of ms (spinning rust); log-spaced 10µs–1s buckets
		// resolve both regimes where the decade defaults cannot.
		cfg.Metrics.SetBuckets(metricJobsWALFsync, obs.ExpBuckets(1e-5, 1, 3))
		recovered := make(map[string]*Job)
		st, err := openStore(cfg.Dir, cfg.Metrics.Histogram(metricJobsWALFsync),
			loadJobSnapshot(recovered), applyJobRecord(recovered))
		if err != nil {
			return nil, err
		}
		m.st = st
		pending = m.adopt(recovered)
		m.flush()
	}
	capacity := cfg.QueueDepth
	if len(pending) > capacity {
		capacity = len(pending)
	}
	m.queue = make(chan string, capacity)
	for _, j := range pending {
		m.queue <- j.ID
		m.queueDepth.Inc()
	}
	m.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	m.wg.Add(1)
	go m.gcLoop()
	return m, nil
}

// adopt installs recovered jobs: rebuilds indexes and gauges, re-seeds the
// cache from done results, requeues unfinished work, and persists the
// running→queued demotions so a second crash sees consistent state.
// Returns the jobs to enqueue in submission order.
func (m *Manager) adopt(recovered map[string]*Job) []*Job {
	list := make([]*Job, 0, len(recovered))
	for _, j := range recovered {
		list = append(list, j)
	}
	sort.Slice(list, func(i, k int) bool { return list[i].Seq < list[k].Seq })
	var pending []*Job
	for _, j := range list {
		if j.Seq >= m.nextSeq {
			m.nextSeq = j.Seq + 1
		}
		if j.State == Running {
			j.State = Queued
			m.persist(j)
		}
		m.jobs[j.ID] = j
		m.states[j.State].Inc()
		switch {
		case j.State == Queued:
			m.byHash[j.Hash] = j.ID
			pending = append(pending, j)
		case j.State == Done && len(j.Result) > 0:
			m.cache.put(j.Hash, j.Result)
		}
	}
	return pending
}

// Submit admits one job with no trace correlation; see SubmitTraced.
func (m *Manager) Submit(algorithm, hash string, problem json.RawMessage) (*Job, error) {
	return m.SubmitTraced(algorithm, hash, "", problem)
}

// SubmitTraced admits one job stamped with the submitting request's trace
// ID. In order of preference it answers from the result cache (a new job
// born done, CacheHit set), coalesces onto an active job with the same
// hash (the returned job carries that job's ID — and the first submitter's
// trace ID), or enqueues a fresh job. ErrSaturated means the queue is
// full; ErrClosed means the manager has shut down.
func (m *Manager) SubmitTraced(algorithm, hash, traceID string, problem json.RawMessage) (*Job, error) {
	j, err := m.submitLocked(algorithm, hash, traceID, problem)
	// Group commit: the flush after releasing the job-table lock makes the
	// admission durable before Submit returns, batching with any records
	// staged by concurrent submitters.
	m.flush()
	return j, err
}

func (m *Manager) submitLocked(algorithm, hash, traceID string, problem json.RawMessage) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if id, ok := m.byHash[hash]; ok {
		if j, ok := m.jobs[id]; ok {
			m.coalesced.Inc()
			return j.clone(), nil
		}
	}
	now := m.now()
	if res, ok := m.cache.get(hash); ok {
		m.cacheHits.Inc()
		j := &Job{
			ID: newID(), Algorithm: algorithm, Hash: hash, TraceID: traceID,
			State: Done, MaxAttempts: m.cfg.MaxAttempts, Result: res,
			CacheHit: true, Seq: m.seq(),
			SubmittedAt: now, FinishedAt: now,
		}
		m.jobs[j.ID] = j
		m.states[Done].Inc()
		m.persist(j)
		return j.clone(), nil
	}
	m.cacheMiss.Inc()
	j := &Job{
		ID: newID(), Algorithm: algorithm, Hash: hash, TraceID: traceID,
		Problem: problem,
		State:   Queued, MaxAttempts: m.cfg.MaxAttempts, Seq: m.seq(),
		SubmittedAt: now,
	}
	select {
	case m.queue <- j.ID:
	default:
		return nil, ErrSaturated
	}
	m.jobs[j.ID] = j
	m.byHash[hash] = j.ID
	m.states[Queued].Inc()
	m.persist(j)
	m.queueDepth.Inc()
	return j.clone(), nil
}

// Get returns a copy of the job, or ErrNotFound.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.clone(), nil
}

// List returns one page of jobs, newest submission first, plus the total
// match count. state "" matches every state; offset/limit paginate
// (limit <= 0 means no cap).
func (m *Manager) List(state State, offset, limit int) ([]*Job, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	matches := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		if state == "" || j.State == state {
			matches = append(matches, j)
		}
	}
	sort.Slice(matches, func(i, k int) bool { return matches[i].Seq > matches[k].Seq })
	total := len(matches)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	matches = matches[offset:]
	if limit > 0 && len(matches) > limit {
		matches = matches[:limit]
	}
	page := make([]*Job, len(matches))
	for i, j := range matches {
		page[i] = j.clone()
	}
	return page, total
}

// Cancel stops a job: queued jobs flip to cancelled immediately; running
// jobs are marked so the worker discards the result when it completes
// (scheduling is not preempted mid-run). Terminal jobs return ErrFinished.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, err := m.cancelLocked(id)
	m.flush()
	return j, err
}

func (m *Manager) cancelLocked(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	switch {
	case j.State == Queued:
		m.setState(j, Cancelled)
		j.FinishedAt = m.now()
		delete(m.byHash, j.Hash)
		m.persist(j)
	case j.State == Running:
		j.CancelRequested = true
		m.persist(j)
	default:
		return nil, ErrFinished
	}
	return j.clone(), nil
}

// Workers returns the configured worker count (Retry-After estimation).
func (m *Manager) Workers() int { return m.cfg.Workers }

// QueueCap returns the admission queue capacity.
func (m *Manager) QueueCap() int { return cap(m.queue) }

// QueueLen returns the instantaneous queue backlog.
func (m *Manager) QueueLen() int { return len(m.queue) }

// Close stops intake and the GC, cancels pending retry timers, and waits —
// bounded by ctx — for workers to finish their current job. Unfinished
// jobs stay queued/running in the store and are recovered by the next
// Open with the same Dir.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for t := range m.timers {
		t.Stop()
	}
	m.timers = map[*time.Timer]struct{}{}
	m.mu.Unlock()
	close(m.stop)

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		m.cancel()
		return fmt.Errorf("jobs: close: %w", ctx.Err())
	}
	m.cancel()
	if m.st == nil {
		return nil
	}
	// Drain anything the final transitions staged, then release the WAL
	// under the writer lock so an in-flight flush finishes first.
	m.flush()
	m.wmu.Lock()
	defer m.wmu.Unlock()
	//lint:hdltsvet-ignore lockedio shutdown path: closing the WAL must serialise with the final flush under the writer lock
	return m.st.close()
}

// seq allocates the next submission sequence number (caller holds mu).
func (m *Manager) seq() uint64 {
	s := m.nextSeq
	m.nextSeq++
	return s
}

// setState moves j between states, keeping the per-state gauges in step
// (caller holds mu).
func (m *Manager) setState(j *Job, s State) {
	m.states[j.State].Dec()
	m.states[s].Inc()
	j.State = s
}

// persist stages a full-job WAL record capturing j's current state (caller
// holds mu, except during single-threaded recovery in Open). The record is
// encoded immediately — so it snapshots the job as of this transition —
// but hits disk only at the next flush. Encoding failures are counted,
// not fatal.
func (m *Manager) persist(j *Job) {
	m.stage(walRecord{Op: "put", Job: j})
}

// stage encodes one WAL record into the pending batch (caller holds mu).
func (m *Manager) stage(rec walRecord) {
	if m.st == nil {
		return
	}
	b, err := encodeRecord(rec)
	if err != nil {
		m.walErrors.Inc()
		return
	}
	m.pending = append(m.pending, b)
}

// flush writes every staged WAL record with a single fsync and compacts
// when due. Callers invoke it after releasing mu; durability-before-return
// still holds because a caller's records are either in the batch this
// flush writes or were already written by a concurrent flusher that
// claimed them first. WAL failures (disk full, dying device) are counted,
// not fatal: the in-memory subsystem keeps serving, merely without
// durability for those records.
func (m *Manager) flush() {
	if m.st == nil {
		return
	}
	m.wmu.Lock()
	defer m.wmu.Unlock()
	m.mu.Lock()
	batch := m.pending
	m.pending = nil
	m.mu.Unlock()
	// The WAL-writer lock exists to serialise exactly this write; no
	// request-facing path ever waits on it except to make its own
	// records durable.
	//lint:hdltsvet-ignore lockedio wmu is the WAL-writer lock; its whole purpose is covering this batch write
	if err := m.st.appendBatch(batch); err != nil {
		m.walErrors.Inc()
		return
	}
	m.mu.Lock()
	var snap []byte
	if m.st.shouldCompact(len(m.jobs)) {
		var err error
		if snap, err = encodeSnapshot(m.jobs); err != nil {
			m.walErrors.Inc()
		}
	}
	m.mu.Unlock()
	if snap != nil {
		//lint:hdltsvet-ignore lockedio compaction runs under the WAL-writer lock by design; the job-table lock is not held
		if err := m.st.compactWith(snap); err != nil {
			m.walErrors.Inc()
		}
	}
}

// worker consumes job IDs until Close.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.stop:
			return
		case id := <-m.queue:
			m.queueDepth.Dec()
			m.runJob(id)
		}
	}
}

// runJob executes one dequeued job through a full attempt: claim it,
// run the RunFunc unlocked, then commit the outcome — done (caching the
// result), a backoff retry, failed, or cancelled if a cancel arrived
// while running.
func (m *Manager) runJob(id string) {
	algorithm, problem, ctx, ok := m.claimJob(id)
	m.flush()
	if !ok {
		return
	}
	result, err := m.cfg.Run(ctx, algorithm, problem)
	m.finishJob(id, result, err)
	m.flush()
}

// claimJob flips a queued job to running and returns what the worker needs
// to execute it; ok is false if the job was cancelled (or GC'd) while
// waiting in the queue.
func (m *Manager) claimJob(id string) (algorithm string, problem json.RawMessage, ctx context.Context, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, found := m.jobs[id]
	if !found || j.State != Queued {
		return "", nil, nil, false
	}
	m.setState(j, Running)
	j.Attempts++
	j.StartedAt = m.now()
	m.persist(j)
	// The execution context carries the job's trace ID — the persisted
	// correlation with the submitting request — so re-runs after a crash
	// trace under the original ID.
	return j.Algorithm, j.Problem, obs.WithTraceID(m.baseCtx, j.TraceID), true
}

// finishJob commits one attempt's outcome: done (caching the result), a
// backoff retry, failed, or cancelled if a cancel arrived while running.
func (m *Manager) finishJob(id string, result json.RawMessage, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return
	}
	if j.CancelRequested {
		m.setState(j, Cancelled)
		j.FinishedAt = m.now()
		delete(m.byHash, j.Hash)
		m.persist(j)
		return
	}
	if err != nil {
		j.Error = err.Error()
		if j.Attempts < j.MaxAttempts && !m.closed {
			m.retries.Inc()
			m.setState(j, Queued)
			m.persist(j)
			m.requeueAfter(j.ID, m.backoff(j.Attempts))
			return
		}
		m.setState(j, Failed)
		j.FinishedAt = m.now()
		delete(m.byHash, j.Hash)
		m.persist(j)
		return
	}
	j.Result = result
	j.Error = ""
	m.setState(j, Done)
	j.FinishedAt = m.now()
	delete(m.byHash, j.Hash)
	m.cache.put(j.Hash, result)
	m.persist(j)
}

// backoff returns the exponential retry delay after the given number of
// consumed attempts: base, 2·base, 4·base, ...
func (m *Manager) backoff(attempts int) time.Duration {
	d := m.cfg.RetryBackoff
	for i := 1; i < attempts; i++ {
		d *= 2
	}
	return d
}

// requeueAfter re-enqueues id once the backoff elapses (caller holds mu).
// If the queue happens to be full at fire time, the timer re-arms.
func (m *Manager) requeueAfter(id string, d time.Duration) {
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		delete(m.timers, t)
		if m.closed {
			return
		}
		select {
		case m.queue <- id:
			m.queueDepth.Inc()
		default:
			m.requeueAfter(id, d)
		}
	})
	m.timers[t] = struct{}{}
}

// gcLoop drops finished jobs older than TTL every GCInterval.
func (m *Manager) gcLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.GCInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
			m.gc()
		}
	}
}

// gc removes terminal jobs whose FinishedAt is older than TTL. Their
// results may still live in the cache; only the job records expire.
func (m *Manager) gc() {
	m.gcLocked()
	m.flush() // also compacts, now that the expired records are staged
}

func (m *Manager) gcLocked() {
	m.mu.Lock()
	defer m.mu.Unlock()
	cutoff := m.now().Add(-m.cfg.TTL)
	for id, j := range m.jobs {
		if j.State.Terminal() && !j.FinishedAt.IsZero() && j.FinishedAt.Before(cutoff) {
			m.states[j.State].Dec()
			delete(m.jobs, id)
			m.expired.Inc()
			m.stage(walRecord{Op: "del", ID: id})
		}
	}
}
