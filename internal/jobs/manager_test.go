package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"hdlts/internal/obs"
)

// okRun returns a RunFunc that answers instantly and counts executions.
func okRun(runs *atomic.Int64) RunFunc {
	return func(_ context.Context, algorithm string, problem json.RawMessage) (json.RawMessage, error) {
		if runs != nil {
			runs.Add(1)
		}
		return json.RawMessage(fmt.Sprintf(`{"algorithm":%q}`, algorithm)), nil
	}
}

// newTestManager opens a memory-only manager and closes it on cleanup.
func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.GCInterval == 0 {
		cfg.GCInterval = time.Hour // tests drive gc() directly
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := m.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return m
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want State) *Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if j.State == want {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (want %s): %+v", id, j.State, want, j)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitRunsToDone(t *testing.T) {
	var runs atomic.Int64
	reg := obs.NewRegistry()
	m := newTestManager(t, Config{Run: okRun(&runs), Metrics: reg})
	j, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if j.State != Queued || j.ID == "" || j.Hash != "h1" {
		t.Fatalf("submitted job = %+v", j)
	}
	got := waitState(t, m, j.ID, Done)
	if string(got.Result) != `{"algorithm":"HDLTS"}` || got.Attempts != 1 || got.CacheHit {
		t.Errorf("done job = %+v", got)
	}
	if runs.Load() != 1 {
		t.Errorf("runs = %d, want 1", runs.Load())
	}
	if v := reg.Counter("hdltsd_jobs_cache_misses_total").Value(); v != 1 {
		t.Errorf("cache misses = %d, want 1", v)
	}
}

func TestCacheHitServesWithoutRun(t *testing.T) {
	var runs atomic.Int64
	reg := obs.NewRegistry()
	m := newTestManager(t, Config{Run: okRun(&runs), Metrics: reg})
	first, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, Done)

	second, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if second.ID == first.ID {
		t.Error("cache hit reused the original job ID; want a fresh record")
	}
	if second.State != Done || !second.CacheHit {
		t.Errorf("cache-hit job = %+v, want done with CacheHit", second)
	}
	if string(second.Result) != `{"algorithm":"HDLTS"}` {
		t.Errorf("cached result = %s", second.Result)
	}
	if runs.Load() != 1 {
		t.Errorf("runs = %d, want 1 (second submit must not re-solve)", runs.Load())
	}
	if v := reg.Counter("hdltsd_jobs_cache_hits_total").Value(); v != 1 {
		t.Errorf("cache hits = %d, want 1", v)
	}
}

// blockingRun parks executions until released, making queue states
// deterministic.
type blockingRun struct {
	started chan string   // receives the algorithm per execution start
	release chan struct{} // closed to let every execution finish
	runs    atomic.Int64
}

func newBlockingRun() *blockingRun {
	return &blockingRun{started: make(chan string, 16), release: make(chan struct{})}
}

func (b *blockingRun) run(_ context.Context, algorithm string, problem json.RawMessage) (json.RawMessage, error) {
	b.runs.Add(1)
	b.started <- algorithm
	<-b.release
	return json.RawMessage(`{"ok":true}`), nil
}

func TestDuplicateInFlightSubmissionsCoalesce(t *testing.T) {
	blk := newBlockingRun()
	reg := obs.NewRegistry()
	m := newTestManager(t, Config{Run: blk.run, Workers: 1, Metrics: reg})
	first, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	<-blk.started
	dup, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != first.ID {
		t.Errorf("duplicate submit got job %s, want coalesced onto %s", dup.ID, first.ID)
	}
	if v := reg.Counter("hdltsd_jobs_coalesced_total").Value(); v != 1 {
		t.Errorf("coalesced = %d, want 1", v)
	}
	close(blk.release)
	waitState(t, m, first.ID, Done)
	if blk.runs.Load() != 1 {
		t.Errorf("runs = %d, want 1", blk.runs.Load())
	}
}

func TestRetryWithBackoffThenFailure(t *testing.T) {
	var runs atomic.Int64
	reg := obs.NewRegistry()
	m := newTestManager(t, Config{
		Metrics: reg, MaxAttempts: 3, RetryBackoff: time.Millisecond,
		Run: func(context.Context, string, json.RawMessage) (json.RawMessage, error) {
			runs.Add(1)
			return nil, errors.New("boom")
		},
	})
	j, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, Failed)
	if got.Attempts != 3 || got.Error != "boom" {
		t.Errorf("failed job = %+v, want 3 attempts, error boom", got)
	}
	if runs.Load() != 3 {
		t.Errorf("runs = %d, want 3", runs.Load())
	}
	if v := reg.Counter("hdltsd_jobs_retries_total").Value(); v != 2 {
		t.Errorf("retries = %d, want 2", v)
	}
}

func TestRetryRecoversFromTransientError(t *testing.T) {
	var runs atomic.Int64
	m := newTestManager(t, Config{
		RetryBackoff: time.Millisecond,
		Run: func(context.Context, string, json.RawMessage) (json.RawMessage, error) {
			if runs.Add(1) == 1 {
				return nil, errors.New("transient")
			}
			return json.RawMessage(`{"ok":true}`), nil
		},
	})
	j, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, m, j.ID, Done)
	if got.Attempts != 2 || got.Error != "" {
		t.Errorf("recovered job = %+v, want 2 attempts and no error", got)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	blk := newBlockingRun()
	m := newTestManager(t, Config{Run: blk.run, Workers: 1})
	running, err := m.Submit("HDLTS", "h-running", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	<-blk.started // worker busy; the next job stays queued
	queued, err := m.Submit("HDLTS", "h-queued", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}

	got, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != Cancelled {
		t.Errorf("cancelled queued job state = %s", got.State)
	}
	got, err = m.Cancel(running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != Running || !got.CancelRequested {
		t.Errorf("cancel of running job = %+v, want running with CancelRequested", got)
	}

	close(blk.release)
	got = waitState(t, m, running.ID, Cancelled)
	if len(got.Result) != 0 {
		t.Errorf("cancelled job kept a result: %s", got.Result)
	}
	// The discarded result must not have seeded the cache.
	again, err := m.Submit("HDLTS", "h-running", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHit {
		t.Error("cancelled job's result reached the cache")
	}
	waitState(t, m, again.ID, Done)

	if _, err := m.Cancel(again.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("cancel of done job = %v, want ErrFinished", err)
	}
	if _, err := m.Cancel("j-nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel of unknown job = %v, want ErrNotFound", err)
	}
}

func TestSubmitSaturationAndClosed(t *testing.T) {
	blk := newBlockingRun()
	m := newTestManager(t, Config{Run: blk.run, Workers: 1, QueueDepth: 1})
	if _, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err)
	}
	<-blk.started
	if _, err := m.Submit("HDLTS", "h2", json.RawMessage(`{}`)); err != nil {
		t.Fatal(err) // fills the queue slot
	}
	if _, err := m.Submit("HDLTS", "h3", json.RawMessage(`{}`)); !errors.Is(err, ErrSaturated) {
		t.Errorf("submit into a full queue = %v, want ErrSaturated", err)
	}
	close(blk.release)

	m2 := newTestManager(t, Config{Run: okRun(nil)})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := m2.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Submit("HDLTS", "h1", json.RawMessage(`{}`)); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after Close = %v, want ErrClosed", err)
	}
}

func TestListFilterAndPagination(t *testing.T) {
	m := newTestManager(t, Config{Run: okRun(nil)})
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := m.Submit("HDLTS", fmt.Sprintf("h%d", i), json.RawMessage(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
		waitState(t, m, j.ID, Done) // serialise so Seq order is the loop order
	}
	all, total := m.List("", 0, 0)
	if total != 5 || len(all) != 5 {
		t.Fatalf("List all = %d jobs, total %d, want 5/5", len(all), total)
	}
	// Newest first.
	if all[0].ID != ids[4] || all[4].ID != ids[0] {
		t.Errorf("list order = %s..%s, want newest (%s) first", all[0].ID, all[4].ID, ids[4])
	}
	page, total := m.List(Done, 1, 2)
	if total != 5 || len(page) != 2 || page[0].ID != ids[3] || page[1].ID != ids[2] {
		t.Errorf("List(done, offset 1, limit 2) = %v (total %d)", page, total)
	}
	if page, total := m.List(Failed, 0, 0); total != 0 || len(page) != 0 {
		t.Errorf("List(failed) = %d/%d, want empty", len(page), total)
	}
	if page, total := m.List("", 99, 10); total != 5 || len(page) != 0 {
		t.Errorf("List beyond end = %d/%d, want 0 of 5", len(page), total)
	}
}

func TestGCExpiresFinishedJobs(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestManager(t, Config{Run: okRun(nil), Metrics: reg, TTL: time.Minute})
	j, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, Done)

	m.gc() // fresh job survives
	if _, err := m.Get(j.ID); err != nil {
		t.Fatalf("job expired before TTL: %v", err)
	}
	m.mu.Lock()
	m.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	m.mu.Unlock()
	m.gc()
	if _, err := m.Get(j.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after TTL = %v, want ErrNotFound", err)
	}
	if v := reg.Counter("hdltsd_jobs_expired_total").Value(); v != 1 {
		t.Errorf("expired = %d, want 1", v)
	}
	// The cache outlives the record: a resubmission is still a hit.
	again, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Error("resubmission after GC missed the cache")
	}
}

func TestStateGaugesTrackLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	m := newTestManager(t, Config{Run: okRun(nil), Metrics: reg})
	j, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, Done)
	if v := reg.Gauge("hdltsd_jobs_state", "state", "done").Value(); v != 1 {
		t.Errorf("done gauge = %g, want 1", v)
	}
	for _, s := range []State{Queued, Running, Failed, Cancelled} {
		if v := reg.Gauge("hdltsd_jobs_state", "state", string(s)).Value(); v != 0 {
			t.Errorf("%s gauge = %g, want 0", s, v)
		}
	}
}
