package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"hdlts/internal/obs"
)

// TestRecoveryRequeuesUnfinishedJobs is the crash test: a manager dies
// (abandoned, never closed — its WAL appends are fsynced per transition)
// with one job running and one queued; a second manager on the same dir
// must re-run both to completion.
func TestRecoveryRequeuesUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()
	blk := newBlockingRun()
	crashed, err := Open(Config{
		Dir: dir, Workers: 1, Metrics: obs.NewRegistry(), Run: blk.run,
	})
	if err != nil {
		t.Fatal(err)
	}
	runningJob, err := crashed.Submit("HDLTS", "h-running", json.RawMessage(`{"p":1}`))
	if err != nil {
		t.Fatal(err)
	}
	<-blk.started // first job is mid-execution; its "running" record is on disk
	queuedJob, err := crashed.Submit("HDLTS", "h-queued", json.RawMessage(`{"p":2}`))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate SIGKILL: the crashed manager is simply abandoned. Unblock
	// its stuck worker at cleanup so the test process can exit cleanly.
	t.Cleanup(func() {
		close(blk.release)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = crashed.Close(ctx)
	})

	var runs atomic.Int64
	m := newTestManager(t, Config{Dir: dir, Workers: 1, Run: okRun(&runs)})
	for _, id := range []string{runningJob.ID, queuedJob.ID} {
		got := waitState(t, m, id, Done)
		if len(got.Result) == 0 {
			t.Errorf("recovered job %s has no result", id)
		}
	}
	if runs.Load() != 2 {
		t.Errorf("recovered runs = %d, want 2 (both unfinished jobs re-run)", runs.Load())
	}
	// The job that was mid-run when the process died shows the extra attempt.
	got, err := m.Get(runningJob.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attempts != 2 {
		t.Errorf("re-run job attempts = %d, want 2 (one lost to the crash)", got.Attempts)
	}
}

// TestRecoveryServesDoneFromWAL asserts the flip side: finished jobs are
// answered from the recovered store and cache without re-solving.
func TestRecoveryServesDoneFromWAL(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	first, err := Open(Config{Dir: dir, Metrics: obs.NewRegistry(), Run: okRun(&runs)})
	if err != nil {
		t.Fatal(err)
	}
	j, err := first.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, first, j.ID, Done)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := first.Close(ctx); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	m := newTestManager(t, Config{Dir: dir, Metrics: reg,
		Run: func(context.Context, string, json.RawMessage) (json.RawMessage, error) {
			return nil, errors.New("must not re-solve a done job")
		},
	})
	got, err := m.Get(j.ID)
	if err != nil {
		t.Fatalf("done job lost across restart: %v", err)
	}
	if got.State != Done || string(got.Result) != `{"algorithm":"HDLTS"}` {
		t.Errorf("recovered job = %+v", got)
	}
	// The recovered result seeded the cache: resubmitting is a hit.
	again, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.State != Done {
		t.Errorf("resubmission after restart = %+v, want a cache hit", again)
	}
	if v := reg.Counter("hdltsd_jobs_cache_hits_total").Value(); v != 1 {
		t.Errorf("cache hits = %d, want 1", v)
	}
	if runs.Load() != 1 {
		t.Errorf("runs = %d, want 1 (nothing re-solved after restart)", runs.Load())
	}
}

func TestSnapshotCompactionAndReload(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Dir: dir, Run: okRun(nil)})
	var ids []string
	for i := 0; i < 8; i++ {
		j, err := m.Submit("HDLTS", fmt.Sprintf("h%d", i), json.RawMessage(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
		waitState(t, m, j.ID, Done)
		if i == 3 {
			// Force a mid-stream compaction so the reload below exercises
			// snapshot + post-snapshot WAL together.
			m.mu.Lock()
			snap, err := encodeSnapshot(m.jobs)
			m.mu.Unlock()
			if err != nil {
				t.Fatalf("encode snapshot: %v", err)
			}
			m.wmu.Lock()
			err = m.st.compactWith(snap)
			m.wmu.Unlock()
			if err != nil {
				t.Fatalf("compact: %v", err)
			}
		}
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("no snapshot written despite forced compaction: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}

	recovered := newTestManager(t, Config{Dir: dir, Run: okRun(nil)})
	for _, id := range ids {
		j, err := recovered.Get(id)
		if err != nil {
			t.Fatalf("job %s lost across compaction + restart: %v", id, err)
		}
		if j.State != Done {
			t.Errorf("job %s state = %s, want done", id, j.State)
		}
	}
}

// TestTornWALTailIsIgnored writes a WAL whose final line is cut mid-record
// — the on-disk state after SIGKILL during an append — and asserts every
// intact record recovers.
func TestTornWALTailIsIgnored(t *testing.T) {
	dir := t.TempDir()
	good := walRecord{Op: "put", Job: &Job{
		ID: "j-good", Algorithm: "HDLTS", Hash: "h1", State: Done,
		Result: json.RawMessage(`{"ok":true}`), Seq: 1, MaxAttempts: 3,
	}}
	b, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append(b, '\n'), []byte(`{"op":"put","job":{"id":"j-to`)...)
	if err := os.WriteFile(filepath.Join(dir, walFile), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	m := newTestManager(t, Config{Dir: dir, Run: okRun(nil)})
	j, err := m.Get("j-good")
	if err != nil {
		t.Fatalf("intact record before the torn tail lost: %v", err)
	}
	if j.State != Done || string(j.Result) != `{"ok":true}` {
		t.Errorf("recovered job = %+v", j)
	}
	if _, err := m.Get("j-to"); !errors.Is(err, ErrNotFound) {
		t.Errorf("torn record resurrected: %v", err)
	}
}

// TestDeleteRecordsSurviveReplay: GC deletions must hold across restarts.
func TestDeleteRecordsSurviveReplay(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Config{Dir: dir, Run: okRun(nil), TTL: time.Minute})
	j, err := m.Submit("HDLTS", "h1", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, j.ID, Done)
	m.mu.Lock()
	m.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	m.mu.Unlock()
	m.gc()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}

	recovered := newTestManager(t, Config{Dir: dir, Run: okRun(nil)})
	if _, err := recovered.Get(j.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("GC'd job resurrected after restart: %v", err)
	}
}

// TestRecoveryKeepsTraceID: the request-correlation ID stamped at
// submission must survive the WAL round trip, and a re-run of an
// unfinished job must execute under the original trace ID.
func TestRecoveryKeepsTraceID(t *testing.T) {
	dir := t.TempDir()
	blk := newBlockingRun()
	crashed, err := Open(Config{
		Dir: dir, Workers: 1, Metrics: obs.NewRegistry(), Run: blk.run,
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := crashed.SubmitTraced("HDLTS", "h1", "trace-cafe01", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if j.TraceID != "trace-cafe01" {
		t.Fatalf("submitted trace ID = %q", j.TraceID)
	}
	<-blk.started // running record (with trace ID) is on disk
	t.Cleanup(func() {
		close(blk.release)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = crashed.Close(ctx)
	})

	gotTrace := make(chan string, 1)
	m := newTestManager(t, Config{Dir: dir, Workers: 1,
		Run: func(ctx context.Context, _ string, _ json.RawMessage) (json.RawMessage, error) {
			gotTrace <- obs.TraceIDFrom(ctx)
			return json.RawMessage(`{"ok":true}`), nil
		},
	})
	got := waitState(t, m, j.ID, Done)
	if got.TraceID != "trace-cafe01" {
		t.Errorf("recovered job trace ID = %q, want trace-cafe01", got.TraceID)
	}
	if id := <-gotTrace; id != "trace-cafe01" {
		t.Errorf("re-run executed under trace ID %q, want trace-cafe01", id)
	}
}
