package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdlts/internal/dag"
	"hdlts/internal/gen"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

func TestDSCOnPaperExample(t *testing.T) {
	pr := workflows.PaperExample()
	s, err := NewDSC().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	lb, err := pr.CPMinLowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if mk := s.Makespan(); mk < lb || mk > 200 {
		t.Fatalf("makespan %g implausible (lb %g)", mk, lb)
	}
	t.Logf("DSC makespan %g", s.Makespan())
}

// TestClusterizeZeroesExpensiveChain: a linear chain with huge
// communication must collapse into a single cluster.
func TestClusterizeZeroesExpensiveChain(t *testing.T) {
	g := dag.New(4)
	prev := g.AddTask("t1")
	for i := 2; i <= 4; i++ {
		cur := g.AddTask("t" + string(rune('0'+i)))
		g.MustAddEdge(prev, cur, 1000)
		prev = cur
	}
	w := platform.MustCostsFromRows([][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}})
	pr := sched.MustProblem(g, platform.MustUniform(2), w)
	clusters, err := clusterize(pr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(clusters); i++ {
		if clusters[i] != clusters[0] {
			t.Fatalf("chain split across clusters: %v", clusters)
		}
	}
}

// TestClusterizeKeepsCheapParallelismApart: two independent branches with
// negligible communication should land in different clusters so they can
// run in parallel.
func TestClusterizeKeepsCheapParallelismApart(t *testing.T) {
	g := dag.New(3)
	a := g.AddTask("A")
	b := g.AddTask("B")
	c := g.AddTask("C")
	g.MustAddEdge(a, b, 0.001)
	g.MustAddEdge(a, c, 0.001)
	w := platform.MustCostsFromRows([][]float64{{10, 10}, {10, 10}, {10, 10}})
	pr := sched.MustProblem(g, platform.MustUniform(2), w)
	clusters, err := clusterize(pr)
	if err != nil {
		t.Fatal(err)
	}
	// One branch joins A's cluster (serialised), but the other must escape
	// to preserve parallelism: its tlevel alone (10.001) beats queueing
	// behind the sibling (20).
	if clusters[1] == clusters[2] {
		t.Fatalf("both branches in one cluster: %v", clusters)
	}
}

func TestFoldClustersBalancesLoad(t *testing.T) {
	// Four unit clusters onto two processors: two each.
	g := dag.New(4)
	for i := 0; i < 4; i++ {
		g.AddTask("")
	}
	w := platform.MustCostsFromRows([][]float64{{10, 10}, {10, 10}, {10, 10}, {10, 10}})
	pr := sched.MustProblem(g, platform.MustUniform(2), w).Normalize()
	assign := foldClusters(pr, []int{0, 1, 2, 3, 4, 5})
	perProc := map[platform.Proc]int{}
	for t := 0; t < 4; t++ { // only the real tasks carry load
		perProc[assign[t]]++
	}
	if perProc[0] != 2 || perProc[1] != 2 {
		t.Fatalf("unbalanced folding: %v", perProc)
	}
}

// TestQuickDSCValid: DSC always yields feasible schedules at or above the
// lower bound on arbitrary random problems.
func TestQuickDSCValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr, err := gen.Random(gen.Params{
			V: 1 + rng.Intn(80), Alpha: 1.0, Density: 1 + rng.Intn(4),
			CCR: float64(1 + rng.Intn(5)), Procs: 2 + rng.Intn(6),
			WDAG: 60, Beta: 1.2, MultiEntry: rng.Intn(2) == 0,
		}, rng)
		if err != nil {
			return false
		}
		s, err := NewDSC().Schedule(pr)
		if err != nil {
			t.Logf("DSC: %v", err)
			return false
		}
		if err := s.Validate(); err != nil {
			t.Logf("DSC invalid: %v", err)
			return false
		}
		lb, err := pr.CPMinLowerBound()
		if err != nil {
			return false
		}
		return s.Makespan() >= lb-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestFoldClustersHeterogeneousCosts: with one processor far faster for the
// whole workload, LPT folding must place the heaviest cluster there.
func TestFoldClustersHeterogeneousCosts(t *testing.T) {
	g := dag.New(3)
	for i := 0; i < 3; i++ {
		g.AddTask("")
	}
	// Task 0 is the heavy cluster; P2 runs everything 10x faster.
	w := platform.MustCostsFromRows([][]float64{{100, 10}, {10, 1}, {10, 1}})
	pr := sched.MustProblem(g, platform.MustUniform(2), w).Normalize()
	assign := foldClusters(pr, []int{0, 1, 2, 3, 4})
	if assign[0] != 1 {
		t.Fatalf("heavy cluster folded onto P%d, want the fast P2", assign[0]+1)
	}
}
