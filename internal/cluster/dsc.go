// Package cluster implements the clustering-heuristic family the paper's
// Related Work surveys (Section II-C: LCM, DSC, CASS): schedulers that
// first group tasks into clusters on an unbounded set of virtual processors
// by zeroing expensive communication edges, then fold the clusters onto the
// real bounded processor set.
//
// The implementation follows Dominant Sequence Clustering (Yang &
// Gerasoulis 1994) in its standard adaptation to heterogeneous platforms:
// clustering runs on mean execution and communication costs; the resulting
// clusters are merged onto the p real processors by load-balanced wrapping;
// tasks are finally placed in blevel order on their assigned processor with
// avail-based timing. The paper dismisses this family as "more complex ...
// impractical to use" — having it runnable lets that claim be measured.
package cluster

import (
	"math"
	"sort"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// DSC is the Dominant Sequence Clustering scheduler.
type DSC struct{}

// NewDSC returns the DSC scheduler.
func NewDSC() *DSC { return &DSC{} }

// Name implements sched.Algorithm.
func (*DSC) Name() string { return "DSC" }

// Schedule implements sched.Algorithm.
func (*DSC) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	prof := obs.SolverProfileFor("DSC")
	defer prof.Start(obs.PhaseSchedule).Stop()
	pr = pr.Normalize()
	clusters, err := clusterize(pr)
	if err != nil {
		return nil, err
	}
	assign := foldClusters(pr, clusters)
	return place(pr, assign)
}

// clusterize performs the edge-zeroing pass: tasks are visited in
// topological order; each task either joins the cluster of the parent whose
// zeroed edge minimises the task's top level (tlevel), or starts a new
// cluster when no merge lowers its tlevel. Cluster serialisation is
// respected: a cluster's tasks execute back to back, so joining a busy
// cluster delays the task by the cluster's accumulated finish time.
func clusterize(pr *sched.Problem) ([]int, error) {
	g := pr.G
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	mean := func(t dag.TaskID) float64 { return pr.W.Mean(int(t)) }

	n := g.NumTasks()
	clusterOf := make([]int, n)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	// Per-cluster bookkeeping under mean costs.
	var clusterFinish []float64 // when the cluster's last task completes
	tlevel := make([]float64, n)
	finish := make([]float64, n)

	for _, t := range order {
		// tlevel if t starts a fresh cluster: bounded by remote arrivals.
		alone := 0.0
		for _, a := range g.Preds(t) {
			if v := finish[a.Task] + pr.MeanComm(a.Data); v > alone {
				alone = v
			}
		}
		bestCluster, bestStart := -1, alone
		// Try joining each distinct parent cluster.
		tried := map[int]bool{}
		for _, a := range g.Preds(t) {
			c := clusterOf[a.Task]
			if c < 0 || tried[c] {
				continue
			}
			tried[c] = true
			start := clusterFinish[c] // serialised behind the cluster
			for _, b := range g.Preds(t) {
				arr := finish[b.Task]
				if clusterOf[b.Task] != c {
					arr += pr.MeanComm(b.Data)
				}
				if arr > start {
					start = arr
				}
			}
			// Strict improvement keeps the pass monotone (DSC's
			// non-increasing dominant-sequence guarantee in spirit).
			if start < bestStart {
				bestStart, bestCluster = start, c
			}
		}
		if bestCluster < 0 {
			bestCluster = len(clusterFinish)
			clusterFinish = append(clusterFinish, 0)
		}
		clusterOf[t] = bestCluster
		tlevel[t] = bestStart
		finish[t] = bestStart + mean(t)
		if finish[t] > clusterFinish[bestCluster] {
			clusterFinish[bestCluster] = finish[t]
		}
	}
	return clusterOf, nil
}

// foldClusters maps the (possibly many) clusters onto the real processors:
// clusters are sorted by total mean work, heaviest first, and each is
// assigned to the currently least-loaded processor (classic LPT folding).
// The heterogeneity twist: a cluster's work on processor q is its actual
// total execution time there, so the "least-loaded" comparison uses real
// costs.
func foldClusters(pr *sched.Problem, clusterOf []int) []platform.Proc {
	nClusters := 0
	for _, c := range clusterOf {
		if c+1 > nClusters {
			nClusters = c + 1
		}
	}
	members := make([][]dag.TaskID, nClusters)
	meanWork := make([]float64, nClusters)
	for t, c := range clusterOf {
		members[c] = append(members[c], dag.TaskID(t))
		meanWork[c] += pr.W.Mean(t)
	}
	idx := make([]int, nClusters)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		if meanWork[idx[i]] != meanWork[idx[j]] {
			return meanWork[idx[i]] > meanWork[idx[j]]
		}
		return idx[i] < idx[j]
	})

	load := make([]float64, pr.NumProcs())
	assign := make([]platform.Proc, len(clusterOf))
	for _, c := range idx {
		// Pick the processor where load + this cluster's actual work is
		// minimal.
		best, bestVal := platform.Proc(0), math.Inf(1)
		for q := 0; q < pr.NumProcs(); q++ {
			work := 0.0
			for _, t := range members[c] {
				work += pr.Exec(t, platform.Proc(q))
			}
			if v := load[q] + work; v < bestVal {
				bestVal, best = v, platform.Proc(q)
			}
		}
		for _, t := range members[c] {
			assign[t] = best
			load[best] += pr.Exec(t, best)
		}
	}
	return assign
}

// place commits tasks in blevel order onto their assigned processors with
// avail-based timing (ready tasks only, so precedence holds).
func place(pr *sched.Problem, assign []platform.Proc) (*sched.Schedule, error) {
	g := pr.G
	blevel, err := g.DownwardDistance(func(t dag.TaskID) float64 { return pr.W.Mean(int(t)) },
		func(_, _ dag.TaskID, data float64) float64 { return pr.MeanComm(data) })
	if err != nil {
		return nil, err
	}
	s := sched.NewSchedule(pr)
	remaining := make([]int, g.NumTasks())
	var ready []dag.TaskID
	for t := 0; t < g.NumTasks(); t++ {
		remaining[t] = g.InDegree(dag.TaskID(t))
		if remaining[t] == 0 {
			ready = append(ready, dag.TaskID(t))
		}
	}
	for len(ready) > 0 {
		// Highest blevel first (dominant sequence first).
		best := 0
		for i, t := range ready[1:] {
			if blevel[t] > blevel[ready[best]] || (blevel[t] == blevel[ready[best]] && t < ready[best]) {
				best = i + 1
			}
		}
		t := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		e, err := s.Estimate(t, assign[t], sched.Policy{})
		if err != nil {
			return nil, err
		}
		if err := s.Commit(e); err != nil {
			return nil, err
		}
		for _, a := range g.Succs(t) {
			remaining[a.Task]--
			if remaining[a.Task] == 0 {
				ready = append(ready, a.Task)
			}
		}
	}
	return s, nil
}
