package platform

import (
	"math"
	"strings"
	"testing"
)

func TestNewUniform(t *testing.T) {
	if _, err := NewUniform(0); err == nil {
		t.Error("NewUniform(0) accepted")
	}
	if _, err := NewUniform(-3); err == nil {
		t.Error("NewUniform(-3) accepted")
	}
	p, err := NewUniform(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumProcs() != 4 {
		t.Fatalf("NumProcs = %d, want 4", p.NumProcs())
	}
	if b := p.Bandwidth(0, 1); b != 1 {
		t.Errorf("uniform bandwidth = %g, want 1", b)
	}
	if b := p.Bandwidth(2, 2); !math.IsInf(b, 1) {
		t.Errorf("self bandwidth = %g, want +Inf", b)
	}
}

func TestMustUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustUniform(0) did not panic")
		}
	}()
	MustUniform(0)
}

func TestNewWithBandwidth(t *testing.T) {
	good := [][]float64{{0, 2, 4}, {2, 0, 8}, {4, 8, 0}}
	p, err := NewWithBandwidth(good)
	if err != nil {
		t.Fatal(err)
	}
	if b := p.Bandwidth(1, 2); b != 8 {
		t.Errorf("B(1,2) = %g, want 8", b)
	}
	// The constructor must copy its input.
	good[1][2] = 999
	if b := p.Bandwidth(1, 2); b != 8 {
		t.Error("bandwidth matrix not copied")
	}

	bad := map[string][][]float64{
		"empty":         {},
		"ragged":        {{0, 1}, {1}},
		"zero-link":     {{0, 0}, {0, 0}},
		"negative":      {{0, -1}, {-1, 0}},
		"asymmetric":    {{0, 1}, {2, 0}},
		"infinite-link": {{0, math.Inf(1)}, {math.Inf(1), 0}},
	}
	for name, m := range bad {
		if _, err := NewWithBandwidth(m); err == nil {
			t.Errorf("%s bandwidth matrix accepted", name)
		}
	}
}

func TestCommTime(t *testing.T) {
	p, _ := NewWithBandwidth([][]float64{{0, 4}, {4, 0}})
	if got := p.CommTime(8, 0, 1); got != 2 {
		t.Errorf("CommTime(8, 0->1) = %g, want 2", got)
	}
	if got := p.CommTime(8, 1, 1); got != 0 {
		t.Errorf("local CommTime = %g, want 0", got)
	}
	if got := p.CommTime(0, 0, 1); got != 0 {
		t.Errorf("zero-data CommTime = %g, want 0", got)
	}
}

func TestNames(t *testing.T) {
	p := MustUniform(2)
	if n := p.Name(1); n != "P2" {
		t.Errorf("default name = %q, want P2", n)
	}
	p.SetName(1, "gpu-node")
	if n := p.Name(1); n != "gpu-node" {
		t.Errorf("name = %q, want gpu-node", n)
	}
	if n := p.Name(0); n != "P1" {
		t.Errorf("unset name = %q, want P1", n)
	}
}

func TestTwoClusters(t *testing.T) {
	p, err := TwoClusters(2, 3, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumProcs() != 5 {
		t.Fatalf("procs = %d, want 5", p.NumProcs())
	}
	// Intra-cluster links.
	if b := p.Bandwidth(0, 1); b != 4 {
		t.Errorf("intra A bandwidth = %g, want 4", b)
	}
	if b := p.Bandwidth(3, 4); b != 4 {
		t.Errorf("intra B bandwidth = %g, want 4", b)
	}
	// Inter-cluster links, both directions.
	if b := p.Bandwidth(1, 2); b != 0.5 {
		t.Errorf("inter bandwidth = %g, want 0.5", b)
	}
	if b := p.Bandwidth(4, 0); b != 0.5 {
		t.Errorf("inter bandwidth = %g, want 0.5", b)
	}
	// Cluster-aware naming.
	if p.Name(0) != "A1" || p.Name(2) != "B1" || p.Name(4) != "B3" {
		t.Errorf("names = %s %s %s", p.Name(0), p.Name(2), p.Name(4))
	}
	// Communication across clusters costs more.
	if local, remote := p.CommTime(8, 0, 1), p.CommTime(8, 0, 3); !(remote > local) {
		t.Errorf("inter comm %g not slower than intra %g", remote, local)
	}

	for _, bad := range []struct {
		s1, s2       int
		intra, inter float64
	}{
		{0, 3, 1, 1}, {3, 0, 1, 1}, {2, 2, 0, 1}, {2, 2, 1, -1},
	} {
		if _, err := TwoClusters(bad.s1, bad.s2, bad.intra, bad.inter); err == nil {
			t.Errorf("TwoClusters(%+v) accepted", bad)
		}
	}
}

func TestPlatformString(t *testing.T) {
	if s := MustUniform(3).String(); !strings.Contains(s, "procs: 3") || !strings.Contains(s, "uniform") {
		t.Errorf("String() = %q", s)
	}
	p, _ := NewWithBandwidth([][]float64{{0, 1}, {1, 0}})
	if s := p.String(); !strings.Contains(s, "per-pair") {
		t.Errorf("String() = %q", s)
	}
}
