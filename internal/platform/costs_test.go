package platform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCostsShapeValidation(t *testing.T) {
	if _, err := NewCosts(-1, 3); err == nil {
		t.Error("negative task count accepted")
	}
	if _, err := NewCosts(3, 0); err == nil {
		t.Error("zero processors accepted")
	}
	c, err := NewCosts(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(2, 3); err != nil {
		t.Errorf("Validate failed on matching shape: %v", err)
	}
	if err := c.Validate(3, 3); err == nil {
		t.Error("Validate accepted wrong task count")
	}
	if err := c.Validate(2, 2); err == nil {
		t.Error("Validate accepted wrong processor count")
	}
}

func TestCostsFromRows(t *testing.T) {
	if _, err := CostsFromRows(nil); err == nil {
		t.Error("empty rows accepted")
	}
	if _, err := CostsFromRows([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := CostsFromRows([][]float64{{1, -2}}); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := CostsFromRows([][]float64{{1, math.NaN()}}); err == nil {
		t.Error("NaN cost accepted")
	}
	if _, err := CostsFromRows([][]float64{{1, math.Inf(1)}}); err == nil {
		t.Error("infinite cost accepted")
	}
	c, err := CostsFromRows([][]float64{{14, 16, 9}, {13, 19, 18}})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumTasks() != 2 || c.NumProcs() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", c.NumTasks(), c.NumProcs())
	}
	if got := c.At(1, 2); got != 18 {
		t.Errorf("At(1,2) = %g, want 18", got)
	}
}

func TestMustCostsFromRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCostsFromRows did not panic on bad input")
		}
	}()
	MustCostsFromRows([][]float64{{-1}})
}

func TestCostsStatistics(t *testing.T) {
	c := MustCostsFromRows([][]float64{{14, 16, 9}})
	if got := c.Mean(0); math.Abs(got-13) > 1e-12 {
		t.Errorf("Mean = %g, want 13", got)
	}
	min, p := c.Min(0)
	if min != 9 || p != 2 {
		t.Errorf("Min = %g on P%d, want 9 on P3", min, p+1)
	}
	if got := c.Max(0); got != 16 {
		t.Errorf("Max = %g, want 16", got)
	}
	// Sample σ of {14,16,9}: mean 13, squared devs 1+9+16 = 26, /2 = 13.
	if got := c.SampleStdDev(0); math.Abs(got-math.Sqrt(13)) > 1e-12 {
		t.Errorf("SampleStdDev = %g, want %g", got, math.Sqrt(13))
	}
}

func TestSampleStdDevSingleProc(t *testing.T) {
	c := MustCostsFromRows([][]float64{{42}})
	if got := c.SampleStdDev(0); got != 0 {
		t.Errorf("single-processor σ = %g, want 0", got)
	}
}

func TestMinTieBreaksToLowerProc(t *testing.T) {
	c := MustCostsFromRows([][]float64{{5, 5, 5}})
	if _, p := c.Min(0); p != 0 {
		t.Errorf("Min tie went to P%d, want P1", p+1)
	}
}

func TestRowIsACopy(t *testing.T) {
	c := MustCostsFromRows([][]float64{{1, 2}})
	r := c.Row(0)
	r[0] = 99
	if c.At(0, 0) != 1 {
		t.Fatal("Row returned a live reference")
	}
}

func TestExtendZeroRows(t *testing.T) {
	c := MustCostsFromRows([][]float64{{1, 2}})
	same := c.ExtendZeroRows(0)
	if same != c {
		t.Error("ExtendZeroRows(0) should return the receiver")
	}
	e := c.ExtendZeroRows(2)
	if e.NumTasks() != 3 {
		t.Fatalf("extended tasks = %d, want 3", e.NumTasks())
	}
	if e.At(0, 1) != 2 || e.At(1, 0) != 0 || e.At(2, 1) != 0 {
		t.Error("extension corrupted values")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := MustCostsFromRows([][]float64{{1, 2}})
	cl := c.Clone()
	if err := cl.Set(0, 0, 77); err != nil {
		t.Fatal(err)
	}
	if c.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

// TestQuickMeanMinMaxConsistency: min <= mean <= max for arbitrary rows, and
// σ >= 0.
func TestQuickMeanMinMaxConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		procs := 1 + rng.Intn(10)
		row := make([]float64, procs)
		for i := range row {
			row[i] = rng.Float64() * 100
		}
		c, err := CostsFromRows([][]float64{row})
		if err != nil {
			return false
		}
		min, _ := c.Min(0)
		mean, max := c.Mean(0), c.Max(0)
		return min <= mean+1e-9 && mean <= max+1e-9 && c.SampleStdDev(0) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
