// Package platform models the Heterogeneous Computing Environment (HCE) of
// the paper: a fixed set of fully connected heterogeneous processors, a
// computation-cost matrix W (execution time of every task on every
// processor, Definition 1), and a bandwidth model turning edge data volumes
// into communication times (Definition 2). There is no network contention
// and task execution is non-preemptive, matching Section III.
package platform

import (
	"errors"
	"fmt"
	"math"
)

// Proc identifies a processor (CPU / computing resource) in an HCE.
// Processors are dense indices in [0, Platform.NumProcs()).
type Proc int

// Platform describes the processor set and interconnect of one HCE.
//
// The paper assumes a fully connected, contention-free network. Bandwidth
// may be uniform (the common case: the communication-cost matrix C of the
// paper is then simply the edge data volume) or per-pair.
type Platform struct {
	procs     int
	bandwidth [][]float64 // nil => uniform bandwidth 1.0
	names     []string
}

// NewUniform returns a platform with p processors and uniform unit bandwidth
// between every distinct pair (so communication time == data volume). This
// matches the paper's evaluation, where C is given directly in time units.
func NewUniform(p int) (*Platform, error) {
	if p <= 0 {
		return nil, fmt.Errorf("platform: need at least one processor, got %d", p)
	}
	return &Platform{procs: p}, nil
}

// MustUniform is NewUniform that panics on error, for static configuration.
func MustUniform(p int) *Platform {
	pl, err := NewUniform(p)
	if err != nil {
		panic(err)
	}
	return pl
}

// NewWithBandwidth returns a platform whose pairwise link bandwidths are
// given by the symmetric positive matrix b (b[i][j] = B(m_i, m_j) of Eq. 2).
// Diagonal entries are ignored (intra-processor transfers cost zero).
func NewWithBandwidth(b [][]float64) (*Platform, error) {
	p := len(b)
	if p == 0 {
		return nil, errors.New("platform: empty bandwidth matrix")
	}
	for i := range b {
		if len(b[i]) != p {
			return nil, fmt.Errorf("platform: bandwidth row %d has %d entries, want %d", i, len(b[i]), p)
		}
		for j := range b[i] {
			if i == j {
				continue
			}
			if !(b[i][j] > 0) || math.IsInf(b[i][j], 0) || math.IsNaN(b[i][j]) {
				return nil, fmt.Errorf("platform: bandwidth B(%d,%d)=%g must be finite and positive", i, j, b[i][j])
			}
			if b[i][j] != b[j][i] {
				return nil, fmt.Errorf("platform: bandwidth matrix not symmetric at (%d,%d)", i, j)
			}
		}
	}
	cp := make([][]float64, p)
	for i := range b {
		cp[i] = append([]float64(nil), b[i]...)
	}
	return &Platform{procs: p, bandwidth: cp}, nil
}

// NumProcs reports the number of processors in the HCE.
func (p *Platform) NumProcs() int { return p.procs }

// Bandwidth returns B(a, b), the link bandwidth between two processors.
// It returns +Inf for a == b (local transfers are free).
func (p *Platform) Bandwidth(a, b Proc) float64 {
	if a == b {
		return math.Inf(1)
	}
	if p.bandwidth == nil {
		return 1.0
	}
	return p.bandwidth[a][b]
}

// Uniform reports whether every distinct-pair link runs at unit bandwidth
// (the paper's evaluation setting). Hot paths use this to replace the
// per-pair CommTime division with the data volume itself — data/1.0 and
// data are the same float64, so the substitution is bit-exact.
func (p *Platform) Uniform() bool { return p.bandwidth == nil }

// CommTime returns the communication time for shipping data units from
// processor a to processor b: Data / B(a,b) per Eq. 2, zero when a == b.
func (p *Platform) CommTime(data float64, a, b Proc) float64 {
	if a == b || data == 0 {
		return 0
	}
	return data / p.Bandwidth(a, b)
}

// TwoClusters returns a fully connected platform of size1+size2 processors
// split into two clusters: links within a cluster run at intra bandwidth,
// links across clusters at inter bandwidth. This is the classic
// heterogeneous-network model for studying communication-sensitive
// schedulers under non-uniform links (the paper's future work mentions
// "network conditions"; its own evaluation is uniform).
func TwoClusters(size1, size2 int, intra, inter float64) (*Platform, error) {
	if size1 < 1 || size2 < 1 {
		return nil, fmt.Errorf("platform: cluster sizes %d/%d must be positive", size1, size2)
	}
	if !(intra > 0) || !(inter > 0) {
		return nil, fmt.Errorf("platform: bandwidths intra=%g inter=%g must be positive", intra, inter)
	}
	p := size1 + size2
	b := make([][]float64, p)
	for i := range b {
		b[i] = make([]float64, p)
		for j := range b[i] {
			if i == j {
				continue
			}
			if (i < size1) == (j < size1) {
				b[i][j] = intra
			} else {
				b[i][j] = inter
			}
		}
	}
	pl, err := NewWithBandwidth(b)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p; i++ {
		cluster, idx := "A", i+1
		if i >= size1 {
			cluster, idx = "B", i-size1+1
		}
		pl.SetName(Proc(i), fmt.Sprintf("%s%d", cluster, idx))
	}
	return pl, nil
}

// SetName assigns a human-readable name to processor i (used in Gantt output).
func (p *Platform) SetName(i Proc, name string) {
	if p.names == nil {
		p.names = make([]string, p.procs)
	}
	p.names[i] = name
}

// Name returns the display name of processor i ("P1", "P2", ... by default).
func (p *Platform) Name(i Proc) string {
	if p.names != nil && p.names[i] != "" {
		return p.names[i]
	}
	return fmt.Sprintf("P%d", int(i)+1)
}

// String summarises the platform.
func (p *Platform) String() string {
	kind := "uniform-bandwidth"
	if p.bandwidth != nil {
		kind = "per-pair-bandwidth"
	}
	return fmt.Sprintf("platform.Platform{procs: %d, %s}", p.procs, kind)
}
