package platform

import (
	"fmt"
	"math"
)

// Costs is the W matrix of Definition 1: Costs.At(t, p) is the execution
// time of task t on processor p. Rows are tasks, columns processors.
// Pseudo tasks (normalisation artifacts) have all-zero rows.
type Costs struct {
	tasks int
	procs int
	w     []float64 // row-major tasks x procs
}

// NewCosts returns an all-zero cost matrix for tasks x procs.
func NewCosts(tasks, procs int) (*Costs, error) {
	if tasks < 0 || procs <= 0 {
		return nil, fmt.Errorf("platform: invalid cost matrix shape %dx%d", tasks, procs)
	}
	return &Costs{tasks: tasks, procs: procs, w: make([]float64, tasks*procs)}, nil
}

// CostsFromRows builds a cost matrix from per-task rows. All rows must have
// the same length and contain only finite, non-negative values.
func CostsFromRows(rows [][]float64) (*Costs, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("platform: no cost rows")
	}
	procs := len(rows[0])
	c, err := NewCosts(len(rows), procs)
	if err != nil {
		return nil, err
	}
	for t, row := range rows {
		if len(row) != procs {
			return nil, fmt.Errorf("platform: cost row %d has %d entries, want %d", t, len(row), procs)
		}
		for p, v := range row {
			if err := c.Set(t, Proc(p), v); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// MustCostsFromRows is CostsFromRows that panics on error.
func MustCostsFromRows(rows [][]float64) *Costs {
	c, err := CostsFromRows(rows)
	if err != nil {
		panic(err)
	}
	return c
}

// NumTasks reports the number of task rows.
func (c *Costs) NumTasks() int { return c.tasks }

// NumProcs reports the number of processor columns.
func (c *Costs) NumProcs() int { return c.procs }

// At returns W(t, p), the execution time of task t on processor p.
func (c *Costs) At(task int, p Proc) float64 { return c.w[task*c.procs+int(p)] }

// RowView returns W(task, ·) as a subslice of the cost matrix — the
// zero-copy companion to Row for hot paths that copy or scan a whole row
// without per-element index arithmetic. The caller must not modify it.
func (c *Costs) RowView(task int) []float64 { return c.w[task*c.procs : (task+1)*c.procs] }

// Set stores W(t, p). Values must be finite and non-negative.
func (c *Costs) Set(task int, p Proc, v float64) error {
	if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return fmt.Errorf("platform: invalid cost W(%d,%d)=%g", task, p, v)
	}
	c.w[task*c.procs+int(p)] = v
	return nil
}

// Row returns a copy of task t's execution times across all processors.
func (c *Costs) Row(task int) []float64 {
	return append([]float64(nil), c.w[task*c.procs:(task+1)*c.procs]...)
}

// Mean returns the mean execution time of task t across processors (Eq. 1).
func (c *Costs) Mean(task int) float64 {
	sum := 0.0
	for p := 0; p < c.procs; p++ {
		sum += c.At(task, Proc(p))
	}
	return sum / float64(c.procs)
}

// Min returns the minimum execution time of task t and the processor that
// achieves it (smallest index on ties).
func (c *Costs) Min(task int) (float64, Proc) {
	best, bp := math.Inf(1), Proc(0)
	for p := 0; p < c.procs; p++ {
		if v := c.At(task, Proc(p)); v < best {
			best, bp = v, Proc(p)
		}
	}
	return best, bp
}

// Max returns the maximum execution time of task t across processors.
func (c *Costs) Max(task int) float64 {
	best := math.Inf(-1)
	for p := 0; p < c.procs; p++ {
		if v := c.At(task, Proc(p)); v > best {
			best = v
		}
	}
	return best
}

// SampleStdDev returns the sample standard deviation (n−1 denominator) of
// task t's execution times across processors — the weight SDBATS uses for
// its upward rank. It returns 0 when there is a single processor.
func (c *Costs) SampleStdDev(task int) float64 {
	if c.procs < 2 {
		return 0
	}
	mean := c.Mean(task)
	ss := 0.0
	for p := 0; p < c.procs; p++ {
		d := c.At(task, Proc(p)) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(c.procs-1))
}

// ExtendZeroRows returns a cost matrix with extra all-zero task rows
// appended (used after pseudo-task normalisation). When extra == 0 the
// receiver itself is returned.
func (c *Costs) ExtendZeroRows(extra int) *Costs {
	if extra == 0 {
		return c
	}
	n := &Costs{tasks: c.tasks + extra, procs: c.procs, w: make([]float64, (c.tasks+extra)*c.procs)}
	copy(n.w, c.w)
	return n
}

// Clone returns a deep copy of the matrix.
func (c *Costs) Clone() *Costs {
	return &Costs{tasks: c.tasks, procs: c.procs, w: append([]float64(nil), c.w...)}
}

// Validate checks the matrix shape against a task count and processor count.
func (c *Costs) Validate(tasks, procs int) error {
	if c.tasks != tasks {
		return fmt.Errorf("platform: cost matrix has %d task rows, workflow has %d tasks", c.tasks, tasks)
	}
	if c.procs != procs {
		return fmt.Errorf("platform: cost matrix has %d processor columns, platform has %d processors", c.procs, procs)
	}
	return nil
}
