// Package perf defines the repository's canonical benchmark suite and the
// persisted benchmark trajectory built on top of it: every run captures
// ns/op, allocs/op, bytes/op, GC activity, and environment metadata into a
// schema-versioned report, and Compare diffs a candidate run against a
// checked-in baseline with configurable regression thresholds. The
// cmd/hdltsbench driver wires the two together; BENCH_<n>.json files at the
// repository root are the trajectory itself, one per recorded epoch.
package perf

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"
)

// SchemaVersion stamps every report; Load rejects other versions so a
// future schema change cannot silently mis-compare against old files.
const SchemaVersion = 1

// SuiteName names the canonical suite; reports from other suites (none
// exist today) would not be comparable.
const SuiteName = "canonical"

// Bench is one named benchmark in the suite.
type Bench struct {
	// Name identifies the benchmark across runs ("solver/hdlts/v10k").
	Name string
	// HotPath marks benchmarks whose allocs/op the trajectory gates
	// strictly: any increase is a regression, mirroring the
	// //hdlts:hotpath analyzer contract.
	HotPath bool
	// Quick includes the benchmark in -quick runs (the CI profile).
	Quick bool
	// Benchtime overrides the runner's default -test.benchtime for this
	// benchmark ("1x", "200ms"); empty inherits the default.
	Benchtime string
	// F is the benchmark body. It must call b.ReportAllocs so allocs/op
	// and bytes/op are recorded.
	F func(b *testing.B)
}

// Env records where a report was produced. ns/op is only gated when the
// baseline and candidate ran on comparable hardware (same CPU model and
// count); allocs/op is machine-independent and always gated.
type Env struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

// Comparable reports whether ns/op measured under e and o can be compared.
func (e Env) Comparable(o Env) bool {
	return e.CPUModel == o.CPUModel && e.NumCPU == o.NumCPU && e.GOARCH == o.GOARCH
}

// Result is one benchmark's measurement.
type Result struct {
	Name        string             `json:"name"`
	HotPath     bool               `json:"hot_path"`
	N           int                `json:"n"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	GCCycles    uint32             `json:"gc_cycles"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is one recorded epoch of the benchmark trajectory.
type Report struct {
	SchemaVersion int      `json:"schema_version"`
	Suite         string   `json:"suite"`
	Quick         bool     `json:"quick"`
	CreatedUnix   int64    `json:"created_unix"`
	Env           Env      `json:"env"`
	Results       []Result `json:"results"`
}

// Find returns the named result, or nil.
func (r *Report) Find(name string) *Result {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// RunOptions tune one suite execution.
type RunOptions struct {
	// Quick restricts the run to Quick-marked benchmarks and shortens the
	// default benchtime (the CI profile).
	Quick bool
	// Filter, when non-nil, further restricts by name.
	Filter *regexp.Regexp
	// Benchtime overrides the default -test.benchtime for benchmarks
	// without their own override. Empty means 1s (200ms under Quick).
	Benchtime string
	// Log, when non-nil, receives one progress line per benchmark.
	Log io.Writer
}

func (o RunOptions) defaultBenchtime() string {
	if o.Benchtime != "" {
		return o.Benchtime
	}
	if o.Quick {
		return "200ms"
	}
	return "1s"
}

// Selected returns the benchmarks the options keep, in suite order.
func Selected(benches []Bench, opts RunOptions) []Bench {
	out := make([]Bench, 0, len(benches))
	for _, bn := range benches {
		if opts.Quick && !bn.Quick {
			continue
		}
		if opts.Filter != nil && !opts.Filter.MatchString(bn.Name) {
			continue
		}
		out = append(out, bn)
	}
	return out
}

// RunSuite executes the selected benchmarks sequentially and assembles the
// report. Benchmarks run via testing.Benchmark, so the process must not be
// under `go test` benchmark execution itself; from tests, call it in a
// plain test function.
func RunSuite(benches []Bench, opts RunOptions) (*Report, error) {
	if flag.Lookup("test.benchtime") == nil {
		testing.Init()
	}
	prev := flag.Lookup("test.benchtime").Value.String()
	defer flag.Set("test.benchtime", prev)

	rep := &Report{
		SchemaVersion: SchemaVersion,
		Suite:         SuiteName,
		Quick:         opts.Quick,
		CreatedUnix:   time.Now().Unix(),
		Env:           CaptureEnv(),
	}
	for _, bn := range Selected(benches, opts) {
		bt := bn.Benchtime
		if bt == "" {
			bt = opts.defaultBenchtime()
		}
		if err := flag.Set("test.benchtime", bt); err != nil {
			return nil, fmt.Errorf("perf: set benchtime %q: %w", bt, err)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res := testing.Benchmark(bn.F)
		runtime.ReadMemStats(&after)
		if res.N == 0 {
			return nil, fmt.Errorf("perf: benchmark %s failed (0 iterations)", bn.Name)
		}
		r := Result{
			Name:        bn.Name,
			HotPath:     bn.HotPath,
			N:           res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			GCCycles:    after.NumGC - before.NumGC,
		}
		if len(res.Extra) > 0 {
			r.Metrics = make(map[string]float64, len(res.Extra))
			for k, v := range res.Extra {
				r.Metrics[k] = v
			}
		}
		rep.Results = append(rep.Results, r)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "%-32s %12.0f ns/op %8d B/op %6d allocs/op  (n=%d)\n",
				bn.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.N)
		}
	}
	return rep, nil
}

// CaptureEnv snapshots the current machine.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
}

// cpuModel best-effort reads the CPU model name (Linux /proc/cpuinfo);
// empty elsewhere, which simply disables cross-machine ns/op gating.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}
