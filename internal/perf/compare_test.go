package perf

import "testing"

func baseReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Suite:         SuiteName,
		Env:           Env{CPUModel: "cpu-a", NumCPU: 8, GOARCH: "amd64"},
		Results: []Result{
			{Name: "hot/a", HotPath: true, NsPerOp: 1000, AllocsPerOp: 10},
			{Name: "cold/b", NsPerOp: 1000, AllocsPerOp: 10},
		},
	}
}

func candReport(env Env, results ...Result) *Report {
	return &Report{SchemaVersion: SchemaVersion, Suite: SuiteName, Env: env, Results: results}
}

func deltaByName(deltas []Delta, name string) *Delta {
	for i := range deltas {
		if deltas[i].Name == name {
			return &deltas[i]
		}
	}
	return nil
}

func TestCompareAllocBreachOnHotPathOnly(t *testing.T) {
	base := baseReport()
	cand := candReport(base.Env,
		Result{Name: "hot/a", HotPath: true, NsPerOp: 1000, AllocsPerOp: 11},
		Result{Name: "cold/b", NsPerOp: 1000, AllocsPerOp: 50},
	)
	deltas := Compare(base, cand, CompareOptions{})
	if d := deltaByName(deltas, "hot/a"); d == nil || !d.Breach || d.Status != "regression" {
		t.Errorf("hot alloc growth not a breach: %+v", d)
	}
	if d := deltaByName(deltas, "cold/b"); d == nil || d.Breach {
		t.Errorf("cold alloc growth breached: %+v", d)
	}
	// An explicit allowance admits the same growth.
	deltas = Compare(base, cand, CompareOptions{AllocThreshold: 1})
	if d := deltaByName(deltas, "hot/a"); d.Breach {
		t.Errorf("alloc threshold ignored: %+v", d)
	}
}

func TestCompareNsGate(t *testing.T) {
	base := baseReport()
	sameEnv := base.Env
	otherEnv := Env{CPUModel: "cpu-b", NumCPU: 4, GOARCH: "amd64"}

	slow := Result{Name: "hot/a", HotPath: true, NsPerOp: 1300, AllocsPerOp: 10}
	// Comparable environment: +30% ns/op on a hot path breaches at the
	// default 20% threshold.
	deltas := Compare(base, candReport(sameEnv, slow), CompareOptions{})
	if d := deltaByName(deltas, "hot/a"); d == nil || !d.Breach {
		t.Errorf("comparable ns regression not breached: %+v", d)
	}
	// Wider threshold admits it.
	deltas = Compare(base, candReport(sameEnv, slow), CompareOptions{NsThresholdPct: 50})
	if d := deltaByName(deltas, "hot/a"); d.Breach {
		t.Errorf("ns threshold ignored: %+v", d)
	}
	// Different machine: ns/op is noise, no breach — unless forced.
	deltas = Compare(base, candReport(otherEnv, slow), CompareOptions{})
	if d := deltaByName(deltas, "hot/a"); d.Breach {
		t.Errorf("cross-env ns delta breached without -force-ns: %+v", d)
	} else if d.Reason == "" {
		t.Error("skipped ns gate left no explanation")
	}
	deltas = Compare(base, candReport(otherEnv, slow), CompareOptions{ForceNs: true})
	if d := deltaByName(deltas, "hot/a"); !d.Breach {
		t.Errorf("forced ns gate did not breach: %+v", d)
	}
	// Cold benches never ns-breach.
	coldSlow := Result{Name: "cold/b", NsPerOp: 5000, AllocsPerOp: 10}
	deltas = Compare(base, candReport(sameEnv, coldSlow), CompareOptions{})
	if d := deltaByName(deltas, "cold/b"); d.Breach {
		t.Errorf("cold ns regression breached: %+v", d)
	}
}

func TestCompareMissingNewImproved(t *testing.T) {
	base := baseReport()
	cand := candReport(base.Env,
		Result{Name: "hot/a", HotPath: true, NsPerOp: 500, AllocsPerOp: 10},
		Result{Name: "hot/c", HotPath: true, NsPerOp: 100, AllocsPerOp: 1},
	)
	deltas := Compare(base, cand, CompareOptions{})
	if d := deltaByName(deltas, "hot/a"); d == nil || d.Status != "improved" || d.Breach {
		t.Errorf("-50%% ns not marked improved: %+v", d)
	}
	if d := deltaByName(deltas, "cold/b"); d == nil || d.Status != "missing" || d.Breach {
		t.Errorf("missing bench mishandled: %+v", d)
	}
	if d := deltaByName(deltas, "hot/c"); d == nil || d.Status != "new" || d.Breach {
		t.Errorf("new bench mishandled: %+v", d)
	}
	if len(Breaches(deltas)) != 0 {
		t.Errorf("phantom breaches: %+v", Breaches(deltas))
	}
}
