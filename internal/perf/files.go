package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// benchFileRe matches trajectory files: BENCH_0001.json, BENCH_0002.json...
var benchFileRe = regexp.MustCompile(`^BENCH_(\d{4})\.json$`)

// LatestReport loads the highest-numbered BENCH_<n>.json in dir. A nil
// report (and empty path) with nil error means the trajectory is empty.
func LatestReport(dir string) (*Report, string, error) {
	names, err := trajectoryFiles(dir)
	if err != nil || len(names) == 0 {
		return nil, "", err
	}
	path := filepath.Join(dir, names[len(names)-1])
	rep, err := LoadReport(path)
	if err != nil {
		return nil, "", err
	}
	return rep, path, nil
}

// NextPath returns the path the next trajectory epoch should be written
// to: one past the highest existing number, starting at BENCH_0001.json.
func NextPath(dir string) (string, error) {
	names, err := trajectoryFiles(dir)
	if err != nil {
		return "", err
	}
	n := 0
	if len(names) > 0 {
		last := benchFileRe.FindStringSubmatch(names[len(names)-1])
		n, _ = strconv.Atoi(last[1])
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%04d.json", n+1)), nil
}

// trajectoryFiles lists the trajectory file names in dir in epoch order.
func trajectoryFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("perf: read trajectory dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && benchFileRe.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// LoadReport reads and validates one trajectory file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: read report: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("perf: %s has schema version %d, this build reads %d", path, rep.SchemaVersion, SchemaVersion)
	}
	if rep.Suite != SuiteName {
		return nil, fmt.Errorf("perf: %s records suite %q, want %q", path, rep.Suite, SuiteName)
	}
	return &rep, nil
}

// WriteReport writes the report as indented JSON via a same-directory
// temp file and rename, so a crashed run never leaves a torn epoch.
func WriteReport(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encode report: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-*.json")
	if err != nil {
		return fmt.Errorf("perf: write report: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("perf: write report: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("perf: write report: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("perf: write report: %w", err)
	}
	return nil
}
