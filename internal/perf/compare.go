package perf

import "fmt"

// CompareOptions tune the regression gate.
type CompareOptions struct {
	// NsThresholdPct is the tolerated ns/op increase on hot-path
	// benchmarks, in percent (default 20 when zero).
	NsThresholdPct float64
	// AllocThreshold is the tolerated allocs/op increase on hot-path
	// benchmarks (default 0: any increase is a regression).
	AllocThreshold int64
	// ForceNs gates ns/op even when the two reports' environments are not
	// comparable (different CPU model/count). Off by default: wall-clock
	// across different machines is noise, not signal.
	ForceNs bool
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.NsThresholdPct == 0 {
		o.NsThresholdPct = 20
	}
	return o
}

// Delta is one benchmark's baseline-vs-candidate comparison.
type Delta struct {
	Name   string `json:"name"`
	Status string `json:"status"` // ok | regression | improved | new | missing
	Breach bool   `json:"breach"`
	Reason string `json:"reason,omitempty"`

	BaseNs     float64 `json:"base_ns_per_op,omitempty"`
	CandNs     float64 `json:"cand_ns_per_op,omitempty"`
	NsPct      float64 `json:"ns_pct,omitempty"`
	BaseAllocs int64   `json:"base_allocs_per_op,omitempty"`
	CandAllocs int64   `json:"cand_allocs_per_op,omitempty"`
}

// Compare diffs a candidate report against the baseline, one Delta per
// benchmark present in either. Breaches (Delta.Breach) are confined to
// hot-path benchmarks: allocs/op may not grow past the alloc threshold on
// any machine, ns/op may not grow past the percentage threshold when the
// environments are comparable (or ForceNs is set). A benchmark missing
// from the candidate run (filtered out, or a quick run against a full
// baseline) is reported but never a breach; neither is a new benchmark
// with no baseline yet.
func Compare(base, cand *Report, opts CompareOptions) []Delta {
	opts = opts.withDefaults()
	nsComparable := base.Env.Comparable(cand.Env) || opts.ForceNs

	var deltas []Delta
	for i := range base.Results {
		b := &base.Results[i]
		c := cand.Find(b.Name)
		if c == nil {
			deltas = append(deltas, Delta{
				Name:   b.Name,
				Status: "missing",
				Reason: "present in baseline, not run in candidate",
			})
			continue
		}
		d := Delta{
			Name:       b.Name,
			Status:     "ok",
			BaseNs:     b.NsPerOp,
			CandNs:     c.NsPerOp,
			BaseAllocs: b.AllocsPerOp,
			CandAllocs: c.AllocsPerOp,
		}
		if b.NsPerOp > 0 {
			d.NsPct = (c.NsPerOp - b.NsPerOp) / b.NsPerOp * 100
		}
		hot := b.HotPath || c.HotPath
		if hot && c.AllocsPerOp > b.AllocsPerOp+opts.AllocThreshold {
			d.Status = "regression"
			d.Breach = true
			d.Reason = fmt.Sprintf("allocs/op grew %d -> %d on a hot path", b.AllocsPerOp, c.AllocsPerOp)
		} else if hot && nsComparable && d.NsPct > opts.NsThresholdPct {
			d.Status = "regression"
			d.Breach = true
			d.Reason = fmt.Sprintf("ns/op grew %+.1f%% (threshold %.0f%%)", d.NsPct, opts.NsThresholdPct)
		} else if hot && !nsComparable && d.NsPct > opts.NsThresholdPct {
			d.Reason = "ns/op delta ignored: environments not comparable (use -force-ns to gate anyway)"
		} else if d.NsPct < -opts.NsThresholdPct {
			d.Status = "improved"
		}
		deltas = append(deltas, d)
	}
	for i := range cand.Results {
		c := &cand.Results[i]
		if base.Find(c.Name) == nil {
			deltas = append(deltas, Delta{
				Name:       c.Name,
				Status:     "new",
				CandNs:     c.NsPerOp,
				CandAllocs: c.AllocsPerOp,
				Reason:     "no baseline yet",
			})
		}
	}
	return deltas
}

// Breaches filters the deltas down to the gate failures.
func Breaches(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Breach {
			out = append(out, d)
		}
	}
	return out
}
