package perf

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestRunSuiteReport drives the runner over a synthetic two-bench suite
// and checks measurement plumbing: per-bench benchtime overrides, alloc
// accounting, and custom-metric capture.
func TestRunSuiteReport(t *testing.T) {
	benches := []Bench{
		{Name: "t/alloc", HotPath: true, Quick: true, Benchtime: "3x", F: func(b *testing.B) {
			b.ReportAllocs()
			var sink []byte
			for i := 0; i < b.N; i++ {
				sink = make([]byte, 1024)
			}
			_ = sink
			b.ReportMetric(42, "custom_unit")
		}},
		{Name: "t/clean", Quick: false, Benchtime: "2x", F: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
			}
		}},
	}
	var log bytes.Buffer
	rep, err := RunSuite(benches, RunOptions{Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != SchemaVersion || rep.Suite != SuiteName || rep.CreatedUnix == 0 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.Env.GoVersion == "" || rep.Env.NumCPU == 0 {
		t.Errorf("env not captured: %+v", rep.Env)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	al := rep.Find("t/alloc")
	if al == nil || al.N != 3 {
		t.Fatalf("t/alloc: benchtime override not honoured: %+v", al)
	}
	if !al.HotPath {
		t.Error("t/alloc lost its hot-path mark")
	}
	if al.AllocsPerOp != 1 || al.BytesPerOp < 1024 {
		t.Errorf("t/alloc accounting: %d allocs/op, %d B/op", al.AllocsPerOp, al.BytesPerOp)
	}
	if al.Metrics["custom_unit"] != 42 {
		t.Errorf("custom metric lost: %v", al.Metrics)
	}
	if cl := rep.Find("t/clean"); cl == nil || cl.N != 2 || cl.AllocsPerOp != 0 {
		t.Errorf("t/clean: %+v", cl)
	}
	if !strings.Contains(log.String(), "t/alloc") {
		t.Error("progress log empty")
	}
}

// TestRunSuiteSelection checks Quick and Filter narrowing.
func TestRunSuiteSelection(t *testing.T) {
	noop := func(b *testing.B) { b.ReportAllocs() }
	benches := []Bench{
		{Name: "a/one", Quick: true, Benchtime: "1x", F: noop},
		{Name: "a/two", Quick: false, Benchtime: "1x", F: noop},
		{Name: "b/three", Quick: true, Benchtime: "1x", F: noop},
	}
	rep, err := RunSuite(benches, RunOptions{Quick: true, Filter: regexp.MustCompile(`^a/`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "a/one" {
		t.Fatalf("selection wrong: %+v", rep.Results)
	}
	if !rep.Quick {
		t.Error("quick flag not recorded")
	}
}

// TestSuiteShape pins the canonical suite's contract: stable names, a
// non-empty quick subset, and the hot-path set the CI gate relies on.
func TestSuiteShape(t *testing.T) {
	suite := Suite()
	seen := map[string]bool{}
	quick, hot := 0, 0
	for _, bn := range suite {
		if bn.Name == "" || bn.F == nil {
			t.Fatalf("malformed bench: %+v", bn.Name)
		}
		if seen[bn.Name] {
			t.Fatalf("duplicate bench name %q", bn.Name)
		}
		seen[bn.Name] = true
		if bn.Quick {
			quick++
		}
		if bn.HotPath {
			hot++
		}
	}
	if quick < 5 || hot < 5 {
		t.Errorf("suite has %d quick and %d hot benches; the CI gate needs both populated", quick, hot)
	}
	for _, name := range []string{"solver/hdlts/v1k", "solver/hdlts/v10k", "solver/hdlts/v100k",
		"hash/canonical/v1k", "wal/submit_fsync", "service/schedule_roundtrip", "phase/timer_tick"} {
		if !seen[name] {
			t.Errorf("canonical bench %q missing from the suite", name)
		}
	}
}

// TestPhaseTickBenchRuns executes the one suite benchmark cheap enough for
// the unit-test tier end to end through the real runner.
func TestPhaseTickBenchRuns(t *testing.T) {
	rep, err := RunSuite(Suite(), RunOptions{
		Filter: regexp.MustCompile(`^phase/timer_tick$`),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The bench's own pinned Benchtime wins over any RunOptions default,
	// so N is the suite's pinned iteration count.
	r := rep.Find("phase/timer_tick")
	if r == nil || r.N == 0 {
		t.Fatalf("phase/timer_tick did not run: %+v", r)
	}
	if r.AllocsPerOp != 0 {
		t.Errorf("phase tick allocates %d/op; the zero-alloc guarantee broke", r.AllocsPerOp)
	}
}

func TestTrajectoryFiles(t *testing.T) {
	dir := t.TempDir()
	if rep, path, err := LatestReport(dir); rep != nil || path != "" || err != nil {
		t.Fatalf("empty dir: rep=%v path=%q err=%v", rep, path, err)
	}
	p1, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "BENCH_0001.json" {
		t.Fatalf("first epoch path = %s", p1)
	}
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Suite:         SuiteName,
		CreatedUnix:   1700000000,
		Env:           CaptureEnv(),
		Results:       []Result{{Name: "t/one", HotPath: true, N: 5, NsPerOp: 100, AllocsPerOp: 3, BytesPerOp: 64}},
	}
	if err := WriteReport(p1, rep); err != nil {
		t.Fatal(err)
	}
	got, path, err := LatestReport(dir)
	if err != nil {
		t.Fatal(err)
	}
	if path != p1 || got.CreatedUnix != rep.CreatedUnix || len(got.Results) != 1 {
		t.Fatalf("round trip: path=%s report=%+v", path, got)
	}
	if g, w := got.Results[0], rep.Results[0]; g.Name != w.Name || g.NsPerOp != w.NsPerOp ||
		g.AllocsPerOp != w.AllocsPerOp || g.HotPath != w.HotPath {
		t.Errorf("result drifted: %+v != %+v", g, w)
	}
	p2, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "BENCH_0002.json" {
		t.Fatalf("second epoch path = %s", p2)
	}
	// No torn temp files left behind.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() != "BENCH_0001.json" {
			t.Errorf("stray file %s", e.Name())
		}
	}
}

func TestLoadReportRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_0001.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 99, "suite": "canonical"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("foreign schema accepted: %v", err)
	}
	if err := os.WriteFile(path, []byte(`{"schema_version": 1, "suite": "other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(path); err == nil || !strings.Contains(err.Error(), "suite") {
		t.Fatalf("foreign suite accepted: %v", err)
	}
}
