package perf

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"hdlts/internal/core"
	"hdlts/internal/gen"
	"hdlts/internal/jobs"
	"hdlts/internal/obs"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
	"hdlts/internal/server"
)

// Suite returns the canonical benchmark suite. Names are stable across
// releases: a renamed benchmark breaks the trajectory (it shows up as
// missing/new in every future diff), so rename only with cause.
func Suite() []Bench {
	// Hot-gated benches pin their iteration count ("Nx") rather than
	// inheriting the time-based default: testing.Benchmark carries a small
	// fixed allocation overhead per run, and amortising it over a
	// run-dependent N makes allocs/op wobble by ±1 between a full baseline
	// and a quick candidate. Identical N on both sides keeps the strict
	// zero-increase gate exact.
	return []Bench{
		{Name: "solver/hdlts/v1k", HotPath: true, Quick: true, Benchtime: "100x", F: solverBench("hdlts", 1000)},
		{Name: "solver/hdlts/v10k", HotPath: true, Quick: true, Benchtime: "10x", F: solverBench("hdlts", 10000)},
		{Name: "solver/hdlts/v10k_steady", HotPath: true, Quick: true, Benchtime: "10x", F: steadyBench(10000)},
		{Name: "solver/hdlts/v100k", HotPath: true, Quick: true, Benchtime: "1x", F: solverBench("hdlts", 100000)},
		{Name: "solver/hdlts/v1m", HotPath: true, Benchtime: "1x", F: solverBench("hdlts", 1000000)},
		{Name: "solver/heft/v1k", HotPath: true, Quick: true, Benchtime: "100x", F: solverBench("heft", 1000)},
		{Name: "solver/heft/v10k", HotPath: true, Benchtime: "10x", F: solverBench("heft", 10000)},
		{Name: "solver/cpop/v1k", HotPath: true, Quick: true, Benchtime: "100x", F: solverBench("cpop", 1000)},
		{Name: "solver/pets/v1k", HotPath: true, Quick: true, Benchtime: "100x", F: solverBench("pets", 1000)},
		{Name: "solver/peft/v1k", HotPath: true, Quick: true, Benchtime: "100x", F: solverBench("peft", 1000)},
		{Name: "phase/timer_tick", HotPath: true, Quick: true, Benchtime: "500000x", F: phaseTickBench},
		// Not hot-gated: encoding/json's pooled encoder states make
		// allocs/op vary by ±1 with GC timing.
		{Name: "hash/canonical/v1k", Quick: true, F: hashBench(1000)},
		{Name: "wal/submit_fsync", Quick: true, F: walBench},
		{Name: "service/schedule_roundtrip", Quick: true, F: serviceBench},
	}
}

// Benchmark problems are deterministic (fixed seed per size) and cached:
// the trajectory must measure the solvers, not the generator, and two runs
// of the suite must schedule byte-identical inputs.
var (
	problemMu sync.Mutex
	problems  = map[int]*sched.Problem{}
)

func problem(v int) *sched.Problem {
	problemMu.Lock()
	defer problemMu.Unlock()
	if pr, ok := problems[v]; ok {
		return pr
	}
	rng := rand.New(rand.NewSource(7))
	pr, err := gen.Random(gen.Params{V: v, Alpha: 1.5, Density: 3, CCR: 2, Procs: 8, WDAG: 80, Beta: 1.2}, rng)
	if err != nil {
		panic(fmt.Sprintf("perf: generate %d-task problem: %v", v, err))
	}
	problems[v] = pr
	return pr
}

// solverBench times one registry algorithm over the fixed problem of the
// given size. One untimed warm-up run pays the one-time costs (metric
// series creation, lazily sized caches) so allocs/op measures steady state.
func solverBench(name string, v int) func(*testing.B) {
	return func(b *testing.B) {
		pr := problem(v)
		alg := registry.MustGet(name)
		if _, err := alg.Schedule(pr); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := alg.Schedule(pr); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// steadyBench times the allocation-free steady state of an HDLTS solve
// stream: ScheduleInto reuses the previous schedule's storage and the
// pooled arena, so after the warm-up solve the loop body performs zero heap
// allocations — the hot-gate pins allocs/op at 0, turning any regression
// into a blocking diff. MaxWorkers is 1 because the point is the per-solve
// allocation contract, not parallel throughput (worker hand-off is timed by
// the plain v10k bench, which uses the default options).
func steadyBench(v int) func(*testing.B) {
	return func(b *testing.B) {
		pr := problem(v)
		h := core.NewWithOptions(core.Options{MaxWorkers: 1})
		s, err := h.Schedule(pr)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		defer debug.SetGCPercent(debug.SetGCPercent(-1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s, err = h.ScheduleInto(pr, s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// hashBench times the content addressing the job subsystem keys its cache
// and coalescing on: canonical serialisation plus sha256.
func hashBench(v int) func(*testing.B) {
	return func(b *testing.B) {
		pr := problem(v)
		if _, err := server.CanonicalHash("HDLTS", pr); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := server.CanonicalHash("HDLTS", pr); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// phaseTickBench times one solver phase-timer tick boundary, the primitive
// the instrumented inner loops pay per iteration.
func phaseTickBench(b *testing.B) {
	prof := obs.SolverProfileFor("BENCH")
	acc := prof.Accum(obs.PhaseScan)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tick := acc.Tick()
		tick.End()
	}
	acc.Flush()
}

// walBench times durable job admission: each Submit appends one record to
// the write-ahead log and fsyncs before returning, so ns/op is dominated
// by the WAL append+fsync path.
func walBench(b *testing.B) {
	dir, err := os.MkdirTemp("", "hdltsbench-wal-")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	done := json.RawMessage(`{"ok":true}`)
	m, err := jobs.Open(jobs.Config{
		Dir:        dir,
		Workers:    1,
		QueueDepth: b.N + 1,
		CacheSize:  1,
		Metrics:    obs.NewRegistry(),
		Run: func(context.Context, string, json.RawMessage) (json.RawMessage, error) {
			return done, nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Close(ctx); err != nil {
			b.Error(err)
		}
	}()
	payload := json.RawMessage(`{"bench":true}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Unique hashes defeat the result cache and in-flight coalescing:
		// every iteration must take the durable path.
		if _, err := m.Submit("hdlts", fmt.Sprintf("bench-%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
}

// serviceBench times one synchronous POST /v1/schedule round trip through
// the full handler stack: decode, validate, queue, solve, encode.
func serviceBench(b *testing.B) {
	srv, err := server.New(server.Config{Metrics: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Error(err)
		}
	}()
	canon, err := server.CanonicalProblemJSON(problem(100))
	if err != nil {
		b.Fatal(err)
	}
	payload, err := json.Marshal(server.ScheduleRequest{Algorithm: "heft", Problem: canon})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(payload))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("POST /v1/schedule: status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
