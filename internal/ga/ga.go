// Package ga implements the genetic-algorithm scheduling family the
// paper's Related Work surveys (Section II, refs [12]–[17]): an intensive
// stochastic search that trades run time for schedule quality, against
// which list schedulers like HDLTS position their low-cost results.
//
// The design is the standard two-part chromosome of the workflow-GA
// literature:
//
//   - a scheduling list: a precedence-compatible permutation of the tasks;
//   - a mapping: one processor per task.
//
// Decoding places tasks in list order on their mapped processors with
// insertion-based timing; fitness is the makespan. The search uses
// tournament selection, precedence-preserving order crossover, uniform
// mapping crossover, order and mapping mutations, and elitism. One
// individual of the initial population is seeded from HEFT's schedule, the
// common warm-start in this literature.
package ga

import (
	"fmt"
	"math/rand"
	"sort"

	"hdlts/internal/dag"
	"hdlts/internal/heuristics"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// Params tunes the search. Zero values select the defaults noted per field.
type Params struct {
	// Population size (default 40).
	Population int
	// Generations evolved (default 100).
	Generations int
	// CrossoverP is the per-offspring crossover probability (default 0.9).
	CrossoverP float64
	// MutationP is the per-offspring mutation probability (default 0.3).
	MutationP float64
	// Tournament size for selection (default 3).
	Tournament int
	// Elite individuals copied unchanged per generation (default 2).
	Elite int
	// Seed drives all randomness; the search is deterministic per seed.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Population <= 0 {
		p.Population = 40
	}
	if p.Generations <= 0 {
		p.Generations = 100
	}
	if p.CrossoverP <= 0 {
		p.CrossoverP = 0.9
	}
	if p.MutationP <= 0 {
		p.MutationP = 0.3
	}
	if p.Tournament <= 0 {
		p.Tournament = 3
	}
	if p.Elite <= 0 {
		p.Elite = 2
	}
	if p.Elite >= p.Population {
		p.Elite = p.Population - 1
	}
	return p
}

// GA is the genetic-algorithm scheduler.
type GA struct {
	params Params
}

// New returns a GA scheduler with default parameters.
func New() *GA { return &GA{params: Params{}.withDefaults()} }

// NewWithParams returns a GA scheduler with explicit parameters.
func NewWithParams(p Params) *GA { return &GA{params: p.withDefaults()} }

// Name implements sched.Algorithm.
func (*GA) Name() string { return "GA" }

// individual is one candidate solution.
type individual struct {
	order   []dag.TaskID
	mapping []platform.Proc
	fitness float64 // makespan; lower is better
}

// Schedule implements sched.Algorithm.
func (ga *GA) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	prof := obs.SolverProfileFor(ga.Name())
	defer prof.Start(obs.PhaseSchedule).Stop()
	pr = pr.Normalize()
	p := ga.params
	rng := rand.New(rand.NewSource(p.Seed))

	pop, err := ga.initialPopulation(pr, rng)
	if err != nil {
		return nil, err
	}
	for i := range pop {
		if err := evaluate(pr, &pop[i]); err != nil {
			return nil, err
		}
	}
	sortByFitness(pop)

	for gen := 0; gen < p.Generations; gen++ {
		next := make([]individual, 0, p.Population)
		// Elitism.
		for i := 0; i < p.Elite; i++ {
			next = append(next, clone(pop[i]))
		}
		for len(next) < p.Population {
			a := tournament(pop, p.Tournament, rng)
			b := tournament(pop, p.Tournament, rng)
			child := clone(a)
			if rng.Float64() < p.CrossoverP {
				child = crossover(a, b, rng)
			}
			if rng.Float64() < p.MutationP {
				mutate(pr, &child, rng)
			}
			if err := evaluate(pr, &child); err != nil {
				return nil, err
			}
			next = append(next, child)
		}
		pop = next
		sortByFitness(pop)
	}

	return decode(pr, pop[0])
}

// initialPopulation seeds random precedence-compatible lists with random
// mappings, plus one HEFT-derived individual.
func (ga *GA) initialPopulation(pr *sched.Problem, rng *rand.Rand) ([]individual, error) {
	p := ga.params
	pop := make([]individual, 0, p.Population)

	heftInd, err := heftSeed(pr)
	if err != nil {
		return nil, err
	}
	pop = append(pop, heftInd)
	for len(pop) < p.Population {
		ind := individual{
			order:   randomTopoOrder(pr.G, rng),
			mapping: make([]platform.Proc, pr.NumTasks()),
		}
		for t := range ind.mapping {
			ind.mapping[t] = platform.Proc(rng.Intn(pr.NumProcs()))
		}
		pop = append(pop, ind)
	}
	return pop, nil
}

// heftSeed converts HEFT's schedule into a chromosome.
func heftSeed(pr *sched.Problem) (individual, error) {
	s, err := heuristics.NewHEFT().Schedule(pr)
	if err != nil {
		return individual{}, err
	}
	n := pr.NumTasks()
	ind := individual{order: make([]dag.TaskID, n), mapping: make([]platform.Proc, n)}
	ids := make([]dag.TaskID, n)
	for t := 0; t < n; t++ {
		ids[t] = dag.TaskID(t)
		pl, ok := s.PlacementOf(dag.TaskID(t))
		if !ok {
			return individual{}, fmt.Errorf("ga: HEFT seed incomplete")
		}
		ind.mapping[t] = pl.Proc
	}
	sort.Slice(ids, func(i, j int) bool {
		a, _ := s.PlacementOf(ids[i])
		b, _ := s.PlacementOf(ids[j])
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return ids[i] < ids[j]
	})
	copy(ind.order, ids)
	return ind, nil
}

// randomTopoOrder draws a uniform-ish random topological order by running
// Kahn's algorithm with random ready-set picks.
func randomTopoOrder(g *dag.Graph, rng *rand.Rand) []dag.TaskID {
	n := g.NumTasks()
	indeg := make([]int, n)
	var ready []dag.TaskID
	for t := 0; t < n; t++ {
		indeg[t] = g.InDegree(dag.TaskID(t))
		if indeg[t] == 0 {
			ready = append(ready, dag.TaskID(t))
		}
	}
	order := make([]dag.TaskID, 0, n)
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		t := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, t)
		for _, a := range g.Succs(t) {
			indeg[a.Task]--
			if indeg[a.Task] == 0 {
				ready = append(ready, a.Task)
			}
		}
	}
	return order
}

// decode turns a chromosome into a concrete schedule.
func decode(pr *sched.Problem, ind individual) (*sched.Schedule, error) {
	s := sched.NewSchedule(pr)
	for _, t := range ind.order {
		e, err := s.Estimate(t, ind.mapping[t], sched.InsertionPolicy)
		if err != nil {
			return nil, err
		}
		if err := s.Commit(e); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// evaluate computes and stores the fitness.
func evaluate(pr *sched.Problem, ind *individual) error {
	s, err := decode(pr, *ind)
	if err != nil {
		return err
	}
	ind.fitness = s.Makespan()
	return nil
}

func sortByFitness(pop []individual) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].fitness < pop[j].fitness })
}

func clone(ind individual) individual {
	return individual{
		order:   append([]dag.TaskID(nil), ind.order...),
		mapping: append([]platform.Proc(nil), ind.mapping...),
		fitness: ind.fitness,
	}
}

// tournament returns the fittest of k random individuals.
func tournament(pop []individual, k int, rng *rand.Rand) individual {
	best := rng.Intn(len(pop))
	for i := 1; i < k; i++ {
		if c := rng.Intn(len(pop)); pop[c].fitness < pop[best].fitness {
			best = c
		}
	}
	return pop[best]
}

// crossover combines two parents: the order uses single-point
// precedence-preserving crossover (prefix of a, remainder in b's relative
// order — always a valid topological order when both parents are); the
// mapping uses uniform crossover.
func crossover(a, b individual, rng *rand.Rand) individual {
	n := len(a.order)
	child := individual{order: make([]dag.TaskID, 0, n), mapping: make([]platform.Proc, n)}
	cut := 1 + rng.Intn(n)
	taken := make([]bool, n)
	for _, t := range a.order[:cut] {
		child.order = append(child.order, t)
		taken[t] = true
	}
	for _, t := range b.order {
		if !taken[t] {
			child.order = append(child.order, t)
		}
	}
	for t := 0; t < n; t++ {
		if rng.Intn(2) == 0 {
			child.mapping[t] = a.mapping[t]
		} else {
			child.mapping[t] = b.mapping[t]
		}
	}
	return child
}

// mutate applies one of two mutations: remap a random task to a random
// processor, or move a random task to another feasible position in the
// list (anywhere between its last predecessor and first successor).
func mutate(pr *sched.Problem, ind *individual, rng *rand.Rand) {
	n := len(ind.order)
	if rng.Intn(2) == 0 {
		t := rng.Intn(n)
		ind.mapping[t] = platform.Proc(rng.Intn(pr.NumProcs()))
		return
	}
	// Positional mutation.
	pos := rng.Intn(n)
	t := ind.order[pos]
	g := pr.G
	pred := map[dag.TaskID]bool{}
	succ := map[dag.TaskID]bool{}
	for _, a := range g.Preds(t) {
		pred[a.Task] = true
	}
	for _, a := range g.Succs(t) {
		succ[a.Task] = true
	}
	lo, hi := 0, n-1
	for i := pos - 1; i >= 0; i-- {
		if pred[ind.order[i]] {
			lo = i + 1
			break
		}
	}
	for i := pos + 1; i < n; i++ {
		if succ[ind.order[i]] {
			hi = i - 1
			break
		}
	}
	if hi <= lo {
		return
	}
	to := lo + rng.Intn(hi-lo+1)
	// Remove from pos, insert at to.
	order := append([]dag.TaskID(nil), ind.order...)
	order = append(order[:pos], order[pos+1:]...)
	order = append(order[:to], append([]dag.TaskID{t}, order[to:]...)...)
	ind.order = order
}
