package ga

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdlts/internal/dag"
	"hdlts/internal/gen"
	"hdlts/internal/heuristics"
	"hdlts/internal/platform"
	"hdlts/internal/workflows"
)

func TestGAOnPaperExample(t *testing.T) {
	pr := workflows.PaperExample()
	s, err := NewWithParams(Params{Population: 30, Generations: 60, Seed: 1}).Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Seeded with HEFT (80) and evolving, the GA must do at least as well
	// as its seed; on this instance it reliably finds < 80.
	if s.Makespan() > 80 {
		t.Fatalf("GA makespan %g worse than its HEFT seed (80)", s.Makespan())
	}
	t.Logf("GA makespan %g", s.Makespan())
}

func TestGADeterministicPerSeed(t *testing.T) {
	pr := workflows.PaperExample()
	p := Params{Population: 16, Generations: 20, Seed: 7}
	s1, err := NewWithParams(p).Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewWithParams(p).Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan() != s2.Makespan() {
		t.Fatalf("nondeterministic: %g vs %g", s1.Makespan(), s2.Makespan())
	}
}

func TestGANeverWorseThanHEFTSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 8; i++ {
		pr, err := gen.Random(gen.Params{
			V: 30 + rng.Intn(40), Alpha: 1, Density: 3, CCR: 2, Procs: 4, WDAG: 60, Beta: 1.2,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewWithParams(Params{Population: 20, Generations: 25, Seed: int64(i)}).Schedule(pr)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid: %v", err)
		}
		h, err := heuristics.NewHEFT().Schedule(pr)
		if err != nil {
			t.Fatal(err)
		}
		// Elitism guarantees the HEFT seed can never be lost.
		if s.Makespan() > h.Makespan()+1e-9 {
			t.Fatalf("GA (%g) worse than HEFT seed (%g)", s.Makespan(), h.Makespan())
		}
	}
}

// topoValid reports whether order is a topological order of g covering
// every task exactly once.
func topoValid(g *dag.Graph, order []dag.TaskID) bool {
	if len(order) != g.NumTasks() {
		return false
	}
	pos := make([]int, g.NumTasks())
	seen := make([]bool, g.NumTasks())
	for i, t := range order {
		if int(t) < 0 || int(t) >= g.NumTasks() || seen[t] {
			return false
		}
		seen[t] = true
		pos[t] = i
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, a := range g.Succs(dag.TaskID(u)) {
			if pos[u] >= pos[a.Task] {
				return false
			}
		}
	}
	return true
}

// TestQuickGeneticOperatorsPreservePrecedence: random topological orders,
// crossover offspring, and mutated individuals are always valid
// topological orders.
func TestQuickGeneticOperatorsPreservePrecedence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr, err := gen.Random(gen.Params{
			V: 2 + rng.Intn(50), Alpha: 1, Density: 1 + rng.Intn(4),
			CCR: 2, Procs: 2 + rng.Intn(4), WDAG: 60, Beta: 1.2,
		}, rng)
		if err != nil {
			return false
		}
		pr = pr.Normalize()
		g := pr.G
		pa := individual{order: randomTopoOrder(g, rng), mapping: randomMapping(pr.NumTasks(), pr.NumProcs(), rng)}
		pb := individual{order: randomTopoOrder(g, rng), mapping: randomMapping(pr.NumTasks(), pr.NumProcs(), rng)}
		if !topoValid(g, pa.order) || !topoValid(g, pb.order) {
			return false
		}
		child := crossover(pa, pb, rng)
		if !topoValid(g, child.order) {
			t.Log("crossover broke precedence")
			return false
		}
		for i := 0; i < 5; i++ {
			mutate(pr, &child, rng)
			if !topoValid(g, child.order) {
				t.Log("mutation broke precedence")
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomMapping draws a uniform processor assignment.
func randomMapping(tasks, procs int, rng *rand.Rand) []platform.Proc {
	m := make([]platform.Proc, tasks)
	for i := range m {
		m[i] = platform.Proc(rng.Intn(procs))
	}
	return m
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Population != 40 || p.Generations != 100 || p.Tournament != 3 || p.Elite != 2 {
		t.Fatalf("defaults = %+v", p)
	}
	tiny := Params{Population: 2, Elite: 5}.withDefaults()
	if tiny.Elite >= tiny.Population {
		t.Fatalf("elite %d not clamped below population %d", tiny.Elite, tiny.Population)
	}
}

// TestCrossoverMappingGenesComeFromParents: every mapping gene of an
// offspring equals the corresponding gene of one of its parents.
func TestCrossoverMappingGenesComeFromParents(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pr, err := gen.Random(gen.Params{V: 30, Alpha: 1, Density: 2, CCR: 2, Procs: 5, WDAG: 60, Beta: 1.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pr = pr.Normalize()
	pa := individual{order: randomTopoOrder(pr.G, rng), mapping: randomMapping(pr.NumTasks(), pr.NumProcs(), rng)}
	pb := individual{order: randomTopoOrder(pr.G, rng), mapping: randomMapping(pr.NumTasks(), pr.NumProcs(), rng)}
	for i := 0; i < 20; i++ {
		child := crossover(pa, pb, rng)
		for tsk, p := range child.mapping {
			if p != pa.mapping[tsk] && p != pb.mapping[tsk] {
				t.Fatalf("gene %d = %d from neither parent (%d/%d)", tsk, p, pa.mapping[tsk], pb.mapping[tsk])
			}
		}
		// The order prefix comes verbatim from parent A.
		if child.order[0] != pa.order[0] {
			t.Fatalf("offspring does not start with parent A's first task")
		}
	}
}

// TestMutationStaysInRange: mutated mappings reference real processors.
func TestMutationStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pr, err := gen.Random(gen.Params{V: 25, Alpha: 1, Density: 2, CCR: 2, Procs: 3, WDAG: 60, Beta: 1.2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	pr = pr.Normalize()
	ind := individual{order: randomTopoOrder(pr.G, rng), mapping: randomMapping(pr.NumTasks(), pr.NumProcs(), rng)}
	for i := 0; i < 50; i++ {
		mutate(pr, &ind, rng)
		for tsk, p := range ind.mapping {
			if int(p) < 0 || int(p) >= pr.NumProcs() {
				t.Fatalf("task %d mapped to nonexistent P%d", tsk, p+1)
			}
		}
	}
}
