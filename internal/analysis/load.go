package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one parsed and type-checked package ready for analysis.
type LoadedPackage struct {
	Path  string
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// LoadPackages resolves patterns with `go list`, parses each matched
// package's non-test sources, and type-checks them in dependency order.
// Imports within the matched set resolve to the freshly checked packages;
// everything else (the standard library) is type-checked from GOROOT source
// via go/importer, so loading works offline and without build artifacts.
func LoadPackages(fset *token.FileSet, dir string, patterns ...string) ([]*LoadedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,Imports,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, errBuf.String())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		listed = append(listed, &p)
	}
	byPath := make(map[string]*listedPackage, len(listed))
	for _, p := range listed {
		byPath[p.ImportPath] = p
	}
	order, err := topoOrder(listed, byPath)
	if err != nil {
		return nil, err
	}

	checked := make(map[string]*types.Package)
	imp := &chainImporter{
		local:    checked,
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	var loaded []*LoadedPackage
	for _, p := range order {
		lp, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		checked[p.ImportPath] = lp.Pkg
		loaded = append(loaded, lp)
	}
	return loaded, nil
}

// LoadFixtureTree loads every package under root (a GOPATH-like src tree,
// as analysistest lays fixtures out): each directory containing .go files
// becomes a package whose import path is its path relative to root.
// Fixture-internal imports resolve to each other; the rest is stdlib.
func LoadFixtureTree(fset *token.FileSet, root string) ([]*LoadedPackage, error) {
	var pkgs []*listedPackage
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil || !fi.IsDir() {
			return err
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		var goFiles []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				goFiles = append(goFiles, e.Name())
			}
		}
		if len(goFiles) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		// Import paths are rooted at the tree's base name, matching how the
		// fixture sources import each other: a tree at testdata/src/metricname
		// holds packages like "metricname/internal/obs".
		importPath := filepath.Base(root)
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		sort.Strings(goFiles)
		pkgs = append(pkgs, &listedPackage{
			ImportPath: importPath,
			Dir:        path,
			GoFiles:    goFiles,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Imports between fixture packages are discovered by parsing.
	byPath := make(map[string]*listedPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	for _, p := range pkgs {
		for _, f := range p.GoFiles {
			src, err := parser.ParseFile(token.NewFileSet(), filepath.Join(p.Dir, f), nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			for _, im := range src.Imports {
				path := strings.Trim(im.Path.Value, `"`)
				if _, ok := byPath[path]; ok {
					p.Imports = append(p.Imports, path)
				}
			}
		}
	}
	order, err := topoOrder(pkgs, byPath)
	if err != nil {
		return nil, err
	}
	checked := make(map[string]*types.Package)
	imp := &chainImporter{
		local:    checked,
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	var loaded []*LoadedPackage
	for _, p := range order {
		lp, err := checkPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		checked[p.ImportPath] = lp.Pkg
		loaded = append(loaded, lp)
	}
	return loaded, nil
}

// topoOrder sorts packages so every package follows its in-set imports.
func topoOrder(pkgs []*listedPackage, byPath map[string]*listedPackage) ([]*listedPackage, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []*listedPackage
	var visit func(p *listedPackage) error
	visit = func(p *listedPackage) error {
		switch state[p.ImportPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", p.ImportPath)
		}
		state[p.ImportPath] = visiting
		for _, dep := range p.Imports {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = done
		order = append(order, p)
		return nil
	}
	// Deterministic order regardless of go list / filesystem ordering.
	sorted := append([]*listedPackage(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, p := range sorted {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// chainImporter resolves module-local imports from the current run's
// freshly checked packages and everything else through the fallback.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.local[path]; ok {
		return pkg, nil
	}
	return c.fallback.Import(path)
}

// checkPackage parses files and runs the type checker.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, fileNames []string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &LoadedPackage{Path: path, Dir: dir, Files: files, Pkg: pkg, Info: info}, nil
}
