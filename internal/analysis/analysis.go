// Package analysis is hdlts's project-specific static-analysis suite: the
// analyzers encoding the structural invariants the scheduler's correctness
// and the daemon's availability rest on, plus the driver that runs them.
// Suite is the single source of truth for the inventory.
//
// The invariants are domain rules no generic tool can see:
//
//   - determinism: scheduler packages must not iterate maps into
//     order-sensitive output without sorting, and must not consult the wall
//     clock or the global math/rand source — bit-for-bit reproduction of the
//     paper's Table I trace (makespan 73) depends on it.
//   - lockedio: no file, network, or channel I/O while a sync.Mutex or
//     RWMutex is held — a slow fsync or scrape must never stall every
//     other request behind a hot lock.
//   - ctxflow: request and job paths must thread their context.Context;
//     fresh root contexts (context.Background/TODO) sever cancellation and
//     trace correlation.
//   - metricname: metric series are registered under named constants
//     matching ^hdltsd?_[a-z0-9_]+$, each name owned by exactly one package.
//   - eventkey: span attribute keys and trace wire-field names come from
//     the canonical exported set in internal/obs, keeping JSONL and
//     Chrome-trace streams schema-stable.
//   - hotpathalloc: functions marked hot must not allocate per call.
//   - goroutinelife: every goroutine in non-test code needs a visible
//     termination path — ctx.Done/quit-channel select, WaitGroup join, or
//     a completion signal its launcher receives.
//   - pairedres: acquire/release pairs (subscriptions, spans, tickers,
//     files, listeners, pool objects) must release on every exit path.
//   - boundedspawn: no unbounded goroutine-per-item spawning inside
//     data-sized loops in the server, jobs, and exec packages.
//   - atomicmix: each field gets exactly one synchronization discipline —
//     atomic accesses, mutex guarding, and plain access never mix.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic) so the analyzers can be ported to an
// x/tools multichecker unchanged in spirit; it is implemented on the
// standard library alone (go/parser, go/types, `go list`) because this
// module carries no external dependencies.
//
// False positives are suppressed with a documented directive on the
// offending line (or its own line immediately above):
//
//	//lint:hdltsvet-ignore <analyzer> <reason>
//
// A bare analyzer name with no reason is itself a diagnostic: every
// suppression must say why. See docs/ANALYSIS.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring the x/tools shape.
type Analyzer struct {
	// Name is the directive- and CLI-visible identifier (lowercase).
	Name string
	// Doc is the one-paragraph description `hdltsvet -list` prints.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package into an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's import path as the loader resolved it.
	Path string

	// shared is the per-run cross-package state (metric-name ownership,
	// suppression bookkeeping). Analyzers access it via typed helpers.
	shared *Shared

	diagnostics []Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records one finding unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.shared != nil && p.shared.suppressed(p.Analyzer.Name, position) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf resolves the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf resolves the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// Shared is the state one analysis run accumulates across packages: which
// lines carry ignore directives, and which package first registered each
// metric name. One Shared spans one Run invocation, so cross-package rules
// (duplicate metric registration) work without a facts store.
type Shared struct {
	// ignores maps filename -> line -> directives suppressing there.
	ignores map[string]map[int][]*directive
	// metricOwner maps metric name -> import path of the first registrant.
	metricOwner map[string]string
}

// directive is one parsed //lint:hdltsvet-ignore comment. The same
// directive value is registered against two lines (its own and the next),
// so `used` is shared between them.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position // where the comment itself sits
	used     bool
}

// NewShared returns empty cross-package run state.
func NewShared() *Shared {
	return &Shared{
		ignores:     make(map[string]map[int][]*directive),
		metricOwner: make(map[string]string),
	}
}

// DirectivePrefix introduces a suppression comment.
const DirectivePrefix = "//lint:hdltsvet-ignore"

// CollectDirectives scans a file's comments for ignore directives and
// registers them against both the directive's own line and the line below,
// so the directive works inline ("stmt // lint:...") and as a lead-in
// comment. Malformed directives (no analyzer, or no reason) are reported
// immediately — an undocumented suppression is itself a finding.
func (s *Shared) CollectDirectives(fset *token.FileSet, file *ast.File, report func(pos token.Pos, format string, args ...any)) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, DirectivePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, DirectivePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			pos := fset.Position(c.Pos())
			if name == "" || reason == "" {
				report(c.Pos(), "malformed %s directive: want %q", DirectivePrefix, DirectivePrefix+" <analyzer> <reason>")
				continue
			}
			byLine := s.ignores[pos.Filename]
			if byLine == nil {
				byLine = make(map[int][]*directive)
				s.ignores[pos.Filename] = byLine
			}
			d := &directive{analyzer: name, reason: reason, pos: pos}
			byLine[pos.Line] = append(byLine[pos.Line], d)
			byLine[pos.Line+1] = append(byLine[pos.Line+1], d)
		}
	}
}

// suppressed reports whether a directive covers analyzer findings at pos.
func (s *Shared) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range s.ignores[pos.Filename][pos.Line] {
		if d.analyzer == analyzer {
			d.used = true
			return true
		}
	}
	return false
}

// ClaimMetric records that pkgPath registered the metric name and returns
// the previous owner when a different package already holds it.
func (s *Shared) ClaimMetric(name, pkgPath string) (owner string, duplicate bool) {
	if prev, ok := s.metricOwner[name]; ok {
		return prev, prev != pkgPath
	}
	s.metricOwner[name] = pkgPath
	return pkgPath, false
}

// SortDiagnostics orders findings by file, line, column, analyzer — the
// stable order both the CLI and the tests rely on.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
