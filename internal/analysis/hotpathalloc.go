package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPathMarker is the doc-comment directive that opts a function into the
// hotpathalloc analyzer's allocation rules.
const HotPathMarker = "//hdlts:hotpath"

// HotPathAlloc flags heap-allocating constructs inside the loops of
// functions whose doc comment carries the //hdlts:hotpath marker — the
// solver inner loops the ROADMAP's allocation-free rewrite targets. Inside
// a marked function's loop bodies it reports:
//
//   - make/new calls and map or slice composite literals: fresh heap
//     allocations every iteration;
//   - function literals: closures capture and escape;
//   - append whose destination slice is not rooted in a make-allocated
//     local, a parameter, or the receiver — growth of a fresh slice
//     reallocates repeatedly;
//   - interface boxing at call sites: passing a concrete value where the
//     callee takes an interface allocates the value onto the heap.
//
// Error exits stay ergonomic: an if-block whose last statement is return
// or panic is skipped, so `if err != nil { return fmt.Errorf(...) }` never
// needs a suppression. Function literal bodies are not re-checked (the
// literal itself is the finding). Genuinely amortised allocations carry a
// documented //lint:hdltsvet-ignore hotpathalloc directive.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "flags heap-allocating constructs (make/new, map/slice literals, closures, " +
		"growing appends, interface boxing) inside loops of //hdlts:hotpath functions",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotPathMarked(fd) {
				continue
			}
			checkHotPath(pass, fd)
		}
	}
	return nil
}

// hotPathMarked reports whether the function's doc comment carries the
// //hdlts:hotpath marker line.
func hotPathMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == HotPathMarker {
			return true
		}
	}
	return false
}

// checkHotPath applies the allocation rules to one marked function. The
// rules fire only inside loop bodies; the bodies of terminating if-blocks
// (error exits) and of function literals (reported as a whole, not
// re-entered) are exempt. Ranges nest, so the innermost enclosing range
// decides: a loop inside an early-out if-block is still hot, an error exit
// inside a loop is not.
func checkHotPath(pass *Pass, fd *ast.FuncDecl) {
	allowed := allowedRoots(pass, fd)

	type span struct {
		pos, end token.Pos
		hot      bool
	}
	var spans []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IfStmt:
			if terminates(s.Body) {
				spans = append(spans, span{s.Body.Pos(), s.Body.End(), false})
			}
		case *ast.FuncLit:
			spans = append(spans, span{s.Body.Pos(), s.Body.End(), false})
		case *ast.ForStmt:
			spans = append(spans, span{s.Body.Pos(), s.Body.End(), true})
		case *ast.RangeStmt:
			spans = append(spans, span{s.Body.Pos(), s.Body.End(), true})
		}
		return true
	})
	inHot := func(n ast.Node) bool {
		var innermost *span
		for i := range spans {
			s := &spans[i]
			if s.pos <= n.Pos() && n.End() <= s.end && (innermost == nil || s.pos > innermost.pos) {
				innermost = s
			}
		}
		return innermost != nil && innermost.hot
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil || !inHot(n) {
			return true
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, e, allowed)
		case *ast.CompositeLit:
			t := pass.TypeOf(e)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(e.Pos(), "map literal allocates every loop iteration in a hot path; hoist it out of the loop")
			case *types.Slice:
				pass.Reportf(e.Pos(), "slice literal allocates every loop iteration in a hot path; hoist it out of the loop")
			}
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "function literal in a hot-path loop: closures capture and escape to the heap; hoist or use a named function")
		}
		return true
	})
}

// allowedRoots collects the variables append may grow without a finding:
// parameters, the receiver, named results, and locals assigned from make
// anywhere in the function (their capacity is the author's explicit
// amortisation decision).
func allowedRoots(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	allowed := map[types.Object]bool{}
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if o := pass.ObjectOf(name); o != nil {
					allowed[o] = true
				}
			}
		}
	}
	addField(fd.Recv)
	addField(fd.Type.Params)
	addField(fd.Type.Results)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || i >= len(asg.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if v := rootVar(pass.Info, asg.Lhs[i]); v != nil {
				allowed[v] = true
			}
		}
		return true
	})
	return allowed
}

// checkHotCall applies the call-site rules: make/new, growing append, and
// interface boxing of arguments.
func checkHotCall(pass *Pass, call *ast.CallExpr, allowed map[types.Object]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && pass.ObjectOf(id) == types.Universe.Lookup(id.Name) {
		switch id.Name {
		case "make", "new":
			pass.Reportf(call.Pos(), "%s allocates every loop iteration in a hot path; hoist the allocation and reuse the buffer", id.Name)
		case "append":
			if len(call.Args) == 0 {
				return
			}
			v := rootVar(pass.Info, call.Args[0])
			if v == nil || !allowed[v] {
				name := "a fresh slice"
				if v != nil {
					name = v.Name()
				}
				pass.Reportf(call.Pos(), "append grows %s inside a hot-path loop; preallocate with make and a capacity before the loop", name)
			}
		}
		return
	}
	// Conversions are not calls; builtins and type expressions have no
	// signature.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramType(sig, i, call.Ellipsis.IsValid())
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into interface %s inside a hot-path loop; keep hot calls monomorphic", at, pt)
	}
}

// paramType returns the type the i-th argument is assigned to, unwrapping
// the variadic element unless the call spreads with ...
func paramType(sig *types.Signature, i int, spread bool) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() && i >= n-1 {
		last := sig.Params().At(n - 1).Type()
		if spread {
			return last
		}
		if sl, ok := last.Underlying().(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// terminates reports whether the block's last statement unconditionally
// leaves the function (return or panic) — the error-exit shape exempt from
// the hot-path rules.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
