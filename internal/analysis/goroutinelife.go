package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLife demands a visible termination path for every `go`
// statement: the spawned body must select on context.Done() or on a quit
// channel this package closes somewhere, join a sync.WaitGroup, or signal
// a completion channel that the launching function receives from. A
// goroutine with none of those is fire-and-forget — exactly the slow leak
// that erodes a long-running daemon — and must either gain ownership or
// carry a documented //lint:hdltsvet-ignore goroutinelife directive.
//
// Evidence is collected one level deep: when the spawned body itself shows
// nothing, the bodies of same-package functions it calls are consulted, so
// `go w.loop()` passes when loop selects on the pool's stop channel. Test
// files never reach this analyzer (the loader compiles non-test sources
// only), so test helpers may spawn freely.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc: "flags go statements with no visible termination path: no ctx.Done/quit-channel " +
		"receive, no WaitGroup join, and no completion signal the launcher waits on",
	Run: runGoroutineLife,
}

// lifeChecker carries the per-package state one goroutinelife run needs.
type lifeChecker struct {
	pass *Pass
	// decls maps declared functions/methods to their syntax, for resolving
	// `go m.worker()` to worker's body.
	decls map[*types.Func]*ast.FuncDecl
	// closed holds every object (variable or struct field) that appears as
	// the operand of close() anywhere in the package: receiving from one of
	// these is quit-channel evidence.
	closed map[types.Object]bool
}

func runGoroutineLife(pass *Pass) error {
	c := &lifeChecker{
		pass:   pass,
		decls:  declaredFuncs(pass),
		closed: closedChannelObjs(pass),
	}
	for _, f := range pass.Files {
		// Track the enclosing function body of each go statement so
		// completion-channel evidence can be looked up in the launcher.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if g, ok := n.(*ast.GoStmt); ok {
				c.check(g, enclosingBody(stack[:len(stack)-1]))
			}
			return true
		})
	}
	return nil
}

// enclosingBody returns the body of the innermost function containing the
// node whose ancestor stack is given, or nil at package scope.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
	}
	return nil
}

// check reports g unless some termination evidence is visible.
func (c *lifeChecker) check(g *ast.GoStmt, launcher *ast.BlockStmt) {
	body := c.spawnedBody(g)
	if body != nil {
		if c.bodyTerminates(body) {
			return
		}
		// One level of expansion: a body that only delegates passes when a
		// same-package callee carries the evidence.
		if c.calleeTerminates(body) {
			return
		}
		// Completion signal: the body closes or sends on a channel the
		// launching function receives from — the classic `done` handshake.
		if launcher != nil && c.signalsLauncher(body, g, launcher) {
			return
		}
	}
	c.pass.Reportf(g.Pos(), "goroutine has no visible termination path: select on ctx.Done() or a quit channel this package closes, join a sync.WaitGroup, or signal a channel the launcher receives from (or document with %s goroutinelife <reason>)", DirectivePrefix)
}

// spawnedBody resolves the syntax the goroutine will execute: a function
// literal's body, or the declaration of a same-package function/method the
// go statement calls directly. Dynamic and cross-package calls yield nil —
// their lifecycle is invisible, so they need a wrapper or a directive.
func (c *lifeChecker) spawnedBody(g *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if f := calleeFunc(c.pass.Info, g.Call); f != nil {
		if decl, ok := c.decls[f]; ok && decl.Body != nil {
			return decl.Body
		}
	}
	return nil
}

// bodyTerminates looks for direct termination evidence inside body:
// a receive from context.Done() or from a package-closed quit channel
// (including range-over-channel), or a sync.WaitGroup.Done call.
func (c *lifeChecker) bodyTerminates(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && (isCtxDoneCall(c.pass, x.X) || c.closed[rootChanObj(c.pass, x.X)]) {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(c.pass.TypeOf(x.X)) && c.closed[rootChanObj(c.pass, x.X)] {
				found = true
			}
		case *ast.CallExpr:
			if f := calleeFunc(c.pass.Info, x); f != nil && f.Name() == "Done" &&
				namedIs(recvNamed(f), "sync", "WaitGroup") {
				found = true
			}
		}
		return !found
	})
	return found
}

// calleeTerminates applies bodyTerminates one call level deeper: any
// same-package function the body statically calls may hold the evidence.
func (c *lifeChecker) calleeTerminates(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeFunc(c.pass.Info, call); f != nil {
			if decl, ok := c.decls[f]; ok && decl.Body != nil && c.bodyTerminates(decl.Body) {
				found = true
			}
		}
		return !found
	})
	return found
}

// signalsLauncher reports whether body closes or sends on a channel object
// that the launching function receives from outside the go statement
// itself — the completion handshake (`go func() { ...; close(done) }();
// ...; <-done`).
func (c *lifeChecker) signalsLauncher(body *ast.BlockStmt, g *ast.GoStmt, launcher *ast.BlockStmt) bool {
	signaled := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if o := rootChanObj(c.pass, x.Chan); o != nil {
				signaled[o] = true
			}
		case *ast.CallExpr:
			if o := closedOperandObj(c.pass, x); o != nil {
				signaled[o] = true
			}
		}
		return true
	})
	if len(signaled) == 0 {
		return false
	}
	found := false
	ast.Inspect(launcher, func(n ast.Node) bool {
		if found {
			return false
		}
		if n == g {
			return false // the goroutine's own receives prove nothing
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && signaled[rootChanObj(c.pass, x.X)] {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(c.pass.TypeOf(x.X)) && signaled[rootChanObj(c.pass, x.X)] {
				found = true
			}
		}
		return !found
	})
	return found
}

// declaredFuncs indexes this package's function and method declarations by
// their type-checker objects.
func declaredFuncs(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// closedChannelObjs collects every object passed to the close builtin in
// the package. A channel field closed by Stop/Close is quit evidence for
// any goroutine receiving from it, wherever the close lives.
func closedChannelObjs(pass *Pass) map[types.Object]bool {
	closed := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if o := closedOperandObj(pass, call); o != nil {
					closed[o] = true
				}
			}
			return true
		})
	}
	return closed
}

// closedOperandObj returns the object close(x) closes, or nil when call is
// not a close builtin (or x has no resolvable root object).
func closedOperandObj(pass *Pass, call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" {
		return nil
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "close" {
		return nil
	}
	if len(call.Args) != 1 {
		return nil
	}
	return rootChanObj(pass, call.Args[0])
}

// rootChanObj resolves a channel expression to the variable or struct
// field it denotes: `done` → the local, `c.stop` / `p.queue` → the field.
// Anything else (calls, index expressions) resolves to nil.
func rootChanObj(pass *Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.ObjectOf(x)
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[x]; ok {
			return sel.Obj()
		}
		return pass.Info.Uses[x.Sel]
	}
	return nil
}

// isCtxDoneCall reports whether e is a call of context.Context.Done.
func isCtxDoneCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	return isContextType(pass.TypeOf(sel.X))
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
