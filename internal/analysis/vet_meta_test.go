package analysis

import (
	"go/token"
	"testing"
)

// TestModuleClean runs the full analyzer suite over the real module — the
// same invocation as CI's blocking `go run ./cmd/hdltsvet ./...` step — and
// fails on any finding. This keeps the invariants enforced by plain
// `go test ./...` even where the CI configuration is not in play.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	fset := token.NewFileSet()
	pkgs, err := LoadPackages(fset, "../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags, err := Run(fset, pkgs, Suite())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding: %s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the findings or add a documented %s directive", DirectivePrefix)
	}
}
