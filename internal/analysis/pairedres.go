package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PairedRes enforces this repo's acquire/release protocols from a
// declarative table: obs.Hub.Subscribe→Subscription.Close,
// obs.StartSpan→Span.Finish, time.NewTicker/NewTimer→Stop,
// os.Open/Create→Close, net.Listen→Close, sync.Pool.Get→Put. A resource
// acquired in a function must be released on all exits — a deferred
// release, or a plain release lexically before every later return — or
// ownership must visibly move on: returned, passed to a call, sent on a
// channel, or stored in a struct field whose Close/Stop/Shutdown method
// releases it. Discarding an acquire result outright is always a finding.
//
// The reachability check is lexical, like lockedio's lock regions: a plain
// release counts for every return after it. Releases may hide one wrapper
// deep — a method on the resource (or taking it as an argument) whose body
// performs the real release, e.g. arena.recycle() wrapping arenaPool.Put.
var PairedRes = &Analyzer{
	Name: "pairedres",
	Doc: "flags acquired resources (hub subscriptions, spans, tickers, files, " +
		"listeners, pooled arenas) that are not released on every exit path",
	Run: runPairedRes,
}

// resRule is one row of the acquire/release table.
type resRule struct {
	label    string          // human-readable acquire name
	residx   int             // index of the resource in the call results
	releases map[string]bool // method names on the resource that release it
	poolGet  bool            // sync.Pool.Get: released by Pool.Put(resource)
	match    func(pass *Pass, call *ast.CallExpr) bool
}

// pairedTable returns the resource protocols pairedres enforces.
func pairedTable() []*resRule {
	return []*resRule{
		{
			label: "Hub.Subscribe", residx: 0,
			releases: map[string]bool{"Close": true},
			match: func(pass *Pass, call *ast.CallExpr) bool {
				f := calleeFunc(pass.Info, call)
				return f != nil && f.Name() == "Subscribe" &&
					namedIs(recvNamed(f), "internal/obs", "Hub")
			},
		},
		{
			label: "obs.StartSpan", residx: 1,
			releases: map[string]bool{"Finish": true},
			match: func(pass *Pass, call *ast.CallExpr) bool {
				f := calleeFunc(pass.Info, call)
				return f != nil && f.Name() == "StartSpan" && recvNamed(f) == nil &&
					pathHas(funcPkgPath(f), "internal/obs")
			},
		},
		{
			label: "time.NewTicker", residx: 0,
			releases: map[string]bool{"Stop": true},
			match: func(pass *Pass, call *ast.CallExpr) bool {
				f := calleeFunc(pass.Info, call)
				return f != nil && funcPkgPath(f) == "time" &&
					(f.Name() == "NewTicker" || f.Name() == "NewTimer")
			},
		},
		{
			label: "os file open", residx: 0,
			releases: map[string]bool{"Close": true},
			match: func(pass *Pass, call *ast.CallExpr) bool {
				f := calleeFunc(pass.Info, call)
				if f == nil || funcPkgPath(f) != "os" {
					return false
				}
				switch f.Name() {
				case "Open", "OpenFile", "Create", "CreateTemp":
					return true
				}
				return false
			},
		},
		{
			label: "net.Listen", residx: 0,
			releases: map[string]bool{"Close": true},
			match: func(pass *Pass, call *ast.CallExpr) bool {
				f := calleeFunc(pass.Info, call)
				return f != nil && funcPkgPath(f) == "net" &&
					(f.Name() == "Listen" || f.Name() == "ListenTCP" || f.Name() == "ListenUnix")
			},
		},
		{
			label: "sync.Pool.Get", residx: 0, poolGet: true,
			releases: map[string]bool{"Put": true},
			match: func(pass *Pass, call *ast.CallExpr) bool {
				f := calleeFunc(pass.Info, call)
				return f != nil && f.Name() == "Get" && namedIs(recvNamed(f), "sync", "Pool")
			},
		},
	}
}

// acquired is one tracked acquire site within a function scope.
type acquired struct {
	rule *resRule
	call *ast.CallExpr
	obj  types.Object // the local holding the resource; nil = discarded
	err  types.Object // error result of the same assign, for guard exemption
}

func runPairedRes(pass *Pass) error {
	table := pairedTable()
	decls := declaredFuncs(pass)
	eachFuncBody(pass.Files, func(name string, body *ast.BlockStmt) {
		for _, acq := range findAcquires(pass, table, body) {
			checkAcquire(pass, decls, acq, body)
		}
	})
	return nil
}

// findAcquires scans one scope (shallow — nested literals are their own
// scopes) for table matches in assignments and bare expression statements.
// Acquire calls nested in larger expressions (arguments, returns,
// composite literals) hand the resource somewhere visible and are skipped.
func findAcquires(pass *Pass, table []*resRule, body *ast.BlockStmt) []*acquired {
	var out []*acquired
	inspectShallow(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return true
			}
			call := acquireCall(st.Rhs[0])
			if call == nil {
				return true
			}
			rule := matchRule(pass, table, call)
			if rule == nil {
				return true
			}
			acq := &acquired{rule: rule, call: call}
			if rule.residx < len(st.Lhs) {
				if id, ok := st.Lhs[rule.residx].(*ast.Ident); ok && id.Name != "_" {
					acq.obj = pass.ObjectOf(id)
				} else if sel, ok := st.Lhs[rule.residx].(*ast.SelectorExpr); ok {
					// Stored straight into a field: the obligation moves to
					// the owning struct's teardown method.
					checkFieldStore(pass, rule, sel, call)
					return true
				}
			}
			// Any other result that is an identifier of type error guards
			// early returns: a return under `if err != nil` needs no release.
			for i, lhs := range st.Lhs {
				if i == rule.residx {
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if o := pass.ObjectOf(id); o != nil && types.Identical(o.Type(), types.Universe.Lookup("error").Type()) {
						acq.err = o
					}
				}
			}
			out = append(out, acq)
		case *ast.ExprStmt:
			if call := acquireCall(st.X); call != nil {
				if rule := matchRule(pass, table, call); rule != nil {
					out = append(out, &acquired{rule: rule, call: call})
				}
			}
		}
		return true
	})
	return out
}

// acquireCall unwraps parens and a type assertion (`pool.Get().(*arena)`)
// down to the call expression, or nil.
func acquireCall(e ast.Expr) *ast.CallExpr {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, _ := e.(*ast.CallExpr)
	return call
}

func matchRule(pass *Pass, table []*resRule, call *ast.CallExpr) *resRule {
	for _, r := range table {
		if r.match(pass, call) {
			return r
		}
	}
	return nil
}

// checkAcquire decides the verdict for one tracked acquire.
func checkAcquire(pass *Pass, decls map[*types.Func]*ast.FuncDecl, acq *acquired, body *ast.BlockStmt) {
	if acq.obj == nil {
		pass.Reportf(acq.call.Pos(), "result of %s is discarded: the resource must be released (%s)",
			acq.rule.label, releaseNames(acq.rule))
		return
	}
	var (
		deferred    bool
		releasePos  []token.Pos
		escaped     bool
		fieldStores []*ast.SelectorExpr
	)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch x := n.(type) {
		case *ast.CallExpr:
			if isRelease(pass, decls, acq.rule, x, acq.obj) {
				if underDefer(stack) {
					deferred = true
				} else {
					releasePos = append(releasePos, x.Pos())
				}
			}
		case *ast.Ident:
			if pass.ObjectOf(x) != acq.obj {
				return true
			}
			use, sel := useKind(stack)
			switch use {
			case useEscape:
				escaped = true
			case useFieldStore:
				fieldStores = append(fieldStores, sel)
			}
		}
		return true
	})
	if deferred || escaped {
		return
	}
	for _, sel := range fieldStores {
		checkFieldStore(pass, acq.rule, sel, acq.call)
	}
	if len(fieldStores) > 0 {
		return
	}
	if len(releasePos) == 0 {
		pass.Reportf(acq.call.Pos(), "%s is never released in this function: %s it (defer preferred), return it, or store it on a struct whose Close/Stop releases it",
			acq.rule.label, releaseNames(acq.rule))
		return
	}
	// A plain release exists: every later return needs one lexically before
	// it, unless the return sits under this acquire's error guard.
	acqPos := acq.call.Pos()
	reportReturn := func(ret *ast.ReturnStmt) {
		pass.Reportf(acq.call.Pos(), "%s may not be released before the return at line %d: release on every path or use defer",
			acq.rule.label, pass.Fset.Position(ret.Pos()).Line)
	}
	reported := false
	inspectShallowStack(body, func(n ast.Node, stack []ast.Node) {
		if reported {
			return
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() < acqPos {
			return
		}
		for _, p := range releasePos {
			if p > acqPos && p < ret.Pos() {
				return
			}
		}
		if acq.err != nil && underErrGuard(pass, stack, acq.err) {
			return
		}
		reportReturn(ret)
		reported = true
	})
}

// checkFieldStore verifies that a resource stored into a same-package
// struct field is released by some Close/Stop/Shutdown-style method of
// that struct. Fields of types from other packages are assumed managed.
func checkFieldStore(pass *Pass, rule *resRule, sel *ast.SelectorExpr, call *ast.CallExpr) {
	selection, ok := pass.Info.Selections[sel]
	if !ok {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || field.Pkg() != pass.Pkg {
		return
	}
	decls := declaredFuncs(pass)
	for f, decl := range decls {
		if recvNamed(f) == nil || !closerName(f.Name()) || decl.Body == nil {
			continue
		}
		released := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && isRelease(pass, decls, rule, c, field) {
				released = true
			}
			return !released
		})
		if released {
			return
		}
	}
	pass.Reportf(call.Pos(), "%s stored in field %s, but no Close/Stop/Shutdown method releases it",
		rule.label, field.Name())
}

// closerName reports whether a method name is a lifecycle teardown hook.
func closerName(name string) bool {
	switch name {
	case "Close", "Stop", "Shutdown", "Finish", "close", "stop", "shutdown", "drain", "Drain":
		return true
	}
	return false
}

// isRelease reports whether call releases obj under rule: a release-named
// method with obj as receiver, Pool.Put(obj) for pool resources, or — one
// wrapper deep — a same-package function/method that receives obj and
// whose body performs the real release on the corresponding parameter or
// receiver (arena.recycle wrapping arenaPool.Put).
func isRelease(pass *Pass, decls map[*types.Func]*ast.FuncDecl, rule *resRule, call *ast.CallExpr, obj types.Object) bool {
	if directRelease(pass, rule, call, obj) {
		return true
	}
	f := calleeFunc(pass.Info, call)
	if f == nil {
		return false
	}
	decl, ok := decls[f]
	if !ok || decl.Body == nil {
		return false
	}
	// Does obj flow into this call as the receiver or an argument?
	var inner types.Object
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && rootChanObj(pass, sel.X) == obj {
		if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
			inner = pass.Info.Defs[decl.Recv.List[0].Names[0]]
		}
	}
	for i, arg := range call.Args {
		if rootChanObj(pass, arg) != obj {
			continue
		}
		if sig, ok := f.Type().(*types.Signature); ok && i < sig.Params().Len() {
			inner = sig.Params().At(i)
		}
	}
	if inner == nil {
		return false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && directRelease(pass, rule, c, inner) {
			found = true
		}
		return !found
	})
	return found
}

// directRelease matches the literal release shape from the table.
func directRelease(pass *Pass, rule *resRule, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if rule.poolGet {
		if sel.Sel.Name != "Put" {
			return false
		}
		f, _ := pass.Info.Uses[sel.Sel].(*types.Func)
		if f == nil || !namedIs(recvNamed(f), "sync", "Pool") {
			return false
		}
		return len(call.Args) == 1 && rootChanObj(pass, call.Args[0]) == obj
	}
	return rule.releases[sel.Sel.Name] && rootChanObj(pass, sel.X) == obj
}

func releaseNames(rule *resRule) string {
	if rule.poolGet {
		return "Put"
	}
	out := ""
	for name := range rule.releases {
		if out != "" {
			out += "/"
		}
		out += name
	}
	return out
}

// resource-use classification for one identifier occurrence.
type useClass int

const (
	useBenign     useClass = iota // receiver/field access, nil compare, defining ident
	useEscape                     // ownership visibly moves on
	useFieldStore                 // stored into a struct field: obligations move to the struct
)

// useKind classifies how the identifier at the top of the stack uses the
// resource. Method calls (`sub.Close()`, `ticker.C`) and comparisons are
// benign; passing the value whole — as a call argument, return value,
// channel send, composite-literal element, or address-of — is an escape.
// For a field store (`x.f = res`) it also returns the target selector.
func useKind(stack []ast.Node) (useClass, *ast.SelectorExpr) {
	id := stack[len(stack)-1].(*ast.Ident)
	if len(stack) < 2 {
		return useBenign, nil
	}
	switch parent := stack[len(stack)-2].(type) {
	case *ast.SelectorExpr:
		return useBenign, nil // x.Method / x.Field access
	case *ast.CallExpr:
		for _, arg := range parent.Args {
			if arg == ast.Expr(id) {
				return useEscape, nil
			}
		}
	case *ast.ReturnStmt, *ast.SendStmt, *ast.CompositeLit, *ast.KeyValueExpr:
		return useEscape, nil
	case *ast.UnaryExpr:
		if parent.Op == token.AND {
			return useEscape, nil
		}
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if rhs != ast.Expr(id) {
				continue
			}
			// Aliased somewhere: a field store keeps the obligation in
			// this package, anything else is treated as an escape.
			if i < len(parent.Lhs) {
				if sel, ok := parent.Lhs[i].(*ast.SelectorExpr); ok {
					return useFieldStore, sel
				}
			}
			return useEscape, nil
		}
	case *ast.IndexExpr:
		if parent.Index == ast.Expr(id) || parent.X != ast.Expr(id) {
			return useEscape, nil
		}
	}
	return useBenign, nil
}

// underDefer reports whether the stack passes through a defer statement —
// either the deferred call itself or anything inside a deferred literal.
func underDefer(stack []ast.Node) bool {
	for _, n := range stack {
		if _, ok := n.(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

// underErrGuard reports whether the node whose ancestors are given sits
// inside an if whose condition mentions errObj — the `if err != nil {
// return }` shape that needs no release.
func underErrGuard(pass *Pass, stack []ast.Node, errObj types.Object) bool {
	for _, n := range stack {
		ifst, ok := n.(*ast.IfStmt)
		if !ok || ifst.Cond == nil {
			continue
		}
		found := false
		ast.Inspect(ifst.Cond, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == errObj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// inspectShallowStack walks root with ancestor tracking, suppressing
// visits inside nested function literals (each literal is its own scope).
// The traversal itself always descends so the push/pop bookkeeping stays
// balanced; suppressed nodes simply never reach fn.
func inspectShallowStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	litDepth := 0
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			if _, ok := stack[len(stack)-1].(*ast.FuncLit); ok && stack[len(stack)-1] != ast.Node(root) {
				litDepth--
			}
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(root) {
			litDepth++
		}
		stack = append(stack, n)
		if litDepth == 0 {
			fn(n, stack)
		}
		return true
	})
}
