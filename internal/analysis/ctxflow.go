package analysis

import (
	"go/ast"
	"go/types"
)

// ctxFlowPathSegments are the request/job-path packages where context
// threading is mandatory: severing ctx there breaks request cancellation,
// deadline propagation, and trace-ID correlation end to end.
var ctxFlowPathSegments = []string{
	"internal/server",
	"internal/jobs",
	"internal/exec",
}

// CtxFlow enforces two rules on request/job paths:
//
//  1. context.Background() and context.TODO() are forbidden — a fresh root
//     severs cancellation and trace correlation. The only sanctioned roots
//     are process-lifetime ones (a manager's base context created at Open),
//     and those carry a documented ignore directive.
//  2. A function that receives a context.Context must thread it: every
//     context-typed argument it passes must be its own ctx parameter or a
//     context derived from it (WithCancel/WithTimeout/WithValue/...).
//     Passing an unrelated context while holding one is almost always a
//     plumbing bug.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "forbids context.Background()/TODO() on request/job paths and requires " +
		"functions receiving a ctx to thread it to their callees",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	inScope := false
	for _, seg := range ctxFlowPathSegments {
		if pathHas(pass.Path, seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFunc(pass, fd)
		}
	}
	return nil
}

// isCtxRoot reports whether call is context.Background() or context.TODO(),
// returning which.
func isCtxRoot(pass *Pass, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(pass.Info, call)
	if f == nil || funcPkgPath(f) != "context" {
		return "", false
	}
	if f.Name() == "Background" || f.Name() == "TODO" {
		return "context." + f.Name() + "()", true
	}
	return "", false
}

// checkCtxFunc applies both rules to one function declaration. Function
// literals inside are walked as part of the enclosing declaration: a
// closure sees (and must thread) the ctx it closes over.
func checkCtxFunc(pass *Pass, fd *ast.FuncDecl) {
	var ctxParam *types.Var
	if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
		if sig, ok := obj.Type().(*types.Signature); ok {
			ctxParam = contextParam(sig)
		}
	}

	// derived is the set of context variables reachable from the ctx
	// parameter, grown in source order as derivations are assigned.
	derived := map[*types.Var]bool{}
	if ctxParam != nil {
		derived[ctxParam] = true
	}
	// Closure parameters named as contexts start independent derivation
	// roots: a `func(ctx context.Context)` literal threads its own ctx.
	litParams := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
					litParams[v] = true
					derived[v] = true
				}
			}
		}
		return true
	})

	// Pass 1 (source order): record derivations ctx2 := f(..., ctx, ...).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		fromDerived := false
		for _, rhs := range asg.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			// A var assigned from a fresh root is flagged at the root call;
			// treating it as derived avoids a second finding at every use.
			if _, isRoot := isCtxRoot(pass, call); isRoot {
				fromDerived = true
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if v, ok := pass.Info.Uses[id].(*types.Var); ok && derived[v] {
						fromDerived = true
					}
				}
			}
			// Method calls on a derived receiver (req.WithContext style
			// chains keep the receiver's context lineage).
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if v, ok := pass.Info.Uses[id].(*types.Var); ok && derived[v] {
						fromDerived = true
					}
				}
			}
		}
		if !fromDerived {
			return true
		}
		for _, lhs := range asg.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if v, ok := pass.ObjectOf(id).(*types.Var); ok && isContextType(v.Type()) {
					derived[v] = true
				}
			}
		}
		return true
	})

	// Pass 2: flag roots, and non-derived context arguments.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if root, ok := isCtxRoot(pass, call); ok {
			if ctxParam != nil {
				pass.Reportf(call.Pos(), "%s in %s, which already receives a ctx: derive from it so cancellation and trace correlation propagate", root, fd.Name.Name)
			} else {
				pass.Reportf(call.Pos(), "%s starts a fresh root on a request/job path: thread a caller's context instead (process-lifetime roots need a documented ignore directive)", root)
			}
			return true
		}
		if ctxParam == nil {
			return true
		}
		for _, arg := range call.Args {
			t := pass.TypeOf(arg)
			if t == nil || !isContextType(t) {
				continue
			}
			switch a := ast.Unparen(arg).(type) {
			case *ast.Ident:
				if v, ok := pass.Info.Uses[a].(*types.Var); ok && !derived[v] {
					pass.Reportf(arg.Pos(), "%s receives ctx but passes unrelated context %q here; thread the function's own ctx", fd.Name.Name, a.Name)
				}
			case *ast.CallExpr:
				// r.Context(), span-derived contexts, etc. — results of
				// calls are accepted; roots were handled above.
			}
		}
		return true
	})
}
