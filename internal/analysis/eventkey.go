package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"reflect"
	"strings"
)

// EventKey keeps the observability vocabulary closed: every span attribute
// key and every trace wire-field name must come from the canonical exported
// constant set in internal/obs (KeyAlg, KeyTask, WireEvent, ...). Trace
// consumers — the replay tool, Chrome trace viewers, downstream JSONL
// pipelines — parse these strings; an ad-hoc key is a silent schema fork.
//
// Two rules:
//
//  1. Attribute keys passed to StartSpan(ctx, name, k, v, ...) and to
//     (*Span).SetAttr(k, v) must be named constants whose name starts with
//     "Key". Forwarding a variadic slice (attrs...) is exempt — the keys
//     were checked at the originating call.
//  2. Inside internal/obs packages, every `json:"..."` tag on a struct
//     field must be a value of some Key* or Wire* constant declared in the
//     same package: the wire schema is exactly the canonical set.
var EventKey = &Analyzer{
	Name: "eventkey",
	Doc: "requires span attribute keys and obs wire-struct json tags to come " +
		"from the canonical Key*/Wire* constant set in internal/obs",
	Run: runEventKey,
}

func runEventKey(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkAttrKeys(pass, call)
			return true
		})
	}
	if pathHas(pass.Path, "internal/obs") {
		checkWireTags(pass)
	}
	return nil
}

// isKeyConst reports whether e resolves to a named constant whose name
// carries the Key prefix (any package — facades may re-export the set).
func isKeyConst(pass *Pass, e ast.Expr) bool {
	c := namedConst(pass.Info, e)
	return c != nil && strings.HasPrefix(c.Name(), "Key")
}

// checkAttrKeys validates the key positions of StartSpan and SetAttr calls.
func checkAttrKeys(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil {
		return
	}
	switch f.Name() {
	case "StartSpan":
		// Package-level span constructor: (ctx, name string, attrs ...string).
		sig, ok := f.Type().(*types.Signature)
		if !ok || !sig.Variadic() || sig.Recv() != nil || sig.Params().Len() != 3 {
			return
		}
		if !isContextType(sig.Params().At(0).Type()) {
			return
		}
		if call.Ellipsis.IsValid() {
			return // forwarding attrs... — checked at the origin
		}
		for i := 2; i < len(call.Args); i += 2 {
			if !isKeyConst(pass, call.Args[i]) {
				pass.Reportf(call.Args[i].Pos(), "span attribute key must be a canonical Key* constant from internal/obs, not %s", exprText(pass.Fset, call.Args[i]))
			}
		}
	case "SetAttr":
		recv := recvNamed(f)
		if recv == nil || !namedIs(recv, "internal/obs", "Span") || len(call.Args) < 1 {
			return
		}
		if !isKeyConst(pass, call.Args[0]) {
			pass.Reportf(call.Args[0].Pos(), "span attribute key must be a canonical Key* constant from internal/obs, not %s", exprText(pass.Fset, call.Args[0]))
		}
	}
}

// checkWireTags verifies every json tag in the obs package against the
// package's own Key*/Wire* constant values.
func checkWireTags(pass *Pass) {
	allowed := map[string]bool{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Key") && !strings.HasPrefix(name, "Wire") {
			continue
		}
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || c.Val().Kind() != constant.String {
			continue
		}
		allowed[constant.StringVal(c.Val())] = true
	}
	if len(allowed) == 0 {
		// A package with no canonical set (e.g. a helper subpackage)
		// carries no wire schema to enforce.
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if field.Tag == nil {
					continue
				}
				raw := strings.Trim(field.Tag.Value, "`")
				jsonTag := reflect.StructTag(raw).Get("json")
				name, _, _ := strings.Cut(jsonTag, ",")
				if name == "" || name == "-" {
					continue
				}
				if !allowed[name] {
					pass.Reportf(field.Tag.Pos(), "wire field %q is not in the canonical Key*/Wire* constant set; add a Wire constant or rename the tag", name)
				}
			}
			return true
		})
	}
}
