package analysis

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runFixture loads the GOPATH-style fixture tree under testdata/src/<name>,
// runs the analyzer (with the shared directive machinery) over every
// package in it, and compares the diagnostics against `// want "regexp"`
// expectations in the fixture sources — the analysistest contract: every
// diagnostic must match a want on its exact file and line, and every want
// must be consumed by exactly one diagnostic.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	fset := token.NewFileSet()
	root := filepath.Join("testdata", "src", name)
	pkgs, err := LoadFixtureTree(fset, root)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s contains no packages", name)
	}
	diags, err := Run(fset, pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s over %s: %v", a.Name, name, err)
	}

	type expectation struct {
		file    string
		line    int
		re      *regexp.Regexp
		matched bool
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					// `want "re"` expects a diagnostic on its own line;
					// `want-above "re"` on the line above — for diagnostics
					// reported at a comment (directive findings), where the
					// line cannot hold a second comment.
					offset := 0
					after, ok := strings.CutPrefix(text, "want ")
					if !ok {
						after, ok = strings.CutPrefix(text, "want-above ")
						if !ok {
							continue
						}
						offset = -1
					}
					pos := fset.Position(c.Pos())
					pos.Line += offset
					patterns, err := splitQuoted(after)
					if err != nil {
						t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
					}
					for _, p := range patterns {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// splitQuoted parses a sequence of Go-quoted strings: `...` or "...".
func splitQuoted(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, err
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			return nil, err
		}
		out = append(out, unq)
		s = s[len(prefix):]
	}
}

func TestDeterminismFixture(t *testing.T) { runFixture(t, Determinism, "determinism") }
func TestLockedIOFixture(t *testing.T)    { runFixture(t, LockedIO, "lockedio") }
func TestCtxFlowFixture(t *testing.T)     { runFixture(t, CtxFlow, "ctxflow") }
func TestMetricNameFixture(t *testing.T)  { runFixture(t, MetricName, "metricname") }
func TestEventKeyFixture(t *testing.T)    { runFixture(t, EventKey, "eventkey") }
func TestDirectiveFixture(t *testing.T)   { runFixture(t, CtxFlow, "directive") }
func TestHotPathAllocFixture(t *testing.T) {
	runFixture(t, HotPathAlloc, "hotpathalloc")
}
func TestGoroutineLifeFixture(t *testing.T) { runFixture(t, GoroutineLife, "goroutinelife") }
func TestPairedResFixture(t *testing.T)     { runFixture(t, PairedRes, "pairedres") }
func TestBoundedSpawnFixture(t *testing.T)  { runFixture(t, BoundedSpawn, "boundedspawn") }
func TestAtomicMixFixture(t *testing.T)     { runFixture(t, AtomicMix, "atomicmix") }
