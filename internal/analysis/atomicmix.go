package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags three ways of mixing synchronization disciplines on one
// memory location:
//
//  1. a field passed to sync/atomic functions (&x.f) that is also read or
//     written plainly elsewhere — the plain access races with the atomic
//     ones;
//  2. a value of an atomic.* type (atomic.Int64, atomic.Bool, ...) that is
//     copied or reassigned whole instead of used through its methods —
//     copying an atomic value forks its state and trips go vet's copylocks
//     on some of them only;
//  3. a struct field whose accesses are majority-mutex-guarded (with at
//     least one guarded write) that is also accessed without the lock.
//
// Guarded-ness is inferred lexically per function, like lockedio's lock
// regions, with two exemptions that encode real ownership rules:
// constructor closure — functions that build the struct (contain its
// composite literal), and helpers called only from them, may initialize
// fields unlocked; caller-held propagation — a helper whose every
// same-package call site sits under the owning lock is treated as locked
// context (the `persist`/`gcLocked` caller-holds-mu convention).
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "flags fields mixing sync/atomic with plain access, atomic.* values " +
		"copied instead of used via methods, and unguarded accesses to " +
		"majority-mutex-guarded fields",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	checkAtomicValueCopies(pass)
	c := newMixCollector(pass)
	c.collect()
	c.reportAtomicPlainMix()
	c.reportMutexMix()
	return nil
}

// --- part B: atomic.* values must be used through their methods ----------

// isAtomicValueType reports whether t is a named type from sync/atomic
// (Int32/Int64/Uint32/Uint64/Bool/Value/Pointer[T]).
func isAtomicValueType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic"
}

// checkAtomicValueCopies flags atomic-typed values used other than as a
// method receiver (or via &): assignment, copy, comparison, argument.
func checkAtomicValueCopies(pass *Pass) {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			var t types.Type
			switch x := e.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				tv, ok := pass.Info.Types[e]
				if !ok || !tv.IsValue() {
					return true
				}
				t = tv.Type
			case *ast.Ident:
				// Only uses: declaration names (fields, vars, parameters)
				// introduce the location rather than copying it.
				v, ok := pass.Info.Uses[x].(*types.Var)
				if !ok {
					return true
				}
				t = v.Type()
			default:
				return true
			}
			if !isAtomicValueType(t) || len(stack) < 2 {
				return true
			}
			switch parent := stack[len(stack)-2].(type) {
			case *ast.SelectorExpr:
				return true // receiver/selection path (x.f.Load(), or the Sel itself)
			case *ast.UnaryExpr:
				if parent.Op == token.AND {
					return true // address taken: still the one location
				}
			case *ast.IndexExpr:
				if parent.X == e {
					return true // indexing into an array of atomics
				}
			case *ast.StarExpr, *ast.ParenExpr:
				return true
			}
			pass.Reportf(e.Pos(), "atomic value of type %s is copied or reassigned; use its Load/Store/Add methods — copying forks the state",
				t.String())
			return true
		})
	}
}

// --- parts A and C: per-field access census ------------------------------

type mixAccess struct {
	write  bool
	pos    token.Pos
	locked bool
	fn     *types.Func // containing declaration; nil at package scope
	base   string      // receiver expression text, e.g. "m"
}

type mixCollector struct {
	pass  *Pass
	decls map[*types.Func]*ast.FuncDecl
	// mutexOwner marks named struct types that carry a sync.Mutex/RWMutex
	// field; only their fields participate in the mutex-majority census.
	mutexFields map[*types.Var]bool // the mutex fields themselves
	guardable   map[*types.Var]bool // plain fields of mutex-owning structs
	fieldOwner  map[*types.Var]*types.Named
	// accesses is the census: every plain field access outside atomic calls.
	accesses map[*types.Var][]*mixAccess
	// atomicOps records fields used via sync/atomic calls (&x.f) and the
	// positions of those sanctioned operands.
	atomicOps  map[*types.Var][]token.Pos
	sanctioned map[token.Pos]bool
	// heldCalls / totalCalls drive caller-held propagation.
	heldCalls  map[*types.Func]int
	totalCalls map[*types.Func]int
	// builders maps each named struct to the functions containing its
	// composite literal (constructor-closure seeds).
	builders map[*types.Named]map[*types.Func]bool
	// callers maps callee -> containing functions of its call sites.
	callers map[*types.Func]map[*types.Func]bool
}

func newMixCollector(pass *Pass) *mixCollector {
	c := &mixCollector{
		pass:        pass,
		decls:       declaredFuncs(pass),
		mutexFields: make(map[*types.Var]bool),
		guardable:   make(map[*types.Var]bool),
		fieldOwner:  make(map[*types.Var]*types.Named),
		accesses:    make(map[*types.Var][]*mixAccess),
		atomicOps:   make(map[*types.Var][]token.Pos),
		sanctioned:  make(map[token.Pos]bool),
		heldCalls:   make(map[*types.Func]int),
		totalCalls:  make(map[*types.Func]int),
		builders:    make(map[*types.Named]map[*types.Func]bool),
		callers:     make(map[*types.Func]map[*types.Func]bool),
	}
	c.indexStructs()
	return c
}

// indexStructs finds this package's named structs and classifies their
// fields: mutex fields anchor lock inference, the rest are guardable.
func (c *mixCollector) indexStructs() {
	scope := c.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		var mutexes, plain []*types.Var
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if fn, ok := f.Type().(*types.Named); ok &&
				(namedIs(fn, "sync", "Mutex") || namedIs(fn, "sync", "RWMutex")) {
				mutexes = append(mutexes, f)
				continue
			}
			plain = append(plain, f)
		}
		// Every field gets an owner (the atomic/plain census applies to any
		// struct); only fields of mutex-carrying structs are guardable.
		for _, f := range plain {
			c.fieldOwner[f] = named
		}
		if len(mutexes) == 0 {
			continue
		}
		for _, f := range mutexes {
			c.mutexFields[f] = true
		}
		for _, f := range plain {
			c.guardable[f] = true
		}
	}
}

// collect runs the census over every declared function.
func (c *mixCollector) collect() {
	// Sanction the operands of sync/atomic calls first, so the access walk
	// can skip them.
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(c.pass.Info, call)
			if f == nil || funcPkgPath(f) != "sync/atomic" || recvNamed(f) != nil {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if selObj := c.fieldObj(sel); selObj != nil {
					c.atomicOps[selObj] = append(c.atomicOps[selObj], sel.Pos())
					c.sanctioned[sel.Pos()] = true
				}
			}
			return true
		})
	}
	for fn, decl := range c.decls {
		c.scanScope(decl.Body, fn, nil)
		// Constructor seed: does this function build any indexed struct?
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := c.pass.TypeOf(lit)
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				if _, tracked := c.builders[named]; tracked || c.ownsFields(named) {
					if c.builders[named] == nil {
						c.builders[named] = make(map[*types.Func]bool)
					}
					c.builders[named][fn] = true
				}
			}
			return true
		})
	}
}

// ownsFields reports whether named has guardable fields in the census.
func (c *mixCollector) ownsFields(named *types.Named) bool {
	for _, owner := range c.fieldOwner {
		if owner == named {
			return true
		}
	}
	return false
}

// fieldObj resolves sel to the struct field it selects, or nil.
func (c *mixCollector) fieldObj(sel *ast.SelectorExpr) *types.Var {
	selection, ok := c.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	v, _ := selection.Obj().(*types.Var)
	return v
}

// scanScope performs the linear lock-region walk over one scope, recording
// field accesses with their held state and call sites with theirs. Nested
// function literals inherit the held set at their definition point — a
// comparator or deferred closure built under the lock usually runs there.
func (c *mixCollector) scanScope(body *ast.BlockStmt, fn *types.Func, inherited map[string]int) {
	held := make(map[string]int, len(inherited))
	for k, v := range inherited {
		held[k] = v
	}
	heldCount := func(base string) bool { return held[base] > 0 }

	// A deferred unlock holds the region to scope end: ignore those calls
	// so the held count never decrements for them.
	deferredUnlocks := make(map[*ast.CallExpr]bool)
	inspectShallow(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if base, _, isUnlock := c.lockBase(d.Call); isUnlock && base != "" {
				deferredUnlocks[d.Call] = true
			}
		}
		return true
	})

	var stack []ast.Node
	litDepth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := top.(*ast.FuncLit); ok {
				litDepth--
			}
			return true
		}
		stack = append(stack, n)
		if lit, ok := n.(*ast.FuncLit); ok {
			if litDepth == 0 {
				c.scanScope(lit.Body, fn, held)
			}
			litDepth++
			return true
		}
		if litDepth > 0 {
			return true
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if deferredUnlocks[x] {
				return true
			}
			if base, isLock, isUnlock := c.lockBase(x); base != "" {
				if isLock {
					held[base]++
				} else if isUnlock && held[base] > 0 {
					held[base]--
				}
				return true
			}
			if callee := calleeFunc(c.pass.Info, x); callee != nil {
				if _, local := c.decls[callee]; local {
					c.totalCalls[callee]++
					base := ""
					if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
						base = exprText(c.pass.Fset, sel.X)
					}
					if heldCount(base) {
						c.heldCalls[callee]++
					}
					if fn != nil {
						if c.callers[callee] == nil {
							c.callers[callee] = make(map[*types.Func]bool)
						}
						c.callers[callee][fn] = true
					}
				}
			}
		case *ast.SelectorExpr:
			field := c.fieldObj(x)
			if field == nil || c.sanctioned[x.Pos()] {
				return true
			}
			if !c.guardable[field] && len(c.atomicOps[field]) == 0 {
				return true
			}
			if field.Pkg() != c.pass.Pkg {
				return true
			}
			base := exprText(c.pass.Fset, x.X)
			c.accesses[field] = append(c.accesses[field], &mixAccess{
				write:  isWritePos(stack, x),
				pos:    x.Pos(),
				locked: heldCount(base),
				fn:     fn,
				base:   base,
			})
		}
		return true
	})
}

// lockBase classifies call as Lock/RLock/Unlock/RUnlock on a mutex and
// returns the text of the expression owning the mutex: for m.mu.Lock()
// that is "m", for an embedded m.Lock() it is "m".
func (c *mixCollector) lockBase(call *ast.CallExpr) (base string, isLock, isUnlock bool) {
	key, unlock, lock := mutexOp(c.pass, call)
	if key == "" {
		return "", false, false
	}
	sel, _ := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if sel == nil {
		return "", false, false
	}
	owner := ast.Unparen(sel.X)
	if inner, ok := owner.(*ast.SelectorExpr); ok {
		if f := c.fieldObj(inner); f != nil && c.mutexFields[f] {
			return exprText(c.pass.Fset, inner.X), lock, unlock
		}
	}
	return key, lock, unlock
}

// isWritePos reports whether the selector at the top of the stack is a
// write target: assignment LHS (possibly through an index, e.g.
// s.recs[k] = v), ++/--, or address-taken.
func isWritePos(stack []ast.Node, sel *ast.SelectorExpr) bool {
	node := ast.Expr(sel)
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.IndexExpr:
			if parent.X != node {
				return false
			}
			node = parent
		case *ast.ParenExpr:
			node = parent
		case *ast.StarExpr:
			node = parent
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if lhs == node {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return parent.X == node
		case *ast.UnaryExpr:
			return parent.Op == token.AND // address taken: may be written through
		default:
			return false
		}
	}
	return false
}

// exemptFuncs computes the constructor closure for one struct: functions
// containing its composite literal, plus functions called exclusively from
// already-exempt functions.
func (c *mixCollector) exemptFuncs(named *types.Named) map[*types.Func]bool {
	exempt := make(map[*types.Func]bool)
	for fn := range c.builders[named] {
		exempt[fn] = true
	}
	for changed := true; changed; {
		changed = false
		for callee, froms := range c.callers {
			if exempt[callee] || len(froms) == 0 {
				continue
			}
			all := true
			for from := range froms {
				if !exempt[from] {
					all = false
					break
				}
			}
			if all {
				exempt[callee] = true
				changed = true
			}
		}
	}
	return exempt
}

// heldContext reports whether every same-package call of fn happens under
// the owning lock (and there is at least one such call).
func (c *mixCollector) heldContext(fn *types.Func) bool {
	return fn != nil && c.totalCalls[fn] > 0 && c.heldCalls[fn] == c.totalCalls[fn]
}

// reportAtomicPlainMix flags plain accesses to fields that sync/atomic
// functions also touch (part A).
func (c *mixCollector) reportAtomicPlainMix() {
	for field, poss := range c.atomicOps {
		if len(poss) == 0 {
			continue
		}
		owner := c.fieldOwner[field]
		var exempt map[*types.Func]bool
		if owner != nil {
			exempt = c.exemptFuncs(owner)
		}
		for _, a := range c.accesses[field] {
			if exempt[a.fn] {
				continue
			}
			kind := "read"
			if a.write {
				kind = "write"
			}
			c.pass.Reportf(a.pos, "field %s is accessed via sync/atomic elsewhere in this package; this plain %s races with those atomic operations",
				field.Name(), kind)
		}
	}
}

// reportMutexMix flags unguarded accesses to fields whose access census is
// majority-locked with at least one locked write (part C).
func (c *mixCollector) reportMutexMix() {
	for field, list := range c.accesses {
		if len(c.atomicOps[field]) > 0 {
			continue // already reported as atomic/plain mixing
		}
		owner := c.fieldOwner[field]
		if owner == nil {
			continue
		}
		exempt := c.exemptFuncs(owner)
		locked, unlocked, lockedWrites := 0, 0, 0
		var offenders []*mixAccess
		for _, a := range list {
			if exempt[a.fn] {
				continue
			}
			if a.locked || c.heldContext(a.fn) {
				locked++
				if a.write {
					lockedWrites++
				}
				continue
			}
			unlocked++
			offenders = append(offenders, a)
		}
		if lockedWrites == 0 || locked <= unlocked {
			continue
		}
		for _, a := range offenders {
			c.pass.Reportf(a.pos, "field %s.%s is mutex-guarded (majority of accesses hold the lock); this access does not hold it",
				owner.Obj().Name(), field.Name())
		}
	}
}
