package analysis

import (
	"go/ast"
	"regexp"
)

// metricNameRE is the canonical series-name shape: daemon-level series use
// the hdltsd_ prefix, library/scheduler series use hdlts_.
var metricNameRE = regexp.MustCompile(`^hdltsd?_[a-z0-9_]+$`)

// metricRegistrars are the Registry methods that create a series.
var metricRegistrars = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true, "SetBuckets": true,
}

// MetricName enforces the metric-naming contract at every registration
// call on the obs Registry:
//
//   - the name argument must be a declared named constant — grep-able,
//     documentable, and impossible to typo twice in different spellings;
//   - its value must match ^hdltsd?_[a-z0-9_]+$;
//   - each name is registered by exactly one package across the module
//     (the same package may look the series up repeatedly).
//
// Dashboards and alert rules key on these strings; a renamed or duplicated
// series breaks them silently.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "requires metric registrations on the obs Registry to use named " +
		"constants matching ^hdltsd?_[a-z0-9_]+$, each owned by one package",
	Run: runMetricName,
}

func runMetricName(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !metricRegistrars[fn.Name()] {
				return true
			}
			recv := recvNamed(fn)
			if recv == nil || !namedIs(recv, "internal/obs", "Registry") {
				return true
			}
			arg := call.Args[0]
			c := namedConst(pass.Info, arg)
			if c == nil {
				if lit, ok := constString(pass.Info, arg); ok {
					pass.Reportf(arg.Pos(), "metric name %q must be a named constant (declare it once and register through the constant)", lit)
				} else {
					pass.Reportf(arg.Pos(), "metric name must be a named constant, not a computed expression")
				}
				return true
			}
			val, ok := constString(pass.Info, arg)
			if !ok {
				return true
			}
			if !metricNameRE.MatchString(val) {
				pass.Reportf(arg.Pos(), "metric name %q does not match ^hdltsd?_[a-z0-9_]+$ (constant %s)", val, c.Name())
				return true
			}
			if pass.shared != nil {
				if owner, dup := pass.shared.ClaimMetric(val, pass.Path); dup {
					pass.Reportf(arg.Pos(), "metric %q is already registered by %s; one series, one owning package", val, owner)
				}
			}
			return true
		})
	}
	return nil
}
