package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BoundedSpawn polices goroutine creation in the request/job/step packages
// (internal/server, internal/jobs, internal/exec): a goroutine spawned per
// iteration of a data-sized loop — range over a collection or channel, an
// infinite for, or a len()/cap()-bounded counter loop — is unbounded by
// user-controlled input and must go through a pool or semaphore instead.
// Plain counter loops (`for i := 0; i < workers; i++`) are pool
// construction and stay exempt.
//
// A send statement lexically before the spawn (in the loop body, or in the
// spawning function for per-item calls) is accepted as semaphore-acquire
// evidence: `sem <- struct{}{}` before `go ...` is the standard bounded
// shape. The check extends one call level: a function containing a bare
// `go` that is itself called from inside a data loop in the same package
// is a per-item spawner too.
var BoundedSpawn = &Analyzer{
	Name: "boundedspawn",
	Doc: "flags per-request/per-job/per-step goroutine creation in internal/server, " +
		"internal/jobs, internal/exec that does not go through a bounded pool or semaphore",
	Run: runBoundedSpawn,
}

func runBoundedSpawn(pass *Pass) error {
	if !pathHas(pass.Path, "internal/server") && !pathHas(pass.Path, "internal/jobs") &&
		!pathHas(pass.Path, "internal/exec") {
		return nil
	}
	decls := declaredFuncs(pass)

	// bareSpawns records, per declared function, its go statements that are
	// not themselves inside a data loop (candidates for the per-item-call
	// rule) together with whether a send precedes them in the body.
	type spawn struct {
		g      *ast.GoStmt
		gated  bool // a send statement precedes the spawn in the same body
		inLoop bool
	}
	spawns := make(map[*types.Func][]spawn)
	reported := make(map[*ast.GoStmt]bool)

	for f, decl := range decls {
		sends := sendPositions(decl.Body)
		var stack []ast.Node
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			loop := enclosingDataLoop(stack[:len(stack)-1])
			gated := false
			for _, p := range sends {
				if p < g.Pos() {
					gated = true
					break
				}
			}
			if loop != nil && !gated && !reported[g] {
				reported[g] = true
				pass.Reportf(g.Pos(), "unbounded goroutine per loop iteration: route the work through a bounded pool or acquire a semaphore (a channel send) before spawning")
			}
			spawns[f] = append(spawns[f], spawn{g: g, gated: gated, inLoop: loop != nil})
			return true
		})
	}

	// Per-item calls: a call inside a data loop whose same-package callee
	// spawns bare goroutines makes those spawns per-item.
	for _, decl := range decls {
		caller := decl.Name.Name
		var stack []ast.Node
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if enclosingDataLoop(stack[:len(stack)-1]) == nil {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil {
				return true
			}
			for _, s := range spawns[callee] {
				if s.inLoop || s.gated || reported[s.g] {
					continue
				}
				reported[s.g] = true
				pass.Reportf(s.g.Pos(), "goroutine spawned per item of a loop in %s (which calls %s per iteration): bound it with a pool or semaphore",
					caller, callee.Name())
			}
			return true
		})
	}
	return nil
}

// enclosingDataLoop returns the innermost data-sized loop the node with
// the given ancestor stack sits in, stopping at function boundaries, or
// nil. Data-sized: range loops, infinite loops, and counter loops whose
// condition consults len() or cap().
func enclosingDataLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch l := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return nil
		case *ast.RangeStmt:
			return l
		case *ast.ForStmt:
			if l.Cond == nil {
				return l
			}
			lenBound := false
			ast.Inspect(l.Cond, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
						lenBound = true
					}
				}
				return !lenBound
			})
			if lenBound {
				return l
			}
		}
	}
	return nil
}

// sendPositions collects the positions of channel sends in body — each is
// potential semaphore-acquire evidence for spawns after it.
func sendPositions(body *ast.BlockStmt) []token.Pos {
	var out []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok {
			out = append(out, s.Pos())
		}
		return true
	})
	return out
}
