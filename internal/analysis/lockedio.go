package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockedIO flags blocking operations — file writes and fsyncs, network
// round-trips, writes to interface writers, channel sends/receives, sleeps
// — that are reachable while a sync.Mutex or sync.RWMutex is held. A slow
// disk or scraper must never stall every other request behind a hot lock:
// the WAL fsync path and the trace/metrics stores are the motivating
// call sites (lockedio ⇔ WAL latency, metrics-scrape availability).
//
// The check is intraprocedural over lock regions with one package-local
// level of call propagation: a function whose body (transitively, within
// the package) performs a blocking operation taints every call to it. Lock
// regions are tracked linearly per function scope — Lock() opens a region
// for its receiver expression, a plain Unlock() on the same expression
// closes it, a deferred Unlock holds to function end. Function literals
// are independent scopes (a closure built under a lock usually runs
// elsewhere).
var LockedIO = &Analyzer{
	Name: "lockedio",
	Doc: "flags blocking I/O (file writes/fsync, network, channel ops, sleeps) " +
		"reachable while a sync.Mutex/RWMutex is held",
	Run: runLockedIO,
}

// fileBlockingMethods are *os.File methods that hit the disk.
var fileBlockingMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true, "Sync": true,
	"Close": true, "Truncate": true, "ReadFrom": true, "Read": true, "ReadAt": true,
}

// osBlockingFuncs are package-level os functions that hit the filesystem.
var osBlockingFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "Rename": true,
	"Remove": true, "RemoveAll": true, "Mkdir": true, "MkdirAll": true,
	"ReadFile": true, "WriteFile": true, "Truncate": true, "ReadDir": true,
}

// httpBlockingMethods are client round-trip entry points.
var httpBlockingMethods = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
}

// baseBlockingReason classifies one call as directly blocking, returning a
// human-readable reason or "".
func baseBlockingReason(pass *Pass, call *ast.CallExpr) string {
	f := calleeFunc(pass.Info, call)
	if f == nil {
		return ""
	}
	name := f.Name()
	if recv := recvNamed(f); recv != nil {
		switch {
		case namedIs(recv, "os", "File") && fileBlockingMethods[name]:
			return "(*os.File)." + name
		case recv.Obj().Pkg() != nil && recv.Obj().Pkg().Path() == "net":
			return "net." + recv.Obj().Name() + "." + name
		case namedIs(recv, "net/http", "Client") && httpBlockingMethods[name]:
			return "(*http.Client)." + name
		case namedIs(recv, "net/http", "ResponseWriter") && (name == "Write" || name == "WriteHeader"):
			return "http.ResponseWriter." + name
		case namedIs(recv, "io", "Writer") && name == "Write":
			return "io.Writer.Write (writer may be a file or socket)"
		case namedIs(recv, "io", "ReadWriter") && (name == "Write" || name == "Read"):
			return "io.ReadWriter." + name
		case namedIs(recv, "encoding/json", "Encoder") && name == "Encode":
			return "(*json.Encoder).Encode (underlying writer may block)"
		case namedIs(recv, "bufio", "Writer") && name == "Flush":
			return "(*bufio.Writer).Flush"
		case namedIs(recv, "sync", "WaitGroup") && name == "Wait":
			return "(*sync.WaitGroup).Wait"
		case namedIs(recv, "sync", "Cond") && name == "Wait":
			return "(*sync.Cond).Wait"
		}
		return ""
	}
	switch funcPkgPath(f) {
	case "os":
		if osBlockingFuncs[name] {
			return "os." + name
		}
	case "net":
		return "net." + name
	case "net/http":
		if httpBlockingMethods[name] {
			return "http." + name
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "fmt":
		if name == "Fprint" || name == "Fprintf" || name == "Fprintln" {
			if len(call.Args) > 0 && writerMayBlock(pass, call.Args[0]) {
				return "fmt." + name + " to a writer that may block"
			}
		}
	}
	return ""
}

// writerMayBlock reports whether the static type of a writer argument can
// reach a file or socket: interfaces (io.Writer — the dynamic value is
// unknown) and os/net concrete types. In-memory sinks (bytes.Buffer,
// strings.Builder) cannot block.
func writerMayBlock(pass *Pass, w ast.Expr) bool {
	t := pass.TypeOf(w)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		pkg := ""
		if n.Obj().Pkg() != nil {
			pkg = n.Obj().Pkg().Path()
		}
		switch pkg {
		case "bytes", "strings":
			return false
		case "os", "net":
			return true
		}
		if _, isIface := n.Underlying().(*types.Interface); isIface {
			return true
		}
		return false
	}
	_, isIface := t.Underlying().(*types.Interface)
	return isIface
}

// funcSummary is the package-local may-block verdict for one declared
// function.
type funcSummary struct {
	decl   *ast.FuncDecl
	blocks bool
	why    string
}

// runLockedIO builds package-local summaries, then scans every function
// scope for blocking operations inside held lock regions.
func runLockedIO(pass *Pass) error {
	summaries := make(map[*types.Func]*funcSummary)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			summaries[obj] = &funcSummary{decl: fd}
		}
	}
	// Seed with direct blocking operations.
	for _, s := range summaries {
		body := s.decl.Body
		ast.Inspect(body, func(n ast.Node) bool {
			if s.blocks {
				return false
			}
			switch x := n.(type) {
			case *ast.CallExpr:
				if why := baseBlockingReason(pass, x); why != "" {
					s.blocks, s.why = true, why
				}
			case *ast.SendStmt:
				if !inSelectComm(body, x.Pos()) {
					s.blocks, s.why = true, "channel send"
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && !inSelectComm(body, x.Pos()) {
					s.blocks, s.why = true, "channel receive"
				}
			}
			return true
		})
	}
	// Propagate through package-local static calls to a fixed point.
	for changed := true; changed; {
		changed = false
		for _, s := range summaries {
			if s.blocks {
				continue
			}
			ast.Inspect(s.decl.Body, func(n ast.Node) bool {
				if s.blocks {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(pass.Info, call); callee != nil {
					if cs, ok := summaries[callee]; ok && cs.blocks {
						s.blocks = true
						s.why = callee.Name() + " → " + cs.why
						changed = true
					}
				}
				return true
			})
		}
	}
	// Scan lock regions in every function scope.
	eachFuncBody(pass.Files, func(name string, body *ast.BlockStmt) {
		scanLockRegions(pass, summaries, name, body)
	})
	return nil
}

// inSelectComm reports whether pos is the communication operation of a
// select clause — those are scheduled by select, and a select with a
// default case never blocks. (Approximation: any select comm is exempt.)
func inSelectComm(root ast.Node, pos token.Pos) bool {
	exempt := false
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if pos >= cc.Comm.Pos() && pos <= cc.Comm.End() {
				exempt = true
			}
		}
		return !exempt
	})
	return exempt
}

// lockEvent is one position-ordered observation inside a function scope.
type lockEvent struct {
	pos  token.Pos
	kind int // 0 lock, 1 unlock, 2 blocking op
	key  string
	why  string
}

// scanLockRegions performs the linear held-region scan over one scope.
func scanLockRegions(pass *Pass, summaries map[*types.Func]*funcSummary, scope string, body *ast.BlockStmt) {
	var events []lockEvent
	inspectShallow(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock keeps the region open to scope end; a
			// deferred blocking call runs at return, possibly before the
			// deferred unlock — record it as a blocking op where it is
			// deferred. Other deferred calls are scanned normally.
			if key, isUnlock, _ := mutexOp(pass, x.Call); isUnlock && key != "" {
				return false // do not record: region stays held
			}
			return true
		case *ast.CallExpr:
			if key, isUnlock, isLock := mutexOp(pass, x); key != "" {
				if isLock {
					events = append(events, lockEvent{pos: x.Pos(), kind: 0, key: key})
				} else if isUnlock {
					events = append(events, lockEvent{pos: x.Pos(), kind: 1, key: key})
				}
				return true
			}
			if why := baseBlockingReason(pass, x); why != "" {
				events = append(events, lockEvent{pos: x.Pos(), kind: 2, why: why})
				return true
			}
			if callee := calleeFunc(pass.Info, x); callee != nil {
				if s, ok := summaries[callee]; ok && s.blocks {
					events = append(events, lockEvent{pos: x.Pos(), kind: 2,
						why: callee.Name() + " → " + s.why})
				}
			}
		case *ast.SendStmt:
			if !inSelectComm(body, x.Pos()) {
				events = append(events, lockEvent{pos: x.Pos(), kind: 2, why: "channel send"})
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !inSelectComm(body, x.Pos()) {
				events = append(events, lockEvent{pos: x.Pos(), kind: 2, why: "channel receive"})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	held := map[string]int{}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.key]++
		case 1:
			if held[ev.key] > 0 {
				held[ev.key]--
			}
		case 2:
			for key, n := range held {
				if n > 0 {
					pass.Reportf(ev.pos, "blocking operation (%s) while %q is locked in %s; move the I/O outside the critical section",
						ev.why, key, scope)
					break
				}
			}
		}
	}
}

// mutexOp classifies a call as Lock/RLock or Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex receiver, returning the receiver expression
// text as the lock identity.
func mutexOp(pass *Pass, call *ast.CallExpr) (key string, isUnlock, isLock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false, false
	}
	recv := recvNamed(f)
	if recv == nil || !(namedIs(recv, "sync", "Mutex") || namedIs(recv, "sync", "RWMutex")) {
		return "", false, false
	}
	switch f.Name() {
	case "Lock", "RLock":
		return exprText(pass.Fset, sel.X), false, true
	case "Unlock", "RUnlock":
		return exprText(pass.Fset, sel.X), true, false
	}
	return "", false, false
}

// String renders the event kind for debugging.
func (e lockEvent) String() string {
	return fmt.Sprintf("%d@%d %s %s", e.kind, e.pos, e.key, e.why)
}
