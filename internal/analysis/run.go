package analysis

import (
	"go/token"
	"strconv"
)

// Suite returns the project analyzers in their canonical order. This list
// is the single source of truth for the analyzer inventory: the CLI's
// -list output, the directive checker's known-analyzer set, and the tests
// all derive from it.
func Suite() []*Analyzer {
	return []*Analyzer{
		Determinism,
		LockedIO,
		CtxFlow,
		MetricName,
		EventKey,
		HotPathAlloc,
		GoroutineLife,
		PairedRes,
		BoundedSpawn,
		AtomicMix,
	}
}

// Run executes the analyzers over the loaded packages and returns every
// finding in stable order. Directives are collected from all files first,
// so a suppression in one package covers findings reported while analyzing
// another (cross-package rules report at the registration site). After the
// analyzers finish, any directive that suppressed nothing is itself
// reported — stale suppressions must be deleted, not accumulated.
func Run(fset *token.FileSet, pkgs []*LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	shared := NewShared()
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		p := &Pass{Analyzer: &Analyzer{Name: "directive"}, Fset: fset, shared: nil}
		p.Reportf(pos, format, args...)
		diags = append(diags, p.diagnostics...)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			shared.CollectDirectives(fset, f, report)
		}
	}
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Path:     pkg.Path,
				shared:   shared,
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
			diags = append(diags, pass.diagnostics...)
		}
	}
	diags = append(diags, shared.unusedDirectives(analyzers)...)
	SortDiagnostics(diags)
	return diags, nil
}

// unusedDirectives reports suppressions that matched no finding of an
// analyzer that actually ran, and directives naming analyzers that do not
// exist at all — a typoed name would otherwise suppress nothing, silently.
// Directives for real analyzers outside the current run (-only) are left
// alone: this run cannot judge them.
func (s *Shared) unusedDirectives(ran []*Analyzer) []Diagnostic {
	names := make(map[string]bool, len(ran))
	for _, a := range ran {
		names[a.Name] = true
	}
	known := make(map[string]bool)
	for _, a := range Suite() {
		known[a.Name] = true
	}
	seen := make(map[*directive]bool)
	var out []Diagnostic
	for _, byLine := range s.ignores {
		for _, ds := range byLine {
			for _, d := range ds {
				if seen[d] {
					continue
				}
				seen[d] = true
				switch {
				case !known[d.analyzer]:
					out = append(out, Diagnostic{
						Pos:      d.pos,
						Analyzer: "directive",
						Message:  "unknown analyzer " + strconv.Quote(d.analyzer) + " in suppression directive (see hdltsvet -list)",
					})
				case d.used || !names[d.analyzer]:
				default:
					out = append(out, Diagnostic{
						Pos:      d.pos,
						Analyzer: "directive",
						Message:  "unused suppression for " + d.analyzer + ": no finding here — delete the directive",
					})
				}
			}
		}
	}
	return out
}
