package analysis

import (
	"go/ast"
	"go/types"
)

// schedulerPathSegments are the packages whose output must be bit-for-bit
// reproducible: the HDLTS core, the comparison heuristics, the scheduling
// substrate, the DAG layer, and the online simulator.
var schedulerPathSegments = []string{
	"internal/core",
	"internal/heuristics",
	"internal/sched",
	"internal/dag",
	"internal/dynamic",
}

// Determinism flags three sources of run-to-run divergence in scheduler
// packages:
//
//  1. `range` over a map that feeds order-sensitive output — appending to a
//     slice declared outside the loop, or writing/encoding directly — with
//     no sort of the collected result later in the same function. Map
//     iteration order is randomised per run; unsorted consumption changes
//     tie-breaking, encoders, and therefore schedules.
//  2. time.Now(): wall-clock reads make schedules depend on when they run.
//     The one sanctioned use is latency metrics — a time.Now() consumed
//     only by an ObserveSince call (directly, or via a variable used for
//     nothing else) is allowed because metric values never feed decisions.
//  3. The global math/rand source (rand.Intn, rand.Shuffle, ... as package
//     functions): unseeded and process-global. Randomised algorithms must
//     thread an explicit seeded *rand.Rand.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flags map-iteration order, wall-clock reads, and global math/rand " +
		"in scheduler packages (the Table I trace must be bit-for-bit reproducible)",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	inScope := false
	for _, seg := range schedulerPathSegments {
		if pathHas(pass.Path, seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRangeOrder(pass, fd.Body)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkWallClock(pass, f, call)
			checkGlobalRand(pass, call)
			return true
		})
	}
	return nil
}

// orderSensitiveWriters are method names that emit in call order; calling
// one inside a map-range body leaks iteration order into the output.
var orderSensitiveWriters = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Emit": true,
}

// checkMapRangeOrder inspects every map-range statement in body (one
// function scope) for order-sensitive sinks without a later sort.
func checkMapRangeOrder(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		// Sinks: slices appended to inside the loop but declared outside it.
		appended := map[*types.Var]bool{}
		directEmit := false
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || i >= len(s.Lhs) {
						continue
					}
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
						continue
					}
					v := rootVar(pass.Info, s.Lhs[i])
					if v != nil && !(v.Pos() >= rng.Pos() && v.Pos() <= rng.End()) {
						appended[v] = true
					}
				}
			case *ast.CallExpr:
				if f := calleeFunc(pass.Info, s); f != nil && orderSensitiveWriters[f.Name()] {
					directEmit = true
				} else if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok && orderSensitiveWriters[sel.Sel.Name] {
					directEmit = true
				}
			}
			return true
		})
		if directEmit {
			pass.Reportf(rng.Pos(), "map iteration feeds an order-sensitive writer; iterate sorted keys instead (map order is randomised per run)")
			return true
		}
		for v := range appended {
			if !sortedAfter(pass, body, rng, v) {
				pass.Reportf(rng.Pos(), "map iteration appends to %q without a later sort; map order is randomised per run", v.Name())
			}
		}
		return true
	})
}

// rootVar resolves the base variable of an lvalue like x, x[i], x[i:j],
// or x.f.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.ObjectOf(x).(*types.Var)
			return v
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether v is passed to a sort.* or slices.Sort*
// call positioned after the range statement within the same function body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil {
			return true
		}
		pkg := funcPkgPath(f)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.ObjectOf(id) == v {
					used = true
				}
				return !used
			})
			if used {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkWallClock flags time.Now() except the metrics-timing idiom.
func checkWallClock(pass *Pass, file *ast.File, call *ast.CallExpr) {
	f := calleeFunc(pass.Info, call)
	if f == nil || f.Name() != "Now" || funcPkgPath(f) != "time" {
		return
	}
	if observeSinceArg(pass, file, call) {
		return
	}
	pass.Reportf(call.Pos(), "time.Now() in a scheduler package: schedules must not depend on the wall clock (metrics timing via ObserveSince is exempt)")
}

// observeSinceArg reports whether the time.Now() call is consumed only by
// latency-metric recording: it is the argument of an ObserveSince call, or
// it initialises a variable whose every use is an ObserveSince argument.
func observeSinceArg(pass *Pass, file *ast.File, now *ast.CallExpr) bool {
	// Direct: xxx.ObserveSince(time.Now()).
	direct := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "ObserveSince" {
			for _, a := range call.Args {
				if ast.Unparen(a) == now {
					direct = true
				}
			}
		}
		return !direct
	})
	if direct {
		return true
	}
	// Via a dedicated variable: start := time.Now(); ... ObserveSince(start).
	var v *types.Var
	ast.Inspect(file, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != len(asg.Lhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			if ast.Unparen(rhs) == now {
				if id, ok := asg.Lhs[i].(*ast.Ident); ok {
					v, _ = pass.ObjectOf(id).(*types.Var)
				}
			}
		}
		return v == nil
	})
	if v == nil {
		return false
	}
	ok := true
	ast.Inspect(file, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || pass.Info.Uses[id] != v {
			return true
		}
		if !usedAsObserveSinceArg(file, id) {
			ok = false
		}
		return ok
	})
	return ok
}

// usedAsObserveSinceArg reports whether the identifier use site is an
// argument of an ObserveSince call.
func usedAsObserveSinceArg(file *ast.File, id *ast.Ident) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "ObserveSince" {
			return true
		}
		for _, a := range call.Args {
			if ast.Unparen(a) == id {
				found = true
			}
		}
		return !found
	})
	return found
}

// seededRandConstructors are the math/rand package functions that build an
// explicitly seeded generator — the sanctioned way to randomise.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

// checkGlobalRand flags package-level math/rand functions (the process-
// global, unseeded source). Methods on an explicit *rand.Rand pass.
func checkGlobalRand(pass *Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Only package-qualified calls: the selector base must be the package
	// name itself, not a *rand.Rand value.
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	if _, isPkg := pass.Info.Uses[base].(*types.PkgName); !isPkg {
		return
	}
	f, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	pkg := funcPkgPath(f)
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return
	}
	if seededRandConstructors[f.Name()] {
		return
	}
	pass.Reportf(call.Pos(), "global math/rand source (%s.%s) in a scheduler package: thread an explicitly seeded *rand.Rand instead", base.Name, f.Name())
}
