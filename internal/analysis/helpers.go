package analysis

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// pathHas reports whether the import path contains segment on package-path
// boundaries — "internal/obs" matches "hdlts/internal/obs" and the fixture
// path "eventkey/internal/obs", but not "internal/observer".
func pathHas(path, segment string) bool {
	return strings.Contains("/"+path+"/", "/"+segment+"/")
}

// calleeFunc resolves the function or method a call statically invokes,
// or nil for calls through function values and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// funcPkgPath returns the import path of the package declaring f, or "".
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// recvNamed returns the named type of f's receiver, unwrapping pointers,
// or nil for package-level functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// namedIs reports whether n is the named type pkgPathSegment.name, where
// the declaring package path is matched with pathHas (or exact equality
// for stdlib paths without a slash, e.g. "os").
func namedIs(n *types.Named, pkgPath, name string) bool {
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	declared := n.Obj().Pkg().Path()
	return declared == pkgPath || pathHas(declared, pkgPath)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return namedIs(n, "context", "Context")
}

// hasContextParam returns the *types.Var of the first context.Context
// parameter of the function signature, or nil.
func contextParam(sig *types.Signature) *types.Var {
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if isContextType(p.Type()) {
			return p
		}
	}
	return nil
}

// exprText renders an expression as source text — the identity key for
// lock receivers ("m.mu", "s.wmu").
func exprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// namedConst resolves e to a declared named constant (identifier or
// selector), or nil when e is anything else — including untyped literals.
func namedConst(info *types.Info, e ast.Expr) *types.Const {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, _ := info.Uses[x].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := info.Uses[x.Sel].(*types.Const)
		return c
	}
	return nil
}

// constString returns the string value of a constant expression, if e is
// one.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// eachFuncBody visits every function and method body in the files,
// including the bodies of function literals, handing each to visit as an
// independent scope together with a printable name.
func eachFuncBody(files []*ast.File, visit func(name string, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					visit(d.Name.Name, d.Body)
				}
			case *ast.FuncLit:
				visit("func literal", d.Body)
			}
			return true
		})
	}
}

// inspectShallow walks n but does not descend into nested function
// literals — each literal is its own scope for lock analysis.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}
