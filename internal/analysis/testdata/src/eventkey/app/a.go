// Package app starts spans with canonical and ad-hoc attribute keys.
package app

import (
	"context"

	"eventkey/internal/obs"
)

func spans(ctx context.Context) {
	ctx, sp := obs.StartSpan(ctx, "schedule.run", obs.KeyAlg, "hdlts")
	sp.SetAttr(obs.KeyTask, "t3")

	_, sp2 := obs.StartSpan(ctx, "job.run", "alg", "heft") // want `span attribute key must be a canonical Key\* constant from internal/obs, not "alg"`
	sp2.SetAttr("task", "t4")                              // want `span attribute key must be a canonical Key\* constant from internal/obs, not "task"`
}

// forward re-emits attrs it received: exempt, the origin was checked.
func forward(ctx context.Context, attrs ...string) {
	obs.StartSpan(ctx, "forwarded", attrs...)
}
