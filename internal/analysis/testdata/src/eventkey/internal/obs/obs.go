// Package obs mirrors the real tracing surface: the canonical key set,
// a Span with SetAttr, the StartSpan constructor, and wire structs whose
// json tags must stay inside the canonical set.
package obs

import "context"

// Canonical attribute keys and wire-field names.
const (
	KeyAlg    = "alg"
	KeyTask   = "task"
	WireEvent = "ev"
	WireSeq   = "seq"
)

// Span is the fixture span.
type Span struct{}

// SetAttr records one attribute.
func (s *Span) SetAttr(k, v string) {}

// StartSpan opens a span with alternating key/value attributes.
func StartSpan(ctx context.Context, name string, attrs ...string) (context.Context, *Span) {
	return ctx, &Span{}
}

// lineEvent is a wire struct: tags must come from the canonical set.
type lineEvent struct {
	Seq   int    `json:"seq"`
	Event string `json:"ev"`
	Alg   string `json:"alg"`
	Extra string `json:"surprise"` // want `wire field "surprise" is not in the canonical Key\*/Wire\* constant set`
	Skip  string `json:"-"`
	Plain int
}
