// Package obs is the atomicmix fixture: one synchronization discipline
// per memory location.
package obs

import (
	"sync"
	"sync/atomic"
)

// counter holds a typed atomic: methods only, never copies.
type counter struct {
	n atomic.Int64
}

func bump(c *counter) {
	c.n.Add(1) // method receiver: clean
}

func read(c *counter) int64 {
	return c.n.Load() // clean
}

func steal(c *counter) atomic.Int64 {
	return c.n // want `atomic value of type sync/atomic\.Int64 is copied or reassigned`
}

func alias(c *counter) {
	v := c.n // want `atomic value of type sync/atomic\.Int64 is copied or reassigned`
	_ = v.Load()
}

// legacy uses sync/atomic functions on a plain field.
type legacy struct {
	hits int64
}

func (l *legacy) incr() {
	atomic.AddInt64(&l.hits, 1) // sanctioned atomic access: clean
}

func (l *legacy) peek() int64 {
	return l.hits // want `field hits is accessed via sync/atomic elsewhere in this package; this plain read races`
}

// newLegacy is the constructor: plain initialization is allowed there.
func newLegacy() *legacy {
	l := &legacy{}
	l.hits = 0
	return l
}

// store infers mutex guarding from majority-locked access.
type store struct {
	mu   sync.Mutex
	recs map[string]int
	hits int
}

func (s *store) put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs[k] = v
	s.hits++
}

func (s *store) get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recs[k]
}

func (s *store) size() int {
	return len(s.recs) // want `field store\.recs is mutex-guarded`
}

// flush locks, then delegates to persist — whose every call site holds the
// lock, so its plain accesses are caller-held: clean.
func (s *store) flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persist()
}

func (s *store) persist() {
	s.hits = 0
}

// newStore builds the struct: constructor writes are exempt, including the
// helper only it calls.
func newStore() *store {
	s := &store{}
	initStore(s)
	s.hits = 0
	return s
}

func initStore(s *store) {
	s.recs = make(map[string]int)
}
