// Package pkg is the lockedio fixture: blocking operations inside and
// outside mutex critical sections.
package pkg

import (
	"encoding/json"
	"io"
	"os"
	"sync"
)

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	f  *os.File
	ch chan int
	n  int
}

// syncUnderLock fsyncs inside the critical section.
func (s *store) syncUnderLock() {
	s.mu.Lock()
	s.f.Sync() // want `blocking operation \(\(\*os.File\).Sync\) while "s.mu" is locked`
	s.mu.Unlock()
}

// syncAfterUnlock moves the fsync out: clean.
func (s *store) syncAfterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.f.Sync()
}

// writeUnderDeferredUnlock holds to function end via defer.
func (s *store) writeUnderDeferredUnlock(b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.f.Write(b) // want `blocking operation \(\(\*os.File\).Write\) while "s.mu" is locked`
}

// flushDisk is a package-local helper that blocks.
func (s *store) flushDisk() {
	s.f.Sync()
}

// indirectBlock reaches the fsync through one call level.
func (s *store) indirectBlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushDisk() // want `blocking operation \(flushDisk → \(\*os.File\).Sync\) while "s.mu" is locked`
}

// sendUnderLock performs a bare channel send in the critical section.
func (s *store) sendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `blocking operation \(channel send\) while "s.mu" is locked`
}

// guardedSend uses select/default: never blocks, clean.
func (s *store) guardedSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
	default:
	}
}

// encodeUnderRLock renders to an interface writer under the read lock.
func (s *store) encodeUnderRLock(w io.Writer) error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return json.NewEncoder(w).Encode(s.n) // want `blocking operation \(\(\*json.Encoder\).Encode`
}

// closureEscapes builds a closure under the lock but does not run it
// there: the literal is an independent scope, clean.
func (s *store) closureEscapes() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return func() {
		s.f.Sync()
	}
}
