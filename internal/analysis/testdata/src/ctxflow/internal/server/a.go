// Package server is the ctxflow fixture: its import path ends in
// internal/server, so it is a request path.
package server

import (
	"context"
	"time"
)

func use(ctx context.Context) {}

// freshRootWithCtx shadows its incoming ctx with a new root.
func freshRootWithCtx(ctx context.Context) {
	ctx2 := context.Background() // want `context.Background\(\) in freshRootWithCtx, which already receives a ctx`
	use(ctx2)
}

// freshRootNoCtx starts a root on a request path without receiving one.
func freshRootNoCtx() {
	ctx := context.TODO() // want `context.TODO\(\) starts a fresh root on a request/job path`
	use(ctx)
}

// threads derives before passing on: clean.
func threads(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	use(ctx)
}

// valueChain derives through WithValue into a second variable: clean.
func valueChain(ctx context.Context) {
	traced := context.WithValue(ctx, key{}, "id")
	use(traced)
}

type key struct{}

// unrelated passes a context that is not derived from the parameter.
func unrelated(ctx context.Context, stash context.Context) {
	use(stash) // want `unrelated receives ctx but passes unrelated context "stash"`
	use(ctx)
}

// closureThreads hands its ctx to a handler literal, which threads its
// own parameter: clean.
func closureThreads(ctx context.Context) {
	h := func(ctx context.Context) {
		use(ctx)
	}
	h(ctx)
}
