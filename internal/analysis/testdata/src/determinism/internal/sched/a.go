// Package sched is a determinism fixture: its import path ends in
// internal/sched, so the analyzer treats it as a scheduler package.
package sched

import (
	"bytes"
	"math/rand"
	"sort"
	"time"
)

type histo struct{}

func (histo) ObserveSince(t time.Time) {}

// mapAppendUnsorted leaks map order into the returned slice.
func mapAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration appends to "keys" without a later sort`
		keys = append(keys, k)
	}
	return keys
}

// mapAppendSorted collects then sorts: the sanctioned idiom.
func mapAppendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// mapDirectEmit writes inside the loop: order-sensitive sink.
func mapDirectEmit(m map[string]int, buf *bytes.Buffer) {
	for k := range m { // want `map iteration feeds an order-sensitive writer`
		buf.WriteString(k)
	}
}

// localAppend appends to a slice declared inside the loop body: each
// iteration starts fresh, so no cross-iteration order leaks.
func localAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// wallClock reads the clock into scheduling state.
func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now\(\) in a scheduler package`
}

// latencyTiming is the sanctioned metrics idiom: the time.Now result is
// consumed only by ObserveSince.
func latencyTiming(h histo) {
	start := time.Now()
	work()
	h.ObserveSince(start)
}

// directObserve passes time.Now straight to ObserveSince.
func directObserve(h histo) {
	h.ObserveSince(time.Now())
}

func work() {}

// globalRand uses the process-global unseeded source.
func globalRand(n int) int {
	return rand.Intn(n) // want `global math/rand source \(rand.Intn\)`
}

// seededRand threads an explicit generator: allowed.
func seededRand(n int) int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(n)
}
