// Package tools is outside the scheduler path set: the same constructs
// that are findings in internal/sched are fine here.
package tools

import "time"

func Stamp() int64 {
	return time.Now().UnixNano()
}

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
