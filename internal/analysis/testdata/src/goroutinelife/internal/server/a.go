// Package server is the goroutinelife fixture: every go statement needs a
// visible termination path or a documented directive.
package server

import (
	"context"
	"sync"
	"time"
)

func work() {}

// leakyLoop spawns a forever loop nothing can stop.
func leakyLoop() {
	go func() { // want `goroutine has no visible termination path`
		for {
			work()
		}
	}()
}

// spin runs forever with no exit evidence.
func spin() {
	for {
		work()
	}
}

// leakyCall spawns a same-package function that never terminates.
func leakyCall() {
	go spin() // want `goroutine has no visible termination path`
}

// leakyForeign spawns straight into another package: the lifecycle is
// invisible, so it must be wrapped or documented.
func leakyForeign() {
	go time.Sleep(time.Second) // want `goroutine has no visible termination path`
}

// ctxBound selects on ctx.Done: clean.
func ctxBound(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// pool owns its workers through a quit channel and a WaitGroup.
type pool struct {
	queue chan int
	stop  chan struct{}
	wg    sync.WaitGroup
}

// start spawns a worker that ranges over a channel close retires, and a
// watcher that receives from the stop channel: both clean.
func (p *pool) start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for range p.queue {
			work()
		}
	}()
	go p.watch()
}

// watch receives from the stop channel the pool closes in close().
func (p *pool) watch() {
	for {
		select {
		case <-p.stop:
			return
		}
	}
}

func (p *pool) close() {
	close(p.queue)
	close(p.stop)
	p.wg.Wait()
}

// joined is a WaitGroup-owned helper: clean via one-level expansion.
func (p *pool) drainOne() {
	defer p.wg.Done()
	work()
}

func (p *pool) spawnJoined() {
	p.wg.Add(1)
	go func() {
		p.drainOne()
	}()
}

// handshake signals a completion channel the launcher receives: clean.
func handshake() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// handshakeSend sends the result back to the launcher: clean.
func handshakeSend() int {
	res := make(chan int, 1)
	go func() {
		res <- 42
	}()
	return <-res
}

// selfServing receives from its own channel inside the goroutine only —
// the launcher never waits, so the handshake proves nothing.
func selfServing() {
	done := make(chan struct{})
	go func() { // want `goroutine has no visible termination path`
		work()
		done <- struct{}{}
	}()
	_ = done
}

// documented carries the required directive for a true fire-and-forget.
func documented() {
	//lint:hdltsvet-ignore goroutinelife process-persistent by design, dies with the process
	go func() {
		for {
			work()
		}
	}()
}
