// Package obs is the pairedres fixture's stand-in for the real
// observability package: the acquire/release protocols match by name and
// package-path suffix.
package obs

import "context"

type StreamFilter struct{}

type Subscription struct{ ch chan int }

func (s *Subscription) Close()          {}
func (s *Subscription) C() <-chan int   { return s.ch }
func (s *Subscription) Dropped() uint64 { return 0 }

type Hub struct{}

func (h *Hub) Subscribe(f StreamFilter, buf int) *Subscription { return &Subscription{} }

type Span struct{}

func (s *Span) Finish()      {}
func (s *Span) Name() string { return "" }

func StartSpan(ctx context.Context, name string, attrs ...string) (context.Context, *Span) {
	return ctx, &Span{}
}
