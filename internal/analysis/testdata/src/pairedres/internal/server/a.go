// Package server is the pairedres fixture: acquired resources must be
// released on every exit, escape visibly, or live on a struct whose
// teardown releases them.
package server

import (
	"context"
	"net"
	"os"
	"sync"
	"time"

	"pairedres/internal/obs"
)

func use(v any) {}

// leakSub never releases the subscription.
func leakSub(h *obs.Hub) {
	sub := h.Subscribe(obs.StreamFilter{}, 8) // want `Hub.Subscribe is never released`
	use(sub.C())
}

// deferSub releases via defer: clean.
func deferSub(h *obs.Hub) {
	sub := h.Subscribe(obs.StreamFilter{}, 8)
	defer sub.Close()
	use(sub.C())
}

// earlySub releases at the end but returns early without releasing.
func earlySub(h *obs.Hub, cond bool) {
	sub := h.Subscribe(obs.StreamFilter{}, 8) // want `Hub.Subscribe may not be released before the return at line \d+`
	if cond {
		return
	}
	sub.Close()
}

// discardSub throws the subscription away outright.
func discardSub(h *obs.Hub) {
	h.Subscribe(obs.StreamFilter{}, 8) // want `result of Hub.Subscribe is discarded`
}

// returnSub hands ownership to the caller: clean.
func returnSub(h *obs.Hub) *obs.Subscription {
	return h.Subscribe(obs.StreamFilter{}, 8)
}

// leakSpan starts a span and never finishes it.
func leakSpan(ctx context.Context) {
	ctx2, span := obs.StartSpan(ctx, "solve") // want `obs.StartSpan is never released`
	use(ctx2)
	use(span.Name())
}

// finishSpan is the canonical shape: clean.
func finishSpan(ctx context.Context) {
	ctx2, span := obs.StartSpan(ctx, "solve")
	defer span.Finish()
	use(ctx2)
}

// discardSpan drops the span result.
func discardSpan(ctx context.Context) {
	ctx2, _ := obs.StartSpan(ctx, "solve") // want `result of obs.StartSpan is discarded`
	use(ctx2)
}

// plainFinish releases on the only path: clean.
func plainFinish(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "solve")
	use(ctx)
	span.Finish()
}

// leakTicker never stops the ticker.
func leakTicker() {
	t := time.NewTicker(time.Second) // want `time.NewTicker is never released`
	use(<-t.C)
}

// stopTicker defers Stop: clean.
func stopTicker() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	use(<-t.C)
}

// poller stores the ticker on a struct whose Stop stops it: clean.
type poller struct {
	t *time.Ticker
}

func (p *poller) start(d time.Duration) {
	p.t = time.NewTicker(d)
}

func (p *poller) Stop() {
	p.t.Stop()
}

// leaky stores the ticker on a struct with no releasing teardown.
type leaky struct {
	t *time.Ticker
}

func (l *leaky) start(d time.Duration) {
	l.t = time.NewTicker(d) // want `time.NewTicker stored in field t, but no Close/Stop/Shutdown method releases it`
}

// fileErrGuard is the canonical open: err-guarded return, deferred Close.
func fileErrGuard(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	use(f.Name())
	return nil
}

// fileLeak opens and forgets.
func fileLeak(path string) error {
	f, err := os.Open(path) // want `os file open is never released`
	if err != nil {
		return err
	}
	use(f.Name())
	return nil
}

// listenEscape hands the listener to a server: clean.
func listenEscape(serve func(net.Listener) error) error {
	ln, err := net.Listen("tcp", ":0")
	if err != nil {
		return err
	}
	return serve(ln)
}

// listenLeak keeps the listener and loses it.
func listenLeak() {
	ln, err := net.Listen("tcp", ":0") // want `net.Listen is never released`
	if err != nil {
		return
	}
	use(ln.Addr())
}

// arena exercises the sync.Pool protocol, wrapper release included.
type arena struct{ buf []byte }

var arenaPool = sync.Pool{New: func() any { return &arena{} }}

func (a *arena) recycle() {
	arenaPool.Put(a)
}

// poolDirect puts the arena back directly: clean.
func poolDirect() {
	a := arenaPool.Get().(*arena)
	defer arenaPool.Put(a)
	use(a.buf)
}

// poolWrapped releases through the recycle wrapper: clean.
func poolWrapped() {
	a := arenaPool.Get().(*arena)
	defer a.recycle()
	use(a.buf)
}

// poolLeak takes from the pool and never returns the arena.
func poolLeak() {
	a := arenaPool.Get().(*arena) // want `sync.Pool.Get is never released`
	use(a.buf)
}
