// Package exec is the boundedspawn fixture: per-item goroutine creation
// in the request/job/step packages must be bounded by a pool or semaphore.
package exec

import "sync"

func work(v int) {}

// perItem spawns one goroutine per element of user-provided input.
func perItem(jobs []int) {
	for _, j := range jobs {
		go work(j) // want `unbounded goroutine per loop iteration`
	}
}

// forever spawns inside an infinite accept-style loop.
func forever(next func() int) {
	for {
		j := next()
		go work(j) // want `unbounded goroutine per loop iteration`
	}
}

// lenBound counts to len(): still data-sized.
func lenBound(jobs []int) {
	for i := 0; i < len(jobs); i++ {
		go work(jobs[i]) // want `unbounded goroutine per loop iteration`
	}
}

// poolConstruction is a plain counter loop over a config knob: exempt.
func poolConstruction(workers int, queue chan int) {
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range queue {
				work(j)
			}
		}()
	}
}

// semGated acquires a semaphore slot before each spawn: exempt.
func semGated(jobs []int, sem chan struct{}) {
	for _, j := range jobs {
		sem <- struct{}{}
		go func(j int) {
			defer func() { <-sem }()
			work(j)
		}(j)
	}
}

// launch spawns once — but dispatch calls it per item, making the spawn
// per-item one level removed.
func launch(j int) {
	go work(j) // want `goroutine spawned per item of a loop in dispatch`
}

func dispatch(jobs []int) {
	for _, j := range jobs {
		launch(j)
	}
}

// gatedLaunch takes a semaphore slot before spawning: exempt even when
// called per item.
func gatedLaunch(j int, sem chan struct{}) {
	sem <- struct{}{}
	go func() {
		defer func() { <-sem }()
		work(j)
	}()
}

func gatedDispatch(jobs []int, sem chan struct{}) {
	for _, j := range jobs {
		gatedLaunch(j, sem)
	}
}

// single spawns outside any loop: not per-item, exempt here (goroutinelife
// owns the termination question).
func single(j int) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work(j)
	}()
	<-done
}
