// Package obs mirrors the real registry surface so the fixture's
// registration calls resolve to a Registry named type under an
// internal/obs import path.
package obs

// Registry is the fixture stand-in for the metrics registry.
type Registry struct{}

// Counter registers or fetches a counter series.
func (r *Registry) Counter(name string) int { return 0 }

// Gauge registers or fetches a gauge series.
func (r *Registry) Gauge(name string) int { return 0 }

// Histogram registers or fetches a histogram series.
func (r *Registry) Histogram(name string, buckets ...float64) int { return 0 }
