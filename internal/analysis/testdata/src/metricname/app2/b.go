// Package app2 re-registers a series that metricname/app already owns.
package app2

import "metricname/internal/obs"

const metricRequests = "hdltsd_requests_total"

func register(r *obs.Registry) {
	r.Counter(metricRequests) // want `metric "hdltsd_requests_total" is already registered by metricname/app`
}
