// Package app registers metrics the sanctioned way and three wrong ways.
package app

import "metricname/internal/obs"

const (
	metricRequests = "hdltsd_requests_total"
	metricDepth    = "hdlts_queue_depth"
	metricBadShape = "Queue-Depth"
)

var prefix = "hdltsd_"

func register(r *obs.Registry) {
	r.Counter(metricRequests)
	r.Gauge(metricDepth)
	r.Counter(metricRequests)        // same package re-registers: allowed
	r.Counter("hdltsd_inline_total") // want `metric name "hdltsd_inline_total" must be a named constant`
	r.Gauge(metricBadShape)          // want `metric name "Queue-Depth" does not match`
	r.Histogram(prefix + "latency")  // want `metric name must be a named constant, not a computed expression`
}
