// Package server exercises the suppression directive machinery: a
// documented directive silences a finding, an undocumented one is itself a
// finding, and a stale one is flagged for deletion.
package server

import "context"

func use(ctx context.Context) {}

// daemonRoot is a process-lifetime root: the documented directive
// suppresses the ctxflow finding.
func daemonRoot() {
	//lint:hdltsvet-ignore ctxflow process-lifetime root created once at daemon start
	ctx := context.Background()
	use(ctx)
}

// undocumented omits the reason: malformed, reported at the directive, and
// the finding below is NOT suppressed.
func undocumented() {
	//lint:hdltsvet-ignore ctxflow
	// want-above `malformed //lint:hdltsvet-ignore directive`
	ctx := context.Background() // want `context.Background\(\) starts a fresh root`
	use(ctx)
}

// stale suppresses nothing on its lines: the unused directive is reported.
func stale() {
	//lint:hdltsvet-ignore ctxflow there is no finding on the next line
	// want-above `unused suppression for ctxflow`
	use(context.TODO()) // want `context.TODO\(\) starts a fresh root`
}
