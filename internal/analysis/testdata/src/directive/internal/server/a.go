// Package server exercises the suppression directive machinery: a
// documented directive silences a finding, an undocumented one is itself a
// finding, and a stale one is flagged for deletion.
package server

import "context"

func use(ctx context.Context) {}

// daemonRoot is a process-lifetime root: the documented directive
// suppresses the ctxflow finding.
func daemonRoot() {
	//lint:hdltsvet-ignore ctxflow process-lifetime root created once at daemon start
	ctx := context.Background()
	use(ctx)
}

// undocumented omits the reason: malformed, reported at the directive, and
// the finding below is NOT suppressed.
func undocumented() {
	//lint:hdltsvet-ignore ctxflow
	// want-above `malformed //lint:hdltsvet-ignore directive`
	ctx := context.Background() // want `context.Background\(\) starts a fresh root`
	use(ctx)
}

// stale suppresses nothing on its lines: the unused directive is reported.
func stale() {
	//lint:hdltsvet-ignore ctxflow there is no finding on the next line
	// want-above `unused suppression for ctxflow`
	use(context.TODO()) // want `context.TODO\(\) starts a fresh root`
}

// bare has nothing after the prefix: malformed, and the finding below is
// NOT suppressed.
func bare() {
	//lint:hdltsvet-ignore
	// want-above `malformed //lint:hdltsvet-ignore directive`
	ctx := context.Background() // want `context.Background\(\) starts a fresh root`
	use(ctx)
}

// unknownName misspells the analyzer: the typo is reported instead of
// silently suppressing nothing, and the finding below is NOT suppressed.
func unknownName() {
	//lint:hdltsvet-ignore ctxflwo the analyzer name is misspelled
	// want-above `unknown analyzer "ctxflwo" in suppression directive`
	ctx := context.Background() // want `context.Background\(\) starts a fresh root`
	use(ctx)
}

// wrongLine places the directive two lines above the offending statement:
// out of range, so the finding is reported and the directive is unused.
func wrongLine() {
	//lint:hdltsvet-ignore ctxflow placed too far above the finding
	// want-above `unused suppression for ctxflow`
	_ = 0
	ctx := context.Background() // want `context.Background\(\) starts a fresh root`
	use(ctx)
}
