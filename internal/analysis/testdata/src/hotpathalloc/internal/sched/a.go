// Package sched is a hotpathalloc fixture: the loops of //hdlts:hotpath
// functions must stay allocation-free.
package sched

import "fmt"

// sink takes an interface: calling it with a concrete value boxes.
func sink(v any) int { _ = v; return 0 }

// sum is a monomorphic callee: no boxing.
func sum(a, b int) int { return a + b }

// hotLoops is marked: allocating constructs inside its loops are findings,
// constructs at function level and in error exits are not.
//
//hdlts:hotpath
func hotLoops(xs []int) ([]int, error) {
	out := make([]int, 0, len(xs)) // function-level make: fine
	total := 0
	for _, x := range xs {
		if x < 0 {
			return nil, fmt.Errorf("negative %d", x) // exit path: boxing exempt
		}
		buf := make([]int, 1)        // want `make allocates every loop iteration`
		p := new(int)                // want `new allocates every loop iteration`
		m := map[int]int{x: x}       // want `map literal allocates every loop iteration`
		lit := []int{x}              // want `slice literal allocates every loop iteration`
		f := func() int { return x } // want `function literal in a hot-path loop`
		total += buf[0] + *p + m[x] + lit[0] + f()
		total += sink(x) // want `boxes int into interface`
		total += sum(x, x)
		out = append(out, x) // append to a make-rooted local: fine
	}
	_ = total
	return out, nil
}

// hotAppend grows a slice it never preallocated.
//
//hdlts:hotpath
func hotAppend(xs []int) []int {
	var grown []int
	for _, x := range xs {
		grown = append(grown, x) // want `append grows grown inside a hot-path loop`
	}
	return grown
}

// hotParam may grow the caller's slice: capacity is the caller's decision.
//
//hdlts:hotpath
func hotParam(dst []int, xs []int) []int {
	for _, x := range xs {
		dst = append(dst, x) // parameter root: fine
	}
	return dst
}

// hotEarlyOut nests a loop inside a terminating if-block: the loop is
// still hot — the innermost enclosing range decides.
//
//hdlts:hotpath
func hotEarlyOut(xs []int) []int {
	if len(xs) > 0 {
		var one []int
		for _, x := range xs {
			one = append(one, x) // want `append grows one inside a hot-path loop`
		}
		return one
	}
	return nil
}

// hotSliceRoot reslices through a slice expression: the root variable is
// a make-originated local, so compaction in place is fine.
//
//hdlts:hotpath
func hotSliceRoot(xs []int) []int {
	keep := make([]int, 0, len(xs))
	keep = append(keep, xs...)
	for i := range xs {
		keep = append(keep[:0], keep[min(i, len(keep)):]...)
	}
	return keep
}

// cold has the same constructs but no marker: no findings.
func cold(xs []int) []int {
	var grown []int
	for _, x := range xs {
		buf := make([]int, 1)
		grown = append(grown, buf[0]+x+sink(x))
	}
	return grown
}

var _ = cold
