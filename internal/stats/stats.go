// Package stats provides the small set of statistics used across the
// reproduction: means, sample standard deviations (the paper's penalty value
// uses the n−1 denominator — verified against Table I), extrema, and
// streaming aggregation for experiment averaging.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SampleStdDev returns the sample standard deviation of xs (denominator
// n−1). It returns 0 when len(xs) < 2. This is the σ of Eq. (8): the
// paper's Table I penalty values reproduce only with the n−1 form. It is
// called once per ready task per HDLTS iteration.
//
//hdlts:hotpath
func SampleStdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// SampleStdDev2 computes SampleStdDev over two equal-length rows at once,
// bit-identical to calling it on each: every row keeps its own
// left-to-right accumulation order, but the two independent dependency
// chains interleave, roughly doubling throughput on the serial FP-add
// latency that bounds the single-row form. The HDLTS indexed core batches
// its per-iteration σ recomputations in pairs through this.
//
//hdlts:hotpath
func SampleStdDev2(a, b []float64) (float64, float64) {
	n := len(a)
	if n < 2 || len(b) != n {
		return SampleStdDev(a), SampleStdDev(b)
	}
	b = b[:n]
	sa, sb := 0.0, 0.0
	for i := 0; i < n; i++ {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/float64(n), sb/float64(n)
	qa, qb := 0.0, 0.0
	for i := 0; i < n; i++ {
		da := a[i] - ma
		qa += da * da
		db := b[i] - mb
		qb += db * db
	}
	inv := float64(n - 1)
	return math.Sqrt(qa / inv), math.Sqrt(qb / inv)
}

// PopStdDev2 is SampleStdDev2 for the population form (denominator n).
//
//hdlts:hotpath
func PopStdDev2(a, b []float64) (float64, float64) {
	n := len(a)
	if n < 2 || len(b) != n {
		return PopStdDev(a), PopStdDev(b)
	}
	b = b[:n]
	sa, sb := 0.0, 0.0
	for i := 0; i < n; i++ {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/float64(n), sb/float64(n)
	qa, qb := 0.0, 0.0
	for i := 0; i < n; i++ {
		da := a[i] - ma
		qa += da * da
		db := b[i] - mb
		qb += db * db
	}
	inv := float64(n)
	return math.Sqrt(qa / inv), math.Sqrt(qb / inv)
}

// PopStdDev returns the population standard deviation (denominator n); kept
// for the σ-definition ablation bench.
//
//hdlts:hotpath
func PopStdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the minimum of xs; +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (average of the two central values for
// even lengths), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Running accumulates a stream of observations with O(1) memory using
// Welford's algorithm, giving numerically stable means and variances for
// the long experiment sweeps (up to 125K graphs × repetitions).
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Merge folds another accumulator into r (parallel reduction).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	mean := r.mean + d*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	min, max := r.min, r.max
	if o.min < min {
		min = o.min
	}
	if o.max > max {
		max = o.max
	}
	*r = Running{n: n, mean: mean, m2: m2, min: min, max: max}
}

// N returns the number of observations folded in so far.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// SampleStdDev returns the running sample standard deviation (0 when n < 2).
func (r *Running) SampleStdDev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n-1))
}

// Min returns the smallest observation (0 when empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest observation (0 when empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return 0
	}
	return r.max
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean (0 when n < 2).
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return 0
	}
	return 1.96 * r.SampleStdDev() / math.Sqrt(float64(r.n))
}

// String summarises the accumulator.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", r.n, r.Mean(), r.SampleStdDev(), r.Min(), r.Max())
}
