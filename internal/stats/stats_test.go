package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !almost(Mean([]float64{14, 16, 9}), 13) {
		t.Errorf("Mean = %g, want 13", Mean([]float64{14, 16, 9}))
	}
}

func TestSampleStdDevMatchesTableI(t *testing.T) {
	// EFT vectors from the paper's Table I and their published PVs (1 d.p.).
	cases := []struct {
		eft []float64
		pv  float64
	}{
		{[]float64{27, 35, 27}, 4.6},
		{[]float64{25, 29, 28}, 2.1}, // paper prints 2.0; exact σ is 2.08
		{[]float64{27, 24, 26}, 1.5},
		{[]float64{26, 29, 19}, 5.1},
		{[]float64{27, 32, 18}, 7.1}, // paper prints 7.0; exact σ is 7.09
		{[]float64{32, 63, 59}, 16.9},
		{[]float64{98, 73, 93}, 13.2},
	}
	for _, c := range cases {
		got := SampleStdDev(c.eft)
		if math.Abs(got-c.pv) > 0.06 {
			t.Errorf("SampleStdDev(%v) = %.3f, want ≈ %.1f", c.eft, got, c.pv)
		}
	}
}

func TestStdDevEdgeCases(t *testing.T) {
	if SampleStdDev([]float64{5}) != 0 {
		t.Error("sample σ of one value != 0")
	}
	if SampleStdDev(nil) != 0 {
		t.Error("sample σ of nothing != 0")
	}
	if PopStdDev(nil) != 0 {
		t.Error("population σ of nothing != 0")
	}
	if PopStdDev([]float64{4, 4, 4}) != 0 {
		t.Error("population σ of constants != 0")
	}
}

func TestPopVsSample(t *testing.T) {
	xs := []float64{27, 35, 27}
	if !(SampleStdDev(xs) > PopStdDev(xs)) {
		t.Error("sample σ should exceed population σ for n > 1")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if Median(xs) != 3 {
		t.Errorf("Median = %g, want 3", Median(xs))
	}
	if Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Error("even-length median wrong")
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
	// Median must not mutate its input.
	if xs[0] != 3 {
		t.Error("Median sorted the caller's slice")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	xs := []float64{27, 35, 27, 19, 42.5, 3}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if !almost(r.Mean(), Mean(xs)) {
		t.Errorf("running mean %g vs batch %g", r.Mean(), Mean(xs))
	}
	if !almost(r.SampleStdDev(), SampleStdDev(xs)) {
		t.Errorf("running σ %g vs batch %g", r.SampleStdDev(), SampleStdDev(xs))
	}
	if r.Min() != 3 || r.Max() != 42.5 {
		t.Errorf("running min/max = %g/%g", r.Min(), r.Max())
	}
	if r.CI95() <= 0 {
		t.Error("CI95 should be positive for varied data")
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.SampleStdDev() != 0 || r.Min() != 0 || r.Max() != 0 || r.CI95() != 0 {
		t.Error("empty Running should report zeros")
	}
	if !strings.Contains(r.String(), "n=0") {
		t.Errorf("String = %q", r.String())
	}
}

// TestQuickMergeEqualsBatch: merging two independently-filled accumulators
// must equal accumulating the concatenation.
func TestQuickMergeEqualsBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2 := rng.Intn(20), rng.Intn(20)
		var a, b, all Running
		for i := 0; i < n1; i++ {
			x := rng.NormFloat64() * 10
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := rng.NormFloat64() * 10
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		return math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.SampleStdDev()-all.SampleStdDev()) < 1e-9 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Running
	b.Add(5)
	b.Add(7)
	a.Merge(b)
	if a.N() != 2 || !almost(a.Mean(), 6) {
		t.Fatalf("merge into empty: %s", a.String())
	}
	// Merging an empty accumulator is a no-op.
	before := a
	var empty Running
	a.Merge(empty)
	if a != before {
		t.Fatal("merging empty changed the accumulator")
	}
}

// TestQuickPairedStdDevBitIdentical: the paired forms must be bit-identical
// to the single-row forms for arbitrary rows — not merely close. The solver
// depends on this: the indexed core batches its σ recomputations in pairs,
// and the seed-vs-indexed schedule equivalence property holds only if each
// row's left-to-right accumulation order is preserved exactly.
func TestQuickPairedStdDevBitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			b[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
		}
		sa, sb := SampleStdDev2(a, b)
		if sa != SampleStdDev(a) || sb != SampleStdDev(b) {
			t.Logf("SampleStdDev2 diverged at n=%d", n)
			return false
		}
		pa, pb := PopStdDev2(a, b)
		if pa != PopStdDev(a) || pb != PopStdDev(b) {
			t.Logf("PopStdDev2 diverged at n=%d", n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPairedStdDevLengthMismatch: mismatched rows fall back to the
// single-row computations instead of touching out-of-range memory.
func TestPairedStdDevLengthMismatch(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5}
	sa, sb := SampleStdDev2(a, b)
	if sa != SampleStdDev(a) || sb != SampleStdDev(b) {
		t.Fatal("length-mismatch fallback diverged")
	}
	pa, pb := PopStdDev2(a, b)
	if pa != PopStdDev(a) || pb != PopStdDev(b) {
		t.Fatal("length-mismatch fallback diverged (population)")
	}
}
