package experiments

import (
	"fmt"
	"math/rand"

	"hdlts/internal/dynamic"
	"hdlts/internal/gen"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// The extension experiments realise the paper's future-work scenario
// (Section VI): executing workflows under uncertain costs and processor
// failures. They compare the online-HDLTS policy against static deployments
// of offline plans (see package dynamic). These are additions beyond the
// paper's figures; EXPERIMENTS.md reports them separately.

// RunExtUncertain measures mean makespan degradation (actual / planned) as
// execution and communication jitter grows from 0 to 50%.
func RunExtUncertain(cfg Config) (*Table, error) {
	jitters := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	labels := make([]string, len(jitters))
	for i, j := range jitters {
		labels[i] = fmt.Sprintf("%.0f%%", j*100)
	}
	return runExt("ext-uncertain",
		"Actual SLR vs run-time jitter — extension, not a paper figure",
		"jitter", labels, cfg,
		func(x int, rng *rand.Rand) (dynamic.Uncertainty, []dynamic.Failure) {
			u := dynamic.Uncertainty{ExecJitter: jitters[x], CommJitter: jitters[x]}
			return u, nil
		})
}

// RunExtFailure measures mean makespan degradation as 0 to 3 of 8
// processors fail at random times during execution, with 20% cost jitter.
func RunExtFailure(cfg Config) (*Table, error) {
	counts := []int{0, 1, 2, 3}
	labels := make([]string, len(counts))
	for i, c := range counts {
		labels[i] = fmt.Sprintf("%d", c)
	}
	return runExt("ext-failure",
		"Actual SLR vs failed CPUs of 8 — extension, not a paper figure",
		"failures", labels, cfg,
		func(x int, rng *rand.Rand) (dynamic.Uncertainty, []dynamic.Failure) {
			u := dynamic.Uncertainty{ExecJitter: 0.2, CommJitter: 0.2}
			var fails []dynamic.Failure
			for i := 0; i < counts[x]; i++ {
				fails = append(fails, dynamic.Failure{
					Proc: platform.Proc(i), // distinct victims
					At:   float64(rng.Intn(400)),
				})
			}
			return u, fails
		})
}

// RunExtNetwork measures how the offline schedulers cope with a
// heterogeneous network: a two-cluster platform (4+4 processors) whose
// intra-cluster bandwidth is 1 while the inter-cluster bandwidth shrinks
// from 1 (uniform, the paper's assumption) down to 1/8. Lower inter-cluster
// bandwidth punishes algorithms that scatter communicating tasks across
// clusters.
func RunExtNetwork(cfg Config) (*Table, error) {
	if len(cfg.Algorithms) == 0 {
		return nil, fmt.Errorf("experiments: no algorithms configured")
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	ratios := []float64{1, 0.5, 0.25, 0.125}
	labels := make([]string, len(ratios))
	for i, r := range ratios {
		labels[i] = fmt.Sprintf("1/%g", 1/r)
	}
	e := Experiment{
		Name:   "ext-network",
		Title:  "Average SLR vs inter-cluster bandwidth (two 4-CPU clusters) — extension, not a paper figure",
		XLabel: "inter-bw", Metric: MetricSLR, X: labels,
	}
	for _, r := range ratios {
		r := r
		e.Gen = append(e.Gen, func(_ int, rng *rand.Rand) (*sched.Problem, error) {
			pl, err := platform.TwoClusters(4, 4, 1, r)
			if err != nil {
				return nil, err
			}
			g, err := gen.Graph(gen.Params{
				V: 100, Alpha: 1.0, Density: 3, CCR: 2, Procs: 8, WDAG: 80, Beta: 1.2,
			}, rng)
			if err != nil {
				return nil, err
			}
			return gen.AssignCostsOn(g, pl, gen.CostParams{Procs: 8, WDAG: 80, Beta: 1.2, CCR: 2}, rng)
		})
	}
	return Run(e, cfg)
}

// runExt drives dynamic.Compare across an x-axis of scenario setups,
// drawing a fresh random problem per repetition (with three realities each)
// so the curves average over workloads as well as cost draws.
func runExt(name, title, xlabel string, labels []string, cfg Config,
	scenario func(x int, rng *rand.Rand) (dynamic.Uncertainty, []dynamic.Failure)) (*Table, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	const realitiesPerProblem = 3
	problems := (cfg.Reps + realitiesPerProblem - 1) / realitiesPerProblem

	t := &Table{Name: name, Title: title, XLabel: xlabel, Metric: "ActualSLR", X: labels}
	var acc []dynamic.Summary
	for x := range labels {
		for rep := 0; rep < problems; rep++ {
			rng := rand.New(rand.NewSource(subSeed(cfg.Seed, name, x, rep)))
			pr, err := gen.Random(gen.Params{
				V: 100, Alpha: 1.0, Density: 3, CCR: 2.0, Procs: 8, WDAG: 80, Beta: 1.2,
			}, rng)
			if err != nil {
				return nil, err
			}
			u, fails := scenario(x, rng)
			sums, err := dynamic.Compare(pr, u, fails, realitiesPerProblem, rng)
			if err != nil {
				return nil, err
			}
			if acc == nil {
				acc = make([]dynamic.Summary, len(sums)*len(labels))
				for i, s := range sums {
					for xx := range labels {
						acc[i*len(labels)+xx].Policy = s.Policy
					}
				}
			}
			for i, s := range sums {
				acc[i*len(labels)+x].Merge(s)
			}
		}
		if cfg.Progress != nil {
			cfg.Progress(fmt.Sprintf("%s: finished %s=%s (%d problems)", name, xlabel, labels[x], problems))
		}
	}

	nPolicies := len(acc) / len(labels)
	for i := 0; i < nPolicies; i++ {
		s := Series{Algorithm: acc[i*len(labels)].Policy,
			Mean: make([]float64, len(labels)),
			CI95: make([]float64, len(labels)),
			N:    make([]int, len(labels)),
		}
		for x := range labels {
			sum := acc[i*len(labels)+x]
			s.Mean[x] = sum.SLR.Mean()
			s.CI95[x] = sum.SLR.CI95()
			s.N[x] = sum.SLR.N()
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}
