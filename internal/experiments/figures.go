package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"hdlts/internal/dag"
	"hdlts/internal/gen"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

// Table II value lists used to sample the nuisance dimensions of each
// figure: the paper averages every figure over the full factorial grid; we
// sample the non-plotted dimensions uniformly per repetition, which
// estimates the same average without enumerating 150 000 combinations per
// point.
var (
	tableII = gen.TableII()
	// smallVs restricts task counts for figures that do not plot V, keeping
	// default campaign runtimes laptop-sized (Fig. 3 still covers the full
	// range up to 10 000 tasks).
	smallVs = []int{100, 200, 300, 400, 500}
	fftMs   = []int{4, 8, 16, 32}
)

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// randomPoint builds a PointGen for synthetic graphs with the given fixed
// overrides; every parameter not fixed is sampled from Table II.
func randomPoint(fix func(*gen.Params, *rand.Rand)) PointGen {
	return func(_ int, rng *rand.Rand) (*sched.Problem, error) {
		p := gen.Params{
			V:       pick(rng, smallVs),
			Alpha:   pick(rng, tableII.Alphas),
			Density: pick(rng, tableII.Densities),
			CCR:     pick(rng, tableII.CCRs),
			Procs:   pick(rng, tableII.Procs),
			WDAG:    pick(rng, tableII.WDAGs),
			Beta:    pick(rng, tableII.Betas),
		}
		fix(&p, rng)
		return gen.Random(p, rng)
	}
}

// structuredPoint builds a PointGen for a fixed workflow structure with
// sampled cost parameters and the given overrides.
func structuredPoint(build func(*rand.Rand) (*dag.Graph, error), fix func(*gen.CostParams, *rand.Rand)) PointGen {
	return func(_ int, rng *rand.Rand) (*sched.Problem, error) {
		b, err := build(rng)
		if err != nil {
			return nil, err
		}
		c := gen.CostParams{
			Procs: pick(rng, tableII.Procs),
			WDAG:  pick(rng, tableII.WDAGs),
			Beta:  pick(rng, tableII.Betas),
			CCR:   pick(rng, tableII.CCRs),
		}
		fix(&c, rng)
		return gen.AssignCosts(b, c, rng)
	}
}

// ccrLabels / procLabels are the x-axes shared by several figures.
var (
	ccrValues  = []float64{1, 2, 3, 4, 5}
	procValues = []int{2, 4, 6, 8, 10}
)

func labelsF(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%g", x)
	}
	return out
}

func labelsI(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

// All returns every experiment, keyed by figure id, in paper order.
func All() []Experiment {
	return []Experiment{
		Fig2(), Fig3(), Fig4(),
		Fig6(), Fig7(), Fig8(),
		Fig10("fig10a", 50), Fig10("fig10b", 100), Fig11(),
		Fig13(), Fig14(),
	}
}

// ByName returns the experiment with the given id.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	known := make([]string, 0)
	for _, e := range All() {
		known = append(known, e.Name)
	}
	sort.Strings(known)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, known)
}

// Fig2 — average SLR of random workflows vs CCR.
func Fig2() Experiment {
	e := Experiment{
		Name: "fig2", Title: "Average SLR of random application workflows vs CCR",
		XLabel: "CCR", Metric: MetricSLR, X: labelsF(ccrValues),
	}
	for _, ccr := range ccrValues {
		ccr := ccr
		e.Gen = append(e.Gen, randomPoint(func(p *gen.Params, _ *rand.Rand) { p.CCR = ccr }))
	}
	return e
}

// Fig3 — average SLR of random workflows vs task count. Repetitions are
// scaled down for the very large graphs so a default campaign stays
// laptop-sized; the scaling is reported in the table's N column.
func Fig3() Experiment {
	vs := []int{100, 200, 300, 400, 500, 1000, 5000, 10000}
	e := Experiment{
		Name: "fig3", Title: "Average SLR of random application workflows vs task size",
		XLabel: "V", Metric: MetricSLR, X: labelsI(vs),
		RepsScale: []float64{1, 1, 1, 1, 1, 0.5, 0.1, 0.05},
	}
	for _, v := range vs {
		v := v
		e.Gen = append(e.Gen, randomPoint(func(p *gen.Params, _ *rand.Rand) { p.V = v }))
	}
	return e
}

// Fig4 — efficiency of random workflows vs number of CPUs.
func Fig4() Experiment {
	e := Experiment{
		Name: "fig4", Title: "Efficiency of random application workflows vs number of CPUs",
		XLabel: "CPUs", Metric: MetricEfficiency, X: labelsI(procValues),
	}
	for _, p := range procValues {
		p := p
		e.Gen = append(e.Gen, randomPoint(func(g *gen.Params, _ *rand.Rand) { g.Procs = p }))
	}
	return e
}

// Fig6 — average SLR of FFT workflows vs input points (m = 4..32, i.e. 15
// to 223 tasks).
func Fig6() Experiment {
	e := Experiment{
		Name: "fig6", Title: "Average SLR of FFT application workflows vs input points",
		XLabel: "points", Metric: MetricSLR, X: labelsI(fftMs),
	}
	for _, m := range fftMs {
		m := m
		e.Gen = append(e.Gen, structuredPoint(
			func(*rand.Rand) (*dag.Graph, error) { return workflows.FFTGraph(m) },
			func(*gen.CostParams, *rand.Rand) {},
		))
	}
	return e
}

// Fig7 — average SLR of FFT workflows vs CCR (input points sampled).
func Fig7() Experiment {
	e := Experiment{
		Name: "fig7", Title: "Average SLR of FFT application workflows vs CCR",
		XLabel: "CCR", Metric: MetricSLR, X: labelsF(ccrValues),
	}
	for _, ccr := range ccrValues {
		ccr := ccr
		e.Gen = append(e.Gen, structuredPoint(
			func(rng *rand.Rand) (*dag.Graph, error) { return workflows.FFTGraph(pick(rng, fftMs)) },
			func(c *gen.CostParams, _ *rand.Rand) { c.CCR = ccr },
		))
	}
	return e
}

// Fig8 — efficiency of FFT workflows (m = 16) vs number of CPUs.
func Fig8() Experiment {
	e := Experiment{
		Name: "fig8", Title: "Efficiency of FFT application workflows (16 points) vs number of CPUs",
		XLabel: "CPUs", Metric: MetricEfficiency, X: labelsI(procValues),
	}
	for _, p := range procValues {
		p := p
		e.Gen = append(e.Gen, structuredPoint(
			func(*rand.Rand) (*dag.Graph, error) { return workflows.FFTGraph(16) },
			func(c *gen.CostParams, _ *rand.Rand) { c.Procs = p },
		))
	}
	return e
}

// Fig10 — average SLR of Montage workflows vs CCR at 5 CPUs, for a fixed
// node count (the paper plots 50- and 100-node variants).
func Fig10(name string, nodes int) Experiment {
	e := Experiment{
		Name: name, Title: fmt.Sprintf("Average SLR of Montage (%d nodes) vs CCR, 5 CPUs", nodes),
		XLabel: "CCR", Metric: MetricSLR, X: labelsF(ccrValues),
	}
	for _, ccr := range ccrValues {
		ccr := ccr
		e.Gen = append(e.Gen, structuredPoint(
			func(*rand.Rand) (*dag.Graph, error) { return workflows.MontageGraph(nodes) },
			func(c *gen.CostParams, _ *rand.Rand) { c.CCR, c.Procs = ccr, 5 },
		))
	}
	return e
}

// Fig11 — efficiency of Montage workflows vs number of CPUs at CCR = 3
// (node count sampled from the paper's 50/100 variants).
func Fig11() Experiment {
	e := Experiment{
		Name: "fig11", Title: "Efficiency of Montage application workflows vs number of CPUs (CCR 3)",
		XLabel: "CPUs", Metric: MetricEfficiency, X: labelsI(procValues),
	}
	for _, p := range procValues {
		p := p
		e.Gen = append(e.Gen, structuredPoint(
			func(rng *rand.Rand) (*dag.Graph, error) { return workflows.MontageGraph(pick(rng, []int{50, 100})) },
			func(c *gen.CostParams, _ *rand.Rand) { c.CCR, c.Procs = 3, p },
		))
	}
	return e
}

// Fig13 — average SLR of the Molecular Dynamics workflow vs CCR.
func Fig13() Experiment {
	e := Experiment{
		Name: "fig13", Title: "Average SLR of Molecular Dynamics application workflow vs CCR",
		XLabel: "CCR", Metric: MetricSLR, X: labelsF(ccrValues),
	}
	for _, ccr := range ccrValues {
		ccr := ccr
		e.Gen = append(e.Gen, structuredPoint(
			func(*rand.Rand) (*dag.Graph, error) { return workflows.MolDynGraph(), nil },
			func(c *gen.CostParams, _ *rand.Rand) { c.CCR = ccr },
		))
	}
	return e
}

// Fig14 — efficiency of the Molecular Dynamics workflow vs number of CPUs
// at CCR = 3.
func Fig14() Experiment {
	e := Experiment{
		Name: "fig14", Title: "Efficiency of Molecular Dynamics application workflow vs number of CPUs (CCR 3)",
		XLabel: "CPUs", Metric: MetricEfficiency, X: labelsI(procValues),
	}
	for _, p := range procValues {
		p := p
		e.Gen = append(e.Gen, structuredPoint(
			func(*rand.Rand) (*dag.Graph, error) { return workflows.MolDynGraph(), nil },
			func(c *gen.CostParams, _ *rand.Rand) { c.CCR, c.Procs = 3, p },
		))
	}
	return e
}
