// Package experiments defines and runs the paper's evaluation campaigns:
// one Experiment per published figure (average SLR or efficiency curves for
// HDLTS and the five baselines over random, FFT, Montage, and Molecular
// Dynamics workflows), executed by a deterministic parallel runner, plus
// text/CSV table rendering.
//
// Determinism: every (experiment, x-point, repetition) derives its own RNG
// from the campaign seed via FNV hashing, so results are bit-identical
// regardless of worker count or scheduling order.
package experiments

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hdlts/internal/metrics"
	"hdlts/internal/obs"
	"hdlts/internal/sched"
	"hdlts/internal/stats"
)

// Runner metric series names.
const (
	metricReps    = "hdlts_experiments_reps_total"
	metricRepTime = "hdlts_experiments_rep_seconds"
)

// Runner metrics (default obs registry): completed repetitions and their
// wall-clock cost, one histogram series per experiment.
var repCount = obs.Default().Counter(metricReps)

// Metric names accepted by experiments.
const (
	MetricSLR        = "SLR"
	MetricEfficiency = "Efficiency"
	MetricSpeedup    = "Speedup"
	MetricMakespan   = "Makespan"
)

// PointGen builds the problem instance for one repetition of one x-point.
// Implementations draw every random quantity from rng only.
type PointGen func(rep int, rng *rand.Rand) (*sched.Problem, error)

// Experiment is one figure: an x-axis of labelled points, a problem
// generator per point, and the metric plotted on the y-axis.
type Experiment struct {
	Name   string // short id: "fig2", "fig10a", ...
	Title  string // caption from the paper
	XLabel string
	Metric string
	X      []string   // tick labels, parallel to Gen
	Gen    []PointGen // problem generator per x-point
	// RepsScale optionally scales the configured repetition count per
	// x-point (e.g. fewer repetitions for 10000-task graphs). A zero or
	// missing entry means 1.0.
	RepsScale []float64
}

// Config controls a campaign run.
type Config struct {
	// Reps is the number of problem instances averaged per x-point
	// (the paper uses 1000).
	Reps int
	// Seed is the campaign master seed.
	Seed int64
	// Workers caps parallel workers; 0 means GOMAXPROCS.
	Workers int
	// Algorithms compared; nil panics (callers pass registry.All() or a
	// subset).
	Algorithms []sched.Algorithm
	// Validate re-checks every schedule's feasibility (slower; used by
	// integration tests).
	Validate bool
	// Progress, when non-nil, receives a line per queued and per completed
	// x-point (with wall-clock elapsed) plus a final summary line. It may
	// be called from multiple goroutines; Run serialises the calls.
	Progress func(string)
	// Tracer, when non-nil, receives decision events from every schedule
	// computed by the campaign, stamped with the algorithm name. With
	// Workers > 1 the interleaving across repetitions is nondeterministic;
	// use Workers: 1 for reproducible streams.
	Tracer obs.Tracer
}

// Series is one algorithm's curve across the x-axis.
type Series struct {
	Algorithm string
	Mean      []float64 // per x-point mean of the metric
	CI95      []float64 // half-width of the 95% CI per x-point
	N         []int     // observations per x-point
	// WinRate is the paired win fraction against the first configured
	// algorithm (HDLTS in the standard pools): the share of instances on
	// which this algorithm's metric is strictly better on the *same*
	// problem. The first series' WinRate is all zeros by construction.
	WinRate []float64
}

// Table is the rendered result of one experiment.
type Table struct {
	Name   string
	Title  string
	XLabel string
	Metric string
	X      []string
	Series []Series
}

// Run executes the experiment under the configuration and returns its table.
func Run(e Experiment, cfg Config) (*Table, error) {
	if len(cfg.Algorithms) == 0 {
		return nil, fmt.Errorf("experiments: no algorithms configured")
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	nAlg := len(cfg.Algorithms)
	// vals[x][alg][rep] buffers every observation so the final fold happens
	// in deterministic (x, alg, rep) order: results are bit-identical for
	// any worker count.
	repsAt := func(x int) int {
		reps := cfg.Reps
		if x < len(e.RepsScale) && e.RepsScale[x] > 0 {
			reps = int(float64(cfg.Reps)*e.RepsScale[x] + 0.5)
			if reps < 1 {
				reps = 1
			}
		}
		return reps
	}
	vals := make([][][]float64, len(e.X))
	for x := range vals {
		vals[x] = make([][]float64, nAlg)
		for a := range vals[x] {
			vals[x][a] = make([]float64, repsAt(x))
		}
	}

	type job struct{ x, rep int }
	jobs := make(chan job)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup

	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	start := time.Now()
	var progMu sync.Mutex
	progress := func(format string, args ...any) {
		if cfg.Progress == nil {
			return
		}
		progMu.Lock()
		cfg.Progress(fmt.Sprintf(format, args...))
		progMu.Unlock()
	}
	// left[x] counts outstanding repetitions so the worker finishing the
	// last one can report the x-point complete with wall-clock elapsed.
	left := make([]atomic.Int64, len(e.X))
	totalReps := 0
	for x := range e.X {
		n := int64(repsAt(x))
		left[x].Store(n)
		totalReps += int(n)
	}
	repTime := obs.Default().Histogram(metricRepTime, "experiment", e.Name)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				repStart := time.Now()
				rng := rand.New(rand.NewSource(subSeed(cfg.Seed, e.Name, j.x, j.rep)))
				pr, err := e.Gen[j.x](j.rep, rng)
				if err != nil {
					setErr(fmt.Errorf("experiments: %s x=%s rep=%d: %w", e.Name, e.X[j.x], j.rep, err))
					continue
				}
				for ai, alg := range cfg.Algorithms {
					prA := pr
					if cfg.Tracer != nil && cfg.Tracer.Enabled() {
						prA = pr.WithTracer(obs.Named(cfg.Tracer, alg.Name()))
					}
					s, err := alg.Schedule(prA)
					if err != nil {
						setErr(fmt.Errorf("experiments: %s x=%s rep=%d alg=%s: %w", e.Name, e.X[j.x], j.rep, alg.Name(), err))
						continue
					}
					if cfg.Validate {
						if err := s.Validate(); err != nil {
							setErr(fmt.Errorf("experiments: %s x=%s rep=%d alg=%s: invalid schedule: %w", e.Name, e.X[j.x], j.rep, alg.Name(), err))
							continue
						}
					}
					v, err := metricValue(e.Metric, s)
					if err != nil {
						setErr(err)
						continue
					}
					// Each (x, alg, rep) cell is written by exactly one job.
					vals[j.x][ai][j.rep] = v
				}
				repTime.ObserveSince(repStart)
				repCount.Inc()
				if left[j.x].Add(-1) == 0 {
					progress("%s: %s=%s done (%d reps, %v elapsed)",
						e.Name, e.XLabel, e.X[j.x], repsAt(j.x), time.Since(start).Round(time.Millisecond))
				}
			}
		}()
	}

	for x := range e.X {
		reps := repsAt(x)
		for rep := 0; rep < reps; rep++ {
			jobs <- job{x: x, rep: rep}
		}
		progress("%s: queued %s=%s (%d reps)", e.Name, e.XLabel, e.X[x], reps)
	}
	close(jobs)
	wg.Wait()
	progress("%s: %d reps across %d x-points in %v",
		e.Name, totalReps, len(e.X), time.Since(start).Round(time.Millisecond))
	if firstErr != nil {
		return nil, firstErr
	}

	// Deterministic fold.
	acc := make([][]stats.Running, len(e.X))
	for x := range acc {
		acc[x] = make([]stats.Running, nAlg)
		for a := 0; a < nAlg; a++ {
			for _, v := range vals[x][a] {
				acc[x][a].Add(v)
			}
		}
	}

	higherBetter := e.Metric == MetricEfficiency || e.Metric == MetricSpeedup
	t := &Table{Name: e.Name, Title: e.Title, XLabel: e.XLabel, Metric: e.Metric, X: e.X}
	for ai, alg := range cfg.Algorithms {
		s := Series{Algorithm: alg.Name(),
			Mean:    make([]float64, len(e.X)),
			CI95:    make([]float64, len(e.X)),
			N:       make([]int, len(e.X)),
			WinRate: make([]float64, len(e.X)),
		}
		for x := range e.X {
			s.Mean[x] = acc[x][ai].Mean()
			s.CI95[x] = acc[x][ai].CI95()
			s.N[x] = acc[x][ai].N()
			if ai > 0 && len(vals[x][ai]) > 0 {
				wins := 0
				for rep := range vals[x][ai] {
					a, ref := vals[x][ai][rep], vals[x][0][rep]
					if (higherBetter && a > ref) || (!higherBetter && a < ref) {
						wins++
					}
				}
				s.WinRate[x] = float64(wins) / float64(len(vals[x][ai]))
			}
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}

// metricValue extracts the configured metric from a completed schedule.
func metricValue(metric string, s *sched.Schedule) (float64, error) {
	switch metric {
	case MetricMakespan:
		return s.Makespan(), nil
	case MetricSLR:
		return metrics.SLR(s.Problem(), s.Makespan())
	case MetricSpeedup:
		return metrics.Speedup(s.Problem(), s.Makespan())
	case MetricEfficiency:
		return metrics.Efficiency(s.Problem(), s.Makespan())
	default:
		return 0, fmt.Errorf("experiments: unknown metric %q", metric)
	}
}

// subSeed derives a deterministic per-job seed from the campaign seed, the
// experiment name, the x-point index, and the repetition number.
func subSeed(seed int64, name string, x, rep int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", seed, name, x, rep)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
