package experiments

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hdlts/internal/gen"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
)

// tinyExperiment is a fast two-point experiment over small random graphs.
func tinyExperiment(metric string) Experiment {
	gen1 := func(_ int, rng *rand.Rand) (*sched.Problem, error) {
		return gen.Random(gen.Params{V: 20, Alpha: 1, Density: 2, CCR: 1, Procs: 3, WDAG: 50, Beta: 1.2}, rng)
	}
	gen2 := func(_ int, rng *rand.Rand) (*sched.Problem, error) {
		return gen.Random(gen.Params{V: 20, Alpha: 1, Density: 2, CCR: 4, Procs: 3, WDAG: 50, Beta: 1.2}, rng)
	}
	return Experiment{
		Name: "tiny", Title: "tiny", XLabel: "CCR", Metric: metric,
		X: []string{"1", "4"}, Gen: []PointGen{gen1, gen2},
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	e := tinyExperiment(MetricSLR)
	base := Config{Reps: 8, Seed: 42, Algorithms: registry.All()}

	cfg1 := base
	cfg1.Workers = 1
	t1, err := Run(e, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := base
	cfg8.Workers = 8
	t8, err := Run(e, cfg8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1.Series {
		if !reflect.DeepEqual(t1.Series[i].Mean, t8.Series[i].Mean) {
			t.Fatalf("means differ across worker counts: %v vs %v", t1.Series[i].Mean, t8.Series[i].Mean)
		}
	}
}

func TestRunRepsScale(t *testing.T) {
	e := tinyExperiment(MetricMakespan)
	e.RepsScale = []float64{1, 0.25}
	tbl, err := Run(e, Config{Reps: 8, Seed: 1, Algorithms: registry.All()})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Series[0].N[0] != 8 || tbl.Series[0].N[1] != 2 {
		t.Fatalf("N = %v, want [8 2]", tbl.Series[0].N)
	}
}

func TestRunConfigErrors(t *testing.T) {
	e := tinyExperiment(MetricSLR)
	if _, err := Run(e, Config{Reps: 1}); err == nil {
		t.Fatal("empty algorithm pool accepted")
	}
	bad := tinyExperiment("Bogus")
	if _, err := Run(bad, Config{Reps: 1, Algorithms: registry.All()}); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestRunPropagatesGeneratorError(t *testing.T) {
	e := Experiment{
		Name: "boom", Title: "boom", XLabel: "x", Metric: MetricSLR,
		X: []string{"1"},
		Gen: []PointGen{func(int, *rand.Rand) (*sched.Problem, error) {
			return gen.Random(gen.Params{}, rand.New(rand.NewSource(1))) // invalid params
		}},
	}
	if _, err := Run(e, Config{Reps: 1, Algorithms: registry.All()}); err == nil {
		t.Fatal("generator error swallowed")
	}
}

func TestByNameCoversAllFigures(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig10a", "fig10b", "fig11", "fig13", "fig14"}
	for _, name := range want {
		e, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%s): %v", name, err)
			continue
		}
		if e.Name != name {
			t.Errorf("ByName(%s).Name = %s", name, e.Name)
		}
		if len(e.X) == 0 || len(e.Gen) != len(e.X) {
			t.Errorf("%s: %d x-points, %d generators", name, len(e.X), len(e.Gen))
		}
		if e.Metric != MetricSLR && e.Metric != MetricEfficiency {
			t.Errorf("%s: unexpected metric %s", name, e.Metric)
		}
	}
	if _, err := ByName("fig99"); err == nil {
		t.Error("ByName(fig99) succeeded")
	}
	if len(All()) != len(want) {
		t.Errorf("All() has %d experiments, want %d", len(All()), len(want))
	}
}

func TestEveryFigureGeneratorProducesValidProblems(t *testing.T) {
	for _, e := range All() {
		for x := range e.Gen {
			rng := rand.New(rand.NewSource(int64(x) + 1))
			pr, err := e.Gen[x](0, rng)
			if err != nil {
				t.Errorf("%s x=%s: %v", e.Name, e.X[x], err)
				continue
			}
			if err := pr.G.Validate(); err != nil {
				t.Errorf("%s x=%s: invalid graph: %v", e.Name, e.X[x], err)
			}
		}
	}
}

func TestWriteCSV(t *testing.T) {
	e := tinyExperiment(MetricSLR)
	tbl, err := Run(e, Config{Reps: 2, Seed: 3, Algorithms: registry.All()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + 2 x-points × 6 algorithms
	if len(lines) != 1+2*6 {
		t.Fatalf("CSV has %d lines, want 13:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,metric,CCR,algorithm,mean,ci95,n,winrate_vs_first") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestWinRates(t *testing.T) {
	e := tinyExperiment(MetricSLR)
	tbl, err := Run(e, Config{Reps: 10, Seed: 5, Algorithms: registry.All()})
	if err != nil {
		t.Fatal(err)
	}
	// The first (reference) series' win rate is zero by construction.
	for x := range tbl.X {
		if tbl.Series[0].WinRate[x] != 0 {
			t.Fatalf("reference win rate = %v", tbl.Series[0].WinRate)
		}
	}
	// Other series' win rates are valid fractions and at least one
	// algorithm beats HDLTS on at least one instance somewhere.
	any := false
	for _, s := range tbl.Series[1:] {
		for x, wr := range s.WinRate {
			if wr < 0 || wr > 1 {
				t.Fatalf("%s win rate %g at x=%d", s.Algorithm, wr, x)
			}
			if wr > 0 {
				any = true
			}
		}
	}
	if !any {
		t.Fatal("no algorithm ever beat the reference — implausible for these pools")
	}
}

func TestWinnersAndSeriesByName(t *testing.T) {
	tbl := &Table{
		Metric: MetricEfficiency, X: []string{"a", "b"},
		Series: []Series{
			{Algorithm: "X", Mean: []float64{0.5, 0.9}},
			{Algorithm: "Y", Mean: []float64{0.7, 0.2}},
		},
	}
	w := tbl.Winners()
	if w[0] != "Y" || w[1] != "X" {
		t.Fatalf("Winners = %v", w)
	}
	tbl.Metric = MetricSLR // lower is better now
	w = tbl.Winners()
	if w[0] != "X" || w[1] != "Y" {
		t.Fatalf("Winners (SLR) = %v", w)
	}
	if s := tbl.SeriesByName("Y"); s == nil || s.Mean[0] != 0.7 {
		t.Fatal("SeriesByName failed")
	}
	if tbl.SeriesByName("Z") != nil {
		t.Fatal("SeriesByName invented a series")
	}
}

func TestProgressCallback(t *testing.T) {
	e := tinyExperiment(MetricSLR)
	var mu []string
	cfg := Config{Reps: 1, Seed: 1, Algorithms: registry.All(),
		Progress: func(s string) { mu = append(mu, s) }}
	if _, err := Run(e, cfg); err != nil {
		t.Fatal(err)
	}
	// One queued and one completion line per x-point, plus a final
	// wall-clock summary.
	if want := 2*len(e.X) + 1; len(mu) != want {
		t.Fatalf("progress lines = %d, want %d:\n%s", len(mu), want, strings.Join(mu, "\n"))
	}
	last := mu[len(mu)-1]
	if !strings.Contains(last, "x-points in") {
		t.Fatalf("missing wall-clock summary line, got %q", last)
	}
}
