package experiments

import (
	"io"

	"hdlts/internal/viz"
)

// WriteSVG renders the table as an SVG chart — grouped bars for efficiency
// figures (matching the paper's bar-style efficiency plots) and lines with
// point markers for everything else. Both carry 95%-CI whiskers.
func (t *Table) WriteSVG(w io.Writer) error {
	var series []viz.Series
	for _, s := range t.Series {
		series = append(series, viz.Series{Name: s.Algorithm, Y: s.Mean, CI: s.CI95})
	}
	title := t.Name + " — " + t.Title
	if t.Metric == MetricEfficiency {
		c := viz.BarChart{Title: title, XLabel: t.XLabel, YLabel: t.Metric, X: t.X, Series: series}
		return c.WriteSVG(w)
	}
	c := viz.LineChart{Title: title, XLabel: t.XLabel, YLabel: t.Metric, X: t.X, Series: series}
	return c.WriteSVG(w)
}
