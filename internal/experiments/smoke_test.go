package experiments

import (
	"strings"
	"testing"

	"hdlts/internal/registry"
	"hdlts/internal/sched"
)

// TestSmokeFig2 runs a miniature Fig. 2 campaign with validation enabled:
// every schedule from every algorithm must be feasible, SLR means must be
// >= 1, and the table must render.
func TestSmokeFig2(t *testing.T) {
	tbl, err := Run(Fig2(), Config{Reps: 3, Seed: 1, Algorithms: registry.All(), Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 6 {
		t.Fatalf("got %d series, want 6", len(tbl.Series))
	}
	for _, s := range tbl.Series {
		for x, m := range s.Mean {
			if m < 1 {
				t.Errorf("%s: mean SLR %g < 1 at %s=%s", s.Algorithm, m, tbl.XLabel, tbl.X[x])
			}
			if s.N[x] != 3 {
				t.Errorf("%s: N = %d at x=%d, want 3", s.Algorithm, s.N[x], x)
			}
		}
	}
	var b strings.Builder
	if err := tbl.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + b.String())
}

// TestSmokeAllFiguresValidated runs every figure with one repetition and
// schedule validation enabled in both baseline modes: a regression net over
// the entire figure matrix (the feasibility of every algorithm on every
// workload family under both placement policies).
func TestSmokeAllFiguresValidated(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep")
	}
	pools := map[string][]sched.Algorithm{
		"canonical": registry.All(),
		"paper":     registry.PaperMode(),
	}
	for mode, pool := range pools {
		for _, e := range All() {
			e := e
			t.Run(mode+"/"+e.Name, func(t *testing.T) {
				t.Parallel()
				// Skip the giant tail of fig3 (V >= 5000) to keep the net fast.
				if e.Name == "fig3" {
					e.X = e.X[:6]
					e.Gen = e.Gen[:6]
					e.RepsScale = e.RepsScale[:6]
				}
				tbl, err := Run(e, Config{Reps: 1, Seed: 11, Algorithms: pool, Validate: true})
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range tbl.Series {
					for x, m := range s.Mean {
						if m <= 0 {
							t.Errorf("%s: non-positive %s %g at %s", s.Algorithm, tbl.Metric, m, tbl.X[x])
						}
					}
				}
			})
		}
	}
}
