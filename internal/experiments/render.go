package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText renders the table as aligned plain text: one row per x-point,
// one column per algorithm, plus a Winner column naming the best algorithm
// at that point (lowest value for SLR/Makespan, highest for
// Efficiency/Speedup).
func (t *Table) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s  [metric: %s]\n", t.Name, t.Title, t.Metric); err != nil {
		return err
	}
	higherBetter := t.Metric == MetricEfficiency || t.Metric == MetricSpeedup

	head := []string{t.XLabel}
	for _, s := range t.Series {
		head = append(head, s.Algorithm)
	}
	head = append(head, "N", "Winner")
	rows := [][]string{head}
	for x := range t.X {
		row := []string{t.X[x]}
		winner, winVal := "", 0.0
		for si, s := range t.Series {
			row = append(row, fmt.Sprintf("%.4f", s.Mean[x]))
			better := si == 0 || (higherBetter && s.Mean[x] > winVal) || (!higherBetter && s.Mean[x] < winVal)
			if better {
				winner, winVal = s.Algorithm, s.Mean[x]
			}
		}
		n := 0
		if len(t.Series) > 0 {
			n = t.Series[0].N[x]
		}
		row = append(row, strconv.Itoa(n), winner)
		rows = append(rows, row)
	}

	widths := make([]int, len(head))
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, r := range rows {
		var b strings.Builder
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
		if ri == 0 {
			if _, err := fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths))); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	return total - 2
}

// WriteCSV emits the table as CSV with columns
// experiment,metric,x,algorithm,mean,ci95,n.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "metric", t.XLabel, "algorithm", "mean", "ci95", "n", "winrate_vs_first"}); err != nil {
		return err
	}
	for x := range t.X {
		for _, s := range t.Series {
			win := ""
			if x < len(s.WinRate) {
				win = strconv.FormatFloat(s.WinRate[x], 'g', 4, 64)
			}
			rec := []string{
				t.Name, t.Metric, t.X[x], s.Algorithm,
				strconv.FormatFloat(s.Mean[x], 'g', 8, 64),
				strconv.FormatFloat(s.CI95[x], 'g', 4, 64),
				strconv.Itoa(s.N[x]),
				win,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Winners returns, per x-point, the name of the winning algorithm.
func (t *Table) Winners() []string {
	higherBetter := t.Metric == MetricEfficiency || t.Metric == MetricSpeedup
	out := make([]string, len(t.X))
	for x := range t.X {
		winner, winVal := "", 0.0
		for si, s := range t.Series {
			if si == 0 || (higherBetter && s.Mean[x] > winVal) || (!higherBetter && s.Mean[x] < winVal) {
				winner, winVal = s.Algorithm, s.Mean[x]
			}
		}
		out[x] = winner
	}
	return out
}

// SeriesByName returns the series for one algorithm, or nil.
func (t *Table) SeriesByName(alg string) *Series {
	for i := range t.Series {
		if t.Series[i].Algorithm == alg {
			return &t.Series[i]
		}
	}
	return nil
}
