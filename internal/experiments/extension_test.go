package experiments

import (
	"strings"
	"testing"

	"hdlts/internal/registry"
)

func TestRunExtUncertain(t *testing.T) {
	tbl, err := RunExtUncertain(Config{Reps: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 4 {
		t.Fatalf("policies = %d, want 4", len(tbl.Series))
	}
	names := map[string]bool{}
	for _, s := range tbl.Series {
		names[s.Algorithm] = true
		for x, m := range s.Mean {
			if m < 1 {
				t.Errorf("%s: actual SLR %g < 1 at %s", s.Algorithm, m, tbl.X[x])
			}
			if s.N[x] < 6 {
				t.Errorf("%s: N = %d at %s, want >= 6", s.Algorithm, s.N[x], tbl.X[x])
			}
		}
	}
	for _, want := range []string{"HDLTS-online", "HDLTS-static", "HEFT-static", "HEFT-order"} {
		if !names[want] {
			t.Errorf("missing policy %s", want)
		}
	}
	var b strings.Builder
	if err := tbl.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ext-uncertain") {
		t.Error("render missing experiment name")
	}
}

func TestRunExtFailure(t *testing.T) {
	tbl, err := RunExtFailure(Config{Reps: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.X) != 4 {
		t.Fatalf("x-points = %d, want 4", len(tbl.X))
	}
	// Robustness claim: under three failures the online policy must beat
	// the static HDLTS deployment on average (that is the point of the
	// extension — verified at small N, so use a generous margin).
	online := tbl.SeriesByName("HDLTS-online")
	static_ := tbl.SeriesByName("HDLTS-static")
	last := len(tbl.X) - 1
	if online.Mean[last] > static_.Mean[last]*1.05 {
		t.Errorf("online HDLTS (%g) much worse than its static deployment (%g) under failures",
			online.Mean[last], static_.Mean[last])
	}
}

func TestRunExtDeterministic(t *testing.T) {
	a, err := RunExtUncertain(Config{Reps: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExtUncertain(Config{Reps: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		for x := range a.Series[i].Mean {
			if a.Series[i].Mean[x] != b.Series[i].Mean[x] {
				t.Fatalf("nondeterministic extension results")
			}
		}
	}
}

func TestRunExtNetwork(t *testing.T) {
	tbl, err := RunExtNetwork(Config{Reps: 4, Seed: 3, Algorithms: registry.All(), Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.X) != 4 || len(tbl.Series) != 6 {
		t.Fatalf("shape: %d x-points, %d series", len(tbl.X), len(tbl.Series))
	}
	for _, s := range tbl.Series {
		for x, m := range s.Mean {
			if m < 1 {
				t.Errorf("%s: SLR %g < 1 at %s", s.Algorithm, m, tbl.X[x])
			}
		}
		// SLR must not improve when the inter-cluster link degrades.
		if s.Mean[len(s.Mean)-1] < s.Mean[0]*0.9 {
			t.Errorf("%s improved under a degraded network: %v", s.Algorithm, s.Mean)
		}
	}
}
