package exec

import "testing"

// FuzzDecodeWorkflow holds the decoder to its contract: any byte input
// either decodes into a definition that passes Validate (and compiles) or
// returns an error — it must never panic, hang, or admit a malformed
// workflow (cycles, duplicate step names, unresolvable dependencies are
// all Validate errors, and DecodeWorkflow runs Validate before returning).
func FuzzDecodeWorkflow(f *testing.F) {
	f.Add([]byte(demoYAML))
	f.Add([]byte("steps:\n  - name: a\n    command: true\n"))
	f.Add([]byte("steps:\n  - name: a\n    command: true\n    depends: [a]\n"))
	f.Add([]byte("steps:\n  - name: a\n    command: true\n  - name: a\n    command: true\n"))
	f.Add([]byte("steps:\n  - name: a\n    command: true\n    depends: [b]\n  - name: b\n    command: true\n    depends: [a]\n"))
	f.Add([]byte("name: \"x\ty\"\nprocs: 999999\n"))
	f.Add([]byte("steps:\n\t- broken tab\n"))
	f.Add([]byte("- top\n- level\n- sequence\n"))
	f.Add([]byte("steps:\n  - name: a\n    command: 'unterminated\n"))
	f.Add([]byte("steps: [inline]\n"))
	f.Fuzz(func(t *testing.T, src []byte) {
		w, err := DecodeWorkflow(src)
		if err != nil {
			return
		}
		// Anything the decoder admits must be internally consistent.
		if err := w.Validate(); err != nil {
			t.Fatalf("decoded workflow fails Validate: %v", err)
		}
		if _, err := w.Compile(); err != nil {
			t.Fatalf("validated workflow fails Compile: %v", err)
		}
	})
}
