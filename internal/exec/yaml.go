package exec

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// This file is a hand-written decoder for the YAML subset the workflow
// schema needs — block maps, block and flow sequences, quoted and plain
// scalars, comments. The module deliberately has zero dependencies, so a
// full YAML implementation is not an option; restricting the grammar also
// restricts the attack surface (no anchors, aliases, tags, multi-line
// scalars, or merge keys). DecodeWorkflow must never panic on any input —
// FuzzDecodeWorkflow holds it to that.

// maxYAMLLines bounds accepted definitions (a 10k-step workflow is ~60k
// lines); anything larger is rejected before parsing.
const maxYAMLLines = 1 << 20

// yamlError is a parse/shape error carrying the 1-based source line.
type yamlError struct {
	line int
	msg  string
}

func (e *yamlError) Error() string {
	return fmt.Sprintf("exec: yaml line %d: %s", e.line, e.msg)
}

func yerrf(line int, format string, args ...any) error {
	return &yamlError{line: line, msg: fmt.Sprintf(format, args...)}
}

// yNode is one parsed YAML value: exactly one of scalar, list, or map.
type yNode struct {
	line   int
	kind   byte // 's' scalar, 'l' list, 'm' map
	scalar string
	list   []*yNode
	keys   []string // map keys in source order
	vals   []*yNode
}

func (n *yNode) get(key string) *yNode {
	for i, k := range n.keys {
		if k == key {
			return n.vals[i]
		}
	}
	return nil
}

// yLine is one significant source line after comment stripping.
type yLine struct {
	num     int    // 1-based source line
	indent  int    // leading spaces
	content string // trimmed payload
}

// splitLines strips comments (respecting quotes) and blanks, rejecting
// tab indentation, and returns the significant lines.
func splitLines(src string) ([]yLine, error) {
	raw := strings.Split(src, "\n")
	if len(raw) > maxYAMLLines {
		return nil, yerrf(maxYAMLLines, "definition exceeds %d lines", maxYAMLLines)
	}
	var out []yLine
	for i, l := range raw {
		l = strings.TrimSuffix(l, "\r")
		indent := 0
		for indent < len(l) && l[indent] == ' ' {
			indent++
		}
		if indent < len(l) && l[indent] == '\t' {
			return nil, yerrf(i+1, "tab indentation is not allowed")
		}
		content := strings.TrimRight(stripComment(l[indent:]), " ")
		if content == "" {
			continue
		}
		out = append(out, yLine{num: i + 1, indent: indent, content: content})
	}
	return out, nil
}

// stripComment removes a trailing "#..." comment, honouring quotes.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if quote == '"' && c == '\\' {
				i++ // skip the escaped char
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parser walks the significant lines once, recursively by indentation.
type parser struct {
	lines []yLine
	pos   int
}

// parseValue parses the block value whose first line is at p.pos with the
// given indent.
func (p *parser) parseValue(indent int) (*yNode, error) {
	if p.pos >= len(p.lines) {
		return nil, yerrf(0, "unexpected end of input")
	}
	if strings.HasPrefix(p.lines[p.pos].content, "- ") || p.lines[p.pos].content == "-" {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

// parseList consumes "- item" lines at exactly this indent.
func (p *parser) parseList(indent int) (*yNode, error) {
	n := &yNode{line: p.lines[p.pos].num, kind: 'l'}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || !(strings.HasPrefix(l.content, "- ") || l.content == "-") {
			if l.indent > indent {
				return nil, yerrf(l.num, "unexpected indentation inside sequence")
			}
			break
		}
		item := strings.TrimPrefix(strings.TrimPrefix(l.content, "-"), " ")
		switch {
		case item == "":
			// The item is the nested block on the following lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, yerrf(l.num, "empty sequence item")
			}
			child, err := p.parseValue(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			n.list = append(n.list, child)
		case isMapEntry(item):
			// "- key: value": the dash introduces a map whose first entry
			// shares the line. Re-point the line at the entry (virtually
			// indented past the dash) and parse a map from there.
			p.lines[p.pos] = yLine{num: l.num, indent: indent + 2, content: item}
			child, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			n.list = append(n.list, child)
		default:
			sc, err := parseScalar(item, l.num)
			if err != nil {
				return nil, err
			}
			n.list = append(n.list, sc)
			p.pos++
		}
	}
	return n, nil
}

// parseMap consumes "key: value" / "key:" lines at exactly this indent.
func (p *parser) parseMap(indent int) (*yNode, error) {
	n := &yNode{line: p.lines[p.pos].num, kind: 'm'}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, yerrf(l.num, "unexpected indentation")
			}
			break
		}
		if strings.HasPrefix(l.content, "- ") || l.content == "-" {
			return nil, yerrf(l.num, "sequence item in mapping context")
		}
		key, rest, ok := splitKey(l.content)
		if !ok {
			return nil, yerrf(l.num, "expected \"key: value\", got %q", l.content)
		}
		if n.get(key) != nil {
			return nil, yerrf(l.num, "duplicate key %q", key)
		}
		var val *yNode
		if rest != "" {
			sc, err := parseScalar(rest, l.num)
			if err != nil {
				return nil, err
			}
			val = sc
			p.pos++
		} else {
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				child, err := p.parseValue(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				val = child
			} else {
				val = &yNode{line: l.num, kind: 's'} // empty value
			}
		}
		n.keys = append(n.keys, key)
		n.vals = append(n.vals, val)
	}
	return n, nil
}

// isMapEntry reports whether a sequence item opens an inline map entry.
func isMapEntry(item string) bool {
	_, _, ok := splitKey(item)
	return ok
}

// splitKey splits "key: rest" (or "key:") at the first colon. Keys are
// bare identifiers — the schema has no quoted or spaced keys — which keeps
// colons inside commands unambiguous: "command: echo a: b" splits at the
// first colon only.
func splitKey(s string) (key, rest string, ok bool) {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return "", "", false
	}
	key = s[:i]
	for j := 0; j < len(key); j++ {
		c := key[j]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-') {
			return "", "", false
		}
	}
	rest = s[i+1:]
	if rest != "" {
		if rest[0] != ' ' {
			return "", "", false
		}
		rest = strings.TrimLeft(rest, " ")
	}
	return key, rest, true
}

// parseScalar parses an inline value: a flow sequence "[a, b]", a quoted
// string, or a plain scalar.
func parseScalar(s string, line int) (*yNode, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, yerrf(line, "unterminated flow sequence %q", s)
		}
		n := &yNode{line: line, kind: 'l'}
		body := strings.TrimSpace(s[1 : len(s)-1])
		if body == "" {
			return n, nil
		}
		for _, part := range splitFlow(body) {
			part = strings.TrimSpace(part)
			if part == "" {
				return nil, yerrf(line, "empty element in flow sequence %q", s)
			}
			item, err := parseScalar(part, line)
			if err != nil {
				return nil, err
			}
			if item.kind != 's' {
				return nil, yerrf(line, "nested flow sequences are not supported")
			}
			n.list = append(n.list, item)
		}
		return n, nil
	}
	v, err := unquote(s, line)
	if err != nil {
		return nil, err
	}
	return &yNode{line: line, kind: 's', scalar: v}, nil
}

// splitFlow splits a flow-sequence body on commas outside quotes.
func splitFlow(s string) []string {
	var parts []string
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if quote == '"' && c == '\\' {
				i++
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ',':
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	return append(parts, s[start:])
}

// unquote resolves single- and double-quoted scalars (minimal escapes:
// \" and \\ in double quotes, ” in single quotes); plain scalars pass
// through trimmed.
func unquote(s string, line int) (string, error) {
	if len(s) >= 2 && s[0] == '"' {
		if s[len(s)-1] != '"' || len(s) < 2 {
			return "", yerrf(line, "unterminated double-quoted scalar %q", s)
		}
		var b strings.Builder
		body := s[1 : len(s)-1]
		for i := 0; i < len(body); i++ {
			if body[i] == '\\' {
				i++
				if i >= len(body) {
					return "", yerrf(line, "dangling escape in %q", s)
				}
				switch body[i] {
				case '"', '\\':
					b.WriteByte(body[i])
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					return "", yerrf(line, "unsupported escape \\%c in %q", body[i], s)
				}
				continue
			}
			if body[i] == '"' {
				return "", yerrf(line, "unescaped quote inside %q", s)
			}
			b.WriteByte(body[i])
		}
		return b.String(), nil
	}
	if len(s) >= 2 && s[0] == '\'' {
		if s[len(s)-1] != '\'' {
			return "", yerrf(line, "unterminated single-quoted scalar %q", s)
		}
		body := s[1 : len(s)-1]
		// '' is the only escape; a lone ' is malformed.
		var b strings.Builder
		for i := 0; i < len(body); i++ {
			if body[i] == '\'' {
				if i+1 >= len(body) || body[i+1] != '\'' {
					return "", yerrf(line, "unescaped quote inside %q", s)
				}
				i++
			}
			b.WriteByte(body[i])
		}
		return b.String(), nil
	}
	return s, nil
}

// DecodeWorkflow parses a YAML workflow definition and validates it. The
// accepted schema:
//
//	name: demo            # optional
//	procs: 2              # optional, default 2
//	drift: 1.5            # optional re-plan threshold, default 1.5
//	steps:
//	  - name: prep
//	    command: make inputs
//	  - name: train
//	    command: ./train.sh
//	    depends: [prep]   # or a block sequence
//	    cost: 120         # scalar seconds, or costs: [110, 180] per proc
//	    timeout: 10m
//	    retries: 1
//	    env:
//	      - MODE=fast
//
// Malformed input — unknown keys, bad indentation, duplicate step names,
// unresolvable or cyclic dependencies — returns an error; no input panics.
func DecodeWorkflow(src []byte) (*Workflow, error) {
	lines, err := splitLines(string(src))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("exec: empty workflow definition")
	}
	if lines[0].indent != 0 {
		return nil, yerrf(lines[0].num, "top-level value must not be indented")
	}
	p := &parser{lines: lines}
	root, err := p.parseMap(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, yerrf(p.lines[p.pos].num, "unexpected content after top-level mapping")
	}
	w := &Workflow{Name: "workflow", Procs: 2}
	for i, key := range root.keys {
		val := root.vals[i]
		switch key {
		case "name":
			s, err := scalarOf(val, key)
			if err != nil {
				return nil, err
			}
			w.Name = s
		case "procs":
			n, err := intOf(val, key)
			if err != nil {
				return nil, err
			}
			w.Procs = n
		case "drift":
			f, err := floatOf(val, key)
			if err != nil {
				return nil, err
			}
			w.Drift = f
		case "steps":
			if val.kind != 'l' {
				return nil, yerrf(val.line, "steps must be a sequence")
			}
			for _, item := range val.list {
				st, err := decodeStep(item)
				if err != nil {
					return nil, err
				}
				w.Steps = append(w.Steps, *st)
			}
		default:
			return nil, yerrf(val.line, "unknown key %q", key)
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// decodeStep maps one steps[] entry.
func decodeStep(n *yNode) (*Step, error) {
	if n.kind != 'm' {
		return nil, yerrf(n.line, "each step must be a mapping")
	}
	st := &Step{}
	var cost, costs *yNode
	for i, key := range n.keys {
		val := n.vals[i]
		switch key {
		case "name":
			s, err := scalarOf(val, key)
			if err != nil {
				return nil, err
			}
			st.Name = s
		case "command":
			s, err := scalarOf(val, key)
			if err != nil {
				return nil, err
			}
			st.Command = s
		case "depends":
			list, err := stringsOf(val, key)
			if err != nil {
				return nil, err
			}
			st.Depends = list
		case "cost":
			cost = val
		case "costs":
			costs = val
		case "timeout":
			s, err := scalarOf(val, key)
			if err != nil {
				return nil, err
			}
			d, err := time.ParseDuration(s)
			if err != nil {
				return nil, yerrf(val.line, "bad timeout %q: %v", s, err)
			}
			st.Timeout = d
		case "retries":
			r, err := intOf(val, key)
			if err != nil {
				return nil, err
			}
			st.Retries = r
		case "env":
			list, err := stringsOf(val, key)
			if err != nil {
				return nil, err
			}
			st.Env = list
		default:
			return nil, yerrf(val.line, "unknown step key %q", key)
		}
	}
	if cost != nil && costs != nil {
		return nil, yerrf(cost.line, "step %q sets both cost and costs", st.Name)
	}
	if cost != nil {
		f, err := floatOf(cost, "cost")
		if err != nil {
			return nil, err
		}
		st.Costs = []float64{f}
	}
	if costs != nil {
		if costs.kind != 'l' {
			return nil, yerrf(costs.line, "costs must be a sequence")
		}
		for _, item := range costs.list {
			f, err := floatOf(item, "costs")
			if err != nil {
				return nil, err
			}
			st.Costs = append(st.Costs, f)
		}
	}
	return st, nil
}

// scalarOf asserts a non-empty scalar value.
func scalarOf(n *yNode, key string) (string, error) {
	if n.kind != 's' || n.scalar == "" {
		return "", yerrf(n.line, "%s must be a non-empty scalar", key)
	}
	return n.scalar, nil
}

// intOf parses a scalar integer.
func intOf(n *yNode, key string) (int, error) {
	s, err := scalarOf(n, key)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, yerrf(n.line, "%s: bad integer %q", key, s)
	}
	return v, nil
}

// floatOf parses a scalar float.
func floatOf(n *yNode, key string) (float64, error) {
	s, err := scalarOf(n, key)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, yerrf(n.line, "%s: bad number %q", key, s)
	}
	return v, nil
}

// stringsOf accepts a sequence of scalars (flow or block form) — or a
// single scalar, treated as a one-element list.
func stringsOf(n *yNode, key string) ([]string, error) {
	switch n.kind {
	case 's':
		if n.scalar == "" {
			return nil, nil
		}
		return []string{n.scalar}, nil
	case 'l':
		out := make([]string, 0, len(n.list))
		for _, item := range n.list {
			if item.kind != 's' || item.scalar == "" {
				return nil, yerrf(item.line, "%s entries must be non-empty scalars", key)
			}
			out = append(out, item.scalar)
		}
		return out, nil
	default:
		return nil, yerrf(n.line, "%s must be a sequence", key)
	}
}
