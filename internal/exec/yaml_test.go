package exec

import (
	"strings"
	"testing"
	"time"
)

const demoYAML = `# demo pipeline
name: demo
procs: 2
drift: 2.0
steps:
  - name: prep
    command: "echo prep: inputs"   # colon inside quoted command
    cost: 0.5
  - name: train
    command: ./train.sh --fast
    depends: [prep]
    costs: [1.5, 2.5]
    timeout: 10m
    retries: 1
    env:
      - MODE=fast
      - SEED=42
  - name: eval
    command: 'echo it''s done'
    depends:
      - prep
      - train
`

func TestDecodeWorkflow(t *testing.T) {
	w, err := DecodeWorkflow([]byte(demoYAML))
	if err != nil {
		t.Fatalf("DecodeWorkflow: %v", err)
	}
	if w.Name != "demo" || w.Procs != 2 || w.Drift != 2.0 {
		t.Fatalf("header = %q/%d/%g, want demo/2/2", w.Name, w.Procs, w.Drift)
	}
	if len(w.Steps) != 3 {
		t.Fatalf("got %d steps, want 3", len(w.Steps))
	}
	prep, train, eval := w.Steps[0], w.Steps[1], w.Steps[2]
	if prep.Command != "echo prep: inputs" {
		t.Errorf("prep command = %q", prep.Command)
	}
	if len(prep.Costs) != 1 || prep.Costs[0] != 0.5 {
		t.Errorf("prep costs = %v, want [0.5]", prep.Costs)
	}
	if got := train.Depends; len(got) != 1 || got[0] != "prep" {
		t.Errorf("train depends = %v", got)
	}
	if len(train.Costs) != 2 || train.Costs[0] != 1.5 || train.Costs[1] != 2.5 {
		t.Errorf("train costs = %v", train.Costs)
	}
	if train.Timeout != 10*time.Minute || train.Retries != 1 {
		t.Errorf("train timeout/retries = %v/%d", train.Timeout, train.Retries)
	}
	if len(train.Env) != 2 || train.Env[0] != "MODE=fast" || train.Env[1] != "SEED=42" {
		t.Errorf("train env = %v", train.Env)
	}
	if eval.Command != "echo it's done" {
		t.Errorf("eval command = %q", eval.Command)
	}
	if len(eval.Depends) != 2 {
		t.Errorf("eval depends = %v", eval.Depends)
	}
}

func TestDecodeWorkflowDefaults(t *testing.T) {
	w, err := DecodeWorkflow([]byte("steps:\n  - name: a\n    command: true\n"))
	if err != nil {
		t.Fatalf("DecodeWorkflow: %v", err)
	}
	if w.Name != "workflow" || w.Procs != 2 || w.DriftThreshold() != DefaultDrift {
		t.Fatalf("defaults = %q/%d/%g", w.Name, w.Procs, w.DriftThreshold())
	}
	row := w.Steps[0].CostRow(2)
	if row[0] != defaultCost || row[1] != defaultCost {
		t.Fatalf("default cost row = %v", row)
	}
}

func TestDecodeWorkflowErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"empty", "", "empty workflow"},
		{"no steps", "name: x\n", "no steps"},
		{"tab indent", "steps:\n\t- name: a\n", "tab indentation"},
		{"unknown key", "bogus: 1\nsteps:\n  - name: a\n    command: true\n", "unknown key"},
		{"unknown step key", "steps:\n  - name: a\n    command: true\n    nope: 1\n", "unknown step key"},
		{"duplicate key", "procs: 2\nprocs: 3\nsteps:\n  - name: a\n    command: true\n", "duplicate key"},
		{"duplicate step", "steps:\n  - name: a\n    command: true\n  - name: a\n    command: true\n", "duplicate step name"},
		{"missing command", "steps:\n  - name: a\n", "no command"},
		{"bad name", "steps:\n  - name: \"a b\"\n    command: true\n", "invalid name"},
		{"unknown dep", "steps:\n  - name: a\n    command: true\n    depends: [zz]\n", "unknown step"},
		{"self dep", "steps:\n  - name: a\n    command: true\n    depends: [a]\n", "depends on itself"},
		{"cycle", "steps:\n  - name: a\n    command: true\n    depends: [b]\n  - name: b\n    command: true\n    depends: [a]\n", "cycle"},
		{"both cost keys", "steps:\n  - name: a\n    command: true\n    cost: 1\n    costs: [1, 2]\n", "both cost and costs"},
		{"costs arity", "procs: 3\nsteps:\n  - name: a\n    command: true\n    costs: [1, 2]\n", "cost entries"},
		{"negative cost", "steps:\n  - name: a\n    command: true\n    cost: -1\n", "invalid cost"},
		{"bad drift", "drift: 0.5\nsteps:\n  - name: a\n    command: true\n", "drift"},
		{"bad timeout", "steps:\n  - name: a\n    command: true\n    timeout: soon\n", "bad timeout"},
		{"bad retries", "steps:\n  - name: a\n    command: true\n    retries: many\n", "bad integer"},
		{"bad env", "steps:\n  - name: a\n    command: true\n    env: [FOO]\n", "env"},
		{"bad procs", "procs: 0\nsteps:\n  - name: a\n    command: true\n", "procs"},
		{"unterminated flow", "steps:\n  - name: a\n    command: true\n    depends: [b\n", "unterminated"},
		{"unterminated quote", "steps:\n  - name: a\n    command: \"oops\n", "unterminated"},
		{"seq at map level", "steps:\n  - name: a\n    command: true\n- stray\n", "sequence item in mapping"},
		{"indented root", "  name: x\n", "must not be indented"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeWorkflow([]byte(tc.src))
			if err == nil {
				t.Fatalf("decoded without error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestStripComment(t *testing.T) {
	cases := [][2]string{
		{"echo hi # comment", "echo hi"},
		{"echo '#not'", "echo '#not'"},
		{`echo "#not" # yes`, `echo "#not"`},
		{"echo a#b", "echo a#b"}, // mid-word # is not a comment
		{"# whole line", ""},
	}
	for _, c := range cases {
		if got := strings.TrimRight(stripComment(c[0]), " "); got != c[1] {
			t.Errorf("stripComment(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestCompileShapes(t *testing.T) {
	w, err := DecodeWorkflow([]byte(demoYAML))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := w.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if pr.NumTasks() != 3 || pr.NumProcs() != 2 {
		t.Fatalf("problem shape %dx%d, want 3x2", pr.NumTasks(), pr.NumProcs())
	}
	// Scalar cost broadcasts; per-proc row survives as declared.
	if got := pr.Exec(0, 0); got != 0.5 {
		t.Errorf("W[prep][0] = %g, want 0.5", got)
	}
	if got := pr.Exec(1, 1); got != 2.5 {
		t.Errorf("W[train][1] = %g, want 2.5", got)
	}
}
