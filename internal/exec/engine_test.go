package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hdlts/internal/obs"
)

// fakeRunner executes steps as timed sleeps (per-step durations in
// milliseconds) and counts executions, giving the engine tests
// deterministic "observed" durations without shelling out.
type fakeRunner struct {
	mu    sync.Mutex
	sleep map[string]time.Duration
	fail  map[string]int // remaining attempts that should fail
	runs  map[string]int
}

func newFakeRunner() *fakeRunner {
	return &fakeRunner{
		sleep: make(map[string]time.Duration),
		fail:  make(map[string]int),
		runs:  make(map[string]int),
	}
}

func (fr *fakeRunner) run(ctx context.Context, step Step) error {
	fr.mu.Lock()
	fr.runs[step.Name]++
	d := fr.sleep[step.Name]
	failing := fr.fail[step.Name] > 0
	if failing {
		fr.fail[step.Name]--
	}
	fr.mu.Unlock()
	if d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if failing {
		return errors.New("injected failure")
	}
	return nil
}

func (fr *fakeRunner) count(step string) int {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.runs[step]
}

func testEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.OverdueTick == 0 {
		cfg.OverdueTick = 5 * time.Millisecond
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return e
}

func waitDone(t *testing.T, e *Engine, id string) *Record {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rec, err := e.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return rec
}

func TestEngineRunsWorkflow(t *testing.T) {
	fr := newFakeRunner()
	fr.sleep["a"] = 10 * time.Millisecond
	reg := obs.NewRegistry()
	e := testEngine(t, Config{Metrics: reg, Runner: fr.run})
	wf := &Workflow{
		Procs: 2,
		Steps: []Step{
			{Name: "a", Command: "true", Costs: []float64{0.01}},
			{Name: "b", Command: "true", Depends: []string{"a"}, Costs: []float64{0.01}},
			{Name: "c", Command: "true", Depends: []string{"a"}, Costs: []float64{0.01}},
		},
	}
	rec, err := e.Submit(context.Background(), wf)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if rec.State != Queued || len(rec.Steps) != 3 {
		t.Fatalf("admission snapshot = %v / %d steps", rec.State, len(rec.Steps))
	}
	final := waitDone(t, e, rec.ID)
	if final.State != Done {
		t.Fatalf("state = %v (error %q), want done", final.State, final.Error)
	}
	if len(final.ObservedW) != 3 {
		t.Fatalf("observed W entries = %d, want 3", len(final.ObservedW))
	}
	for _, st := range final.Steps {
		if st.State != StepDone || st.Attempts != 1 {
			t.Errorf("step %s: state %v attempts %d", st.Name, st.State, st.Attempts)
		}
		if st.ObservedSeconds < 0 {
			t.Errorf("step %s: negative observed duration", st.Name)
		}
	}
	if final.MakespanSeconds <= 0 {
		t.Errorf("makespan = %g, want > 0", final.MakespanSeconds)
	}
	if fr.count("a") != 1 || fr.count("b") != 1 || fr.count("c") != 1 {
		t.Errorf("execution counts: %v", fr.runs)
	}
	if v := reg.Counter(metricWorkflowSteps, "state", "done").Value(); v != 3 {
		t.Errorf("done counter = %v, want 3", v)
	}
	// b and c depend on a: they must have started after a finished.
	a := final.Steps[0]
	for _, st := range final.Steps[1:] {
		if st.StartedAt.Before(a.FinishedAt) {
			t.Errorf("step %s started %v before dependency a finished %v",
				st.Name, st.StartedAt, a.FinishedAt)
		}
	}
}

// TestEngineReplansOnDrift is the acceptance scenario: a step that runs
// far past its estimate must trigger live ITQ recomputation that moves
// queued work off the stalled processor, under the submitting trace ID.
func TestEngineReplansOnDrift(t *testing.T) {
	yaml := `name: drifty
procs: 2
steps:
  - name: prep
    command: sleep 0.03
    cost: 0.03
  - name: s1
    command: sleep 0.25
    depends: [prep]
    costs: [0.04, 0.06]
  - name: s2
    command: sleep 0.05
    depends: [prep]
    costs: [0.04, 0.06]
  - name: s3
    command: sleep 0.05
    depends: [prep]
    costs: [0.04, 0.06]
  - name: s4
    command: sleep 0.05
    depends: [prep]
    costs: [0.04, 0.06]
`
	wf, err := DecodeWorkflow([]byte(yaml))
	if err != nil {
		t.Fatalf("DecodeWorkflow: %v", err)
	}
	// The fake runner sleeps the declared durations exactly; s1's estimate
	// (0.04s on P0) is ~6x under its real 0.25s.
	fr := newFakeRunner()
	for _, st := range wf.Steps {
		var s float64
		fmt.Sscanf(st.Command, "sleep %g", &s)
		fr.sleep[st.Name] = time.Duration(s * float64(time.Second))
	}
	reg := obs.NewRegistry()
	ts := obs.NewTraceStore(16, 1)
	e := testEngine(t, Config{Dir: t.TempDir(), Metrics: reg, Traces: ts, Runner: fr.run})

	const traceID = "trace-drift-e2e"
	ts.Start(traceID)
	ctx := obs.WithTraceStore(obs.WithTraceID(context.Background(), traceID), ts)
	rec, err := e.Submit(ctx, wf)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// The initial HDLTS plan must queue at least one of s2..s4 behind the
	// (soon to be slow) s1 on the same processor — that is the head-of-line
	// blocking the re-plan is supposed to resolve.
	sameAsS1 := 0
	for _, st := range rec.Steps[2:] {
		if st.PlannedProc == rec.Steps[1].PlannedProc {
			sameAsS1++
		}
	}
	if sameAsS1 == 0 {
		t.Fatalf("degenerate plan: nothing shares a processor with s1: %+v", rec.Steps)
	}

	final := waitDone(t, e, rec.ID)
	if final.State != Done {
		t.Fatalf("state = %v (error %q), want done", final.State, final.Error)
	}
	if final.Replans < 1 {
		t.Fatalf("replans = %d, want >= 1", final.Replans)
	}
	moved := 0
	for _, st := range final.Steps {
		if st.Proc != st.PlannedProc {
			moved++
		}
	}
	if moved == 0 {
		t.Fatalf("no step moved off its planned processor despite %d replans: %+v",
			final.Replans, final.Steps)
	}
	if len(final.ObservedW) != len(wf.Steps) {
		t.Fatalf("observed W entries = %d, want %d", len(final.ObservedW), len(wf.Steps))
	}
	for _, w := range final.ObservedW {
		if w.Seconds <= 0 {
			t.Errorf("observed W[%s][%d] = %g, want > 0", w.Step, w.Proc, w.Seconds)
		}
	}
	if v := reg.Counter(metricWorkflowReplans).Value(); v < 1 {
		t.Errorf("replan counter = %v, want >= 1", v)
	}

	// The trace must hold both the plan and the execution: a workflow.plan
	// span, step.run spans, and at least one EvReplan decision event
	// stamped by the executor.
	tr, ok := ts.Get(traceID)
	if !ok {
		t.Fatalf("trace %q not in store", traceID)
	}
	spans := map[string]int{}
	for _, sp := range tr.Spans {
		spans[sp.Name]++
	}
	if spans["workflow.plan"] != 1 {
		t.Errorf("workflow.plan spans = %d, want 1", spans["workflow.plan"])
	}
	if spans["workflow.run"] != 1 {
		t.Errorf("workflow.run spans = %d, want 1", spans["workflow.run"])
	}
	if spans["step.run"] < len(wf.Steps) {
		t.Errorf("step.run spans = %d, want >= %d", spans["step.run"], len(wf.Steps))
	}
	if spans["workflow.replan"] < 1 {
		t.Errorf("workflow.replan spans = %d, want >= 1", spans["workflow.replan"])
	}
	execReplans := 0
	for _, ev := range tr.Events {
		if ev.Type == obs.EvReplan && ev.Alg == "exec" {
			execReplans++
		}
	}
	if execReplans < 1 {
		t.Errorf("EvReplan(alg=exec) events = %d, want >= 1", execReplans)
	}
}

func TestEngineRetries(t *testing.T) {
	fr := newFakeRunner()
	fr.fail["flaky"] = 2
	reg := obs.NewRegistry()
	e := testEngine(t, Config{Metrics: reg, Runner: fr.run})
	wf := &Workflow{
		Procs: 1,
		Steps: []Step{{Name: "flaky", Command: "true", Retries: 2, Costs: []float64{0.01}}},
	}
	rec, err := e.Submit(context.Background(), wf)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitDone(t, e, rec.ID)
	if final.State != Done {
		t.Fatalf("state = %v (error %q), want done", final.State, final.Error)
	}
	if got := final.Steps[0].Attempts; got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if fr.count("flaky") != 3 {
		t.Errorf("executions = %d, want 3", fr.count("flaky"))
	}
	if v := reg.Counter(metricWorkflowSteps, "state", "retried").Value(); v != 2 {
		t.Errorf("retried counter = %v, want 2", v)
	}
}

func TestEngineFailure(t *testing.T) {
	fr := newFakeRunner()
	fr.fail["bad"] = 1
	e := testEngine(t, Config{Runner: fr.run})
	wf := &Workflow{
		Procs: 1,
		Steps: []Step{
			{Name: "bad", Command: "false", Costs: []float64{0.01}},
			{Name: "after", Command: "true", Depends: []string{"bad"}, Costs: []float64{0.01}},
		},
	}
	rec, err := e.Submit(context.Background(), wf)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitDone(t, e, rec.ID)
	if final.State != Failed {
		t.Fatalf("state = %v, want failed", final.State)
	}
	if !strings.Contains(final.Error, "injected failure") {
		t.Errorf("workflow error = %q", final.Error)
	}
	if final.Steps[0].State != StepFailed {
		t.Errorf("failed step state = %v", final.Steps[0].State)
	}
	if final.Steps[1].State != StepPending {
		t.Errorf("dependent step state = %v, want pending (never dispatched)", final.Steps[1].State)
	}
	if fr.count("after") != 0 {
		t.Errorf("dependent step executed %d times after failure", fr.count("after"))
	}
}

func TestEngineCancel(t *testing.T) {
	fr := newFakeRunner()
	fr.sleep["slow"] = time.Minute
	e := testEngine(t, Config{Runner: fr.run})
	wf := &Workflow{
		Procs: 1,
		Steps: []Step{{Name: "slow", Command: "sleep 60", Costs: []float64{60}}},
	}
	rec, err := e.Submit(context.Background(), wf)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := e.Get(rec.ID)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if r.Steps[0].State == StepRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("step never started: %+v", r.Steps[0])
		}
		time.Sleep(time.Millisecond)
	}
	final, err := e.Cancel(rec.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if final.State != Cancelled {
		t.Fatalf("state = %v, want cancelled", final.State)
	}
	if final.Steps[0].State != StepFailed || final.Steps[0].Error != "cancelled" {
		t.Errorf("step after cancel = %+v", final.Steps[0])
	}
	if _, err := e.Cancel(rec.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("second Cancel error = %v, want ErrFinished", err)
	}
}

func TestEngineStepTimeout(t *testing.T) {
	fr := newFakeRunner()
	fr.sleep["slow"] = time.Minute
	e := testEngine(t, Config{Runner: fr.run})
	wf := &Workflow{
		Procs: 1,
		Steps: []Step{{Name: "slow", Command: "sleep 60",
			Timeout: 30 * time.Millisecond, Costs: []float64{0.01}}},
	}
	rec, err := e.Submit(context.Background(), wf)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final := waitDone(t, e, rec.ID)
	if final.State != Failed {
		t.Fatalf("state = %v, want failed (timeout)", final.State)
	}
	if !strings.Contains(final.Error, "deadline") {
		t.Errorf("error = %q, want a deadline error", final.Error)
	}
}

func TestEngineAPIErrors(t *testing.T) {
	e := testEngine(t, Config{Runner: newFakeRunner().run})
	if _, err := e.Get("wf-none"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get unknown = %v, want ErrNotFound", err)
	}
	if _, err := e.Cancel("wf-none"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel unknown = %v, want ErrNotFound", err)
	}
	if _, err := e.Wait(context.Background(), "wf-none"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Wait unknown = %v, want ErrNotFound", err)
	}
	bad := &Workflow{Procs: 1, Steps: []Step{{Name: "a", Command: "true", Depends: []string{"zz"}}}}
	if _, err := e.Submit(context.Background(), bad); err == nil {
		t.Errorf("Submit of invalid workflow succeeded")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	ok := &Workflow{Procs: 1, Steps: []Step{{Name: "a", Command: "true"}}}
	if _, err := e.Submit(context.Background(), ok); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestEngineSaturation: a full engine refuses new submissions with
// ErrSaturated — before persisting anything — and admits again once a
// run loop exits and returns its slot.
func TestEngineSaturation(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 4)
	runner := func(ctx context.Context, step Step) error {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	e := testEngine(t, Config{Runner: runner, MaxActive: 1})
	wf := &Workflow{
		Procs: 1,
		Steps: []Step{{Name: "a", Command: "true", Costs: []float64{0.01}}},
	}
	first, err := e.Submit(context.Background(), wf)
	if err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	<-started // the only slot is now occupied
	if _, err := e.Submit(context.Background(), wf); !errors.Is(err, ErrSaturated) {
		t.Fatalf("second Submit = %v, want ErrSaturated", err)
	}
	// The refused submission must leave no record behind.
	if got := len(e.List()); got != 1 {
		t.Fatalf("records after refusal = %d, want 1", got)
	}
	close(release)
	waitDone(t, e, first.ID)
	// Wait observes the terminal record a hair before the run loop's
	// deferred slot release runs; poll until admission reopens.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := e.Submit(context.Background(), wf)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrSaturated) {
			t.Fatalf("Submit after drain = %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot was never returned after the first run finished")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestEngineList(t *testing.T) {
	e := testEngine(t, Config{Runner: newFakeRunner().run})
	var ids []string
	for i := 0; i < 3; i++ {
		wf := &Workflow{Procs: 1, Steps: []Step{{Name: "a", Command: "true", Costs: []float64{0.001}}}}
		rec, err := e.Submit(context.Background(), wf)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, rec.ID)
		waitDone(t, e, rec.ID)
	}
	list := e.List()
	if len(list) != 3 {
		t.Fatalf("List returned %d records, want 3", len(list))
	}
	for i, r := range list {
		if want := ids[len(ids)-1-i]; r.ID != want {
			t.Errorf("List[%d] = %s, want %s (newest first)", i, r.ID, want)
		}
	}
}

func TestRunShell(t *testing.T) {
	if err := RunShell(context.Background(), Step{Name: "ok", Command: "true"}); err != nil {
		t.Errorf("RunShell(true) = %v", err)
	}
	err := RunShell(context.Background(), Step{Name: "bad", Command: "echo whoops >&2; exit 3"})
	if err == nil || !strings.Contains(err.Error(), "whoops") {
		t.Errorf("RunShell(exit 3) = %v, want output tail in error", err)
	}
	err = RunShell(context.Background(), Step{Name: "env", Command: `test "$MODE" = fast`, Env: []string{"MODE=fast"}})
	if err != nil {
		t.Errorf("RunShell env passthrough = %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = RunShell(ctx, Step{Name: "slow", Command: "sleep 10"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("RunShell under expired ctx = %v, want deadline error", err)
	}
}
