// Package exec is the live workflow execution engine: the layer that turns
// this repository from a planner into a runner. A declarative YAML
// workflow definition (named steps, shell commands, dependencies, per-step
// timeout/retry/env) is compiled onto the existing scheduling model — a
// dag.Graph plus an estimated W cost matrix over a uniform platform —
// planned with HDLTS, and then actually executed: step commands run under
// a bounded one-slot-per-processor runner, state transitions stream
// through the same WAL mechanics and span infrastructure as the job
// subsystem, and measured step durations feed back as observed W-matrix
// entries. When an observation drifts past the workflow's threshold
// (observed/estimated ratio, or a running step overshooting its estimate),
// the engine re-runs the paper's ITQ decision rule over the
// not-yet-dispatched frontier and re-maps the remainder mid-run — the
// genuinely *dynamic* path the paper's title promises.
package exec

import (
	"fmt"
	"math"
	"time"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// Limits on accepted workflow definitions: large enough for any realistic
// hand-written or dagen-generated workflow, small enough that a hostile
// definition cannot balloon the compiled problem.
const (
	maxSteps    = 10000
	maxProcs    = 256
	maxNameLen  = 64
	maxDeps     = 1024
	defaultCost = 1.0 // seconds, when a step declares no cost
)

// DefaultDrift is the re-plan threshold when the definition omits one: a
// step observed beyond 1.5× (or under 1/1.5×) its estimate triggers ITQ
// recomputation over the un-dispatched frontier.
const DefaultDrift = 1.5

// Step is one named unit of work in a workflow definition.
type Step struct {
	// Name identifies the step ([A-Za-z0-9._-], unique per workflow).
	Name string `json:"name"`
	// Command is the shell command the runner executes (via sh -c).
	Command string `json:"command"`
	// Depends lists step names that must complete first.
	Depends []string `json:"depends,omitempty"`
	// Costs is the estimated execution time in seconds per processor (the
	// step's W-matrix row). A single entry — or the scalar `cost:` key in
	// YAML — applies uniformly; nil means defaultCost everywhere.
	Costs []float64 `json:"costs,omitempty"`
	// Timeout bounds one execution attempt; 0 means no limit.
	Timeout time.Duration `json:"timeout,omitempty"`
	// Retries is how many times a failed attempt is retried (so the step
	// runs at most Retries+1 times).
	Retries int `json:"retries,omitempty"`
	// Env is extra KEY=VALUE pairs appended to the runner environment.
	Env []string `json:"env,omitempty"`
}

// Workflow is a declarative workflow definition: what to run, in what
// dependency order, with what estimated costs on how many processors.
type Workflow struct {
	// Name labels the workflow (defaults to "workflow").
	Name string `json:"name"`
	// Procs is the number of processor slots commands may occupy
	// concurrently (default 2).
	Procs int `json:"procs"`
	// Drift is the re-plan threshold ratio (> 1, default DefaultDrift).
	Drift float64 `json:"drift,omitempty"`
	// Steps in definition order; the index is the dag.TaskID.
	Steps []Step `json:"steps"`
}

// validName reports whether a step/workflow name is safe to appear in
// metrics labels, span attributes, and log lines.
func validName(s string) bool {
	if s == "" || len(s) > maxNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// Validate checks the definition shape: bounds, name hygiene, resolvable
// acyclic dependencies, finite non-negative costs. Compile re-checks the
// graph, but Validate gives decode-time errors their step context.
func (w *Workflow) Validate() error {
	if w.Name != "" && !validName(w.Name) {
		return fmt.Errorf("exec: invalid workflow name %q", w.Name)
	}
	if w.Procs < 1 || w.Procs > maxProcs {
		return fmt.Errorf("exec: procs %d outside 1..%d", w.Procs, maxProcs)
	}
	if w.Drift != 0 && !(w.Drift > 1) || math.IsInf(w.Drift, 0) || math.IsNaN(w.Drift) {
		return fmt.Errorf("exec: drift threshold %g must be > 1", w.Drift)
	}
	if len(w.Steps) == 0 {
		return fmt.Errorf("exec: workflow has no steps")
	}
	if len(w.Steps) > maxSteps {
		return fmt.Errorf("exec: %d steps exceeds the %d-step limit", len(w.Steps), maxSteps)
	}
	index := make(map[string]int, len(w.Steps))
	for i, st := range w.Steps {
		if !validName(st.Name) {
			return fmt.Errorf("exec: step %d: invalid name %q", i, st.Name)
		}
		if _, dup := index[st.Name]; dup {
			return fmt.Errorf("exec: duplicate step name %q", st.Name)
		}
		index[st.Name] = i
		if st.Command == "" {
			return fmt.Errorf("exec: step %q has no command", st.Name)
		}
		if len(st.Depends) > maxDeps {
			return fmt.Errorf("exec: step %q has %d dependencies (limit %d)", st.Name, len(st.Depends), maxDeps)
		}
		if len(st.Costs) > 1 && len(st.Costs) != w.Procs {
			return fmt.Errorf("exec: step %q has %d cost entries, want 1 or %d", st.Name, len(st.Costs), w.Procs)
		}
		for _, c := range st.Costs {
			if c < 0 || math.IsInf(c, 0) || math.IsNaN(c) {
				return fmt.Errorf("exec: step %q has invalid cost %g", st.Name, c)
			}
		}
		if st.Timeout < 0 {
			return fmt.Errorf("exec: step %q has negative timeout", st.Name)
		}
		if st.Retries < 0 || st.Retries > 100 {
			return fmt.Errorf("exec: step %q retries %d outside 0..100", st.Name, st.Retries)
		}
		for _, e := range st.Env {
			if !validEnv(e) {
				return fmt.Errorf("exec: step %q has malformed env entry %q (want KEY=VALUE)", st.Name, e)
			}
		}
	}
	for _, st := range w.Steps {
		seen := make(map[string]bool, len(st.Depends))
		for _, d := range st.Depends {
			if d == st.Name {
				return fmt.Errorf("exec: step %q depends on itself", st.Name)
			}
			if _, ok := index[d]; !ok {
				return fmt.Errorf("exec: step %q depends on unknown step %q", st.Name, d)
			}
			if seen[d] {
				return fmt.Errorf("exec: step %q lists dependency %q twice", st.Name, d)
			}
			seen[d] = true
		}
	}
	// Cycle detection rides the graph validator Compile uses anyway.
	if _, err := w.graph(index); err != nil {
		return err
	}
	return nil
}

// validEnv accepts KEY=VALUE with a non-empty portable key.
func validEnv(e string) bool {
	for i := 0; i < len(e); i++ {
		c := e[i]
		if c == '=' {
			return i > 0
		}
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
		if !ok || (i == 0 && c >= '0' && c <= '9') {
			return false
		}
	}
	return false
}

// graph builds the dependency DAG (step index == TaskID) and validates it.
func (w *Workflow) graph(index map[string]int) (*dag.Graph, error) {
	g := dag.New(len(w.Steps))
	for _, st := range w.Steps {
		g.AddTask(st.Name)
	}
	for i, st := range w.Steps {
		for _, d := range st.Depends {
			if err := g.AddEdge(dag.TaskID(index[d]), dag.TaskID(i), 0); err != nil {
				return nil, fmt.Errorf("exec: step %q: %w", st.Name, err)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	return g, nil
}

// CostRow returns the step's estimated-cost row over procs processors:
// the explicit per-processor row, a scalar broadcast, or the default.
func (st *Step) CostRow(procs int) []float64 {
	row := make([]float64, procs)
	for p := range row {
		switch {
		case len(st.Costs) == procs:
			row[p] = st.Costs[p]
		case len(st.Costs) >= 1:
			row[p] = st.Costs[0]
		default:
			row[p] = defaultCost
		}
	}
	return row
}

// Compile lowers the definition onto the scheduling model: the dependency
// DAG, a uniform platform of w.Procs slots, and the estimated W matrix
// (seconds). Dependencies carry zero data — step hand-off is through the
// shared filesystem, not a modelled transfer — so communication costs
// vanish and W alone drives the plan.
func (w *Workflow) Compile() (*sched.Problem, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	index := make(map[string]int, len(w.Steps))
	for i, st := range w.Steps {
		index[st.Name] = i
	}
	g, err := w.graph(index)
	if err != nil {
		return nil, err
	}
	rows := make([][]float64, len(w.Steps))
	for i := range w.Steps {
		rows[i] = w.Steps[i].CostRow(w.Procs)
	}
	costs, err := platform.CostsFromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	pl, err := platform.NewUniform(w.Procs)
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	pr, err := sched.NewProblem(g, pl, costs)
	if err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	return pr, nil
}

// DriftThreshold returns the effective re-plan threshold.
func (w *Workflow) DriftThreshold() float64 {
	if w.Drift > 1 {
		return w.Drift
	}
	return DefaultDrift
}
