package exec

import (
	"context"
	"testing"
	"time"

	"hdlts/internal/obs"
)

// TestEngineRecoveryResumes is the crash-recovery contract: an engine shut
// down (or killed) mid-workflow leaves the record running in the WAL; the
// next Open over the same directory resumes it — completed steps keep
// their observed durations and are NOT re-executed, the interrupted step
// runs again, the resume counts as a re-plan, and execution continues
// under the workflow's original trace ID.
func TestEngineRecoveryResumes(t *testing.T) {
	dir := t.TempDir()
	fr := newFakeRunner()
	fr.sleep["mid"] = time.Minute // interrupted by the "crash"
	ts1 := obs.NewTraceStore(16, 1)
	e1, err := Open(Config{Dir: dir, Metrics: obs.NewRegistry(), Traces: ts1,
		Runner: fr.run, OverdueTick: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const traceID = "trace-recovery"
	ts1.Start(traceID)
	ctx := obs.WithTraceStore(obs.WithTraceID(context.Background(), traceID), ts1)
	wf := &Workflow{
		Procs: 1,
		Steps: []Step{
			{Name: "first", Command: "true", Costs: []float64{0.01}},
			{Name: "mid", Command: "sleep 60", Depends: []string{"first"}, Costs: []float64{0.01}},
			{Name: "last", Command: "true", Depends: []string{"mid"}, Costs: []float64{0.01}},
		},
	}
	rec, err := e1.Submit(ctx, wf)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := e1.Get(rec.ID)
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if r.Steps[0].State == StepDone && r.Steps[1].State == StepRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workflow never reached the mid-run shape: %+v", r.Steps)
		}
		time.Sleep(time.Millisecond)
	}
	// "Crash": Close kills the running command but, unlike Cancel, leaves
	// the record running in the WAL — exactly what a SIGKILL leaves behind.
	cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e1.Close(cctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := fr.count("mid"); got != 1 {
		t.Fatalf("mid ran %d times before the crash, want 1", got)
	}

	// Restart over the same directory with a fresh trace store.
	fr.mu.Lock()
	fr.sleep["mid"] = 0 // the retried attempt completes promptly
	fr.mu.Unlock()
	ts2 := obs.NewTraceStore(16, 1)
	e2 := testEngine(t, Config{Dir: dir, Traces: ts2, Runner: fr.run})
	final := waitDone(t, e2, rec.ID)
	if final.State != Done {
		t.Fatalf("state after resume = %v (error %q), want done", final.State, final.Error)
	}
	if final.TraceID != traceID {
		t.Fatalf("trace ID after resume = %q, want %q", final.TraceID, traceID)
	}
	if fr.count("first") != 1 {
		t.Errorf("completed step re-executed: first ran %d times", fr.count("first"))
	}
	if fr.count("mid") != 2 {
		t.Errorf("interrupted step ran %d times, want 2 (once per process)", fr.count("mid"))
	}
	if fr.count("last") != 1 {
		t.Errorf("last ran %d times, want 1", fr.count("last"))
	}
	if got := final.Steps[1].Attempts; got != 2 {
		t.Errorf("mid attempts = %d, want 2 (the crashed attempt stays on the books)", got)
	}
	if final.Replans < 1 {
		t.Errorf("replans = %d, want >= 1 (resume re-plans the frontier)", final.Replans)
	}
	// first completed before the crash; its observation must have survived.
	seen := map[string]bool{}
	for _, w := range final.ObservedW {
		seen[w.Step] = true
	}
	for _, name := range []string{"first", "mid", "last"} {
		if !seen[name] {
			t.Errorf("observed W lost entry for %q: %+v", name, final.ObservedW)
		}
	}
	// The resumed run traced under the original ID in the new store.
	tr, ok := ts2.Get(traceID)
	if !ok {
		t.Fatalf("resumed run did not re-adopt trace %q", traceID)
	}
	spans := map[string]int{}
	for _, sp := range tr.Spans {
		spans[sp.Name]++
	}
	if spans["workflow.run"] != 1 || spans["step.run"] < 2 {
		t.Errorf("resumed trace spans = %v, want workflow.run and step.run for mid+last", spans)
	}
}

// TestEngineRecoveryTerminal: finished workflows survive a restart as
// queryable history and are not re-run.
func TestEngineRecoveryTerminal(t *testing.T) {
	dir := t.TempDir()
	fr := newFakeRunner()
	e1, err := Open(Config{Dir: dir, Metrics: obs.NewRegistry(), Runner: fr.run,
		OverdueTick: 5 * time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	wf := &Workflow{Procs: 1, Steps: []Step{{Name: "a", Command: "true", Costs: []float64{0.001}}}}
	rec, err := e1.Submit(context.Background(), wf)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := e1.Wait(ctx, rec.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := e1.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	e2 := testEngine(t, Config{Dir: dir, Runner: fr.run})
	got, err := e2.Get(rec.ID)
	if err != nil {
		t.Fatalf("Get after restart: %v", err)
	}
	if got.State != Done || len(got.ObservedW) != 1 {
		t.Errorf("recovered record = %v / %d observations", got.State, len(got.ObservedW))
	}
	if fr.count("a") != 1 {
		t.Errorf("terminal workflow re-executed: a ran %d times", fr.count("a"))
	}
	// Sequence numbers keep advancing across restarts.
	rec2, err := e2.Submit(context.Background(), wf)
	if err != nil {
		t.Fatalf("Submit after restart: %v", err)
	}
	if rec2.Seq <= got.Seq {
		t.Errorf("seq after restart = %d, want > %d", rec2.Seq, got.Seq)
	}
	waitDone(t, e2, rec2.ID)
}
