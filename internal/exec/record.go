package exec

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// State is one phase of the workflow lifecycle.
type State string

// The lifecycle: a workflow is admitted queued, its run loop moves it to
// running, and it finishes done, failed (a step exhausted its attempts),
// or cancelled. A workflow that is running when the process dies stays
// running in the WAL and is resumed by the next Open.
const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// States lists every workflow state in lifecycle order.
var States = []State{Queued, Running, Done, Failed, Cancelled}

// Terminal reports whether a workflow in this state will never run again.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled
}

// StepState is one phase of a step's lifecycle within a running workflow.
type StepState string

// Step lifecycle: pending (not yet dispatched, or awaiting a retry),
// running, then done or failed.
const (
	StepPending StepState = "pending"
	StepRunning StepState = "running"
	StepDone    StepState = "done"
	StepFailed  StepState = "failed"
)

// StepStatus is the live/persisted execution state of one step,
// index-aligned with the workflow definition's Steps.
type StepStatus struct {
	Name string `json:"name"`
	// State is the step's lifecycle phase.
	State StepState `json:"state"`
	// PlannedProc is the processor the initial HDLTS plan chose; Proc is
	// the current assignment (re-plans move it) and, once the step has
	// run, the processor slot it actually executed on. Comparing the two
	// shows what dynamic re-mapping changed.
	PlannedProc int `json:"planned_proc"`
	Proc        int `json:"proc"`
	// EstSeconds is the estimated duration on the current assignment (the
	// W-matrix entry the plan used); ObservedSeconds is the measured wall
	// duration of the successful attempt.
	EstSeconds      float64 `json:"est_seconds"`
	ObservedSeconds float64 `json:"observed_seconds,omitempty"`
	// QueueWaitSeconds is how long the step sat dispatchable — every
	// dependency delivered — before its processor slot freed up
	// (head-of-line blocking in the per-processor FIFO), for the latest
	// attempt.
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
	// Attempts counts execution attempts consumed so far.
	Attempts int `json:"attempts,omitempty"`
	// Error holds the last attempt's failure.
	Error string `json:"error,omitempty"`

	StartedAt  time.Time `json:"started_at,omitempty"`
	FinishedAt time.Time `json:"finished_at,omitempty"`
}

// WEntry is one observed W-matrix override: a measured execution time of
// a step (task row) on the processor it ran on, in seconds. These are the
// entries a subsequent plan of the same workflow would trust over the
// declared estimates.
type WEntry struct {
	Step    string  `json:"step"`
	Task    int     `json:"task"`
	Proc    int     `json:"proc"`
	Seconds float64 `json:"seconds"`
}

// Record is one workflow execution: the WAL unit and the value the Engine
// hands back to callers (always as a private copy).
type Record struct {
	// ID is the unique workflow handle ("wf-" + 16 hex chars).
	ID string `json:"id"`
	// Name echoes the definition's name.
	Name string `json:"name"`
	// TraceID correlates the workflow with the request that submitted it;
	// re-adopted after crash recovery so plan and (resumed) execution
	// share one trace.
	TraceID string `json:"trace_id,omitempty"`
	// Spec is the full decoded definition, kept so a recovered workflow
	// can be re-compiled and resumed without the original request.
	Spec *Workflow `json:"spec"`
	// State is the workflow lifecycle phase.
	State State `json:"state"`
	// Error holds the failure reason for failed workflows.
	Error string `json:"error,omitempty"`
	// Steps is the per-step execution state, index-aligned with Spec.Steps.
	Steps []StepStatus `json:"steps"`
	// ObservedW accumulates measured durations as W-matrix overrides, in
	// completion order.
	ObservedW []WEntry `json:"observed_w,omitempty"`
	// Replans counts ITQ recomputations over the un-dispatched frontier
	// (drift-triggered, plus one per crash-recovery resume).
	Replans int `json:"replans"`
	// Makespan is the wall duration of the whole run, set when terminal.
	MakespanSeconds float64 `json:"makespan_seconds,omitempty"`
	// Seq orders workflows by submission (monotonic across restarts).
	Seq uint64 `json:"seq"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
}

// clone returns an independent deep copy safe to hand outside the
// Engine's lock.
func (r *Record) clone() *Record {
	c := *r
	c.Steps = append([]StepStatus(nil), r.Steps...)
	c.ObservedW = append([]WEntry(nil), r.ObservedW...)
	if r.Spec != nil {
		spec := *r.Spec
		spec.Steps = append([]Step(nil), r.Spec.Steps...)
		c.Spec = &spec
	}
	return &c
}

// newID draws a fresh workflow handle from crypto/rand.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("exec: crypto/rand: " + err.Error())
	}
	return "wf-" + hex.EncodeToString(b[:])
}

// walRec is one workflow WAL line: a full-record upsert or a deletion.
type walRec struct {
	Op  string  `json:"op"`            // "put" | "del"
	Rec *Record `json:"rec,omitempty"` // put payload
	ID  string  `json:"id,omitempty"`  // del payload
}

// encodeWALRec renders one WAL line (newline included) for staging.
func encodeWALRec(rec walRec) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("exec: encode wal record: %w", err)
	}
	return append(b, '\n'), nil
}

// loadRecordSnapshot decodes the snapshot payload into the record table.
func loadRecordSnapshot(recs map[string]*Record) func([]byte) error {
	return func(b []byte) error {
		var list []*Record
		if err := json.Unmarshal(b, &list); err != nil {
			return fmt.Errorf("exec: decode snapshot: %w", err)
		}
		for _, r := range list {
			recs[r.ID] = r
		}
		return nil
	}
}

// applyRecordLine decodes one WAL line into the record table, reporting
// false on the torn tail a crash mid-append leaves behind.
func applyRecordLine(recs map[string]*Record) func(line []byte) bool {
	return func(line []byte) bool {
		var rec walRec
		if err := json.Unmarshal(line, &rec); err != nil {
			return false
		}
		switch rec.Op {
		case "put":
			if rec.Rec != nil && rec.Rec.ID != "" {
				recs[rec.Rec.ID] = rec.Rec
			}
		case "del":
			delete(recs, rec.ID)
		}
		return true
	}
}

// encodeRecordSnapshot renders the live set, ordered by submission
// sequence, as the snapshot payload. Called under the record-table lock.
func encodeRecordSnapshot(live map[string]*Record) ([]byte, error) {
	list := make([]*Record, 0, len(live))
	for _, r := range live {
		list = append(list, r)
	}
	sort.Slice(list, func(i, k int) bool { return list[i].Seq < list[k].Seq })
	b, err := json.Marshal(list)
	if err != nil {
		return nil, fmt.Errorf("exec: encode snapshot: %w", err)
	}
	return b, nil
}
