package exec

import (
	"context"
	"errors"
	"fmt"
	"os"
	osexec "os/exec"
	"sort"
	"strconv"
	"sync"
	"time"

	"hdlts/internal/dag"
	"hdlts/internal/dynamic"
	"hdlts/internal/jobs"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
)

// Metric series registered by this package.
const (
	metricWorkflowSteps     = "hdltsd_workflow_steps_total"
	metricWorkflowStepSecs  = "hdltsd_workflow_step_seconds"
	metricWorkflowDrift     = "hdltsd_workflow_drift_ratio"
	metricWorkflowReplans   = "hdltsd_workflow_replans_total"
	metricWorkflowActive    = "hdltsd_workflow_active"
	metricWorkflowWALFsync  = "hdltsd_workflow_wal_fsync_seconds"
	metricWorkflowWALErrors = "hdltsd_workflow_wal_errors_total"
	metricWorkflowQueueWait = "hdltsd_workflow_queue_wait_seconds"
)

// Sentinel errors of the engine API.
var (
	// ErrNotFound: no workflow with that ID.
	ErrNotFound = errors.New("exec: workflow not found")
	// ErrClosed: the engine has shut down.
	ErrClosed = errors.New("exec: engine is closed")
	// ErrFinished: the workflow is already terminal.
	ErrFinished = errors.New("exec: workflow already finished")
	// ErrSaturated: the engine already runs Config.MaxActive workflows;
	// the submission was refused before any state was created. Retry later.
	ErrSaturated = errors.New("exec: too many active workflows")
)

// DefaultMaxActive bounds concurrently executing workflows when
// Config.MaxActive is unset. Each active workflow costs one run-loop
// goroutine plus one goroutine per running step, so an unbounded engine
// would let a submission flood translate directly into goroutine floods.
const DefaultMaxActive = 64

// estFloor keeps drift ratios finite when a step declares a (near-)zero
// estimate.
const estFloor = 1e-3

// StepRunner executes one step attempt; the default runs the command via
// sh -c, killed when ctx expires (per-step timeout, cancellation,
// shutdown). Tests substitute deterministic runners.
type StepRunner func(ctx context.Context, step Step) error

// Config tunes an Engine. The zero value works: memory-only store, shell
// runner, default registry.
type Config struct {
	// Dir is the durable record store directory; empty means memory-only
	// (workflows do not survive a restart).
	Dir string
	// Metrics receives the hdltsd_workflow_* series (default obs.Default()).
	Metrics *obs.Registry
	// Traces, when set, receives the plan/execution span trees and replan
	// decision events, keyed by each workflow's trace ID.
	Traces *obs.TraceStore
	// Runner executes step attempts (default: sh -c command).
	Runner StepRunner
	// OverdueTick is how often running steps are checked against their
	// drift deadline (default 100ms). Tests shrink it.
	OverdueTick time.Duration
	// Stream, when set, receives live workflow transitions (workflow.plan,
	// step.run, step.done, step.fail, workflow.replan, workflow.done) —
	// the feed behind the SSE endpoints. Nil is fine: every publish site
	// no-ops on a nil hub.
	Stream *obs.Hub
	// MaxActive caps concurrently executing workflows (default
	// DefaultMaxActive). Submit refuses with ErrSaturated beyond it;
	// crash-recovered workflows instead wait for a free slot.
	MaxActive int
}

func (c Config) withDefaults() Config {
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.Runner == nil {
		c.Runner = RunShell
	}
	if c.OverdueTick <= 0 {
		c.OverdueTick = 100 * time.Millisecond
	}
	if c.MaxActive <= 0 {
		c.MaxActive = DefaultMaxActive
	}
	return c
}

// RunShell is the default StepRunner: the command runs under "sh -c" with
// the step's extra environment, and is killed when ctx expires. On failure
// the error carries the tail of the combined output.
func RunShell(ctx context.Context, step Step) error {
	cmd := osexec.CommandContext(ctx, "sh", "-c", step.Command)
	cmd.Env = append(os.Environ(), step.Env...)
	// Children of a killed shell keep the output pipes open; without a
	// wait delay a timed-out "sh -c 'sleep 100'" would block until the
	// orphaned sleep exits.
	cmd.WaitDelay = time.Second
	out, err := cmd.CombinedOutput()
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return fmt.Errorf("step %q: %w", step.Name, ctx.Err())
	}
	tail := out
	if len(tail) > 512 {
		tail = tail[len(tail)-512:]
	}
	if len(tail) > 0 {
		return fmt.Errorf("step %q: %w: %s", step.Name, err, tail)
	}
	return fmt.Errorf("step %q: %w", step.Name, err)
}

// Engine plans and executes workflows. All exported methods are safe for
// concurrent use.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	recs    map[string]*Record
	runs    map[string]*runState
	nextSeq uint64
	pending [][]byte // encoded WAL records staged for the next flush
	closed  bool

	// log is the durable record store (nil in memory-only mode). Its
	// writer lock serialises appends and compaction; mu never covers
	// disk I/O — the same discipline as the jobs Manager.
	log *jobs.Log

	// baseCtx is the process-lifetime root workflow runs derive from;
	// Close cancels it after cancelling the individual runs.
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// slots is the run-admission semaphore: one send per live workflow,
	// received back when its run loop exits. Capacity is Config.MaxActive.
	slots chan struct{}

	active    *obs.Gauge
	replans   *obs.Counter
	walErrors *obs.Counter
	stepSecs  *obs.Histogram
	driftHist *obs.Histogram
	queueWait *obs.Histogram
}

// runState is the engine-side handle of one live workflow run.
type runState struct {
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed when the run loop exits

	mu        sync.Mutex
	cancelled bool // user-requested cancel (vs engine shutdown)
}

func (rs *runState) userCancelled() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.cancelled
}

// Open builds an Engine, recovering any durable state from cfg.Dir:
// terminal workflows become queryable again, and unfinished ones resume —
// completed steps keep their observed durations and are not re-executed,
// steps that were mid-run when the process died are demoted to pending,
// and the remainder is re-mapped before dispatch continues under the
// workflow's original trace ID.
func Open(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:       cfg,
		recs:      make(map[string]*Record),
		runs:      make(map[string]*runState),
		slots:     make(chan struct{}, cfg.MaxActive),
		active:    cfg.Metrics.Gauge(metricWorkflowActive),
		replans:   cfg.Metrics.Counter(metricWorkflowReplans),
		walErrors: cfg.Metrics.Counter(metricWorkflowWALErrors),
		stepSecs:  cfg.Metrics.Histogram(metricWorkflowStepSecs),
		driftHist: cfg.Metrics.Histogram(metricWorkflowDrift),
		queueWait: cfg.Metrics.Histogram(metricWorkflowQueueWait),
	}
	// Step durations span sleeps of milliseconds to batch jobs of hours;
	// drift ratios cluster around 1. Log-spaced buckets resolve both.
	// Queue waits (head-blocked time in a per-processor FIFO) range from
	// effectively zero on an idle slot to full step durations behind a
	// drifted predecessor — same log spacing as step durations.
	cfg.Metrics.SetBuckets(metricWorkflowStepSecs, obs.ExpBuckets(1e-3, 1e4, 3))
	cfg.Metrics.SetBuckets(metricWorkflowDrift, obs.ExpBuckets(1e-2, 1e2, 6))
	cfg.Metrics.SetBuckets(metricWorkflowQueueWait, obs.ExpBuckets(1e-3, 1e4, 3))
	// Workflow runs outlive the HTTP requests that submitted them (and,
	// after a crash, the process that did), so they hang off a root owned
	// by the Engine rather than any request context.
	//lint:hdltsvet-ignore ctxflow process-lifetime root: workflow runs outlive their submitting requests
	e.baseCtx, e.cancel = context.WithCancel(context.Background())
	if cfg.Dir != "" {
		cfg.Metrics.SetBuckets(metricWorkflowWALFsync, obs.ExpBuckets(1e-5, 1, 3))
		recovered := make(map[string]*Record)
		log, err := jobs.OpenLog(cfg.Dir, cfg.Metrics.Histogram(metricWorkflowWALFsync),
			loadRecordSnapshot(recovered), applyRecordLine(recovered))
		if err != nil {
			return nil, err
		}
		e.log = log
		e.adopt(recovered)
		e.flush()
	}
	return e, nil
}

// adopt installs recovered records and resumes unfinished workflows.
// Runs single-threaded inside Open.
func (e *Engine) adopt(recovered map[string]*Record) {
	list := make([]*Record, 0, len(recovered))
	for _, r := range recovered {
		list = append(list, r)
	}
	sort.Slice(list, func(i, k int) bool { return list[i].Seq < list[k].Seq })
	for _, r := range list {
		if r.Seq >= e.nextSeq {
			e.nextSeq = r.Seq + 1
		}
		e.recs[r.ID] = r
		if r.State.Terminal() {
			continue
		}
		// Steps caught mid-run by the crash are demoted and re-executed;
		// their consumed attempt stays on the books.
		for i := range r.Steps {
			if r.Steps[i].State == StepRunning {
				r.Steps[i].State = StepPending
			}
		}
		pr, err := r.Spec.Compile()
		if err != nil {
			// A record that no longer compiles (it was validated at
			// submission) is corrupt; fail it rather than wedge recovery.
			r.State = Failed
			r.Error = fmt.Sprintf("recovery: %v", err)
			r.FinishedAt = time.Now()
			e.persistLocked(r)
			continue
		}
		r.State = Running
		e.persistLocked(r)
		e.launch(r, pr, nil, false)
	}
}

// Submit plans and starts one workflow. ctx carries the submitting
// request's trace identity: the initial HDLTS plan records a
// workflow.plan span (with the solver's decision events) under it, and
// the run loop keeps tracing under the same ID long after the request
// returns. The returned record is the admission snapshot — poll Get, or
// block on Wait, for progress.
func (e *Engine) Submit(ctx context.Context, wf *Workflow) (*Record, error) {
	pr, err := wf.Compile()
	if err != nil {
		return nil, err
	}
	// Admission control: take the run slot before planning or persisting
	// anything, so a saturated engine refuses cheaply and never leaves a
	// rejected record behind. The slot travels with the workflow: launch
	// skips re-acquiring it, and the run loop returns it on exit.
	select {
	case e.slots <- struct{}{}:
	default:
		return nil, ErrSaturated
	}
	launched := false
	defer func() {
		if !launched {
			<-e.slots // admission succeeded but a later step failed
		}
	}()
	id := newID()
	_, span := obs.StartSpan(ctx, "workflow.plan",
		obs.KeyWorkflow, id, obs.KeyAlg, "HDLTS")
	plan, err := e.plan(ctx, pr)
	span.Finish()
	if err != nil {
		return nil, fmt.Errorf("exec: plan: %w", err)
	}
	now := time.Now()
	rec := &Record{
		ID:          id,
		Name:        wf.Name,
		TraceID:     obs.TraceIDFrom(ctx),
		Spec:        wf,
		State:       Queued,
		Steps:       make([]StepStatus, len(wf.Steps)),
		SubmittedAt: now,
	}
	for i := range wf.Steps {
		p := plan.assign[i]
		rec.Steps[i] = StepStatus{
			Name:        wf.Steps[i].Name,
			State:       StepPending,
			PlannedProc: p,
			Proc:        p,
			EstSeconds:  pr.Exec(dag.TaskID(i), platform.Proc(p)),
		}
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	rec.Seq = e.nextSeq
	e.nextSeq++
	e.recs[id] = rec
	e.persistLocked(rec)
	snapshot := rec.clone()
	e.mu.Unlock()
	e.flush()
	e.cfg.Stream.Publish(obs.StreamEvent{
		Kind:     obs.KindWorkflowPlan,
		Workflow: id,
		TraceID:  rec.TraceID,
		Proc:     -1,
		Value:    float64(len(wf.Steps)),
	})
	e.launch(rec, pr, plan.order, true)
	launched = true
	return snapshot, nil
}

// planResult is the initial mapping: processor per step and per-processor
// dispatch order.
type planResult struct {
	assign []int
	order  [][]int
}

// plan runs HDLTS over the compiled problem and extracts the per-step
// placement and per-processor start order. When the ctx carries a
// sampled trace, the solver's decision events land in the trace ring.
func (e *Engine) plan(ctx context.Context, pr *sched.Problem) (*planResult, error) {
	alg, err := registry.Get("hdlts")
	if err != nil {
		return nil, err
	}
	prT := pr
	if ts := obs.TraceStoreFrom(ctx); ts != nil {
		if tid := obs.TraceIDFrom(ctx); tid != "" {
			prT = pr.WithTracer(obs.Named(ts.Tracer(tid), alg.Name()))
		}
	}
	sc, err := alg.Schedule(prT)
	if err != nil {
		return nil, err
	}
	n := pr.NumTasks()
	res := &planResult{assign: make([]int, n), order: make([][]int, pr.NumProcs())}
	type item struct {
		i     int
		start float64
	}
	byProc := make([][]item, pr.NumProcs())
	for i := 0; i < n; i++ {
		pl, ok := sc.PlacementOf(dag.TaskID(i))
		if !ok {
			return nil, fmt.Errorf("incomplete schedule: step %d unplaced", i)
		}
		res.assign[i] = int(pl.Proc)
		byProc[pl.Proc] = append(byProc[pl.Proc], item{i: i, start: pl.Start})
	}
	for p := range byProc {
		sort.Slice(byProc[p], func(a, b int) bool {
			if byProc[p][a].start != byProc[p][b].start {
				return byProc[p][a].start < byProc[p][b].start
			}
			return byProc[p][a].i < byProc[p][b].i
		})
		for _, it := range byProc[p] {
			res.order[p] = append(res.order[p], it.i)
		}
	}
	return res, nil
}

// launch registers the run state and starts the run loop. initOrder is
// nil for recovered workflows, whose dispatch order is rebuilt by the
// resume re-plan. Deliberately context-free: runs derive from the
// engine's process-lifetime root, not from any submitting request.
//
// admitted says the caller already holds a run slot (Submit takes one up
// front so saturation is a clean refusal). Recovery passes false and
// blocks here instead: recovered workflows were admitted in a previous
// life, so they queue for slots rather than being dropped.
func (e *Engine) launch(rec *Record, pr *sched.Problem, initOrder [][]int, admitted bool) {
	if !admitted {
		e.slots <- struct{}{}
	}
	runCtx := obs.WithTraceID(e.baseCtx, rec.TraceID)
	if e.cfg.Traces != nil && rec.TraceID != "" {
		// Re-adopt the workflow's trace — after a restart this is what
		// stitches resumed execution onto the original plan's trace tree.
		e.cfg.Traces.Start(rec.TraceID)
		runCtx = obs.WithTraceStore(runCtx, e.cfg.Traces)
	}
	runCtx, cancel := context.WithCancel(runCtx)
	rs := &runState{ctx: runCtx, cancel: cancel, done: make(chan struct{})}
	e.mu.Lock()
	e.runs[rec.ID] = rs
	e.mu.Unlock()
	e.active.Inc()
	e.wg.Add(1)
	go e.run(rec.ID, rec.Spec, pr, initOrder, rs)
}

// Get returns a copy of the workflow record, or ErrNotFound.
func (e *Engine) Get(id string) (*Record, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.recs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return r.clone(), nil
}

// List returns every workflow record, newest submission first.
func (e *Engine) List() []*Record {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Record, 0, len(e.recs))
	for _, r := range e.recs {
		out = append(out, r.clone())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq > out[k].Seq })
	return out
}

// Wait blocks until the workflow reaches a terminal state (returning the
// final record) or ctx expires.
func (e *Engine) Wait(ctx context.Context, id string) (*Record, error) {
	e.mu.Lock()
	r, ok := e.recs[id]
	if !ok {
		e.mu.Unlock()
		return nil, ErrNotFound
	}
	if r.State.Terminal() {
		defer e.mu.Unlock()
		return r.clone(), nil
	}
	rs := e.runs[id]
	e.mu.Unlock()
	if rs == nil {
		return e.Get(id)
	}
	select {
	case <-rs.done:
		return e.Get(id)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel stops a running workflow: running step commands are killed and
// the workflow finishes cancelled. Terminal workflows return ErrFinished.
func (e *Engine) Cancel(id string) (*Record, error) {
	e.mu.Lock()
	r, ok := e.recs[id]
	if !ok {
		e.mu.Unlock()
		return nil, ErrNotFound
	}
	if r.State.Terminal() {
		e.mu.Unlock()
		return nil, ErrFinished
	}
	rs := e.runs[id]
	e.mu.Unlock()
	if rs != nil {
		rs.mu.Lock()
		rs.cancelled = true
		rs.mu.Unlock()
		rs.cancel()
		<-rs.done
	}
	return e.Get(id)
}

// Close stops intake, kills running step commands, and waits — bounded by
// ctx — for run loops to commit their final state. Unfinished workflows
// stay running in the durable store and are resumed by the next Open with
// the same Dir.
func (e *Engine) Close(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	runs := make([]*runState, 0, len(e.runs))
	for _, rs := range e.runs {
		runs = append(runs, rs)
	}
	e.mu.Unlock()
	for _, rs := range runs {
		rs.cancel()
	}
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		e.cancel()
		return fmt.Errorf("exec: close: %w", ctx.Err())
	}
	e.cancel()
	if e.log == nil {
		return nil
	}
	e.flush()
	return e.log.Close()
}

// persistLocked stages a full-record WAL line capturing r's current state
// (caller holds mu, except during single-threaded recovery in Open).
func (e *Engine) persistLocked(r *Record) {
	if e.log == nil {
		return
	}
	b, err := encodeWALRec(walRec{Op: "put", Rec: r})
	if err != nil {
		e.walErrors.Inc()
		return
	}
	e.pending = append(e.pending, b)
}

// flush writes every staged WAL record with a single fsync and compacts
// when due. Called after releasing mu; the same group-commit contract as
// the jobs Manager applies.
func (e *Engine) flush() {
	if e.log == nil {
		return
	}
	e.mu.Lock()
	batch := e.pending
	e.pending = nil
	e.mu.Unlock()
	if err := e.log.Append(batch); err != nil {
		e.walErrors.Inc()
		return
	}
	err := e.log.CompactIfDue(
		func() int {
			e.mu.Lock()
			defer e.mu.Unlock()
			return len(e.recs)
		},
		func() ([]byte, error) {
			e.mu.Lock()
			defer e.mu.Unlock()
			return encodeRecordSnapshot(e.recs)
		},
	)
	if err != nil {
		e.walErrors.Inc()
	}
}

// stepOutcome carries one finished step attempt back to the run loop.
type stepOutcome struct {
	step int
	proc int
	dur  time.Duration
	err  error
}

// run is the per-workflow execution loop: dispatch pending steps into
// idle processor slots in planned order, absorb completions, write
// observed durations back, and re-map the un-dispatched frontier whenever
// observation drifts from estimate. It owns all scheduling state; the
// shared Record is only touched under e.mu.
func (e *Engine) run(id string, wf *Workflow, pr *sched.Problem, initOrder [][]int, rs *runState) {
	defer e.wg.Done()
	defer close(rs.done)
	defer e.active.Dec()
	defer func() { <-e.slots }() // return the admission slot

	ctx, runSpan := obs.StartSpan(rs.ctx, "workflow.run",
		obs.KeyWorkflow, id, obs.KeyAlg, "exec")
	defer runSpan.Finish()

	n := len(wf.Steps)
	procs := wf.Procs
	drift := wf.DriftThreshold()
	tr := obs.Nop
	if e.cfg.Traces != nil {
		if tid := obs.TraceIDFrom(ctx); tid != "" {
			tr = e.cfg.Traces.Tracer(tid)
		}
	}

	// Goroutine-local scheduling state, all times relative to wfStart.
	wfStart := time.Now()
	now := func() float64 { return time.Since(wfStart).Seconds() }
	est := func(i, p int) float64 { return pr.Exec(dag.TaskID(i), platform.Proc(p)) }
	assign := make([]int, n)
	state := make([]StepState, n)
	attempts := make([]int, n)
	depsLeft := make([]int, n)
	startRel := make([]float64, n) // start time of the running attempt
	finRel := make([]float64, n)   // actual (done) or projected (running) finish
	proj := make([]float64, n)     // projected duration of the running attempt
	readyAt := make([]float64, n)  // when the last dependency delivered (0 = ready at start)
	procBusy := make([]bool, procs)
	order := initOrder
	if order == nil {
		order = make([][]int, procs)
	}
	procList := make([]platform.Proc, procs)
	for p := range procList {
		procList[p] = platform.Proc(p)
	}
	doneCount, runningCount := 0, 0
	failing := false
	var failErr string

	e.mu.Lock()
	rec := e.recs[id]
	rec.State = Running
	rec.StartedAt = wfStart
	for i := range rec.Steps {
		assign[i] = rec.Steps[i].Proc
		state[i] = rec.Steps[i].State
		attempts[i] = rec.Steps[i].Attempts
		if state[i] == StepDone {
			doneCount++
		}
	}
	e.persistLocked(rec)
	e.mu.Unlock()
	e.flush()
	for i := 0; i < n; i++ {
		for _, a := range pr.G.Preds(dag.TaskID(i)) {
			if state[a.Task] != StepDone {
				depsLeft[i]++
			}
		}
	}

	// finishFor is the projection the re-plan rule estimates against:
	// done steps have delivered their outputs (resume epoch: at t=0),
	// running steps deliver at their revised estimate.
	replan := func(reason string) {
		var pending []dag.TaskID
		for i := 0; i < n; i++ {
			if state[i] == StepPending {
				pending = append(pending, dag.TaskID(i))
			}
		}
		if len(pending) == 0 {
			return
		}
		nowS := now()
		avail := make([]float64, procs)
		for p := range avail {
			avail[p] = nowS
		}
		finish := make([]float64, n)
		for i := 0; i < n; i++ {
			switch state[i] {
			case StepDone:
				finish[i] = finRel[i]
			case StepRunning:
				finish[i] = finRel[i]
				if finish[i] > avail[assign[i]] {
					avail[assign[i]] = finish[i]
				}
			}
		}
		// Iterative ITQ recomputation over the frontier: repeatedly apply
		// the paper's decision rule to the steps whose predecessors all
		// have (actual or projected) finish times, committing each pick
		// into the projection before the next.
		predsLeft := make([]int, n)
		var ready []dag.TaskID
		for _, t := range pending {
			for _, a := range pr.G.Preds(t) {
				if state[a.Task] == StepPending {
					predsLeft[t]++
				}
			}
			if predsLeft[t] == 0 {
				ready = append(ready, t)
			}
		}
		newOrder := make([][]int, procs)
		eft := func(t dag.TaskID, p platform.Proc) float64 {
			arr := avail[p]
			for _, a := range pr.G.Preds(t) {
				if f := finish[a.Task]; f > arr {
					arr = f
				}
			}
			return arr + est(int(t), int(p))
		}
		for placed := 0; placed < len(pending); placed++ {
			sort.Slice(ready, func(i, k int) bool { return ready[i] < ready[k] })
			t, p, ok := dynamic.PickHDLTS(ready, procList, eft)
			if !ok {
				return // cannot happen on a valid DAG; keep the old mapping
			}
			assign[t] = int(p)
			finish[t] = eft(t, p)
			avail[p] = finish[t]
			newOrder[p] = append(newOrder[p], int(t))
			for i, r := range ready {
				if r == t {
					ready = append(ready[:i], ready[i+1:]...)
					break
				}
			}
			for _, a := range pr.G.Succs(t) {
				if state[a.Task] == StepPending {
					predsLeft[a.Task]--
					if predsLeft[a.Task] == 0 {
						ready = append(ready, a.Task)
					}
				}
			}
		}
		order = newOrder
		e.mu.Lock()
		for _, t := range pending {
			rec.Steps[t].Proc = assign[t]
			rec.Steps[t].EstSeconds = est(int(t), assign[t])
		}
		rec.Replans++
		e.persistLocked(rec)
		e.mu.Unlock()
		e.flush()
		e.replans.Inc()
		tr.Emit(obs.Event{Type: obs.EvReplan, Alg: "exec", Task: -1, Proc: -1,
			Time: nowS, Value: float64(len(pending))})
		_, sp := obs.StartSpan(ctx, "workflow.replan",
			obs.KeyWorkflow, id, obs.KeyPhase, reason)
		sp.Finish()
		e.cfg.Stream.Publish(obs.StreamEvent{
			Kind:     obs.KindWorkflowReplan,
			Workflow: id,
			TraceID:  rec.TraceID,
			Phase:    reason,
			Proc:     -1,
			Time:     nowS,
			Value:    float64(len(pending)),
		})
	}

	completions := make(chan stepOutcome, n)
	var stepWG sync.WaitGroup
	start := func(i, p int) {
		state[i] = StepRunning
		procBusy[p] = true
		runningCount++
		attempts[i]++
		startRel[i] = now()
		proj[i] = est(i, p)
		finRel[i] = startRel[i] + proj[i]
		// Queue wait: how long the step sat dispatchable (all dependencies
		// delivered) before its processor slot freed up — head-of-line
		// blocking in the per-processor FIFO, the executor-side analogue of
		// the schedule's idle gaps.
		wait := maxf(startRel[i]-readyAt[i], 0)
		e.queueWait.Observe(wait)
		e.mu.Lock()
		rec.Steps[i].State = StepRunning
		rec.Steps[i].Proc = p
		rec.Steps[i].EstSeconds = est(i, p)
		rec.Steps[i].Attempts = attempts[i]
		rec.Steps[i].StartedAt = time.Now()
		rec.Steps[i].QueueWaitSeconds = wait
		e.persistLocked(rec)
		e.mu.Unlock()
		e.flush()
		e.cfg.Stream.Publish(obs.StreamEvent{
			Kind:     obs.KindStepRun,
			Workflow: id,
			TraceID:  rec.TraceID,
			Step:     wf.Steps[i].Name,
			Proc:     p,
			Time:     startRel[i],
			Value:    wait,
		})
		step := wf.Steps[i]
		stepWG.Add(1)
		go func() {
			defer stepWG.Done()
			sctx, cancel := rs.ctx, func() {}
			if step.Timeout > 0 {
				sctx, cancel = context.WithTimeout(rs.ctx, step.Timeout)
			}
			defer cancel()
			_, span := obs.StartSpan(ctx, "step.run",
				obs.KeyStep, step.Name, obs.KeyProc, strconv.Itoa(p))
			t0 := time.Now()
			err := e.cfg.Runner(sctx, step)
			if err != nil {
				span.SetAttr(obs.KeyStatus, "error")
			} else {
				span.SetAttr(obs.KeyStatus, "ok")
			}
			span.Finish()
			completions <- stepOutcome{step: i, proc: p, dur: time.Since(t0), err: err}
		}()
	}

	dispatch := func() {
		if failing {
			return
		}
		for p := 0; p < procs; p++ {
			if procBusy[p] || len(order[p]) == 0 {
				continue
			}
			head := order[p][0]
			if state[head] != StepPending || depsLeft[head] > 0 {
				continue
			}
			order[p] = order[p][1:]
			start(head, p)
		}
	}

	finalize := func(st State, errMsg string) {
		e.mu.Lock()
		rec.State = st
		rec.Error = errMsg
		rec.FinishedAt = time.Now()
		rec.MakespanSeconds = now()
		if st == Cancelled {
			for i := range rec.Steps {
				if rec.Steps[i].State == StepRunning {
					rec.Steps[i].State = StepFailed
					rec.Steps[i].Error = "cancelled"
					rec.Steps[i].FinishedAt = rec.FinishedAt
				}
			}
		}
		e.persistLocked(rec)
		e.mu.Unlock()
		e.flush()
		runSpan.SetAttr(obs.KeyStatus, string(st))
		e.cfg.Stream.Publish(obs.StreamEvent{
			Kind:     obs.KindWorkflowDone,
			Workflow: id,
			TraceID:  rec.TraceID,
			Phase:    string(st),
			Proc:     -1,
			Time:     now(),
		})
	}

	if initOrder == nil {
		// Resume after a crash: rebuild the dispatch order — and re-map —
		// from what the WAL says already finished.
		replan("resume")
	}

	ticker := time.NewTicker(e.cfg.OverdueTick)
	defer ticker.Stop()
	for {
		dispatch()
		if doneCount == n {
			finalize(Done, "")
			return
		}
		if failing && runningCount == 0 {
			finalize(Failed, failErr)
			return
		}
		if !failing && runningCount == 0 {
			// Cannot happen on a consistent order (see docs/EXECUTION.md);
			// re-mapping rebuilds consistency if a bug ever breaks it.
			replan("stall")
			dispatch()
			if runningCount == 0 {
				finalize(Failed, "exec: dispatch stalled")
				return
			}
		}
		select {
		case out := <-completions:
			i, p := out.step, out.proc
			state[i] = StepDone
			procBusy[p] = false
			runningCount--
			finRel[i] = now()
			observed := out.dur.Seconds()
			if out.err != nil {
				retryable := attempts[i] <= wf.Steps[i].Retries && rs.ctx.Err() == nil
				e.mu.Lock()
				rec.Steps[i].Error = out.err.Error()
				if retryable {
					state[i] = StepPending
					rec.Steps[i].State = StepPending
				} else {
					state[i] = StepFailed
					rec.Steps[i].State = StepFailed
					rec.Steps[i].FinishedAt = time.Now()
				}
				e.persistLocked(rec)
				e.mu.Unlock()
				e.flush()
				phase := "failed"
				if retryable {
					e.cfg.Metrics.Counter(metricWorkflowSteps, "state", "retried").Inc()
					// Retry at the head of the same slot's queue; the retry's
					// queue wait starts now.
					order[assign[i]] = append([]int{i}, order[assign[i]]...)
					readyAt[i] = now()
					phase = "retry"
				} else {
					e.cfg.Metrics.Counter(metricWorkflowSteps, "state", "failed").Inc()
					failing = true
					failErr = out.err.Error()
				}
				e.cfg.Stream.Publish(obs.StreamEvent{
					Kind:     obs.KindStepFail,
					Workflow: id,
					TraceID:  rec.TraceID,
					Step:     wf.Steps[i].Name,
					Phase:    phase,
					Proc:     p,
					Time:     finRel[i],
				})
				continue
			}
			doneCount++
			ratio := observed / maxf(est(i, p), estFloor)
			e.mu.Lock()
			rec.Steps[i].State = StepDone
			rec.Steps[i].Error = ""
			rec.Steps[i].ObservedSeconds = observed
			rec.Steps[i].FinishedAt = time.Now()
			rec.ObservedW = append(rec.ObservedW, WEntry{
				Step: wf.Steps[i].Name, Task: i, Proc: p, Seconds: observed,
			})
			e.persistLocked(rec)
			e.mu.Unlock()
			e.flush()
			e.cfg.Metrics.Counter(metricWorkflowSteps, "state", "done").Inc()
			e.stepSecs.Observe(observed)
			e.driftHist.Observe(ratio)
			tr.Emit(obs.Event{Type: obs.EvComplete, Alg: "exec", Task: i, Proc: p,
				Start: startRel[i], Finish: finRel[i], Value: observed})
			e.cfg.Stream.Publish(obs.StreamEvent{
				Kind:     obs.KindStepDone,
				Workflow: id,
				TraceID:  rec.TraceID,
				Step:     wf.Steps[i].Name,
				Proc:     p,
				Time:     finRel[i],
				Value:    observed,
			})
			for _, a := range pr.G.Succs(dag.TaskID(i)) {
				depsLeft[a.Task]--
				if depsLeft[a.Task] == 0 {
					readyAt[a.Task] = finRel[i]
				}
			}
			if ratio > drift || ratio*drift < 1 {
				replan("drift")
			}
		case <-ticker.C:
			// Overdue detection: a running step past its (revised) estimate
			// by the drift factor is re-projected to need one more estimate
			// from now, and the frontier re-maps against that — the paper's
			// ITQ recomputation applied to live drift, before the slow step
			// even finishes.
			nowS := now()
			overdue := false
			for i := 0; i < n; i++ {
				if state[i] != StepRunning {
					continue
				}
				elapsed := nowS - startRel[i]
				if elapsed > proj[i]*drift {
					proj[i] = elapsed + est(i, assign[i])
					finRel[i] = startRel[i] + proj[i]
					e.driftHist.Observe(elapsed / maxf(est(i, assign[i]), estFloor))
					overdue = true
				}
			}
			if overdue {
				replan("overdue")
			}
		case <-rs.ctx.Done():
			// Shutdown or cancellation: kill step commands and wait for
			// their goroutines before deciding what to record.
			stepWG.Wait()
			if rs.userCancelled() {
				finalize(Cancelled, "cancelled")
				return
			}
			// Engine shutdown: leave the record running in the WAL so the
			// next Open resumes it.
			return
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
