package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// BarChart renders grouped vertical bars: one group per x tick, one bar per
// series within each group — the layout of the paper's efficiency figures.
// The y-axis always starts at zero (bar areas must be comparable).
type BarChart struct {
	Title  string
	XLabel string
	YLabel string
	X      []string
	Series []Series
	// Width/Height are the SVG canvas size in px; zero selects 640×400.
	Width, Height int
}

// WriteSVG renders the chart. Every series must have len(Y) == len(X) and
// non-negative finite values.
func (c *BarChart) WriteSVG(w io.Writer) error {
	if len(c.X) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("viz: empty chart")
	}
	hi := 0.0
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return fmt.Errorf("viz: series %q has %d points for %d x ticks", s.Name, len(s.Y), len(c.X))
		}
		if s.CI != nil && len(s.CI) != len(c.X) {
			return fmt.Errorf("viz: series %q has %d CI entries for %d x ticks", s.Name, len(s.CI), len(c.X))
		}
		for i, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) || y < 0 {
				return fmt.Errorf("viz: series %q has invalid bar value %g", s.Name, y)
			}
			if s.CI != nil {
				y += s.CI[i]
			}
			hi = math.Max(hi, y)
		}
	}
	if hi == 0 {
		hi = 1
	}
	hi *= 1.08 // headroom

	width, height := c.Width, c.Height
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 400
	}
	const (
		marginL = 62.0
		marginR = 150.0
		marginT = 40.0
		marginB = 52.0
	)
	plotW := float64(width) - marginL - marginR
	plotH := float64(height) - marginT - marginB
	if plotW < 50 || plotH < 50 {
		return fmt.Errorf("viz: canvas %dx%d too small", width, height)
	}

	groupW := plotW / float64(len(c.X))
	// Bars fill 80% of the group, split across series.
	barW := groupW * 0.8 / float64(len(c.Series))
	yAt := func(v float64) float64 { return marginT + plotH*(1-v/hi) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%g" y="22" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	for i := 0; i <= 5; i++ {
		v := hi * float64(i) / 5
		y := yAt(v)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", marginL, y, marginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end" fill="#444">%.3g</text>`+"\n", marginL-6, y+4, v)
	}
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n", marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n", marginL, marginT+plotH, marginL+plotW, marginT+plotH)

	for gi, tick := range c.X {
		groupX := marginL + groupW*float64(gi) + groupW*0.1
		for si, s := range c.Series {
			color := palette[si%len(palette)]
			x := groupX + barW*float64(si)
			y := yAt(s.Y[gi])
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="#333" stroke-width="0.5"/>`+"\n",
				x, y, barW, marginT+plotH-y, color)
			if s.CI != nil && s.CI[gi] > 0 {
				cx := x + barW/2
				top, bot := yAt(s.Y[gi]+s.CI[gi]), yAt(math.Max(0, s.Y[gi]-s.CI[gi]))
				fmt.Fprintf(&b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="#111" stroke-width="1"/>`+"\n", cx, top, cx, bot)
				fmt.Fprintf(&b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="#111" stroke-width="1"/>`+"\n", cx-2.5, top, cx+2.5, top)
			}
		}
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle" fill="#444">%s</text>`+"\n",
			marginL+groupW*(float64(gi)+0.5), marginT+plotH+18, esc(tick))
	}
	fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle" fill="#222">%s</text>`+"\n", marginL+plotW/2, float64(height)-12, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" transform="rotate(-90 16 %g)" text-anchor="middle" fill="#222">%s</text>`+"\n", marginT+plotH/2, marginT+plotH/2, esc(c.YLabel))

	for si, s := range c.Series {
		color := palette[si%len(palette)]
		ly := marginT + 16*float64(si)
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="12" height="12" fill="%s"/>`+"\n", marginL+plotW+10, ly-6, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" fill="#222">%s</text>`+"\n", marginL+plotW+28, ly+4, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
