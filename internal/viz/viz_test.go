package viz

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"hdlts/internal/core"
	"hdlts/internal/dynamic"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

func chart() *LineChart {
	return &LineChart{
		Title: "demo", XLabel: "CCR", YLabel: "SLR",
		X: []string{"1", "2", "3"},
		Series: []Series{
			{Name: "HDLTS", Y: []float64{1.2, 1.5, 1.9}},
			{Name: "HEFT", Y: []float64{1.3, 1.6, 2.0}},
		},
	}
}

func TestLineChartSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := chart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "HDLTS", "HEFT", "CCR", "SLR", "demo"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two series -> two polylines.
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	// 3 points × 2 series markers.
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Errorf("markers = %d, want 6", got)
	}
}

func TestLineChartValidation(t *testing.T) {
	var buf bytes.Buffer
	empty := &LineChart{}
	if err := empty.WriteSVG(&buf); err == nil {
		t.Error("empty chart rendered")
	}
	bad := chart()
	bad.Series[0].Y = []float64{1}
	if err := bad.WriteSVG(&buf); err == nil {
		t.Error("length mismatch accepted")
	}
	nan := chart()
	nan.Series[0].Y[1] = math.NaN()
	if err := nan.WriteSVG(&buf); err == nil {
		t.Error("NaN accepted")
	}
	tiny := chart()
	tiny.Width, tiny.Height = 60, 40
	if err := tiny.WriteSVG(&buf); err == nil {
		t.Error("unusably small canvas accepted")
	}
}

func TestLineChartCIWhiskers(t *testing.T) {
	c := chart()
	c.Series[0].CI = []float64{0.1, 0.2, 0}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// Two whiskered points × 3 line segments each, plus axes/grid lines; a
	// zero CI draws nothing. Count the thin (width 1) whisker lines.
	if got := strings.Count(buf.String(), `stroke-width="1"`); got != 6 {
		t.Fatalf("whisker segments = %d, want 6", got)
	}
	bad := chart()
	bad.Series[0].CI = []float64{1}
	if err := bad.WriteSVG(&buf); err == nil {
		t.Fatal("CI length mismatch accepted")
	}
}

func TestLineChartSinglePointAndFlatSeries(t *testing.T) {
	var buf bytes.Buffer
	c := &LineChart{
		Title: "flat", XLabel: "x", YLabel: "y",
		X:      []string{"only"},
		Series: []Series{{Name: "s", Y: []float64{5}}},
	}
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatalf("single-point chart failed: %v", err)
	}
}

func TestEscape(t *testing.T) {
	if got := esc(`<&>"'`); got != "&lt;&amp;&gt;&quot;&apos;" {
		t.Fatalf("esc = %q", got)
	}
}

func TestGanttSVG(t *testing.T) {
	pr := workflows.PaperExample()
	s, err := core.New().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGanttSVG(&buf, s, GanttConfig{Title: "HDLTS on Fig. 1"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "P1", "P2", "P3", "url(#dup)", "HDLTS on Fig. 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt SVG missing %q", want)
		}
	}
	// 10 primary tasks + 2 duplicates = 12 boxes, plus the background rect
	// and the rect inside the hatch-pattern definition.
	if got := strings.Count(out, "<rect"); got != 14 {
		t.Errorf("rects = %d, want 14", got)
	}
}

func TestGanttSVGRejectsIncomplete(t *testing.T) {
	pr := workflows.PaperExample()
	var buf bytes.Buffer
	if err := WriteGanttSVG(&buf, sched.NewSchedule(pr), GanttConfig{}); err == nil {
		t.Fatal("incomplete schedule rendered")
	}
}

func barChart() *BarChart {
	return &BarChart{
		Title: "eff", XLabel: "CPUs", YLabel: "Efficiency",
		X: []string{"2", "4"},
		Series: []Series{
			{Name: "HDLTS", Y: []float64{0.9, 0.7}},
			{Name: "HEFT", Y: []float64{0.8, 0.75}, CI: []float64{0.05, 0}},
		},
	}
}

func TestBarChartSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := barChart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "HDLTS", "HEFT", "CPUs", "Efficiency"} {
		if !strings.Contains(out, want) {
			t.Errorf("bar SVG missing %q", want)
		}
	}
	// 2 groups × 2 series bars + background + 2 legend swatches = 7 rects.
	if got := strings.Count(out, "<rect"); got != 7 {
		t.Errorf("rects = %d, want 7", got)
	}
}

func TestBarChartValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := (&BarChart{}).WriteSVG(&buf); err == nil {
		t.Error("empty bar chart rendered")
	}
	bad := barChart()
	bad.Series[0].Y = []float64{1}
	if err := bad.WriteSVG(&buf); err == nil {
		t.Error("length mismatch accepted")
	}
	neg := barChart()
	neg.Series[0].Y[0] = -1
	if err := neg.WriteSVG(&buf); err == nil {
		t.Error("negative bar accepted")
	}
	nan := barChart()
	nan.Series[1].Y[1] = math.NaN()
	if err := nan.WriteSVG(&buf); err == nil {
		t.Error("NaN accepted")
	}
	zero := barChart()
	zero.Series[0].Y = []float64{0, 0}
	zero.Series[1].Y = []float64{0, 0}
	zero.Series[1].CI = nil
	if err := zero.WriteSVG(&buf); err != nil {
		t.Errorf("all-zero chart should render: %v", err)
	}
}

func TestExecutionGanttSVG(t *testing.T) {
	pr := workflows.PaperExample().Normalize()
	r, err := dynamic.NewReality(pr, dynamic.Uncertainty{ExecJitter: 0.2}, nil, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynamic.Execute(r, dynamic.OnlineHDLTS{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteExecutionGanttSVG(&buf, pr, r, res, GanttConfig{Title: "online"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "online") {
		t.Fatalf("execution Gantt malformed:\n%.200s", out)
	}
	// All ten real tasks are drawn as rects (plus background + pattern).
	if got := strings.Count(out, "<rect"); got != 12 {
		t.Errorf("rects = %d, want 12", got)
	}
}

func TestLaneChartValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := (&LaneChart{}).WriteSVG(&buf); err == nil {
		t.Error("empty lane chart rendered")
	}
	bad := &LaneChart{Lanes: []Lane{{Name: "P1", Spans: []Span{{Start: 5, End: 3}}}}}
	if err := bad.WriteSVG(&buf); err == nil {
		t.Error("inverted span accepted")
	}
	zero := &LaneChart{Lanes: []Lane{{Name: "P1"}}}
	if err := zero.WriteSVG(&buf); err == nil {
		t.Error("zero-extent chart rendered")
	}
}
