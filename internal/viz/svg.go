// Package viz renders experiment curves and schedules as standalone SVG
// documents using only the standard library — the paper's figures as
// images, and Gantt charts for individual schedules.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// palette cycles through visually distinct stroke colours.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#17becf", "#e377c2", "#7f7f7f", "#bcbd22",
}

// Series is one named curve of a line chart.
type Series struct {
	Name string
	Y    []float64
	// CI, when non-nil, draws a ±CI[i] whisker at each point (e.g. the 95%
	// confidence half-width). Must match len(Y) when present.
	CI []float64
}

// LineChart describes one figure: labelled x ticks and one Y value per
// series per tick.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	X      []string
	Series []Series
	// Width/Height are the SVG canvas size in px; zero selects 640×400.
	Width, Height int
}

// WriteSVG renders the chart. Every series must have len(Y) == len(X).
func (c *LineChart) WriteSVG(w io.Writer) error {
	if len(c.X) == 0 || len(c.Series) == 0 {
		return fmt.Errorf("viz: empty chart")
	}
	for _, s := range c.Series {
		if len(s.Y) != len(c.X) {
			return fmt.Errorf("viz: series %q has %d points for %d x ticks", s.Name, len(s.Y), len(c.X))
		}
		if s.CI != nil && len(s.CI) != len(c.X) {
			return fmt.Errorf("viz: series %q has %d CI entries for %d x ticks", s.Name, len(s.CI), len(c.X))
		}
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 400
	}
	const (
		marginL = 62.0
		marginR = 150.0
		marginT = 40.0
		marginB = 52.0
	)
	plotW := float64(width) - marginL - marginR
	plotH := float64(height) - marginT - marginB
	if plotW < 50 || plotH < 50 {
		return fmt.Errorf("viz: canvas %dx%d too small", width, height)
	}

	// Y range: pad a little around the data; keep zero-baseline when the
	// data is non-negative and close to zero.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				return fmt.Errorf("viz: series %q contains a non-finite value", s.Name)
			}
			lo, hi = math.Min(lo, y), math.Max(hi, y)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.08
	lo, hi = lo-pad, hi+pad
	if lo > 0 && lo < (hi-lo)*0.5 {
		lo = 0
	}

	xAt := func(i int) float64 {
		if len(c.X) == 1 {
			return marginL + plotW/2
		}
		return marginL + plotW*float64(i)/float64(len(c.X)-1)
	}
	yAt := func(v float64) float64 {
		return marginT + plotH*(1-(v-lo)/(hi-lo))
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%g" y="22" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	// Axes and grid: 5 horizontal gridlines with tick labels.
	for i := 0; i <= 5; i++ {
		v := lo + (hi-lo)*float64(i)/5
		y := yAt(v)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", marginL, y, marginL+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end" fill="#444">%.3g</text>`+"\n", marginL-6, y+4, v)
	}
	for i := range c.X {
		x := xAt(i)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#eee"/>`+"\n", x, marginT, x, marginT+plotH)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle" fill="#444">%s</text>`+"\n", x, marginT+plotH+18, esc(c.X[i]))
	}
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n", marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n", marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle" fill="#222">%s</text>`+"\n", marginL+plotW/2, float64(height)-12, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" transform="rotate(-90 16 %g)" text-anchor="middle" fill="#222">%s</text>`+"\n", marginT+plotH/2, marginT+plotH/2, esc(c.YLabel))

	// Curves with point markers and a legend on the right.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i, y := range s.Y {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", xAt(i), yAt(y)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", strings.Join(pts, " "), color)
		for i, y := range s.Y {
			fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="3" fill="%s"/>`+"\n", xAt(i), yAt(y), color)
			if s.CI != nil && s.CI[i] > 0 {
				x := xAt(i)
				top, bot := yAt(y+s.CI[i]), yAt(y-s.CI[i])
				fmt.Fprintf(&b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="1"/>`+"\n", x, top, x, bot, color)
				fmt.Fprintf(&b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="1"/>`+"\n", x-3, top, x+3, top, color)
				fmt.Fprintf(&b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="1"/>`+"\n", x-3, bot, x+3, bot, color)
			}
		}
		ly := marginT + 16*float64(si)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n", marginL+plotW+10, ly, marginL+plotW+34, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" fill="#222">%s</text>`+"\n", marginL+plotW+40, ly+4, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// esc escapes the five XML-special characters for text nodes.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
