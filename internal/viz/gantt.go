package viz

import (
	"fmt"
	"io"

	"hdlts/internal/dag"
	"hdlts/internal/dynamic"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// GanttConfig tunes the SVG Gantt rendering.
type GanttConfig struct {
	// Width is the canvas width in px (default 900).
	Width int
	// RowHeight is the per-processor lane height in px (default 36).
	RowHeight int
	// Title is drawn above the chart.
	Title string
}

// WriteGanttSVG renders a completed schedule as an SVG Gantt chart: one lane
// per processor, one rectangle per task copy (duplicates hatched), labelled
// with task names where space allows.
func WriteGanttSVG(w io.Writer, s *sched.Schedule, cfg GanttConfig) error {
	if !s.Complete() {
		return fmt.Errorf("viz: cannot render an incomplete schedule")
	}
	pr := s.Problem()
	c := LaneChart{Title: cfg.Title, Width: cfg.Width, RowHeight: cfg.RowHeight, Makespan: s.Makespan()}
	for p := 0; p < pr.NumProcs(); p++ {
		lane := Lane{Name: pr.P.Name(platform.Proc(p))}
		for _, sl := range s.ProcSlots(platform.Proc(p)) {
			if sl.Dur() == 0 {
				continue
			}
			lane.Spans = append(lane.Spans, Span{
				Start: sl.Start, End: sl.End,
				Label: taskLabel(pr, sl.Task, sl.Duplicate),
				Color: int(sl.Task),
				Hatch: sl.Duplicate,
			})
		}
		c.Lanes = append(c.Lanes, lane)
	}
	return c.WriteSVG(w)
}

// WriteExecutionGanttSVG renders an online execution trace (package
// dynamic) as an SVG Gantt chart: actual start/finish times per task on the
// processors that really ran them.
func WriteExecutionGanttSVG(w io.Writer, pr *sched.Problem, r *dynamic.Reality, res *dynamic.Result, cfg GanttConfig) error {
	c := LaneChart{Title: cfg.Title, Width: cfg.Width, RowHeight: cfg.RowHeight, Makespan: res.Makespan}
	lanes := make([]Lane, pr.NumProcs())
	for p := range lanes {
		lanes[p].Name = pr.P.Name(platform.Proc(p))
	}
	for task, proc := range res.Proc {
		if int(proc) < 0 || int(proc) >= len(lanes) {
			return fmt.Errorf("viz: task %d ran on unknown processor %d", task, proc)
		}
		finish := res.Finish[task]
		start := finish - r.Exec(dag.TaskID(task), proc)
		if finish == start {
			continue
		}
		lanes[proc].Spans = append(lanes[proc].Spans, Span{
			Start: start, End: finish,
			Label: taskLabel(pr, dag.TaskID(task), false),
			Color: task,
		})
	}
	c.Lanes = lanes
	return c.WriteSVG(w)
}

func taskLabel(pr *sched.Problem, t dag.TaskID, dup bool) string {
	name := pr.G.Task(t).Name
	if name == "" {
		name = fmt.Sprintf("T%d", int(t)+1)
	}
	if dup {
		name += "*"
	}
	return name
}
