package viz

import (
	"fmt"
	"io"
	"strings"
)

// Span is one rendered interval in a lane chart.
type Span struct {
	Start, End float64
	Label      string
	// Color indexes the palette; negative selects the hatch pattern used
	// for redundant/duplicate work.
	Color int
	// Hatch renders the span with the duplicate-work pattern.
	Hatch bool
}

// Lane is one horizontal row of a lane chart (a processor, usually).
type Lane struct {
	Name  string
	Spans []Span
}

// LaneChart is the generic Gantt-style renderer underlying both offline
// schedule charts and online execution traces.
type LaneChart struct {
	Title string
	Lanes []Lane
	// Makespan fixes the time-axis extent; zero derives it from the spans.
	Makespan float64
	// Width is the canvas width in px (default 900); RowHeight the per-lane
	// height (default 36).
	Width, RowHeight int
}

// WriteSVG renders the chart.
func (c *LaneChart) WriteSVG(w io.Writer) error {
	if len(c.Lanes) == 0 {
		return fmt.Errorf("viz: lane chart has no lanes")
	}
	width := c.Width
	if width <= 0 {
		width = 900
	}
	rowH := c.RowHeight
	if rowH <= 0 {
		rowH = 36
	}
	mk := c.Makespan
	for _, lane := range c.Lanes {
		for _, sp := range lane.Spans {
			if sp.End < sp.Start {
				return fmt.Errorf("viz: span [%g, %g) in lane %q is inverted", sp.Start, sp.End, lane.Name)
			}
			if sp.End > mk {
				mk = sp.End
			}
		}
	}
	if mk <= 0 {
		return fmt.Errorf("viz: lane chart has zero extent")
	}
	const (
		marginL = 52.0
		marginR = 16.0
		marginT = 34.0
		marginB = 30.0
	)
	plotW := float64(width) - marginL - marginR
	height := int(marginT) + rowH*len(c.Lanes) + int(marginB)
	xAt := func(t float64) float64 { return marginL + plotW*t/mk }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%g" y="20" font-size="13" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))
	}
	b.WriteString(`<defs><pattern id="dup" width="6" height="6" patternUnits="userSpaceOnUse" patternTransform="rotate(45)"><rect width="6" height="6" fill="#ffffff"/><line x1="0" y1="0" x2="0" y2="6" stroke="#888" stroke-width="2"/></pattern></defs>` + "\n")

	for li, lane := range c.Lanes {
		laneY := marginT + float64(li*rowH)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end" fill="#222">%s</text>`+"\n", marginL-8, laneY+float64(rowH)/2+4, esc(lane.Name))
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ccc"/>`+"\n", marginL, laneY+float64(rowH), marginL+plotW, laneY+float64(rowH))
		for _, sp := range lane.Spans {
			if sp.End == sp.Start {
				continue
			}
			x := xAt(sp.Start)
			wpx := xAt(sp.End) - x
			fill := palette[((sp.Color%len(palette))+len(palette))%len(palette)]
			if sp.Hatch {
				fill = "url(#dup)"
			}
			fmt.Fprintf(&b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%d" fill="%s" stroke="#333" stroke-width="0.6"/>`+"\n",
				x, laneY+4, wpx, rowH-8, fill)
			if wpx > float64(6*len(sp.Label)) && sp.Label != "" {
				fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" text-anchor="middle" fill="#111">%s</text>`+"\n",
					x+wpx/2, laneY+float64(rowH)/2+4, esc(sp.Label))
			}
		}
	}
	axisY := marginT + float64(len(c.Lanes)*rowH)
	for i := 0; i <= 8; i++ {
		tv := mk * float64(i) / 8
		fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" text-anchor="middle" fill="#444">%.4g</text>`+"\n", xAt(tv), axisY+18, tv)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
