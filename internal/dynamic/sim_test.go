package dynamic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hdlts/internal/core"
	"hdlts/internal/dag"
	"hdlts/internal/gen"
	"hdlts/internal/heuristics"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

func TestUncertaintyValidate(t *testing.T) {
	good := []Uncertainty{{}, {ExecJitter: 0.5}, {CommJitter: 0.99}, {ExecJitter: 0.3, CommJitter: 0.3}}
	for _, u := range good {
		if err := u.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", u, err)
		}
	}
	bad := []Uncertainty{{ExecJitter: -0.1}, {ExecJitter: 1}, {CommJitter: 1.5}, {CommJitter: -1}}
	for _, u := range bad {
		if err := u.Validate(); err == nil {
			t.Errorf("%+v accepted", u)
		}
	}
}

func TestRealityZeroJitterMatchesEstimates(t *testing.T) {
	pr := workflows.PaperExample()
	r, err := NewReality(pr, Uncertainty{}, nil, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < pr.NumTasks(); task++ {
		for p := 0; p < pr.NumProcs(); p++ {
			if r.Exec(dag.TaskID(task), platform.Proc(p)) != pr.Exec(dag.TaskID(task), platform.Proc(p)) {
				t.Fatalf("zero-jitter exec differs at (%d,%d)", task, p)
			}
		}
	}
	if got := r.Comm(0, 1, 18, 0, 1); got != 18 {
		t.Fatalf("zero-jitter comm = %g, want 18", got)
	}
	if got := r.Comm(0, 1, 18, 1, 1); got != 0 {
		t.Fatalf("local comm = %g, want 0", got)
	}
}

func TestRealityJitterBounds(t *testing.T) {
	pr := workflows.PaperExample()
	u := Uncertainty{ExecJitter: 0.4, CommJitter: 0.4}
	r, err := NewReality(pr, u, nil, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < pr.NumTasks(); task++ {
		for p := 0; p < pr.NumProcs(); p++ {
			est := pr.Exec(dag.TaskID(task), platform.Proc(p))
			got := r.Exec(dag.TaskID(task), platform.Proc(p))
			if got < est*0.6-1e-9 || got > est*1.4+1e-9 {
				t.Fatalf("exec (%d,%d) = %g outside ±40%% of %g", task, p, got, est)
			}
		}
	}
}

func TestRealityFailureValidation(t *testing.T) {
	pr := workflows.PaperExample()
	rng := rand.New(rand.NewSource(3))
	if _, err := NewReality(pr, Uncertainty{}, []Failure{{Proc: 9, At: 1}}, rng); err == nil {
		t.Error("unknown processor accepted")
	}
	if _, err := NewReality(pr, Uncertainty{}, []Failure{{Proc: 0, At: -1}}, rng); err == nil {
		t.Error("negative failure time accepted")
	}
	all := []Failure{{Proc: 0, At: 5}, {Proc: 1, At: 5}, {Proc: 2, At: 5}}
	if _, err := NewReality(pr, Uncertainty{}, all, rng); err == nil {
		t.Error("all-processors failure accepted")
	}
	r, err := NewReality(pr, Uncertainty{}, []Failure{{Proc: 1, At: 20}, {Proc: 1, At: 10}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.Alive(1, 15) {
		t.Error("earliest failure time should win")
	}
	if !r.Alive(1, 5) || !r.Alive(0, 1e12) {
		t.Error("Alive wrong for healthy cases")
	}
}

func TestExecuteZeroJitterOnlineHDLTSMatchesExample(t *testing.T) {
	// Without jitter or failures, online HDLTS on the Fig. 1 instance is
	// HDLTS without entry duplication; its makespan must at least match the
	// no-duplication offline variant and respect the 73 lower line loosely.
	pr := workflows.PaperExample()
	r, err := NewReality(pr, Uncertainty{}, nil, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(r, OnlineHDLTS{})
	if err != nil {
		t.Fatal(err)
	}
	offline, err := core.NewWithOptions(core.Options{DisableDuplication: true}).Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-offline.Makespan()) > 1e-9 {
		t.Fatalf("online zero-jitter makespan %g, offline no-dup %g", res.Makespan, offline.Makespan())
	}
}

func TestExecuteStaticMappingZeroJitterReproducesPlan(t *testing.T) {
	// With zero jitter and no failures, deploying an offline plan must
	// reproduce its makespan exactly (for plans without duplicates; entry
	// duplicates are an offline-only construct, so use HEFT).
	pr := workflows.PaperExample()
	plan, err := heuristics.NewHEFT().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReality(plan.Problem(), Uncertainty{}, nil, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(r, NewStaticMapping("HEFT", plan))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-plan.Makespan()) > 1e-9 {
		t.Fatalf("replayed makespan %g, planned %g", res.Makespan, plan.Makespan())
	}
	// Every task must run on its planned processor.
	for task := 0; task < pr.NumTasks(); task++ {
		pl, _ := plan.PlacementOf(dag.TaskID(task))
		if res.Proc[task] != pl.Proc {
			t.Fatalf("task %d ran on P%d, planned P%d", task, res.Proc[task]+1, pl.Proc+1)
		}
	}
}

func TestExecuteWithFailureRoutesAround(t *testing.T) {
	pr := workflows.PaperExample()
	// P3 (the fastest for the entry) dies immediately: nothing may run on it.
	r, err := NewReality(pr, Uncertainty{}, []Failure{{Proc: 2, At: 0}}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(r, OnlineHDLTS{})
	if err != nil {
		t.Fatal(err)
	}
	for task, p := range res.Proc {
		if p == 2 {
			t.Fatalf("task %d ran on the failed processor", task)
		}
	}
	if res.Makespan <= 0 {
		t.Fatal("empty execution")
	}
}

func TestExecuteStaticMappingFailover(t *testing.T) {
	pr := workflows.PaperExample()
	plan, err := heuristics.NewHEFT().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	// Kill a processor the plan uses, from t=0; the failover must reroute.
	used := map[platform.Proc]bool{}
	for task := 0; task < pr.NumTasks(); task++ {
		pl, _ := plan.PlacementOf(dag.TaskID(task))
		used[pl.Proc] = true
	}
	var victim platform.Proc = -1
	for p := range used {
		victim = p
		break
	}
	r, err := NewReality(plan.Problem(), Uncertainty{}, []Failure{{Proc: victim, At: 0}}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(r, NewStaticMapping("HEFT", plan))
	if err != nil {
		t.Fatal(err)
	}
	for task, p := range res.Proc {
		if p == victim {
			t.Fatalf("task %d ran on failed P%d", task, victim+1)
		}
	}
}

// TestQuickExecutionFeasible: for random problems, jitters, and a possible
// failure, every policy completes with a causally consistent execution:
// every task starts (finish − actual exec) no earlier than every parent's
// finish plus actual transfer time, and never on a dead processor.
func TestQuickExecutionFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr, err := gen.Random(gen.Params{
			V: 1 + rng.Intn(60), Alpha: 1.0, Density: 1 + rng.Intn(4),
			CCR: float64(1 + rng.Intn(5)), Procs: 2 + rng.Intn(6),
			WDAG: 60, Beta: 1.2,
		}, rng)
		if err != nil {
			return false
		}
		base := pr.Normalize()
		u := Uncertainty{ExecJitter: 0.3 * rng.Float64(), CommJitter: 0.3 * rng.Float64()}
		var failures []Failure
		if rng.Intn(2) == 0 && base.NumProcs() > 1 {
			failures = append(failures, Failure{Proc: platform.Proc(rng.Intn(base.NumProcs())), At: float64(rng.Intn(200))})
		}
		r, err := NewReality(base, u, failures, rng)
		if err != nil {
			return false
		}
		hdltsPlan, err := core.New().Schedule(base)
		if err != nil {
			return false
		}
		heftPlan, err := heuristics.NewHEFT().Schedule(base)
		if err != nil {
			return false
		}
		policies := []Policy{
			OnlineHDLTS{},
			NewStaticMapping("HDLTS", hdltsPlan),
			NewStaticMapping("HEFT", heftPlan),
			NewStaticOrderDynamicEFT("HEFT", heftPlan),
		}
		for _, p := range policies {
			res, err := Execute(r, p)
			if err != nil {
				t.Logf("%s: %v", p.Name(), err)
				return false
			}
			if !causallyConsistent(base, r, res) {
				t.Logf("%s: causality violated", p.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// causallyConsistent re-derives feasibility of an execution trace.
func causallyConsistent(pr *sched.Problem, r *Reality, res *Result) bool {
	g := pr.G
	for task := 0; task < pr.NumTasks(); task++ {
		t := dag.TaskID(task)
		p := res.Proc[task]
		if p < 0 || res.Finish[task] < 0 {
			return false
		}
		start := res.Finish[task] - r.Exec(t, p)
		if start < -1e-9 {
			return false
		}
		for _, a := range g.Preds(t) {
			arr := res.Finish[a.Task] + r.Comm(a.Task, t, a.Data, res.Proc[a.Task], p)
			if start < arr-1e-9 {
				return false
			}
		}
	}
	return true
}

func TestCompare(t *testing.T) {
	pr := workflows.PaperExample()
	sums, err := Compare(pr, Uncertainty{ExecJitter: 0.3, CommJitter: 0.3}, nil, 20, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 4 {
		t.Fatalf("policies = %d, want 4", len(sums))
	}
	for _, s := range sums {
		if s.Makespan.N() != 20 {
			t.Errorf("%s: N = %d", s.Policy, s.Makespan.N())
		}
		if s.Makespan.Mean() <= 0 || s.Degradation.Mean() <= 0 {
			t.Errorf("%s: degenerate summary %s", s.Policy, s.Makespan.String())
		}
	}
	if _, err := Compare(pr, Uncertainty{}, nil, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero reps accepted")
	}
}

// TestRealityCommJitterCoherentPerEdge: one edge's realised transfer scale
// is drawn once, so shipping the same edge between different processor
// pairs scales both base costs by the same factor.
func TestRealityCommJitterCoherentPerEdge(t *testing.T) {
	g := dag.New(2)
	a := g.AddTask("a")
	b := g.AddTask("b")
	g.MustAddEdge(a, b, 12)
	pl, err := platform.TwoClusters(2, 2, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	w := platform.MustCostsFromRows([][]float64{{1, 1, 1, 1}, {2, 2, 2, 2}})
	pr := sched.MustProblem(g, pl, w)
	r, err := NewReality(pr, Uncertainty{CommJitter: 0.5}, nil, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	intra := r.Comm(a, b, 12, 0, 1) // base 12
	inter := r.Comm(a, b, 12, 0, 2) // base 24
	if intra <= 0 || inter <= 0 {
		t.Fatal("non-positive realised comm")
	}
	if ratio := inter / intra; ratio < 1.999 || ratio > 2.001 {
		t.Fatalf("edge scale not coherent across pairs: ratio %g, want 2", ratio)
	}
	// And the realised scale is within the ±50% band of the base.
	if intra < 6-1e-9 || intra > 18+1e-9 {
		t.Fatalf("realised comm %g outside jitter band [6, 18]", intra)
	}
}
