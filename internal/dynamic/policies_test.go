package dynamic

import (
	"math/rand"
	"testing"

	"hdlts/internal/dag"
	"hdlts/internal/heuristics"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

// forkReality builds a 3-task problem (A -> {B, C}) and a zero-jitter
// reality for policy unit tests.
//
//	costs (2 procs): A: 2/4, B: 6/1, C: 3/3; edges data 1 each
func forkReality(t *testing.T, failures []Failure) (*Reality, *sched.Problem) {
	t.Helper()
	g := dag.New(3)
	a := g.AddTask("A")
	b := g.AddTask("B")
	c := g.AddTask("C")
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 1)
	w := platform.MustCostsFromRows([][]float64{{2, 4}, {6, 1}, {3, 3}})
	pr := sched.MustProblem(g, platform.MustUniform(2), w)
	r, err := NewReality(pr, Uncertainty{}, failures, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return r, pr
}

func TestOnlineHDLTSPicksHighestPV(t *testing.T) {
	r, _ := forkReality(t, nil)
	res, err := Execute(r, OnlineHDLTS{})
	if err != nil {
		t.Fatal(err)
	}
	// A runs first on P1 (EFT 2 vs 4). Then B (EFT spread {6+..., 1+...} is
	// wider than C's {3,3}) must be dispatched before C and land on P2.
	if res.Proc[0] != 0 {
		t.Errorf("A ran on P%d, want P1", res.Proc[0]+1)
	}
	if res.Proc[1] != 1 {
		t.Errorf("B ran on P%d, want P2 (its fast processor)", res.Proc[1]+1)
	}
	// B (the PV-heavy task, EFT vector {8, 4}) is dispatched at its
	// earliest opportunity: A finishes at 2, the transfer lands at 3, and B
	// finishes at 3 + 1 = 4 on P2. C fills P1 meanwhile, finishing at 5.
	if res.Finish[1] != 4 {
		t.Errorf("B finished at %g, want 4", res.Finish[1])
	}
	if res.Finish[2] != 5 {
		t.Errorf("C finished at %g, want 5", res.Finish[2])
	}
	if res.Makespan != 5 {
		t.Errorf("makespan = %g, want 5", res.Makespan)
	}
}

func TestStaticOrderFollowsPriority(t *testing.T) {
	r, pr := forkReality(t, nil)
	plan, err := heuristics.NewHEFT().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	pol := NewStaticOrderDynamicEFT("HEFT", plan)
	res, err := Execute(r, pol)
	if err != nil {
		t.Fatal(err)
	}
	// Zero jitter: dispatch order equals the plan's start order per
	// processor pair; completion must be feasible and total.
	for task, f := range res.Finish {
		if f < 0 {
			t.Fatalf("task %d unfinished", task)
		}
	}
	if pol.Name() != "HEFT-order" {
		t.Errorf("Name = %q", pol.Name())
	}
}

func TestStaticMappingRejectsNothingWhenHealthy(t *testing.T) {
	r, pr := forkReality(t, nil)
	plan, err := heuristics.NewHEFT().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(r, NewStaticMapping("HEFT", plan))
	if err != nil {
		t.Fatal(err)
	}
	for task := 0; task < pr.NumTasks(); task++ {
		pl, _ := plan.PlacementOf(dag.TaskID(task))
		if res.Proc[task] != pl.Proc {
			t.Fatalf("task %d deviated from the plan", task)
		}
	}
}

func TestPoliciesAvoidInitiallyDeadProcessor(t *testing.T) {
	// P2 dead from t=0: every policy must keep everything on P1.
	r, pr := forkReality(t, []Failure{{Proc: 1, At: 0}})
	plan, err := heuristics.NewHEFT().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []Policy{
		OnlineHDLTS{},
		NewStaticMapping("HEFT", plan),
		NewStaticOrderDynamicEFT("HEFT", plan),
	} {
		res, err := Execute(r, pol)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		for task, p := range res.Proc {
			if p == 1 {
				t.Errorf("%s: task %d on the dead processor", pol.Name(), task)
			}
		}
	}
}

func TestBestAliveEFTNoAliveProcs(t *testing.T) {
	// Craft a state where everything is dead; bestAliveEFT must decline.
	r, pr := forkReality(t, []Failure{{Proc: 1, At: 0}})
	st := &State{
		Problem: pr, Reality: r, Now: 0,
		Ready:  []dag.TaskID{0},
		Avail:  make([]float64, 2),
		Finish: []float64{-1, -1, -1},
		Proc:   []platform.Proc{-1, -1, -1},
	}
	// Simulate time past a hypothetical failure of P1 too by checking the
	// helper with a reality where P1 dies at 5 and Now is later.
	r2, err := NewReality(pr, Uncertainty{}, []Failure{{Proc: 1, At: 0}}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	st.Reality = r2
	if _, ok := bestAliveEFT(st, 0); !ok {
		t.Fatal("P1 is alive; helper should find it")
	}
	if got := len(aliveProcs(st)); got != 1 {
		t.Fatalf("alive procs = %d, want 1", got)
	}
}

func TestExecuteRejectsStartBeforeParent(t *testing.T) {
	// A policy that tries to start a child before its parent finished must
	// surface an executor error, not a corrupt trace.
	r, _ := forkReality(t, nil)
	bad := badPolicy{}
	if _, err := Execute(r, bad); err == nil {
		t.Fatal("causality-violating policy accepted")
	}
}

// badPolicy tries to start task 1 (a child) first.
type badPolicy struct{}

func (badPolicy) Name() string { return "bad" }
func (badPolicy) Pick(st *State) (dag.TaskID, platform.Proc, bool) {
	return 1, 0, true // task 1 is never in the initial ready set
}

func TestCompareOnStructuredWorkflow(t *testing.T) {
	// End-to-end: the comparison panel also works on a fixed real-world
	// structure (MolDyn) and produces finite summaries.
	pr := workflows.PaperExample()
	sums, err := Compare(pr, Uncertainty{ExecJitter: 0.1, CommJitter: 0.1},
		[]Failure{{Proc: 2, At: 40}}, 6, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sums {
		if s.SLR.Mean() < 1 {
			t.Errorf("%s: actual SLR %g < 1", s.Policy, s.SLR.Mean())
		}
	}
}
