package dynamic

import (
	"math/rand"
	"testing"

	"hdlts/internal/obs"
	"hdlts/internal/workflows"
)

// TestExecuteEventStream runs the online executor against a traced problem
// and checks the run-time event stream: one replan per policy consultation,
// one dispatch and one completion per task, failure and drain markers.
func TestExecuteEventStream(t *testing.T) {
	col := obs.NewCollector()
	pr := workflows.PaperExample().WithTracer(col)
	r, err := NewReality(pr, Uncertainty{}, []Failure{{Proc: 2, At: 20}}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(r, OnlineHDLTS{})
	if err != nil {
		t.Fatal(err)
	}

	var dispatch, complete, replan, failure, drain int
	for _, ev := range col.Events() {
		if ev.Alg != "HDLTS-online" {
			t.Fatalf("event not stamped with policy name: %+v", ev)
		}
		switch ev.Type {
		case obs.EvDispatch:
			dispatch++
		case obs.EvComplete:
			complete++
			if res.Finish[ev.Task] != ev.Finish {
				t.Errorf("completion of T%d at %g disagrees with result %g", ev.Task+1, ev.Finish, res.Finish[ev.Task])
			}
			if ev.Start > ev.Finish {
				t.Errorf("span of T%d inverted: [%g, %g]", ev.Task+1, ev.Start, ev.Finish)
			}
		case obs.EvReplan:
			replan++
			if ev.Value < 1 {
				t.Errorf("replan with empty ready set: %+v", ev)
			}
		case obs.EvFailure:
			failure++
			if ev.Proc != 2 || ev.Time != 20 {
				t.Errorf("failure event = (P%d, t=%g), want (P3, t=20)", ev.Proc+1, ev.Time)
			}
		case obs.EvDrain:
			drain++
			if ev.Proc != 2 {
				t.Errorf("drain on P%d, want P3", ev.Proc+1)
			}
		}
	}
	n := pr.NumTasks()
	if dispatch != n || complete != n {
		t.Errorf("dispatch/complete = %d/%d, want %d/%d", dispatch, complete, n, n)
	}
	if replan < n {
		t.Errorf("replan events = %d, want >= %d (one per started task)", replan, n)
	}
	if failure != 1 {
		t.Errorf("failure events = %d, want 1", failure)
	}
	// Tasks accepted on P3 before t=20 that finish after it drain; with
	// zero jitter on this example that may or may not occur, so only check
	// drains are a subset of completions.
	if drain > complete {
		t.Errorf("drains (%d) exceed completions (%d)", drain, complete)
	}
}

// TestExecuteEventStreamDeterministic runs the same seeded reality twice
// and requires identical event sequences.
func TestExecuteEventStreamDeterministic(t *testing.T) {
	runOnce := func() []obs.Event {
		col := obs.NewCollector()
		pr := workflows.PaperExample().WithTracer(col)
		r, err := NewReality(pr, Uncertainty{ExecJitter: 0.3, CommJitter: 0.3}, nil, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Execute(r, OnlineHDLTS{}); err != nil {
			t.Fatal(err)
		}
		return col.Events()
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
