package dynamic

import (
	"fmt"
	"math/rand"

	"hdlts/internal/core"
	"hdlts/internal/heuristics"
	"hdlts/internal/sched"
	"hdlts/internal/stats"
)

// Summary aggregates one policy's behaviour over repeated realities.
type Summary struct {
	Policy string
	// Makespan aggregates actual makespans.
	Makespan stats.Running
	// SLR aggregates the actual scheduling length ratio: realised makespan
	// over the estimated critical-path lower bound (Eq. 10 applied to the
	// execution rather than the plan), comparable across policies and
	// problems.
	SLR stats.Running
	// Degradation aggregates actual/planned makespan ratios, where planned
	// is the offline HDLTS makespan on estimated costs (a common yardstick
	// for every policy so ratios are comparable).
	Degradation stats.Running
}

// Merge folds another summary for the same policy into s.
func (s *Summary) Merge(o Summary) {
	s.Makespan.Merge(o.Makespan)
	s.SLR.Merge(o.SLR)
	s.Degradation.Merge(o.Degradation)
}

// Compare executes the standard policy panel — online HDLTS, HEFT deployed
// as a static mapping, HEFT order with dynamic EFT, and HDLTS's own offline
// plan deployed statically — over reps independent realities drawn from the
// uncertainty model, all facing identical cost draws per repetition.
func Compare(pr *sched.Problem, u Uncertainty, failures []Failure, reps int, rng *rand.Rand) ([]Summary, error) {
	if reps < 1 {
		return nil, fmt.Errorf("dynamic: reps = %d, want >= 1", reps)
	}
	base := pr.Normalize()

	hdltsPlan, err := core.New().Schedule(base)
	if err != nil {
		return nil, err
	}
	heftPlan, err := heuristics.NewHEFT().Schedule(base)
	if err != nil {
		return nil, err
	}
	planned := hdltsPlan.Makespan()
	if planned <= 0 {
		return nil, fmt.Errorf("dynamic: degenerate plan with makespan %g", planned)
	}
	lb, err := base.CPMinLowerBound()
	if err != nil {
		return nil, err
	}
	if lb <= 0 {
		return nil, fmt.Errorf("dynamic: degenerate lower bound %g", lb)
	}

	policies := []Policy{
		OnlineHDLTS{},
		NewStaticMapping("HDLTS", hdltsPlan),
		NewStaticMapping("HEFT", heftPlan),
		NewStaticOrderDynamicEFT("HEFT", heftPlan),
	}
	out := make([]Summary, len(policies))
	for i, p := range policies {
		out[i].Policy = p.Name()
	}

	for rep := 0; rep < reps; rep++ {
		r, err := NewReality(base, u, failures, rng)
		if err != nil {
			return nil, err
		}
		for i, p := range policies {
			res, err := Execute(r, p)
			if err != nil {
				return nil, fmt.Errorf("dynamic: rep %d policy %s: %w", rep, p.Name(), err)
			}
			out[i].Makespan.Add(res.Makespan)
			out[i].SLR.Add(res.Makespan / lb)
			out[i].Degradation.Add(res.Makespan / planned)
		}
	}
	return out, nil
}
