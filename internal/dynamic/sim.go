// Package dynamic implements the paper's future-work scenario (Section VI):
// executing a workflow *online* in an uncertain heterogeneous environment.
//
// The offline algorithms of this repository plan against estimated costs;
// at run time actual execution and communication times deviate from the
// estimates, and processors may fail. This package provides an event-driven
// executor that replays scheduling policies under such uncertainty:
//
//   - OnlineHDLTS re-runs the HDLTS decision rule at run time: whenever a
//     processor event occurs it recomputes penalty values for the *current*
//     ready set against the *actual* state (the paper's claim is that the
//     dynamic ITQ makes HDLTS robust to exactly this);
//   - StaticMapping executes a fixed offline schedule's task→processor
//     mapping (per-processor order preserved), as a classic static plan
//     would be deployed;
//   - StaticOrderDynamicEFT keeps an offline priority order but re-selects
//     processors online by estimated EFT against actual availability — the
//     natural online adaptation of HEFT-style lists.
//
// Uncertainty is multiplicative jitter: the actual duration of a task (or
// transfer) is its estimate scaled by a uniform factor from
// [1−u, 1+u]; jitter draws are deterministic per (task, processor) under
// the simulation's RNG so all policies face identical realities. Failures
// stop a processor from accepting new work at a given time (the task
// running there, if any, completes — a graceful drain).
package dynamic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// Executor metric series names.
const (
	metricDispatch = "hdlts_dynamic_dispatch_total"
	metricComplete = "hdlts_dynamic_complete_total"
	metricFailures = "hdlts_dynamic_failures_total"
	metricPickTime = "hdlts_dynamic_pick_seconds"
)

// Executor metrics (default obs registry). Pick latency is recorded per
// policy under metricPickTime{policy=...}.
var (
	dispatchCount = obs.Default().Counter(metricDispatch)
	completeCount = obs.Default().Counter(metricComplete)
	failureCount  = obs.Default().Counter(metricFailures)
)

// Pick decisions are µs-scale for greedy policies; give the latency
// histogram log-spaced 1µs–1s buckets before any series is created.
func init() {
	obs.Default().SetBuckets(metricPickTime, obs.ExpBuckets(1e-6, 1, 3))
}

// Uncertainty configures run-time deviation from estimated costs.
type Uncertainty struct {
	// ExecJitter u scales actual execution times by U[1−u, 1+u]; 0 ≤ u < 1.
	ExecJitter float64
	// CommJitter scales actual communication times the same way.
	CommJitter float64
}

// Validate rejects meaningless jitter fractions.
func (u Uncertainty) Validate() error {
	if u.ExecJitter < 0 || u.ExecJitter >= 1 {
		return fmt.Errorf("dynamic: exec jitter %g outside [0, 1)", u.ExecJitter)
	}
	if u.CommJitter < 0 || u.CommJitter >= 1 {
		return fmt.Errorf("dynamic: comm jitter %g outside [0, 1)", u.CommJitter)
	}
	return nil
}

// Failure marks processor Proc as refusing new tasks from time At onward.
type Failure struct {
	Proc platform.Proc
	At   float64
}

// Reality holds the realised (actual) costs of one simulation run. It is
// generated once per run so every policy is measured against the same draw.
type Reality struct {
	pr   *sched.Problem
	exec []float64 // task × proc actual execution times
	comm map[[2]int][]float64
	fail []float64 // per processor: time of failure (+Inf if none)
}

// NewReality draws actual costs for a problem under the uncertainty model.
// The problem must be normalised (single entry/exit) — callers usually pass
// pr.Normalize().
func NewReality(pr *sched.Problem, u Uncertainty, failures []Failure, rng *rand.Rand) (*Reality, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	n, p := pr.NumTasks(), pr.NumProcs()
	r := &Reality{
		pr:   pr,
		exec: make([]float64, n*p),
		comm: make(map[[2]int][]float64),
		fail: make([]float64, p),
	}
	jitter := func(u float64) float64 {
		if u == 0 {
			return 1
		}
		return 1 - u + 2*u*rng.Float64()
	}
	for t := 0; t < n; t++ {
		for q := 0; q < p; q++ {
			r.exec[t*p+q] = pr.Exec(dag.TaskID(t), platform.Proc(q)) * jitter(u.ExecJitter)
		}
	}
	// One realised scale per edge (applied on top of the pairwise
	// bandwidth): transfers of one edge jitter coherently.
	for t := 0; t < n; t++ {
		for _, a := range pr.G.Succs(dag.TaskID(t)) {
			r.comm[[2]int{t, int(a.Task)}] = []float64{jitter(u.CommJitter)}
		}
	}
	for q := range r.fail {
		r.fail[q] = inf
	}
	for _, f := range failures {
		if int(f.Proc) < 0 || int(f.Proc) >= p {
			return nil, fmt.Errorf("dynamic: failure on unknown processor %d", f.Proc)
		}
		if f.At < 0 {
			return nil, fmt.Errorf("dynamic: failure time %g negative", f.At)
		}
		if f.At < r.fail[f.Proc] {
			r.fail[f.Proc] = f.At
		}
	}
	// At least one processor must stay alive or execution can deadlock.
	alive := false
	for _, ft := range r.fail {
		if ft == inf {
			alive = true
			break
		}
	}
	if !alive {
		return nil, fmt.Errorf("dynamic: every processor fails; nothing can finish")
	}
	return r, nil
}

var inf = math.Inf(1)

// Exec returns the realised execution time of t on p.
func (r *Reality) Exec(t dag.TaskID, p platform.Proc) float64 {
	return r.exec[int(t)*r.pr.NumProcs()+int(p)]
}

// Comm returns the realised communication time of edge (u→v) between two
// processors.
func (r *Reality) Comm(u, v dag.TaskID, data float64, a, b platform.Proc) float64 {
	base := r.pr.Comm(data, a, b)
	if base == 0 {
		return 0
	}
	if s, ok := r.comm[[2]int{int(u), int(v)}]; ok {
		return base * s[0]
	}
	return base
}

// Alive reports whether processor p accepts new tasks at the given time.
func (r *Reality) Alive(p platform.Proc, at float64) bool { return at < r.fail[p] }

// Result summarises one simulated execution.
type Result struct {
	Policy   string
	Makespan float64
	// Finish holds every task's actual finish time.
	Finish []float64
	// Proc holds every task's actual processor.
	Proc []platform.Proc
}

// state is the executor's view during a run.
type state struct {
	r        *Reality
	now      float64
	avail    []float64 // per processor: when it is free again
	start    []float64 // per task: actual start (−1 while pending)
	finish   []float64 // per task: actual finish (−1 while pending)
	proc     []platform.Proc
	remain   []int // unscheduled-parent counts
	ready    []dag.TaskID
	unplaced int
	// tr receives run-time events (dispatches, completions, failures,
	// drains, replans), each stamped with the policy name in alg.
	tr  obs.Tracer
	alg string
}

// Policy decides, at each scheduling opportunity, which ready task to start
// on which processor. Returning ok == false defers the remaining ready
// tasks until the next completion event (e.g. all preferred processors are
// busy and the policy wants to wait).
type Policy interface {
	Name() string
	// Pick inspects the current ready set and simulation state and returns
	// the next assignment. It is called repeatedly until it declines or the
	// ready set empties.
	Pick(st *State) (task dag.TaskID, proc platform.Proc, ok bool)
}

// State is the read-only view handed to policies.
type State struct {
	Problem *sched.Problem
	Reality *Reality
	Now     float64
	// Ready lists tasks whose parents all finished, ascending by ID.
	Ready []dag.TaskID
	// Avail is each processor's next-free time (≥ Now for busy processors).
	Avail []float64
	// Finish holds actual finish times for completed tasks, −1 otherwise.
	Finish []float64
	// Proc holds the processor of every started task (−1 otherwise).
	Proc []platform.Proc
}

// ArrivalAt returns the earliest time the inputs of task t are all present
// on processor p under the realised costs: the actual ready time.
func (s *State) ArrivalAt(t dag.TaskID, p platform.Proc) float64 {
	ready := 0.0
	for _, a := range s.Problem.G.Preds(t) {
		u := a.Task
		arr := s.Finish[u] + s.Reality.Comm(u, t, a.Data, s.Proc[u], p)
		if arr > ready {
			ready = arr
		}
	}
	return ready
}

// EstimatedEFT returns the *estimated* EFT of t on p given actual current
// availability (policies plan with estimates; reality bills actuals).
func (s *State) EstimatedEFT(t dag.TaskID, p platform.Proc) float64 {
	ready := 0.0
	for _, a := range s.Problem.G.Preds(t) {
		arr := s.Finish[a.Task] + s.Problem.Comm(a.Data, s.Proc[a.Task], p)
		if arr > ready {
			ready = arr
		}
	}
	est := ready
	if s.Avail[p] > est {
		est = s.Avail[p]
	}
	return est + s.Problem.Exec(t, p)
}

// Execute runs the workflow to completion under the given reality and
// policy, returning actual finish times. It returns an error if execution
// deadlocks (cannot happen with live processors and a sane policy, but
// guarded regardless).
//
// When the reality's problem carries a tracer (Problem.WithTracer), the
// run streams typed events: one EvReplan per policy consultation, EvDispatch
// and EvComplete per task (EvDrain when the task's processor had failed
// mid-run), and one EvFailure per realised processor failure. All event
// fields derive from simulation state, so a seeded run emits a
// deterministic stream; policy decision latency goes to the metrics
// registry instead (hdlts_dynamic_pick_seconds{policy=...}).
func Execute(r *Reality, pol Policy) (*Result, error) {
	pr := r.pr
	g := pr.G
	n := g.NumTasks()
	st := &state{
		r:        r,
		avail:    make([]float64, pr.NumProcs()),
		start:    make([]float64, n),
		finish:   make([]float64, n),
		proc:     make([]platform.Proc, n),
		remain:   make([]int, n),
		unplaced: n,
		tr:       pr.Tracer(),
		alg:      pol.Name(),
	}
	for t := 0; t < n; t++ {
		st.start[t] = -1
		st.finish[t] = -1
		st.proc[t] = -1
		st.remain[t] = g.InDegree(dag.TaskID(t))
		if st.remain[t] == 0 {
			st.ready = append(st.ready, dag.TaskID(t))
		}
	}
	pickTime := obs.Default().Histogram(metricPickTime, "policy", pol.Name())
	// Replan decisions also land in the solver phase histogram, so dynamic
	// policies share the per-phase vocabulary with the static solvers. The
	// clock read from pickTime is reused.
	replanAcc := obs.SolverProfileFor(pol.Name()).Accum(obs.PhaseReplan)
	defer replanAcc.Flush()

	// failed tracks which processor failures have been reported already.
	failed := make([]bool, pr.NumProcs())
	emitFailures := func(upTo float64) {
		for q := range failed {
			if !failed[q] && r.fail[q] <= upTo {
				failed[q] = true
				failureCount.Inc()
				if st.tr.Enabled() {
					st.tr.Emit(obs.Event{Type: obs.EvFailure, Alg: st.alg, Task: -1, Proc: q, Time: r.fail[q]})
				}
			}
		}
	}
	emitFailures(st.now)

	// Completion events drive time forward. pending tracks started-but-
	// unfinished tasks by finish time.
	type event struct {
		at   float64
		task dag.TaskID
	}
	var pending []event

	view := &State{Problem: pr, Reality: r, Avail: st.avail, Finish: st.finish, Proc: st.proc}

	for st.unplaced > 0 || len(pending) > 0 {
		// Let the policy start as many ready tasks as it wants at time now.
		for len(st.ready) > 0 {
			sort.Slice(st.ready, func(i, j int) bool { return st.ready[i] < st.ready[j] })
			view.Now = st.now
			view.Ready = st.ready
			if st.tr.Enabled() {
				st.tr.Emit(obs.Event{Type: obs.EvReplan, Alg: st.alg, Task: -1, Proc: -1, Time: st.now, Value: float64(len(st.ready))})
			}
			pickStart := time.Now()
			task, proc, ok := pol.Pick(view)
			pickTime.ObserveSince(pickStart)
			replanAcc.ObserveSince(pickStart)
			if !ok {
				break
			}
			if err := st.startTask(task, proc); err != nil {
				return nil, err
			}
			pending = append(pending, event{at: st.finish[task], task: task})
		}
		if len(pending) == 0 {
			if st.unplaced > 0 {
				return nil, fmt.Errorf("dynamic: policy %s stalled with %d tasks unfinished", pol.Name(), st.unplaced)
			}
			break
		}
		// Advance to the earliest completion.
		sort.Slice(pending, func(i, j int) bool {
			if pending[i].at != pending[j].at {
				return pending[i].at < pending[j].at
			}
			return pending[i].task < pending[j].task
		})
		ev := pending[0]
		pending = pending[1:]
		st.now = ev.at
		emitFailures(st.now)
		completeCount.Inc()
		if st.tr.Enabled() {
			p := st.proc[ev.task]
			st.tr.Emit(obs.Event{Type: obs.EvComplete, Alg: st.alg, Task: int(ev.task), Proc: int(p), Start: st.start[ev.task], Finish: ev.at})
			if !r.Alive(p, ev.at) {
				// The processor failed while the task was running; this
				// completion is the graceful drain.
				st.tr.Emit(obs.Event{Type: obs.EvDrain, Alg: st.alg, Task: int(ev.task), Proc: int(p), Time: ev.at, Finish: ev.at})
			}
		}
		for _, a := range g.Succs(ev.task) {
			st.remain[a.Task]--
			if st.remain[a.Task] == 0 {
				st.ready = append(st.ready, a.Task)
			}
		}
	}

	mk := 0.0
	for _, f := range st.finish {
		if f > mk {
			mk = f
		}
	}
	return &Result{
		Policy:   pol.Name(),
		Makespan: mk,
		Finish:   append([]float64(nil), st.finish...),
		Proc:     append([]platform.Proc(nil), st.proc...),
	}, nil
}

// startTask begins task t on processor p at the earliest feasible actual
// time.
func (st *state) startTask(t dag.TaskID, p platform.Proc) error {
	if st.finish[t] >= 0 || st.proc[t] >= 0 {
		return fmt.Errorf("dynamic: task %d started twice", t)
	}
	begin := st.now
	if st.avail[p] > begin {
		begin = st.avail[p]
	}
	// Data must actually arrive before the task runs.
	for _, a := range st.r.pr.G.Preds(t) {
		u := a.Task
		if st.finish[u] < 0 {
			return fmt.Errorf("dynamic: task %d started before parent %d finished", t, u)
		}
		arr := st.finish[u] + st.r.Comm(u, t, a.Data, st.proc[u], p)
		if arr > begin {
			begin = arr
		}
	}
	// A failed processor stops *accepting* tasks at its failure time;
	// acceptance happens at assignment time (now), so work accepted before
	// the failure drains gracefully.
	if !st.r.Alive(p, st.now) {
		return fmt.Errorf("dynamic: task %d assigned to failed processor P%d", t, p+1)
	}
	st.proc[t] = p
	st.start[t] = begin
	st.finish[t] = begin + st.r.Exec(t, p)
	st.avail[p] = st.finish[t]
	// Remove from the ready set.
	for i, id := range st.ready {
		if id == t {
			st.ready = append(st.ready[:i], st.ready[i+1:]...)
			st.unplaced--
			dispatchCount.Inc()
			if st.tr.Enabled() {
				st.tr.Emit(obs.Event{Type: obs.EvDispatch, Alg: st.alg, Task: int(t), Proc: int(p), Time: st.now, Start: begin, Finish: st.finish[t]})
			}
			return nil
		}
	}
	return fmt.Errorf("dynamic: task %d was not ready", t)
}
