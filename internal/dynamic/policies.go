package dynamic

import (
	"math"
	"sort"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
	"hdlts/internal/stats"
)

// OnlineHDLTS replays the HDLTS decision rule at run time: at every
// scheduling opportunity it computes, for each task in the current ready
// set, the estimated-EFT vector over the processors still alive, takes the
// penalty value (sample σ, Eq. 8), and starts the highest-PV task on its
// minimum-EFT processor. Estimates use the planned cost matrix; the
// executor bills realised costs — exactly the situation the paper's
// conclusion targets.
//
// Entry-task duplication is an offline optimisation (it needs to reserve
// the [0, w) prefix of a processor) and is not replayed online.
type OnlineHDLTS struct{}

// Name implements Policy.
func (OnlineHDLTS) Name() string { return "HDLTS-online" }

// Pick implements Policy.
func (OnlineHDLTS) Pick(st *State) (dag.TaskID, platform.Proc, bool) {
	return PickHDLTS(st.Ready, aliveProcs(st), st.EstimatedEFT)
}

// PickHDLTS applies the paper's ITQ decision rule to an arbitrary ready
// set: for each candidate task compute the estimated-EFT vector over the
// given processors, take the penalty value (sample σ, Eq. 8), and return
// the highest-PV task together with its minimum-EFT processor. Strictly-
// greater comparisons keep the earliest candidate on ties, so iterating
// ready ascending by task ID and procs ascending by index makes the rule
// deterministic. ok is false when either set is empty.
//
// This is the one re-plan rule shared between the offline-replay policies
// here and the live workflow executor (internal/exec), which calls it
// repeatedly over the not-yet-dispatched frontier when observed step
// durations drift from the estimates.
func PickHDLTS(ready []dag.TaskID, procs []platform.Proc, eft func(dag.TaskID, platform.Proc) float64) (dag.TaskID, platform.Proc, bool) {
	if len(procs) == 0 || len(ready) == 0 {
		return 0, 0, false
	}
	bestTask, bestPV := dag.None, -1.0
	var bestProc platform.Proc
	v := make([]float64, 0, len(procs))
	for _, t := range ready {
		v = v[:0]
		minEFT, minProc := math.Inf(1), procs[0]
		for _, p := range procs {
			e := eft(t, p)
			v = append(v, e)
			if e < minEFT {
				minEFT, minProc = e, p
			}
		}
		if pv := stats.SampleStdDev(v); pv > bestPV {
			bestTask, bestPV, bestProc = t, pv, minProc
		}
	}
	if bestTask == dag.None {
		return 0, 0, false
	}
	return bestTask, bestProc, true
}

// StaticMapping deploys a precomputed offline schedule as-is: every task
// runs on its planned processor, and per-processor order is preserved. If a
// task's planned processor has failed by the time the task becomes
// dispatchable, the task (and, transitively, everything queued behind it)
// is re-routed to the alive processor with the minimum estimated EFT — the
// minimal failover a static deployment would bolt on.
type StaticMapping struct {
	name  string
	proc  []platform.Proc                // planned processor per task
	order map[platform.Proc][]dag.TaskID // planned start order per processor
}

// NewStaticMapping captures the plan of a completed offline schedule.
func NewStaticMapping(name string, s *sched.Schedule) *StaticMapping {
	n := s.Problem().NumTasks()
	m := &StaticMapping{name: name, proc: make([]platform.Proc, n), order: map[platform.Proc][]dag.TaskID{}}
	type rec struct {
		t     dag.TaskID
		start float64
	}
	byProc := map[platform.Proc][]rec{}
	for t := 0; t < n; t++ {
		pl, _ := s.PlacementOf(dag.TaskID(t))
		m.proc[t] = pl.Proc
		byProc[pl.Proc] = append(byProc[pl.Proc], rec{t: dag.TaskID(t), start: pl.Start})
	}
	procs := make([]platform.Proc, 0, len(byProc))
	for p := range byProc {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	for _, p := range procs {
		recs := byProc[p]
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].start != recs[j].start {
				return recs[i].start < recs[j].start
			}
			return recs[i].t < recs[j].t
		})
		for _, r := range recs {
			m.order[p] = append(m.order[p], r.t)
		}
	}
	return m
}

// Name implements Policy.
func (m *StaticMapping) Name() string { return m.name + "-static" }

// Pick implements Policy.
func (m *StaticMapping) Pick(st *State) (dag.TaskID, platform.Proc, bool) {
	for _, t := range st.Ready {
		p := m.proc[t]
		if !st.Reality.Alive(p, st.Now) {
			// Failover: reroute to the best alive processor right away.
			if q, ok := bestAliveEFT(st, t); ok {
				return t, q, true
			}
			continue
		}
		// Respect the planned per-processor order: t may start only when
		// every task planned before it on p has already been started.
		clear := true
		for _, prev := range m.order[p] {
			if prev == t {
				break
			}
			if st.Proc[prev] < 0 {
				clear = false
				break
			}
		}
		if clear {
			return t, p, true
		}
	}
	return 0, 0, false
}

// StaticOrderDynamicEFT keeps an offline priority order (e.g. HEFT's upward
// rank) but chooses processors online by estimated EFT against actual
// availability — the natural online adaptation of static list schedulers.
type StaticOrderDynamicEFT struct {
	name string
	rank []int // position of each task in the offline order
}

// NewStaticOrderDynamicEFT captures an offline schedule's dispatch order
// (by planned start time) as the online priority.
func NewStaticOrderDynamicEFT(name string, s *sched.Schedule) *StaticOrderDynamicEFT {
	n := s.Problem().NumTasks()
	ids := make([]dag.TaskID, n)
	for t := 0; t < n; t++ {
		ids[t] = dag.TaskID(t)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, _ := s.PlacementOf(ids[i])
		b, _ := s.PlacementOf(ids[j])
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return ids[i] < ids[j]
	})
	rank := make([]int, n)
	for pos, id := range ids {
		rank[id] = pos
	}
	return &StaticOrderDynamicEFT{name: name, rank: rank}
}

// Name implements Policy.
func (o *StaticOrderDynamicEFT) Name() string { return o.name + "-order" }

// Pick implements Policy.
func (o *StaticOrderDynamicEFT) Pick(st *State) (dag.TaskID, platform.Proc, bool) {
	best := dag.None
	for _, t := range st.Ready {
		if best == dag.None || o.rank[t] < o.rank[best] {
			best = t
		}
	}
	if best == dag.None {
		return 0, 0, false
	}
	p, ok := bestAliveEFT(st, best)
	if !ok {
		return 0, 0, false
	}
	return best, p, true
}

// aliveProcs lists the processors still accepting work at st.Now.
func aliveProcs(st *State) []platform.Proc {
	out := make([]platform.Proc, 0, st.Problem.NumProcs())
	for p := 0; p < st.Problem.NumProcs(); p++ {
		if st.Reality.Alive(platform.Proc(p), st.Now) {
			out = append(out, platform.Proc(p))
		}
	}
	return out
}

// bestAliveEFT returns the alive processor minimising the estimated EFT of t.
func bestAliveEFT(st *State, t dag.TaskID) (platform.Proc, bool) {
	best, found := platform.Proc(0), false
	bestV := math.Inf(1)
	for _, p := range aliveProcs(st) {
		if v := st.EstimatedEFT(t, p); v < bestV {
			bestV, best, found = v, p, true
		}
	}
	return best, found
}
