// Package gen implements the synthetic task-graph generator of Section V-B:
// random layered DAGs controlled by the seven Table II parameters (task
// count V, shape α, out-degree density, CCR, processor count, mean DAG
// computation time W_dag, and heterogeneity β), plus the cost-assignment
// model (Eq. 13–14) that is reused for the fixed real-world workflow
// structures. Like the paper's generator it can produce multi-entry /
// multi-exit graphs, which schedulers normalise with pseudo tasks.
//
// All randomness flows through an explicit *rand.Rand so experiments are
// reproducible from a seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// Params selects one point of the Table II parameter space.
type Params struct {
	// V is the number of tasks in the graph.
	V int
	// Alpha is the shape parameter: height ≈ √V/α levels and mean width
	// ≈ √V·α, so small α gives tall thin graphs (low parallelism) and large
	// α gives wide fat graphs (high parallelism).
	Alpha float64
	// Density is the target out-degree of non-terminal tasks (number of
	// dependency edges toward later levels).
	Density int
	// CCR is the communication-to-computation ratio: every out-edge of task
	// i carries w̄_i × CCR units of data (Eq. 14).
	CCR float64
	// Procs is the number of processors in the generated platform.
	Procs int
	// WDAG is the mean computation time scale: w̄_i ~ U(0, 2·W_dag).
	WDAG float64
	// Beta is the processor-heterogeneity factor:
	// w(i,p) ~ U(w̄_i·(1−β/2), w̄_i·(1+β/2)) (Eq. 13).
	Beta float64
	// MultiEntry lets the first level hold several parentless tasks, as the
	// paper's generator optionally does; schedulers then normalise the graph
	// with a zero-cost pseudo entry. The default (false) emits a single real
	// entry task like the Topcuoglu generator the paper parameterises after
	// — entry-task duplication is only meaningful in that mode.
	MultiEntry bool
}

// Validate rejects parameter combinations outside the meaningful ranges.
func (p Params) Validate() error {
	switch {
	case p.V < 1:
		return fmt.Errorf("gen: V = %d, want >= 1", p.V)
	case p.Alpha <= 0:
		return fmt.Errorf("gen: alpha = %g, want > 0", p.Alpha)
	case p.Density < 1:
		return fmt.Errorf("gen: density = %d, want >= 1", p.Density)
	case p.CCR < 0:
		return fmt.Errorf("gen: CCR = %g, want >= 0", p.CCR)
	case p.Procs < 1:
		return fmt.Errorf("gen: procs = %d, want >= 1", p.Procs)
	case p.WDAG <= 0:
		return fmt.Errorf("gen: W_dag = %g, want > 0", p.WDAG)
	case p.Beta < 0 || p.Beta > 2:
		return fmt.Errorf("gen: beta = %g, want in [0, 2]", p.Beta)
	}
	return nil
}

// String renders the parameter point compactly for table captions.
func (p Params) String() string {
	return fmt.Sprintf("V=%d α=%g density=%d CCR=%g procs=%d Wdag=%g β=%g",
		p.V, p.Alpha, p.Density, p.CCR, p.Procs, p.WDAG, p.Beta)
}

// Graph generates the random DAG structure for the parameters: tasks are
// spread over ≈ √V/α levels, and each non-last-level task draws `density`
// forward edges, biased toward the immediately following level. Tasks left
// parentless form extra entries (the paper's generator explicitly produces
// multi-entry/exit graphs; schedulers normalise them with pseudo tasks).
// Edge data volumes are filled in by AssignCosts.
func Graph(p Params, rng *rand.Rand) (*dag.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	height := int(math.Round(math.Sqrt(float64(p.V)) / p.Alpha))
	if height < 1 {
		height = 1
	}
	if height > p.V {
		height = p.V
	}
	if !p.MultiEntry && p.V > 1 && height < 2 {
		height = 2 // reserve a dedicated entry level
	}

	// One task per level guarantees the full height; the rest land on
	// uniformly random levels, giving mean width V/height ≈ √V·α. In
	// single-entry mode level 0 holds exactly one task.
	g := dag.New(p.V)
	level := make([]int, p.V)
	for t := 0; t < p.V; t++ {
		g.AddTask(fmt.Sprintf("t%d", t+1))
		switch {
		case t < height:
			level[t] = t
		case p.MultiEntry:
			level[t] = rng.Intn(height)
		default:
			level[t] = 1 + rng.Intn(height-1)
		}
	}
	byLevel := make([][]dag.TaskID, height)
	for t, l := range level {
		byLevel[l] = append(byLevel[l], dag.TaskID(t))
	}
	// laterCount[l] = number of tasks at levels > l.
	laterCount := make([]int, height)
	for l := height - 2; l >= 0; l-- {
		laterCount[l] = laterCount[l+1] + len(byLevel[l+1])
	}

	for l := 0; l < height-1; l++ {
		for _, u := range byLevel[l] {
			want := p.Density
			if want > laterCount[l] {
				want = laterCount[l]
			}
			for tries, added := 0, 0; added < want && tries < 8*want; tries++ {
				// 75% of edges go to the next level (keeping the layered
				// shape), the rest skip ahead uniformly.
				var v dag.TaskID
				if rng.Float64() < 0.75 || l == height-2 {
					nl := byLevel[l+1]
					v = nl[rng.Intn(len(nl))]
				} else {
					tl := l + 2 + rng.Intn(height-l-2)
					v = byLevel[tl][rng.Intn(len(byLevel[tl]))]
				}
				if _, dup := g.EdgeData(u, v); dup {
					continue
				}
				g.MustAddEdge(u, v, 0)
				added++
			}
		}
	}
	// Every task beyond the first level gets at least one parent so the
	// graph does not degenerate into a pile of isolated entries; parents
	// come from the immediately preceding level.
	for l := 1; l < height; l++ {
		for _, v := range byLevel[l] {
			if g.InDegree(v) > 0 {
				continue
			}
			pl := byLevel[l-1]
			g.MustAddEdge(pl[rng.Intn(len(pl))], v, 0)
		}
	}
	return g, nil
}

// CostParams is the cost-model subset of Params, reused for real-world
// workflow structures whose shape is fixed.
type CostParams struct {
	Procs int
	WDAG  float64
	Beta  float64
	CCR   float64
}

// Validate rejects meaningless cost parameters.
func (c CostParams) Validate() error {
	return Params{V: 1, Alpha: 1, Density: 1, CCR: c.CCR, Procs: c.Procs, WDAG: c.WDAG, Beta: c.Beta}.Validate()
}

// AssignCosts draws the computation matrix and edge data volumes for an
// existing graph structure per Eq. 13–14: each task's mean cost w̄_i is
// uniform on (0, 2·W_dag); its per-processor costs are uniform on
// w̄_i·[1−β/2, 1+β/2]; and every out-edge of task i carries w̄_i·CCR data.
// Pseudo tasks keep zero cost. The input graph is left untouched (a
// reweighted copy is built).
func AssignCosts(g *dag.Graph, c CostParams, rng *rand.Rand) (*sched.Problem, error) {
	pl, err := platform.NewUniform(c.Procs)
	if err != nil {
		return nil, err
	}
	return AssignCostsOn(g, pl, c, rng)
}

// AssignCostsOn is AssignCosts against an explicit platform (e.g. a
// two-cluster heterogeneous network); c.Procs must match the platform.
func AssignCostsOn(g *dag.Graph, pl *platform.Platform, c CostParams, rng *rand.Rand) (*sched.Problem, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if pl.NumProcs() != c.Procs {
		return nil, fmt.Errorf("gen: cost params specify %d processors, platform has %d", c.Procs, pl.NumProcs())
	}
	w, err := platform.NewCosts(g.NumTasks(), c.Procs)
	if err != nil {
		return nil, err
	}
	meanCost := make([]float64, g.NumTasks())
	for t := 0; t < g.NumTasks(); t++ {
		if g.Task(dag.TaskID(t)).Pseudo {
			continue
		}
		wbar := rng.Float64() * 2 * c.WDAG
		meanCost[t] = wbar
		lo, hi := wbar*(1-c.Beta/2), wbar*(1+c.Beta/2)
		for p := 0; p < c.Procs; p++ {
			if err := w.Set(t, platform.Proc(p), lo+rng.Float64()*(hi-lo)); err != nil {
				return nil, err
			}
		}
	}
	// Rewrite edge data volumes in place: data(i→j) = w̄_i × CCR.
	reweighted := dag.New(g.NumTasks())
	for t := 0; t < g.NumTasks(); t++ {
		tk := g.Task(dag.TaskID(t))
		if tk.Pseudo {
			reweighted.AddPseudoTask(tk.Name)
		} else {
			reweighted.AddTask(tk.Name)
		}
	}
	for t := 0; t < g.NumTasks(); t++ {
		for _, a := range g.Succs(dag.TaskID(t)) {
			reweighted.MustAddEdge(dag.TaskID(t), a.Task, meanCost[t]*c.CCR)
		}
	}
	return sched.NewProblem(reweighted, pl, w)
}

// Random generates one complete random problem instance: structure per
// Graph, costs per AssignCosts.
func Random(p Params, rng *rand.Rand) (*sched.Problem, error) {
	g, err := Graph(p, rng)
	if err != nil {
		return nil, err
	}
	return AssignCosts(g, CostParams{Procs: p.Procs, WDAG: p.WDAG, Beta: p.Beta, CCR: p.CCR}, rng)
}
