package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
)

func baseParams() Params {
	return Params{V: 120, Alpha: 1.0, Density: 3, CCR: 2.0, Procs: 4, WDAG: 80, Beta: 1.2}
}

func TestParamsValidate(t *testing.T) {
	if err := baseParams().Validate(); err != nil {
		t.Fatalf("base params rejected: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.V = 0 },
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.Alpha = -1 },
		func(p *Params) { p.Density = 0 },
		func(p *Params) { p.CCR = -0.5 },
		func(p *Params) { p.Procs = 0 },
		func(p *Params) { p.WDAG = 0 },
		func(p *Params) { p.Beta = -0.1 },
		func(p *Params) { p.Beta = 2.5 },
	}
	for i, mutate := range bad {
		p := baseParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad params #%d accepted: %+v", i, p)
		}
	}
}

func TestGraphShape(t *testing.T) {
	p := baseParams()
	rng := rand.New(rand.NewSource(42))
	g, err := Graph(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != p.V {
		t.Fatalf("tasks = %d, want %d", g.NumTasks(), p.V)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	wantHeight := int(math.Round(math.Sqrt(float64(p.V)) / p.Alpha))
	if got := g.Height(); got != wantHeight {
		t.Errorf("height = %d, want %d", got, wantHeight)
	}
	if entries := g.Entries(); len(entries) != 1 {
		t.Errorf("single-entry mode produced %d entries", len(entries))
	}
}

func TestGraphMultiEntry(t *testing.T) {
	p := baseParams()
	p.Alpha = 2.5 // wide graph: first level would hold many tasks
	p.MultiEntry = true
	rng := rand.New(rand.NewSource(7))
	g, err := Graph(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Entries()) < 2 {
		t.Errorf("multi-entry mode produced %d entries", len(g.Entries()))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphDeterministicUnderSeed(t *testing.T) {
	p := baseParams()
	g1, err := Graph(p, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Graph(p, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced %d vs %d edges", g1.NumEdges(), g2.NumEdges())
	}
	for u := 0; u < g1.NumTasks(); u++ {
		s1, s2 := g1.Succs(dag.TaskID(u)), g2.Succs(dag.TaskID(u))
		if len(s1) != len(s2) {
			t.Fatalf("task %d out-degree differs", u)
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("task %d arc %d differs", u, i)
			}
		}
	}
}

func TestGraphTinyV(t *testing.T) {
	for v := 1; v <= 4; v++ {
		p := baseParams()
		p.V = v
		g, err := Graph(p, rand.New(rand.NewSource(int64(v))))
		if err != nil {
			t.Fatalf("V=%d: %v", v, err)
		}
		if g.NumTasks() != v {
			t.Fatalf("V=%d produced %d tasks", v, g.NumTasks())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("V=%d invalid: %v", v, err)
		}
	}
}

func TestAssignCostsRanges(t *testing.T) {
	p := baseParams()
	rng := rand.New(rand.NewSource(3))
	g, err := Graph(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := AssignCosts(g, CostParams{Procs: p.Procs, WDAG: p.WDAG, Beta: p.Beta, CCR: p.CCR}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 13: every per-processor cost within w̄·[1−β/2, 1+β/2] where
	// w̄ ∈ (0, 2·W_dag); so all costs within (0, 2·W_dag·(1+β/2)).
	limit := 2 * p.WDAG * (1 + p.Beta/2)
	for task := 0; task < pr.NumTasks(); task++ {
		row := pr.W.Row(task)
		for _, c := range row {
			if c < 0 || c > limit {
				t.Fatalf("cost %g outside (0, %g)", c, limit)
			}
		}
		// Eq. 14: every out-edge of a task carries w̄·CCR; since costs are
		// within w̄·[1−β/2, 1+β/2] the edge data must lie within
		// [mean/(1+β/2), mean/(1−β/2)]·CCR — verify loosely: data > 0.
		for _, a := range pr.G.Succs(dag.TaskID(task)) {
			if a.Data <= 0 {
				t.Fatalf("edge (%d->%d) has non-positive data %g", task, a.Task, a.Data)
			}
		}
	}
}

func TestAssignCostsPreservesStructure(t *testing.T) {
	p := baseParams()
	rng := rand.New(rand.NewSource(11))
	g, err := Graph(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := AssignCosts(g, CostParams{Procs: 4, WDAG: 50, Beta: 1.0, CCR: 1.0}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pr.G.NumTasks() != g.NumTasks() || pr.G.NumEdges() != g.NumEdges() {
		t.Fatal("cost assignment changed the structure")
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, a := range g.Succs(dag.TaskID(u)) {
			if _, ok := pr.G.EdgeData(dag.TaskID(u), a.Task); !ok {
				t.Fatalf("edge (%d->%d) lost", u, a.Task)
			}
		}
	}
}

func TestAssignCostsPseudoRowsStayZero(t *testing.T) {
	g := dag.New(2)
	g.AddTask("a")
	g.AddPseudoTask("pseudo")
	g.MustAddEdge(dag.TaskID(1), dag.TaskID(0), 0)
	rng := rand.New(rand.NewSource(1))
	pr, err := AssignCosts(g, CostParams{Procs: 3, WDAG: 50, Beta: 1, CCR: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if pr.W.At(1, platform.Proc(p)) != 0 {
			t.Fatal("pseudo task received a non-zero cost")
		}
	}
	if d, _ := pr.G.EdgeData(1, 0); d != 0 {
		t.Fatal("pseudo out-edge received non-zero data")
	}
}

func TestAssignCostsRejectsBadParams(t *testing.T) {
	g := dag.New(1)
	g.AddTask("a")
	rng := rand.New(rand.NewSource(1))
	if _, err := AssignCosts(g, CostParams{Procs: 0, WDAG: 50, Beta: 1, CCR: 1}, rng); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := AssignCosts(g, CostParams{Procs: 2, WDAG: -1, Beta: 1, CCR: 1}, rng); err == nil {
		t.Error("negative W_dag accepted")
	}
}

func TestAssignCostsOnTwoClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := Graph(baseParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.TwoClusters(2, 2, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := AssignCostsOn(g, pl, CostParams{Procs: 4, WDAG: 80, Beta: 1.2, CCR: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Inter-cluster communication is 4x slower than intra.
	if intra, inter := pr.Comm(8, 0, 1), pr.Comm(8, 0, 2); inter != 4*intra {
		t.Fatalf("comm ratio: intra %g, inter %g", intra, inter)
	}
	// Processor-count mismatch must be rejected.
	if _, err := AssignCostsOn(g, pl, CostParams{Procs: 6, WDAG: 80, Beta: 1.2, CCR: 2}, rng); err == nil {
		t.Fatal("mismatched processor count accepted")
	}
}

func TestRandomEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pr, err := Random(baseParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if pr.NumProcs() != 4 {
		t.Fatalf("procs = %d, want 4", pr.NumProcs())
	}
}

func TestRandomRejectsBadParams(t *testing.T) {
	p := baseParams()
	p.V = 0
	if _, err := Random(p, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// TestQuickGeneratedGraphsAreSchedulable: arbitrary Table II-ish parameter
// points always generate valid, acyclic graphs of exactly V tasks whose
// densities are bounded by the requested out-degree.
func TestQuickGeneratedGraphsAreSchedulable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			V:          1 + rng.Intn(300),
			Alpha:      []float64{0.5, 1.0, 1.5, 2.0, 2.5}[rng.Intn(5)],
			Density:    1 + rng.Intn(5),
			CCR:        1 + float64(rng.Intn(5)),
			Procs:      2 + 2*rng.Intn(5),
			WDAG:       50 + float64(10*rng.Intn(6)),
			Beta:       []float64{0.4, 0.8, 1.2, 1.6, 2.0}[rng.Intn(5)],
			MultiEntry: rng.Intn(2) == 0,
		}
		g, err := Graph(p, rng)
		if err != nil || g.NumTasks() != p.V || g.Validate() != nil {
			return false
		}
		if !p.MultiEntry && p.V > 1 && len(g.Entries()) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTableIISpace(t *testing.T) {
	s := TableII()
	want := 8 * 5 * 5 * 5 * 5 * 6 * 5
	if got := s.Size(); got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	// ForEach visits Size() combinations and honours early stop.
	n := 0
	s.ForEach(func(Params) bool { n++; return n < 1000 })
	if n != 1000 {
		t.Fatalf("early stop visited %d, want 1000", n)
	}
	// Every visited combination validates.
	checked := 0
	s.ForEach(func(p Params) bool {
		if err := p.Validate(); err != nil {
			t.Fatalf("Table II point invalid: %v", err)
		}
		checked++
		return checked < 5000
	})
}
