package gen

import (
	"math"
	"math/rand"
	"testing"

	"hdlts/internal/dag"
)

// TestGeneratorShapeStatistics verifies the Table II shape semantics
// statistically: over many graphs, the mean level width approaches
// √V·α and the height approaches √V/α (Section V-B definitions).
func TestGeneratorShapeStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, tc := range []struct {
		v     int
		alpha float64
	}{
		{400, 0.5},
		{400, 1.0},
		{400, 2.0},
	} {
		var sumW, sumH float64
		const n = 30
		for i := 0; i < n; i++ {
			g, err := Graph(Params{V: tc.v, Alpha: tc.alpha, Density: 3, CCR: 1, Procs: 4, WDAG: 50, Beta: 1}, rng)
			if err != nil {
				t.Fatal(err)
			}
			h := g.Height()
			sumH += float64(h)
			sumW += float64(tc.v) / float64(h) // mean width = V / levels
		}
		wantH := math.Round(math.Sqrt(float64(tc.v)) / tc.alpha)
		gotH := sumH / n
		if math.Abs(gotH-wantH) > 1.5 { // the single-entry level adds at most 1
			t.Errorf("α=%g: mean height %.1f, want ≈ %g", tc.alpha, gotH, wantH)
		}
		wantW := math.Sqrt(float64(tc.v)) * tc.alpha
		gotW := sumW / n
		if gotW < wantW*0.6 || gotW > wantW*1.6 {
			t.Errorf("α=%g: mean width %.1f, want ≈ %.1f", tc.alpha, gotW, wantW)
		}
	}
}

// TestGeneratorDensityBoundsOutDegree: the generated forward out-degree of
// interior tasks never exceeds density + 1 (sampled edges plus at most one
// connectivity repair per child).
func TestGeneratorDensityBoundsOutDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, density := range []int{1, 3, 5} {
		g, err := Graph(Params{V: 300, Alpha: 1.5, Density: density, CCR: 1, Procs: 4, WDAG: 50, Beta: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		total, count := 0, 0
		for u := 0; u < g.NumTasks(); u++ {
			if d := g.OutDegree(dag.TaskID(u)); d > 0 && g.InDegree(dag.TaskID(u)) > 0 {
				total += d
				count++
			}
		}
		if count == 0 {
			t.Fatal("no interior tasks")
		}
		mean := float64(total) / float64(count)
		// Sampled edges target `density`; repairs can add a little.
		if mean > float64(density)*2.5+1 {
			t.Errorf("density %d: mean interior out-degree %.2f implausibly high", density, mean)
		}
	}
}

// TestGeneratorCCRRealised: the realised communication-to-computation ratio
// of generated problems tracks the requested CCR (Eq. 14 ties edge data to
// the source task's mean cost, so realised CCR = CCR × meanOutDegree).
func TestGeneratorCCRRealised(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, ccr := range []float64{1, 3, 5} {
		pr, err := Random(Params{V: 300, Alpha: 1.0, Density: 2, CCR: ccr, Procs: 4, WDAG: 80, Beta: 1.2}, rng)
		if err != nil {
			t.Fatal(err)
		}
		comp, comm := 0.0, 0.0
		for u := 0; u < pr.NumTasks(); u++ {
			comp += pr.W.Mean(u)
			for _, a := range pr.G.Succs(dag.TaskID(u)) {
				comm += a.Data
			}
		}
		// Per Eq. 14 every out-edge carries w̄·CCR, so comm/comp should be
		// close to CCR × (mean out-degree over all tasks).
		meanOut := float64(pr.G.NumEdges()) / float64(pr.NumTasks())
		want := ccr * meanOut
		got := comm / comp
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("CCR %g: realised comm/comp %.2f, want ≈ %.2f", ccr, got, want)
		}
	}
}
