package gen

// Space is a full-factorial parameter grid (Table II). Iterating a Space
// visits the Cartesian product of all dimension values.
type Space struct {
	Vs        []int
	Alphas    []float64
	Densities []int
	CCRs      []float64
	Procs     []int
	WDAGs     []float64
	Betas     []float64
}

// TableII returns the exact parameter grid of the paper's Table II: 8 task
// sizes × 5 shapes × 5 densities × 5 CCRs × 5 processor counts × 6 W_dag
// values × 5 betas = 150 000 combinations ("125K unique application
// workflow graphs" after accounting for collisions, per the paper).
func TableII() Space {
	return Space{
		Vs:        []int{100, 200, 300, 400, 500, 1000, 5000, 10000},
		Alphas:    []float64{0.5, 1.0, 1.5, 2.0, 2.5},
		Densities: []int{1, 2, 3, 4, 5},
		CCRs:      []float64{1.0, 2.0, 3.0, 4.0, 5.0},
		Procs:     []int{2, 4, 6, 8, 10},
		WDAGs:     []float64{50, 60, 70, 80, 90, 100},
		Betas:     []float64{0.4, 0.8, 1.2, 1.6, 2.0},
	}
}

// Size returns the number of parameter combinations in the grid.
func (s Space) Size() int {
	return len(s.Vs) * len(s.Alphas) * len(s.Densities) * len(s.CCRs) *
		len(s.Procs) * len(s.WDAGs) * len(s.Betas)
}

// ForEach visits every combination in deterministic (row-major) order.
// Iteration stops early if f returns false.
func (s Space) ForEach(f func(Params) bool) {
	for _, v := range s.Vs {
		for _, a := range s.Alphas {
			for _, d := range s.Densities {
				for _, ccr := range s.CCRs {
					for _, p := range s.Procs {
						for _, w := range s.WDAGs {
							for _, b := range s.Betas {
								if !f(Params{V: v, Alpha: a, Density: d, CCR: ccr, Procs: p, WDAG: w, Beta: b}) {
									return
								}
							}
						}
					}
				}
			}
		}
	}
}
