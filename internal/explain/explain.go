// Package explain post-processes solved schedules and observed workflow
// executions into deterministic, human-readable reports: per-task placement
// rationale (the EFT candidates the solver compared, the penalty value that
// won the ITQ, duplication and slotting decisions), critical-path
// extraction with per-task slack, and per-processor utilization and
// idle-gap accounting. It is the read-only layer behind `hdltsched
// -explain`, `POST /v1/schedule?explain=1`, and `GET
// /v1/workflows/{id}/explain` — it never influences scheduling.
//
// Schedule reports are byte-deterministic for a fixed problem: every field
// derives from the schedule and the capture, both bit-reproducible, every
// list is emitted in a fixed order, and no wall-clock value appears.
// Workflow reports are built from observed execution records and inherit
// their measured (non-reproducible) durations by design.
package explain

import (
	"fmt"
	"sort"

	"hdlts/internal/core"
	"hdlts/internal/dag"
	"hdlts/internal/exec"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// gapFloor suppresses float-noise idle gaps: a processor timeline whose
// slots abut within this tolerance reports no gap.
const gapFloor = 1e-9

// Explainer is implemented by algorithms that can solve with rationale
// capture attached (core.HDLTS and its ablation variants). Callers type-
// assert an sched.Algorithm against it; algorithms without capture still
// get a report via Schedule with nil decisions — placements, critical path,
// and utilization, just no per-decision rationale.
type Explainer interface {
	ScheduleExplained(pr *sched.Problem) (*sched.Schedule, []core.Decision, error)
}

// Report explains one solved schedule.
type Report struct {
	// Algorithm names the solver configuration that produced the schedule.
	Algorithm string `json:"algorithm"`
	// Tasks and Procs describe the normalised problem the schedule maps.
	Tasks int `json:"tasks"`
	Procs int `json:"procs"`
	// Makespan is the schedule length.
	Makespan float64 `json:"makespan"`
	// TotalSlack sums per-task slack (a schedule-robustness indicator);
	// CriticalTasks counts zero-slack tasks.
	TotalSlack    float64 `json:"total_slack"`
	CriticalTasks int     `json:"critical_tasks"`
	// CriticalPath lists the zero-slack tasks in execution order — the
	// chain where any overrun grows the makespan one-for-one.
	CriticalPath []CriticalHop `json:"critical_path"`
	// Placements explains every task, ascending by task ID.
	Placements []Placement `json:"placements"`
	// Processors accounts for every processor lane, ascending by index.
	Processors []ProcReport `json:"processors"`
}

// CriticalHop is one step of the critical path.
type CriticalHop struct {
	Task  int     `json:"task"`
	Name  string  `json:"name"`
	Proc  int     `json:"proc"`
	Start float64 `json:"start"`
	// Finish minus Start is the hop's direct contribution to the makespan.
	Finish float64 `json:"finish"`
}

// Placement explains where one task landed and why.
type Placement struct {
	Task int    `json:"task"`
	Name string `json:"name"`
	Proc int    `json:"proc"`
	// ProcName is the platform's label for the processor ("P3" by default).
	ProcName string  `json:"proc_name"`
	Start    float64 `json:"start"`
	Finish   float64 `json:"finish"`
	// Slack is how far the start could slip without growing the makespan;
	// Critical marks (near-)zero slack.
	Slack    float64 `json:"slack"`
	Critical bool    `json:"critical"`
	// Duplicated reports that committing this task materialised an entry
	// duplicate; Copies counts extra (duplicate) placements of this task
	// elsewhere on the platform.
	Duplicated bool `json:"duplicated,omitempty"`
	Copies     int  `json:"copies,omitempty"`
	// Rationale is the solver's captured decision for this task — EFT
	// candidates per processor, ITQ membership and PV at commit — when the
	// schedule was solved with capture (nil otherwise).
	Rationale *core.Decision `json:"rationale,omitempty"`
}

// ProcReport accounts for one processor lane.
type ProcReport struct {
	Proc int    `json:"proc"`
	Name string `json:"name"`
	// Tasks counts slots on the lane, duplicates included.
	Tasks int `json:"tasks"`
	// Busy sums slot durations; Utilization is Busy over the makespan.
	Busy        float64 `json:"busy"`
	Utilization float64 `json:"utilization"`
	// IdleGaps lists the lane's idle windows before its last slot (a
	// leading gap counts; trailing idle up to the makespan is reported as
	// TailIdle instead, since nothing waits behind it on this lane).
	IdleGaps  []Gap   `json:"idle_gaps,omitempty"`
	IdleTotal float64 `json:"idle_total"`
	TailIdle  float64 `json:"tail_idle"`
}

// Gap is one idle window on a processor timeline.
type Gap struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Schedule builds the explainability report for a complete schedule.
// decisions, when non-nil, is the capture from core.ScheduleExplained —
// task-matched into each placement's rationale. The schedule must be
// complete (every task placed).
func Schedule(s *sched.Schedule, algorithm string, decisions []core.Decision) (*Report, error) {
	pr := s.Problem()
	slack, err := s.ComputeSlack()
	if err != nil {
		return nil, fmt.Errorf("explain: %w", err)
	}
	n, np := pr.NumTasks(), pr.NumProcs()
	makespan := s.Makespan()

	byTask := make(map[dag.TaskID]*core.Decision, len(decisions))
	for i := range decisions {
		byTask[decisions[i].Task] = &decisions[i]
	}
	critical := make(map[dag.TaskID]bool, len(slack.Critical))
	for _, t := range slack.Critical {
		critical[t] = true
	}

	rep := &Report{
		Algorithm:     algorithm,
		Tasks:         n,
		Procs:         np,
		Makespan:      makespan,
		TotalSlack:    slack.TotalSlack,
		CriticalTasks: len(slack.Critical),
	}

	for t := 0; t < n; t++ {
		id := dag.TaskID(t)
		pl, ok := s.PlacementOf(id)
		if !ok {
			return nil, fmt.Errorf("explain: task %d unplaced", t)
		}
		p := Placement{
			Task:     t,
			Name:     taskName(pr, id),
			Proc:     int(pl.Proc),
			ProcName: pr.P.Name(pl.Proc),
			Start:    pl.Start,
			Finish:   pl.Finish,
			Slack:    slack.Slack[t],
			Critical: critical[id],
			Copies:   len(s.Copies(id)) - 1,
		}
		if d := byTask[id]; d != nil {
			p.Rationale = d
			p.Duplicated = d.Duplicated
		}
		rep.Placements = append(rep.Placements, p)
	}

	for _, t := range slack.Critical {
		pl, _ := s.PlacementOf(t)
		rep.CriticalPath = append(rep.CriticalPath, CriticalHop{
			Task:   int(t),
			Name:   taskName(pr, t),
			Proc:   int(pl.Proc),
			Start:  pl.Start,
			Finish: pl.Finish,
		})
	}
	sort.SliceStable(rep.CriticalPath, func(i, k int) bool {
		if rep.CriticalPath[i].Start != rep.CriticalPath[k].Start {
			return rep.CriticalPath[i].Start < rep.CriticalPath[k].Start
		}
		return rep.CriticalPath[i].Task < rep.CriticalPath[k].Task
	})

	for q := 0; q < np; q++ {
		proc := platform.Proc(q)
		slots := s.ProcSlots(proc)
		pRep := ProcReport{Proc: q, Name: pr.P.Name(proc)}
		cursor := 0.0
		for _, sl := range slots {
			pRep.Tasks++
			pRep.Busy += sl.End - sl.Start
			if sl.Start-cursor > gapFloor {
				pRep.IdleGaps = append(pRep.IdleGaps, Gap{Start: cursor, End: sl.Start})
				pRep.IdleTotal += sl.Start - cursor
			}
			if sl.End > cursor {
				cursor = sl.End
			}
		}
		if tail := makespan - cursor; tail > gapFloor {
			pRep.TailIdle = tail
		}
		if makespan > 0 {
			pRep.Utilization = pRep.Busy / makespan
		}
		rep.Processors = append(rep.Processors, pRep)
	}
	return rep, nil
}

// taskName labels a task: its declared name, or the positional T<n> form.
func taskName(pr *sched.Problem, t dag.TaskID) string {
	if name := pr.G.Task(t).Name; name != "" {
		return name
	}
	return fmt.Sprintf("T%d", int(t)+1)
}

// WorkflowReport explains one observed workflow execution: planned versus
// actual placements, estimate drift, queue waits, and observed per-
// processor utilization. Durations are measured wall times.
type WorkflowReport struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"`
	// MakespanSeconds is the observed end-to-end duration; Replans counts
	// ITQ recomputations the executor performed mid-run.
	MakespanSeconds float64 `json:"makespan_seconds"`
	Replans         int     `json:"replans"`
	// MovedSteps counts steps whose final processor differs from the
	// initial plan — what dynamic re-mapping changed.
	MovedSteps int `json:"moved_steps"`
	// QueueWaitSeconds totals head-of-line blocking across all steps.
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	// CriticalChain lists, in start order, the steps on the observed
	// zero-gap chain ending at the workflow's last finish.
	CriticalChain []string          `json:"critical_chain,omitempty"`
	Steps         []StepReport      `json:"steps"`
	Processors    []ProcObservation `json:"processors"`
}

// StepReport explains one step's execution.
type StepReport struct {
	Step  string `json:"step"`
	State string `json:"state"`
	// PlannedProc is the initial HDLTS placement, Proc where the step
	// actually ran; Moved marks a difference (a re-plan migrated it).
	PlannedProc int  `json:"planned_proc"`
	Proc        int  `json:"proc"`
	Moved       bool `json:"moved,omitempty"`
	// EstSeconds is the estimate the last plan used; ObservedSeconds the
	// measured duration; DriftRatio their quotient (0 until observed).
	EstSeconds      float64 `json:"est_seconds"`
	ObservedSeconds float64 `json:"observed_seconds,omitempty"`
	DriftRatio      float64 `json:"drift_ratio,omitempty"`
	// QueueWaitSeconds is the head-of-line blocking before the last attempt.
	QueueWaitSeconds float64 `json:"queue_wait_seconds,omitempty"`
	Attempts         int     `json:"attempts,omitempty"`
	// StartSeconds/FinishSeconds are relative to the workflow start.
	StartSeconds  float64 `json:"start_seconds,omitempty"`
	FinishSeconds float64 `json:"finish_seconds,omitempty"`
}

// ProcObservation is the observed load of one processor slot.
type ProcObservation struct {
	Proc int `json:"proc"`
	// Steps counts completed executions on the slot; BusySeconds sums their
	// observed durations; Utilization is busy over the observed makespan.
	Steps       int     `json:"steps"`
	BusySeconds float64 `json:"busy_seconds"`
	Utilization float64 `json:"utilization"`
}

// Workflow builds the execution report from a workflow record.
func Workflow(rec *exec.Record) *WorkflowReport {
	rep := &WorkflowReport{
		ID:              rec.ID,
		Name:            rec.Name,
		State:           string(rec.State),
		MakespanSeconds: rec.MakespanSeconds,
		Replans:         rec.Replans,
	}
	procs := 0
	if rec.Spec != nil {
		procs = rec.Spec.Procs
	}
	busy := make([]float64, procs)
	steps := make([]int, procs)
	for i := range rec.Steps {
		st := &rec.Steps[i]
		sr := StepReport{
			Step:             st.Name,
			State:            string(st.State),
			PlannedProc:      st.PlannedProc,
			Proc:             st.Proc,
			Moved:            st.Proc != st.PlannedProc,
			EstSeconds:       st.EstSeconds,
			ObservedSeconds:  st.ObservedSeconds,
			QueueWaitSeconds: st.QueueWaitSeconds,
			Attempts:         st.Attempts,
		}
		if st.ObservedSeconds > 0 && st.EstSeconds > 0 {
			sr.DriftRatio = st.ObservedSeconds / st.EstSeconds
		}
		if !st.StartedAt.IsZero() && !rec.StartedAt.IsZero() {
			sr.StartSeconds = st.StartedAt.Sub(rec.StartedAt).Seconds()
		}
		if !st.FinishedAt.IsZero() && !rec.StartedAt.IsZero() {
			sr.FinishSeconds = st.FinishedAt.Sub(rec.StartedAt).Seconds()
		}
		if sr.Moved {
			rep.MovedSteps++
		}
		rep.QueueWaitSeconds += st.QueueWaitSeconds
		if st.State == exec.StepDone && st.Proc >= 0 && st.Proc < procs {
			busy[st.Proc] += st.ObservedSeconds
			steps[st.Proc]++
		}
		rep.Steps = append(rep.Steps, sr)
	}
	for p := 0; p < procs; p++ {
		po := ProcObservation{Proc: p, Steps: steps[p], BusySeconds: busy[p]}
		if rep.MakespanSeconds > 0 {
			po.Utilization = busy[p] / rep.MakespanSeconds
		}
		rep.Processors = append(rep.Processors, po)
	}
	rep.CriticalChain = observedChain(rep.Steps)
	return rep
}

// observedChain walks backward from the step finishing last, at each hop
// picking the latest-finishing predecessor-in-time: the step (on any
// processor) whose finish immediately precedes the current step's start
// within a small tolerance window. It is a heuristic read of the observed
// timeline — good enough to show where the wall time went.
func observedChain(steps []StepReport) []string {
	type timed struct {
		name          string
		start, finish float64
	}
	var done []timed
	for _, s := range steps {
		if s.FinishSeconds > 0 {
			done = append(done, timed{s.Step, s.StartSeconds, s.FinishSeconds})
		}
	}
	if len(done) == 0 {
		return nil
	}
	sort.Slice(done, func(i, k int) bool {
		if done[i].finish != done[k].finish {
			return done[i].finish > done[k].finish
		}
		return done[i].name < done[k].name
	})
	const tol = 0.05 // scheduling jitter between a finish and the dependent start
	chain := []string{done[0].name}
	cur := done[0]
	visited := map[string]bool{cur.name: true}
	for {
		var best *timed
		for i := range done {
			c := &done[i]
			if visited[c.name] || c.finish > cur.start+tol {
				continue
			}
			if best == nil || c.finish > best.finish {
				best = c
			}
		}
		if best == nil || cur.start-best.finish > tol {
			break
		}
		chain = append(chain, best.name)
		visited[best.name] = true
		cur = *best
	}
	// Walked backward; present in execution order.
	for i, k := 0, len(chain)-1; i < k; i, k = i+1, k-1 {
		chain[i], chain[k] = chain[k], chain[i]
	}
	return chain
}
