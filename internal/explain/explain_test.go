package explain

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"time"

	"hdlts/internal/core"
	"hdlts/internal/exec"
	"hdlts/internal/gen"
	"hdlts/internal/sched"
)

func solveExplained(t *testing.T, seed int64) (*sched.Schedule, []core.Decision, *sched.Problem) {
	t.Helper()
	pr, err := gen.Random(gen.Params{
		V: 200, Alpha: 1.5, Density: 3, CCR: 2, Procs: 5, WDAG: 80, Beta: 1.2,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	h := core.New()
	s, decs, err := h.ScheduleExplained(pr)
	if err != nil {
		t.Fatal(err)
	}
	return s, decs, pr
}

func TestScheduleReportStructure(t *testing.T) {
	s, decs, _ := solveExplained(t, 5)
	rep, err := Schedule(s, "HDLTS", decs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tasks != len(rep.Placements) {
		t.Fatalf("placements %d != tasks %d", len(rep.Placements), rep.Tasks)
	}
	if rep.Procs != len(rep.Processors) {
		t.Fatalf("processors %d != procs %d", len(rep.Processors), rep.Procs)
	}
	if len(rep.CriticalPath) == 0 || rep.CriticalTasks != len(rep.CriticalPath) {
		t.Fatalf("critical path %d hops, %d critical tasks", len(rep.CriticalPath), rep.CriticalTasks)
	}
	// The critical path ends at the makespan and is ordered by start.
	last := rep.CriticalPath[len(rep.CriticalPath)-1]
	if math.Abs(last.Finish-rep.Makespan) > 1e-9 {
		t.Fatalf("critical path ends at %g, makespan %g", last.Finish, rep.Makespan)
	}
	for i := 1; i < len(rep.CriticalPath); i++ {
		if rep.CriticalPath[i].Start < rep.CriticalPath[i-1].Start {
			t.Fatal("critical path not ordered by start")
		}
	}
	for _, p := range rep.Placements {
		if p.Rationale == nil {
			t.Fatalf("task %d: no rationale despite capture", p.Task)
		}
		if p.Rationale.Task != 0 && int(p.Rationale.Task) != p.Task {
			t.Fatalf("task %d: rationale for task %d", p.Task, p.Rationale.Task)
		}
		if p.Critical && p.Slack > 1e-9 {
			t.Fatalf("task %d: critical with slack %g", p.Task, p.Slack)
		}
	}
	// Per-processor accounting closes: busy + idle + tail = makespan on
	// every lane with at least one slot.
	for _, pr := range rep.Processors {
		if pr.Tasks == 0 {
			continue
		}
		total := pr.Busy + pr.IdleTotal + pr.TailIdle
		if math.Abs(total-rep.Makespan) > 1e-6 {
			t.Fatalf("P%d accounting: busy %g + idle %g + tail %g != makespan %g",
				pr.Proc+1, pr.Busy, pr.IdleTotal, pr.TailIdle, rep.Makespan)
		}
		if pr.Utilization < 0 || pr.Utilization > 1+1e-9 {
			t.Fatalf("P%d utilization %g out of range", pr.Proc+1, pr.Utilization)
		}
	}
}

// TestScheduleReportByteDeterministic pins the acceptance criterion: two
// independent solve+report passes over the same problem marshal to
// identical bytes.
func TestScheduleReportByteDeterministic(t *testing.T) {
	render := func() []byte {
		s, decs, _ := solveExplained(t, 9)
		rep, err := Schedule(s, "HDLTS", decs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := render(), render()
	if !bytes.Equal(b1, b2) {
		t.Fatal("explain report bytes differ across identical solves")
	}
}

func TestScheduleReportWithoutCapture(t *testing.T) {
	s, _, _ := solveExplained(t, 7)
	rep, err := Schedule(s, "HDLTS", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Placements {
		if p.Rationale != nil {
			t.Fatal("rationale present without capture")
		}
	}
}

func TestWorkflowReport(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	rec := &exec.Record{
		ID:    "wf-test",
		Name:  "demo",
		State: exec.Done,
		Spec: &exec.Workflow{
			Name:  "demo",
			Procs: 2,
			Steps: []exec.Step{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		},
		Replans:         1,
		MakespanSeconds: 3.0,
		StartedAt:       t0,
		Steps: []exec.StepStatus{
			{Name: "a", State: exec.StepDone, PlannedProc: 0, Proc: 0,
				EstSeconds: 1, ObservedSeconds: 1.0,
				StartedAt: t0, FinishedAt: t0.Add(1 * time.Second)},
			{Name: "b", State: exec.StepDone, PlannedProc: 1, Proc: 0,
				EstSeconds: 1, ObservedSeconds: 2.0, QueueWaitSeconds: 1.0,
				StartedAt: t0.Add(1 * time.Second), FinishedAt: t0.Add(3 * time.Second)},
			{Name: "c", State: exec.StepDone, PlannedProc: 1, Proc: 1,
				EstSeconds: 1, ObservedSeconds: 1.0,
				StartedAt: t0, FinishedAt: t0.Add(1 * time.Second)},
		},
	}
	rep := Workflow(rec)
	if rep.MovedSteps != 1 {
		t.Fatalf("MovedSteps = %d, want 1", rep.MovedSteps)
	}
	if rep.QueueWaitSeconds != 1.0 {
		t.Fatalf("QueueWaitSeconds = %g, want 1", rep.QueueWaitSeconds)
	}
	if rep.Steps[1].DriftRatio != 2.0 {
		t.Fatalf("step b drift = %g, want 2", rep.Steps[1].DriftRatio)
	}
	if len(rep.Processors) != 2 || rep.Processors[0].Steps != 2 || rep.Processors[0].BusySeconds != 3.0 {
		t.Fatalf("processor accounting: %+v", rep.Processors)
	}
	if rep.Processors[0].Utilization != 1.0 {
		t.Fatalf("P1 utilization = %g, want 1", rep.Processors[0].Utilization)
	}
	// The observed chain walks b back to a (b starts as a finishes).
	if len(rep.CriticalChain) != 2 || rep.CriticalChain[0] != "a" || rep.CriticalChain[1] != "b" {
		t.Fatalf("critical chain = %v, want [a b]", rep.CriticalChain)
	}
}
