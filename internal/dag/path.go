package dag

// WeightFunc supplies a non-negative weight for a task when computing
// weighted longest paths (e.g. the minimum, mean, or σ of its execution
// times across processors).
type WeightFunc func(TaskID) float64

// EdgeWeightFunc supplies a non-negative weight for a dependency edge
// (typically a communication cost estimate). Use ZeroEdges to ignore
// communication.
type EdgeWeightFunc func(from, to TaskID, data float64) float64

// ZeroEdges is an EdgeWeightFunc that ignores communication entirely.
func ZeroEdges(TaskID, TaskID, float64) float64 { return 0 }

// LongestPath computes, for every task, the weight of the heaviest path from
// any entry task up to and including that task, using the supplied node and
// edge weights. It returns the per-task values and the graph-wide maximum.
// The graph must be acyclic (checked; returns an error otherwise).
func (g *Graph) LongestPath(node WeightFunc, edge EdgeWeightFunc) ([]float64, float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	dist := make([]float64, g.NumTasks())
	best := 0.0
	for _, u := range order {
		d := 0.0
		for _, a := range g.Preds(u) {
			if v := dist[a.Task] + edge(a.Task, u, a.Data); v > d {
				d = v
			}
		}
		dist[u] = d + node(u)
		if dist[u] > best {
			best = dist[u]
		}
	}
	return dist, best, nil
}

// CriticalPath returns one heaviest entry-to-exit path (as an ordered task
// list) together with its total weight, under the supplied node and edge
// weights. Ties are broken toward smaller task IDs so the result is
// deterministic.
func (g *Graph) CriticalPath(node WeightFunc, edge EdgeWeightFunc) ([]TaskID, float64, error) {
	dist, _, err := g.LongestPath(node, edge)
	if err != nil {
		return nil, 0, err
	}
	// Locate the heaviest exit.
	end, best := None, -1.0
	for _, x := range g.Exits() {
		if dist[x] > best || (dist[x] == best && (end == None || x < end)) {
			end, best = x, dist[x]
		}
	}
	if end == None {
		return nil, 0, ErrEmpty
	}
	// Walk backwards choosing the predecessor that realises the distance.
	path := []TaskID{end}
	cur := end
	for g.InDegree(cur) > 0 {
		var pick TaskID = None
		for _, a := range g.Preds(cur) {
			if dist[a.Task]+edge(a.Task, cur, a.Data)+node(cur) == dist[cur] {
				if pick == None || a.Task < pick {
					pick = a.Task
				}
			}
		}
		if pick == None {
			// Floating-point slack: fall back to the heaviest predecessor.
			for _, a := range g.Preds(cur) {
				if pick == None || dist[a.Task]+edge(a.Task, cur, a.Data) > dist[pick] {
					pick = a.Task
				}
			}
		}
		path = append(path, pick)
		cur = pick
	}
	// Reverse into entry-to-exit order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, best, nil
}

// DownwardDistance computes, for every task, the weight of the heaviest path
// from that task (inclusive) down to any exit task. This is the building
// block for upward ranks: rank_u(t) = DownwardDistance(t) when node and edge
// weights are the mean computation and communication costs.
func (g *Graph) DownwardDistance(node WeightFunc, edge EdgeWeightFunc) ([]float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	dist := make([]float64, g.NumTasks())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		d := 0.0
		for _, a := range g.Succs(u) {
			if v := edge(u, a.Task, a.Data) + dist[a.Task]; v > d {
				d = v
			}
		}
		dist[u] = d + node(u)
	}
	return dist, nil
}
