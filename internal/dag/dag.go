// Package dag implements the directed-acyclic-graph application-workflow
// model used throughout the HDLTS reproduction: tasks (vertices), dependency
// edges annotated with the volume of data transferred between tasks,
// validation, topological ordering, level decomposition, critical paths, and
// normalisation of multi-entry/multi-exit graphs via zero-cost pseudo tasks,
// exactly as described in Section III of the paper.
//
// A Graph is purely structural: per-processor execution times live in a
// platform cost matrix (see package platform) so the same workflow can be
// evaluated against many heterogeneous computing environments.
package dag

import (
	"fmt"
	"sort"
)

// TaskID identifies a task inside one Graph. IDs are dense indices in
// [0, Graph.NumTasks()); they are assigned by AddTask in insertion order.
type TaskID int

// None is the sentinel "no task" value returned by lookups that can fail.
const None TaskID = -1

// Task is a single schedulable unit of an application workflow.
type Task struct {
	// ID is the dense index of the task in its graph.
	ID TaskID
	// Name is an optional human-readable label ("T1", "mProjectPP-3", ...).
	Name string
	// Pseudo marks zero-cost tasks inserted by NormalizeSingleEntryExit to
	// collapse multiple entry or exit tasks into one. Pseudo tasks execute in
	// zero time on every processor and exchange zero data on their edges.
	Pseudo bool
}

// Arc is one directed dependency as seen from an endpoint.
type Arc struct {
	// Task is the neighbouring task (the successor when the arc is read from
	// Succs, the predecessor when read from Preds).
	Task TaskID
	// Data is the volume of data shipped over the dependency, in the same
	// abstract units as platform bandwidth. The communication time between
	// two tasks placed on different processors a and b is Data / B(a, b)
	// (Definition 2, Eq. 2); it is zero when both run on the same processor.
	Data float64
}

// Graph is a directed acyclic application workflow: a set of tasks plus
// data-dependency edges. The zero value is an empty, usable graph.
//
// Graph methods never mutate shared state concurrently; a Graph is safe for
// concurrent readers once fully constructed.
type Graph struct {
	tasks []Task
	succs [][]Arc
	preds [][]Arc
	edges int
}

// New returns an empty graph with capacity hints for n tasks.
func New(n int) *Graph {
	return &Graph{
		tasks: make([]Task, 0, n),
		succs: make([][]Arc, 0, n),
		preds: make([][]Arc, 0, n),
	}
}

// AddTask appends a task with the given name and returns its ID.
func (g *Graph) AddTask(name string) TaskID {
	id := TaskID(len(g.tasks))
	g.tasks = append(g.tasks, Task{ID: id, Name: name})
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	return id
}

// AddPseudoTask appends a zero-cost pseudo task (used by normalisation).
func (g *Graph) AddPseudoTask(name string) TaskID {
	id := g.AddTask(name)
	g.tasks[id].Pseudo = true
	return id
}

// AddEdge adds a dependency from task u to task v carrying the given data
// volume. It returns an error for out-of-range endpoints, self-loops,
// duplicate edges, or negative data volumes. Cycle detection is deferred to
// Validate so graphs can be built in any order.
func (g *Graph) AddEdge(u, v TaskID, data float64) error {
	if !g.valid(u) || !g.valid(v) {
		return fmt.Errorf("dag: edge (%d -> %d) references unknown task (graph has %d tasks)", u, v, len(g.tasks))
	}
	if u == v {
		return fmt.Errorf("dag: self-loop on task %d", u)
	}
	if data < 0 {
		return fmt.Errorf("dag: negative data volume %g on edge (%d -> %d)", data, u, v)
	}
	for _, a := range g.succs[u] {
		if a.Task == v {
			return fmt.Errorf("dag: duplicate edge (%d -> %d)", u, v)
		}
	}
	g.succs[u] = append(g.succs[u], Arc{Task: v, Data: data})
	g.preds[v] = append(g.preds[v], Arc{Task: u, Data: data})
	g.edges++
	return nil
}

// MustAddEdge is AddEdge that panics on error; it is intended for
// statically-known graph constructions (tests, fixed real-world workflows).
func (g *Graph) MustAddEdge(u, v TaskID, data float64) {
	if err := g.AddEdge(u, v, data); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(id TaskID) bool { return id >= 0 && int(id) < len(g.tasks) }

// NumTasks reports the number of tasks in the graph.
func (g *Graph) NumTasks() int { return len(g.tasks) }

// NumEdges reports the number of dependency edges in the graph.
func (g *Graph) NumEdges() int { return g.edges }

// Task returns the task record for id. It panics on out-of-range IDs.
func (g *Graph) Task(id TaskID) Task { return g.tasks[id] }

// Succs returns the out-arcs of id. The returned slice is owned by the graph
// and must not be modified.
func (g *Graph) Succs(id TaskID) []Arc { return g.succs[id] }

// Preds returns the in-arcs of id. The returned slice is owned by the graph
// and must not be modified.
func (g *Graph) Preds(id TaskID) []Arc { return g.preds[id] }

// OutDegree reports the number of successors of id.
func (g *Graph) OutDegree(id TaskID) int { return len(g.succs[id]) }

// InDegree reports the number of predecessors of id.
func (g *Graph) InDegree(id TaskID) int { return len(g.preds[id]) }

// EdgeData returns the data volume carried by edge (u -> v) and whether the
// edge exists.
func (g *Graph) EdgeData(u, v TaskID) (float64, bool) {
	if !g.valid(u) || !g.valid(v) {
		return 0, false
	}
	for _, a := range g.succs[u] {
		if a.Task == v {
			return a.Data, true
		}
	}
	return 0, false
}

// Entries returns all tasks with no predecessors, in ID order.
func (g *Graph) Entries() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.preds[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Exits returns all tasks with no successors, in ID order.
func (g *Graph) Exits() []TaskID {
	var out []TaskID
	for i := range g.tasks {
		if len(g.succs[i]) == 0 {
			out = append(out, TaskID(i))
		}
	}
	return out
}

// Entry returns the unique entry task, or None if the graph has zero or
// several entry tasks (normalise first in that case).
func (g *Graph) Entry() TaskID {
	es := g.Entries()
	if len(es) != 1 {
		return None
	}
	return es[0]
}

// Exit returns the unique exit task, or None if the graph has zero or
// several exit tasks.
func (g *Graph) Exit() TaskID {
	es := g.Exits()
	if len(es) != 1 {
		return None
	}
	return es[0]
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		tasks: append([]Task(nil), g.tasks...),
		succs: make([][]Arc, len(g.succs)),
		preds: make([][]Arc, len(g.preds)),
		edges: g.edges,
	}
	for i := range g.succs {
		c.succs[i] = append([]Arc(nil), g.succs[i]...)
		c.preds[i] = append([]Arc(nil), g.preds[i]...)
	}
	return c
}

// SortArcs orders every adjacency list by neighbour ID. Construction order is
// preserved by default; deterministic algorithms that iterate arcs may call
// this once to make results independent of build order.
func (g *Graph) SortArcs() {
	for i := range g.succs {
		sort.Slice(g.succs[i], func(a, b int) bool { return g.succs[i][a].Task < g.succs[i][b].Task })
		sort.Slice(g.preds[i], func(a, b int) bool { return g.preds[i][a].Task < g.preds[i][b].Task })
	}
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("dag.Graph{tasks: %d, edges: %d}", len(g.tasks), g.edges)
}
