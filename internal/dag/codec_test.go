package dag

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	g.tasks[2].Pseudo = true // exercise the pseudo flag

	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %v vs %v", &back, g)
	}
	for i := 0; i < g.NumTasks(); i++ {
		if back.Task(TaskID(i)) != g.Task(TaskID(i)) {
			t.Fatalf("task %d mismatch: %+v vs %+v", i, back.Task(TaskID(i)), g.Task(TaskID(i)))
		}
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, a := range g.Succs(TaskID(u)) {
			if d, ok := back.EdgeData(TaskID(u), a.Task); !ok || d != a.Data {
				t.Fatalf("edge (%d->%d) mismatch after round trip", u, a.Task)
			}
		}
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(30))
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			return false
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for u := 0; u < g.NumTasks(); u++ {
			for _, a := range g.Succs(TaskID(u)) {
				if d, ok := back.EdgeData(TaskID(u), a.Task); !ok || d != a.Data {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsBadGraphs(t *testing.T) {
	cases := map[string]string{
		"not-json":      `{`,
		"cycle":         `{"tasks":[{"name":"a"},{"name":"b"}],"edges":[{"from":0,"to":1,"data":0},{"from":1,"to":0,"data":0}]}`,
		"dangling-edge": `{"tasks":[{"name":"a"}],"edges":[{"from":0,"to":5,"data":0}]}`,
		"negative-data": `{"tasks":[{"name":"a"},{"name":"b"}],"edges":[{"from":0,"to":1,"data":-3}]}`,
		"empty":         `{"tasks":[],"edges":[]}`,
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			var g Graph
			if err := json.Unmarshal([]byte(raw), &g); err == nil {
				t.Fatalf("accepted %s", name)
			}
		})
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond(t)
	g.tasks[3].Pseudo = true
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`digraph "test"`, `label="A"`, "n0 -> n1", `style=dashed`, `label="3"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaultName(t *testing.T) {
	var buf bytes.Buffer
	g := New(1)
	g.AddTask("") // unnamed task gets a T1 label
	if err := g.WriteDOT(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `digraph "workflow"`) || !strings.Contains(buf.String(), `label="T1"`) {
		t.Errorf("DOT default naming wrong:\n%s", buf.String())
	}
}
