package dag

import "fmt"

// Merge combines several workflows into one disjoint-union graph — the
// standard construction for scheduling multiple applications that share one
// HCE (after merging, schedulers normalise the resulting multi-entry/exit
// graph with pseudo tasks as usual). It returns the merged graph and, for
// each input graph, the ID offset its tasks were shifted by: task t of
// input i becomes offsets[i] + t in the merged graph.
//
// Task names are prefixed "w<i>." to stay distinguishable; data volumes are
// preserved verbatim.
func Merge(graphs ...*Graph) (*Graph, []TaskID, error) {
	if len(graphs) == 0 {
		return nil, nil, fmt.Errorf("dag: nothing to merge")
	}
	total := 0
	for i, g := range graphs {
		if g == nil || g.NumTasks() == 0 {
			return nil, nil, fmt.Errorf("dag: merge input %d is empty", i)
		}
		total += g.NumTasks()
	}
	m := New(total)
	offsets := make([]TaskID, len(graphs))
	next := TaskID(0)
	for i, g := range graphs {
		offsets[i] = next
		for t := 0; t < g.NumTasks(); t++ {
			task := g.Task(TaskID(t))
			name := fmt.Sprintf("w%d.%s", i+1, task.Name)
			if task.Pseudo {
				m.AddPseudoTask(name)
			} else {
				m.AddTask(name)
			}
		}
		for t := 0; t < g.NumTasks(); t++ {
			for _, a := range g.Succs(TaskID(t)) {
				m.MustAddEdge(next+TaskID(t), next+a.Task, a.Data)
			}
		}
		next += TaskID(g.NumTasks())
	}
	return m, offsets, nil
}
