package dag

import (
	"errors"
	"fmt"
)

// ErrCycle is wrapped by Validate when the graph contains a dependency cycle.
var ErrCycle = errors.New("dag: graph contains a cycle")

// ErrEmpty is returned by Validate for graphs with no tasks.
var ErrEmpty = errors.New("dag: graph has no tasks")

// Validate checks structural invariants required by every scheduler:
//
//   - the graph has at least one task;
//   - the graph is acyclic;
//   - the graph has at least one entry and one exit task (implied by
//     acyclicity plus non-emptiness, but checked explicitly for clarity).
//
// Endpoint validity, self-loops, duplicate edges, and negative data volumes
// are already rejected by AddEdge.
func (g *Graph) Validate() error {
	if g.NumTasks() == 0 {
		return ErrEmpty
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	if len(g.Entries()) == 0 {
		return errors.New("dag: graph has no entry task")
	}
	if len(g.Exits()) == 0 {
		return errors.New("dag: graph has no exit task")
	}
	return nil
}

// TopoOrder returns the task IDs in a deterministic topological order
// (Kahn's algorithm with a smallest-ID-first tie break), or a wrapped
// ErrCycle if the graph is cyclic.
func (g *Graph) TopoOrder() ([]TaskID, error) {
	n := g.NumTasks()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = g.InDegree(TaskID(i))
	}
	// A min-heap over ready IDs keeps the order deterministic regardless of
	// construction order. Sizes here are modest (<= tens of thousands), so a
	// simple binary heap over a slice is plenty.
	var heap minIDHeap
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			heap.push(TaskID(i))
		}
	}
	order := make([]TaskID, 0, n)
	for heap.len() > 0 {
		u := heap.pop()
		order = append(order, u)
		for _, a := range g.Succs(u) {
			indeg[a.Task]--
			if indeg[a.Task] == 0 {
				heap.push(a.Task)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("%w (%d of %d tasks ordered)", ErrCycle, len(order), n)
	}
	return order, nil
}

// minIDHeap is a tiny binary min-heap of TaskIDs used by TopoOrder.
type minIDHeap struct{ a []TaskID }

func (h *minIDHeap) len() int { return len(h.a) }

func (h *minIDHeap) push(v TaskID) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *minIDHeap) pop() TaskID {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h.a) && h.a[l] < h.a[m] {
			m = l
		}
		if r < len(h.a) && h.a[r] < h.a[m] {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
