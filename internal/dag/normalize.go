package dag

// NormalizeSingleEntryExit returns a graph guaranteed to have exactly one
// entry task and one exit task. When the input already satisfies this, the
// original graph is returned unchanged (no copy). Otherwise a clone is made
// and zero-cost pseudo tasks are attached with zero-data edges, exactly as
// Section III prescribes: "We use a pseudo task to model the multiple entry
// and exit task graphs into a single entry and exit task graphs. This pseudo
// task has zero computation cost and is connected with its child tasks with
// zero communication cost."
//
// The boolean result reports whether any pseudo task was added; when true the
// caller must extend its cost matrix with zero-cost rows for the new task IDs
// (the new tasks always receive the highest IDs, pseudo-entry first if both
// are added).
func NormalizeSingleEntryExit(g *Graph) (*Graph, bool) {
	entries := g.Entries()
	exits := g.Exits()
	if len(entries) == 1 && len(exits) == 1 {
		return g, false
	}
	c := g.Clone()
	if len(entries) > 1 {
		pe := c.AddPseudoTask("pseudo-entry")
		for _, e := range entries {
			c.MustAddEdge(pe, e, 0)
		}
	}
	if len(exits) > 1 {
		px := c.AddPseudoTask("pseudo-exit")
		for _, x := range exits {
			c.MustAddEdge(x, px, 0)
		}
	}
	return c, true
}
