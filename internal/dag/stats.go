package dag

import (
	"fmt"
	"strings"
)

// GraphStats summarises the structural characteristics the paper's
// generator controls (Table II): size, shape, and degree distribution.
type GraphStats struct {
	Tasks   int
	Edges   int
	Entries int
	Exits   int
	// Height is the number of precedence levels; Width the largest level.
	Height int
	Width  int
	// MeanOutDegree counts only non-terminal tasks (matching the
	// generator's "density" parameter semantics).
	MeanOutDegree float64
	MaxOutDegree  int
	MaxInDegree   int
	// LevelWidths lists the size of every precedence level in order.
	LevelWidths []int
	// TotalData is the sum of edge data volumes (the CCR numerator).
	TotalData float64
}

// ComputeStats derives the statistics; the graph must be acyclic.
func ComputeStats(g *Graph) (*GraphStats, error) {
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	st := &GraphStats{
		Tasks:   g.NumTasks(),
		Edges:   g.NumEdges(),
		Entries: len(g.Entries()),
		Exits:   len(g.Exits()),
		Height:  len(levels),
	}
	for _, l := range levels {
		st.LevelWidths = append(st.LevelWidths, len(l))
		if len(l) > st.Width {
			st.Width = len(l)
		}
	}
	nonTerminal := 0
	outSum := 0
	for t := 0; t < g.NumTasks(); t++ {
		id := TaskID(t)
		if d := g.OutDegree(id); d > 0 {
			nonTerminal++
			outSum += d
			if d > st.MaxOutDegree {
				st.MaxOutDegree = d
			}
		}
		if d := g.InDegree(id); d > st.MaxInDegree {
			st.MaxInDegree = d
		}
		for _, a := range g.Succs(id) {
			st.TotalData += a.Data
		}
	}
	if nonTerminal > 0 {
		st.MeanOutDegree = float64(outSum) / float64(nonTerminal)
	}
	return st, nil
}

// String renders a compact multi-line report.
func (st *GraphStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tasks %d, edges %d, entries %d, exits %d\n", st.Tasks, st.Edges, st.Entries, st.Exits)
	fmt.Fprintf(&b, "height %d, width %d, mean out-degree %.2f (max out %d, max in %d)\n",
		st.Height, st.Width, st.MeanOutDegree, st.MaxOutDegree, st.MaxInDegree)
	fmt.Fprintf(&b, "level widths: %v\n", st.LevelWidths)
	fmt.Fprintf(&b, "total edge data: %.4g\n", st.TotalData)
	return b.String()
}
