package dag

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestComputeStatsDiamond(t *testing.T) {
	g := diamond(t)
	st, err := ComputeStats(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 4 || st.Edges != 4 || st.Entries != 1 || st.Exits != 1 {
		t.Fatalf("shape: %+v", st)
	}
	if st.Height != 3 || st.Width != 2 {
		t.Fatalf("height/width: %+v", st)
	}
	// Non-terminal tasks: A (out 2), B (1), C (1) -> mean 4/3.
	if math.Abs(st.MeanOutDegree-4.0/3.0) > 1e-12 {
		t.Fatalf("mean out-degree = %g", st.MeanOutDegree)
	}
	if st.MaxOutDegree != 2 || st.MaxInDegree != 2 {
		t.Fatalf("degrees: %+v", st)
	}
	if st.TotalData != 1+2+3+4 {
		t.Fatalf("total data = %g", st.TotalData)
	}
	if len(st.LevelWidths) != 3 || st.LevelWidths[1] != 2 {
		t.Fatalf("level widths = %v", st.LevelWidths)
	}
	if rep := st.String(); !strings.Contains(rep, "height 3") {
		t.Fatalf("report = %q", rep)
	}
}

func TestComputeStatsRejectsCycle(t *testing.T) {
	g := New(2)
	a := g.AddTask("a")
	b := g.AddTask("b")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 0)
	if _, err := ComputeStats(g); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestReadDOTBasic(t *testing.T) {
	src := `
digraph "flow" {
    rankdir=TB;
    node [shape=box];
    a [label="fetch"];
    b; // plain node
    a -> b [label="12.5"];
    a -> "c d";        # quoted identifier with a space
    "c d" -> b [label="3"];
}
`
	g, err := ReadDOT(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 3 || g.NumEdges() != 3 {
		t.Fatalf("shape: %d tasks, %d edges", g.NumTasks(), g.NumEdges())
	}
	if g.Task(0).Name != "fetch" {
		t.Fatalf("label rename failed: %q", g.Task(0).Name)
	}
	if d, ok := g.EdgeData(0, 1); !ok || d != 12.5 {
		t.Fatalf("edge data = %g, %v", d, ok)
	}
	if d, ok := g.EdgeData(0, 2); !ok || d != 0 {
		t.Fatalf("unlabelled edge data = %g, %v", d, ok)
	}
}

func TestReadDOTRoundTripWithEmitter(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "rt"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDOT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip shape: %v vs %v", back, g)
	}
	// Names and data survive (IDs are assigned in emission order).
	for i := 0; i < g.NumTasks(); i++ {
		if back.Task(TaskID(i)).Name != g.Task(TaskID(i)).Name {
			t.Fatalf("task %d name %q vs %q", i, back.Task(TaskID(i)).Name, g.Task(TaskID(i)).Name)
		}
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, a := range g.Succs(TaskID(u)) {
			if d, ok := back.EdgeData(TaskID(u), a.Task); !ok || d != a.Data {
				t.Fatalf("edge (%d->%d) lost or changed", u, a.Task)
			}
		}
	}
}

func TestReadDOTErrors(t *testing.T) {
	cases := map[string]string{
		"no-header":     `a -> b`,
		"chain-edge":    "digraph x {\na -> b -> c\n}",
		"bad-label":     "digraph x {\na -> b [label=\"twelve\"]\n}",
		"unterminated":  "digraph x {\na [label=\"y\"\n}",
		"self-loop":     "digraph x {\na -> a\n}",
		"cycle":         "digraph x {\na -> b\nb -> a\n}",
		"bad-attr":      "digraph x {\na [label]\n}",
		"empty-digraph": "digraph x {\n}",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadDOT(strings.NewReader(src)); err == nil {
				t.Fatalf("accepted %s", name)
			}
		})
	}
}
