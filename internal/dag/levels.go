package dag

// Levels partitions tasks into precedence levels: level(t) = 0 for entry
// tasks and level(t) = 1 + max(level(parents)) otherwise (the longest-path
// depth). Tasks within one level are mutually independent and can execute in
// parallel (Section III of the paper). The returned slice is indexed by
// level; IDs within each level are ascending.
//
// Levels returns an error if the graph is cyclic.
func (g *Graph) Levels() ([][]TaskID, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, g.NumTasks())
	maxDepth := 0
	for _, u := range order {
		for _, a := range g.Preds(u) {
			if d := depth[a.Task] + 1; d > depth[u] {
				depth[u] = d
			}
		}
		if depth[u] > maxDepth {
			maxDepth = depth[u]
		}
	}
	levels := make([][]TaskID, maxDepth+1)
	for _, u := range order {
		levels[depth[u]] = append(levels[depth[u]], u)
	}
	return levels, nil
}

// Height returns the number of precedence levels (the DAG height k used in
// the paper's complexity analysis). It returns 0 for cyclic graphs.
func (g *Graph) Height() int {
	levels, err := g.Levels()
	if err != nil {
		return 0
	}
	return len(levels)
}

// Width returns the size of the largest precedence level (the maximum
// exploitable parallelism). It returns 0 for cyclic graphs.
func (g *Graph) Width() int {
	levels, err := g.Levels()
	if err != nil {
		return 0
	}
	w := 0
	for _, l := range levels {
		if len(l) > w {
			w = len(l)
		}
	}
	return w
}

// LevelOf returns, for every task, its precedence level.
func (g *Graph) LevelOf() ([]int, error) {
	levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	out := make([]int, g.NumTasks())
	for l, ids := range levels {
		for _, id := range ids {
			out[id] = l
		}
	}
	return out, nil
}
