package dag

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzGraphJSON hardens the graph decoder: arbitrary bytes must either fail
// cleanly or yield a validated graph that round-trips.
func FuzzGraphJSON(f *testing.F) {
	f.Add([]byte(`{"tasks":[{"name":"a"},{"name":"b"}],"edges":[{"from":0,"to":1,"data":3}]}`))
	f.Add([]byte(`{"tasks":[{"name":"x","pseudo":true}],"edges":[]}`))
	f.Add([]byte(`{"tasks":[],"edges":[]}`))
	f.Add([]byte(`{"tasks":[{"name":"a"}],"edges":[{"from":0,"to":9,"data":1}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"tasks":[{"name":"a"},{"name":"b"}],"edges":[{"from":0,"to":1,"data":-1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // clean rejection is fine
		}
		// Accepted graphs must be valid and must round-trip losslessly.
		if err := g.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape")
		}
	})
}
