package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalizeNoopOnSingleEntryExit(t *testing.T) {
	g := diamond(t)
	n, changed := NormalizeSingleEntryExit(g)
	if changed {
		t.Fatal("normalisation reported changes on an already-normalised graph")
	}
	if n != g {
		t.Fatal("normalisation copied an already-normalised graph")
	}
}

func TestNormalizeMultiEntry(t *testing.T) {
	g := New(3)
	a := g.AddTask("a")
	b := g.AddTask("b")
	c := g.AddTask("c")
	g.MustAddEdge(a, c, 1)
	g.MustAddEdge(b, c, 1)

	n, changed := NormalizeSingleEntryExit(g)
	if !changed {
		t.Fatal("multi-entry graph reported as unchanged")
	}
	if g.NumTasks() != 3 {
		t.Fatal("normalisation mutated the input graph")
	}
	if n.NumTasks() != 4 {
		t.Fatalf("normalised tasks = %d, want 4", n.NumTasks())
	}
	entry := n.Entry()
	if entry == None {
		t.Fatal("normalised graph still has multiple entries")
	}
	if !n.Task(entry).Pseudo {
		t.Fatal("pseudo entry not marked Pseudo")
	}
	for _, arc := range n.Succs(entry) {
		if arc.Data != 0 {
			t.Fatalf("pseudo edge carries data %g, want 0", arc.Data)
		}
	}
}

func TestNormalizeMultiExit(t *testing.T) {
	g := New(3)
	a := g.AddTask("a")
	b := g.AddTask("b")
	c := g.AddTask("c")
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 1)

	n, changed := NormalizeSingleEntryExit(g)
	if !changed || n.Exit() == None || !n.Task(n.Exit()).Pseudo {
		t.Fatalf("multi-exit normalisation failed: changed=%v exit=%d", changed, n.Exit())
	}
}

func TestNormalizeBoth(t *testing.T) {
	// Two disconnected chains: 2 entries and 2 exits.
	g := New(4)
	a := g.AddTask("a")
	b := g.AddTask("b")
	c := g.AddTask("c")
	d := g.AddTask("d")
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(c, d, 1)

	n, changed := NormalizeSingleEntryExit(g)
	if !changed || n.NumTasks() != 6 {
		t.Fatalf("normalised tasks = %d, want 6", n.NumTasks())
	}
	// Pseudo entry must be added before pseudo exit (documented ID order).
	if !n.Task(TaskID(4)).Pseudo || n.InDegree(TaskID(4)) != 0 {
		t.Error("task 4 should be the pseudo entry")
	}
	if !n.Task(TaskID(5)).Pseudo || n.OutDegree(TaskID(5)) != 0 {
		t.Error("task 5 should be the pseudo exit")
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("normalised graph invalid: %v", err)
	}
}

// TestQuickNormalizeAlwaysSingleEntryExit: normalisation of arbitrary DAGs
// always produces exactly one entry and one exit, stays acyclic, and never
// adds more than two tasks.
func TestQuickNormalizeAlwaysSingleEntryExit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(50))
		n, _ := NormalizeSingleEntryExit(g)
		if n.Entry() == None || n.Exit() == None {
			return false
		}
		if n.NumTasks() > g.NumTasks()+2 {
			return false
		}
		return n.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
