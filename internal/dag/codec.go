package dag

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// jsonGraph is the on-disk representation of a Graph. Task IDs are implicit
// in task array order, which matches the dense in-memory IDs.
type jsonGraph struct {
	Tasks []jsonTask `json:"tasks"`
	Edges []jsonEdge `json:"edges"`
}

type jsonTask struct {
	Name   string `json:"name"`
	Pseudo bool   `json:"pseudo,omitempty"`
}

type jsonEdge struct {
	From TaskID  `json:"from"`
	To   TaskID  `json:"to"`
	Data float64 `json:"data"`
}

// MarshalJSON encodes the graph as {"tasks": [...], "edges": [...]}.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Tasks: make([]jsonTask, g.NumTasks())}
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(TaskID(i))
		jg.Tasks[i] = jsonTask{Name: t.Name, Pseudo: t.Pseudo}
	}
	for u := 0; u < g.NumTasks(); u++ {
		arcs := append([]Arc(nil), g.Succs(TaskID(u))...)
		sort.Slice(arcs, func(a, b int) bool { return arcs[a].Task < arcs[b].Task })
		for _, a := range arcs {
			jg.Edges = append(jg.Edges, jsonEdge{From: TaskID(u), To: a.Task, Data: a.Data})
		}
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously encoded with MarshalJSON. The
// decoded graph is validated (acyclic, well-formed edges).
func (g *Graph) UnmarshalJSON(b []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(b, &jg); err != nil {
		return fmt.Errorf("dag: decode: %w", err)
	}
	n := New(len(jg.Tasks))
	for _, t := range jg.Tasks {
		id := n.AddTask(t.Name)
		n.tasks[id].Pseudo = t.Pseudo
	}
	for _, e := range jg.Edges {
		if err := n.AddEdge(e.From, e.To, e.Data); err != nil {
			return err
		}
	}
	if err := n.Validate(); err != nil {
		return err
	}
	*g = *n
	return nil
}

// WriteJSON writes the graph as indented JSON to w.
func (g *Graph) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// ReadJSON decodes a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}

// WriteDOT renders the graph in Graphviz DOT syntax, labelling edges with
// their data volumes. Pseudo tasks are drawn dashed.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	var b strings.Builder
	if name == "" {
		name = "workflow"
	}
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n", name)
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(TaskID(i))
		label := t.Name
		if label == "" {
			label = fmt.Sprintf("T%d", i+1)
		}
		style := ""
		if t.Pseudo {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", i, label, style)
	}
	for u := 0; u < g.NumTasks(); u++ {
		for _, a := range g.Succs(TaskID(u)) {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%g\"];\n", u, a.Task, a.Data)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
