package dag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitNode(TaskID) float64                    { return 1 }
func dataEdge(_, _ TaskID, data float64) float64 { return data }
func weightOf(w []float64) WeightFunc            { return func(t TaskID) float64 { return w[t] } }
func constEdge(c float64) EdgeWeightFunc         { return func(_, _ TaskID, _ float64) float64 { return c } }

func TestLongestPathUnitWeights(t *testing.T) {
	g := diamond(t)
	dist, best, err := g.LongestPath(unitNode, ZeroEdges)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 2, 3}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist = %v, want %v", dist, want)
		}
	}
	if best != 3 {
		t.Fatalf("best = %g, want 3", best)
	}
}

func TestLongestPathWithEdgeWeights(t *testing.T) {
	g := diamond(t)
	// Node weight 1 everywhere; edge weight = data volume (A-B-D: 1+3,
	// A-C-D: 2+4 -> heavier path through C).
	_, best, err := g.LongestPath(unitNode, dataEdge)
	if err != nil {
		t.Fatal(err)
	}
	if best != 3+2+4 {
		t.Fatalf("best = %g, want 9", best)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	g := diamond(t)
	w := []float64{5, 1, 10, 2} // C is heavy: CP must be A-C-D.
	path, total, err := g.CriticalPath(weightOf(w), ZeroEdges)
	if err != nil {
		t.Fatal(err)
	}
	if total != 17 {
		t.Fatalf("total = %g, want 17", total)
	}
	want := []TaskID{0, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestCriticalPathTieBreaksDeterministically(t *testing.T) {
	g := diamond(t)
	w := []float64{1, 2, 2, 1} // both middle paths weigh the same
	p1, _, err := g.CriticalPath(weightOf(w), ZeroEdges)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := g.CriticalPath(weightOf(w), ZeroEdges)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("critical path not deterministic")
		}
	}
	if p1[1] != 1 {
		t.Fatalf("tie should break to the smaller ID, got %v", p1)
	}
}

func TestDownwardDistance(t *testing.T) {
	g := diamond(t)
	w := []float64{5, 1, 10, 2}
	dist, err := g.DownwardDistance(weightOf(w), ZeroEdges)
	if err != nil {
		t.Fatal(err)
	}
	// From A the heaviest downward path is A+C+D = 17.
	want := []float64{17, 3, 12, 2}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("DownwardDistance = %v, want %v", dist, want)
		}
	}
}

// TestQuickPathConsistency: for arbitrary DAGs, the critical path total
// equals the longest-path maximum, the path is a real graph path from an
// entry to an exit, and its node+edge weights sum to the total.
func TestQuickPathConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(40))
		w := make([]float64, g.NumTasks())
		for i := range w {
			w[i] = rng.Float64() * 10
		}
		path, total, err := g.CriticalPath(weightOf(w), dataEdge)
		if err != nil {
			return false
		}
		_, best, err := g.LongestPath(weightOf(w), dataEdge)
		if err != nil || math.Abs(best-total) > 1e-9 {
			return false
		}
		if g.InDegree(path[0]) != 0 || g.OutDegree(path[len(path)-1]) != 0 {
			return false
		}
		sum := w[path[0]]
		for i := 1; i < len(path); i++ {
			d, ok := g.EdgeData(path[i-1], path[i])
			if !ok {
				return false
			}
			sum += d + w[path[i]]
		}
		return math.Abs(sum-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDownwardDistanceIsRankU: rank_u(t) computed via DownwardDistance
// must satisfy the defining recurrence.
func TestQuickDownwardDistanceIsRankU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 1+rng.Intn(40))
		w := make([]float64, g.NumTasks())
		for i := range w {
			w[i] = rng.Float64() * 10
		}
		edge := constEdge(2.5)
		dist, err := g.DownwardDistance(weightOf(w), edge)
		if err != nil {
			return false
		}
		for u := 0; u < g.NumTasks(); u++ {
			want := 0.0
			for _, a := range g.Succs(TaskID(u)) {
				if v := 2.5 + dist[a.Task]; v > want {
					want = v
				}
			}
			want += w[u]
			if math.Abs(dist[u]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPathsOnCycleFail(t *testing.T) {
	g := New(2)
	a := g.AddTask("a")
	b := g.AddTask("b")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 0)
	if _, _, err := g.LongestPath(unitNode, ZeroEdges); err == nil {
		t.Error("LongestPath accepted a cycle")
	}
	if _, _, err := g.CriticalPath(unitNode, ZeroEdges); err == nil {
		t.Error("CriticalPath accepted a cycle")
	}
	if _, err := g.DownwardDistance(unitNode, ZeroEdges); err == nil {
		t.Error("DownwardDistance accepted a cycle")
	}
}
