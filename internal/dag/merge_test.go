package dag

import (
	"strings"
	"testing"
)

func TestMergeDisjointUnion(t *testing.T) {
	g1 := diamond(t)
	g2 := New(2)
	a := g2.AddTask("x")
	b := g2.AddTask("y")
	g2.MustAddEdge(a, b, 7)

	m, offsets, err := Merge(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTasks() != 6 || m.NumEdges() != 5 {
		t.Fatalf("merged shape = %d tasks / %d edges", m.NumTasks(), m.NumEdges())
	}
	if offsets[0] != 0 || offsets[1] != 4 {
		t.Fatalf("offsets = %v", offsets)
	}
	// Edge data preserved under the offset mapping.
	if d, ok := m.EdgeData(offsets[1]+0, offsets[1]+1); !ok || d != 7 {
		t.Fatalf("g2 edge lost: %g %v", d, ok)
	}
	// No cross edges: two entries, two exits before normalisation.
	if len(m.Entries()) != 2 || len(m.Exits()) != 2 {
		t.Fatalf("entries/exits = %d/%d", len(m.Entries()), len(m.Exits()))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Names are workflow-prefixed.
	if name := m.Task(offsets[1]).Name; !strings.HasPrefix(name, "w2.") {
		t.Fatalf("name = %q", name)
	}
}

func TestMergePreservesPseudoFlag(t *testing.T) {
	g := New(2)
	g.AddPseudoTask("p")
	g.AddTask("q")
	g.MustAddEdge(0, 1, 0)
	m, _, err := Merge(g)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Task(0).Pseudo || m.Task(1).Pseudo {
		t.Fatal("pseudo flags lost in merge")
	}
}

func TestMergeRejectsEmpty(t *testing.T) {
	if _, _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	if _, _, err := Merge(New(0)); err == nil {
		t.Error("empty input graph accepted")
	}
	if _, _, err := Merge(nil); err == nil {
		t.Error("nil input graph accepted")
	}
}
