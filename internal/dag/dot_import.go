package dag

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDOT parses the pragmatic Graphviz-DOT subset this library emits and
// that hand-written workflow files typically use:
//
//	digraph name {
//	    a;                       // optional node declarations
//	    b [label="fetch"];       // label attribute becomes the task name
//	    a -> b;                  // dependency with data volume 0
//	    a -> c [label="12.5"];   // numeric label = data volume
//	}
//
// Unknown attributes are ignored; `//` and `#` comments, semicolons, and
// arbitrary whitespace are tolerated. Undeclared endpoints are created on
// first use. The result is validated (acyclic, well-formed).
//
// This is a deliberately small single-statement-per-line parser, not a full
// DOT implementation: subgraphs, multi-edge statements (a -> b -> c), and
// quoted identifiers containing "->" are not supported and yield errors or
// (for unknown syntax) are reported with their line number.
func ReadDOT(r io.Reader) (*Graph, error) {
	g := New(16)
	ids := map[string]TaskID{}
	intern := func(name string) TaskID {
		if id, ok := ids[name]; ok {
			return id
		}
		id := g.AddTask(name)
		ids[name] = id
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		// Strip comments.
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if i := strings.Index(line, "#"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		line = strings.TrimSuffix(line, ";")
		line = strings.TrimSpace(line)
		if line == "" || line == "}" {
			continue
		}
		if strings.HasPrefix(line, "digraph") {
			sawHeader = true
			continue
		}
		if !sawHeader {
			return nil, fmt.Errorf("dag: dot line %d: expected 'digraph' header before %q", lineNo, line)
		}
		if strings.HasPrefix(line, "graph") || strings.HasPrefix(line, "node") || strings.HasPrefix(line, "edge") || strings.HasPrefix(line, "rankdir") {
			continue // global attribute statements
		}

		// Split off a trailing attribute list.
		attrs := map[string]string{}
		if i := strings.Index(line, "["); i >= 0 {
			j := strings.LastIndex(line, "]")
			if j < i {
				return nil, fmt.Errorf("dag: dot line %d: unterminated attribute list", lineNo)
			}
			var err error
			attrs, err = parseDOTAttrs(line[i+1 : j])
			if err != nil {
				return nil, fmt.Errorf("dag: dot line %d: %w", lineNo, err)
			}
			line = strings.TrimSpace(line[:i])
		}

		if strings.Contains(line, "->") {
			parts := strings.Split(line, "->")
			if len(parts) != 2 {
				return nil, fmt.Errorf("dag: dot line %d: only single edges 'a -> b' are supported", lineNo)
			}
			u := intern(unquoteDOT(strings.TrimSpace(parts[0])))
			v := intern(unquoteDOT(strings.TrimSpace(parts[1])))
			data := 0.0
			if lbl, ok := attrs["label"]; ok {
				d, err := strconv.ParseFloat(lbl, 64)
				if err != nil {
					return nil, fmt.Errorf("dag: dot line %d: edge label %q is not a number", lineNo, lbl)
				}
				data = d
			}
			if err := g.AddEdge(u, v, data); err != nil {
				return nil, fmt.Errorf("dag: dot line %d: %w", lineNo, err)
			}
			continue
		}

		// Node declaration: a bare identifier, optionally with a label.
		name := unquoteDOT(line)
		if name == "" {
			return nil, fmt.Errorf("dag: dot line %d: cannot parse %q", lineNo, line)
		}
		id := intern(name)
		if lbl, ok := attrs["label"]; ok {
			// Rename the task to its label (the emitter writes labels).
			g.tasks[id].Name = lbl
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// parseDOTAttrs parses `k="v", k2=v2` lists.
func parseDOTAttrs(s string) (map[string]string, error) {
	out := map[string]string{}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		eq := strings.Index(kv, "=")
		if eq < 0 {
			return nil, fmt.Errorf("attribute %q has no '='", kv)
		}
		k := strings.TrimSpace(kv[:eq])
		v := unquoteDOT(strings.TrimSpace(kv[eq+1:]))
		out[k] = v
	}
	return out, nil
}

// unquoteDOT strips optional double quotes.
func unquoteDOT(s string) string {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}
