package dag

import (
	"strings"
	"testing"
)

// diamond builds the 4-task diamond A -> {B, C} -> D used by several tests.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	a := g.AddTask("A")
	b := g.AddTask("B")
	c := g.AddTask("C")
	d := g.AddTask("D")
	g.MustAddEdge(a, b, 1)
	g.MustAddEdge(a, c, 2)
	g.MustAddEdge(b, d, 3)
	g.MustAddEdge(c, d, 4)
	return g
}

func TestAddTaskAssignsDenseIDs(t *testing.T) {
	g := New(0)
	for i := 0; i < 5; i++ {
		if id := g.AddTask(""); int(id) != i {
			t.Fatalf("AddTask #%d returned id %d", i, id)
		}
	}
	if g.NumTasks() != 5 {
		t.Fatalf("NumTasks = %d, want 5", g.NumTasks())
	}
}

func TestAddEdgeRejections(t *testing.T) {
	g := New(2)
	a := g.AddTask("a")
	b := g.AddTask("b")
	cases := []struct {
		name    string
		u, v    TaskID
		data    float64
		wantSub string
	}{
		{"unknown-target", a, 7, 1, "unknown task"},
		{"unknown-source", -1, b, 1, "unknown task"},
		{"self-loop", a, a, 1, "self-loop"},
		{"negative-data", a, b, -2, "negative data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := g.AddEdge(tc.u, tc.v, tc.data)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("AddEdge(%d,%d,%g) = %v, want error containing %q", tc.u, tc.v, tc.data, err, tc.wantSub)
			}
		})
	}
	if err := g.AddEdge(a, b, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := g.AddEdge(a, b, 1); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate edge accepted: %v", err)
	}
}

func TestMustAddEdgePanics(t *testing.T) {
	g := New(1)
	a := g.AddTask("a")
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddEdge on a self-loop did not panic")
		}
	}()
	g.MustAddEdge(a, a, 0)
}

func TestAdjacencyAndDegrees(t *testing.T) {
	g := diamond(t)
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(A) = %d, want 2", got)
	}
	if got := g.InDegree(3); got != 2 {
		t.Errorf("InDegree(D) = %d, want 2", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d, want 4", got)
	}
	if d, ok := g.EdgeData(1, 3); !ok || d != 3 {
		t.Errorf("EdgeData(B,D) = %g,%v, want 3,true", d, ok)
	}
	if _, ok := g.EdgeData(3, 0); ok {
		t.Error("EdgeData found a nonexistent edge D->A")
	}
	if _, ok := g.EdgeData(-1, 99); ok {
		t.Error("EdgeData accepted out-of-range IDs")
	}
}

func TestEntriesExits(t *testing.T) {
	g := diamond(t)
	if e := g.Entry(); e != 0 {
		t.Errorf("Entry = %d, want 0", e)
	}
	if x := g.Exit(); x != 3 {
		t.Errorf("Exit = %d, want 3", x)
	}

	// Two-component graph: two entries, two exits.
	g2 := New(4)
	a := g2.AddTask("a")
	b := g2.AddTask("b")
	c := g2.AddTask("c")
	d := g2.AddTask("d")
	g2.MustAddEdge(a, b, 0)
	g2.MustAddEdge(c, d, 0)
	if got := len(g2.Entries()); got != 2 {
		t.Errorf("Entries = %d, want 2", got)
	}
	if g2.Entry() != None || g2.Exit() != None {
		t.Error("Entry/Exit should be None for multi-entry/exit graphs")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.MustAddEdge(1, 2, 9) // B -> C only in the clone
	if _, ok := g.EdgeData(1, 2); ok {
		t.Fatal("mutating the clone changed the original")
	}
	if c.NumEdges() != g.NumEdges()+1 {
		t.Fatalf("clone edges = %d, want %d", c.NumEdges(), g.NumEdges()+1)
	}
}

func TestSortArcs(t *testing.T) {
	g := New(3)
	a := g.AddTask("a")
	c := g.AddTask("c")
	b := g.AddTask("b")
	g.MustAddEdge(a, b, 1) // id 2
	g.MustAddEdge(a, c, 1) // id 1
	g.SortArcs()
	succ := g.Succs(a)
	if succ[0].Task != 1 || succ[1].Task != 2 {
		t.Fatalf("SortArcs order = %v", succ)
	}
}

func TestValidate(t *testing.T) {
	if err := New(0).Validate(); err == nil {
		t.Error("empty graph validated")
	}
	if err := diamond(t).Validate(); err != nil {
		t.Errorf("diamond failed validation: %v", err)
	}

	// A 3-cycle must be rejected by Validate/TopoOrder.
	g := New(3)
	a := g.AddTask("a")
	b := g.AddTask("b")
	c := g.AddTask("c")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, c, 0)
	g.MustAddEdge(c, a, 0)
	err := g.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestStringSummaries(t *testing.T) {
	g := diamond(t)
	if s := g.String(); !strings.Contains(s, "tasks: 4") || !strings.Contains(s, "edges: 4") {
		t.Errorf("String() = %q", s)
	}
}
