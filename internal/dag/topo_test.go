package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTopoOrderDeterministicAndValid(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	want := []TaskID{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("TopoOrder = %v, want %v", order, want)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New(2)
	a := g.AddTask("a")
	b := g.AddTask("b")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 0)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
}

// randomDAG builds a random acyclic graph by only ever adding forward edges
// in ID order.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddTask("")
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.15 {
				g.MustAddEdge(TaskID(u), TaskID(v), rng.Float64()*10)
			}
		}
	}
	return g
}

// TestQuickTopoProperties checks, for arbitrary random DAGs, that the
// topological order contains every task exactly once and respects every
// edge.
func TestQuickTopoProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(60))
		order, err := g.TopoOrder()
		if err != nil {
			return false
		}
		pos := make(map[TaskID]int, len(order))
		for i, id := range order {
			if _, dup := pos[id]; dup {
				return false
			}
			pos[id] = i
		}
		if len(pos) != g.NumTasks() {
			return false
		}
		for u := 0; u < g.NumTasks(); u++ {
			for _, a := range g.Succs(TaskID(u)) {
				if pos[TaskID(u)] >= pos[a.Task] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(levels))
	}
	if len(levels[1]) != 2 {
		t.Fatalf("middle level size = %d, want 2", len(levels[1]))
	}
	if g.Height() != 3 || g.Width() != 2 {
		t.Fatalf("Height/Width = %d/%d, want 3/2", g.Height(), g.Width())
	}
	lv, err := g.LevelOf()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i := range want {
		if lv[i] != want[i] {
			t.Fatalf("LevelOf = %v, want %v", lv, want)
		}
	}
}

// TestQuickLevelsIndependentWithinLevel verifies the paper's property that
// tasks on the same level are mutually independent (no edge inside a level).
func TestQuickLevelsIndependentWithinLevel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(rng, 2+rng.Intn(60))
		lv, err := g.LevelOf()
		if err != nil {
			return false
		}
		for u := 0; u < g.NumTasks(); u++ {
			for _, a := range g.Succs(TaskID(u)) {
				if lv[u] >= lv[a.Task] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelsOnCycleFails(t *testing.T) {
	g := New(2)
	a := g.AddTask("a")
	b := g.AddTask("b")
	g.MustAddEdge(a, b, 0)
	g.MustAddEdge(b, a, 0)
	if _, err := g.Levels(); err == nil {
		t.Fatal("Levels accepted a cyclic graph")
	}
	if g.Height() != 0 || g.Width() != 0 {
		t.Fatal("Height/Width should be 0 for cyclic graphs")
	}
}

func TestMinIDHeapOrdering(t *testing.T) {
	var h minIDHeap
	for _, v := range []TaskID{5, 1, 4, 1, 3, 9, 0} {
		h.push(v)
	}
	prev := TaskID(-1)
	for h.len() > 0 {
		v := h.pop()
		if v < prev {
			t.Fatalf("heap popped %d after %d", v, prev)
		}
		prev = v
	}
}
