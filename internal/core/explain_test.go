package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"hdlts/internal/gen"
)

// TestScheduleExplainedInvariants checks the captured rationale against the
// solver's own contracts on random problems: one decision per normalised
// task, candidate vectors of platform width, the winning EFT the vector
// minimum (paper configuration), the committed PV the queue maximum, and
// the ITQ snapshot sorted with the winner present.
func TestScheduleExplainedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		pr, err := randomProblem(rng)
		if err != nil {
			t.Fatal(err)
		}
		h := New()
		s, decs, err := h.ScheduleExplained(pr)
		if err != nil {
			t.Fatal(err)
		}
		npr := pr.Normalize()
		n, np := npr.NumTasks(), npr.NumProcs()
		if len(decs) != n {
			t.Fatalf("problem %d: %d decisions for %d tasks", i, len(decs), n)
		}
		for k, d := range decs {
			if d.Iter != k+1 {
				t.Fatalf("problem %d: decision %d has iter %d", i, k, d.Iter)
			}
			if len(d.EFT) != np {
				t.Fatalf("problem %d iter %d: EFT width %d, want %d", i, d.Iter, len(d.EFT), np)
			}
			winning := d.EFT[d.Proc]
			for q, eft := range d.EFT {
				if eft < winning {
					t.Fatalf("problem %d iter %d: P%d EFT %g beats committed P%d EFT %g",
						i, d.Iter, q+1, eft, int(d.Proc)+1, winning)
				}
			}
			if d.EST > winning {
				t.Fatalf("problem %d iter %d: EST %g > EFT %g", i, d.Iter, d.EST, winning)
			}
			if d.Slotted {
				t.Fatalf("problem %d iter %d: slotted placement under avail-based policy", i, d.Iter)
			}
			if d.ITQWidth < len(d.ITQ) || len(d.ITQ) == 0 {
				t.Fatalf("problem %d iter %d: ITQ snapshot %d wider than queue %d",
					i, d.Iter, len(d.ITQ), d.ITQWidth)
			}
			found := false
			for k2, it := range d.ITQ {
				if k2 > 0 && d.ITQ[k2-1].Task >= it.Task {
					t.Fatalf("problem %d iter %d: ITQ not sorted by task", i, d.Iter)
				}
				if it.PV > d.PV {
					t.Fatalf("problem %d iter %d: queued task %d PV %g exceeds committed PV %g",
						i, d.Iter, it.Task, it.PV, d.PV)
				}
				if it.Task == d.Task {
					found = true
					if it.PV != d.PV {
						t.Fatalf("problem %d iter %d: committed PV mismatch", i, d.Iter)
					}
				}
			}
			if found == false && d.ITQWidth <= itqCaptureCap {
				t.Fatalf("problem %d iter %d: committed task %d missing from full ITQ snapshot",
					i, d.Iter, d.Task)
			}
			pl, ok := s.PlacementOf(d.Task)
			if !ok || pl.Proc != d.Proc {
				t.Fatalf("problem %d iter %d: schedule places task %d elsewhere", i, d.Iter, d.Task)
			}
		}
	}
}

// TestScheduleExplainedMatchesTrace cross-checks the capture against the
// reference engine's Table-I trace: same selection sequence, same penalty
// values, same processors, same duplication decisions.
func TestScheduleExplainedMatchesTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20; i++ {
		pr, err := randomProblem(rng)
		if err != nil {
			t.Fatal(err)
		}
		h := New()
		_, decs, err := h.ScheduleExplained(pr)
		if err != nil {
			t.Fatal(err)
		}
		_, steps, err := h.ScheduleTrace(pr)
		if err != nil {
			t.Fatal(err)
		}
		if len(decs) != len(steps) {
			t.Fatalf("problem %d: %d decisions vs %d trace steps", i, len(decs), len(steps))
		}
		for k := range steps {
			if decs[k].Task != steps[k].Selected {
				t.Fatalf("problem %d iter %d: selected %d vs trace %d",
					i, k+1, decs[k].Task, steps[k].Selected)
			}
			if decs[k].Proc != steps[k].Proc {
				t.Fatalf("problem %d iter %d: proc %d vs trace %d",
					i, k+1, decs[k].Proc, steps[k].Proc)
			}
			if decs[k].Duplicated != steps[k].Duplicated {
				t.Fatalf("problem %d iter %d: duplication mismatch", i, k+1)
			}
			if decs[k].ITQWidth != len(steps[k].Ready) {
				t.Fatalf("problem %d iter %d: ITQ width %d vs trace %d",
					i, k+1, decs[k].ITQWidth, len(steps[k].Ready))
			}
		}
	}
}

// TestScheduleExplainedDeterministic pins the byte-determinism the CI smoke
// step asserts end-to-end: two explain solves of the same problem must
// marshal to identical JSON.
func TestScheduleExplainedDeterministic(t *testing.T) {
	pr, err := gen.Random(gen.Params{
		V: 400, Alpha: 1.5, Density: 3, CCR: 2, Procs: 6, WDAG: 80, Beta: 1.2,
	}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	h := New()
	_, d1, err := h.ScheduleExplained(pr)
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := h.ScheduleExplained(pr)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(d1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("explain decisions differ across identical solves")
	}
}
