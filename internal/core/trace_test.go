package core

import (
	"math"
	"testing"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/workflows"
)

// tableI is the published HDLTS trace (paper Table I) on the Fig. 1 example:
// ready set, penalty values, selected task, the selected task's EFT row, and
// the chosen processor (the bold entry of each EFT row).
var tableI = []struct {
	ready    []int // 1-based task numbers
	pv       []float64
	selected int
	eft      []float64
	proc     int // 1-based processor
}{
	{[]int{1}, nil, 1, []float64{14, 16, 9}, 3},
	{[]int{2, 3, 4, 5, 6}, []float64{4.6, 2.0, 1.5, 5.1, 7.0}, 6, []float64{27, 32, 18}, 3},
	{[]int{2, 3, 4, 5}, []float64{4.9, 6.1, 5.6, 1.5}, 3, []float64{25, 29, 37}, 1},
	{[]int{2, 4, 5, 7}, []float64{1.5, 7.3, 4.9, 16.8}, 7, []float64{32, 63, 59}, 1},
	{[]int{2, 4, 5}, []float64{5.5, 10.5, 8.9}, 4, []float64{45, 24, 35}, 2},
	{[]int{2, 5}, []float64{4.7, 8.0}, 5, []float64{44, 37, 28}, 3},
	{[]int{2}, []float64{1.5}, 2, []float64{45, 43, 46}, 2},
	{[]int{8, 9}, []float64{11.0, 13.3}, 9, []float64{77, 55, 79}, 2},
	{[]int{8}, []float64{5.5}, 8, []float64{67, 66, 76}, 2},
	{[]int{10}, []float64{13.2}, 10, []float64{98, 73, 93}, 2},
}

// TestTableI replays HDLTS on the Fig. 1 example and checks every published
// trace row: ready sets, penalty values (to the paper's 1-decimal rounding),
// selected tasks, full EFT vectors, chosen processors, and the final
// makespan of 73.
func TestTableI(t *testing.T) {
	pr := workflows.PaperExample()
	s, steps, err := New().ScheduleTrace(pr)
	if err != nil {
		t.Fatalf("ScheduleTrace: %v", err)
	}
	if got := s.Makespan(); got != 73 {
		t.Fatalf("makespan = %g, want 73", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if len(steps) != len(tableI) {
		t.Fatalf("got %d steps, want %d", len(steps), len(tableI))
	}
	for i, want := range tableI {
		got := steps[i]
		if len(got.Ready) != len(want.ready) {
			t.Fatalf("step %d: ready set %v, want %v", i+1, got.Ready, want.ready)
		}
		for j, r := range want.ready {
			if int(got.Ready[j])+1 != r {
				t.Errorf("step %d: ready[%d] = T%d, want T%d", i+1, j, got.Ready[j]+1, r)
			}
		}
		// PV check (skip step 1: the paper prints 7.0 for the lone entry
		// task, which matches no σ definition — with a single candidate the
		// value cannot affect selection; see EXPERIMENTS.md).
		if want.pv != nil {
			for j, pv := range want.pv {
				if r := math.Round(got.PV[j]*10) / 10; math.Abs(r-pv) > 0.1001 {
					t.Errorf("step %d: PV(T%d) = %.2f (rounds to %.1f), want %.1f",
						i+1, got.Ready[j]+1, got.PV[j], r, pv)
				}
			}
		}
		if int(got.Selected)+1 != want.selected {
			t.Errorf("step %d: selected T%d, want T%d", i+1, got.Selected+1, want.selected)
		}
		for p, eft := range want.eft {
			if math.Abs(got.EFT[p]-eft) > 1e-9 {
				t.Errorf("step %d: EFT(T%d, P%d) = %g, want %g", i+1, got.Selected+1, p+1, got.EFT[p], eft)
			}
		}
		if int(got.Proc)+1 != want.proc {
			t.Errorf("step %d: committed to P%d, want P%d", i+1, got.Proc+1, want.proc)
		}
	}
}

// TestPaperExampleDuplicates checks that the entry task is duplicated on
// exactly the two processors the trace requires (P1 for T3, P2 for T4) and
// nowhere else.
func TestPaperExampleDuplicates(t *testing.T) {
	pr := workflows.PaperExample()
	s, err := New().Schedule(pr)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if got := s.NumDuplicates(); got != 2 {
		t.Fatalf("NumDuplicates = %d, want 2", got)
	}
	entry := dag.TaskID(0)
	for _, want := range []struct {
		proc   platform.Proc
		finish float64
	}{{0, 14}, {1, 16}} {
		found := false
		for _, c := range s.Copies(entry) {
			if c.Duplicate && c.Proc == want.proc {
				found = true
				if c.Start != 0 || c.Finish != want.finish {
					t.Errorf("duplicate on P%d runs [%g,%g), want [0,%g)", want.proc+1, c.Start, c.Finish, want.finish)
				}
			}
		}
		if !found {
			t.Errorf("missing entry duplicate on P%d", want.proc+1)
		}
	}
}

// TestNoDuplicationAblation checks that disabling Algorithm 1 degrades (or
// at least never improves) the Fig. 1 makespan, and that the resulting
// schedule is still valid with zero duplicates.
func TestNoDuplicationAblation(t *testing.T) {
	pr := workflows.PaperExample()
	s, err := NewWithOptions(Options{DisableDuplication: true}).Schedule(pr)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if s.NumDuplicates() != 0 {
		t.Fatalf("nodup variant placed %d duplicates", s.NumDuplicates())
	}
	if s.Makespan() < 73 {
		t.Errorf("nodup makespan %g beats published 73; duplication should only ever help", s.Makespan())
	}
}
