package core

import (
	"math/rand"
	"testing"

	"hdlts/internal/workflows"
)

func TestLookaheadValidAndNamed(t *testing.T) {
	la := NewWithOptions(Options{Lookahead: true})
	if la.Name() != "HDLTS-la" {
		t.Fatalf("Name = %q", la.Name())
	}
	pr := workflows.PaperExample()
	s, err := la.Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	t.Logf("HDLTS-la makespan %g (base 73)", s.Makespan())
}

// TestLookaheadHelpsOnAverage: the one-level probe targets the weakness the
// paper itself diagnoses; over random instances it must not hurt the mean
// makespan.
func TestLookaheadHelpsOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := New()
	la := NewWithOptions(Options{Lookahead: true})
	var sumBase, sumLA float64
	for i := 0; i < 60; i++ {
		pr, err := randomProblem(rng)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := base.Schedule(pr)
		if err != nil {
			t.Fatal(err)
		}
		sl, err := la.Schedule(pr)
		if err != nil {
			t.Fatal(err)
		}
		if err := sl.Validate(); err != nil {
			t.Fatalf("lookahead schedule invalid: %v", err)
		}
		sumBase += sb.Makespan()
		sumLA += sl.Makespan()
	}
	t.Logf("mean makespan: base %.4g, lookahead %.4g", sumBase/60, sumLA/60)
	if sumLA > sumBase*1.02 {
		t.Fatalf("lookahead hurt the mean makespan by more than 2%%: %.4g vs %.4g", sumLA/60, sumBase/60)
	}
}

// TestLookaheadLeafEqualsBase: on a workflow whose every placement decision
// has no children (single task), lookahead and base must agree exactly.
func TestLookaheadLeafEqualsBase(t *testing.T) {
	pr := workflows.PaperExample()
	// The exit task has no children; spot-check via full schedules being
	// deterministic and valid rather than poking internals: a single-task
	// problem is the clean degenerate case.
	base, err := New().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	_ = base
	la := NewWithOptions(Options{Lookahead: true})
	s1, err := la.Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := la.Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan() != s2.Makespan() {
		t.Fatal("lookahead nondeterministic")
	}
}
