package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdlts/internal/dag"
	"hdlts/internal/gen"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

func randomProblem(rng *rand.Rand) (*sched.Problem, error) {
	return gen.Random(gen.Params{
		V:          1 + rng.Intn(100),
		Alpha:      []float64{0.5, 1.0, 1.5, 2.0, 2.5}[rng.Intn(5)],
		Density:    1 + rng.Intn(5),
		CCR:        float64(1 + rng.Intn(5)),
		Procs:      2 + 2*rng.Intn(5),
		WDAG:       50 + float64(10*rng.Intn(6)),
		Beta:       []float64{0.4, 0.8, 1.2, 1.6, 2.0}[rng.Intn(5)],
		MultiEntry: rng.Intn(2) == 0,
	}, rng)
}

// TestQuickHDLTSValid: HDLTS and all its ablation variants always produce
// complete, feasible schedules at or above the critical-path lower bound.
func TestQuickHDLTSValid(t *testing.T) {
	variants := []*HDLTS{
		New(),
		NewWithOptions(Options{DisableDuplication: true}),
		NewWithOptions(Options{Insertion: true}),
		NewWithOptions(Options{PopulationSigma: true}),
		NewWithOptions(Options{DisableDuplication: true, Insertion: true, PopulationSigma: true}),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr, err := randomProblem(rng)
		if err != nil {
			t.Logf("generator: %v", err)
			return false
		}
		lb, err := pr.CPMinLowerBound()
		if err != nil {
			t.Logf("bound: %v", err)
			return false
		}
		for _, h := range variants {
			s, err := h.Schedule(pr)
			if err != nil {
				t.Logf("%s: %v", h.Name(), err)
				return false
			}
			if err := s.Validate(); err != nil {
				t.Logf("%s: %v", h.Name(), err)
				return false
			}
			if s.Makespan() < lb-1e-6 {
				t.Logf("%s: makespan %g < bound %g", h.Name(), s.Makespan(), lb)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTraceConsistency: the trace replays to the same schedule, every
// step selects the maximum-PV ready task, and the committed processor always
// has the minimum EFT in the step's vector.
func TestQuickTraceConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr, err := randomProblem(rng)
		if err != nil {
			return false
		}
		s1, steps, err := New().ScheduleTrace(pr)
		if err != nil {
			return false
		}
		s2, err := New().Schedule(pr)
		if err != nil || s1.Makespan() != s2.Makespan() {
			return false
		}
		placed := 0
		for _, st := range steps {
			placed++
			// Selected task carries the maximal PV of its step.
			selPV := -1.0
			maxPV := -1.0
			for i, id := range st.Ready {
				if st.PV[i] > maxPV {
					maxPV = st.PV[i]
				}
				if id == st.Selected {
					selPV = st.PV[i]
				}
			}
			if selPV < maxPV-1e-9 {
				return false
			}
			// Committed processor minimises the EFT vector.
			for _, e := range st.EFT {
				if e < st.EFT[st.Proc]-1e-9 {
					return false
				}
			}
		}
		// One step per task of the (possibly normalised) problem.
		return placed == s1.Problem().NumTasks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicationHelpsOnAverage: each duplication decision is locally
// beneficial (Algorithm 1 only fires when it strictly reduces a start time),
// but it also perturbs later PV orderings, so individual instances can end
// up worse — a documented property of the greedy heuristic. Statistically,
// though, enabling duplication must not hurt: the mean makespan over many
// random instances may not exceed the no-duplication mean.
func TestDuplicationHelpsOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	var sumDup, sumNoDup float64
	improved, worsened := 0, 0
	for i := 0; i < 120; i++ {
		pr, err := randomProblem(rng)
		if err != nil {
			t.Fatal(err)
		}
		dup, err := New().Schedule(pr)
		if err != nil {
			t.Fatal(err)
		}
		nodup, err := NewWithOptions(Options{DisableDuplication: true}).Schedule(pr)
		if err != nil {
			t.Fatal(err)
		}
		sumDup += dup.Makespan()
		sumNoDup += nodup.Makespan()
		switch {
		case dup.Makespan() < nodup.Makespan()-1e-9:
			improved++
		case dup.Makespan() > nodup.Makespan()+1e-9:
			worsened++
		}
	}
	if sumDup > sumNoDup {
		t.Fatalf("duplication hurt on average: mean %g vs %g", sumDup/120, sumNoDup/120)
	}
	if improved <= worsened {
		t.Fatalf("duplication improved %d but worsened %d instances", improved, worsened)
	}
}

func TestHDLTSNames(t *testing.T) {
	cases := map[string]Options{
		"HDLTS":                {},
		"HDLTS-nodup":          {DisableDuplication: true},
		"HDLTS-ins":            {Insertion: true},
		"HDLTS-popσ":           {PopulationSigma: true},
		"HDLTS-nodup-ins-popσ": {DisableDuplication: true, Insertion: true, PopulationSigma: true},
	}
	for want, opts := range cases {
		if got := NewWithOptions(opts).Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestHDLTSSingleTask(t *testing.T) {
	g := dag.New(1)
	g.AddTask("only")
	w := platform.MustCostsFromRows([][]float64{{5, 3, 9}})
	pr := sched.MustProblem(g, platform.MustUniform(3), w)
	s, err := New().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 3 {
		t.Fatalf("makespan = %g, want 3 (fastest processor)", s.Makespan())
	}
	pl, _ := s.PlacementOf(0)
	if pl.Proc != 1 {
		t.Fatalf("placed on P%d, want P2", pl.Proc+1)
	}
}

func TestHDLTSMultiEntryUsesPseudo(t *testing.T) {
	// Two independent chains: normalisation adds pseudo entry+exit; HDLTS
	// must schedule all original tasks and never duplicate the pseudo entry
	// (duplicating a zero-cost task can never strictly help).
	g := dag.New(4)
	a := g.AddTask("a")
	b := g.AddTask("b")
	c := g.AddTask("c")
	d := g.AddTask("d")
	g.MustAddEdge(a, b, 50)
	g.MustAddEdge(c, d, 50)
	w := platform.MustCostsFromRows([][]float64{{4, 6}, {3, 3}, {5, 2}, {4, 4}})
	pr := sched.MustProblem(g, platform.MustUniform(2), w)

	s, err := New().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Problem().NumTasks() != 6 {
		t.Fatalf("normalised problem has %d tasks, want 6", s.Problem().NumTasks())
	}
	if s.NumDuplicates() != 0 {
		t.Fatalf("pseudo entry duplicated %d times", s.NumDuplicates())
	}
}

func TestHDLTSDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pr, err := randomProblem(rng)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Makespan() != s2.Makespan() {
		t.Fatalf("non-deterministic: %g vs %g", s1.Makespan(), s2.Makespan())
	}
	for i := 0; i < pr.NumTasks(); i++ {
		p1, _ := s1.PlacementOf(dag.TaskID(i))
		p2, _ := s2.PlacementOf(dag.TaskID(i))
		if p1 != p2 {
			t.Fatalf("task %d placed differently: %+v vs %+v", i, p1, p2)
		}
	}
}

// TestHDLTSConcurrentUse runs the same scheduler value from many goroutines
// (the experiment harness does this); the race detector guards this test.
func TestHDLTSConcurrentUse(t *testing.T) {
	h := New()
	pr, err := randomProblem(rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan float64, 8)
	for i := 0; i < 8; i++ {
		go func() {
			s, err := h.Schedule(pr)
			if err != nil {
				done <- -1
				return
			}
			done <- s.Makespan()
		}()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if got := <-done; got != first {
			t.Fatalf("concurrent schedules disagree: %g vs %g", got, first)
		}
	}
}
