package core

import (
	"testing"

	"hdlts/internal/obs"
	"hdlts/internal/workflows"
)

// TestTracerEventStream checks that an HDLTS run against a traced problem
// emits the generalised Table-I stream: per-iteration PV and selection
// events plus one commit per placement, and that the event trace agrees
// with the structured Step trace.
func TestTracerEventStream(t *testing.T) {
	col := obs.NewCollector()
	pr := workflows.PaperExample().WithTracer(obs.Named(col, "HDLTS"))

	s, steps, err := New().ScheduleTrace(pr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 73 {
		t.Fatalf("makespan = %g, want 73", s.Makespan())
	}

	var iters, pvs, commits, dupCommits int
	maxFinish := 0.0
	for _, ev := range col.Events() {
		if ev.Alg != "HDLTS" {
			t.Fatalf("event not stamped with algorithm: %+v", ev)
		}
		switch ev.Type {
		case obs.EvIteration:
			iters++
			st := steps[ev.Iter-1]
			if int(st.Selected) != ev.Task || int(st.Proc) != ev.Proc {
				t.Errorf("iteration %d event (T%d, P%d) disagrees with Step (T%d, P%d)",
					ev.Iter, ev.Task+1, ev.Proc+1, st.Selected+1, st.Proc+1)
			}
		case obs.EvPV:
			pvs++
		case obs.EvCommit:
			commits++
			if ev.Dup {
				dupCommits++
			}
			if ev.Finish > maxFinish {
				maxFinish = ev.Finish
			}
		}
	}
	if iters != len(steps) {
		t.Errorf("iteration events = %d, want %d", iters, len(steps))
	}
	// One PV event per ready task per iteration.
	wantPVs := 0
	for _, st := range steps {
		wantPVs += len(st.Ready)
	}
	if pvs != wantPVs {
		t.Errorf("pv events = %d, want %d", pvs, wantPVs)
	}
	if want := pr.NumTasks() + s.NumDuplicates(); commits != want {
		t.Errorf("commit events = %d, want %d", commits, want)
	}
	if dupCommits != s.NumDuplicates() {
		t.Errorf("duplicate commits = %d, want %d", dupCommits, s.NumDuplicates())
	}
	if maxFinish != 73 {
		t.Errorf("max committed finish = %g, want the makespan 73", maxFinish)
	}
}

// TestUntracedRunEmitsNothing guards the zero-cost default: scheduling a
// problem without a tracer must not fail or require one.
func TestUntracedRunEmitsNothing(t *testing.T) {
	pr := workflows.PaperExample()
	if pr.Tracer().Enabled() {
		t.Fatal("fresh problem has an enabled tracer")
	}
	if _, err := New().Schedule(pr); err != nil {
		t.Fatal(err)
	}
}
