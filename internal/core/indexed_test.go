package core

import (
	"bytes"
	"math/rand"
	"testing"

	"hdlts/internal/gen"
	"hdlts/internal/sched"
)

// canonicalBytes serialises a completed schedule through the deterministic
// JSON codec: placements sorted by (proc, start, task), makespan included.
// Two schedules are equivalent for the property tests below iff these bytes
// are identical — the strongest comparison the codec supports, covering
// every placement (duplicates included) and every float bit-for-bit via the
// shortest-round-trip encoding.
func canonicalBytes(t *testing.T, s *sched.Schedule) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteScheduleJSON(&buf, "HDLTS"); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIndexedMatchesReferenceBytes is the seed-vs-indexed equivalence
// property: across ≥200 random DAG/platform pairs and every option
// combination, the indexed core (the untraced default engine) must produce
// a canonical schedule byte-identical to the reference engine running in
// full-recompute oracle mode — the literal Algorithm 1 loop. Byte identity
// means identical placements, identical duplicate decisions, and a
// bit-identical makespan; any floating-point reassociation in the indexed
// core's incremental EFT maintenance or batched σ would show up here.
func TestIndexedMatchesReferenceBytes(t *testing.T) {
	optionSets := []Options{
		{},
		{DisableDuplication: true},
		{Insertion: true},
		{PopulationSigma: true},
		{Lookahead: true},
	}
	const pairs = 200
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < pairs; i++ {
		pr, err := randomProblem(rng)
		if err != nil {
			t.Fatalf("pair %d: generator: %v", i, err)
		}
		for _, o := range optionSets {
			indexed := NewWithOptions(o)
			oracle := &HDLTS{opts: o, fullRecompute: true}
			si, err := indexed.Schedule(pr)
			if err != nil {
				t.Fatalf("pair %d opts %+v: indexed: %v", i, o, err)
			}
			sr, _, err := oracle.run(pr, false, nil)
			if err != nil {
				t.Fatalf("pair %d opts %+v: reference: %v", i, o, err)
			}
			bi, br := canonicalBytes(t, si), canonicalBytes(t, sr)
			if !bytes.Equal(bi, br) {
				t.Fatalf("pair %d opts %+v: indexed and reference schedules differ\nindexed:\n%s\nreference:\n%s",
					i, o, bi, br)
			}
			// Rationale capture must be a pure observer: the explain solve's
			// schedule stays byte-identical to the uncaptured one.
			se, decs, err := indexed.ScheduleExplained(pr)
			if err != nil {
				t.Fatalf("pair %d opts %+v: explained: %v", i, o, err)
			}
			if be := canonicalBytes(t, se); !bytes.Equal(bi, be) {
				t.Fatalf("pair %d opts %+v: capture changed the schedule", i, o)
			}
			if len(decs) == 0 {
				t.Fatalf("pair %d opts %+v: no decisions captured", i, o)
			}
		}
	}
}

// TestIndexedParallelMatchesSerial: the parallel PV/EFT recompute must be
// bit-identical to the serial pass under any worker count — the per-chunk
// argmax merge preserves the (PV desc, taskID asc) total order regardless
// of chunking. parMinRows is lowered so the small test problems actually
// engage the workers; run under -race this also exercises the worker
// hand-off for data races (CI runs the test suite with -race).
func TestIndexedParallelMatchesSerial(t *testing.T) {
	oldMin := parMinRows
	parMinRows = 16
	defer func() { parMinRows = oldMin }()

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		pr, err := gen.Random(gen.Params{
			V: 300 + rng.Intn(700), Alpha: 2.0, Density: 4, CCR: 2,
			Procs: 4 + 2*rng.Intn(3), WDAG: 80, Beta: 1.2,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		serial := NewWithOptions(Options{MaxWorkers: 1})
		parallel := NewWithOptions(Options{MaxWorkers: 4})
		ss, err := serial.Schedule(pr)
		if err != nil {
			t.Fatal(err)
		}
		sp, err := parallel.Schedule(pr)
		if err != nil {
			t.Fatal(err)
		}
		bs, bp := canonicalBytes(t, ss), canonicalBytes(t, sp)
		if !bytes.Equal(bs, bp) {
			t.Fatalf("problem %d: parallel recompute diverged from serial", i)
		}
	}
}

// TestScheduleIntoZeroAllocs pins the steady-state allocation contract: a
// solve stream that reuses the previous schedule's storage via ScheduleInto
// must not allocate at all — the arena comes from the pool, the schedule is
// reset in place, and every hot-path structure is preallocated. This is the
// same invariant the solver/hdlts/v10k_steady bench reports as allocs/op=0
// and the hdltsvet hotpathalloc rule guards statically.
func TestScheduleIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; allocs/op is meaningless under -race")
	}
	pr, err := gen.Random(gen.Params{
		V: 2000, Alpha: 1.5, Density: 3, CCR: 2, Procs: 8, WDAG: 80, Beta: 1.2,
	}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	h := NewWithOptions(Options{MaxWorkers: 1})
	s, err := h.Schedule(pr) // warm-up: binds the pool arena and the schedule
	if err != nil {
		t.Fatal(err)
	}
	want := s.Makespan()
	allocs := testing.AllocsPerRun(5, func() {
		s, err = h.ScheduleInto(pr, s)
		if err != nil {
			t.Fatal(err)
		}
	})
	if s.Makespan() != want {
		t.Fatalf("steady-state makespan drifted: %g != %g", s.Makespan(), want)
	}
	if allocs != 0 {
		t.Fatalf("ScheduleInto allocated %.1f times per solve, want 0", allocs)
	}
}
