package core

import (
	"fmt"
	"slices"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
	"hdlts/internal/stats"
)

// runReference is the direct transcription of the paper's loop: a sorted
// ITQ slice scanned per iteration, per-task estimate-vector caches in maps,
// full EFT recomputation on demand. It remains the source of truth for two
// things the indexed core does not carry: the Table-I trace (Step capture)
// and the decision-event stream — EvPV/EvIteration/EvEstimate ordering is
// documented behaviour of the tracer, so traced solves take this path. It
// is also the differential oracle: the indexed core is property-tested to
// produce byte-identical canonical schedules (see indexed_test.go), and the
// fullRecompute knob degrades this engine further into the literal
// O(|ITQ|·p) loop of the paper for the incremental-maintenance test.
//
//hdlts:hotpath
func (h *HDLTS) runReference(pr *sched.Problem, trace bool, prev *sched.Schedule) (*sched.Schedule, []Step, error) {
	prof := obs.SolverProfileFor(h.Name())
	defer prof.Start(obs.PhaseSchedule).Stop()
	g := pr.G
	s := prev
	if s != nil {
		s.Reset(pr)
	} else {
		s = sched.NewSchedule(pr)
	}
	pol := h.policy()
	tr := pr.Tracer()

	n := g.NumTasks()
	// remaining[t] counts unscheduled parents; tasks enter the ITQ at zero.
	remaining := make([]int, n)
	itq := make([]dag.TaskID, 0, n)
	for t := 0; t < n; t++ {
		remaining[t] = g.InDegree(dag.TaskID(t))
		if remaining[t] == 0 {
			itq = append(itq, dag.TaskID(t))
		}
	}

	sigma := stats.SampleStdDev
	if h.opts.PopulationSigma {
		sigma = stats.PopStdDev
	}

	var steps []Step
	estBuf := make([]sched.Estimate, pr.NumProcs())
	eftBuf := make([]float64, pr.NumProcs())
	// Per-iteration scratch, reallocated only on ITQ growth.
	pvs := make([]float64, 0, len(itq))
	ests := make(map[dag.TaskID][]sched.Estimate, 8)
	// fresh[t] marks ITQ members whose estimate vector must be rebuilt from
	// scratch. Between iterations only the just-committed processor's
	// column can change for already-queued tasks (their ready times are
	// fixed once all parents are placed), so the incremental path
	// re-estimates a single (task, proc) pair per member. Materialising an
	// entry duplicate adds a new copy of a parent visible from *every*
	// processor, so that case falls back to full recomputation.
	fresh := make(map[dag.TaskID]bool, len(itq))
	for _, t := range itq {
		fresh[t] = true
	}
	var lastProc platform.Proc = -1
	refreshAll := false
	iter := 0
	// The ITQ is built in ascending task order above; removals preserve
	// order, so it only unsorts when phase 4 appends a task that breaks the
	// ascending run. Re-sorting unconditionally was measurably hot at 10k+
	// tasks.
	itqSorted := true

	scanAcc := prof.Accum(obs.PhaseScan)
	eftAcc := prof.Accum(obs.PhaseEFT)
	insAcc := prof.Accum(obs.PhaseInsertion)
	defer scanAcc.Flush()
	defer eftAcc.Flush()
	defer insAcc.Flush()

	for len(itq) > 0 {
		iter++
		iterationCount.Inc()
		if !itqSorted {
			slices.Sort(itq)
			itqSorted = true
		}
		pvs = pvs[:0]

		// Phase 1+2: EFT vectors and penalty values for every ready task.
		scanTick := scanAcc.Tick()
		bestIdx := 0
		for i, t := range itq {
			esCopy, ok := ests[t]
			switch {
			case !ok || fresh[t] || refreshAll || h.fullRecompute:
				eftTick := eftAcc.Tick()
				es, err := s.EstimateAll(t, pol, estBuf)
				eftTick.End()
				if err != nil {
					return nil, nil, fmt.Errorf("core: estimating task %d: %w", t, err)
				}
				if !ok || cap(esCopy) < len(es) {
					//lint:hdltsvet-ignore hotpathalloc per-task estimate vector cache, amortised to one allocation per task
					esCopy = make([]sched.Estimate, len(es))
				}
				esCopy = esCopy[:len(es)]
				copy(esCopy, es)
				ests[t] = esCopy
				delete(fresh, t)
			case lastProc >= 0:
				e, err := s.Estimate(t, lastProc, pol)
				if err != nil {
					return nil, nil, fmt.Errorf("core: estimating task %d: %w", t, err)
				}
				esCopy[lastProc] = e
			}

			for p := range esCopy {
				eftBuf[p] = esCopy[p].EFT
			}
			pv := sigma(eftBuf[:len(esCopy)])
			pvs = append(pvs, pv)
			// Highest PV wins; ties fall to the smaller task ID, which is
			// the earlier ITQ position because the queue is sorted.
			if pv > pvs[bestIdx] {
				bestIdx = i
			}
		}
		scanTick.End()
		refreshAll = false

		selected := itq[bestIdx]
		// Phase 3: commit to the minimum-EFT processor (with the optional
		// one-level lookahead score instead of the bare EFT).
		es := ests[selected]
		best := es[0]
		if h.opts.Lookahead {
			bestScore := h.lookaheadScore(s, es[0])
			for _, e := range es[1:] {
				if sc := h.lookaheadScore(s, e); sc < bestScore {
					best, bestScore = e, sc
				}
			}
		} else {
			for _, e := range es[1:] {
				if e.EFT < best.EFT {
					best = e
				}
			}
		}
		if tr.Enabled() {
			// The generalised form of the Table-I trace: one PV event per
			// ready task, then the iteration's selection. Commit events
			// follow from the sched substrate.
			for i, t := range itq {
				tr.Emit(obs.Event{Type: obs.EvPV, Task: int(t), Proc: -1, Iter: iter, Value: pvs[i]})
			}
			tr.Emit(obs.Event{
				Type: obs.EvIteration, Task: int(selected), Proc: int(best.Proc),
				Iter: iter, Value: pvs[bestIdx], Dup: best.UseDuplicate,
			})
		}
		if trace {
			steps = captureStep(steps, itq, pvs, selected, best, es)
		}
		insTick := insAcc.Tick()
		err := s.Commit(best)
		insTick.End()
		if err != nil {
			return nil, nil, fmt.Errorf("core: committing task %d on P%d: %w", selected, best.Proc+1, err)
		}
		lastProc = best.Proc
		if best.UseDuplicate {
			// The new entry copy is reachable from every processor: stale
			// ready times are possible everywhere, so rebuild fully.
			refreshAll = true
		}

		// Phase 4: update the ITQ.
		itq = append(itq[:bestIdx], itq[bestIdx+1:]...)
		delete(ests, selected)
		for _, a := range g.Succs(selected) {
			remaining[a.Task]--
			if remaining[a.Task] == 0 {
				if len(itq) > 0 && a.Task < itq[len(itq)-1] {
					itqSorted = false
				}
				itq = append(itq, a.Task)
				fresh[a.Task] = true
			}
		}
	}

	if !s.Complete() {
		return nil, nil, fmt.Errorf("core: scheduler stalled with %d/%d tasks placed", s.NumPlaced(), n)
	}
	return s, steps, nil
}

// captureStep appends one Table-I trace step. It lives outside the hot
// path: trace capture copies the ready set, PVs, and EFT vector per
// iteration by design, and only ScheduleTrace callers pay for it.
func captureStep(steps []Step, itq []dag.TaskID, pvs []float64, selected dag.TaskID, best sched.Estimate, es []sched.Estimate) []Step {
	st := Step{
		Ready:      append([]dag.TaskID(nil), itq...),
		PV:         append([]float64(nil), pvs...),
		Selected:   selected,
		Proc:       best.Proc,
		Duplicated: best.UseDuplicate,
	}
	st.EFT = make([]float64, len(es))
	for p := range es {
		st.EFT[p] = es[p].EFT
	}
	return append(steps, st)
}
