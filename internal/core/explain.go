package core

import (
	"sort"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// This file is the explainability hook of the indexed core: an opt-in
// capture that records, for every ITQ iteration, what the solver saw at the
// moment it committed — the full EFT candidate vector, the winning
// estimate, the queue membership and penalty values, and whether the
// placement landed in an idle gap or materialised an entry duplicate. The
// capture is pulled by ScheduleExplained only; production solves pass a nil
// capture and pay a single pointer test per iteration (the record method is
// a plain non-hotpath call, so the zero-alloc steady state of runIndexed is
// untouched — pinned by TestExplainCaptureOffZeroAlloc).

// itqCaptureCap bounds the per-decision ITQ snapshot. Wider frontiers keep
// their top entries by (PV descending, task ascending) — the solver's own
// selection order — and ITQWidth still reports the true size.
const itqCaptureCap = 32

// ITQItem is one queued task in a decision's ITQ snapshot.
type ITQItem struct {
	// Task is the queued task (normalised problem IDs).
	Task dag.TaskID `json:"task"`
	// PV is the task's penalty value at the moment of the decision.
	PV float64 `json:"pv"`
}

// Decision is the full rationale of one ITQ iteration: why this task, why
// this processor. Task IDs refer to the normalised problem (pseudo
// entry/exit tasks included on multi-entry/exit workflows).
type Decision struct {
	// Iter is the 1-based ITQ iteration ordinal.
	Iter int `json:"iter"`
	// Task is the committed task.
	Task dag.TaskID `json:"task"`
	// PV is the committed task's penalty value — the maximum over the ITQ,
	// ties broken to the smaller task ID.
	PV float64 `json:"pv"`
	// ITQWidth is the queue size at the decision (before removal).
	ITQWidth int `json:"itq_width"`
	// ITQ snapshots the queue membership, ascending by task ID, truncated
	// to itqCaptureCap by selection priority when wider.
	ITQ []ITQItem `json:"itq,omitempty"`
	// EFT is the candidate earliest-finish-time vector by processor — what
	// the solver compared to pick Proc.
	EFT []float64 `json:"eft"`
	// EST and the winning EFT (EFT[Proc]) delimit the committed slot.
	EST float64 `json:"est"`
	// Proc is the chosen processor (minimum EFT, or best lookahead score).
	Proc platform.Proc `json:"proc"`
	// Slotted reports insertion-based placement into an idle gap: the slot
	// starts before the processor's append point did at commit time. Always
	// false under the paper's avail-based placement.
	Slotted bool `json:"slotted"`
	// Duplicated reports that the commit materialised an entry duplicate on
	// Proc; DupTask is the duplicated entry task when it did.
	Duplicated bool       `json:"duplicated"`
	DupTask    dag.TaskID `json:"dup_task,omitempty"`
}

// capture accumulates decisions during one runIndexed solve.
type capture struct {
	decisions []Decision
}

// record snapshots the rationale of one commit. Called with the arena's
// row state still current for the selected task and before the commit
// mutates processor availability. Not a hot-path function: it only runs on
// explain solves and may allocate freely.
func (c *capture) record(a *arena, t dag.TaskID, row int32, best sched.Estimate, iter uint32) {
	np := a.np
	base := int(row) * np
	d := Decision{
		Iter:     int(iter),
		Task:     t,
		PV:       a.pv[row],
		ITQWidth: len(a.live),
		EFT:      append([]float64(nil), a.eftM[base:base+np]...),
		EST:      best.EST,
		Proc:     best.Proc,
		Slotted:  best.EST < a.s.Avail(best.Proc),
	}
	if best.UseDuplicate {
		d.Duplicated = true
		d.DupTask = best.DupTask
	}
	itq := make([]ITQItem, 0, len(a.live))
	for _, r := range a.live {
		itq = append(itq, ITQItem{Task: dag.TaskID(a.taskOf[r]), PV: a.pv[r]})
	}
	if len(itq) > itqCaptureCap {
		sort.Slice(itq, func(i, k int) bool {
			if itq[i].PV != itq[k].PV {
				return itq[i].PV > itq[k].PV
			}
			return itq[i].Task < itq[k].Task
		})
		itq = itq[:itqCaptureCap]
	}
	sort.Slice(itq, func(i, k int) bool { return itq[i].Task < itq[k].Task })
	d.ITQ = itq
	c.decisions = append(c.decisions, d)
}

// ScheduleExplained is Schedule plus the per-iteration decision log the
// explain surfaces are built from. It always runs the indexed core with
// capture attached — explain solves bypass the tracer dispatch (decision
// events do not land in the trace ring) and the fullRecompute oracle knob.
// The schedule is bit-identical to Schedule's (differentially tested in
// TestIndexedMatchesReferenceBytes).
func (h *HDLTS) ScheduleExplained(pr *sched.Problem) (*sched.Schedule, []Decision, error) {
	pr = pr.Normalize()
	capt := &capture{}
	s, err := h.runIndexed(pr, nil, capt)
	if err != nil {
		return nil, nil, err
	}
	return s, capt.decisions, nil
}
