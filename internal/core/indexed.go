package core

import (
	"fmt"
	"runtime"
	"sync"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
	"hdlts/internal/stats"
)

// timeSampleStride is the phase-timing sampling stride: one iteration in
// this many is clocked and the flushed totals scale by the same factor.
// Must be a power of two (the sample test is a mask).
const timeSampleStride = 8

// The indexed core is the production engine behind HDLTS.Schedule: the same
// loop as reference.go, restated over flat index-keyed state so that the
// steady state of a solve allocates nothing and each iteration costs
// O(|ITQ|) with O(1) work per queued task.
//
// Layout (struct-of-slice throughout; see docs/SOLVER.md for the rationale
// and the Algorithm 1 line mapping):
//
//   - remaining, the only task-indexed array (length n), counts unplaced
//     parents; everything else scales with the peak ITQ width.
//   - one recycled "row" per queued task holds its cached per-processor
//     parent arrivals (entryArr/otherArr, the FillArrivals split), its EFT
//     vector (eftM), and its PV. Rows return to a free list on commit, so
//     a 1M-task solve with a 10k-wide frontier keeps ~10k rows.
//   - there is no priority structure: on typical DAGs the committed
//     processor's availability moves almost every queued task's EFT every
//     iteration, which degenerates a heap to |ITQ| sift operations per
//     iteration. The update pass already touches every live row, so the
//     selection argmax rides along with it for free — per-chunk maxima
//     merged over the (PV descending, task ID ascending) total order,
//     which keeps extraction deterministic under any chunking.
//
// The arena is pooled (arenaPool) and every slice is truncated, never
// freed, between solves: after the first solve of a given shape the only
// allocations left in HDLTS.Schedule are the returned Schedule's own
// tables, and ScheduleInto removes those too.
type arena struct {
	// Bound per solve.
	s        *sched.Schedule
	pr       *sched.Problem
	pol      sched.Policy
	popSigma bool
	np       int

	// Parameters of the in-flight column update, read by worker
	// goroutines; set before dispatch, constant during a pass.
	col      platform.Proc
	availCol float64
	iterMark uint32

	wg sync.WaitGroup

	// Per-chunk argmax and re-estimate counts of the current update pass,
	// indexed by chunk. Fixed-size: the worker cap (8) bounds the fan-out.
	bestPV   [16]float64
	bestRow  [16]int32
	updCount [16]int64
	// Per-chunk scratch listing the rows whose EFT moved during the pass,
	// so their σ recomputations can run pairwise-interleaved afterwards
	// (see stats.SampleStdDev2). Chunk-local, like the argmax slots.
	dirty [16][]int32

	// remaining[t] counts unscheduled parents; tasks enter the queue at 0.
	remaining []int32

	// Row-indexed; rows recycle through freeRows, so these grow to the peak
	// ITQ width. The flat matrices hold np entries per row.
	taskOf     []int32
	liveIdx    []int32 // position in live
	filledIter []uint32
	entryTask  []int32 // duplication-candidate parent, -1 when none
	pv         []float64
	live       []int32 // active rows, enqueue order
	freeRows   []int32
	eftM       []float64
	entryArr   []float64
	otherArr   []float64
	wRow       []float64 // the row task's execution costs, copied at enqueue
}

// arenaPool recycles solver arenas across solves (and across HDLTS
// instances — the arena carries no per-instance state).
var arenaPool = sync.Pool{New: func() any { return new(arena) }}

// bind prepares a pooled arena for one solve: the parent counter sized to
// n, row storage truncated but kept.
func (a *arena) bind(s *sched.Schedule, pr *sched.Problem, pol sched.Policy, popSigma bool, n, np int) {
	a.s, a.pr, a.pol, a.popSigma, a.np = s, pr, pol, popSigma, np
	if cap(a.remaining) < n {
		a.remaining = make([]int32, n)
	}
	a.remaining = a.remaining[:n]
	a.live = a.live[:0]
	a.freeRows = a.freeRows[:0]
	a.taskOf = a.taskOf[:0]
	a.liveIdx = a.liveIdx[:0]
	a.filledIter = a.filledIter[:0]
	a.entryTask = a.entryTask[:0]
	a.pv = a.pv[:0]
	a.eftM = a.eftM[:0]
	a.entryArr = a.entryArr[:0]
	a.otherArr = a.otherArr[:0]
	a.wRow = a.wRow[:0]
}

// recycle drops the per-solve bindings (so pooled arenas do not pin
// problems or schedules) and returns the arena to the pool.
func (a *arena) recycle() {
	a.s, a.pr = nil, nil
	arenaPool.Put(a)
}

// sigmaOf computes the configured PV σ over one EFT row. A branch over two
// direct calls, not a func field: the indirect call would block inlining on
// ~|E| invocations per solve.
//
//hdlts:hotpath
func (a *arena) sigmaOf(xs []float64) float64 {
	if a.popSigma {
		return stats.PopStdDev(xs)
	}
	return stats.SampleStdDev(xs)
}

// allocRow hands out a recycled row or grows the row storage by one. This
// is the designated amortised-growth point of the arena: the appends here
// run only while the ITQ widens past every previous solve's peak.
func (a *arena) allocRow() int32 {
	if k := len(a.freeRows); k > 0 {
		r := a.freeRows[k-1]
		a.freeRows = a.freeRows[:k-1]
		return r
	}
	r := int32(len(a.taskOf))
	a.taskOf = append(a.taskOf, 0)
	a.liveIdx = append(a.liveIdx, 0)
	a.filledIter = append(a.filledIter, 0)
	a.entryTask = append(a.entryTask, 0)
	a.pv = append(a.pv, 0)
	for i := 0; i < a.np; i++ {
		a.eftM = append(a.eftM, 0)
		a.entryArr = append(a.entryArr, 0)
		a.otherArr = append(a.otherArr, 0)
		a.wRow = append(a.wRow, 0)
	}
	return r
}

// enqueue admits a newly independent task: fills its arrival caches and
// computes its full EFT vector and PV against the current schedule. iter
// stamps the row so the next iteration's update pass knows it is already
// current.
//
//hdlts:hotpath
func (a *arena) enqueue(t dag.TaskID, iter uint32) error {
	row := a.allocRow()
	np := a.np
	base := int(row) * np
	et, err := a.s.FillArrivals(t, a.pol, a.entryArr[base:base+np], a.otherArr[base:base+np])
	if err != nil {
		a.freeRows = append(a.freeRows, row)
		return err
	}
	a.taskOf[row] = int32(t)
	a.entryTask[row] = int32(et)
	a.filledIter[row] = iter
	// An explicit element loop, not copy(): at np elements the memmove call
	// overhead exceeds the move itself.
	wr := a.wRow[base : base+np]
	for q, w := range a.pr.W.RowView(int(t)) {
		wr[q] = w
	}
	if et == dag.None && !a.pol.Insertion {
		// Fast path mirroring updateRange: no duplication candidate and
		// avail-based placement reduce the EFT to max(ready, Avail) + w.
		for q := 0; q < np; q++ {
			est := a.otherArr[base+q]
			if av := a.s.Avail(platform.Proc(q)); av > est {
				est = av
			}
			a.eftM[base+q] = est + wr[q]
		}
	} else {
		for q := 0; q < np; q++ {
			e := a.s.EstimateArrived(t, platform.Proc(q), a.pol, et, a.entryArr[base+q], a.otherArr[base+q])
			a.eftM[base+q] = e.EFT
		}
	}
	a.pv[row] = a.sigmaOf(a.eftM[base : base+np])
	a.liveIdx[row] = int32(len(a.live))
	a.live = append(a.live, row)
	return nil
}

// freeRow retires the committed task's row: swap-remove from live, return
// the row to the free list.
func (a *arena) freeRow(row int32) {
	li := a.liveIdx[row]
	lastRow := a.live[len(a.live)-1]
	a.live[li] = lastRow
	a.liveIdx[lastRow] = li
	a.live = a.live[:len(a.live)-1]
	a.freeRows = append(a.freeRows, row)
}

// selectScan returns the live row with the maximal (PV, smaller task ID) —
// the standalone selection used on the first iteration, before any update
// pass runs to carry the argmax.
//
//hdlts:hotpath
func (a *arena) selectScan() int32 {
	bPV := -1.0
	bRow, bTask := int32(-1), int32(0)
	for _, row := range a.live {
		pv := a.pv[row]
		if pv > bPV || (pv == bPV && a.taskOf[row] < bTask) {
			bPV, bRow, bTask = pv, row, a.taskOf[row]
		}
	}
	return bRow
}

// parMinRows gates the parallel recompute: below this queue width the
// dispatch handshake costs more than the row updates it spreads. A var,
// not a const, so the race/equivalence tests can force the parallel path
// on small problems.
var parMinRows = 2048

// parJob is one chunk of a column-update pass.
type parJob struct {
	a      *arena
	lo, hi int
	chunk  int
}

var (
	workersOnce sync.Once
	workerJobs  chan parJob
	numWorkers  int
)

// startWorkers launches the process-persistent recompute pool. Spawning
// goroutines per solve would put per-solve allocations back on the hot
// path (and trip the allocs/op gate on multi-core runners), so the pool
// starts once, lazily, on the first solve that can use it, and its workers
// idle on a channel receive between passes.
func startWorkers() {
	numWorkers = runtime.GOMAXPROCS(0) - 1
	if numWorkers > 7 {
		numWorkers = 7
	}
	if numWorkers <= 0 {
		return
	}
	workerJobs = make(chan parJob, numWorkers)
	for i := 0; i < numWorkers; i++ {
		go func() {
			for j := range workerJobs {
				j.a.updateRange(j.lo, j.hi, j.chunk)
				j.a.wg.Done()
			}
		}()
	}
}

// updateColumn brings the committed processor's EFT column current for
// every stale queued row, fanning the row recompute across the worker pool
// when the queue is wide enough, and returns the next selection (the fused
// argmax) plus the number of rows re-estimated (the substrate counter
// batch). Chunking cannot affect the selection: the per-chunk maxima merge
// over the (PV, task ID) total order.
//
//hdlts:hotpath
func (a *arena) updateColumn(q platform.Proc, iter uint32, workers int) (int32, int64) {
	k := len(a.live)
	a.col = q
	a.availCol = a.s.Avail(q)
	a.iterMark = iter
	nchunks := 1
	if workers > 1 && k >= parMinRows && workerJobs != nil {
		chunk := (k + workers - 1) / workers
		nchunks = (k + chunk - 1) / chunk
		a.wg.Add(nchunks - 1)
		for c := 1; c < nchunks; c++ {
			lo := c * chunk
			hi := lo + chunk
			if hi > k {
				hi = k
			}
			workerJobs <- parJob{a: a, lo: lo, hi: hi, chunk: c}
		}
		a.updateRange(0, chunk, 0)
		a.wg.Wait()
	} else {
		a.updateRange(0, k, 0)
	}
	bPV, bRow, updated := a.bestPV[0], a.bestRow[0], a.updCount[0]
	for c := 1; c < nchunks; c++ {
		if pv := a.bestPV[c]; pv > bPV || (pv == bPV && a.taskOf[a.bestRow[c]] < a.taskOf[bRow]) {
			bPV, bRow = pv, a.bestRow[c]
		}
		updated += a.updCount[c]
	}
	return bRow, updated
}

// updateRange recomputes the committed processor's EFT column for queued
// rows [lo, hi), refreshes their PVs, and records the chunk's argmax and
// re-estimate count. Writes are row-local or chunk-local, so disjoint
// ranges run safely from several workers.
//
//hdlts:hotpath
func (a *arena) updateRange(lo, hi, chunk int) {
	q := a.col
	qi := int(q)
	np := a.np
	skip := a.iterMark - 1
	avail := a.availCol
	insertion := a.pol.Insertion
	popSigma := a.popSigma
	// Locals pin the slice headers in registers: the a.pv store inside the
	// loop would otherwise force the backing arrays to reload every row.
	live := a.live[lo:hi]
	taskOf, filledIter, entryTask := a.taskOf, a.filledIter, a.entryTask
	otherArr, eftM, pvs, wRows := a.otherArr, a.eftM, a.pv, a.wRow
	// Rows whose EFT moves are only recorded here; their σ recomputations
	// run pairwise afterwards, interleaving two independent FP dependency
	// chains (the serial add chain inside one σ is the latency bound).
	// Sized to the chunk once, before the row loop, so the appends below
	// never grow it.
	dirty := a.dirty[chunk]
	if cap(dirty) < len(live) {
		dirty = make([]int32, 0, len(a.live))
	}
	dirty = dirty[:0]
	updated := int64(0)
	for _, row := range live {
		if filledIter[row] != skip { // enqueued earlier; column may be stale
			updated++
			base := int(row) * np
			et := entryTask[row]
			if et < 0 && !insertion {
				// Fast path: without a duplication candidate, avail-based
				// EstimateArrived collapses to max(ready, Avail(q)) + w(t, q),
				// and Avail(q) is the hoisted pass constant. When the ready
				// time dominates (est >= avail), the fill-time value
				// est + w is still exact — Avail only grows under commits,
				// so it was dominated then too — and the whole recompute
				// skips.
				if est := otherArr[base+qi]; est < avail {
					if eftNew := avail + wRows[base+qi]; eftNew != eftM[base+qi] {
						eftM[base+qi] = eftNew
						dirty = append(dirty, row)
					}
				}
			} else {
				e := a.s.EstimateArrived(dag.TaskID(taskOf[row]), q, a.pol, dag.TaskID(et), a.entryArr[base+qi], otherArr[base+qi])
				if eftNew := e.EFT; eftNew != eftM[base+qi] {
					eftM[base+qi] = eftNew
					dirty = append(dirty, row)
				}
			}
		}
	}
	a.dirty[chunk] = dirty
	i := 0
	for ; i+1 < len(dirty); i += 2 {
		r0, r1 := dirty[i], dirty[i+1]
		b0, b1 := int(r0)*np, int(r1)*np
		if popSigma {
			pvs[r0], pvs[r1] = stats.PopStdDev2(eftM[b0:b0+np], eftM[b1:b1+np])
		} else {
			pvs[r0], pvs[r1] = stats.SampleStdDev2(eftM[b0:b0+np], eftM[b1:b1+np])
		}
	}
	if i < len(dirty) {
		r := dirty[i]
		b := int(r) * np
		if popSigma {
			pvs[r] = stats.PopStdDev(eftM[b : b+np])
		} else {
			pvs[r] = stats.SampleStdDev(eftM[b : b+np])
		}
	}
	// Selection argmax over the chunk, now that every PV is current. The
	// task ID loads only on the rare tie/new-max, keeping the common step
	// to one float load and one compare.
	bPV := -1.0
	bRow, bTask := int32(-1), int32(0)
	for _, row := range live {
		if pv := pvs[row]; pv > bPV {
			bPV, bRow, bTask = pv, row, taskOf[row]
		} else if pv == bPV && taskOf[row] < bTask {
			bRow, bTask = row, taskOf[row]
		}
	}
	a.bestPV[chunk] = bPV
	a.bestRow[chunk] = bRow
	a.updCount[chunk] = updated
}

// refreshRows rebuilds every stale row from scratch after a duplication:
// the new entry copy is reachable from every processor, so both the cached
// arrival vectors and every EFT column may have moved. Mirrors the
// reference engine's refreshAll fallback, carrying the selection argmax
// like updateColumn does.
//
//hdlts:hotpath
func (a *arena) refreshRows(iter uint32) (int32, int64, error) {
	np := a.np
	skip := iter - 1
	refreshed := int64(0)
	bPV := -1.0
	bRow, bTask := int32(-1), int32(0)
	for _, row := range a.live {
		t := a.taskOf[row]
		if a.filledIter[row] != skip {
			base := int(row) * np
			et, err := a.s.FillArrivals(dag.TaskID(t), a.pol, a.entryArr[base:base+np], a.otherArr[base:base+np])
			if err != nil {
				return -1, refreshed, err
			}
			a.entryTask[row] = int32(et)
			for q := 0; q < np; q++ {
				e := a.s.EstimateArrived(dag.TaskID(t), platform.Proc(q), a.pol, et, a.entryArr[base+q], a.otherArr[base+q])
				a.eftM[base+q] = e.EFT
			}
			refreshed += int64(np)
			a.pv[row] = a.sigmaOf(a.eftM[base : base+np])
		}
		pv := a.pv[row]
		if pv > bPV || (pv == bPV && t < bTask) {
			bPV, bRow, bTask = pv, row, t
		}
	}
	return bRow, refreshed, nil
}

// bestEstimate recomputes the selected task's winning estimate from its
// cached arrivals: the minimum-EFT processor (ties to the lower index), or
// the lookahead score when that option is on. No commit has intervened
// since the row's vectors were brought current, so the recomputation is
// bit-identical to the cached values — including the duplication decision
// the EFT alone does not carry.
//
//hdlts:hotpath
func (h *HDLTS) bestEstimate(a *arena, t dag.TaskID, row int32) sched.Estimate {
	np := a.np
	base := int(row) * np
	et := dag.TaskID(a.entryTask[row])
	if h.opts.Lookahead {
		best := a.s.EstimateArrived(t, 0, a.pol, et, a.entryArr[base], a.otherArr[base])
		bestScore := h.lookaheadScore(a.s, best)
		for q := 1; q < np; q++ {
			e := a.s.EstimateArrived(t, platform.Proc(q), a.pol, et, a.entryArr[base+q], a.otherArr[base+q])
			if sc := h.lookaheadScore(a.s, e); sc < bestScore {
				best, bestScore = e, sc
			}
		}
		return best
	}
	bq := 0
	for q := 1; q < np; q++ {
		if a.eftM[base+q] < a.eftM[base+bq] {
			bq = q
		}
	}
	return a.s.EstimateArrived(t, platform.Proc(bq), a.pol, et, a.entryArr[base+bq], a.otherArr[base+bq])
}

// runIndexed is the allocation-free engine. It maintains exactly the state
// the reference engine recomputes — per queued task, the EFT vector under
// the current partial schedule and its PV — but keyed by index, updated in
// O(1) per (row, committed column), with the selection fused into the
// update pass. capt, when non-nil, receives the per-iteration placement
// rationale (ScheduleExplained); production solves pass nil and pay one
// pointer test per iteration.
//
//hdlts:hotpath
func (h *HDLTS) runIndexed(pr *sched.Problem, prev *sched.Schedule, capt *capture) (*sched.Schedule, error) {
	prof := obs.SolverProfileFor(h.Name())
	defer prof.Start(obs.PhaseSchedule).Stop()
	g := pr.G
	s := prev
	if s != nil {
		s.Reset(pr)
	} else {
		s = sched.NewSchedule(pr)
	}
	pol := h.policy()
	n, np := pr.NumTasks(), pr.NumProcs()

	a := arenaPool.Get().(*arena)
	defer a.recycle()
	a.bind(s, pr, pol, h.opts.PopulationSigma, n, np)

	workers := h.opts.MaxWorkers
	if workers <= 0 {
		workers = 8
	}
	if gmp := runtime.GOMAXPROCS(0); workers > gmp {
		workers = gmp
	}
	if workers > 1 {
		workersOnce.Do(startWorkers)
		if workers > numWorkers+1 {
			workers = numWorkers + 1
		}
	}

	scanAcc := prof.Accum(obs.PhaseScan)
	eftAcc := prof.Accum(obs.PhaseEFT)
	insAcc := prof.Accum(obs.PhaseInsertion)
	defer scanAcc.FlushScaled(timeSampleStride)
	defer eftAcc.FlushScaled(timeSampleStride)
	defer insAcc.FlushScaled(timeSampleStride)
	// Phase attribution samples one iteration in timeSampleStride and the
	// flush scales the totals back up: iterations are statistically alike
	// enough that the per-phase split keeps its shape, and the skipped
	// iterations save their clock reads — unsampled, the clock alone was
	// ~10% of solve time at 10k tasks. Within a sampled iteration each
	// Lap both closes a phase and opens the next with one reading.
	timedAll := scanAcc.Enabled()

	// Estimates are batch-accounted: EstimateArrived does not bump the
	// substrate counter per call, so one Add lands the same total the
	// reference engine accumulates one atomic increment at a time.
	estimates := int64(0)
	for t := 0; t < n; t++ {
		a.remaining[t] = int32(g.InDegree(dag.TaskID(t)))
		if a.remaining[t] == 0 {
			if err := a.enqueue(dag.TaskID(t), 0); err != nil {
				return nil, fmt.Errorf("core: estimating task %d: %w", t, err)
			}
			estimates += int64(np)
		}
	}

	var lastProc platform.Proc = -1
	refreshAll := false
	iter := uint32(0)
	for len(a.live) > 0 {
		iter++
		iterationCount.Inc()
		timed := timedAll && (iter-1)&(timeSampleStride-1) == 0
		var tick obs.SampledTick
		if timed {
			tick = obs.StartSample()
		}

		// Phase 1+2: bring EFT vectors and PVs current and pick the winner.
		// After a plain commit only the committed processor's column can
		// have moved for already-queued tasks; after a duplication every
		// row rebuilds. Rows enqueued after the previous commit are stamped
		// current and skipped.
		var selRow int32
		if lastProc < 0 {
			selRow = a.selectScan()
		} else if refreshAll {
			row, refreshed, err := a.refreshRows(iter)
			estimates += refreshed
			if err != nil {
				sched.CountEstimates(estimates)
				return nil, fmt.Errorf("core: refreshing estimates: %w", err)
			}
			selRow = row
			refreshAll = false
		} else {
			row, updated := a.updateColumn(lastProc, iter, workers)
			selRow = row
			estimates += updated
		}
		if timed {
			tick.Lap(&scanAcc)
		}

		// Phase 3: highest PV (ties to the smaller task ID) goes to its
		// minimum-EFT processor (or best lookahead score).
		t := dag.TaskID(a.taskOf[selRow])
		best := h.bestEstimate(a, t, selRow)
		if capt != nil {
			capt.record(a, t, selRow, best, iter)
		}
		if timed {
			tick.Lap(&eftAcc)
		}
		err := s.Commit(best)
		if timed {
			tick.Lap(&insAcc)
		}
		if err != nil {
			sched.CountEstimates(estimates)
			return nil, fmt.Errorf("core: committing task %d on P%d: %w", t, best.Proc+1, err)
		}
		lastProc = best.Proc
		refreshAll = best.UseDuplicate
		a.freeRow(selRow)

		// Phase 4: admit newly independent tasks with post-commit estimate
		// vectors — the same vectors the reference engine computes at the
		// top of its next iteration, since no commit intervenes.
		for _, arc := range g.Succs(t) {
			a.remaining[arc.Task]--
			if a.remaining[arc.Task] == 0 {
				if err := a.enqueue(arc.Task, iter); err != nil {
					sched.CountEstimates(estimates)
					return nil, fmt.Errorf("core: estimating task %d: %w", arc.Task, err)
				}
				estimates += int64(np)
			}
		}
		if timed {
			tick.Lap(&eftAcc)
		}
	}
	sched.CountEstimates(estimates)

	if !s.Complete() {
		return nil, fmt.Errorf("core: scheduler stalled with %d/%d tasks placed", s.NumPlaced(), n)
	}
	return s, nil
}
