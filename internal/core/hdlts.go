// Package core implements HDLTS — Heterogeneous Dynamic List Task
// Scheduling — the contribution of the reproduced paper (Section IV).
//
// HDLTS keeps a dynamic Independent Task Queue (ITQ) holding only the tasks
// whose parents have all finished. On every iteration it:
//
//  1. computes, for every task in the ITQ, the EFT vector across all
//     processors (Eq. 6–7), virtually considering effective entry-task
//     duplication (Algorithm 1);
//  2. assigns each task a Penalty Value PV = sample standard deviation of
//     its EFT vector (Eq. 8) — its execution-time heterogeneity;
//  3. removes the highest-PV task and commits it to the processor with the
//     minimum EFT, materialising an entry duplicate when that is what made
//     the minimum achievable;
//  4. inserts any newly independent tasks into the ITQ and repeats.
//
// The EFT semantics (virtual duplication during estimation, sample-σ PV,
// avail-based placement) were pinned down by hand-reproducing every row of
// the paper's Table I; see DESIGN.md §1.
package core

import (
	"fmt"
	"math"
	"slices"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
	"hdlts/internal/stats"
)

// metricIterations is the ITQ iteration counter series.
const metricIterations = "hdlts_iterations_total"

// iterationCount totals ITQ iterations across all HDLTS runs in the
// process (each iteration is one PV-ranked selection).
var iterationCount = obs.Default().Counter(metricIterations)

// Options tune HDLTS variants. The zero value is NOT the paper's algorithm;
// use DefaultOptions (or New) for the published configuration. The
// non-default combinations exist for the ablation benches in DESIGN.md §4.
type Options struct {
	// DisableDuplication turns off effective entry-task duplication
	// (Algorithm 1), leaving pure dynamic PV-priority scheduling.
	DisableDuplication bool
	// Insertion switches CPU selection from the paper's avail-based
	// placement (Eq. 6) to HEFT-style insertion-based slot search.
	Insertion bool
	// PopulationSigma computes PV with the population standard deviation
	// (divide by n) instead of the sample form (divide by n−1) that
	// reproduces Table I.
	PopulationSigma bool
	// Lookahead extends CPU selection one level down the workflow: the
	// selected task goes to the processor minimising its own EFT *plus* the
	// estimated EFT of its critical child given that placement. This is an
	// extension targeting the weakness the paper itself diagnoses in its
	// Fig. 4 discussion — HDLTS "does not take a look at the overall
	// structure of the application and the impact of a CPU assignment for a
	// task to its child tasks".
	Lookahead bool
}

// DefaultOptions is the configuration published in the paper.
var DefaultOptions = Options{}

// HDLTS is the scheduler. It is stateless between Schedule calls and safe
// for concurrent use.
type HDLTS struct {
	opts Options
	// fullRecompute disables the incremental EFT maintenance and rebuilds
	// every ready task's estimate vector each iteration — the literal
	// O(|ITQ|·p) loop of the paper. The results are identical (tested
	// differentially); the knob exists for that test and for benchmarks.
	fullRecompute bool
}

// New returns HDLTS exactly as published.
func New() *HDLTS { return &HDLTS{opts: DefaultOptions} }

// NewWithOptions returns an HDLTS variant for ablation studies.
func NewWithOptions(o Options) *HDLTS { return &HDLTS{opts: o} }

// Name identifies the algorithm (including any ablation markers) in
// experiment tables.
func (h *HDLTS) Name() string {
	n := "HDLTS"
	if h.opts.DisableDuplication {
		n += "-nodup"
	}
	if h.opts.Insertion {
		n += "-ins"
	}
	if h.opts.PopulationSigma {
		n += "-popσ"
	}
	if h.opts.Lookahead {
		n += "-la"
	}
	return n
}

func (h *HDLTS) policy() sched.Policy {
	return sched.Policy{Insertion: h.opts.Insertion, EntryDuplication: !h.opts.DisableDuplication}
}

// Step records one ITQ iteration for trace output (Table I reproduction).
type Step struct {
	// Ready lists the ITQ content at the start of the step, ascending by ID.
	Ready []dag.TaskID
	// PV holds the penalty value of each ready task, aligned with Ready.
	PV []float64
	// Selected is the task removed from the ITQ this step.
	Selected dag.TaskID
	// EFT is the selected task's earliest-finish-time vector by processor.
	EFT []float64
	// Proc is the processor the task was committed to.
	Proc platform.Proc
	// Duplicated reports whether an entry duplicate was materialised on
	// Proc as part of this commit.
	Duplicated bool
}

// Schedule maps the problem's workflow onto its platform and returns the
// complete schedule. Multi-entry/multi-exit workflows are normalised with
// zero-cost pseudo tasks first; the returned schedule references the
// normalised problem (its Makespan equals the original workflow's).
func (h *HDLTS) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	s, _, err := h.run(pr, false)
	return s, err
}

// ScheduleTrace is Schedule plus the per-iteration trace of ready sets,
// penalty values, selections, and EFT vectors — the exact content of the
// paper's Table I.
func (h *HDLTS) ScheduleTrace(pr *sched.Problem) (*sched.Schedule, []Step, error) {
	return h.run(pr, true)
}

//hdlts:hotpath
func (h *HDLTS) run(pr *sched.Problem, trace bool) (*sched.Schedule, []Step, error) {
	prof := obs.SolverProfileFor(h.Name())
	defer prof.Start(obs.PhaseSchedule).Stop()
	pr = pr.Normalize()
	g := pr.G
	s := sched.NewSchedule(pr)
	pol := h.policy()
	tr := pr.Tracer()

	n := g.NumTasks()
	// remaining[t] counts unscheduled parents; tasks enter the ITQ at zero.
	remaining := make([]int, n)
	itq := make([]dag.TaskID, 0, n)
	for t := 0; t < n; t++ {
		remaining[t] = g.InDegree(dag.TaskID(t))
		if remaining[t] == 0 {
			itq = append(itq, dag.TaskID(t))
		}
	}

	sigma := stats.SampleStdDev
	if h.opts.PopulationSigma {
		sigma = stats.PopStdDev
	}

	var steps []Step
	estBuf := make([]sched.Estimate, pr.NumProcs())
	eftBuf := make([]float64, pr.NumProcs())
	// Per-iteration scratch, reallocated only on ITQ growth.
	pvs := make([]float64, 0, len(itq))
	ests := make(map[dag.TaskID][]sched.Estimate, 8)
	// fresh[t] marks ITQ members whose estimate vector must be rebuilt from
	// scratch. Between iterations only the just-committed processor's
	// column can change for already-queued tasks (their ready times are
	// fixed once all parents are placed), so the incremental path
	// re-estimates a single (task, proc) pair per member. Materialising an
	// entry duplicate adds a new copy of a parent visible from *every*
	// processor, so that case falls back to full recomputation.
	fresh := make(map[dag.TaskID]bool, len(itq))
	for _, t := range itq {
		fresh[t] = true
	}
	var lastProc platform.Proc = -1
	refreshAll := false
	iter := 0
	// The ITQ is built in ascending task order above; removals preserve
	// order, so it only unsorts when phase 4 appends a task that breaks the
	// ascending run. Re-sorting unconditionally was measurably hot at 10k+
	// tasks.
	itqSorted := true

	scanAcc := prof.Accum(obs.PhaseScan)
	eftAcc := prof.Accum(obs.PhaseEFT)
	insAcc := prof.Accum(obs.PhaseInsertion)
	defer scanAcc.Flush()
	defer eftAcc.Flush()
	defer insAcc.Flush()

	for len(itq) > 0 {
		iter++
		iterationCount.Inc()
		if !itqSorted {
			slices.Sort(itq)
			itqSorted = true
		}
		pvs = pvs[:0]

		// Phase 1+2: EFT vectors and penalty values for every ready task.
		scanTick := scanAcc.Tick()
		bestIdx := 0
		for i, t := range itq {
			esCopy, ok := ests[t]
			switch {
			case !ok || fresh[t] || refreshAll || h.fullRecompute:
				eftTick := eftAcc.Tick()
				es, err := s.EstimateAll(t, pol, estBuf)
				eftTick.End()
				if err != nil {
					return nil, nil, fmt.Errorf("core: estimating task %d: %w", t, err)
				}
				if !ok || cap(esCopy) < len(es) {
					//lint:hdltsvet-ignore hotpathalloc per-task estimate vector cache, amortised to one allocation per task
					esCopy = make([]sched.Estimate, len(es))
				}
				esCopy = esCopy[:len(es)]
				copy(esCopy, es)
				ests[t] = esCopy
				delete(fresh, t)
			case lastProc >= 0:
				e, err := s.Estimate(t, lastProc, pol)
				if err != nil {
					return nil, nil, fmt.Errorf("core: estimating task %d: %w", t, err)
				}
				esCopy[lastProc] = e
			}

			for p := range esCopy {
				eftBuf[p] = esCopy[p].EFT
			}
			pv := sigma(eftBuf[:len(esCopy)])
			pvs = append(pvs, pv)
			// Highest PV wins; ties fall to the smaller task ID, which is
			// the earlier ITQ position because the queue is sorted.
			if pv > pvs[bestIdx] {
				bestIdx = i
			}
		}
		scanTick.End()
		refreshAll = false

		selected := itq[bestIdx]
		// Phase 3: commit to the minimum-EFT processor (with the optional
		// one-level lookahead score instead of the bare EFT).
		es := ests[selected]
		best := es[0]
		if h.opts.Lookahead {
			bestScore := h.lookaheadScore(s, es[0])
			for _, e := range es[1:] {
				if sc := h.lookaheadScore(s, e); sc < bestScore {
					best, bestScore = e, sc
				}
			}
		} else {
			for _, e := range es[1:] {
				if e.EFT < best.EFT {
					best = e
				}
			}
		}
		if tr.Enabled() {
			// The generalised form of the Table-I trace: one PV event per
			// ready task, then the iteration's selection. Commit events
			// follow from the sched substrate.
			for i, t := range itq {
				tr.Emit(obs.Event{Type: obs.EvPV, Task: int(t), Proc: -1, Iter: iter, Value: pvs[i]})
			}
			tr.Emit(obs.Event{
				Type: obs.EvIteration, Task: int(selected), Proc: int(best.Proc),
				Iter: iter, Value: pvs[bestIdx], Dup: best.UseDuplicate,
			})
		}
		if trace {
			steps = captureStep(steps, itq, pvs, selected, best, es)
		}
		insTick := insAcc.Tick()
		err := s.Commit(best)
		insTick.End()
		if err != nil {
			return nil, nil, fmt.Errorf("core: committing task %d on P%d: %w", selected, best.Proc+1, err)
		}
		lastProc = best.Proc
		if best.UseDuplicate {
			// The new entry copy is reachable from every processor: stale
			// ready times are possible everywhere, so rebuild fully.
			refreshAll = true
		}

		// Phase 4: update the ITQ.
		itq = append(itq[:bestIdx], itq[bestIdx+1:]...)
		delete(ests, selected)
		for _, a := range g.Succs(selected) {
			remaining[a.Task]--
			if remaining[a.Task] == 0 {
				if len(itq) > 0 && a.Task < itq[len(itq)-1] {
					itqSorted = false
				}
				itq = append(itq, a.Task)
				fresh[a.Task] = true
			}
		}
	}

	if !s.Complete() {
		return nil, nil, fmt.Errorf("core: scheduler stalled with %d/%d tasks placed", s.NumPlaced(), n)
	}
	return s, steps, nil
}

// captureStep appends one Table-I trace step. It lives outside the hot
// path: trace capture copies the ready set, PVs, and EFT vector per
// iteration by design, and only ScheduleTrace callers pay for it.
func captureStep(steps []Step, itq []dag.TaskID, pvs []float64, selected dag.TaskID, best sched.Estimate, es []sched.Estimate) []Step {
	st := Step{
		Ready:      append([]dag.TaskID(nil), itq...),
		PV:         append([]float64(nil), pvs...),
		Selected:   selected,
		Proc:       best.Proc,
		Duplicated: best.UseDuplicate,
	}
	st.EFT = make([]float64, len(es))
	for p := range es {
		st.EFT[p] = es[p].EFT
	}
	return append(steps, st)
}

// lookaheadScore estimates the downstream cost of committing estimate e:
// e's own EFT plus the best achievable EFT of e's *critical child* — the
// child with the largest such minimum — assuming the child's other already-
// scheduled parents stay put and processor availabilities only change on
// e.Proc. Unscheduled co-parents are ignored (their arrivals are unknown),
// making this an optimistic one-level probe in the spirit of
// lookahead-HEFT.
//
//hdlts:hotpath
func (h *HDLTS) lookaheadScore(s *sched.Schedule, e sched.Estimate) float64 {
	pr := s.Problem()
	g := pr.G
	succs := g.Succs(e.Task)
	if len(succs) == 0 {
		return e.EFT
	}
	worstChild := 0.0
	for _, a := range succs {
		child := a.Task
		bestEFT := math.Inf(1)
		for q := 0; q < pr.NumProcs(); q++ {
			proc := platform.Proc(q)
			// Arrival of e's output on q under the tentative placement.
			ready := e.EFT + pr.Comm(a.Data, e.Proc, proc)
			for _, b := range g.Preds(child) {
				if b.Task == e.Task || !s.Placed(b.Task) {
					continue
				}
				arr := math.Inf(1)
				for _, c := range s.Copies(b.Task) {
					if v := c.Finish + pr.Comm(b.Data, c.Proc, proc); v < arr {
						arr = v
					}
				}
				if arr > ready {
					ready = arr
				}
			}
			avail := s.Avail(proc)
			if proc == e.Proc && e.EFT > avail {
				avail = e.EFT
			}
			if avail > ready {
				ready = avail
			}
			if eft := ready + pr.Exec(child, proc); eft < bestEFT {
				bestEFT = eft
			}
		}
		if bestEFT > worstChild {
			worstChild = bestEFT
		}
	}
	return e.EFT + worstChild
}
