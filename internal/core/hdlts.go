// Package core implements HDLTS — Heterogeneous Dynamic List Task
// Scheduling — the contribution of the reproduced paper (Section IV).
//
// HDLTS keeps a dynamic Independent Task Queue (ITQ) holding only the tasks
// whose parents have all finished. On every iteration it:
//
//  1. computes, for every task in the ITQ, the EFT vector across all
//     processors (Eq. 6–7), virtually considering effective entry-task
//     duplication (Algorithm 1);
//  2. assigns each task a Penalty Value PV = sample standard deviation of
//     its EFT vector (Eq. 8) — its execution-time heterogeneity;
//  3. removes the highest-PV task and commits it to the processor with the
//     minimum EFT, materialising an entry duplicate when that is what made
//     the minimum achievable;
//  4. inserts any newly independent tasks into the ITQ and repeats.
//
// The EFT semantics (virtual duplication during estimation, sample-σ PV,
// avail-based placement) were pinned down by hand-reproducing every row of
// the paper's Table I; see DESIGN.md §1.
//
// Two interchangeable engines implement the loop. The *indexed core*
// (indexed.go) keeps all per-iteration state in flat, pooled, index-keyed
// slices — a selection argmax fused into the per-iteration update pass
// instead of a sorted queue or heap, cached parent-arrival vectors instead
// of recomputed ready times — and serves every untraced solve
// allocation-free in the steady state; docs/SOLVER.md maps Algorithm 1
// onto it line by line. The *reference engine*
// (reference.go) is the direct transcription of the paper's loop; it serves
// traced solves (its event ordering is the documented one) and is the
// differential-testing oracle the indexed core is proven against.
package core

import (
	"math"

	"hdlts/internal/dag"
	"hdlts/internal/obs"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// metricIterations is the ITQ iteration counter series.
const metricIterations = "hdlts_iterations_total"

// iterationCount totals ITQ iterations across all HDLTS runs in the
// process (each iteration is one PV-ranked selection).
var iterationCount = obs.Default().Counter(metricIterations)

// Options tune HDLTS variants. The zero value is NOT the paper's algorithm;
// use DefaultOptions (or New) for the published configuration. The
// non-default combinations exist for the ablation benches in DESIGN.md §4.
type Options struct {
	// DisableDuplication turns off effective entry-task duplication
	// (Algorithm 1), leaving pure dynamic PV-priority scheduling.
	DisableDuplication bool
	// Insertion switches CPU selection from the paper's avail-based
	// placement (Eq. 6) to HEFT-style insertion-based slot search.
	Insertion bool
	// PopulationSigma computes PV with the population standard deviation
	// (divide by n) instead of the sample form (divide by n−1) that
	// reproduces Table I.
	PopulationSigma bool
	// Lookahead extends CPU selection one level down the workflow: the
	// selected task goes to the processor minimising its own EFT *plus* the
	// estimated EFT of its critical child given that placement. This is an
	// extension targeting the weakness the paper itself diagnoses in its
	// Fig. 4 discussion — HDLTS "does not take a look at the overall
	// structure of the application and the impact of a CPU assignment for a
	// task to its child tasks".
	Lookahead bool
	// MaxWorkers caps the goroutines the indexed core may use to recompute
	// EFT/PV vectors across queued tasks. 0 means automatic:
	// min(GOMAXPROCS, 8). 1 forces the recompute serial. The parallel path
	// only engages on wide queues (see parMinRows) and never changes the
	// schedule — selection is a total order on (PV, task ID). The setting
	// does not alter Name(): it is an execution knob, not an ablation.
	MaxWorkers int
}

// DefaultOptions is the configuration published in the paper.
var DefaultOptions = Options{}

// HDLTS is the scheduler. It is stateless between Schedule calls and safe
// for concurrent use.
type HDLTS struct {
	opts Options
	// fullRecompute disables the incremental EFT maintenance and rebuilds
	// every ready task's estimate vector each iteration — the literal
	// O(|ITQ|·p) loop of the paper. The results are identical (tested
	// differentially); the knob exists for that test and for benchmarks.
	fullRecompute bool
}

// New returns HDLTS exactly as published.
func New() *HDLTS { return &HDLTS{opts: DefaultOptions} }

// NewWithOptions returns an HDLTS variant for ablation studies.
func NewWithOptions(o Options) *HDLTS { return &HDLTS{opts: o} }

// Name identifies the algorithm (including any ablation markers) in
// experiment tables.
func (h *HDLTS) Name() string {
	n := "HDLTS"
	if h.opts.DisableDuplication {
		n += "-nodup"
	}
	if h.opts.Insertion {
		n += "-ins"
	}
	if h.opts.PopulationSigma {
		n += "-popσ"
	}
	if h.opts.Lookahead {
		n += "-la"
	}
	return n
}

func (h *HDLTS) policy() sched.Policy {
	return sched.Policy{Insertion: h.opts.Insertion, EntryDuplication: !h.opts.DisableDuplication}
}

// Step records one ITQ iteration for trace output (Table I reproduction).
type Step struct {
	// Ready lists the ITQ content at the start of the step, ascending by ID.
	Ready []dag.TaskID
	// PV holds the penalty value of each ready task, aligned with Ready.
	PV []float64
	// Selected is the task removed from the ITQ this step.
	Selected dag.TaskID
	// EFT is the selected task's earliest-finish-time vector by processor.
	EFT []float64
	// Proc is the processor the task was committed to.
	Proc platform.Proc
	// Duplicated reports whether an entry duplicate was materialised on
	// Proc as part of this commit.
	Duplicated bool
}

// Schedule maps the problem's workflow onto its platform and returns the
// complete schedule. Multi-entry/multi-exit workflows are normalised with
// zero-cost pseudo tasks first; the returned schedule references the
// normalised problem (its Makespan equals the original workflow's).
func (h *HDLTS) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	s, _, err := h.run(pr, false, nil)
	return s, err
}

// ScheduleInto is Schedule reusing the backing storage of a schedule
// returned by a previous call — timelines, placement tables, duplicate
// lists. Combined with the pooled solver arena this makes the steady state
// of a solve stream allocation-free (the solver/hdlts/v10k_steady bench
// pins it at zero allocs/op). prev must not be in use elsewhere; it is
// reset and rebound to pr's normalised form. Passing nil is equivalent to
// Schedule.
func (h *HDLTS) ScheduleInto(pr *sched.Problem, prev *sched.Schedule) (*sched.Schedule, error) {
	s, _, err := h.run(pr, false, prev)
	return s, err
}

// ScheduleTrace is Schedule plus the per-iteration trace of ready sets,
// penalty values, selections, and EFT vectors — the exact content of the
// paper's Table I.
func (h *HDLTS) ScheduleTrace(pr *sched.Problem) (*sched.Schedule, []Step, error) {
	return h.run(pr, true, nil)
}

// run normalises the problem and dispatches to an engine: the reference
// engine when the caller wants the Table-I trace, decision events are being
// recorded, or the fullRecompute oracle knob is set; the indexed core for
// everything else — which is every production and benchmark solve.
func (h *HDLTS) run(pr *sched.Problem, trace bool, prev *sched.Schedule) (*sched.Schedule, []Step, error) {
	pr = pr.Normalize()
	if trace || h.fullRecompute || pr.Tracer().Enabled() {
		return h.runReference(pr, trace, prev)
	}
	s, err := h.runIndexed(pr, prev, nil)
	return s, nil, err
}

// lookaheadScore estimates the downstream cost of committing estimate e:
// e's own EFT plus the best achievable EFT of e's *critical child* — the
// child with the largest such minimum — assuming the child's other already-
// scheduled parents stay put and processor availabilities only change on
// e.Proc. Unscheduled co-parents are ignored (their arrivals are unknown),
// making this an optimistic one-level probe in the spirit of
// lookahead-HEFT.
//
//hdlts:hotpath
func (h *HDLTS) lookaheadScore(s *sched.Schedule, e sched.Estimate) float64 {
	pr := s.Problem()
	g := pr.G
	succs := g.Succs(e.Task)
	if len(succs) == 0 {
		return e.EFT
	}
	worstChild := 0.0
	for _, a := range succs {
		child := a.Task
		bestEFT := math.Inf(1)
		for q := 0; q < pr.NumProcs(); q++ {
			proc := platform.Proc(q)
			// Arrival of e's output on q under the tentative placement.
			ready := e.EFT + pr.Comm(a.Data, e.Proc, proc)
			for _, b := range g.Preds(child) {
				if b.Task == e.Task || !s.Placed(b.Task) {
					continue
				}
				if arr := s.Arrival(b.Task, b.Data, proc); arr > ready {
					ready = arr
				}
			}
			avail := s.Avail(proc)
			if proc == e.Proc && e.EFT > avail {
				avail = e.EFT
			}
			if avail > ready {
				ready = avail
			}
			if eft := ready + pr.Exec(child, proc); eft < bestEFT {
				bestEFT = eft
			}
		}
		if bestEFT > worstChild {
			worstChild = bestEFT
		}
	}
	return e.EFT + worstChild
}
