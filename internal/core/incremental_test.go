package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdlts/internal/dag"
	"hdlts/internal/gen"
)

// TestQuickIncrementalMatchesFullRecompute differentially tests the
// incremental EFT maintenance against the paper's literal full-recompute
// loop: for arbitrary problems and every option combination, both paths
// must produce bit-identical schedules (same placements, same makespan,
// same trace decisions).
func TestQuickIncrementalMatchesFullRecompute(t *testing.T) {
	optionSets := []Options{
		{},
		{DisableDuplication: true},
		{Insertion: true},
		{Lookahead: true},
		{PopulationSigma: true, Insertion: true},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pr, err := randomProblem(rng)
		if err != nil {
			return false
		}
		for _, o := range optionSets {
			inc := &HDLTS{opts: o}
			full := &HDLTS{opts: o, fullRecompute: true}
			si, stepsI, err := inc.ScheduleTrace(pr)
			if err != nil {
				t.Logf("incremental: %v", err)
				return false
			}
			sf, stepsF, err := full.ScheduleTrace(pr)
			if err != nil {
				t.Logf("full: %v", err)
				return false
			}
			if si.Makespan() != sf.Makespan() {
				t.Logf("opts %+v: makespan %g vs %g", o, si.Makespan(), sf.Makespan())
				return false
			}
			if len(stepsI) != len(stepsF) {
				return false
			}
			for k := range stepsI {
				if stepsI[k].Selected != stepsF[k].Selected || stepsI[k].Proc != stepsF[k].Proc {
					t.Logf("opts %+v step %d: (%d,P%d) vs (%d,P%d)", o, k,
						stepsI[k].Selected, stepsI[k].Proc+1, stepsF[k].Selected, stepsF[k].Proc+1)
					return false
				}
				for p := range stepsI[k].EFT {
					if stepsI[k].EFT[p] != stepsF[k].EFT[p] {
						t.Logf("opts %+v step %d: EFT[%d] %g vs %g", o, k, p, stepsI[k].EFT[p], stepsF[k].EFT[p])
						return false
					}
				}
			}
			for task := 0; task < si.Problem().NumTasks(); task++ {
				pi, _ := si.PlacementOf(dag.TaskID(task))
				pf, _ := sf.PlacementOf(dag.TaskID(task))
				if pi != pf {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalTableI: the incremental path (the default) must still
// reproduce the golden makespan — already covered by TestTableI, asserted
// here against the explicit full path too.
func TestIncrementalTableI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_ = rng
	pr, err := gen.Random(gen.Params{V: 300, Alpha: 1.5, Density: 3, CCR: 3, Procs: 8, WDAG: 80, Beta: 1.2}, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := New().Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	full, err := (&HDLTS{fullRecompute: true}).Schedule(pr)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Makespan() != full.Makespan() {
		t.Fatalf("makespans diverge: %g vs %g", inc.Makespan(), full.Makespan())
	}
}

// BenchmarkIncrementalVsFull quantifies the speedup of the incremental
// path on a 300-task / 8-processor workload.
func BenchmarkIncrementalVsFull(b *testing.B) {
	pr, err := gen.Random(gen.Params{V: 300, Alpha: 1.5, Density: 3, CCR: 3, Procs: 8, WDAG: 80, Beta: 1.2}, rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental", func(b *testing.B) {
		h := New()
		for i := 0; i < b.N; i++ {
			if _, err := h.Schedule(pr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		h := &HDLTS{fullRecompute: true}
		for i := 0; i < b.N; i++ {
			if _, err := h.Schedule(pr); err != nil {
				b.Fatal(err)
			}
		}
	})
}
