package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hdlts/internal/exec"
	"hdlts/internal/obs"
)

// driftYAML claims "slow" costs 4 ms; the drift runner sleeps far longer,
// so the executor observes the overshoot and re-plans the pending fan
// steps — the live stream must carry the resulting workflow.replan event.
const driftYAML = `name: sse-drift
procs: 2
drift: 1.5
steps:
  - name: prep
    command: x
    cost: 0.002
  - name: slow
    command: x
    depends: [prep]
    costs: [0.004, 0.006]
  - name: fan1
    command: x
    depends: [prep]
    costs: [0.004, 0.006]
  - name: fan2
    command: x
    depends: [prep]
    costs: [0.004, 0.006]
  - name: fan3
    command: x
    depends: [prep]
    costs: [0.004, 0.006]
  - name: join
    command: x
    depends: [slow, fan1, fan2, fan3]
    cost: 0.002
`

// driftRunner makes "slow" massively overshoot its estimate.
func driftRunner(ctx context.Context, step exec.Step) error {
	d := 2 * time.Millisecond
	if step.Name == "slow" {
		d = 150 * time.Millisecond
	}
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	kind string
	data obs.StreamEvent
}

// readSSE parses an event-stream body into a channel of events, closing it
// on EOF. Comment lines (": keepalive" and friends) are skipped.
func readSSE(t *testing.T, body io.Reader) <-chan sseEvent {
	t.Helper()
	out := make(chan sseEvent, 256)
	go func() {
		defer close(out)
		sc := bufio.NewScanner(body)
		var kind string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				kind = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				var ev obs.StreamEvent
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
					t.Errorf("bad SSE data %q: %v", line, err)
					return
				}
				out <- sseEvent{kind: kind, data: ev}
			}
		}
	}()
	return out
}

// openStream connects to an SSE endpoint and waits for the server to
// commit the subscription (first flush) before returning.
func openStream(t *testing.T, base, path string) (*http.Response, <-chan sseEvent) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s = %d, body %s", path, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	return resp, readSSE(t, resp.Body)
}

func postWorkflowHTTP(t *testing.T, base, yaml string) *WorkflowView {
	t.Helper()
	resp, err := http.Post(base+"/v1/workflows", "application/yaml", strings.NewReader(yaml))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, body %s", resp.StatusCode, body)
	}
	var v WorkflowView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return &v
}

// TestSSEWorkflowLifecycle is the streaming acceptance test: a subscriber
// attached before submission sees the full workflow.plan → step.run →
// workflow.replan → workflow.done sequence live, and a subscriber that
// attaches after the fact gets a stream.skip marker counting what it
// missed.
func TestSSEWorkflowLifecycle(t *testing.T) {
	srv := newTestServer(t, Config{
		StreamHeartbeat: 50 * time.Millisecond,
		Workflows:       exec.Config{Runner: driftRunner, OverdueTick: 5 * time.Millisecond},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, events := openStream(t, ts.URL,
		"/v1/events?kind=workflow.plan,step.run,workflow.replan,workflow.done")
	defer resp.Body.Close()

	v := postWorkflowHTTP(t, ts.URL, driftYAML)

	var kinds []string
	deadline := time.After(15 * time.Second)
collect:
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				break collect
			}
			if ev.data.Workflow != v.ID {
				continue // another test's workflow on the global feed
			}
			kinds = append(kinds, ev.kind)
			if ev.kind != string(ev.data.Kind) && ev.data.Kind != "" {
				t.Errorf("event name %q != data kind %q", ev.kind, ev.data.Kind)
			}
			if ev.kind == obs.KindWorkflowDone {
				break collect
			}
		case <-deadline:
			t.Fatalf("timed out waiting for workflow.done; saw %v", kinds)
		}
	}
	seq := strings.Join(kinds, " ")
	if kinds[0] != obs.KindWorkflowPlan {
		t.Errorf("first event = %q, want workflow.plan (sequence %s)", kinds[0], seq)
	}
	for _, want := range []string{obs.KindStepRun, obs.KindWorkflowReplan, obs.KindWorkflowDone} {
		if !strings.Contains(seq, want) {
			t.Errorf("sequence missing %q: %s", want, seq)
		}
	}
	// Ordering: plan strictly precedes the first step.run, which precedes done.
	if strings.Index(seq, obs.KindStepRun) < strings.Index(seq, obs.KindWorkflowPlan) {
		t.Errorf("step.run before workflow.plan: %s", seq)
	}

	// A late subscriber to the workflow's own feed starts with a skip
	// marker — everything already happened.
	lresp, levents := openStream(t, ts.URL, "/v1/workflows/"+v.ID+"/events")
	defer lresp.Body.Close()
	select {
	case ev := <-levents:
		if ev.kind != obs.KindStreamSkip {
			t.Errorf("late subscriber first event = %q, want stream.skip", ev.kind)
		}
		if ev.data.Skipped == 0 {
			t.Error("stream.skip carries no skipped count")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late subscriber got no skip marker")
	}

	// Unknown workflow feeds 404 instead of hanging.
	r404, err := http.Get(ts.URL + "/v1/workflows/wf-nope/events")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown workflow feed = %d, want 404", r404.StatusCode)
	}
}

// TestSSEDecisionFeedPerTrace streams a traced solve's decision events
// through the global feed filtered by trace ID.
func TestSSEDecisionFeedPerTrace(t *testing.T) {
	srv := newTestServer(t, Config{StreamHeartbeat: 50 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, events := openStream(t, ts.URL, "/v1/events?kind=decision,span")
	defer resp.Body.Close()

	rec := postSchedule(t, srv, ScheduleRequest{Problem: problemJSON(t), Trace: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("schedule = %d", rec.Code)
	}

	decisions, spans := 0, 0
	deadline := time.After(10 * time.Second)
	for decisions == 0 || spans == 0 {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("stream closed early")
			}
			switch ev.kind {
			case obs.KindDecision:
				decisions++
				if ev.data.TraceID == "" || ev.data.Name == "" {
					t.Errorf("decision event missing trace/name: %+v", ev.data)
				}
			case obs.KindSpan:
				spans++
			}
		case <-deadline:
			t.Fatalf("saw %d decisions, %d spans", decisions, spans)
		}
	}
}

// TestSSEDrainEndsStream pins shutdown behaviour: Drain must terminate
// open event streams instead of hanging Shutdown on them.
func TestSSEDrainEndsStream(t *testing.T) {
	srv := newTestServer(t, Config{StreamHeartbeat: time.Minute})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, events := openStream(t, ts.URL, "/v1/events")
	defer resp.Body.Close()

	srv.Drain()
	select {
	case _, ok := <-events:
		if ok {
			// An event in flight is fine; the close must still follow.
			for range events {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end after drain")
	}

	// New subscriptions are refused while draining.
	r, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("subscribe while draining = %d, want 503", r.StatusCode)
	}
}

func waitDoneHTTP(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(fmt.Sprintf("%s/v1/workflows/%s", base, id))
		if err != nil {
			t.Fatal(err)
		}
		var v WorkflowView
		err = json.NewDecoder(r.Body).Decode(&v)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			if v.State != exec.Done {
				t.Fatalf("workflow ended %v: %s", v.State, v.Error)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("workflow did not finish")
}
