package server

import (
	"sync"

	"hdlts/internal/obs"
)

// pool is a bounded worker pool with a fixed-capacity request queue. Jobs
// are admitted without blocking: when the queue is full, trySubmit refuses
// immediately so the HTTP layer can answer 429 instead of building an
// unbounded backlog. close drains — every admitted job runs to completion
// before close returns, which is what makes SIGTERM drain graceful.
type pool struct {
	queue chan func()
	wg    sync.WaitGroup
	depth *obs.Gauge // queued-but-not-running jobs; nil disables

	mu     sync.RWMutex
	closed bool
}

// newPool starts workers goroutines consuming a queue of the given
// capacity. depth, when non-nil, tracks the instantaneous queue backlog.
func newPool(workers, capacity int, depth *obs.Gauge) *pool {
	p := &pool{queue: make(chan func(), capacity), depth: depth}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.queue {
				if p.depth != nil {
					p.depth.Dec()
				}
				job()
			}
		}()
	}
	return p
}

// trySubmit enqueues job without blocking. It reports false when the queue
// is saturated or the pool is closed.
func (p *pool) trySubmit(job func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.queue <- job:
		if p.depth != nil {
			p.depth.Inc()
		}
		return true
	default:
		return false
	}
}

// close stops intake and blocks until every admitted job has run. It is
// idempotent.
func (p *pool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
