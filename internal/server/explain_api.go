package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"hdlts/internal/exec"
	"hdlts/internal/explain"
	"hdlts/internal/viz"
)

// The explainability endpoints answer "why does the schedule look like
// this" after the fact: GET /v1/workflows/{id}/explain renders the
// observed-execution report (drift, moved steps, queue wait, the observed
// critical chain), and GET /v1/workflows/{id}/gantt.svg draws the observed
// timeline as an SVG lane chart. The planned-schedule counterpart rides on
// POST /v1/schedule?explain=1 in server.go.

func (s *Server) handleWorkflowExplain(w http.ResponseWriter, r *http.Request) {
	rec, err := s.wfs.Get(r.PathValue("id"))
	if err != nil {
		s.workflowError(w, http.StatusNotFound, "not_found", err)
		return
	}
	writeJSON(w, http.StatusOK, explain.Workflow(rec))
}

func (s *Server) handleWorkflowGantt(w http.ResponseWriter, r *http.Request) {
	rec, err := s.wfs.Get(r.PathValue("id"))
	if err != nil {
		s.workflowError(w, http.StatusNotFound, "not_found", err)
		return
	}
	chart, err := workflowGantt(rec, time.Now())
	if err != nil {
		s.workflowError(w, http.StatusConflict, "not_started", err)
		return
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.Header().Set("Cache-Control", "no-cache")
	if err := chart.WriteSVG(w); err != nil {
		// Headers are already out; nothing useful left to send.
		return
	}
}

// workflowGantt builds the observed-execution lane chart for one workflow
// record: one lane per processor, one span per step that has started, with
// still-running steps drawn up to "now". Times are seconds relative to the
// workflow start.
func workflowGantt(rec *exec.Record, now time.Time) (*viz.LaneChart, error) {
	if rec.Spec == nil || rec.StartedAt.IsZero() {
		return nil, errors.New("workflow has not started")
	}
	chart := &viz.LaneChart{
		Title: fmt.Sprintf("%s (%s)", rec.Name, rec.State),
		Lanes: make([]viz.Lane, rec.Spec.Procs),
	}
	for p := range chart.Lanes {
		chart.Lanes[p].Name = fmt.Sprintf("P%d", p+1)
	}
	drawn := 0
	for i, st := range rec.Steps {
		if st.StartedAt.IsZero() || st.Proc < 0 || st.Proc >= len(chart.Lanes) {
			continue
		}
		start := st.StartedAt.Sub(rec.StartedAt).Seconds()
		end := now.Sub(rec.StartedAt).Seconds()
		if !st.FinishedAt.IsZero() {
			end = st.FinishedAt.Sub(rec.StartedAt).Seconds()
		}
		if end <= start {
			end = start + 1e-3
		}
		chart.Lanes[st.Proc].Spans = append(chart.Lanes[st.Proc].Spans, viz.Span{
			Start: start,
			End:   end,
			Label: st.Name,
			Color: i,
			// A step the re-planner moved off its planned processor is
			// hatched so drift is visible at a glance.
			Hatch: st.Proc != st.PlannedProc,
		})
		if end > chart.Makespan {
			chart.Makespan = end
		}
	}
	if drawn = countSpans(chart); drawn == 0 {
		return nil, errors.New("no step has started yet")
	}
	return chart, nil
}

func countSpans(chart *viz.LaneChart) int {
	n := 0
	for _, l := range chart.Lanes {
		n += len(l.Spans)
	}
	return n
}
