package server

import (
	"sync"
	"sync/atomic"
	"testing"

	"hdlts/internal/obs"
)

func TestPoolRunsEveryAdmittedJob(t *testing.T) {
	p := newPool(4, 16, nil)
	var ran atomic.Int64
	admitted := 0
	for i := 0; i < 100; i++ {
		if p.trySubmit(func() { ran.Add(1) }) {
			admitted++
		}
	}
	p.close()
	if got := int(ran.Load()); got != admitted {
		t.Errorf("ran %d of %d admitted jobs", got, admitted)
	}
}

func TestPoolRefusesWhenSaturated(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	p := newPool(1, 1, nil)
	if !p.trySubmit(func() { started <- struct{}{}; <-block }) {
		t.Fatal("first job refused")
	}
	<-started // worker busy; queue empty
	if !p.trySubmit(func() { <-block }) {
		t.Fatal("second job should occupy the queue slot")
	}
	if p.trySubmit(func() {}) {
		t.Error("third job admitted past a full queue")
	}
	close(block)
	p.close()
}

func TestPoolCloseDrainsBacklog(t *testing.T) {
	p := newPool(1, 8, nil)
	var order []int
	var mu sync.Mutex
	for i := 0; i < 5; i++ {
		i := i
		if !p.trySubmit(func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}) {
			t.Fatalf("job %d refused", i)
		}
	}
	p.close() // must not return before the backlog ran
	if len(order) != 5 {
		t.Fatalf("close returned with %d of 5 jobs run", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Errorf("FIFO violated: position %d ran job %d", i, got)
		}
	}
}

func TestPoolSubmitAfterCloseRefused(t *testing.T) {
	p := newPool(1, 1, nil)
	p.close()
	if p.trySubmit(func() {}) {
		t.Error("submit accepted after close")
	}
	p.close() // idempotent
}

func TestPoolDepthGauge(t *testing.T) {
	depth := obs.NewRegistry().Gauge("depth")
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	p := newPool(1, 4, depth)
	p.trySubmit(func() { started <- struct{}{}; <-block })
	<-started
	for i := 0; i < 3; i++ {
		p.trySubmit(func() {})
	}
	if got := depth.Value(); got != 3 {
		t.Errorf("depth = %g with 3 queued jobs, want 3", got)
	}
	close(block)
	p.close()
	if got := depth.Value(); got != 0 {
		t.Errorf("depth = %g after drain, want 0", got)
	}
}
