package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"hdlts/internal/sched"
)

// CanonicalProblemJSON renders a validated problem in its canonical wire
// form: the deterministic sched.Problem.WriteJSON encoding (tasks in ID
// order, stable field order, bandwidth emitted only when non-uniform).
// Two problems that decode equal serialise byte-identically, whatever
// whitespace, field order, or redundant bandwidth matrix the client sent.
func CanonicalProblemJSON(pr *sched.Problem) ([]byte, error) {
	var buf bytes.Buffer
	if err := pr.WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("canonicalise problem: %w", err)
	}
	return buf.Bytes(), nil
}

// CanonicalHash returns the content address of one (algorithm, problem)
// pair: sha256 over the canonical algorithm name and the canonical problem
// serialisation, hex-encoded. Scheduling is deterministic for a given
// pair, so this hash keys the job subsystem's result cache and in-flight
// coalescing. Pass the registry's canonical name (Algorithm.Name()), not
// raw client input, so "hdlts" and "HDLTS" address the same entry.
func CanonicalHash(algorithm string, pr *sched.Problem) (string, error) {
	canon, err := CanonicalProblemJSON(pr)
	if err != nil {
		return "", err
	}
	return hashOf(algorithm, canon), nil
}

// hashOf is the hash core for callers that already hold the canonical
// serialisation.
func hashOf(algorithm string, canonicalProblem []byte) string {
	h := sha256.New()
	h.Write([]byte(algorithm))
	h.Write([]byte{0})
	h.Write(canonicalProblem)
	return hex.EncodeToString(h.Sum(nil))
}
