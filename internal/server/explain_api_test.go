package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hdlts/internal/exec"
	"hdlts/internal/explain"
)

// postScheduleExplain drives POST /v1/schedule?explain=1.
func postScheduleExplain(t *testing.T, srv *Server, body ScheduleRequest) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/schedule?explain=1", &buf)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestScheduleExplainParam(t *testing.T) {
	srv := newTestServer(t, Config{})
	rec := postScheduleExplain(t, srv, ScheduleRequest{Algorithm: "hdlts", Problem: problemJSON(t)})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp ScheduleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Explain) == 0 {
		t.Fatal("explain=1 returned no explain report")
	}
	var rep explain.Report
	if err := json.Unmarshal(resp.Explain, &rep); err != nil {
		t.Fatalf("explain report does not decode: %v", err)
	}
	if rep.Tasks != 10 || rep.Procs != 3 || rep.Makespan != 73 {
		t.Errorf("report header = %d tasks / %d procs / %g makespan, want 10/3/73",
			rep.Tasks, rep.Procs, rep.Makespan)
	}
	if len(rep.CriticalPath) == 0 {
		t.Error("report has no critical path")
	}
	rationale := 0
	for _, p := range rep.Placements {
		if p.Rationale != nil {
			rationale++
		}
	}
	if rationale == 0 {
		t.Error("no placement carries a rationale — HDLTS capture did not run")
	}

	// The report is byte-deterministic across identical requests.
	rec2 := postScheduleExplain(t, srv, ScheduleRequest{Algorithm: "hdlts", Problem: problemJSON(t)})
	var resp2 ScheduleResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Explain, resp2.Explain) {
		t.Error("explain report bytes differ across identical requests")
	}

	// Without the param the field stays empty — no capture cost by default.
	rec3 := postSchedule(t, srv, ScheduleRequest{Algorithm: "hdlts", Problem: problemJSON(t)})
	var resp3 ScheduleResponse
	if err := json.Unmarshal(rec3.Body.Bytes(), &resp3); err != nil {
		t.Fatal(err)
	}
	if len(resp3.Explain) != 0 {
		t.Error("explain report present without ?explain=1")
	}
	if resp3.Makespan != resp.Makespan {
		t.Errorf("explained makespan %g != plain makespan %g", resp.Makespan, resp3.Makespan)
	}
}

// TestScheduleExplainNonHDLTS: algorithms without capture still answer,
// just without per-task rationale.
func TestScheduleExplainNonHDLTS(t *testing.T) {
	srv := newTestServer(t, Config{})
	rec := postScheduleExplain(t, srv, ScheduleRequest{Algorithm: "heft", Problem: problemJSON(t)})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp ScheduleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var rep explain.Report
	if err := json.Unmarshal(resp.Explain, &rep); err != nil {
		t.Fatalf("explain report does not decode: %v", err)
	}
	for _, p := range rep.Placements {
		if p.Rationale != nil {
			t.Fatal("non-HDLTS placement has HDLTS rationale")
		}
	}
	if len(rep.CriticalPath) == 0 || len(rep.Processors) != 3 {
		t.Errorf("structural surfaces missing: %d hops, %d procs",
			len(rep.CriticalPath), len(rep.Processors))
	}
}

func TestWorkflowExplainAndGantt(t *testing.T) {
	srv := newTestServer(t, Config{
		Workflows: exec.Config{Runner: driftRunner, OverdueTick: 5 * time.Millisecond},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	v := postWorkflowHTTP(t, ts.URL, driftYAML)
	waitDoneHTTP(t, ts.URL, v.ID)

	// Observed-execution report.
	r, err := http.Get(ts.URL + "/v1/workflows/" + v.ID + "/explain")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("explain = %d", r.StatusCode)
	}
	var rep explain.WorkflowReport
	if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.ID != v.ID || len(rep.Steps) != 6 {
		t.Fatalf("report = %s with %d steps, want %s with 6", rep.ID, len(rep.Steps), v.ID)
	}
	if rep.Replans == 0 {
		t.Error("drift workflow reports no replans")
	}
	if rep.MovedSteps == 0 {
		t.Error("drift workflow reports no moved steps")
	}
	slow := false
	for _, st := range rep.Steps {
		if st.Step == "slow" && st.DriftRatio > 1.5 {
			slow = true
		}
	}
	if !slow {
		t.Errorf("slow step's drift not surfaced: %+v", rep.Steps)
	}
	if len(rep.CriticalChain) == 0 {
		t.Error("no observed critical chain")
	}

	// Gantt SVG of the observed timeline.
	g, err := http.Get(ts.URL + "/v1/workflows/" + v.ID + "/gantt.svg")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Body.Close()
	if g.StatusCode != http.StatusOK {
		t.Fatalf("gantt = %d", g.StatusCode)
	}
	if ct := g.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("gantt Content-Type = %q", ct)
	}
	svg, err := io.ReadAll(g.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(svg)
	if !strings.Contains(body, "<svg") || !strings.Contains(body, "slow") {
		t.Errorf("gantt SVG malformed or missing step labels (%d bytes)", len(svg))
	}

	// Unknown IDs 404 on both surfaces.
	for _, path := range []string{"/v1/workflows/wf-nope/explain", "/v1/workflows/wf-nope/gantt.svg"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, r.StatusCode)
		}
	}
}
