package server

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// DebugHandler is the daemon's profiling surface: net/http/pprof (CPU,
// heap, goroutine, mutex, block profiles and execution traces) plus the
// expvar JSON dump, mounted under the conventional /debug/ prefix.
//
// It is deliberately a separate handler rather than extra routes on the
// Server: profiling endpoints expose internals (memory contents via heap
// dumps, timing via CPU profiles) and must never ride on the service
// port. The daemon serves it only when -debug-addr is set, on its own
// listener — typically bound to localhost.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "hdltsd debug listener")
		fmt.Fprintln(w, "  /debug/pprof/   profiles (goroutine, heap, profile, trace, ...)")
		fmt.Fprintln(w, "  /debug/vars     expvar JSON")
	})
	return mux
}
