package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hdlts/internal/core"
	"hdlts/internal/obs"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

// problemJSON renders the Fig. 1 problem in the wire form.
func problemJSON(t *testing.T) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := workflows.PaperExample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postSchedule drives one POST /v1/schedule through the handler.
func postSchedule(t *testing.T, srv *Server, body any) *httptest.ResponseRecorder {
	t.Helper()
	return doSchedule(srv, body)
}

// doSchedule is the goroutine-safe core of postSchedule: no *testing.T, so
// it may be called off the test goroutine (shutdown/saturation tests).
func doSchedule(srv *Server, body any) *httptest.ResponseRecorder {
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			panic(err)
		}
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/schedule", &buf)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv
}

func TestScheduleFig1OverHTTP(t *testing.T) {
	srv := newTestServer(t, Config{})
	rec := postSchedule(t, srv, ScheduleRequest{Algorithm: "hdlts", Problem: problemJSON(t)})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp ScheduleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Makespan != 73 {
		t.Errorf("makespan = %g, want 73 (the paper's Table I result)", resp.Makespan)
	}
	if resp.Algorithm != "HDLTS" || resp.Tasks != 10 || resp.Procs != 3 {
		t.Errorf("header fields = %q/%d/%d, want HDLTS/10/3", resp.Algorithm, resp.Tasks, resp.Procs)
	}
	if resp.SLR <= 0 || resp.Speedup <= 0 || resp.Efficiency <= 0 {
		t.Errorf("metrics not populated: %+v", resp)
	}
	if len(resp.Events) != 0 {
		t.Errorf("got %d events without trace", len(resp.Events))
	}
	// The embedded schedule must reconstruct and re-validate.
	pr := workflows.PaperExample()
	s, alg, err := sched.ReadScheduleJSON(pr, bytes.NewReader(resp.Schedule))
	if err != nil {
		t.Fatalf("embedded schedule does not reconstruct: %v", err)
	}
	if alg != "HDLTS" || s.Makespan() != 73 {
		t.Errorf("reconstructed %s makespan %g, want HDLTS 73", alg, s.Makespan())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("reconstructed schedule invalid: %v", err)
	}
}

func TestScheduleDefaultsToHDLTS(t *testing.T) {
	srv := newTestServer(t, Config{})
	rec := postSchedule(t, srv, ScheduleRequest{Problem: problemJSON(t)})
	var resp ScheduleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "HDLTS" {
		t.Errorf("default algorithm = %q, want HDLTS", resp.Algorithm)
	}
}

func TestScheduleEveryRegisteredAlgorithm(t *testing.T) {
	srv := newTestServer(t, Config{})
	for _, name := range registry.ExtendedNames() {
		rec := postSchedule(t, srv, ScheduleRequest{Algorithm: name, Problem: problemJSON(t)})
		if rec.Code != http.StatusOK {
			t.Errorf("%s: status = %d, body %s", name, rec.Code, rec.Body)
		}
	}
}

func TestScheduleWithTraceReturnsEvents(t *testing.T) {
	srv := newTestServer(t, Config{})
	rec := postSchedule(t, srv, ScheduleRequest{Algorithm: "hdlts", Problem: problemJSON(t), Trace: true})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp ScheduleResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) == 0 {
		t.Fatal("trace requested but no events returned")
	}
	// Each event is a standalone JSONL record with the algorithm stamped.
	var ev struct {
		Seq int    `json:"seq"`
		Ev  string `json:"ev"`
		Alg string `json:"alg"`
	}
	if err := json.Unmarshal(resp.Events[0], &ev); err != nil {
		t.Fatalf("event 0 not parseable: %v", err)
	}
	if ev.Seq != 1 || ev.Alg != "HDLTS" {
		t.Errorf("event 0 = %+v, want seq 1 alg HDLTS", ev)
	}
	// A commit event per task must be present.
	commits := 0
	for _, raw := range resp.Events {
		var e struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatal(err)
		}
		if e.Ev == "commit" {
			commits++
		}
	}
	if commits < 10 {
		t.Errorf("got %d commit events, want >= 10", commits)
	}
}

func TestMalformedRequestsGet400(t *testing.T) {
	srv := newTestServer(t, Config{})
	cases := []struct {
		name, body, wantInError string
	}{
		{"not json", "{", "decode request"},
		{"no problem", `{"algorithm":"hdlts"}`, "no problem"},
		{"unknown field", `{"bogus":1}`, "bogus"},
		{"cyclic dag", `{"problem":{"graph":{"tasks":[{"name":"a"},{"name":"b"}],"edges":[{"from":0,"to":1,"data":1},{"from":1,"to":0,"data":1}]},"procs":2,"costs":[[1,1],[1,1]]}}`, "cycle"},
		{"ragged costs", `{"problem":{"graph":{"tasks":[{"name":"a"},{"name":"b"}],"edges":[{"from":0,"to":1,"data":1}]},"procs":2,"costs":[[1,1],[1]]}}`, "cost row"},
		{"unknown algorithm", `{"algorithm":"nope","problem":{"graph":{"tasks":[{"name":"a"}],"edges":[]},"procs":1,"costs":[[1]]}}`, "unknown algorithm"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postSchedule(t, srv, tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", rec.Code, rec.Body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(er.Error, tc.wantInError) {
				t.Errorf("error %q does not mention %q", er.Error, tc.wantInError)
			}
		})
	}
}

func TestOversizedBodyGets413(t *testing.T) {
	srv := newTestServer(t, Config{MaxBodyBytes: 256})
	rec := postSchedule(t, srv, ScheduleRequest{Problem: problemJSON(t)})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
}

func TestMethodAndPathRouting(t *testing.T) {
	srv := newTestServer(t, Config{})
	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/v1/schedule", http.StatusMethodNotAllowed},
		{http.MethodPost, "/healthz", http.StatusMethodNotAllowed},
		{http.MethodGet, "/nope", http.StatusNotFound},
		{http.MethodGet, "/healthz", http.StatusOK},
		{http.MethodGet, "/readyz", http.StatusOK},
		{http.MethodGet, "/metrics", http.StatusOK},
		{http.MethodGet, "/v1/algorithms", http.StatusOK},
	} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, nil))
		if rec.Code != tc.want {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, rec.Code, tc.want)
		}
	}
}

// blockingAlg parks Schedule until released, to make queue states
// deterministic in tests.
type blockingAlg struct {
	started chan struct{} // receives one value per Schedule entry
	release chan struct{} // closed (or fed) to let Schedule finish
}

func (b *blockingAlg) Name() string { return "HDLTS" }

func (b *blockingAlg) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	if b.started != nil {
		b.started <- struct{}{}
	}
	<-b.release
	return core.New().Schedule(pr)
}

// blockingLookup serves "block" from the given algorithm and everything
// else from the registry.
func blockingLookup(b *blockingAlg) func(string) (sched.Algorithm, error) {
	return func(name string) (sched.Algorithm, error) {
		if name == "block" {
			return b, nil
		}
		return registry.Get(name)
	}
}

func TestSaturationGets429(t *testing.T) {
	blk := &blockingAlg{started: make(chan struct{}, 2), release: make(chan struct{})}
	srv := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Lookup:     blockingLookup(blk),
	})
	problem := problemJSON(t)

	var wg sync.WaitGroup
	codes := make(chan int, 2)
	// First request occupies the only worker; second fills the queue.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := postSchedule(t, srv, ScheduleRequest{Algorithm: "block", Problem: problem})
			codes <- rec.Code
		}()
	}
	<-blk.started // worker is busy
	// Wait until the queue slot is taken too (trySubmit for the second
	// request has happened once its depth gauge reads 1).
	waitFor(t, 5*time.Second, func() bool { return srv.queueDepth.Value() >= 1 })

	rec := postSchedule(t, srv, ScheduleRequest{Algorithm: "block", Problem: problem})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	close(blk.release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("admitted request finished with %d, want 200", code)
		}
	}
}

func TestRequestTimeoutGets504(t *testing.T) {
	blk := &blockingAlg{release: make(chan struct{})}
	srv := newTestServer(t, Config{
		Workers:        1,
		RequestTimeout: 20 * time.Millisecond,
		Lookup:         blockingLookup(blk),
	})
	rec := postSchedule(t, srv, ScheduleRequest{Algorithm: "block", Problem: problemJSON(t)})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", rec.Code, rec.Body)
	}
	close(blk.release) // let the worker finish so Shutdown drains
}

func TestShutdownDrainsInFlight(t *testing.T) {
	blk := &blockingAlg{started: make(chan struct{}, 1), release: make(chan struct{})}
	reg := obs.NewRegistry()
	srv := newTestServer(t, Config{Workers: 1, Metrics: reg, Lookup: blockingLookup(blk)})

	got := make(chan *httptest.ResponseRecorder, 1)
	blockReq := ScheduleRequest{Algorithm: "block", Problem: problemJSON(t)}
	go func() {
		got <- doSchedule(srv, blockReq)
	}()
	<-blk.started // request is executing

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight request, not abort it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Draining state is visible: /readyz 503, new schedule requests 503.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", rec.Code)
	}
	rec = postSchedule(t, srv, ScheduleRequest{Problem: problemJSON(t)})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("schedule while draining = %d, want 503", rec.Code)
	}

	close(blk.release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if rec := <-got; rec.Code != http.StatusOK {
		t.Errorf("in-flight request finished with %d, want 200 (body %s)", rec.Code, rec.Body)
	}
}

func TestShutdownHonoursContext(t *testing.T) {
	blk := &blockingAlg{started: make(chan struct{}, 1), release: make(chan struct{})}
	srv, err := New(Config{Workers: 1, Metrics: obs.NewRegistry(), Lookup: blockingLookup(blk)})
	if err != nil {
		t.Fatal(err)
	}
	req := ScheduleRequest{Algorithm: "block", Problem: problemJSON(t)}
	go doSchedule(srv, req)
	<-blk.started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Error("Shutdown returned nil despite a stuck request and an expired context")
	}
	close(blk.release)
	_ = srv.Shutdown(context.Background())
}

func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newTestServer(t, Config{Metrics: reg})
	// One good and one bad request populate latency + error series.
	postSchedule(t, srv, ScheduleRequest{Algorithm: "heft", Problem: problemJSON(t)})
	postSchedule(t, srv, "{")

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`hdltsd_http_requests_total{path="/v1/schedule",code="200"} 1`,
		`hdltsd_http_requests_total{path="/v1/schedule",code="400"} 1`,
		`hdltsd_schedule_seconds_count{alg="HEFT"} 1`,
		`hdltsd_schedule_seconds_bucket{alg="HEFT",le="+Inf"} 1`,
		`hdltsd_schedule_errors_total{reason="bad_request"} 1`,
		`hdltsd_http_request_seconds_count{path="/v1/schedule"} 2`,
		"hdltsd_http_in_flight",
		"hdltsd_queue_depth",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

func TestAccessLogRecords(t *testing.T) {
	var buf syncBuffer
	logger := newJSONLogger(&buf)
	srv := newTestServer(t, Config{AccessLog: logger})
	postSchedule(t, srv, ScheduleRequest{Problem: problemJSON(t)})
	line := buf.String()
	for _, want := range []string{`"path":"/v1/schedule"`, `"status":200`, `"method":"POST"`} {
		if !strings.Contains(line, want) {
			t.Errorf("access log missing %s: %s", want, line)
		}
	}
}

func TestConcurrentRequestsRaceClean(t *testing.T) {
	srv := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	problem := problemJSON(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			alg := registry.ExtendedNames()[i%len(registry.ExtendedNames())]
			rec := postSchedule(t, srv, ScheduleRequest{Algorithm: alg, Problem: problem, Trace: i%2 == 0})
			if rec.Code != http.StatusOK && rec.Code != http.StatusTooManyRequests {
				t.Errorf("%s: status %d: %s", alg, rec.Code, rec.Body)
			}
		}(i)
	}
	wg.Wait()
}

// syncBuffer is a mutex-guarded bytes.Buffer for concurrent log writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func BenchmarkScheduleRequest(b *testing.B) {
	srv, err := New(Config{Metrics: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	var buf bytes.Buffer
	if err := workflows.PaperExample().WriteJSON(&buf); err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(ScheduleRequest{Algorithm: "hdlts", Problem: buf.Bytes()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}

// newJSONLogger builds a slog JSON logger for tests.
func newJSONLogger(w *syncBuffer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}
