package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"hdlts/internal/jobs"
	"hdlts/internal/obs"
	"hdlts/internal/sched"
)

// JobSubmitRequest is the POST /v1/jobs wire request. Exactly one form:
// a single job inline (algorithm + problem, like /v1/schedule), or a
// batch under "jobs".
type JobSubmitRequest struct {
	// Algorithm is a case-insensitive registry name; empty selects "hdlts".
	Algorithm string `json:"algorithm,omitempty"`
	// Problem is the workflow + platform + cost matrix (single form).
	Problem json.RawMessage `json:"problem,omitempty"`
	// Jobs is the batch form: several submissions admitted atomically with
	// respect to validation (one bad item rejects the whole batch).
	Jobs []JobSubmitItem `json:"jobs,omitempty"`
}

// JobSubmitItem is one entry of a batch submission.
type JobSubmitItem struct {
	Algorithm string          `json:"algorithm,omitempty"`
	Problem   json.RawMessage `json:"problem"`
}

// JobView is the wire form of one job. The stored problem is omitted —
// clients already have it, and sweep-sized problems would bloat every
// status poll.
type JobView struct {
	ID        string `json:"id"`
	Algorithm string `json:"algorithm"`
	Hash      string `json:"hash"`
	// TraceID is the correlation ID of the submitting request (its
	// X-Request-ID); GET /v1/jobs/{id}/trace replays the matching trace.
	TraceID     string `json:"trace_id,omitempty"`
	State       string `json:"state"`
	Attempts    int    `json:"attempts"`
	MaxAttempts int    `json:"max_attempts"`
	// CacheHit marks a job answered from the result cache without solving.
	CacheHit        bool   `json:"cache_hit,omitempty"`
	CancelRequested bool   `json:"cancel_requested,omitempty"`
	Error           string `json:"error,omitempty"`
	// Result is the ScheduleResponse (minus events) once the job is done.
	Result      json.RawMessage `json:"result,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
}

// JobBatchResponse answers a batch submission: one entry per input, in
// order. Entries are independent — some may be admitted while others are
// refused for saturation (error + status set instead of job).
type JobBatchResponse struct {
	Jobs []JobBatchItem `json:"jobs"`
}

// JobBatchItem is one batch submission outcome.
type JobBatchItem struct {
	Job    *JobView `json:"job,omitempty"`
	Error  string   `json:"error,omitempty"`
	Status int      `json:"status,omitempty"`
}

// JobListResponse is one GET /v1/jobs page.
type JobListResponse struct {
	Jobs   []*JobView `json:"jobs"`
	Total  int        `json:"total"`
	Offset int        `json:"offset"`
	Limit  int        `json:"limit"`
}

// jobView converts a stored job to its wire form.
func jobView(j *jobs.Job) *JobView {
	v := &JobView{
		ID:              j.ID,
		Algorithm:       j.Algorithm,
		Hash:            j.Hash,
		TraceID:         j.TraceID,
		State:           string(j.State),
		Attempts:        j.Attempts,
		MaxAttempts:     j.MaxAttempts,
		CacheHit:        j.CacheHit,
		CancelRequested: j.CancelRequested,
		Error:           j.Error,
		Result:          j.Result,
		SubmittedAt:     j.SubmittedAt,
	}
	if !j.StartedAt.IsZero() {
		t := j.StartedAt
		v.StartedAt = &t
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt
		v.FinishedAt = &t
	}
	return v
}

// jobSubmission is one validated, hash-addressed submission ready for the
// manager.
type jobSubmission struct {
	algorithm string // canonical registry name
	hash      string
	canonical json.RawMessage
}

// prepareSubmission validates one (algorithm, problem) pair all the way
// down — registry lookup, full problem validation, canonical serialisation
// — and returns its content address. Every failure is a client error.
func (s *Server) prepareSubmission(algorithm string, problem json.RawMessage) (*jobSubmission, error) {
	name := algorithm
	if name == "" {
		name = "hdlts"
	}
	alg, err := s.cfg.Lookup(name)
	if err != nil {
		return nil, err
	}
	pr, err := decodeProblem(problem)
	if err != nil {
		return nil, err
	}
	canon, err := CanonicalProblemJSON(pr)
	if err != nil {
		return nil, err
	}
	return &jobSubmission{
		algorithm: alg.Name(),
		hash:      hashOf(alg.Name(), canon),
		canonical: canon,
	}, nil
}

// runJobFunc is the jobs.RunFunc the manager executes: the same
// schedule → validate → evaluate → encode pipeline as /v1/schedule. The
// ctx carries the job's persisted trace ID; the run re-adopts it into the
// trace ring so spans and decision events land under the original
// correlation ID — even when the job is a recovered re-run after a
// restart. The problem is the stored canonical serialisation, so
// recovered jobs re-run identically.
func (s *Server) runJobFunc(ctx context.Context, algorithm string, problem json.RawMessage) (json.RawMessage, error) {
	if tid := obs.TraceIDFrom(ctx); tid != "" {
		s.traces.Start(tid)
		ctx = obs.WithTraceStore(ctx, s.traces)
	}
	ctx, run := obs.StartSpan(ctx, "job.run", obs.KeyAlg, algorithm)
	defer run.Finish()
	alg, err := s.cfg.Lookup(algorithm)
	if err != nil {
		return nil, err
	}
	pr, err := sched.ReadProblemJSON(bytes.NewReader(problem))
	if err != nil {
		return nil, err
	}
	out := s.runSchedule(ctx, alg, pr, false, false)
	if out.err != nil {
		return nil, out.err
	}
	return json.Marshal(out.resp)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.jobError(w, http.StatusServiceUnavailable, "drain",
			errors.New("server is shutting down"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req JobSubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.jobError(w, http.StatusRequestEntityTooLarge, "body_too_large", err)
			return
		}
		s.jobError(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("decode request: %w", err))
		return
	}
	single := len(req.Problem) > 0
	if single == (len(req.Jobs) > 0) {
		s.jobError(w, http.StatusBadRequest, "bad_request",
			errors.New(`request needs exactly one of "problem" or "jobs"`))
		return
	}
	items := req.Jobs
	if single {
		items = []JobSubmitItem{{Algorithm: req.Algorithm, Problem: req.Problem}}
	}
	// Validate the whole batch before admitting anything: one malformed
	// item rejects the request with nothing enqueued.
	subs := make([]*jobSubmission, len(items))
	for i, it := range items {
		sub, err := s.prepareSubmission(it.Algorithm, it.Problem)
		if err != nil {
			s.jobError(w, http.StatusBadRequest, "bad_request",
				fmt.Errorf("job %d: %w", i, err))
			return
		}
		subs[i] = sub
	}

	batch := JobBatchResponse{Jobs: make([]JobBatchItem, len(subs))}
	saturated := false
	traceID := obs.TraceIDFrom(r.Context())
	for i, sub := range subs {
		j, err := s.jobs.SubmitTraced(sub.algorithm, sub.hash, traceID, sub.canonical)
		switch {
		case errors.Is(err, jobs.ErrSaturated):
			saturated = true
			s.cfg.Metrics.Counter(metricJobsErrors, "reason", "saturated").Inc()
			batch.Jobs[i] = JobBatchItem{
				Error:  fmt.Sprintf("job queue full (%d deep)", s.jobs.QueueCap()),
				Status: http.StatusTooManyRequests,
			}
		case err != nil:
			s.jobError(w, http.StatusServiceUnavailable, "submit", err)
			return
		default:
			batch.Jobs[i] = JobBatchItem{Job: jobView(j)}
		}
	}
	if saturated {
		w.Header().Set("Retry-After", strconv.Itoa(
			s.retryAfterSeconds(subs[0].algorithm, s.jobs.QueueLen(), s.jobs.Workers())))
	}
	switch {
	case single && saturated:
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error: batch.Jobs[0].Error, Status: http.StatusTooManyRequests})
	case single:
		status := http.StatusAccepted
		if batch.Jobs[0].Job.State == string(jobs.Done) {
			status = http.StatusOK // answered from the result cache
		}
		writeJSON(w, status, batch.Jobs[0].Job)
	case saturated:
		writeJSON(w, http.StatusTooManyRequests, batch)
	default:
		writeJSON(w, http.StatusAccepted, batch)
	}
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.jobError(w, http.StatusNotFound, "not_found", err)
		return
	}
	writeJSON(w, http.StatusOK, jobView(j))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := jobs.State(q.Get("state"))
	if state != "" && !state.Valid() {
		s.jobError(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("unknown state %q (want queued|running|done|failed|cancelled)", state))
		return
	}
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil || offset < 0 {
		s.jobError(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("bad offset %q", q.Get("offset")))
		return
	}
	limit, err := queryInt(q.Get("limit"), 50)
	if err != nil || limit < 1 || limit > 500 {
		s.jobError(w, http.StatusBadRequest, "bad_request",
			fmt.Errorf("bad limit %q (want 1..500)", q.Get("limit")))
		return
	}
	page, total := s.jobs.List(state, offset, limit)
	views := make([]*JobView, len(page))
	for i, j := range page {
		views[i] = jobView(j)
	}
	writeJSON(w, http.StatusOK, JobListResponse{
		Jobs: views, Total: total, Offset: offset, Limit: limit,
	})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		s.jobError(w, http.StatusNotFound, "not_found", err)
	case errors.Is(err, jobs.ErrFinished):
		s.jobError(w, http.StatusConflict, "finished", err)
	case err != nil:
		s.jobError(w, http.StatusInternalServerError, "cancel", err)
	default:
		writeJSON(w, http.StatusOK, jobView(j))
	}
}

// jobError answers one failed jobs-API request and bumps the matching
// error counter.
func (s *Server) jobError(w http.ResponseWriter, status int, reason string, err error) {
	s.cfg.Metrics.Counter(metricJobsErrors, "reason", reason).Inc()
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Status: status})
}

// queryInt parses an optional integer query parameter.
func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

// retryAfterSeconds derives a Retry-After value from observed behaviour
// instead of a fixed constant: the mean recorded latency of the saturated
// algorithm (hdltsd_schedule_seconds) times the work queued ahead of a
// hypothetical retry, divided across the workers, rounded up and clamped
// to [1, 60]. Before any observation it falls back to 1s.
func (s *Server) retryAfterSeconds(alg string, backlog, workers int) int {
	mean := s.cfg.Metrics.Histogram(metricScheduleSeconds, "alg", alg).Mean()
	if mean <= 0 {
		return 1
	}
	if workers < 1 {
		workers = 1
	}
	secs := int(math.Ceil(mean * float64(backlog+1) / float64(workers)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}
