// Package server turns the scheduling library into a long-running
// HTTP/JSON service. POST /v1/schedule accepts a problem in the same JSON
// form the CLI tools exchange, runs any registered algorithm on a bounded
// worker pool, and returns the schedule plus the paper's metrics;
// GET /healthz, /readyz, and /metrics expose liveness, drain state, and
// the obs metrics registry in Prometheus text form.
//
// The handler is production-shaped rather than a demo mux: admission is
// non-blocking (a full queue answers 429 immediately), request bodies are
// size-capped, every schedule request carries a deadline, decision events
// can be captured per request via a request-scoped Tracer, and shutdown
// drains — every admitted request completes before Shutdown returns.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"hdlts/internal/core"
	"hdlts/internal/exec"
	"hdlts/internal/explain"
	"hdlts/internal/jobs"
	"hdlts/internal/metrics"
	"hdlts/internal/obs"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
)

// Config tunes a Server. The zero value is served with sensible defaults,
// so server.New(server.Config{}) is a working daemon handler.
type Config struct {
	// Workers is the number of concurrent scheduling workers
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the backlog of admitted-but-not-running requests;
	// beyond it the server answers 429 (default 64).
	QueueDepth int
	// RequestTimeout caps queue wait plus scheduling per request; on expiry
	// the client gets 504 (default 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes caps the request body; larger bodies get 413
	// (default 8 MiB).
	MaxBodyBytes int64
	// Metrics receives request counters, the in-flight gauge, queue depth,
	// and per-algorithm latency histograms (default obs.Default()).
	Metrics *obs.Registry
	// AccessLog, when non-nil, receives one structured record per request.
	AccessLog *slog.Logger
	// Lookup resolves algorithm names (default registry.Get). Override to
	// serve custom algorithms or to stub scheduling in tests.
	Lookup func(name string) (sched.Algorithm, error)
	// TraceBuffer bounds how many request traces — span trees plus decision
	// events, keyed by X-Request-ID — the in-memory ring retains for
	// GET /v1/jobs/{id}/trace and GET /v1/traces/{id} (default 512).
	TraceBuffer int
	// TraceSample records one in every N scheduling requests into the trace
	// ring (default 1 = every request); raise it to shed tracing cost at
	// high QPS. Request-ID adoption and echo are unaffected.
	TraceSample int
	// Jobs tunes the asynchronous job subsystem behind POST /v1/jobs:
	// store directory (empty = memory-only), workers, queue depth, retry
	// policy, TTL, cache size. Metrics and Run are wired by the server and
	// need not be set.
	Jobs jobs.Config
	// Workflows tunes the live execution engine behind POST /v1/workflows:
	// store directory (empty = memory-only), step runner, overdue tick.
	// Metrics, Traces, and Stream are wired by the server and need not be
	// set.
	Workflows exec.Config
	// StreamBuffer is the per-subscriber event buffer of the SSE endpoints;
	// a subscriber that falls this many events behind loses the oldest and
	// receives a stream.drop marker (default 256).
	StreamBuffer int
	// StreamHeartbeat is the keepalive interval of idle SSE streams — a
	// comment line that keeps proxies from severing the connection
	// (default 15s).
	StreamHeartbeat time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Metrics == nil {
		c.Metrics = obs.Default()
	}
	if c.Lookup == nil {
		c.Lookup = registry.Get
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = 512
	}
	if c.TraceSample <= 0 {
		c.TraceSample = 1
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = obs.DefaultStreamBuffer
	}
	if c.StreamHeartbeat <= 0 {
		c.StreamHeartbeat = 15 * time.Second
	}
	return c
}

// Metric series registered by this package.
const (
	metricHTTPRequests    = "hdltsd_http_requests_total"
	metricHTTPSeconds     = "hdltsd_http_request_seconds"
	metricHTTPInFlight    = "hdltsd_http_in_flight"
	metricQueueDepth      = "hdltsd_queue_depth"
	metricScheduleSeconds = "hdltsd_schedule_seconds"
	metricScheduleErrors  = "hdltsd_schedule_errors_total"
	metricJobsErrors      = "hdltsd_jobs_errors_total"
	metricWorkflowErrors  = "hdltsd_workflow_errors_total"
	metricTraceErrors     = "hdltsd_trace_errors_total"
)

// Server is the daemon's http.Handler. Create one with New, embed it in any
// http.Server (or mount it under a prefix), and call Shutdown to drain.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	pool   *pool
	jobs   *jobs.Manager
	wfs    *exec.Engine
	traces *obs.TraceStore
	stream *obs.Hub
	build  obs.BuildInfo

	draining chan struct{} // closed by Drain

	inFlight   *obs.Gauge
	queueDepth *obs.Gauge
}

// New builds a ready-to-serve Server from cfg. The only failure mode is
// the job store: an unreadable/corrupt -jobs-dir must stop the daemon at
// startup, not at the first submission.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	// Request latencies span four orders of magnitude (a µs-scale cached
	// job lookup to a seconds-scale 100k-task solve); the default decade
	// buckets cannot resolve the low end, so both daemon histograms use
	// log-spaced buckets from 10µs to 10s.
	cfg.Metrics.SetBuckets(metricHTTPSeconds, obs.ExpBuckets(1e-5, 10, 3))
	cfg.Metrics.SetBuckets(metricScheduleSeconds, obs.ExpBuckets(1e-5, 10, 3))
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		traces:     obs.NewTraceStore(cfg.TraceBuffer, cfg.TraceSample),
		build:      obs.RegisterBuildInfo(cfg.Metrics),
		draining:   make(chan struct{}),
		inFlight:   cfg.Metrics.Gauge(metricHTTPInFlight),
		queueDepth: cfg.Metrics.Gauge(metricQueueDepth),
	}
	// The live stream: every finished span and decision event in the trace
	// ring republishes on the hub, and the workflow engine publishes its
	// transitions directly — the SSE endpoints fan it out.
	s.stream = obs.NewHub(cfg.Metrics, cfg.StreamBuffer)
	s.traces.AttachHub(s.stream)
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.queueDepth)
	jcfg := cfg.Jobs
	jcfg.Metrics = cfg.Metrics
	jcfg.Run = s.runJobFunc
	mgr, err := jobs.Open(jcfg)
	if err != nil {
		s.pool.close()
		return nil, err
	}
	s.jobs = mgr
	wcfg := cfg.Workflows
	wcfg.Metrics = cfg.Metrics
	wcfg.Traces = s.traces
	wcfg.Stream = s.stream
	eng, err := exec.Open(wcfg)
	if err != nil {
		s.pool.close()
		//lint:hdltsvet-ignore ctxflow constructor unwind has no caller context; bound the job-manager teardown locally
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Close(cctx)
		return nil, err
	}
	s.wfs = eng
	s.mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("GET /v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("POST /v1/workflows", s.handleWorkflowSubmit)
	s.mux.HandleFunc("GET /v1/workflows", s.handleWorkflowList)
	s.mux.HandleFunc("GET /v1/workflows/{id}", s.handleWorkflowGet)
	s.mux.HandleFunc("DELETE /v1/workflows/{id}", s.handleWorkflowCancel)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/workflows/{id}/events", s.handleWorkflowEvents)
	s.mux.HandleFunc("GET /v1/workflows/{id}/explain", s.handleWorkflowExplain)
	s.mux.HandleFunc("GET /v1/workflows/{id}/gantt.svg", s.handleWorkflowGantt)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceGet)
	s.mux.HandleFunc("GET /v1/version", s.handleVersion)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Jobs exposes the job manager (facade re-export and tests).
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Workflows exposes the execution engine (facade re-export and tests).
func (s *Server) Workflows() *exec.Engine { return s.wfs }

// ServeHTTP implements http.Handler with request correlation, accounting,
// and access logging around the route table. Every response — including
// 429/504/4xx error paths — echoes the request's correlation ID in
// X-Request-ID: adopted from the client's header when well-formed,
// generated otherwise. The same ID is the trace ID for the span tree and
// decision events the scheduling paths record, the request_id of the
// access-log line, and the trace_id persisted on submitted jobs.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.inFlight.Inc()
	defer s.inFlight.Dec()
	reqID := requestID(r)
	w.Header().Set("X-Request-ID", reqID)
	ctx := obs.WithTraceStore(obs.WithTraceID(r.Context(), reqID), s.traces)
	var root *obs.Span
	if tracedRoute(r) {
		s.traces.Start(reqID)
		ctx, root = obs.StartSpan(ctx, "http.request",
			obs.KeyMethod, r.Method, obs.KeyPath, r.URL.Path)
	}
	r = r.WithContext(ctx)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	if root != nil {
		root.SetAttr(obs.KeyStatus, strconv.Itoa(rec.status))
		root.Finish()
	}
	elapsed := time.Since(start)
	s.cfg.Metrics.Counter(metricHTTPRequests,
		"path", r.URL.Path, "code", fmt.Sprint(rec.status)).Inc()
	s.cfg.Metrics.Histogram(metricHTTPSeconds, "path", r.URL.Path).
		Observe(elapsed.Seconds())
	if s.cfg.AccessLog != nil {
		s.cfg.AccessLog.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration_ms", float64(elapsed.Microseconds())/1000,
			"remote", r.RemoteAddr,
			"request_id", reqID,
		)
	}
}

// requestID adopts the client's X-Request-ID when well-formed and
// generates a fresh ID otherwise, so the correlation chain never depends
// on client cooperation.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); validRequestID(id) {
		return id
	}
	return obs.NewTraceID()
}

// validRequestID accepts 1–128 characters of [A-Za-z0-9._:-] — enough for
// every common request-ID convention (UUIDs, ULIDs, hex) while keeping
// log lines and label values injection-free.
func validRequestID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		switch c := id[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return false
		}
	}
	return true
}

// tracedRoute reports whether the request does scheduling work worth a
// trace-ring entry; probes and scrapes are correlated (header + log) but
// not recorded.
func tracedRoute(r *http.Request) bool {
	return r.Method == http.MethodPost &&
		(r.URL.Path == "/v1/schedule" || r.URL.Path == "/v1/jobs" ||
			r.URL.Path == "/v1/workflows")
}

// Drain flips /readyz to 503 and refuses new schedule requests, without
// waiting for in-flight work. Call it first on SIGTERM so load balancers
// stop routing here while the http.Server drains.
func (s *Server) Drain() {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
}

// Shutdown drains and then waits for every admitted request to finish —
// and for job workers to commit their current job — or for ctx to expire.
// After Shutdown the Server answers every schedule request with 503.
// Unfinished jobs stay in the durable store and are recovered by the next
// daemon with the same jobs directory.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	done := make(chan struct{})
	go func() {
		s.pool.close()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
	// Workflow runs, like jobs, survive in their durable store: Close kills
	// step commands but leaves unfinished workflows resumable.
	jerr := s.jobs.Close(ctx)
	if werr := s.wfs.Close(ctx); werr != nil {
		return werr
	}
	return jerr
}

// isDraining reports whether Drain has been called.
func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// scheduleOutcome carries one worker result back to its handler.
type scheduleOutcome struct {
	resp   *ScheduleResponse
	status int
	err    error
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.scheduleError(w, http.StatusServiceUnavailable, "drain",
			errors.New("server is shutting down"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, pr, err := decodeScheduleRequest(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.scheduleError(w, http.StatusRequestEntityTooLarge, "body_too_large", err)
			return
		}
		s.scheduleError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	name := req.Algorithm
	if name == "" {
		name = "hdlts"
	}
	alg, err := s.cfg.Lookup(name)
	if err != nil {
		s.scheduleError(w, http.StatusBadRequest, "unknown_algorithm", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	// The worker traces under the request's context values (trace ID and
	// store survive handler return and cancellation) but not its deadline:
	// an admitted request runs to completion even when the client timed out.
	rctx := r.Context()
	// The buffer lets the worker complete and move on even when this
	// handler has already given up on the deadline.
	done := make(chan scheduleOutcome, 1)
	explain := r.URL.Query().Get("explain") == "1"
	admitted := s.pool.trySubmit(func() {
		done <- s.runSchedule(rctx, alg, pr, req.Trace, explain)
	})
	if !admitted {
		if s.isDraining() {
			s.scheduleError(w, http.StatusServiceUnavailable, "drain",
				errors.New("server is shutting down"))
			return
		}
		w.Header().Set("Retry-After", strconv.Itoa(
			s.retryAfterSeconds(alg.Name(), s.cfg.QueueDepth, s.cfg.Workers)))
		s.scheduleError(w, http.StatusTooManyRequests, "saturated",
			fmt.Errorf("queue full (%d queued, %d workers)", s.cfg.QueueDepth, s.cfg.Workers))
		return
	}
	select {
	case out := <-done:
		if out.err != nil {
			s.scheduleError(w, out.status, "schedule", out.err)
			return
		}
		writeJSON(w, http.StatusOK, out.resp)
	case <-ctx.Done():
		s.scheduleError(w, http.StatusGatewayTimeout, "timeout",
			fmt.Errorf("request exceeded %s: %w", s.cfg.RequestTimeout, ctx.Err()))
	}
}

// runSchedule executes one admitted request inside a worker: schedule,
// validate, evaluate, and encode, with the per-algorithm latency histogram
// observing only time spent here (queue wait is visible as the gap to
// hdltsd_http_request_seconds). ctx carries the request's trace identity:
// when the trace is retained, each phase records a span and the
// scheduler's decision events land in the trace ring — the replayable
// "why was this mapping chosen" record behind the trace endpoints.
func (s *Server) runSchedule(ctx context.Context, alg sched.Algorithm, pr *sched.Problem, trace, explainReq bool) scheduleOutcome {
	ctx, run := obs.StartSpan(ctx, "schedule.run", obs.KeyAlg, alg.Name())
	defer run.Finish()
	start := time.Now()
	prA := pr
	var sink *obs.JSONLSink
	var events bytes.Buffer
	var tracers []obs.Tracer
	if trace {
		sink = obs.NewJSONL(&events)
		tracers = append(tracers, sink)
	}
	if st := obs.TraceStoreFrom(ctx); st != nil {
		tracers = append(tracers, st.Tracer(obs.TraceIDFrom(ctx)))
	}
	if tr := obs.Multi(tracers...); tr != obs.Nop {
		prA = pr.WithTracer(obs.Named(tr, alg.Name()))
	}
	_, solve := obs.StartSpan(ctx, "schedule.solve")
	var sc *sched.Schedule
	var decisions []core.Decision
	var err error
	// pprof goroutine labels make CPU profiles from the -debug-addr
	// listener attribute solve samples to {algorithm, phase}; solver-
	// internal Profile.Do calls refine phase further while they run.
	obs.WithPprofLabels(ctx, alg.Name(), "solve", func(context.Context) {
		if ex, ok := alg.(explain.Explainer); explainReq && ok {
			// Explain solves run the capture engine: same schedule bytes,
			// but decision events bypass the trace ring (the rationale lands
			// in the report instead).
			sc, decisions, err = ex.ScheduleExplained(prA)
		} else {
			sc, err = alg.Schedule(prA)
		}
	})
	solve.Finish()
	if err != nil {
		return scheduleOutcome{status: http.StatusInternalServerError,
			err: fmt.Errorf("%s: %w", alg.Name(), err)}
	}
	_, validate := obs.StartSpan(ctx, "schedule.validate")
	err = sc.Validate()
	validate.Finish()
	if err != nil {
		return scheduleOutcome{status: http.StatusInternalServerError,
			err: fmt.Errorf("%s produced an invalid schedule: %w", alg.Name(), err)}
	}
	_, eval := obs.StartSpan(ctx, "schedule.evaluate")
	res, err := metrics.Evaluate(alg.Name(), sc)
	eval.Finish()
	if err != nil {
		// Degenerate but decodable problems (e.g. an all-zero critical
		// path) schedule fine yet have no defined SLR: the data, not the
		// server, is at fault.
		return scheduleOutcome{status: http.StatusUnprocessableEntity,
			err: fmt.Errorf("evaluate: %w", err)}
	}
	_, encode := obs.StartSpan(ctx, "schedule.encode")
	raw, err := encodeSchedule(sc, alg.Name())
	encode.Finish()
	if err != nil {
		return scheduleOutcome{status: http.StatusInternalServerError, err: err}
	}
	elapsed := time.Since(start).Seconds()
	s.cfg.Metrics.Histogram(metricScheduleSeconds, "alg", alg.Name()).Observe(elapsed)
	resp := &ScheduleResponse{
		Algorithm:      res.Algorithm,
		Tasks:          pr.NumTasks(),
		Procs:          pr.NumProcs(),
		Makespan:       res.Makespan,
		SLR:            res.SLR,
		Speedup:        res.Speedup,
		Efficiency:     res.Efficiency,
		Duplicates:     res.Duplicates,
		Schedule:       raw,
		ElapsedSeconds: elapsed,
	}
	if sink != nil {
		if err := sink.Flush(); err != nil {
			return scheduleOutcome{status: http.StatusInternalServerError,
				err: fmt.Errorf("event stream: %w", err)}
		}
		resp.Events = splitJSONL(events.Bytes())
	}
	if explainReq {
		_, ex := obs.StartSpan(ctx, "schedule.explain")
		rep, rerr := explain.Schedule(sc, alg.Name(), decisions)
		ex.Finish()
		if rerr != nil {
			return scheduleOutcome{status: http.StatusInternalServerError,
				err: fmt.Errorf("explain: %w", rerr)}
		}
		raw, rerr := json.Marshal(rep)
		if rerr != nil {
			return scheduleOutcome{status: http.StatusInternalServerError,
				err: fmt.Errorf("explain: %w", rerr)}
		}
		resp.Explain = raw
	}
	return scheduleOutcome{resp: resp, status: http.StatusOK}
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{
		"paper":    registry.Names(),
		"extended": registry.ExtendedNames(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.cfg.Metrics.WritePrometheus(w); err != nil && s.cfg.AccessLog != nil {
		s.cfg.AccessLog.Error("metrics exposition failed", "err", err)
	}
}

// scheduleError answers one failed schedule request and bumps the matching
// error counter.
func (s *Server) scheduleError(w http.ResponseWriter, status int, reason string, err error) {
	s.cfg.Metrics.Counter(metricScheduleErrors, "reason", reason).Inc()
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Status: status})
}

// writeJSON renders v as the complete response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// statusRecorder captures the status code and body size for accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// Unwrap exposes the underlying writer so http.NewResponseController can
// reach Flush — the SSE endpoints depend on per-event flushing through
// this wrapper.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }
