package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"hdlts/internal/exec"
)

// The workflow endpoints are the execution front door: POST /v1/workflows
// accepts a declarative YAML workflow definition (not JSON — the body is
// the same file hdltsrun takes), plans it with HDLTS, and starts live
// execution under the request's trace ID; GET polls progress including
// per-step state, observed durations, and the re-plan count; DELETE
// cancels. The engine itself lives in internal/exec — this file only
// adapts HTTP to it.

// WorkflowView is the wire form of a workflow record. It mirrors
// exec.Record minus the embedded definition: clients that submitted the
// YAML already have it, and step commands may embed secrets not worth
// echoing on every poll.
type WorkflowView struct {
	ID        string            `json:"id"`
	Name      string            `json:"name"`
	State     exec.State        `json:"state"`
	TraceID   string            `json:"trace_id,omitempty"`
	Error     string            `json:"error,omitempty"`
	Steps     []exec.StepStatus `json:"steps"`
	ObservedW []exec.WEntry     `json:"observed_w,omitempty"`
	Replans   int               `json:"replans"`
	Makespan  float64           `json:"makespan_seconds,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// WorkflowListResponse answers GET /v1/workflows.
type WorkflowListResponse struct {
	Workflows []*WorkflowView `json:"workflows"`
	Total     int             `json:"total"`
}

func workflowView(r *exec.Record) *WorkflowView {
	v := &WorkflowView{
		ID:          r.ID,
		Name:        r.Name,
		State:       r.State,
		TraceID:     r.TraceID,
		Error:       r.Error,
		Steps:       r.Steps,
		ObservedW:   r.ObservedW,
		Replans:     r.Replans,
		Makespan:    r.MakespanSeconds,
		SubmittedAt: r.SubmittedAt,
	}
	if !r.StartedAt.IsZero() {
		v.StartedAt = &r.StartedAt
	}
	if !r.FinishedAt.IsZero() {
		v.FinishedAt = &r.FinishedAt
	}
	return v
}

func (s *Server) handleWorkflowSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		s.workflowError(w, http.StatusServiceUnavailable, "drain",
			errors.New("server is shutting down"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.workflowError(w, http.StatusRequestEntityTooLarge, "body_too_large", err)
			return
		}
		s.workflowError(w, http.StatusBadRequest, "bad_request", err)
		return
	}
	wf, err := exec.DecodeWorkflow(body)
	if err != nil {
		s.workflowError(w, http.StatusBadRequest, "bad_workflow", err)
		return
	}
	rec, err := s.wfs.Submit(r.Context(), wf)
	if err != nil {
		if errors.Is(err, exec.ErrClosed) {
			s.workflowError(w, http.StatusServiceUnavailable, "drain", err)
			return
		}
		if errors.Is(err, exec.ErrSaturated) {
			s.workflowError(w, http.StatusTooManyRequests, "saturated", err)
			return
		}
		s.workflowError(w, http.StatusInternalServerError, "plan", err)
		return
	}
	writeJSON(w, http.StatusAccepted, workflowView(rec))
}

func (s *Server) handleWorkflowGet(w http.ResponseWriter, r *http.Request) {
	rec, err := s.wfs.Get(r.PathValue("id"))
	if err != nil {
		s.workflowError(w, http.StatusNotFound, "not_found", err)
		return
	}
	writeJSON(w, http.StatusOK, workflowView(rec))
}

func (s *Server) handleWorkflowList(w http.ResponseWriter, _ *http.Request) {
	recs := s.wfs.List()
	resp := &WorkflowListResponse{
		Workflows: make([]*WorkflowView, 0, len(recs)),
		Total:     len(recs),
	}
	for _, r := range recs {
		resp.Workflows = append(resp.Workflows, workflowView(r))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleWorkflowCancel(w http.ResponseWriter, r *http.Request) {
	rec, err := s.wfs.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, exec.ErrNotFound):
		s.workflowError(w, http.StatusNotFound, "not_found", err)
		return
	case errors.Is(err, exec.ErrFinished):
		s.workflowError(w, http.StatusConflict, "finished", err)
		return
	case err != nil:
		s.workflowError(w, http.StatusInternalServerError, "cancel", err)
		return
	}
	writeJSON(w, http.StatusOK, workflowView(rec))
}

// workflowError answers one failed workflow request and bumps the matching
// error counter.
func (s *Server) workflowError(w http.ResponseWriter, status int, reason string, err error) {
	s.cfg.Metrics.Counter(metricWorkflowErrors, "reason", reason).Inc()
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf("workflow: %v", err), Status: status})
}
