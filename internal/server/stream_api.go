package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"hdlts/internal/obs"
)

// The SSE endpoints are the live half of the observability surface:
// GET /v1/events streams every hub event daemon-wide (filterable by kind
// and trace ID), GET /v1/workflows/{id}/events streams one workflow's
// transitions interleaved with the spans and decision events of its trace.
// Streams are served directly in the handler goroutine — they hold a
// connection, not a scheduling worker — with periodic keepalive comments so
// idle proxies don't sever them, and they end cleanly on client disconnect
// or server drain. A subscriber that attaches mid-run first receives a
// stream.skip marker counting what it missed; one that falls behind its
// buffer receives inline stream.drop markers.

// kindFilter parses the comma-separated ?kind= list into a filter set.
func kindFilter(r *http.Request) map[string]bool {
	raw := r.URL.Query().Get("kind")
	if raw == "" {
		return nil
	}
	kinds := make(map[string]bool)
	for _, k := range strings.Split(raw, ",") {
		if k = strings.TrimSpace(k); k != "" {
			kinds[k] = true
		}
	}
	if len(kinds) == 0 {
		return nil
	}
	return kinds
}

// handleEvents serves GET /v1/events: the daemon-wide live stream,
// filterable by ?kind=span,decision,workflow.replan,... and ?trace=<id>.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	filter := obs.StreamFilter{
		Kinds:   kindFilter(r),
		TraceID: r.URL.Query().Get("trace"),
	}
	s.serveStream(w, r, filter)
}

// handleWorkflowEvents serves GET /v1/workflows/{id}/events: one
// workflow's live feed — the engine's transitions (stamped with the
// workflow ID) interleaved with the spans and solver decisions of its
// trace (stamped with the submitting request's trace ID).
func (s *Server) handleWorkflowEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, err := s.wfs.Get(id)
	if err != nil {
		s.workflowError(w, http.StatusNotFound, "not_found", err)
		return
	}
	filter := obs.StreamFilter{
		Kinds:    kindFilter(r),
		Workflow: id,
		TraceID:  rec.TraceID,
	}
	s.serveStream(w, r, filter)
}

// serveStream is the shared SSE loop: subscribe, emit the skip marker,
// then relay events (with inline drop markers) and heartbeats until the
// client disconnects or the server drains.
func (s *Server) serveStream(w http.ResponseWriter, r *http.Request, filter obs.StreamFilter) {
	if s.isDraining() {
		s.workflowError(w, http.StatusServiceUnavailable, "drain",
			errors.New("server is shutting down"))
		return
	}
	rc := http.NewResponseController(w)
	sub := s.stream.Subscribe(filter, s.cfg.StreamBuffer)
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // nginx: do not buffer this stream
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev obs.StreamEvent) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data); err != nil {
			return err
		}
		return rc.Flush()
	}

	// A mid-run subscriber learns immediately how much of the stream it
	// missed; a fresh one gets a comment so the headers flush either way.
	if sub.SkippedBefore > 0 {
		if writeEvent(obs.StreamEvent{
			Kind:     obs.KindStreamSkip,
			Workflow: filter.Workflow,
			TraceID:  filter.TraceID,
			Proc:     -1,
			Skipped:  sub.SkippedBefore,
		}) != nil {
			return
		}
	} else {
		if _, err := fmt.Fprint(w, ": stream open\n\n"); err != nil {
			return
		}
		if rc.Flush() != nil {
			return
		}
	}

	heartbeat := time.NewTicker(s.cfg.StreamHeartbeat)
	defer heartbeat.Stop()
	reported := uint64(0)
	for {
		select {
		case ev := <-sub.C():
			if d := sub.Dropped(); d > reported {
				if writeEvent(obs.StreamEvent{
					Kind:     obs.KindStreamDrop,
					Workflow: filter.Workflow,
					Proc:     -1,
					Skipped:  d - reported,
				}) != nil {
					return
				}
				reported = d
			}
			if writeEvent(ev) != nil {
				return
			}
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			if rc.Flush() != nil {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.draining:
			// Shutdown must not hang on open streams: say goodbye and end.
			_, _ = fmt.Fprint(w, ": draining\n\n")
			_ = rc.Flush()
			return
		}
	}
}
