package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"hdlts/internal/obs"
	"hdlts/internal/registry"
)

// TraceResponse is the wire form of one recorded trace: the span tree the
// serving path produced plus the scheduler's decision events, both stamped
// with the same trace ID the client saw in X-Request-ID. Events use the
// exact wire form of the streaming trace (ScheduleResponse.Events), so
// tooling written against one reads the other.
type TraceResponse struct {
	TraceID string      `json:"trace_id"`
	Spans   []*obs.Span `json:"spans"`
	// Events is the decision log (iteration / pv / commit records) in JSONL
	// record form.
	Events []json.RawMessage `json:"events,omitempty"`
	// SpansDropped / EventsDropped count records discarded once the
	// per-trace caps were hit; non-zero means the trace is a prefix.
	SpansDropped  int `json:"spans_dropped,omitempty"`
	EventsDropped int `json:"events_dropped,omitempty"`
	// JobID is set when the trace was reached via /v1/jobs/{id}/trace.
	JobID string `json:"job_id,omitempty"`
}

// traceResponse assembles the wire form of one stored trace.
func (s *Server) traceResponse(tr *obs.Trace) (*TraceResponse, error) {
	events, err := obs.EncodeEvents(tr.Events)
	if err != nil {
		return nil, fmt.Errorf("encode trace events: %w", err)
	}
	return &TraceResponse{
		TraceID:       tr.TraceID,
		Spans:         tr.Spans,
		Events:        events,
		SpansDropped:  tr.SpansDropped,
		EventsDropped: tr.EventsDropped,
	}, nil
}

// handleTraceGet serves GET /v1/traces/{id}: the trace recorded for one
// request ID, straight from the ring. 404 covers both "never existed" and
// "evicted or sampled out" — the ring is bounded by design.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.traces.Get(id)
	if !ok {
		s.traceError(w, http.StatusNotFound, "not_found",
			fmt.Errorf("no trace %q (evicted, sampled out, or never recorded)", id))
		return
	}
	resp, err := s.traceResponse(tr)
	if err != nil {
		s.traceError(w, http.StatusInternalServerError, "encode", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the job's persisted
// trace_id resolved against the trace ring, replaying the span tree and
// decision events of the request that submitted it (and, for recovered
// jobs, of the re-run — both record under the same ID).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.traceError(w, http.StatusNotFound, "not_found", err)
		return
	}
	if j.TraceID == "" {
		s.traceError(w, http.StatusNotFound, "no_trace",
			fmt.Errorf("job %s predates trace correlation (no trace_id recorded)", j.ID))
		return
	}
	tr, ok := s.traces.Get(j.TraceID)
	if !ok {
		s.traceError(w, http.StatusNotFound, "not_found",
			fmt.Errorf("trace %q for job %s not retained (evicted or sampled out)",
				j.TraceID, j.ID))
		return
	}
	resp, err := s.traceResponse(tr)
	if err != nil {
		s.traceError(w, http.StatusInternalServerError, "encode", err)
		return
	}
	resp.JobID = j.ID
	writeJSON(w, http.StatusOK, resp)
}

// VersionResponse answers GET /v1/version with the binary's identity —
// the same facts the hdltsd_build_info gauge and `hdltsd -version` report.
type VersionResponse struct {
	obs.BuildInfo
	// Algorithms is the paper algorithm registry, so one call identifies
	// both the binary and what it can run.
	Algorithms []string `json:"algorithms"`
}

func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, VersionResponse{
		BuildInfo:  s.build,
		Algorithms: registry.Names(),
	})
}

// traceError answers one failed trace/version request and bumps the
// matching error counter.
func (s *Server) traceError(w http.ResponseWriter, status int, reason string, err error) {
	s.cfg.Metrics.Counter(metricTraceErrors, "reason", reason).Inc()
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Status: status})
}
