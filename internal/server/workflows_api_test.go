package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hdlts/internal/exec"
	"hdlts/internal/obs"
)

// fastRunner pretends every step succeeds instantly — workflow API tests
// exercise the HTTP surface, not shell execution.
func fastRunner(ctx context.Context, step exec.Step) error { return ctx.Err() }

const wfYAML = `name: api-demo
procs: 2
steps:
  - name: a
    command: true
    cost: 0.001
  - name: b
    command: true
    depends: [a]
    cost: 0.001
`

func submitWorkflow(t *testing.T, srv *Server, yaml string) (*WorkflowView, *httptest.ResponseRecorder) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/workflows", strings.NewReader(yaml))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var v WorkflowView
	if rec.Code == http.StatusAccepted {
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatalf("decode workflow view: %v (body %s)", err, rec.Body)
		}
	}
	return &v, rec
}

func getWorkflow(t *testing.T, srv *Server, id string) (*WorkflowView, int) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/workflows/"+id, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	var v WorkflowView
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatalf("decode workflow view: %v", err)
		}
	}
	return &v, rec.Code
}

func waitWorkflowState(t *testing.T, srv *Server, id string, want exec.State) *WorkflowView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, code := getWorkflow(t, srv, id)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/workflows/%s = %d", id, code)
		}
		if v.State == want {
			return v
		}
		if v.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("workflow state = %v (error %q), want %v", v.State, v.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestWorkflowSubmitRunsToDone(t *testing.T) {
	srv := newTestServer(t, Config{Workflows: exec.Config{
		Runner: fastRunner, OverdueTick: 5 * time.Millisecond}})
	v, rec := submitWorkflow(t, srv, wfYAML)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submission status = %d, body %s", rec.Code, rec.Body)
	}
	if v.ID == "" || v.Name != "api-demo" || len(v.Steps) != 2 {
		t.Fatalf("submitted view = %+v", v)
	}
	if v.TraceID != rec.Header().Get("X-Request-ID") {
		t.Errorf("trace ID %q != request ID %q", v.TraceID, rec.Header().Get("X-Request-ID"))
	}
	final := waitWorkflowState(t, srv, v.ID, exec.Done)
	if len(final.ObservedW) != 2 {
		t.Errorf("observed W entries = %d, want 2", len(final.ObservedW))
	}
	if final.StartedAt == nil || final.FinishedAt == nil {
		t.Errorf("done workflow missing timestamps: %+v", final)
	}

	// The trace endpoint must show plan and execution under one ID.
	req := httptest.NewRequest(http.MethodGet, "/v1/traces/"+v.TraceID, nil)
	trec := httptest.NewRecorder()
	srv.ServeHTTP(trec, req)
	if trec.Code != http.StatusOK {
		t.Fatalf("GET /v1/traces/%s = %d", v.TraceID, trec.Code)
	}
	body := trec.Body.String()
	for _, span := range []string{"http.request", "workflow.plan", "workflow.run", "step.run"} {
		if !strings.Contains(body, span) {
			t.Errorf("trace missing %q span: %s", span, body)
		}
	}

	// And the list endpoint includes it.
	lreq := httptest.NewRequest(http.MethodGet, "/v1/workflows", nil)
	lrec := httptest.NewRecorder()
	srv.ServeHTTP(lrec, lreq)
	var list WorkflowListResponse
	if err := json.Unmarshal(lrec.Body.Bytes(), &list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if list.Total != 1 || len(list.Workflows) != 1 || list.Workflows[0].ID != v.ID {
		t.Errorf("list = %+v", list)
	}
}

func TestWorkflowSubmitRejectsBadYAML(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newTestServer(t, Config{Metrics: reg, Workflows: exec.Config{Runner: fastRunner}})
	cases := []string{
		"",
		"steps:\n  - name: a\n", // no command
		"steps:\n  - name: a\n    command: true\n    depends: [zz]\n",
		"steps:\n\t- tabbed\n",
	}
	for _, src := range cases {
		_, rec := submitWorkflow(t, srv, src)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("submit %q status = %d, want 400", src, rec.Code)
		}
	}
	if v := reg.Counter(metricWorkflowErrors, "reason", "bad_workflow").Value(); v != 4 {
		t.Errorf("bad_workflow counter = %v, want 4", v)
	}
}

func TestWorkflowGetUnknown(t *testing.T) {
	srv := newTestServer(t, Config{Workflows: exec.Config{Runner: fastRunner}})
	if _, code := getWorkflow(t, srv, "wf-nope"); code != http.StatusNotFound {
		t.Errorf("GET unknown workflow = %d, want 404", code)
	}
	req := httptest.NewRequest(http.MethodDelete, "/v1/workflows/wf-nope", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("DELETE unknown workflow = %d, want 404", rec.Code)
	}
}

func TestWorkflowCancelOverHTTP(t *testing.T) {
	blocker := func(ctx context.Context, step exec.Step) error {
		<-ctx.Done()
		return ctx.Err()
	}
	srv := newTestServer(t, Config{Workflows: exec.Config{
		Runner: blocker, OverdueTick: 5 * time.Millisecond}})
	v, rec := submitWorkflow(t, srv, "steps:\n  - name: stuck\n    command: sleep 600\n")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submission status = %d", rec.Code)
	}
	waitWorkflowState(t, srv, v.ID, exec.Running)
	req := httptest.NewRequest(http.MethodDelete, "/v1/workflows/"+v.ID, nil)
	drec := httptest.NewRecorder()
	srv.ServeHTTP(drec, req)
	if drec.Code != http.StatusOK {
		t.Fatalf("DELETE = %d, body %s", drec.Code, drec.Body)
	}
	var cancelled WorkflowView
	if err := json.Unmarshal(drec.Body.Bytes(), &cancelled); err != nil {
		t.Fatal(err)
	}
	if cancelled.State != exec.Cancelled {
		t.Errorf("state after DELETE = %v, want cancelled", cancelled.State)
	}
	// A second cancel conflicts.
	drec2 := httptest.NewRecorder()
	srv.ServeHTTP(drec2, httptest.NewRequest(http.MethodDelete, "/v1/workflows/"+v.ID, nil))
	if drec2.Code != http.StatusConflict {
		t.Errorf("second DELETE = %d, want 409", drec2.Code)
	}
}

func TestWorkflowSubmitSaturated(t *testing.T) {
	reg := obs.NewRegistry()
	blocker := func(ctx context.Context, step exec.Step) error {
		<-ctx.Done()
		return ctx.Err()
	}
	srv := newTestServer(t, Config{Metrics: reg, Workflows: exec.Config{
		Runner: blocker, OverdueTick: 5 * time.Millisecond, MaxActive: 1}})
	v, rec := submitWorkflow(t, srv, "steps:\n  - name: stuck\n    command: sleep 600\n")
	if rec.Code != http.StatusAccepted {
		t.Fatalf("first submission = %d, body %s", rec.Code, rec.Body)
	}
	waitWorkflowState(t, srv, v.ID, exec.Running)
	_, rec2 := submitWorkflow(t, srv, wfYAML)
	if rec2.Code != http.StatusTooManyRequests {
		t.Fatalf("submit past MaxActive = %d, want 429 (body %s)", rec2.Code, rec2.Body)
	}
	if n := reg.Counter(metricWorkflowErrors, "reason", "saturated").Value(); n != 1 {
		t.Errorf("saturated counter = %v, want 1", n)
	}
}

func TestWorkflowSubmitWhileDraining(t *testing.T) {
	srv := newTestServer(t, Config{Workflows: exec.Config{Runner: fastRunner}})
	srv.Drain()
	_, rec := submitWorkflow(t, srv, wfYAML)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", rec.Code)
	}
}
