package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hdlts/internal/jobs"
	"hdlts/internal/obs"
	"hdlts/internal/registry"
	"hdlts/internal/sched"
)

// doJSON drives one request with an optional JSON body through the handler.
func doJSON(srv *Server, method, path string, body any) *httptest.ResponseRecorder {
	var buf bytes.Buffer
	if body != nil {
		switch b := body.(type) {
		case string:
			buf.WriteString(b)
		default:
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				panic(err)
			}
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// submitJob posts one single-form job and decodes the JobView.
func submitJob(t *testing.T, srv *Server, algorithm string, problem json.RawMessage) (*JobView, *httptest.ResponseRecorder) {
	t.Helper()
	rec := doJSON(srv, http.MethodPost, "/v1/jobs",
		JobSubmitRequest{Algorithm: algorithm, Problem: problem})
	if rec.Code != http.StatusAccepted && rec.Code != http.StatusOK {
		t.Fatalf("submit status = %d, body %s", rec.Code, rec.Body)
	}
	var v JobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	return &v, rec
}

// waitJobState polls GET /v1/jobs/{id} until the job reaches want.
func waitJobState(t *testing.T, srv *Server, id, want string) *JobView {
	t.Helper()
	var v JobView
	waitFor(t, 5*time.Second, func() bool {
		rec := doJSON(srv, http.MethodGet, "/v1/jobs/"+id, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET job %s = %d: %s", id, rec.Code, rec.Body)
		}
		v = JobView{}
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		return v.State == want
	})
	return &v
}

func TestJobSubmitRunsToDone(t *testing.T) {
	srv := newTestServer(t, Config{})
	v, rec := submitJob(t, srv, "hdlts", problemJSON(t))
	if rec.Code != http.StatusAccepted {
		t.Errorf("fresh submission status = %d, want 202", rec.Code)
	}
	if v.ID == "" || v.Algorithm != "HDLTS" || v.Hash == "" {
		t.Errorf("submitted job = %+v", v)
	}
	done := waitJobState(t, srv, v.ID, "done")
	var res ScheduleResponse
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatalf("job result not a ScheduleResponse: %v", err)
	}
	if res.Makespan != 73 || res.Algorithm != "HDLTS" {
		t.Errorf("job result = %s/%g, want HDLTS/73", res.Algorithm, res.Makespan)
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Errorf("done job missing timestamps: %+v", done)
	}
	// The full schedule in the result must reconstruct and validate.
	pr, err := decodeProblem(problemJSON(t))
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := sched.ReadScheduleJSON(pr, bytes.NewReader(res.Schedule))
	if err != nil {
		t.Fatalf("embedded schedule does not reconstruct: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("reconstructed schedule invalid: %v", err)
	}
}

func TestJobResubmitIsCacheHit(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newTestServer(t, Config{Metrics: reg})
	first, _ := submitJob(t, srv, "hdlts", problemJSON(t))
	waitJobState(t, srv, first.ID, "done")

	second, rec := submitJob(t, srv, "HDLTS", problemJSON(t)) // different case, same content
	if rec.Code != http.StatusOK {
		t.Errorf("cache-hit submission status = %d, want 200", rec.Code)
	}
	if !second.CacheHit || second.State != "done" || second.ID == first.ID {
		t.Errorf("resubmission = %+v, want a fresh done job with cache_hit", second)
	}
	if second.Hash != first.Hash {
		t.Errorf("hashes differ for identical content: %s vs %s", first.Hash, second.Hash)
	}
	if v := reg.Counter("hdltsd_jobs_cache_hits_total").Value(); v != 1 {
		t.Errorf("cache hits = %d, want 1", v)
	}
	// Only the first submission solved: one observation in the histogram.
	if n := reg.Histogram("hdltsd_schedule_seconds", "alg", "HDLTS").Count(); n != 1 {
		t.Errorf("schedule executions = %d, want 1 (second answered from cache)", n)
	}
}

func TestJobBatchSubmit(t *testing.T) {
	srv := newTestServer(t, Config{})
	rec := doJSON(srv, http.MethodPost, "/v1/jobs", JobSubmitRequest{
		Jobs: []JobSubmitItem{
			{Algorithm: "hdlts", Problem: problemJSON(t)},
			{Algorithm: "heft", Problem: problemJSON(t)},
		},
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("batch status = %d: %s", rec.Code, rec.Body)
	}
	var batch JobBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Jobs) != 2 {
		t.Fatalf("batch answered %d jobs, want 2", len(batch.Jobs))
	}
	wantMakespan := map[string]float64{"HDLTS": 73, "HEFT": 80}
	for _, item := range batch.Jobs {
		if item.Job == nil {
			t.Fatalf("batch item missing job: %+v", item)
		}
		done := waitJobState(t, srv, item.Job.ID, "done")
		var res ScheduleResponse
		if err := json.Unmarshal(done.Result, &res); err != nil {
			t.Fatal(err)
		}
		if res.Makespan != wantMakespan[res.Algorithm] {
			t.Errorf("%s makespan = %g, want %g", res.Algorithm, res.Makespan, wantMakespan[res.Algorithm])
		}
	}
}

func TestJobListFilterAndPagination(t *testing.T) {
	srv := newTestServer(t, Config{})
	// Distinct algorithms give distinct hashes, so nothing coalesces.
	var ids []string
	for _, alg := range []string{"hdlts", "heft", "cpop"} {
		v, _ := submitJob(t, srv, alg, problemJSON(t))
		ids = append(ids, v.ID)
		waitJobState(t, srv, v.ID, "done")
	}
	rec := doJSON(srv, http.MethodGet, "/v1/jobs?state=done&limit=2&offset=1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("list = %d: %s", rec.Code, rec.Body)
	}
	var list JobListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Total != 3 || len(list.Jobs) != 2 || list.Offset != 1 || list.Limit != 2 {
		t.Errorf("page = %d jobs of %d (offset %d limit %d), want 2 of 3 (1, 2)",
			len(list.Jobs), list.Total, list.Offset, list.Limit)
	}
	// Newest first: offset 1 skips the cpop job.
	if list.Jobs[0].ID != ids[1] || list.Jobs[1].ID != ids[0] {
		t.Errorf("page order = %s,%s want %s,%s", list.Jobs[0].ID, list.Jobs[1].ID, ids[1], ids[0])
	}
	if rec := doJSON(srv, http.MethodGet, "/v1/jobs?state=running", nil); rec.Code != http.StatusOK {
		t.Errorf("empty filter list = %d, want 200", rec.Code)
	}
}

func TestJobValidationErrors(t *testing.T) {
	srv := newTestServer(t, Config{})
	good := string(problemJSON(t))
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"not json", http.MethodPost, "/v1/jobs", "{", http.StatusBadRequest},
		{"neither form", http.MethodPost, "/v1/jobs", `{}`, http.StatusBadRequest},
		{"both forms", http.MethodPost, "/v1/jobs",
			`{"problem":` + good + `,"jobs":[{"problem":` + good + `}]}`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/jobs", `{"bogus":1}`, http.StatusBadRequest},
		{"bad problem", http.MethodPost, "/v1/jobs", `{"problem":{"procs":0}}`, http.StatusBadRequest},
		{"unknown algorithm", http.MethodPost, "/v1/jobs",
			`{"algorithm":"nope","problem":` + good + `}`, http.StatusBadRequest},
		{"bad batch item", http.MethodPost, "/v1/jobs",
			`{"jobs":[{"algorithm":"hdlts","problem":` + good + `},{"algorithm":"nope","problem":` + good + `}]}`,
			http.StatusBadRequest},
		{"unknown job", http.MethodGet, "/v1/jobs/j-doesnotexist", "", http.StatusNotFound},
		{"cancel unknown", http.MethodDelete, "/v1/jobs/j-doesnotexist", "", http.StatusNotFound},
		{"bad state filter", http.MethodGet, "/v1/jobs?state=bogus", "", http.StatusBadRequest},
		{"bad limit", http.MethodGet, "/v1/jobs?limit=0", "", http.StatusBadRequest},
		{"bad offset", http.MethodGet, "/v1/jobs?offset=-1", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body any
			if tc.body != "" {
				body = tc.body
			}
			rec := doJSON(srv, tc.method, tc.path, body)
			if rec.Code != tc.want {
				t.Errorf("status = %d, want %d (body %s)", rec.Code, tc.want, rec.Body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Errorf("non-2xx body is not an ErrorResponse: %s", rec.Body)
			}
		})
	}
	// A rejected batch admits nothing.
	if rec := doJSON(srv, http.MethodGet, "/v1/jobs", nil); rec.Code == http.StatusOK {
		var list JobListResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &list); err == nil && list.Total != 0 {
			t.Errorf("invalid submissions leaked %d jobs into the store", list.Total)
		}
	}
}

// jobsBlockingLookup parks the canonical HDLTS name too: job execution
// resolves the stored canonical algorithm name, not the submitted alias,
// so "block" must stay blocking after the round-trip through alg.Name().
func jobsBlockingLookup(b *blockingAlg) func(string) (sched.Algorithm, error) {
	return func(name string) (sched.Algorithm, error) {
		if name == "block" || name == "HDLTS" {
			return b, nil
		}
		return registry.Get(name)
	}
}

func TestJobCancelLifecycle(t *testing.T) {
	blk := &blockingAlg{started: make(chan struct{}, 2), release: make(chan struct{})}
	srv := newTestServer(t, Config{
		Lookup: jobsBlockingLookup(blk),
		Jobs:   jobs.Config{Workers: 1},
	})
	running, _ := submitJob(t, srv, "block", problemJSON(t))
	<-blk.started // job occupies the only worker
	// A different canonical algorithm gives a second hash, so no
	// coalescing with the blocked job (which canonicalises to HDLTS).
	queued, _ := submitJob(t, srv, "heft", problemJSON(t))

	rec := doJSON(srv, http.MethodDelete, "/v1/jobs/"+queued.ID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel queued = %d: %s", rec.Code, rec.Body)
	}
	var v JobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.State != "cancelled" {
		t.Errorf("cancelled queued job state = %s", v.State)
	}

	rec = doJSON(srv, http.MethodDelete, "/v1/jobs/"+running.ID, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel running = %d: %s", rec.Code, rec.Body)
	}
	close(blk.release)
	waitJobState(t, srv, running.ID, "cancelled")

	if rec := doJSON(srv, http.MethodDelete, "/v1/jobs/"+running.ID, nil); rec.Code != http.StatusConflict {
		t.Errorf("cancel of finished job = %d, want 409", rec.Code)
	}
}

func TestJobQueueSaturationGets429WithRetryAfter(t *testing.T) {
	blk := &blockingAlg{started: make(chan struct{}, 2), release: make(chan struct{})}
	srv := newTestServer(t, Config{
		Lookup: jobsBlockingLookup(blk),
		Jobs:   jobs.Config{Workers: 1, QueueDepth: 1},
	})
	defer close(blk.release)
	if _, rec := submitJob(t, srv, "block", problemJSON(t)); rec.Code != http.StatusAccepted {
		t.Fatal("first submit not accepted")
	}
	<-blk.started
	// Distinct canonical algorithms per submission so nothing coalesces:
	// the blocked job holds the worker, heft fills the 1-deep queue.
	if _, rec := submitJob(t, srv, "heft", problemJSON(t)); rec.Code != http.StatusAccepted {
		t.Fatal("second submit not accepted")
	}
	rec := doJSON(srv, http.MethodPost, "/v1/jobs",
		JobSubmitRequest{Algorithm: "cpop", Problem: problemJSON(t)})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", rec.Header().Get("Retry-After"))
	}
}

func TestRetryAfterDerivedFromObservedLatency(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newTestServer(t, Config{Metrics: reg, Workers: 2, QueueDepth: 9})
	// No observations yet: conservative 1s.
	if got := srv.retryAfterSeconds("HDLTS", 9, 2); got != 1 {
		t.Errorf("retryAfter with no data = %d, want 1", got)
	}
	// Mean 2s, 9 queued ahead + this request, 2 workers → ceil(2*10/2) = 10.
	h := reg.Histogram("hdltsd_schedule_seconds", "alg", "HDLTS")
	h.Observe(1)
	h.Observe(3)
	if got := srv.retryAfterSeconds("HDLTS", 9, 2); got != 10 {
		t.Errorf("retryAfter = %d, want 10", got)
	}
	// Clamped to 60 for pathological backlogs.
	if got := srv.retryAfterSeconds("HDLTS", 1000, 1); got != 60 {
		t.Errorf("retryAfter clamp = %d, want 60", got)
	}
	// The sync 429 path uses the same estimate (header checked in
	// TestSaturationGets429; the derivation is what's new here).
}

// countingLookup wraps the registry and counts Schedule executions, to
// prove cache hits never re-solve.
type countingAlg struct {
	sched.Algorithm
	runs *atomic.Int64
}

func (c countingAlg) Schedule(pr *sched.Problem) (*sched.Schedule, error) {
	c.runs.Add(1)
	return c.Algorithm.Schedule(pr)
}

// TestJobSurvivesRestartEndToEnd is the acceptance path: a job submitted
// over HTTP outlives its daemon (abandoned mid-run, as after SIGKILL —
// every WAL append is fsynced), completes with the correct makespan under
// a fresh server on the same store, and an identical resubmission is a
// cache hit with no new solve.
func TestJobSurvivesRestartEndToEnd(t *testing.T) {
	dir := t.TempDir()
	blk := &blockingAlg{started: make(chan struct{}, 1), release: make(chan struct{})}
	crashed, err := New(Config{
		Metrics: obs.NewRegistry(),
		Lookup:  jobsBlockingLookup(blk),
		Jobs:    jobs.Config{Dir: dir, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, rec := submitJob(t, crashed, "block", problemJSON(t))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rec.Code)
	}
	<-blk.started // the job's "running" record is on disk; now "kill" the daemon
	t.Cleanup(func() { close(blk.release) })

	var runs atomic.Int64
	reg := obs.NewRegistry()
	srv := newTestServer(t, Config{
		Metrics: reg,
		Lookup: func(name string) (sched.Algorithm, error) {
			alg, err := registry.Get(name)
			if err != nil {
				return nil, err
			}
			return countingAlg{alg, &runs}, nil
		},
		Jobs: jobs.Config{Dir: dir},
	})
	done := waitJobState(t, srv, v.ID, "done")
	var res ScheduleResponse
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 73 {
		t.Errorf("recovered job makespan = %g, want 73", res.Makespan)
	}
	if runs.Load() != 1 {
		t.Fatalf("recovered runs = %d, want 1", runs.Load())
	}

	again, rec := submitJob(t, srv, "hdlts", problemJSON(t))
	if rec.Code != http.StatusOK || !again.CacheHit {
		t.Errorf("resubmission = %d %+v, want 200 with cache_hit", rec.Code, again)
	}
	if v := reg.Counter("hdltsd_jobs_cache_hits_total").Value(); v != 1 {
		t.Errorf("hdltsd_jobs_cache_hits_total = %d, want 1", v)
	}
	if runs.Load() != 1 {
		t.Errorf("runs after cache hit = %d, want still 1 (no new solve)", runs.Load())
	}

	// The jobs metrics are visible on /metrics.
	mrec := doJSON(srv, http.MethodGet, "/metrics", nil)
	for _, want := range []string{
		"hdltsd_jobs_cache_hits_total 1",
		`hdltsd_jobs_state{state="done"} 2`,
		"hdltsd_jobs_wal_fsync_seconds_count",
	} {
		if !strings.Contains(mrec.Body.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestJobsDrainingRefusesSubmission(t *testing.T) {
	srv := newTestServer(t, Config{})
	srv.Drain()
	rec := doJSON(srv, http.MethodPost, "/v1/jobs",
		JobSubmitRequest{Algorithm: "hdlts", Problem: problemJSON(t)})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", rec.Code)
	}
}

func TestJobFailureSurfacesError(t *testing.T) {
	srv := newTestServer(t, Config{
		Lookup: func(name string) (sched.Algorithm, error) {
			return failingAlg{}, nil
		},
		Jobs: jobs.Config{MaxAttempts: 2, RetryBackoff: time.Millisecond},
	})
	v, _ := submitJob(t, srv, "hdlts", problemJSON(t))
	failed := waitJobState(t, srv, v.ID, "failed")
	if failed.Attempts != 2 || !strings.Contains(failed.Error, "synthetic failure") {
		t.Errorf("failed job = %+v, want 2 attempts and the run error", failed)
	}
}

// failingAlg always errors, driving the retry-then-fail path.
type failingAlg struct{}

func (failingAlg) Name() string { return "HDLTS" }
func (failingAlg) Schedule(*sched.Problem) (*sched.Schedule, error) {
	return nil, fmt.Errorf("synthetic failure")
}
