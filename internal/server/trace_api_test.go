package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hdlts/internal/jobs"
	"hdlts/internal/obs"
)

// doWithRequestID drives one request with an X-Request-ID header set.
func doWithRequestID(srv *Server, method, path, reqID string, body any) *httptest.ResponseRecorder {
	var buf bytes.Buffer
	if body != nil {
		switch b := body.(type) {
		case string:
			buf.WriteString(b)
		default:
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				panic(err)
			}
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	if reqID != "" {
		req.Header.Set("X-Request-ID", reqID)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// getTrace fetches and decodes one trace endpoint response.
func getTrace(t *testing.T, srv *Server, path string) (*TraceResponse, *httptest.ResponseRecorder) {
	t.Helper()
	rec := doJSON(srv, http.MethodGet, path, nil)
	if rec.Code != http.StatusOK {
		return nil, rec
	}
	var tr TraceResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("trace response not decodable: %v\n%s", err, rec.Body)
	}
	return &tr, rec
}

// spanNames collects the span names of a trace for containment checks.
func spanNames(tr *TraceResponse) map[string]bool {
	names := make(map[string]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestTraceEndToEndCorrelation is the PR's acceptance test: ONE trace ID
// — the client's X-Request-ID — links every observability surface:
//
//  1. the HTTP response header,
//  2. the access-log line (request_id field),
//  3. the durable job record and its WAL entry on disk, surviving a
//     crash + recovery on a fresh server,
//  4. the span tree and scheduler decision events replayed by
//     GET /v1/jobs/{id}/trace.
func TestTraceEndToEndCorrelation(t *testing.T) {
	const reqID = "e2e-trace-cafe.01"
	dir := t.TempDir()
	var logBuf syncBuffer

	// First daemon: submit with a fixed X-Request-ID against a blocking
	// algorithm, then abandon mid-run (the crash).
	blk := &blockingAlg{started: make(chan struct{}, 1), release: make(chan struct{})}
	crashed, err := New(Config{
		Metrics:   obs.NewRegistry(),
		AccessLog: newJSONLogger(&logBuf),
		Lookup:    jobsBlockingLookup(blk),
		Jobs:      jobs.Config{Dir: dir, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := doWithRequestID(crashed, http.MethodPost, "/v1/jobs", reqID,
		JobSubmitRequest{Algorithm: "block", Problem: problemJSON(t)})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}

	// Surface 1: the response header echoes the ID.
	if got := rec.Header().Get("X-Request-ID"); got != reqID {
		t.Errorf("response X-Request-ID = %q, want %q", got, reqID)
	}
	// Surface 2: the access log line carries it as request_id.
	if line := logBuf.String(); !strings.Contains(line, `"request_id":"`+reqID+`"`) {
		t.Errorf("access log missing request_id %q: %s", reqID, line)
	}
	// The submitted job record carries it immediately.
	var v JobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.TraceID != reqID {
		t.Errorf("job trace_id = %q, want %q", v.TraceID, reqID)
	}
	// Surface 3a: the fsynced WAL on disk has the correlation before the
	// job even finishes — a crash cannot lose it.
	wal, err := os.ReadFile(filepath.Join(dir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wal), `"trace_id":"`+reqID+`"`) {
		t.Errorf("WAL missing trace_id %q:\n%s", reqID, wal)
	}

	<-blk.started // running record durable; "kill" the daemon here

	// Second daemon on the same store: recovery re-runs the job.
	srv := newTestServer(t, Config{
		Metrics: obs.NewRegistry(),
		Jobs:    jobs.Config{Dir: dir},
	})
	done := waitJobState(t, srv, v.ID, "done")
	// Surface 3b: the recovered, completed job still carries the ID.
	if done.TraceID != reqID {
		t.Errorf("recovered job trace_id = %q, want %q", done.TraceID, reqID)
	}

	// Surface 4: the job trace endpoint replays the re-run's span tree and
	// decision events under the original trace ID — the recovered run
	// re-adopted the persisted correlation, on a daemon that never saw the
	// original HTTP request.
	tr, trec := getTrace(t, srv, "/v1/jobs/"+v.ID+"/trace")
	if tr == nil {
		t.Fatalf("job trace = %d: %s", trec.Code, trec.Body)
	}
	if tr.TraceID != reqID || tr.JobID != v.ID {
		t.Errorf("trace ids = %q/%q, want %q/%q", tr.TraceID, tr.JobID, reqID, v.ID)
	}
	names := spanNames(tr)
	for _, want := range []string{"job.run", "schedule.run", "schedule.solve", "schedule.validate"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
	for _, sp := range tr.Spans {
		if sp.TraceID != reqID {
			t.Errorf("span %s carries trace %q, want %q", sp.Name, sp.TraceID, reqID)
		}
	}
	if len(tr.Events) == 0 {
		t.Fatal("trace has no scheduler decision events")
	}
	commits := 0
	for _, raw := range tr.Events {
		var e struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal(raw, &e); err != nil {
			t.Fatal(err)
		}
		if e.Ev == "commit" {
			commits++
		}
	}
	if commits < 10 {
		t.Errorf("trace has %d commit events, want >= 10 (one per Fig. 1 task)", commits)
	}

	close(blk.release)
}

func TestScheduleTraceRecordedInRing(t *testing.T) {
	const reqID = "sync-trace-01"
	srv := newTestServer(t, Config{})
	rec := doWithRequestID(srv, http.MethodPost, "/v1/schedule", reqID,
		ScheduleRequest{Algorithm: "hdlts", Problem: problemJSON(t)})
	if rec.Code != http.StatusOK {
		t.Fatalf("schedule = %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Request-ID"); got != reqID {
		t.Errorf("X-Request-ID = %q, want %q", got, reqID)
	}
	tr, trec := getTrace(t, srv, "/v1/traces/"+reqID)
	if tr == nil {
		t.Fatalf("trace = %d: %s", trec.Code, trec.Body)
	}
	names := spanNames(tr)
	for _, want := range []string{
		"http.request", "schedule.run", "schedule.solve",
		"schedule.validate", "schedule.evaluate", "schedule.encode",
	} {
		if !names[want] {
			t.Errorf("missing span %q (have %v)", want, names)
		}
	}
	// The root span records the final status; children chain to the root.
	var root *obs.Span
	for _, sp := range tr.Spans {
		if sp.Name == "http.request" {
			root = sp
		}
	}
	if root == nil || root.Attrs["status"] != "200" || root.ParentID != "" {
		t.Errorf("root span = %+v, want status=200 and no parent", root)
	}
	for _, sp := range tr.Spans {
		if sp.Name == "schedule.run" && sp.ParentID != root.SpanID {
			t.Errorf("schedule.run parent = %q, want root %q", sp.ParentID, root.SpanID)
		}
	}
	if len(tr.Events) == 0 {
		t.Error("no decision events recorded in the ring")
	}
}

func TestRequestIDGeneratedAndValidated(t *testing.T) {
	srv := newTestServer(t, Config{})
	// Absent header: a fresh ID is generated and echoed.
	rec := doJSON(srv, http.MethodGet, "/healthz", nil)
	if id := rec.Header().Get("X-Request-ID"); len(id) != 16 {
		t.Errorf("generated request ID = %q, want 16 hex chars", id)
	}
	// Malformed header (spaces, control chars, oversized): replaced, never
	// echoed back verbatim.
	for _, bad := range []string{"has space", "new\nline", strings.Repeat("x", 200), "héx"} {
		rec := doWithRequestID(srv, http.MethodGet, "/healthz", bad, nil)
		if got := rec.Header().Get("X-Request-ID"); got == bad || got == "" {
			t.Errorf("malformed ID %q echoed as %q, want a generated replacement", bad, got)
		}
	}
}

// TestRequestIDEchoedOnErrorPaths pins the satellite guarantee: 429
// (saturated) and 504 (timeout) responses — where correlation matters
// most — still carry the client's X-Request-ID.
func TestRequestIDEchoedOnErrorPaths(t *testing.T) {
	t.Run("429 saturated", func(t *testing.T) {
		blk := &blockingAlg{started: make(chan struct{}, 2), release: make(chan struct{})}
		srv := newTestServer(t, Config{
			Workers:    1,
			QueueDepth: 1,
			Lookup:     blockingLookup(blk),
		})
		problem := problemJSON(t)
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				doSchedule(srv, ScheduleRequest{Algorithm: "block", Problem: problem})
			}()
		}
		<-blk.started
		waitFor(t, 5*time.Second, func() bool { return srv.queueDepth.Value() >= 1 })
		rec := doWithRequestID(srv, http.MethodPost, "/v1/schedule", "sat-429-id",
			ScheduleRequest{Algorithm: "block", Problem: problem})
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429", rec.Code)
		}
		if got := rec.Header().Get("X-Request-ID"); got != "sat-429-id" {
			t.Errorf("429 X-Request-ID = %q, want sat-429-id", got)
		}
		close(blk.release)
		wg.Wait()
	})
	t.Run("504 timeout", func(t *testing.T) {
		blk := &blockingAlg{release: make(chan struct{})}
		srv := newTestServer(t, Config{
			Workers:        1,
			RequestTimeout: 20 * time.Millisecond,
			Lookup:         blockingLookup(blk),
		})
		rec := doWithRequestID(srv, http.MethodPost, "/v1/schedule", "slow-504-id",
			ScheduleRequest{Algorithm: "block", Problem: problemJSON(t)})
		if rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("status = %d, want 504", rec.Code)
		}
		if got := rec.Header().Get("X-Request-ID"); got != "slow-504-id" {
			t.Errorf("504 X-Request-ID = %q, want slow-504-id", got)
		}
		close(blk.release)
	})
	t.Run("400 bad request", func(t *testing.T) {
		srv := newTestServer(t, Config{})
		rec := doWithRequestID(srv, http.MethodPost, "/v1/schedule", "bad-400-id", "{")
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", rec.Code)
		}
		if got := rec.Header().Get("X-Request-ID"); got != "bad-400-id" {
			t.Errorf("400 X-Request-ID = %q, want bad-400-id", got)
		}
	})
}

func TestTraceNotFoundPaths(t *testing.T) {
	srv := newTestServer(t, Config{})
	if _, rec := getTrace(t, srv, "/v1/traces/never-seen"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", rec.Code)
	}
	if _, rec := getTrace(t, srv, "/v1/jobs/j-0000000000000000/trace"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown job trace = %d, want 404", rec.Code)
	}
}

func TestTraceSamplingSheds(t *testing.T) {
	srv := newTestServer(t, Config{TraceSample: 2})
	problem := problemJSON(t)
	retained := 0
	for i := 0; i < 4; i++ {
		id := "sampled-" + string(rune('a'+i))
		rec := doWithRequestID(srv, http.MethodPost, "/v1/schedule", id,
			ScheduleRequest{Problem: problem})
		if rec.Code != http.StatusOK {
			t.Fatalf("schedule = %d", rec.Code)
		}
		// Correlation is unconditional even when the trace is shed.
		if rec.Header().Get("X-Request-ID") != id {
			t.Errorf("sampled-out request lost its X-Request-ID echo")
		}
		if tr, _ := getTrace(t, srv, "/v1/traces/"+id); tr != nil {
			retained++
		}
	}
	if retained != 2 {
		t.Errorf("sample=2 retained %d of 4 traces, want 2", retained)
	}
}

func TestVersionEndpoint(t *testing.T) {
	srv := newTestServer(t, Config{})
	rec := doJSON(srv, http.MethodGet, "/v1/version", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/version = %d", rec.Code)
	}
	var v VersionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" || v.Version == "" {
		t.Errorf("version response incomplete: %+v", v)
	}
	found := false
	for _, a := range v.Algorithms {
		if a == "hdlts" {
			found = true
		}
	}
	if !found {
		t.Errorf("algorithms %v missing hdlts", v.Algorithms)
	}
}

func TestBuildInfoGaugeExposed(t *testing.T) {
	reg := obs.NewRegistry()
	srv := newTestServer(t, Config{Metrics: reg})
	rec := doJSON(srv, http.MethodGet, "/metrics", nil)
	body := rec.Body.String()
	if !strings.Contains(body, "hdltsd_build_info{") {
		t.Errorf("/metrics missing hdltsd_build_info:\n%s", body)
	}
	if !strings.Contains(body, srv.build.GoVersion) {
		t.Errorf("build info gauge missing go_version %q", srv.build.GoVersion)
	}
}

func TestDebugHandlerServesPprofAndVars(t *testing.T) {
	h := DebugHandler()
	for _, tc := range []struct {
		path, want string
	}{
		{"/debug/pprof/", "goroutine"},
		{"/debug/pprof/goroutine?debug=1", "goroutine profile"},
		{"/debug/vars", "memstats"},
		{"/", "hdltsd debug listener"},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, tc.path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d", tc.path, rec.Code)
			continue
		}
		if !strings.Contains(rec.Body.String(), tc.want) {
			t.Errorf("GET %s missing %q", tc.path, tc.want)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/schedule", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("service route on debug listener = %d, want 404", rec.Code)
	}
}

// TestConcurrentMetricsScrapesUnderSaturation pins the satellite: /metrics
// stays responsive and parseable while every worker is busy and the queue
// is full — scrapes must never contend with scheduling admission.
func TestConcurrentMetricsScrapesUnderSaturation(t *testing.T) {
	blk := &blockingAlg{started: make(chan struct{}, 1), release: make(chan struct{})}
	reg := obs.NewRegistry()
	srv := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Metrics:    reg,
		Lookup:     blockingLookup(blk),
	})
	problem := problemJSON(t)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			doSchedule(srv, ScheduleRequest{Algorithm: "block", Problem: problem})
		}()
	}
	<-blk.started // pool saturated from here on

	var scrapes sync.WaitGroup
	for g := 0; g < 8; g++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for i := 0; i < 20; i++ {
				rec := doJSON(srv, http.MethodGet, "/metrics", nil)
				if rec.Code != http.StatusOK {
					t.Errorf("/metrics under saturation = %d", rec.Code)
					return
				}
				if err := checkExposition(rec.Body.String()); err != nil {
					t.Errorf("unparseable exposition: %v", err)
					return
				}
			}
		}()
	}
	scrapes.Wait()
	close(blk.release)
	wg.Wait()
}

// checkExposition is a minimal Prometheus text-format parser: every
// non-comment line must be `name{labels} value` with a float value.
func checkExposition(body string) error {
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return fmt.Errorf("no value separator: %q", line)
		}
		name, value := line[:i], line[i+1:]
		if name == "" || value == "" {
			return fmt.Errorf("empty name or value: %q", line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("bad value in %q: %w", line, err)
		}
		if open := strings.Count(name, "{"); open != strings.Count(name, "}") || open > 1 {
			return fmt.Errorf("unbalanced labels: %q", line)
		}
	}
	return nil
}
