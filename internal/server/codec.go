package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"hdlts/internal/sched"
)

// ScheduleRequest is the POST /v1/schedule wire request. The problem
// subobject uses exactly the JSON form the CLI tools exchange
// (sched.WriteJSON / ReadProblemJSON): {"graph": {...}, "procs": n,
// "costs": [[...]], "bandwidth": [[...]]?}.
type ScheduleRequest struct {
	// Algorithm is a case-insensitive registry name ("hdlts", "heft", ...).
	// Empty selects "hdlts".
	Algorithm string `json:"algorithm,omitempty"`
	// Problem is the workflow + platform + cost matrix to schedule.
	Problem json.RawMessage `json:"problem"`
	// Trace opts in to per-request decision events: the response carries
	// the same JSONL records `hdltsched -events` would write.
	Trace bool `json:"trace,omitempty"`
}

// ScheduleResponse is the POST /v1/schedule wire response.
type ScheduleResponse struct {
	Algorithm  string  `json:"algorithm"`
	Tasks      int     `json:"tasks"`
	Procs      int     `json:"procs"`
	Makespan   float64 `json:"makespan"`
	SLR        float64 `json:"slr"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	Duplicates int     `json:"duplicates"`
	// Schedule is the full placement list in the WriteScheduleJSON form
	// cmd/validate accepts.
	Schedule json.RawMessage `json:"schedule"`
	// Events holds the decision-event stream (one JSONL record per entry)
	// when the request set "trace": true.
	Events []json.RawMessage `json:"events,omitempty"`
	// Explain holds the explainability report (explain.Report: placement
	// rationale, critical path, per-processor accounting) when the request
	// passed ?explain=1.
	Explain json.RawMessage `json:"explain,omitempty"`
	// ElapsedSeconds is the scheduling wall time inside the worker (queue
	// wait excluded).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// decodeScheduleRequest parses and validates one request body, returning
// the wire struct plus the fully validated problem. Every failure is a
// client error (HTTP 400): unknown fields, a missing or malformed problem,
// cyclic graphs, and ragged or negative cost/bandwidth matrices are all
// rejected with the underlying codec's message.
func decodeScheduleRequest(r io.Reader) (*ScheduleRequest, *sched.Problem, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req ScheduleRequest
	if err := dec.Decode(&req); err != nil {
		return nil, nil, fmt.Errorf("decode request: %w", err)
	}
	pr, err := decodeProblem(req.Problem)
	if err != nil {
		return nil, nil, err
	}
	return &req, pr, nil
}

// decodeProblem parses and fully validates one problem subobject — the
// shared decoder behind POST /v1/schedule and POST /v1/jobs, and the
// target FuzzDecodeProblem hardens.
func decodeProblem(raw json.RawMessage) (*sched.Problem, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("request has no problem")
	}
	return sched.ReadProblemJSON(bytes.NewReader(raw))
}

// encodeSchedule renders a completed schedule into the response's raw
// Schedule field.
func encodeSchedule(s *sched.Schedule, algorithm string) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := s.WriteScheduleJSON(&buf, algorithm); err != nil {
		return nil, err
	}
	return json.RawMessage(bytes.TrimSpace(buf.Bytes())), nil
}

// splitJSONL cuts a JSON Lines buffer into one raw message per line, for
// embedding an event stream in a JSON response.
func splitJSONL(b []byte) []json.RawMessage {
	var out []json.RawMessage
	for _, line := range bytes.Split(b, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		out = append(out, json.RawMessage(append([]byte(nil), line...)))
	}
	return out
}
