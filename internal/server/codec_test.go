package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"hdlts/internal/core"
	"hdlts/internal/dag"
	"hdlts/internal/gen"
	"hdlts/internal/sched"
	"hdlts/internal/workflows"
)

// samePlacements reports whether two complete schedules place every task
// copy identically.
func samePlacements(t *testing.T, a, b *sched.Schedule) {
	t.Helper()
	if a.Makespan() != b.Makespan() {
		t.Fatalf("makespans differ: %g vs %g", a.Makespan(), b.Makespan())
	}
	n := a.Problem().NumTasks()
	if n != b.Problem().NumTasks() {
		t.Fatalf("task counts differ: %d vs %d", n, b.Problem().NumTasks())
	}
	for task := 0; task < n; task++ {
		ca, cb := a.Copies(dag.TaskID(task)), b.Copies(dag.TaskID(task))
		if len(ca) != len(cb) {
			t.Fatalf("task %d: %d vs %d copies", task, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("task %d copy %d differs: %+v vs %+v", task, i, ca[i], cb[i])
			}
		}
	}
}

// TestProblemCodecRoundTripIdenticalSchedule is the server-boundary
// guarantee: a problem that crosses the wire (problem → JSON → problem)
// schedules bit-identically to the original.
func TestProblemCodecRoundTripIdenticalSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	random, err := gen.Random(gen.Params{
		V: 60, Alpha: 1.0, Density: 3, CCR: 2, Procs: 4, WDAG: 80, Beta: 1.2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for name, pr := range map[string]*sched.Problem{
		"fig1":   workflows.PaperExample(),
		"random": random,
	} {
		t.Run(name, func(t *testing.T) {
			var wire bytes.Buffer
			if err := pr.WriteJSON(&wire); err != nil {
				t.Fatal(err)
			}
			pr2, err := sched.ReadProblemJSON(bytes.NewReader(wire.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			// A second hop must also be byte-stable.
			var wire2 bytes.Buffer
			if err := pr2.WriteJSON(&wire2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wire.Bytes(), wire2.Bytes()) {
				t.Error("problem JSON is not byte-stable across a round trip")
			}
			s1, err := core.New().Schedule(pr)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := core.New().Schedule(pr2)
			if err != nil {
				t.Fatal(err)
			}
			samePlacements(t, s1, s2)
		})
	}
}

// TestDecodeScheduleRequestErrors pins the error text clients see for the
// classic malformed inputs, so messages stay actionable.
func TestDecodeScheduleRequestErrors(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"empty object", `{}`, "no problem"},
		{"truncated", `{"problem":{"graph":`, "decode request"},
		{
			"cyclic dag",
			`{"problem":{"graph":{"tasks":[{"name":"a"},{"name":"b"},{"name":"c"}],` +
				`"edges":[{"from":0,"to":1,"data":1},{"from":1,"to":2,"data":1},{"from":2,"to":0,"data":1}]},` +
				`"procs":1,"costs":[[1],[1],[1]]}}`,
			"cycle",
		},
		{
			"ragged cost matrix",
			`{"problem":{"graph":{"tasks":[{"name":"a"},{"name":"b"}],"edges":[{"from":0,"to":1,"data":1}]},` +
				`"procs":3,"costs":[[1,1,1],[1,1]]}}`,
			"cost row 1 has 2 entries, want 3",
		},
		{
			"negative cost",
			`{"problem":{"graph":{"tasks":[{"name":"a"}],"edges":[]},"procs":1,"costs":[[-5]]}}`,
			"invalid cost",
		},
		{
			"cost rows vs tasks",
			`{"problem":{"graph":{"tasks":[{"name":"a"},{"name":"b"}],"edges":[{"from":0,"to":1,"data":1}]},` +
				`"procs":1,"costs":[[1]]}}`,
			"task rows",
		},
		{
			"asymmetric bandwidth",
			`{"problem":{"graph":{"tasks":[{"name":"a"}],"edges":[]},"procs":2,` +
				`"bandwidth":[[0,1],[2,0]],"costs":[[1,1]]}}`,
			"not symmetric",
		},
		{
			"edge out of range",
			`{"problem":{"graph":{"tasks":[{"name":"a"}],"edges":[{"from":0,"to":5,"data":1}]},` +
				`"procs":1,"costs":[[1]]}}`,
			"",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := decodeScheduleRequest(strings.NewReader(tc.body))
			if err == nil {
				t.Fatal("decode accepted malformed input")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeCyclicWrapsErrCycle checks the typed error survives the server
// boundary, so embedders can branch on it.
func TestDecodeCyclicWrapsErrCycle(t *testing.T) {
	body := `{"problem":{"graph":{"tasks":[{"name":"a"},{"name":"b"}],` +
		`"edges":[{"from":0,"to":1,"data":1},{"from":1,"to":0,"data":1}]},"procs":1,"costs":[[1],[1]]}}`
	_, _, err := decodeScheduleRequest(strings.NewReader(body))
	if !errors.Is(err, dag.ErrCycle) {
		t.Errorf("err = %v, want errors.Is(_, dag.ErrCycle)", err)
	}
}

func TestSplitJSONL(t *testing.T) {
	in := []byte("{\"a\":1}\n\n{\"b\":2}\n")
	got := splitJSONL(in)
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2", len(got))
	}
	for _, raw := range got {
		if !json.Valid(raw) {
			t.Errorf("record %s is not valid JSON", raw)
		}
	}
}
