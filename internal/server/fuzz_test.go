package server

import (
	"bytes"
	"testing"

	"hdlts/internal/workflows"
)

// fuzzSeedProblem renders the Fig. 1 problem for seeding the corpora.
func fuzzSeedProblem(f *testing.F) []byte {
	f.Helper()
	var buf bytes.Buffer
	if err := workflows.PaperExample().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzDecodeProblem hardens the shared problem decoder behind
// POST /v1/schedule and POST /v1/jobs: arbitrary bytes must either fail
// cleanly or produce a problem whose canonical serialisation — the input
// to the job result cache's content address — is a stable fixed point.
func FuzzDecodeProblem(f *testing.F) {
	f.Add(fuzzSeedProblem(f))
	f.Add([]byte(`{"graph":{"tasks":[{"name":"a"}],"edges":[]},"procs":1,"costs":[[1]]}`))
	f.Add([]byte(`{"graph":{"tasks":[],"edges":[]},"procs":0,"costs":[]}`))
	f.Add([]byte(`{"procs":3}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		pr, err := decodeProblem(data)
		if err != nil {
			return // clean rejection is fine
		}
		canon, err := CanonicalProblemJSON(pr)
		if err != nil {
			t.Fatalf("accepted problem fails to canonicalise: %v", err)
		}
		// The canonical form must re-decode, and canonicalising the result
		// must reproduce it byte for byte — otherwise identical submissions
		// could miss the cache.
		back, err := decodeProblem(canon)
		if err != nil {
			t.Fatalf("canonical form rejected by own decoder: %v", err)
		}
		canon2, err := CanonicalProblemJSON(back)
		if err != nil {
			t.Fatalf("re-canonicalise failed: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical serialisation is not a fixed point:\n%s\nvs\n%s", canon, canon2)
		}
		if hashOf("HDLTS", canon) != hashOf("HDLTS", canon2) {
			t.Fatal("hash differs across canonical round-trip")
		}
	})
}

// FuzzDecodeScheduleRequest fuzzes the full POST /v1/schedule request
// envelope around the problem decoder.
func FuzzDecodeScheduleRequest(f *testing.F) {
	problem := fuzzSeedProblem(f)
	f.Add([]byte(`{"algorithm":"hdlts","problem":` + string(problem) + `}`))
	f.Add([]byte(`{"problem":` + string(problem) + `,"trace":true}`))
	f.Add([]byte(`{"algorithm":"heft"}`))
	f.Add([]byte(`{"problem":{}}`))
	f.Add([]byte(`{"unknown":1}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, pr, err := decodeScheduleRequest(bytes.NewReader(data))
		if err != nil {
			return // clean rejection is fine
		}
		if req == nil || pr == nil {
			t.Fatal("nil request or problem without error")
		}
		// Whatever the decoder admits must be schedulable input: it has the
		// codec's invariants, so canonicalisation cannot fail.
		if _, err := CanonicalProblemJSON(pr); err != nil {
			t.Fatalf("accepted request fails to canonicalise: %v", err)
		}
	})
}
