package server

import (
	"testing"
	"time"
)

// waitFor polls cond every millisecond until it reports true, failing the
// test if timeout elapses first. It replaces the hand-rolled deadline
// loops that used to be copied between tests.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not met within %v", timeout)
		}
		time.Sleep(time.Millisecond)
	}
}
