package registry

import (
	"strings"
	"testing"

	"hdlts/internal/workflows"
)

func TestNamesStable(t *testing.T) {
	want := []string{"hdlts", "heft", "pets", "cpop", "peft", "sdbats"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names = %v, want %v", got, want)
		}
	}
	// Callers must not be able to corrupt the order.
	got[0] = "corrupted"
	if Names()[0] != "hdlts" {
		t.Fatal("Names returned shared backing storage")
	}
}

func TestExtendedPool(t *testing.T) {
	algs := Extended()
	if len(algs) != 13 {
		t.Fatalf("Extended pool has %d algorithms, want 13", len(algs))
	}
	names := map[string]bool{}
	for _, a := range algs {
		names[a.Name()] = true
	}
	for _, want := range []string{"HDLTS", "HEFT", "DLS", "MCT", "MinMin", "MaxMin", "DHEFT", "DSC", "GA"} {
		if !names[want] {
			t.Errorf("Extended pool missing %s", want)
		}
	}
	if got := len(ExtendedNames()); got != 13 {
		t.Errorf("ExtendedNames = %d entries, want 13", got)
	}
	pr := workflows.PaperExample()
	for _, a := range algs[6:] { // the four extras
		s, err := a.Schedule(pr)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
	}
}

func TestGetCaseInsensitive(t *testing.T) {
	for _, name := range []string{"HDLTS", "hdlts", " Heft ", "SDBATS", "dls", "MinMin"} {
		a, err := Get(name)
		if err != nil {
			t.Errorf("Get(%q): %v", name, err)
			continue
		}
		if a == nil {
			t.Errorf("Get(%q) returned nil", name)
		}
	}
	if _, err := Get("nope"); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Errorf("Get(nope) = %v", err)
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet on unknown name did not panic")
		}
	}()
	MustGet("bogus")
}

func TestAllAndPaperModeSchedule(t *testing.T) {
	pr := workflows.PaperExample()
	for _, pool := range [][]string{{"canonical"}, {"paper"}} {
		algs := All()
		if pool[0] == "paper" {
			algs = PaperMode()
		}
		if len(algs) != 6 {
			t.Fatalf("%s pool has %d algorithms", pool[0], len(algs))
		}
		seen := map[string]bool{}
		for _, a := range algs {
			if seen[a.Name()] {
				t.Fatalf("%s pool has duplicate %q", pool[0], a.Name())
			}
			seen[a.Name()] = true
			s, err := a.Schedule(pr)
			if err != nil {
				t.Fatalf("%s/%s: %v", pool[0], a.Name(), err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", pool[0], a.Name(), err)
			}
		}
	}
}

func TestPaperModeHDLTSUnchanged(t *testing.T) {
	// HDLTS itself is identical in both modes (it is already avail-based);
	// verify by makespan on the example.
	pr := workflows.PaperExample()
	for _, a := range PaperMode() {
		if a.Name() == "HDLTS" {
			s, err := a.Schedule(pr)
			if err != nil {
				t.Fatal(err)
			}
			if s.Makespan() != 73 {
				t.Fatalf("paper-mode HDLTS makespan = %g, want 73", s.Makespan())
			}
		}
	}
}
