// Package registry enumerates every scheduling algorithm in the
// reproduction — HDLTS plus the five published baselines — behind the
// shared sched.Algorithm interface, for the CLI tools, the experiment
// harness, and the public façade.
package registry

import (
	"fmt"
	"sort"
	"strings"

	"hdlts/internal/cluster"
	"hdlts/internal/core"
	"hdlts/internal/ga"
	"hdlts/internal/heuristics"
	"hdlts/internal/sched"
)

// builders maps canonical lower-case names to constructors. Constructors
// return fresh values, but all algorithms are stateless and safe to share.
var builders = map[string]func() sched.Algorithm{
	"hdlts":  func() sched.Algorithm { return core.New() },
	"heft":   func() sched.Algorithm { return heuristics.NewHEFT() },
	"cpop":   func() sched.Algorithm { return heuristics.NewCPOP() },
	"pets":   func() sched.Algorithm { return heuristics.NewPETS() },
	"peft":   func() sched.Algorithm { return heuristics.NewPEFT() },
	"sdbats": func() sched.Algorithm { return heuristics.NewSDBATS() },
	// Beyond the paper's comparison set: classic schedulers kept as extra
	// reference points (see Extended).
	"dls":    func() sched.Algorithm { return heuristics.NewDLS() },
	"mct":    func() sched.Algorithm { return heuristics.NewMCT() },
	"minmin": func() sched.Algorithm { return heuristics.NewMinMin() },
	"maxmin": func() sched.Algorithm { return heuristics.NewMaxMin() },
	// Representatives of the other scheduler families the paper's Related
	// Work surveys: task duplication (II-B), clustering (II-C), and genetic
	// search (II, refs [12]-[17]).
	"dheft": func() sched.Algorithm { return heuristics.NewDHEFT() },
	"dsc":   func() sched.Algorithm { return cluster.NewDSC() },
	"ga":    func() sched.Algorithm { return ga.New() },
}

// paperOrder is the comparison order used in the paper's figures.
var paperOrder = []string{"hdlts", "heft", "pets", "cpop", "peft", "sdbats"}

// extraOrder lists the additional reference schedulers.
var extraOrder = []string{"dheft", "dls", "dsc", "ga", "mct", "minmin", "maxmin"}

// Names returns the canonical algorithm names in the paper's comparison
// order.
func Names() []string { return append([]string(nil), paperOrder...) }

// ExtendedNames returns every registered algorithm name: the paper's six
// followed by the extra reference schedulers.
func ExtendedNames() []string {
	return append(Names(), extraOrder...)
}

// Extended returns the paper's six algorithms followed by the extra
// reference schedulers: DHEFT (task duplication), DLS, DSC (clustering),
// GA (genetic search), MCT, Min-Min, and Max-Min.
func Extended() []sched.Algorithm {
	out := All()
	for _, n := range extraOrder {
		out = append(out, builders[n]())
	}
	return out
}

// Get returns the algorithm with the given (case-insensitive) name.
func Get(name string) (sched.Algorithm, error) {
	b, ok := builders[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		known := ExtendedNames()
		sort.Strings(known)
		return nil, fmt.Errorf("registry: unknown algorithm %q (known: %s)", name, strings.Join(known, ", "))
	}
	return b(), nil
}

// MustGet is Get that panics on unknown names, for static configuration.
func MustGet(name string) sched.Algorithm {
	a, err := Get(name)
	if err != nil {
		panic(err)
	}
	return a
}

// All returns one instance of every algorithm, in the paper's order, with
// every baseline in its canonical configuration (insertion-based placement
// where the original papers specify it).
func All() []sched.Algorithm {
	out := make([]sched.Algorithm, 0, len(paperOrder))
	for _, n := range paperOrder {
		out = append(out, builders[n]())
	}
	return out
}

// PaperMode returns every algorithm with uniform avail-based placement
// (Eq. 6 applied to all schedulers), reconstructing the placement policy the
// paper's own simulator most plausibly used: the HDLTS paper defines EST
// exclusively through Avail(m_p) and its published comparison shape —
// HDLTS ≈ HEFT at low CCR, ahead at high CCR — reproduces under this mode
// but not under canonical insertion baselines. See EXPERIMENTS.md.
func PaperMode() []sched.Algorithm {
	avail := sched.Policy{}
	return []sched.Algorithm{
		core.New(),
		&heuristics.HEFT{Pol: avail},
		&heuristics.PETS{Pol: avail},
		&heuristics.CPOP{Pol: avail},
		&heuristics.PEFT{Pol: avail},
		&heuristics.SDBATS{Pol: avail},
	}
}
