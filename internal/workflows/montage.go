package workflows

import (
	"fmt"

	"hdlts/internal/dag"
)

// MontageGraph builds a Montage astronomy-mosaic workflow with exactly n
// tasks (n >= 11), following the canonical Pegasus structure the paper's
// Fig. 9 shows (Section V-C2):
//
//	mProjectPP×a → mDiffFit×b → mConcatFit → mBgModel →
//	mBackground×a → mImgtbl → mAdd → mShrink×s → mJPEG
//
// The level widths scale with n while keeping the published proportions:
// b ≈ 1.5·a overlap-difference fits (each consuming two adjacent
// projections), one task each for the concat/model/table/add/jpeg stages,
// a background corrections (each consuming the model and its matching
// projection), and s ≈ a/4 shrink tasks fanning out of mAdd. n = 20
// reproduces the 20-node workflow of the paper's figure (4 projections, 6
// diff-fits, 4 backgrounds, 1 shrink); the paper's experiments use n = 50
// and n = 100.
//
// Edge data volumes are zero; assign costs with gen.AssignCosts.
func MontageGraph(n int) (*dag.Graph, error) {
	if n < 11 {
		return nil, fmt.Errorf("workflows: Montage needs at least 11 tasks, got %d", n)
	}
	// Pick the largest projection count a whose structural total fits n,
	// then pad with extra mDiffFit tasks (the widest real level) to land
	// exactly on n.
	a, b, s := 0, 0, 0
	for try := 1; ; try++ {
		tb := (3*try + 1) / 2
		ts := try / 4
		if ts < 1 {
			ts = 1
		}
		if total := try + tb + try + ts + 5; total > n {
			break
		}
		a, b, s = try, (3*try+1)/2, try/4
		if s < 1 {
			s = 1
		}
	}
	b += n - (a + b + a + s + 5) // pad to exactly n tasks

	g := dag.New(n)
	proj := make([]dag.TaskID, a)
	for i := range proj {
		proj[i] = g.AddTask(fmt.Sprintf("mProjectPP%d", i+1))
	}
	diff := make([]dag.TaskID, b)
	for i := range diff {
		diff[i] = g.AddTask(fmt.Sprintf("mDiffFit%d", i+1))
		// Each difference fit overlaps two adjacent projections.
		g.MustAddEdge(proj[i%a], diff[i], 0)
		if second := (i + 1) % a; second != i%a {
			g.MustAddEdge(proj[second], diff[i], 0)
		}
	}
	concat := g.AddTask("mConcatFit")
	for _, d := range diff {
		g.MustAddEdge(d, concat, 0)
	}
	model := g.AddTask("mBgModel")
	g.MustAddEdge(concat, model, 0)
	back := make([]dag.TaskID, a)
	for i := range back {
		back[i] = g.AddTask(fmt.Sprintf("mBackground%d", i+1))
		g.MustAddEdge(model, back[i], 0)
		g.MustAddEdge(proj[i], back[i], 0)
	}
	imgtbl := g.AddTask("mImgtbl")
	for _, bk := range back {
		g.MustAddEdge(bk, imgtbl, 0)
	}
	add := g.AddTask("mAdd")
	g.MustAddEdge(imgtbl, add, 0)
	shrink := make([]dag.TaskID, s)
	for i := range shrink {
		shrink[i] = g.AddTask(fmt.Sprintf("mShrink%d", i+1))
		g.MustAddEdge(add, shrink[i], 0)
	}
	jpeg := g.AddTask("mJPEG")
	for _, sh := range shrink {
		g.MustAddEdge(sh, jpeg, 0)
	}
	return g, nil
}
