package workflows

import (
	"hdlts/internal/dag"
)

// molDynEdges is the fixed edge list of the 41-task Molecular Dynamics code
// workflow (paper Fig. 12, after the modified molecular-dynamics graph of
// Kim & Browne used in the HEFT evaluation). Task numbers are 1-based.
//
// The published figure is irregular: a single entry fans out to seven
// force/position streams of unequal depth, which partially merge, exchange
// intermediate results across streams, and collapse into a two-stage
// reduction. This table re-encodes that shape level by level; minor
// edge-level deviations from the (low-resolution) original figure are
// documented in DESIGN.md §5 and do not affect the statistical comparison,
// which randomises all costs.
var molDynEdges = [][2]int{
	// entry fan-out
	{1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6}, {1, 7}, {1, 8},
	// level 1 -> level 2 (seven parallel streams with cross-links)
	{2, 9}, {2, 10}, {3, 10}, {3, 11}, {4, 11}, {4, 12}, {5, 12},
	{5, 13}, {6, 13}, {6, 14}, {7, 14}, {7, 15}, {8, 15}, {8, 9},
	// level 2 -> level 3
	{9, 16}, {10, 16}, {10, 17}, {11, 17}, {11, 18}, {12, 18},
	{12, 19}, {13, 19}, {13, 20}, {14, 20}, {14, 21}, {15, 21}, {15, 22}, {9, 22},
	// level 3 -> level 4 (first merge: 7 -> 6)
	{16, 23}, {17, 23}, {17, 24}, {18, 24}, {19, 25}, {20, 25},
	{20, 26}, {21, 26}, {21, 27}, {22, 27}, {16, 28}, {22, 28},
	// level 4 -> level 5 (6 -> 5, with a skip edge from level 3)
	{23, 29}, {24, 29}, {24, 30}, {25, 30}, {25, 31}, {26, 31},
	{27, 32}, {28, 32}, {28, 33}, {23, 33}, {18, 31},
	// level 5 -> level 6 (5 -> 4)
	{29, 34}, {30, 34}, {30, 35}, {31, 35}, {32, 36}, {33, 36}, {29, 37}, {33, 37},
	// level 6 -> level 7 (4 -> 2 reduction)
	{34, 38}, {35, 38}, {36, 39}, {37, 39},
	// level 7 -> level 8 -> exit
	{38, 40}, {39, 40}, {40, 41},
	// long-range skip edges present in the published figure
	{2, 16}, {19, 32}, {26, 36},
}

// MolDynGraph builds the fixed 41-task Molecular Dynamics code workflow
// (Section V-C3). The structure is constant; vary CCR, β, and the processor
// count through gen.AssignCosts as the paper's evaluation does.
func MolDynGraph() *dag.Graph {
	g := dag.New(41)
	for i := 1; i <= 41; i++ {
		g.AddTask("md" + itoa(i))
	}
	for _, e := range molDynEdges {
		g.MustAddEdge(dag.TaskID(e[0]-1), dag.TaskID(e[1]-1), 0)
	}
	return g
}
