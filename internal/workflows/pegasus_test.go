package workflows

import (
	"math/rand"
	"testing"

	"hdlts/internal/dag"
	"hdlts/internal/gen"
)

func TestEpigenomicsShape(t *testing.T) {
	for _, lanes := range []int{1, 4, 10} {
		g, err := EpigenomicsGraph(lanes)
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		if want := 4*lanes + 4; g.NumTasks() != want {
			t.Errorf("lanes=%d: tasks = %d, want %d", lanes, g.NumTasks(), want)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("lanes=%d: %v", lanes, err)
		}
		if len(g.Entries()) != 1 || len(g.Exits()) != 1 {
			t.Errorf("lanes=%d: entries/exits = %d/%d, want 1/1", lanes, len(g.Entries()), len(g.Exits()))
		}
		// Pipeline depth: split + 4 chain stages + 3 tail stages = 8 levels.
		if h := g.Height(); h != 8 {
			t.Errorf("lanes=%d: height = %d, want 8", lanes, h)
		}
		// The split fans out to exactly `lanes` chains.
		if d := g.OutDegree(g.Entry()); d != lanes {
			t.Errorf("lanes=%d: split out-degree = %d", lanes, d)
		}
	}
	if _, err := EpigenomicsGraph(0); err == nil {
		t.Error("EpigenomicsGraph(0) accepted")
	}
}

func TestCyberShakeShape(t *testing.T) {
	for _, vars := range []int{1, 5, 20} {
		g, err := CyberShakeGraph(vars)
		if err != nil {
			t.Fatalf("vars=%d: %v", vars, err)
		}
		if want := 2*vars + 4; g.NumTasks() != want {
			t.Errorf("vars=%d: tasks = %d, want %d", vars, g.NumTasks(), want)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("vars=%d: %v", vars, err)
		}
		// Two entries (the X/Y extractions), two exits (the two zips):
		// schedulers normalise via pseudo tasks.
		if len(g.Entries()) != 2 || len(g.Exits()) != 2 {
			t.Errorf("vars=%d: entries/exits = %d/%d, want 2/2", vars, len(g.Entries()), len(g.Exits()))
		}
	}
	if _, err := CyberShakeGraph(0); err == nil {
		t.Error("CyberShakeGraph(0) accepted")
	}
	// Every synthesis consumes both tensors.
	g, err := CyberShakeGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NumTasks(); i++ {
		id := dag.TaskID(i)
		name := g.Task(id).Name
		if len(name) > 10 && name[:10] == "seismogram" {
			if d := g.InDegree(id); d != 2 {
				t.Errorf("%s in-degree = %d, want 2", name, d)
			}
		}
	}
}

func TestLIGOShape(t *testing.T) {
	for _, blocks := range []int{1, 3, 7, 12} {
		g, err := LIGOGraph(blocks)
		if err != nil {
			t.Fatalf("blocks=%d: %v", blocks, err)
		}
		groups := (blocks + 2) / 3
		if want := 4*blocks + 2*groups; g.NumTasks() != want {
			t.Errorf("blocks=%d: tasks = %d, want %d", blocks, g.NumTasks(), want)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("blocks=%d: %v", blocks, err)
		}
		// One entry per block (the template banks), one exit per group (the
		// second-stage coincidences).
		if len(g.Entries()) != blocks || len(g.Exits()) != groups {
			t.Errorf("blocks=%d: entries/exits = %d/%d, want %d/%d",
				blocks, len(g.Entries()), len(g.Exits()), blocks, groups)
		}
	}
	if _, err := LIGOGraph(0); err == nil {
		t.Error("LIGOGraph(0) accepted")
	}
}

// TestPegasusWorkflowsSchedulable runs the whole pipeline — structure, cost
// assignment, HDLTS-compatible normalisation — for each new workflow.
func TestPegasusWorkflowsSchedulable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, build := range map[string]func() (*dag.Graph, error){
		"epigenomics": func() (*dag.Graph, error) { return EpigenomicsGraph(6) },
		"cybershake":  func() (*dag.Graph, error) { return CyberShakeGraph(10) },
		"ligo":        func() (*dag.Graph, error) { return LIGOGraph(9) },
	} {
		g, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pr, err := gen.AssignCosts(g, gen.CostParams{Procs: 4, WDAG: 70, Beta: 1.0, CCR: 2}, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := pr.G.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := pr.Normalize()
		if n.G.Entry() == dag.None || n.G.Exit() == dag.None {
			t.Fatalf("%s: normalisation failed", name)
		}
	}
}
