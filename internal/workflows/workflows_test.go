package workflows

import (
	"math/rand"
	"testing"

	"hdlts/internal/dag"
	"hdlts/internal/gen"
)

func TestPaperExampleShape(t *testing.T) {
	pr := PaperExample()
	if pr.NumTasks() != 10 || pr.NumProcs() != 3 {
		t.Fatalf("shape = %d tasks / %d procs, want 10/3", pr.NumTasks(), pr.NumProcs())
	}
	if pr.G.NumEdges() != 15 {
		t.Fatalf("edges = %d, want 15", pr.G.NumEdges())
	}
	if pr.G.Entry() != 0 || pr.G.Exit() != 9 {
		t.Fatalf("entry/exit = %d/%d, want 0/9", pr.G.Entry(), pr.G.Exit())
	}
	// Spot-check published values.
	if pr.Exec(0, 2) != 9 || pr.Exec(9, 1) != 7 {
		t.Fatal("cost matrix mismatch with the paper")
	}
	if d, ok := pr.G.EdgeData(3, 7); !ok || d != 27 {
		t.Fatal("edge (T4->T8) should carry 27")
	}
	// SLR denominator: CP by min cost is T1-T2-T9-T10 (9+13+12+7 = 41)
	// or better; recompute and sanity-bound it.
	lb, err := pr.CPMinLowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if lb <= 0 || lb > 73 {
		t.Fatalf("lower bound = %g, want within (0, 73]", lb)
	}
}

func TestFFTTaskCounts(t *testing.T) {
	// The paper: m=4 -> 15 tasks ... m=32 -> 223 tasks.
	want := map[int]int{2: 5, 4: 15, 8: 39, 16: 95, 32: 223}
	for m, n := range want {
		g, err := FFTGraph(m)
		if err != nil {
			t.Fatalf("FFTGraph(%d): %v", m, err)
		}
		if g.NumTasks() != n {
			t.Errorf("FFTGraph(%d) has %d tasks, want %d", m, g.NumTasks(), n)
		}
		if FFTTaskCount(m) != n {
			t.Errorf("FFTTaskCount(%d) = %d, want %d", m, FFTTaskCount(m), n)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("FFTGraph(%d) invalid: %v", m, err)
		}
	}
}

func TestFFTStructure(t *testing.T) {
	g, err := FFTGraph(4)
	if err != nil {
		t.Fatal(err)
	}
	// Single entry (tree root), m exits (last butterfly row).
	if len(g.Entries()) != 1 {
		t.Errorf("entries = %d, want 1", len(g.Entries()))
	}
	if len(g.Exits()) != 4 {
		t.Errorf("exits = %d, want 4 (m)", len(g.Exits()))
	}
	// Height: tree levels log2(m)+1 plus log2(m) butterfly rows.
	if h := g.Height(); h != 5 {
		t.Errorf("height = %d, want 5", h)
	}
	// Each butterfly task has exactly 2 inputs.
	for i := 7; i < g.NumTasks(); i++ {
		if d := g.InDegree(dag.TaskID(i)); d != 2 {
			t.Errorf("butterfly task %d has in-degree %d, want 2", i, d)
		}
	}
}

func TestFFTRejectsBadM(t *testing.T) {
	for _, m := range []int{0, 1, 3, 6, -8} {
		if _, err := FFTGraph(m); err == nil {
			t.Errorf("FFTGraph(%d) accepted", m)
		}
	}
}

func TestMontageSizes(t *testing.T) {
	for _, n := range []int{11, 20, 50, 100, 137} {
		g, err := MontageGraph(n)
		if err != nil {
			t.Fatalf("MontageGraph(%d): %v", n, err)
		}
		if g.NumTasks() != n {
			t.Errorf("MontageGraph(%d) has %d tasks", n, g.NumTasks())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("MontageGraph(%d) invalid: %v", n, err)
		}
		if len(g.Exits()) != 1 {
			t.Errorf("MontageGraph(%d) has %d exits, want 1 (mJPEG)", n, len(g.Exits()))
		}
	}
	if _, err := MontageGraph(10); err == nil {
		t.Error("MontageGraph(10) accepted")
	}
}

func TestMontage20MatchesPaperFigure(t *testing.T) {
	g, err := MontageGraph(20)
	if err != nil {
		t.Fatal(err)
	}
	// The 20-node Montage of the paper's Fig. 9: 4 projections, 6 diff-fits,
	// 1 concat, 1 model, 4 backgrounds, 1 imgtbl, 1 add, 1 shrink, 1 jpeg.
	counts := map[string]int{}
	for i := 0; i < g.NumTasks(); i++ {
		name := g.Task(dag.TaskID(i)).Name
		// Strip trailing digits to group by stage.
		for len(name) > 0 && name[len(name)-1] >= '0' && name[len(name)-1] <= '9' {
			name = name[:len(name)-1]
		}
		counts[name]++
	}
	want := map[string]int{
		"mProjectPP": 4, "mDiffFit": 6, "mConcatFit": 1, "mBgModel": 1,
		"mBackground": 4, "mImgtbl": 1, "mAdd": 1, "mShrink": 1, "mJPEG": 1,
	}
	for stage, n := range want {
		if counts[stage] != n {
			t.Errorf("stage %s has %d tasks, want %d (all: %v)", stage, counts[stage], n, counts)
		}
	}
}

func TestMolDynShape(t *testing.T) {
	g := MolDynGraph()
	if g.NumTasks() != 41 {
		t.Fatalf("tasks = %d, want 41", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("MD graph invalid: %v", err)
	}
	if len(g.Entries()) != 1 {
		t.Errorf("entries = %d, want 1", len(g.Entries()))
	}
	if len(g.Exits()) != 1 {
		t.Errorf("exits = %d, want 1", len(g.Exits()))
	}
	if g.Entry() != 0 || g.Exit() != 40 {
		t.Errorf("entry/exit = %d/%d, want 0/40", g.Entry(), g.Exit())
	}
	// Irregular fan-out from the entry: seven level-1 streams.
	if d := g.OutDegree(0); d != 7 {
		t.Errorf("entry out-degree = %d, want 7", d)
	}
}

func TestGaussianShape(t *testing.T) {
	for _, m := range []int{2, 3, 5, 8} {
		g, err := GaussianGraph(m)
		if err != nil {
			t.Fatalf("GaussianGraph(%d): %v", m, err)
		}
		want := (m*m + m - 2) / 2
		if g.NumTasks() != want {
			t.Errorf("GaussianGraph(%d) has %d tasks, want %d", m, g.NumTasks(), want)
		}
		if GaussianTaskCount(m) != want {
			t.Errorf("GaussianTaskCount(%d) = %d, want %d", m, GaussianTaskCount(m), want)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("GaussianGraph(%d) invalid: %v", m, err)
		}
		if len(g.Entries()) != 1 {
			t.Errorf("GaussianGraph(%d) has %d entries, want 1 (V1)", m, len(g.Entries()))
		}
	}
	if _, err := GaussianGraph(1); err == nil {
		t.Error("GaussianGraph(1) accepted")
	}
	// m = 5: the final update U4.5 is the unique exit.
	g, err := GaussianGraph(5)
	if err != nil {
		t.Fatal(err)
	}
	exits := g.Exits()
	if len(exits) != 1 || g.Task(exits[0]).Name != "U4.5" {
		t.Errorf("GaussianGraph(5) exits = %v", exits)
	}
	// Elimination height: 2(m−1) levels (pivot + update per step).
	if h := g.Height(); h != 8 {
		t.Errorf("GaussianGraph(5) height = %d, want 8", h)
	}
}

func TestWorkflowsScheduleEndToEnd(t *testing.T) {
	// Every fixed structure must survive cost assignment and produce a
	// validatable problem.
	rng := rand.New(rand.NewSource(4))
	builders := map[string]func() (*dag.Graph, error){
		"fft16":     func() (*dag.Graph, error) { return FFTGraph(16) },
		"montage50": func() (*dag.Graph, error) { return MontageGraph(50) },
		"moldyn":    func() (*dag.Graph, error) { return MolDynGraph(), nil },
	}
	for name, build := range builders {
		g, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pr, err := gen.AssignCosts(g, gen.CostParams{Procs: 4, WDAG: 60, Beta: 1.2, CCR: 2}, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := pr.G.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
