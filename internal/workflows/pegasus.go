package workflows

import (
	"fmt"

	"hdlts/internal/dag"
)

// This file adds the remaining standard Pegasus scientific workflows of the
// scheduling literature — Epigenomics, CyberShake, and LIGO Inspiral — as
// parameterised structures alongside Montage. The paper evaluates only
// Montage from this suite; the others are included so library users can
// exercise the same pipeline (costs via gen.AssignCosts) on the workloads
// neighbouring papers report.

// EpigenomicsGraph builds the Epigenomics genome-sequencing workflow for
// the given number of parallel lanes: a fan-out split feeding `lanes`
// four-stage chains (filterContams → sol2sanger → fastq2bfq → map) that
// merge into the four-stage global tail (mapMerge → maqIndex → pileup).
// Total tasks: 4·lanes + 4.
func EpigenomicsGraph(lanes int) (*dag.Graph, error) {
	if lanes < 1 {
		return nil, fmt.Errorf("workflows: Epigenomics needs at least 1 lane, got %d", lanes)
	}
	g := dag.New(4*lanes + 4)
	split := g.AddTask("fastQSplit")
	merge := make([]dag.TaskID, 0, lanes)
	stages := []string{"filterContams", "sol2sanger", "fastq2bfq", "map"}
	for l := 1; l <= lanes; l++ {
		prev := split
		for _, stage := range stages {
			cur := g.AddTask(fmt.Sprintf("%s%d", stage, l))
			g.MustAddEdge(prev, cur, 0)
			prev = cur
		}
		merge = append(merge, prev)
	}
	mapMerge := g.AddTask("mapMerge")
	for _, m := range merge {
		g.MustAddEdge(m, mapMerge, 0)
	}
	maqIndex := g.AddTask("maqIndex")
	g.MustAddEdge(mapMerge, maqIndex, 0)
	pileup := g.AddTask("pileup")
	g.MustAddEdge(maqIndex, pileup, 0)
	return g, nil
}

// CyberShakeGraph builds the CyberShake seismic-hazard workflow for the
// given number of rupture variations: two ExtractSGT tasks (the X and Y
// strain Green tensors) each feed all `vars` SeismogramSynthesis tasks;
// each synthesis feeds one PeakValCalc; a ZipSeis collects all seismograms
// and a ZipPSA collects all peak values. Total tasks: 2·vars + 4.
func CyberShakeGraph(vars int) (*dag.Graph, error) {
	if vars < 1 {
		return nil, fmt.Errorf("workflows: CyberShake needs at least 1 variation, got %d", vars)
	}
	g := dag.New(2*vars + 4)
	extractX := g.AddTask("extractSGT_X")
	extractY := g.AddTask("extractSGT_Y")
	zipSeis := g.AddTask("zipSeis")
	zipPSA := g.AddTask("zipPSA")
	for v := 1; v <= vars; v++ {
		synth := g.AddTask(fmt.Sprintf("seismogram%d", v))
		g.MustAddEdge(extractX, synth, 0)
		g.MustAddEdge(extractY, synth, 0)
		peak := g.AddTask(fmt.Sprintf("peakVal%d", v))
		g.MustAddEdge(synth, peak, 0)
		g.MustAddEdge(synth, zipSeis, 0)
		g.MustAddEdge(peak, zipPSA, 0)
	}
	return g, nil
}

// LIGOGraph builds the LIGO Inspiral gravitational-wave workflow for the
// given number of analysis blocks: each block is a TmpltBank → Inspiral
// chain; blocks are grouped (three per group) into first-stage Thinca
// coincidence tasks, each of which fans back out into per-block TrigBank →
// Inspiral2 chains that merge into one second-stage Thinca per group.
// Total tasks: 4·blocks + 2·ceil(blocks/3).
func LIGOGraph(blocks int) (*dag.Graph, error) {
	if blocks < 1 {
		return nil, fmt.Errorf("workflows: LIGO needs at least 1 block, got %d", blocks)
	}
	groups := (blocks + 2) / 3
	g := dag.New(4*blocks + 2*groups)
	inspiral := make([]dag.TaskID, blocks)
	for b := 0; b < blocks; b++ {
		bank := g.AddTask(fmt.Sprintf("tmpltBank%d", b+1))
		insp := g.AddTask(fmt.Sprintf("inspiral%d", b+1))
		g.MustAddEdge(bank, insp, 0)
		inspiral[b] = insp
	}
	for grp := 0; grp < groups; grp++ {
		lo, hi := grp*3, (grp+1)*3
		if hi > blocks {
			hi = blocks
		}
		thinca1 := g.AddTask(fmt.Sprintf("thinca1_%d", grp+1))
		for b := lo; b < hi; b++ {
			g.MustAddEdge(inspiral[b], thinca1, 0)
		}
		thinca2 := g.AddTask(fmt.Sprintf("thinca2_%d", grp+1))
		for b := lo; b < hi; b++ {
			trig := g.AddTask(fmt.Sprintf("trigBank%d", b+1))
			g.MustAddEdge(thinca1, trig, 0)
			insp2 := g.AddTask(fmt.Sprintf("inspiral2_%d", b+1))
			g.MustAddEdge(trig, insp2, 0)
			g.MustAddEdge(insp2, thinca2, 0)
		}
	}
	return g, nil
}
