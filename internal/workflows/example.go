// Package workflows provides the real-world application workflows used in
// the paper's evaluation (Section V-C): the Fig. 1 worked example (the
// classic Topcuoglu–Hariri–Wu 10-task graph), Fast Fourier Transform
// workflows, Montage astronomy workflows, and the Molecular Dynamics code
// graph. FFT/Montage/MD structures are fixed; their computation and
// communication costs are randomised with the same W_dag/β/CCR model as the
// synthetic generator, exactly as the paper does.
package workflows

import (
	"hdlts/internal/dag"
	"hdlts/internal/platform"
	"hdlts/internal/sched"
)

// PaperExample returns the Fig. 1 problem instance: ten tasks, three
// heterogeneous processors, the computation matrix and communication costs
// of the HEFT paper's canonical example. HDLTS yields makespan 73 on it
// (Table I); HEFT yields 80.
//
// Task T_i of the paper is dag.TaskID(i-1); edge data volumes equal the
// published communication costs (bandwidth is uniform 1).
func PaperExample() *sched.Problem {
	g := dag.New(10)
	for i := 1; i <= 10; i++ {
		g.AddTask("T" + itoa(i))
	}
	t := func(i int) dag.TaskID { return dag.TaskID(i - 1) }
	edges := []struct {
		u, v int
		c    float64
	}{
		{1, 2, 18}, {1, 3, 12}, {1, 4, 9}, {1, 5, 11}, {1, 6, 14},
		{2, 8, 19}, {2, 9, 16},
		{3, 7, 23},
		{4, 8, 27}, {4, 9, 23},
		{5, 9, 13},
		{6, 8, 15},
		{7, 10, 17}, {8, 10, 11}, {9, 10, 13},
	}
	for _, e := range edges {
		g.MustAddEdge(t(e.u), t(e.v), e.c)
	}
	w := platform.MustCostsFromRows([][]float64{
		{14, 16, 9},
		{13, 19, 18},
		{11, 13, 19},
		{13, 8, 17},
		{12, 13, 10},
		{13, 16, 9},
		{7, 15, 11},
		{5, 11, 14},
		{18, 12, 20},
		{21, 7, 16},
	})
	return sched.MustProblem(g, platform.MustUniform(3), w)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
