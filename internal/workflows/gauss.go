package workflows

import (
	"fmt"

	"hdlts/internal/dag"
)

// GaussianGraph builds the Gaussian-elimination workflow for an m×m matrix
// (m >= 2) — the third classic real-world DAG of the HEFT literature,
// included beyond the paper's own set as a reference workload.
//
// For every elimination step k = 1..m−1 there is one pivot task V_k
// followed by m−k update tasks U_{k,j} (j = k+1..m):
//
//	V_k → U_{k,j}              (the pivot row feeds every update)
//	U_{k,k+1} → V_{k+1}        (the next pivot needs the first update)
//	U_{k,j}   → U_{k+1,j}      (column j's next update needs this one)
//
// Total tasks: (m² + m − 2) / 2 — e.g. 14 for m = 5.
func GaussianGraph(m int) (*dag.Graph, error) {
	if m < 2 {
		return nil, fmt.Errorf("workflows: Gaussian elimination needs matrix size >= 2, got %d", m)
	}
	g := dag.New((m*m + m - 2) / 2)
	pivot := make([]dag.TaskID, m)    // pivot[k] for k = 1..m-1
	update := make([][]dag.TaskID, m) // update[k][j] for j = k+1..m
	for k := 1; k < m; k++ {
		pivot[k] = g.AddTask(fmt.Sprintf("V%d", k))
		update[k] = make([]dag.TaskID, m+1)
		for j := k + 1; j <= m; j++ {
			update[k][j] = g.AddTask(fmt.Sprintf("U%d.%d", k, j))
			g.MustAddEdge(pivot[k], update[k][j], 0)
		}
	}
	for k := 1; k < m-1; k++ {
		g.MustAddEdge(update[k][k+1], pivot[k+1], 0)
		for j := k + 2; j <= m; j++ {
			g.MustAddEdge(update[k][j], update[k+1][j], 0)
		}
	}
	return g, nil
}

// GaussianTaskCount returns the task count of GaussianGraph(m) without
// building it.
func GaussianTaskCount(m int) int { return (m*m + m - 2) / 2 }
