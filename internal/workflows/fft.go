package workflows

import (
	"fmt"
	"math/bits"

	"hdlts/internal/dag"
)

// FFTGraph builds the Fast Fourier Transform application workflow for m
// input points (m must be a power of two, m >= 2), following the structure
// used by the paper (Section V-C1, after Topcuoglu et al.):
//
//   - a recursive-call binary tree of 2·(m−1)+1 tasks rooted at the entry,
//     splitting the input down to m leaves; followed by
//   - log₂(m) rows of m butterfly tasks each (m·log₂m tasks), wired with the
//     classic decimation-in-time pattern: butterfly(r, j) consumes the
//     outputs of stage r−1 at columns j and j XOR (m >> (r+1)); row 0
//     consumes the tree leaves at columns j and j XOR m/2.
//
// The last butterfly row forms m exit tasks, so the graph is multi-exit;
// schedulers normalise it with a pseudo exit task. Total task count is
// 2(m−1)+1 + m·log₂m — 15 for m=4 and 223 for m=32, matching the paper.
//
// Edge data volumes are zero; assign costs with gen.AssignCosts.
func FFTGraph(m int) (*dag.Graph, error) {
	if m < 2 || m&(m-1) != 0 {
		return nil, fmt.Errorf("workflows: FFT input points m = %d must be a power of two >= 2", m)
	}
	stages := bits.TrailingZeros(uint(m)) // log2(m)

	g := dag.New(2*m - 1 + m*stages)
	// Recursive tree in heap order: node k (1-based, 1..2m−1) has children
	// 2k and 2k+1. Our TaskID for heap node k is k−1.
	for k := 1; k <= 2*m-1; k++ {
		g.AddTask(fmt.Sprintf("rec%d", k))
	}
	for k := 1; k <= m-1; k++ {
		g.MustAddEdge(dag.TaskID(k-1), dag.TaskID(2*k-1), 0)
		g.MustAddEdge(dag.TaskID(k-1), dag.TaskID(2*k), 0)
	}
	// Leaves are heap nodes m..2m−1; leaf column j is heap node m+j.
	leaf := func(j int) dag.TaskID { return dag.TaskID(m + j - 1) }

	// Butterfly rows.
	bf := make([][]dag.TaskID, stages)
	for r := 0; r < stages; r++ {
		bf[r] = make([]dag.TaskID, m)
		for j := 0; j < m; j++ {
			bf[r][j] = g.AddTask(fmt.Sprintf("bfly%d.%d", r+1, j))
		}
	}
	for r := 0; r < stages; r++ {
		stride := m >> (r + 1) // XOR distance combined at this stage
		for j := 0; j < m; j++ {
			var in1, in2 dag.TaskID
			if r == 0 {
				in1, in2 = leaf(j), leaf(j^stride)
			} else {
				in1, in2 = bf[r-1][j], bf[r-1][j^stride]
			}
			g.MustAddEdge(in1, bf[r][j], 0)
			if in2 != in1 {
				g.MustAddEdge(in2, bf[r][j], 0)
			}
		}
	}
	return g, nil
}

// FFTTaskCount returns the number of tasks in FFTGraph(m) without building
// it: 2(m−1)+1 recursive tasks plus m·log₂m butterfly tasks.
func FFTTaskCount(m int) int {
	return 2*(m-1) + 1 + m*bits.TrailingZeros(uint(m))
}
