package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func emitSample(tr Tracer) {
	tr.Emit(Event{Type: EvIteration, Alg: "HDLTS", Task: 2, Proc: 0, Iter: 1, Value: 9.5})
	tr.Emit(Event{Type: EvCommit, Alg: "HDLTS", Task: 2, Proc: 0, Start: 0, Finish: 14})
	tr.Emit(Event{Type: EvCommit, Alg: "HDLTS", Task: 4, Proc: 1, Start: 14, Finish: 73, Dup: true})
	tr.Emit(Event{Type: EvCommit, Alg: "HEFT", Task: 2, Proc: 2, Start: 0, Finish: 80})
	tr.Emit(Event{Type: EvFailure, Alg: "HDLTS-online", Task: -1, Proc: 1, Time: 150})
	tr.Emit(Event{Type: EvComplete, Alg: "HDLTS-online", Task: 5, Proc: 2, Start: 10, Finish: 20})
	tr.Emit(Event{Type: EvDispatch, Alg: "HDLTS-online", Task: 6, Proc: 2, Time: 20, Start: 20, Finish: 31})
	tr.Emit(Event{Type: EvReplan, Alg: "HDLTS-online", Task: -1, Proc: -1, Time: 20, Value: 3})
}

func TestJSONLDeterministicStream(t *testing.T) {
	var a, b bytes.Buffer
	sa, sb := NewJSONL(&a), NewJSONL(&b)
	emitSample(sa)
	emitSample(sb)
	if err := sa.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sb.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical event sequences produced different bytes:\n%s\n---\n%s", a.String(), b.String())
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if first["ev"] != "iteration" || first["alg"] != "HDLTS" || first["seq"].(float64) != 1 {
		t.Errorf("unexpected first line: %v", first)
	}
	if _, ok := first["wall_ns"]; ok {
		t.Error("deterministic stream carries wall-clock timestamps")
	}
}

func TestJSONLWallClockOptIn(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONL(&buf).WallClock(true)
	s.Emit(Event{Type: EvCommit, Task: 0, Proc: 0, Finish: 1})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatal(err)
	}
	if _, ok := line["wall_ns"]; !ok {
		t.Errorf("wall_ns missing with WallClock(true): %v", line)
	}
}

// chromeDoc parses the sink output for assertions.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestChromeSinkTracksAndSpans(t *testing.T) {
	c := NewChrome()
	emitSample(c)
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// One process per algorithm, stamped via metadata.
	pids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			pids[ev.Args["name"].(string)] = ev.PID
		}
	}
	for _, alg := range []string{"HDLTS", "HEFT", "HDLTS-online"} {
		if _, ok := pids[alg]; !ok {
			t.Errorf("missing process track for %s (have %v)", alg, pids)
		}
	}
	// HDLTS track max span end = 73 schedule units (the makespan), at the
	// default 1 unit = 1000 µs scale. Dispatches must not double spans.
	maxEnd, spans := 0.0, 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.PID == pids["HDLTS"] {
			if end := (ev.TS + ev.Dur) / 1000; end > maxEnd {
				maxEnd = end
			}
		}
		if ev.PID == pids["HDLTS-online"] {
			spans++
		}
	}
	if maxEnd != 73 {
		t.Errorf("HDLTS track ends at %g, want 73", maxEnd)
	}
	if spans != 1 {
		t.Errorf("online track has %d spans, want 1 (dispatch must not duplicate complete)", spans)
	}
	// The duplicate commit is marked in the span name.
	foundDup, foundFail := false, false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && strings.Contains(ev.Name, "+dup") {
			foundDup = true
		}
		if ev.Ph == "i" && ev.Name == "failure" {
			foundFail = true
		}
	}
	if !foundDup {
		t.Error("duplicate span not marked")
	}
	if !foundFail {
		t.Error("failure instant missing")
	}
}

func TestChromeSetProcNames(t *testing.T) {
	c := NewChrome().SetProcNames([]string{"edge-gpu-0", ""})
	c.Emit(Event{Type: EvCommit, Alg: "A", Task: 0, Proc: 0, Start: 0, Finish: 1})
	c.Emit(Event{Type: EvCommit, Alg: "A", Task: 1, Proc: 1, Start: 0, Finish: 1})
	c.Emit(Event{Type: EvCommit, Alg: "A", Task: 2, Proc: 2, Start: 0, Finish: 1})
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	lanes := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			lanes[ev.TID] = ev.Args["name"].(string)
		}
	}
	// Named slot uses the platform name; empty and out-of-range slots keep
	// the positional fallback.
	want := map[int]string{0: "edge-gpu-0", 1: "P2", 2: "P3"}
	for tid, name := range want {
		if lanes[tid] != name {
			t.Errorf("lane %d = %q, want %q (all: %v)", tid, lanes[tid], name, lanes)
		}
	}
}

func TestChromeSetScale(t *testing.T) {
	c := NewChrome().SetScale(1)
	c.Emit(Event{Type: EvCommit, Alg: "A", Task: 0, Proc: 0, Start: 5, Finish: 9})
	c.SetScale(0) // ignored
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			if ev.TS != 5 || ev.Dur != 4 {
				t.Errorf("scale 1 span = (ts %g, dur %g), want (5, 4)", ev.TS, ev.Dur)
			}
			return
		}
	}
	t.Fatal("no span rendered")
}
