package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// This file is the span half of the tracing layer: where Event records what
// a scheduler decided, a Span records how long one operation of the serving
// path took and which operation caused it. Spans form a tree per trace —
// every span carries the trace ID, its own ID, and its parent's — and the
// trace ID is carried through the process via context.Context, so the HTTP
// layer, the job subsystem, and the scheduler all stamp the same ID without
// knowing about each other.
//
// Finished spans land in a TraceStore: a bounded in-memory ring of traces
// keyed by trace ID, each holding the span tree plus the decision events
// emitted while that trace was active. The store is the backing for
// GET /v1/jobs/{id}/trace — answer "why was this mapping chosen?" for any
// single request, after the fact, from its ID alone.

// Span is one timed operation within a trace. ParentID is empty on the
// root. Attrs carry small string facts (method, path, algorithm, status).
type Span struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	End      time.Time         `json:"end"`
	Attrs    map[string]string `json:"attrs,omitempty"`

	store *TraceStore // recorded into on Finish; nil on the no-op span
}

// SetAttr records one attribute on the span. Safe on a nil span (the
// no-op path hands nil spans out), not safe for concurrent use — a span
// belongs to one goroutine between Start and Finish.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
}

// Finish stamps the end time and commits the span to its trace. Safe on a
// nil span; finishing twice records the span once (the second call is
// ignored by the store only if the trace was evicted meanwhile — callers
// should finish exactly once, typically via defer).
func (s *Span) Finish() {
	if s == nil || s.store == nil {
		return
	}
	s.End = time.Now()
	st := s.store
	s.store = nil
	st.addSpan(s)
}

// Duration is End minus Start (zero until Finish).
func (s *Span) Duration() time.Duration {
	if s == nil || s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// ctxKey keys the tracing values carried via context.Context.
type ctxKey int

const (
	ctxTraceID ctxKey = iota
	ctxSpan
	ctxStore
)

// WithTraceID returns ctx carrying the trace ID; everything downstream —
// spans, job records, decision events — stamps this ID.
func WithTraceID(ctx context.Context, traceID string) context.Context {
	return context.WithValue(ctx, ctxTraceID, traceID)
}

// TraceIDFrom returns the trace ID carried by ctx, or "".
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxTraceID).(string)
	return id
}

// WithTraceStore returns ctx carrying the store StartSpan records into.
func WithTraceStore(ctx context.Context, ts *TraceStore) context.Context {
	return context.WithValue(ctx, ctxStore, ts)
}

// TraceStoreFrom returns the store carried by ctx, or nil.
func TraceStoreFrom(ctx context.Context) *TraceStore {
	ts, _ := ctx.Value(ctxStore).(*TraceStore)
	return ts
}

// SpanFrom returns the innermost active span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxSpan).(*Span)
	return s
}

// StartSpan begins a span named name under ctx's current span and returns
// the child context carrying it. attrs are alternating key, value pairs.
// When ctx carries no store, no trace ID, or a trace the store sampled
// out, StartSpan is free: it returns ctx unchanged and a nil span whose
// methods no-op — instrumented paths need no branches.
func StartSpan(ctx context.Context, name string, attrs ...string) (context.Context, *Span) {
	ts := TraceStoreFrom(ctx)
	if ts == nil {
		return ctx, nil
	}
	traceID := TraceIDFrom(ctx)
	if traceID == "" || !ts.Sampled(traceID) {
		return ctx, nil
	}
	sp := &Span{
		TraceID: traceID,
		SpanID:  NewSpanID(),
		Name:    name,
		Start:   time.Now(),
		store:   ts,
	}
	if parent := SpanFrom(ctx); parent != nil {
		sp.ParentID = parent.SpanID
	}
	for i := 0; i+1 < len(attrs); i += 2 {
		//lint:hdltsvet-ignore eventkey forwarding variadic attrs whose keys were checked at the caller
		sp.SetAttr(attrs[i], attrs[i+1])
	}
	return context.WithValue(ctx, ctxSpan, sp), sp
}

// NewTraceID draws a fresh 16-hex-character trace ID from crypto/rand —
// the shape a generated X-Request-ID takes.
func NewTraceID() string { return randHex8() }

// NewSpanID draws a fresh span ID.
func NewSpanID() string { return randHex8() }

func randHex8() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; ID allocation has no
		// degraded mode.
		panic("obs: crypto/rand: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Per-trace retention bounds: a runaway scheduler (estimates are
// tasks × procs per iteration) must not balloon one trace without limit.
const (
	maxSpansPerTrace  = 512
	maxEventsPerTrace = 4096
)

// Trace is one finished or in-progress trace snapshot: the span tree
// (flat, linked by ParentID) plus the decision events recorded while the
// trace was active, in emission order.
type Trace struct {
	TraceID       string  `json:"trace_id"`
	Spans         []*Span `json:"spans"`
	Events        []Event `json:"-"` // wire-encode with EncodeEvents
	SpansDropped  int     `json:"spans_dropped,omitempty"`
	EventsDropped int     `json:"events_dropped,omitempty"`
}

// traceEntry is the store's mutable per-trace state.
type traceEntry struct {
	spans         []*Span
	events        []Event
	spansDropped  int
	eventsDropped int
}

// TraceStore retains recent traces in a bounded in-memory ring: starting a
// trace beyond capacity evicts the oldest. Sampling is decided once per
// trace ID at Start — with sample N, one in every N new IDs is retained —
// so high-QPS deployments shed tracing cost without touching call sites.
// All methods are safe for concurrent use.
type TraceStore struct {
	mu      sync.Mutex
	cap     int
	sample  int
	started uint64 // new-trace counter driving the sampling decision
	traces  map[string]*traceEntry
	order   []string // insertion order, oldest first, for eviction
	evicted uint64
	hub     *Hub // live republish target; nil until AttachHub
}

// AttachHub makes the store republish every committed span (Kind "span")
// and decision event (Kind "decision") on h, so live subscribers see what
// the trace ring records — publication happens outside the store's mutex
// and only while a subscriber is attached. Call before the store starts
// receiving traffic.
func (ts *TraceStore) AttachHub(h *Hub) {
	ts.mu.Lock()
	ts.hub = h
	ts.mu.Unlock()
}

// NewTraceStore returns a store retaining up to capacity traces (default
// 512) and sampling one in every sample new trace IDs (default 1 = all).
func NewTraceStore(capacity, sample int) *TraceStore {
	if capacity <= 0 {
		capacity = 512
	}
	if sample <= 0 {
		sample = 1
	}
	return &TraceStore{
		cap:    capacity,
		sample: sample,
		traces: make(map[string]*traceEntry),
	}
}

// Start adopts traceID into the store and reports whether it is retained.
// An ID already present is retained without consuming the sampling
// counter, so re-submissions and post-restart job runs rejoin their trace.
func (ts *TraceStore) Start(traceID string) bool {
	if traceID == "" {
		return false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.traces[traceID]; ok {
		return true
	}
	ts.started++
	if (ts.started-1)%uint64(ts.sample) != 0 {
		return false
	}
	for len(ts.order) >= ts.cap {
		oldest := ts.order[0]
		ts.order = ts.order[1:]
		delete(ts.traces, oldest)
		ts.evicted++
	}
	ts.traces[traceID] = &traceEntry{}
	ts.order = append(ts.order, traceID)
	return true
}

// Sampled reports whether traceID is currently retained.
func (ts *TraceStore) Sampled(traceID string) bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	_, ok := ts.traces[traceID]
	return ok
}

// addSpan commits one finished span; spans for evicted traces are dropped
// from the ring but still reach live subscribers (a watcher should see the
// span even when the bounded ring cannot keep it).
func (ts *TraceStore) addSpan(s *Span) {
	ts.mu.Lock()
	e, ok := ts.traces[s.TraceID]
	if ok {
		if len(e.spans) >= maxSpansPerTrace {
			e.spansDropped++
		} else {
			e.spans = append(e.spans, s)
		}
	}
	hub := ts.hub
	ts.mu.Unlock()
	if ok && hub.Active() {
		hub.publishSpan(s)
	}
}

// addEvent records one decision event against traceID, republishing it on
// the attached hub (outside the mutex) when anyone is listening.
func (ts *TraceStore) addEvent(traceID string, ev Event) {
	ts.mu.Lock()
	e, ok := ts.traces[traceID]
	if ok {
		if len(e.events) >= maxEventsPerTrace {
			e.eventsDropped++
		} else {
			e.events = append(e.events, ev)
		}
	}
	hub := ts.hub
	ts.mu.Unlock()
	if ok && hub.Active() {
		hub.publishDecision(traceID, ev)
	}
}

// Get returns a snapshot of the trace, or false when the ID was never
// started, sampled out, or already evicted.
func (ts *TraceStore) Get(traceID string) (*Trace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	e, ok := ts.traces[traceID]
	if !ok {
		return nil, false
	}
	t := &Trace{
		TraceID:       traceID,
		Spans:         append([]*Span(nil), e.spans...),
		Events:        append([]Event(nil), e.events...),
		SpansDropped:  e.spansDropped,
		EventsDropped: e.eventsDropped,
	}
	return t, true
}

// Len reports how many traces are retained.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.traces)
}

// Evicted reports how many traces the ring has dropped for capacity.
func (ts *TraceStore) Evicted() uint64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.evicted
}

// Tracer returns a Tracer appending decision events to traceID's trace,
// or Nop when the trace is not retained — attach it to a Problem with
// WithTracer and the scheduler's decision log lands next to the span tree.
func (ts *TraceStore) Tracer(traceID string) Tracer {
	if traceID == "" || !ts.Sampled(traceID) {
		return Nop
	}
	return traceTracer{ts: ts, traceID: traceID}
}

// traceTracer is the Tracer TraceStore.Tracer hands out.
type traceTracer struct {
	ts      *TraceStore
	traceID string
}

func (t traceTracer) Enabled() bool { return true }
func (t traceTracer) Emit(ev Event) { t.ts.addEvent(t.traceID, ev) }
