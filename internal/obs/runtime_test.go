package obs

import (
	"runtime"
	"strings"
	"testing"
	"time"

	rtmetrics "runtime/metrics"
)

func TestRuntimeCollectorPopulatesGauges(t *testing.T) {
	reg := NewRegistry()
	c := StartRuntime(reg, "test_runtime", time.Hour) // first poll is synchronous
	defer c.Stop()

	if v := reg.Gauge("test_runtime_goroutines").Value(); v < 1 {
		t.Errorf("goroutines gauge = %g, want >= 1", v)
	}
	if v := reg.Gauge("test_runtime_gomaxprocs").Value(); v != float64(runtime.GOMAXPROCS(0)) {
		t.Errorf("gomaxprocs gauge = %g, want %d", v, runtime.GOMAXPROCS(0))
	}
	if v := reg.Gauge("test_runtime_memory_total_bytes").Value(); v <= 0 {
		t.Errorf("memory total gauge = %g, want > 0", v)
	}

	// Force GC activity, re-poll, and the pause quantile gauges must exist
	// (possibly zero on a quiet runtime, but present in the exposition).
	runtime.GC()
	c.Collect()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		"test_runtime_goroutines",
		"test_runtime_gc_cycles_total",
		`test_runtime_gc_pause_seconds{q="0.5"}`,
		`test_runtime_gc_pause_seconds{q="0.99"}`,
		`test_runtime_sched_latency_seconds{q="0.9"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if v := reg.Gauge("test_runtime_gc_cycles_total").Value(); v < 1 {
		t.Errorf("gc cycles = %g after runtime.GC(), want >= 1", v)
	}
}

func TestRuntimeCollectorStopIsIdempotent(t *testing.T) {
	c := StartRuntime(NewRegistry(), "x", 10*time.Millisecond)
	c.Stop()
	c.Stop() // second stop must not panic or hang
}

func TestHistQuantile(t *testing.T) {
	h := &rtmetrics.Float64Histogram{
		Counts:  []uint64{10, 80, 10},
		Buckets: []float64{0, 1, 2, 3},
	}
	if q := histQuantile(h, 0.5); q != 2 {
		t.Errorf("q0.5 = %g, want 2 (median falls in the middle bucket)", q)
	}
	if q := histQuantile(h, 0.05); q != 1 {
		t.Errorf("q0.05 = %g, want 1", q)
	}
	if q := histQuantile(h, 0.99); q != 3 {
		t.Errorf("q0.99 = %g, want 3", q)
	}
	// Quantile landing in a +Inf overflow bucket clamps to the last finite
	// bound.
	inf := &rtmetrics.Float64Histogram{
		Counts:  []uint64{1, 9},
		Buckets: []float64{0, 1, positiveInf()},
	}
	if q := histQuantile(inf, 0.99); q != 1 {
		t.Errorf("overflow q0.99 = %g, want 1", q)
	}
	empty := &rtmetrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}
	if q := histQuantile(empty, 0.5); q != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", q)
	}
}

func positiveInf() float64 {
	v := 1e308
	return v * 10
}

func TestReadBuildAndRegister(t *testing.T) {
	info := ReadBuild()
	if info.GoVersion == "" {
		t.Error("BuildInfo.GoVersion empty under the go tool")
	}
	reg := NewRegistry()
	got := RegisterBuildInfo(reg)
	if got != info {
		t.Errorf("RegisterBuildInfo returned %+v, ReadBuild says %+v", got, info)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), MetricBuildInfo+"{") ||
		!strings.Contains(b.String(), info.GoVersion) {
		t.Errorf("exposition missing build info gauge:\n%s", b.String())
	}
}
