package obs

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// This file is the solver-phase profiling layer: a near-zero-overhead way
// for the schedulers to attribute wall time to their algorithmic phases
// (rank computation, ITQ priority scans, EFT evaluation, insertion search),
// exposed two ways at once:
//
//   - hdlts_solver_phase_seconds histograms labelled {alg, phase} with
//     µs-resolution buckets, so /metrics answers "where does solve time go"
//     without a profiler attached;
//   - runtime/pprof goroutine labels (algorithm, phase), so CPU profiles
//     taken from the -debug-addr listener attribute samples to the same
//     phase vocabulary.
//
// The fast path is built for solver inner loops: a Profile pre-resolves one
// histogram per phase, so Start/Stop/Tick cost one monotonic clock read and
// two atomic adds each, with zero allocations — and when profiling is
// disabled (or the Profile is nil) the primitives skip the clock read too.

// PhaseID names one solver phase. The IDs index a Profile's pre-resolved
// histograms; String returns the metric label value.
type PhaseID uint8

const (
	// PhaseSchedule covers one whole Schedule call, entry to return.
	PhaseSchedule PhaseID = iota
	// PhaseRank covers priority-vector computation: upward/downward ranks,
	// OCT tables, PETS level ranks.
	PhaseRank
	// PhaseScan covers the per-iteration ITQ sweep that recomputes EFT
	// vectors and penalty values for every ready task (HDLTS phases 1+2).
	PhaseScan
	// PhaseEFT covers EFT evaluation: Estimate/EstimateAll/BestEFT calls.
	PhaseEFT
	// PhaseInsertion covers selecting the processor and committing the task
	// (including the insertion-based slot search inside Commit's placement).
	PhaseInsertion
	// PhaseReplan covers dynamic-mode replanning decisions (Policy.Pick).
	PhaseReplan

	numPhases
)

// phaseNames are the metric label values, aligned with the PhaseID order.
var phaseNames = [numPhases]string{"schedule", "rank", "itq_scan", "eft", "insertion", "replan"}

// String returns the phase label ("schedule", "rank", "itq_scan", ...).
func (p PhaseID) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// MetricSolverPhase is the per-phase solver latency histogram name.
const MetricSolverPhase = "hdlts_solver_phase_seconds"

// solverPhaseBuckets spans 1µs–10s with three log-spaced points per decade:
// small problems solve in tens of µs, 100k-task problems in seconds, and
// the default decade buckets cannot separate a 30µs rank pass from a 90µs
// one.
var solverPhaseBuckets = ExpBuckets(1e-6, 10, 3)

// Profile is one algorithm's set of pre-resolved phase histograms. A nil
// Profile is the disabled state: every method no-ops without reading the
// clock, so instrumented hot paths need no branches of their own.
type Profile struct {
	alg   string
	hists [numPhases]*Histogram
}

// SolverProfile returns the registry's phase profile for algorithm alg,
// creating its histogram series on first use.
func (r *Registry) SolverProfile(alg string) *Profile {
	r.mu.Lock()
	if p, ok := r.profiles[alg]; ok {
		r.mu.Unlock()
		return p
	}
	r.mu.Unlock()
	// Build outside the lock: Histogram and SetBuckets take it themselves.
	r.SetBuckets(MetricSolverPhase, solverPhaseBuckets)
	p := &Profile{alg: alg}
	for ph := PhaseID(0); ph < numPhases; ph++ {
		p.hists[ph] = r.Histogram(MetricSolverPhase, "alg", alg, "phase", ph.String())
	}
	r.mu.Lock()
	if prev, ok := r.profiles[alg]; ok {
		p = prev // lost the race; keep the first
	} else {
		r.profiles[alg] = p
	}
	r.mu.Unlock()
	return p
}

// SolverProfileFor returns the default registry's profile for alg, or nil
// when solver profiling is disabled. Callers hold the (possibly nil)
// result for the duration of one solve; all Profile methods are nil-safe.
func SolverProfileFor(alg string) *Profile {
	if solverProfilingOff.Load() {
		return nil
	}
	return defaultRegistry.SolverProfile(alg)
}

// solverProfilingOff gates SolverProfileFor, inverted so the zero value
// means profiling is on by default: the enabled-path overhead is two
// atomic adds and a clock read per phase boundary, far below solver cost
// at any realistic scale.
var solverProfilingOff atomic.Bool

// SetSolverProfiling enables or disables solver phase profiling process-
// wide and returns the previous setting. Disabling makes SolverProfileFor
// return nil, which turns every phase-timer call site into a branch-only
// no-op with zero allocations (see BenchmarkPhaseDisabled).
func SetSolverProfiling(on bool) bool {
	return !solverProfilingOff.Swap(!on)
}

// Alg returns the algorithm label the profile records under ("" on nil).
func (p *Profile) Alg() string {
	if p == nil {
		return ""
	}
	return p.alg
}

// PhaseTimer times one contiguous phase occurrence. The zero value (from a
// nil Profile) is a no-op.
type PhaseTimer struct {
	h     *Histogram
	start time.Time
}

// Start begins timing one occurrence of phase ph:
//
//	defer prof.Start(obs.PhaseSchedule).Stop()
func (p *Profile) Start(ph PhaseID) PhaseTimer {
	if p == nil {
		return PhaseTimer{}
	}
	return PhaseTimer{h: p.hists[ph], start: time.Now()}
}

// Stop records the elapsed seconds into the phase histogram.
func (t PhaseTimer) Stop() {
	if t.h != nil {
		t.h.ObserveSince(t.start)
	}
}

// PhaseAccum accumulates many short intervals of one phase — the shape of a
// solver inner loop, where a µs-scale tick per iteration must not pay a
// histogram observation each time — and flushes one total observation per
// solve. Not safe for concurrent use; one accumulator belongs to one solve.
type PhaseAccum struct {
	h  *Histogram
	ns int64
}

// Accum returns an accumulator for phase ph. On a nil Profile the
// accumulator is disabled: Tick/ObserveSince/Flush no-op without clock
// reads.
func (p *Profile) Accum(ph PhaseID) PhaseAccum {
	if p == nil {
		return PhaseAccum{}
	}
	return PhaseAccum{h: p.hists[ph]}
}

// PhaseTick is one in-flight interval of an accumulator.
type PhaseTick struct {
	a     *PhaseAccum
	start time.Time
}

// Tick starts one interval; End adds its duration to the accumulator.
func (a *PhaseAccum) Tick() PhaseTick {
	if a.h == nil {
		return PhaseTick{}
	}
	return PhaseTick{a: a, start: time.Now()}
}

// End closes the interval opened by Tick.
func (t PhaseTick) End() {
	if t.a != nil {
		t.a.ns += int64(time.Since(t.start))
	}
}

// ObserveSince adds the wall time elapsed since start to the accumulator —
// for call sites that already read the clock for another metric and want
// to share the read.
func (a *PhaseAccum) ObserveSince(start time.Time) {
	if a.h != nil {
		a.ns += int64(time.Since(start))
	}
}

// Enabled reports whether the accumulator records anything (false for
// accumulators from a nil Profile). Loops that chain several phases per
// iteration check it once and skip their clock reads entirely when off.
func (a *PhaseAccum) Enabled() bool { return a.h != nil }

// SampledTick carries the chained-boundary clock through one *sampled*
// solver iteration: solver loops that time only one iteration in k read
// the clock once per phase boundary (Lap both closes the previous phase
// and opens the next) and flush the totals scaled back up by k. Keeping
// the clock reads here, next to the other metric-timing primitives, also
// keeps scheduler packages free of raw wall-clock calls (the determinism
// vet check).
type SampledTick struct{ t time.Time }

// StartSample opens a sampled iteration at the current instant.
func StartSample() SampledTick { return SampledTick{t: time.Now()} }

// Lap closes the phase opened by the previous boundary into acc and opens
// the next phase, with a single clock read.
func (s *SampledTick) Lap(acc *PhaseAccum) {
	now := time.Now()
	if acc.h != nil {
		acc.ns += int64(now.Sub(s.t))
	}
	s.t = now
}

// FlushScaled records the accumulated total multiplied by k as one
// histogram observation and resets the accumulator — the flush companion
// to sampled timing: one iteration in k is measured, so the recorded
// total scales by k. Nothing is recorded when no time accumulated.
func (a *PhaseAccum) FlushScaled(k int64) {
	if a.h != nil && a.ns > 0 {
		a.h.Observe(float64(a.ns*k) / 1e9)
		a.ns = 0
	}
}

// Flush records the accumulated total as one histogram observation and
// resets the accumulator. Nothing is recorded when no time accumulated.
func (a *PhaseAccum) Flush() {
	if a.h != nil && a.ns > 0 {
		a.h.Observe(float64(a.ns) / 1e9)
		a.ns = 0
	}
}

// Do runs fn as phase ph with both the histogram timer and pprof goroutine
// labels {algorithm, phase} applied, so CPU profile samples taken while fn
// runs attribute to the phase. Label application allocates, so Do is for
// coarse phases (a rank pass, not a per-iteration tick). On a nil Profile
// fn runs undecorated.
func (p *Profile) Do(ph PhaseID, fn func()) {
	if p == nil {
		fn()
		return
	}
	t := p.Start(ph)
	pprof.Do(context.Background(), pprof.Labels("algorithm", p.alg, "phase", ph.String()), func(context.Context) { fn() })
	t.Stop()
}

// WithPprofLabels runs fn with pprof goroutine labels {algorithm, phase}
// derived from ctx — the serving-path hook: the daemon wraps each solve so
// profiles from the -debug-addr listener split by algorithm even before any
// solver-internal phase relabels. Labels nest and restore on return.
func WithPprofLabels(ctx context.Context, alg, phase string, fn func(context.Context)) {
	pprof.Do(ctx, pprof.Labels("algorithm", alg, "phase", phase), fn)
}
