package obs

import (
	"fmt"
	"sync"
	"testing"
)

func newTestHub(buf int) *Hub {
	return NewHub(NewRegistry(), buf)
}

func TestHubFanOutDeliversToAllSubscribers(t *testing.T) {
	h := newTestHub(16)
	a := h.Subscribe(StreamFilter{}, 0)
	b := h.Subscribe(StreamFilter{}, 0)
	defer a.Close()
	defer b.Close()

	for i := 0; i < 5; i++ {
		h.Publish(StreamEvent{Kind: KindStepRun, Workflow: "wf-1", Step: fmt.Sprintf("s%d", i), Proc: i})
	}
	for _, sub := range []*Subscription{a, b} {
		for i := 0; i < 5; i++ {
			ev := <-sub.C()
			if ev.Kind != KindStepRun || ev.Step != fmt.Sprintf("s%d", i) {
				t.Fatalf("event %d: got kind=%q step=%q", i, ev.Kind, ev.Step)
			}
			if ev.Seq != uint64(i+1) {
				t.Fatalf("event %d: seq = %d, want %d", i, ev.Seq, i+1)
			}
		}
	}
	if got := h.Published(); got != 5 {
		t.Fatalf("Published() = %d, want 5", got)
	}
	if got := h.PublishedFor("wf-1"); got != 5 {
		t.Fatalf("PublishedFor(wf-1) = %d, want 5", got)
	}
}

func TestHubFilterByKindTraceAndWorkflow(t *testing.T) {
	h := newTestHub(16)
	byKind := h.Subscribe(StreamFilter{Kinds: map[string]bool{KindWorkflowReplan: true}}, 0)
	byTrace := h.Subscribe(StreamFilter{TraceID: "t-1"}, 0)
	// The per-workflow feed: OR of workflow ID and the submitting trace.
	byWF := h.Subscribe(StreamFilter{Workflow: "wf-9", TraceID: "t-9"}, 0)
	defer byKind.Close()
	defer byTrace.Close()
	defer byWF.Close()

	h.Publish(StreamEvent{Kind: KindStepRun, Workflow: "wf-9"})        // byWF only
	h.Publish(StreamEvent{Kind: KindSpan, TraceID: "t-9"})             // byWF only (trace half)
	h.Publish(StreamEvent{Kind: KindWorkflowReplan, Workflow: "wf-2"}) // byKind only
	h.Publish(StreamEvent{Kind: KindDecision, TraceID: "t-1"})         // byTrace only
	h.Publish(StreamEvent{Kind: KindStepDone, Workflow: "wf-other"})   // nobody

	if ev := <-byKind.C(); ev.Kind != KindWorkflowReplan {
		t.Fatalf("byKind got %q", ev.Kind)
	}
	if ev := <-byTrace.C(); ev.TraceID != "t-1" {
		t.Fatalf("byTrace got trace %q", ev.TraceID)
	}
	if ev := <-byWF.C(); ev.Kind != KindStepRun {
		t.Fatalf("byWF first got %q", ev.Kind)
	}
	if ev := <-byWF.C(); ev.Kind != KindSpan {
		t.Fatalf("byWF second got %q", ev.Kind)
	}
	for _, sub := range []*Subscription{byKind, byTrace, byWF} {
		select {
		case ev := <-sub.C():
			t.Fatalf("unexpected extra event %+v", ev)
		default:
		}
	}
}

// TestHubSlowSubscriberDropsOldest is the backpressure contract: a stalled
// subscriber loses the oldest buffered events (with the loss counted), a
// keeping-up subscriber loses nothing, and Publish never blocks.
func TestHubSlowSubscriberDropsOldest(t *testing.T) {
	h := newTestHub(64)
	stalled := h.Subscribe(StreamFilter{}, 4)
	healthy := h.Subscribe(StreamFilter{}, 64)
	defer stalled.Close()
	defer healthy.Close()

	const n = 20
	for i := 0; i < n; i++ {
		h.Publish(StreamEvent{Kind: KindStepDone, Workflow: "wf-1", Proc: i})
	}

	if got := stalled.Dropped(); got != n-4 {
		t.Fatalf("stalled.Dropped() = %d, want %d", got, n-4)
	}
	// The stalled buffer holds exactly the newest 4 events, in order.
	for i := n - 4; i < n; i++ {
		ev := <-stalled.C()
		if ev.Proc != i {
			t.Fatalf("stalled kept proc %d, want %d", ev.Proc, i)
		}
	}
	for i := 0; i < n; i++ {
		if ev := <-healthy.C(); ev.Proc != i {
			t.Fatalf("healthy got proc %d, want %d", ev.Proc, i)
		}
	}
	if healthy.Dropped() != 0 {
		t.Fatalf("healthy.Dropped() = %d, want 0", healthy.Dropped())
	}
}

// TestHubConcurrentPublishSubscribe exercises publishers racing with
// subscribe/close/read — meaningful under -race.
func TestHubConcurrentPublishSubscribe(t *testing.T) {
	h := newTestHub(8)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Publish(StreamEvent{Kind: KindStepRun, Workflow: "wf-c", Proc: p})
			}
		}(p)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := h.Subscribe(StreamFilter{Workflow: "wf-c"}, 8)
			for i := 0; i < 50; i++ {
				select {
				case <-sub.C():
				default:
				}
			}
			sub.Close()
		}()
	}
	wg.Wait()
	if got := h.PublishedFor("wf-c"); got != 800 {
		t.Fatalf("PublishedFor = %d, want 800", got)
	}
}

func TestHubSkippedBeforeCounts(t *testing.T) {
	h := newTestHub(16)
	// Events published with no subscriber: workflow-stamped ones still count
	// toward the per-workflow skip baseline.
	for i := 0; i < 3; i++ {
		h.Publish(StreamEvent{Kind: KindStepDone, Workflow: "wf-1"})
	}
	h.Publish(StreamEvent{Kind: KindStepDone, Workflow: "wf-2"})

	late := h.Subscribe(StreamFilter{Workflow: "wf-1"}, 0)
	defer late.Close()
	if late.SkippedBefore != 3 {
		t.Fatalf("SkippedBefore = %d, want 3", late.SkippedBefore)
	}
	global := h.Subscribe(StreamFilter{}, 0)
	defer global.Close()
	if global.SkippedBefore != 4 {
		t.Fatalf("global SkippedBefore = %d, want 4", global.SkippedBefore)
	}
	fresh := h.Subscribe(StreamFilter{Workflow: "wf-3"}, 0)
	defer fresh.Close()
	if fresh.SkippedBefore != 0 {
		t.Fatalf("fresh SkippedBefore = %d, want 0", fresh.SkippedBefore)
	}
}

func TestHubCloseIsIdempotentAndDetaches(t *testing.T) {
	h := newTestHub(4)
	sub := h.Subscribe(StreamFilter{}, 0)
	sub.Close()
	sub.Close() // second close must not panic
	h.Publish(StreamEvent{Kind: KindStepRun})
	if _, ok := <-sub.C(); ok {
		t.Fatal("closed subscription received an event")
	}
	if h.Active() {
		t.Fatal("hub still active after last unsubscribe")
	}
}

// TestHubPublishNoSubscriberZeroAlloc pins the zero-cost contract the
// solver hot path relies on: with nobody attached, publishing a
// non-workflow event is one atomic load and no allocation.
func TestHubPublishNoSubscriberZeroAlloc(t *testing.T) {
	h := newTestHub(4)
	ev := StreamEvent{Kind: KindDecision, TraceID: "t", Proc: 1}
	allocs := testing.AllocsPerRun(100, func() {
		h.Publish(ev)
	})
	if allocs != 0 {
		t.Fatalf("Publish with no subscriber allocated %.1f/op, want 0", allocs)
	}
	var nilHub *Hub
	allocs = testing.AllocsPerRun(100, func() {
		nilHub.Publish(ev)
	})
	if allocs != 0 {
		t.Fatalf("nil-hub Publish allocated %.1f/op, want 0", allocs)
	}
}

func TestTraceStoreRepublishesOnHub(t *testing.T) {
	ts := NewTraceStore(8, 1)
	h := newTestHub(16)
	ts.AttachHub(h)
	if !ts.Start("t-99") {
		t.Fatal("Start refused the trace")
	}
	sub := h.Subscribe(StreamFilter{TraceID: "t-99"}, 0)
	defer sub.Close()

	tr := ts.Tracer("t-99")
	tr.Emit(Event{Type: EvCommit, Task: 2, Proc: 1, Start: 0, Finish: 3})

	ev := <-sub.C()
	if ev.Kind != KindDecision || ev.TraceID != "t-99" || ev.Proc != 1 {
		t.Fatalf("decision republish = %+v", ev)
	}
	if len(ev.Data) == 0 {
		t.Fatal("decision event has no payload")
	}

	sp := &Span{TraceID: "t-99", SpanID: NewSpanID(), Name: "solve", store: ts}
	sp.Finish()
	ev = <-sub.C()
	if ev.Kind != KindSpan || ev.Name != "solve" {
		t.Fatalf("span republish = %+v", ev)
	}

	// The ring keeps what the stream delivered.
	got, ok := ts.Get("t-99")
	if !ok || len(got.Spans) != 1 || len(got.Events) != 1 {
		t.Fatalf("trace ring: ok=%v spans=%d events=%d", ok, len(got.Spans), len(got.Events))
	}
}
