package obs

import (
	"runtime/metrics"
	"time"
)

// RuntimeCollector polls the Go runtime's metrics into a Registry on a
// fixed interval, surfacing the serving process itself — goroutine count,
// heap size, GC pause distribution, scheduler latency — on the same
// /metrics page as the scheduling series. Series are named
// <prefix>_goroutines, <prefix>_heap_objects_bytes, and so on; the two
// runtime histograms are exposed as quantile gauges (q="0.5"|"0.9"|"0.99")
// computed from the runtime's own cumulative buckets.
type RuntimeCollector struct {
	reg     *Registry
	prefix  string
	samples []metrics.Sample
	stop    chan struct{}
	done    chan struct{}
}

// runtimeQuantiles are the distribution points exported per histogram.
var runtimeQuantiles = []float64{0.5, 0.9, 0.99}

// runtimeGauges maps runtime/metrics names to the gauge suffix each scalar
// lands in.
var runtimeGauges = map[string]string{
	"/sched/goroutines:goroutines":       "_goroutines",
	"/sched/gomaxprocs:threads":          "_gomaxprocs",
	"/memory/classes/heap/objects:bytes": "_heap_objects_bytes",
	"/memory/classes/total:bytes":        "_memory_total_bytes",
	"/gc/cycles/total:gc-cycles":         "_gc_cycles_total",
}

// runtimeHists maps runtime/metrics histogram names to the quantile-gauge
// suffix each distribution lands in.
var runtimeHists = map[string]string{
	"/gc/pauses:seconds":       "_gc_pause_seconds",
	"/sched/latencies:seconds": "_sched_latency_seconds",
}

// StartRuntime begins polling the runtime into reg every interval (default
// 10s) under the given metric prefix (e.g. "hdltsd_runtime"). One poll
// happens synchronously before it returns, so the series exist as soon as
// the collector does. Stop the collector when the process drains.
func StartRuntime(reg *Registry, prefix string, interval time.Duration) *RuntimeCollector {
	if reg == nil {
		reg = Default()
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	names := make([]string, 0, len(runtimeGauges)+len(runtimeHists))
	for name := range runtimeGauges {
		names = append(names, name)
	}
	for name := range runtimeHists {
		names = append(names, name)
	}
	c := &RuntimeCollector{
		reg:     reg,
		prefix:  prefix,
		samples: make([]metrics.Sample, len(names)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for i, name := range names {
		c.samples[i].Name = name
	}
	c.Collect()
	go c.loop(interval)
	return c
}

// Stop ends the polling loop and waits for it to exit. The collected
// gauges keep their last values.
func (c *RuntimeCollector) Stop() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
}

func (c *RuntimeCollector) loop(interval time.Duration) {
	defer close(c.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.Collect()
		}
	}
}

// Collect performs one poll. Exported so tests (and embedders wanting an
// up-to-the-moment scrape) can trigger it deterministically.
func (c *RuntimeCollector) Collect() {
	metrics.Read(c.samples)
	for _, s := range c.samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			if suffix, ok := runtimeGauges[s.Name]; ok {
				//lint:hdltsvet-ignore metricname names are prefix+table driven; the shapes are pinned by runtime tests
				c.reg.Gauge(c.prefix + suffix).Set(float64(s.Value.Uint64()))
			}
		case metrics.KindFloat64:
			if suffix, ok := runtimeGauges[s.Name]; ok {
				//lint:hdltsvet-ignore metricname names are prefix+table driven; the shapes are pinned by runtime tests
				c.reg.Gauge(c.prefix + suffix).Set(s.Value.Float64())
			}
		case metrics.KindFloat64Histogram:
			suffix, ok := runtimeHists[s.Name]
			if !ok {
				continue
			}
			h := s.Value.Float64Histogram()
			for _, q := range runtimeQuantiles {
				//lint:hdltsvet-ignore metricname names are prefix+table driven; the shapes are pinned by runtime tests
				c.reg.Gauge(c.prefix+suffix, "q", fmtBound(q)).
					Set(histQuantile(h, q))
			}
		}
	}
}

// histQuantile approximates quantile q from a runtime cumulative bucket
// histogram: the upper bound of the first bucket whose cumulative count
// reaches q of the total. An empty histogram reports 0; a quantile landing
// in the +Inf overflow bucket reports the last finite bound.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	// Counts[i] spans Buckets[i] .. Buckets[i+1].
	target := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= target {
			ub := h.Buckets[i+1]
			if isInf(ub) {
				return h.Buckets[i]
			}
			return ub
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	if isInf(last) {
		return h.Buckets[len(h.Buckets)-2]
	}
	return last
}

// isInf avoids importing math for one check.
func isInf(v float64) bool { return v > 1e308 || v < -1e308 }
