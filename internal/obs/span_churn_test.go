package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestTraceStoreChurnConcurrent churns a small ring far past capacity from
// several writers while readers snapshot concurrently — the serving
// pattern at high QPS with a bounded -trace-buffer. Run under the race
// detector, it pins the store's two structural guarantees:
//
//   - eviction is all-or-nothing: a trace that Get still returns after its
//     writer finished carries the complete span tree and event stream,
//     never a partially-evicted remnant;
//   - snapshots never mix traces: every span and event in a snapshot
//     belongs to the requested trace ID.
func TestTraceStoreChurnConcurrent(t *testing.T) {
	const (
		capacity = 8
		writers  = 4
		perW     = 300
		children = 3
		events   = 5
		readers  = 3
	)
	ts := NewTraceStore(capacity, 1)

	traceID := func(w, i int) string { return fmt.Sprintf("w%d-t%d", w, i) }
	// completed[w*perW+i] flips once trace (w, i) is fully written: root
	// and children finished, events emitted.
	completed := make([]atomic.Bool, writers*perW)

	// verify checks one snapshot against the invariants. full demands the
	// complete tree (the trace's writer had finished before the Get).
	verify := func(id string, w int, tr *Trace, full bool) {
		for _, sp := range tr.Spans {
			if sp.TraceID != id {
				t.Errorf("snapshot of %s contains span of trace %s", id, sp.TraceID)
			}
		}
		for _, ev := range tr.Events {
			if ev.Task != w {
				t.Errorf("snapshot of %s contains event of writer %d, want %d", id, ev.Task, w)
			}
		}
		if full {
			if len(tr.Spans) != children+1 {
				t.Errorf("completed trace %s snapshot has %d spans, want %d", id, len(tr.Spans), children+1)
			}
			if len(tr.Events) != events {
				t.Errorf("completed trace %s snapshot has %d events, want %d", id, len(tr.Events), events)
			}
		}
	}

	var writerWG, readerWG sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perW; i++ {
				id := traceID(w, i)
				if !ts.Start(id) {
					t.Errorf("Start(%s) rejected with sample 1", id)
					return
				}
				ctx := WithTraceStore(WithTraceID(context.Background(), id), ts)
				ctx, root := StartSpan(ctx, "request")
				for c := 0; c < children; c++ {
					_, child := StartSpan(ctx, "child")
					child.SetAttr("n", id)
					child.Finish()
				}
				tracer := ts.Tracer(id)
				for e := 0; e < events; e++ {
					tracer.Emit(Event{Type: EvEstimate, Task: w, Iter: e + 1})
				}
				root.Finish()
				completed[w*perW+i].Store(true)
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			// A cheap deterministic scan: sweep the ID space repeatedly
			// until the writers finish.
			for i := 0; ; i = (i + r + 1) % (writers * perW) {
				select {
				case <-done:
					return
				default:
				}
				w := i / perW
				id := traceID(w, i%perW)
				full := completed[i].Load()
				tr, ok := ts.Get(id)
				if !ok {
					continue // never started, sampled out, or evicted whole
				}
				verify(id, w, tr, full)
				if n := ts.Len(); n > capacity {
					t.Errorf("ring holds %d traces, capacity %d", n, capacity)
				}
			}
		}(r)
	}

	writerWG.Wait()
	close(done)
	readerWG.Wait()

	// Post-churn accounting: every started trace was either evicted whole
	// or is still fully present.
	if got := ts.Len(); got != capacity {
		t.Errorf("ring retains %d traces after churn, want %d", got, capacity)
	}
	if got, want := ts.Evicted(), uint64(writers*perW-capacity); got != want {
		t.Errorf("evicted %d traces, want %d", got, want)
	}
	retained := 0
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			id := traceID(w, i)
			tr, ok := ts.Get(id)
			if !ok {
				continue
			}
			retained++
			verify(id, w, tr, true)
		}
	}
	if retained != capacity {
		t.Errorf("%d traces answer Get after churn, want %d", retained, capacity)
	}
}
