package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestStartSpanBuildsTree(t *testing.T) {
	ts := NewTraceStore(8, 1)
	if !ts.Start("t1") {
		t.Fatal("Start(t1) not sampled with sample=1")
	}
	ctx := WithTraceStore(WithTraceID(context.Background(), "t1"), ts)

	ctx, root := StartSpan(ctx, "http.request", "method", "POST", "path", "/v1/jobs")
	if root == nil {
		t.Fatal("root span is nil despite store + sampled trace")
	}
	cctx, child := StartSpan(ctx, "schedule.run", "alg", "HDLTS")
	if child.ParentID != root.SpanID {
		t.Errorf("child parent = %q, want root %q", child.ParentID, root.SpanID)
	}
	_, grand := StartSpan(cctx, "validate")
	if grand.ParentID != child.SpanID {
		t.Errorf("grandchild parent = %q, want child %q", grand.ParentID, child.SpanID)
	}
	grand.Finish()
	child.Finish()
	root.SetAttr("status", "200")
	root.Finish()

	tr, ok := ts.Get("t1")
	if !ok {
		t.Fatal("trace t1 lost")
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tr.Spans))
	}
	// Finish order: grandchild, child, root.
	if tr.Spans[2].Name != "http.request" || tr.Spans[2].Attrs["status"] != "200" {
		t.Errorf("root span = %+v", tr.Spans[2])
	}
	for _, sp := range tr.Spans {
		if sp.TraceID != "t1" || sp.SpanID == "" || sp.End.Before(sp.Start) {
			t.Errorf("malformed span %+v", sp)
		}
	}
	if root.Duration() < 0 {
		t.Errorf("root duration negative")
	}
}

func TestStartSpanNoStoreIsFree(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "anything")
	if sp != nil {
		t.Fatal("span without a store should be nil")
	}
	// All methods must be nil-safe.
	sp.SetAttr("k", "v")
	sp.Finish()
	if d := sp.Duration(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	if SpanFrom(ctx) != nil {
		t.Error("nil span leaked into context")
	}
}

func TestStartSpanUnsampledTrace(t *testing.T) {
	ts := NewTraceStore(8, 2) // every second trace
	retained, dropped := 0, 0
	for i := 0; i < 10; i++ {
		if ts.Start(fmt.Sprintf("t%d", i)) {
			retained++
		} else {
			dropped++
		}
	}
	if retained != 5 || dropped != 5 {
		t.Errorf("sample=2 retained %d dropped %d of 10, want 5/5", retained, dropped)
	}
	// t1 was sampled out (t0 retained, t1 dropped, ...): spans are free nils.
	ctx := WithTraceStore(WithTraceID(context.Background(), "t1"), ts)
	if _, sp := StartSpan(ctx, "x"); sp != nil {
		t.Error("sampled-out trace produced a live span")
	}
}

func TestTraceStoreEvictsOldest(t *testing.T) {
	ts := NewTraceStore(2, 1)
	for _, id := range []string{"a", "b", "c"} {
		ts.Start(id)
	}
	if ts.Sampled("a") {
		t.Error("oldest trace survived past capacity")
	}
	if !ts.Sampled("b") || !ts.Sampled("c") {
		t.Error("recent traces evicted")
	}
	if ts.Len() != 2 || ts.Evicted() != 1 {
		t.Errorf("len %d evicted %d, want 2/1", ts.Len(), ts.Evicted())
	}
}

func TestTraceStoreStartIsIdempotent(t *testing.T) {
	ts := NewTraceStore(4, 2)
	if !ts.Start("keep") {
		t.Fatal("first new ID must be sampled in (counter starts at the boundary)")
	}
	// Re-adopting the same ID must not consume the sampling counter.
	for i := 0; i < 3; i++ {
		if !ts.Start("keep") {
			t.Fatal("re-start of a retained trace reported unsampled")
		}
	}
	// The counter advanced exactly once, so the next new ID is sampled out.
	if ts.Start("next") {
		t.Error("sampling counter consumed by idempotent re-starts")
	}
}

func TestTraceTracerRecordsEvents(t *testing.T) {
	ts := NewTraceStore(4, 1)
	ts.Start("t1")
	tr := ts.Tracer("t1")
	if !tr.Enabled() {
		t.Fatal("tracer for retained trace disabled")
	}
	tr.Emit(Event{Type: EvCommit, Alg: "HDLTS", Task: 3, Proc: 1, Start: 10, Finish: 20})
	tr.Emit(Event{Type: EvIteration, Alg: "HDLTS", Task: 3, Proc: 1, Iter: 1})
	got, ok := ts.Get("t1")
	if !ok || len(got.Events) != 2 {
		t.Fatalf("trace has %d events, want 2", len(got.Events))
	}
	if got.Events[0].Type != EvCommit || got.Events[0].Task != 3 {
		t.Errorf("event 0 = %+v", got.Events[0])
	}
	if nop := ts.Tracer("unknown"); nop.Enabled() {
		t.Error("tracer for unknown trace is enabled")
	}
}

func TestTraceEventAndSpanCaps(t *testing.T) {
	ts := NewTraceStore(2, 1)
	ts.Start("t1")
	tr := ts.Tracer("t1")
	for i := 0; i < maxEventsPerTrace+10; i++ {
		tr.Emit(Event{Type: EvPV, Task: i})
	}
	ctx := WithTraceStore(WithTraceID(context.Background(), "t1"), ts)
	for i := 0; i < maxSpansPerTrace+5; i++ {
		_, sp := StartSpan(ctx, "s")
		sp.Finish()
	}
	got, _ := ts.Get("t1")
	if len(got.Events) != maxEventsPerTrace || got.EventsDropped != 10 {
		t.Errorf("events = %d (dropped %d), want %d (10)",
			len(got.Events), got.EventsDropped, maxEventsPerTrace)
	}
	if len(got.Spans) != maxSpansPerTrace || got.SpansDropped != 5 {
		t.Errorf("spans = %d (dropped %d), want %d (5)",
			len(got.Spans), got.SpansDropped, maxSpansPerTrace)
	}
}

func TestTraceStoreConcurrentUse(t *testing.T) {
	ts := NewTraceStore(16, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("t%d", g%4)
			ts.Start(id)
			ctx := WithTraceStore(WithTraceID(context.Background(), id), ts)
			for i := 0; i < 50; i++ {
				c, sp := StartSpan(ctx, "work")
				_, inner := StartSpan(c, "inner")
				ts.Tracer(id).Emit(Event{Type: EvCommit, Task: i})
				inner.Finish()
				sp.Finish()
				ts.Get(id)
			}
		}(g)
	}
	wg.Wait()
	if ts.Len() == 0 {
		t.Error("no traces retained after concurrent use")
	}
}

func TestEncodeEventsMatchesJSONLWireForm(t *testing.T) {
	evs := []Event{
		{Type: EvIteration, Alg: "HDLTS", Task: 2, Proc: 1, Iter: 1, Value: 3.5},
		{Type: EvCommit, Alg: "HDLTS", Task: 2, Proc: 1, Start: 0, Finish: 9, Dup: true},
	}
	raw, err := EncodeEvents(evs)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 2 {
		t.Fatalf("got %d records", len(raw))
	}
	var first struct {
		Seq  uint64 `json:"seq"`
		Ev   string `json:"ev"`
		Alg  string `json:"alg"`
		Task int    `json:"task"`
	}
	if err := json.Unmarshal(raw[0], &first); err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 || first.Ev != "iteration" || first.Alg != "HDLTS" || first.Task != 2 {
		t.Errorf("first record = %+v", first)
	}
	var second struct {
		Seq uint64 `json:"seq"`
		Dup bool   `json:"dup"`
	}
	if err := json.Unmarshal(raw[1], &second); err != nil {
		t.Fatal(err)
	}
	if second.Seq != 2 || !second.Dup {
		t.Errorf("second record = %+v", second)
	}
}

func TestNewTraceIDShape(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Errorf("trace ID lengths = %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Error("two trace IDs collided")
	}
}
