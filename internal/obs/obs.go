// Package obs is the observability substrate shared by every layer of this
// reproduction: structured decision-event tracing plus atomic runtime
// counters, gauges, and timing histograms.
//
// The package has two halves:
//
//   - Tracing. A Tracer receives typed Events describing scheduling
//     decisions (ITQ iterations, penalty values, EST/EFT estimates,
//     placement commits) and online-execution happenings (dispatches,
//     completions, processor failures, drains, replans). The default Nop
//     tracer is guaranteed cheap: Enabled reports false and Emit performs
//     zero allocations, so instrumented hot paths cost a predicated call.
//     Two sinks ship with the package — JSONLSink (one JSON object per
//     line) and ChromeSink (Chrome trace-event format, loadable in
//     chrome://tracing or Perfetto).
//
//   - Metrics. Counter, Gauge, and Histogram are lock-free atomics
//     registered in a Registry with Prometheus-text and JSON exposition
//     (see metrics.go). Default() is the process-wide registry the library
//     records into.
//
// Events carry only simulation-derived fields by default; wall-clock
// timestamps are opt-in per sink (JSONLSink.WallClock), so a deterministic
// run produces a byte-identical event stream.
package obs

import "sync"

// EventType discriminates Event payloads.
type EventType uint8

// Event types emitted by the scheduling substrate and the online executor.
const (
	// EvIteration is one scheduler decision iteration: for HDLTS an ITQ
	// step (Iter = step ordinal, Task = selected task, Proc = chosen
	// processor, Value = the winning penalty value, Dup = entry duplicate
	// materialised).
	EvIteration EventType = iota + 1
	// EvPV is one penalty-value computation for a ready task within an
	// iteration (Task, Iter, Value = PV).
	EvPV
	// EvEstimate is one (task, processor) EST/EFT evaluation
	// (Task, Proc, Start = EST, Finish = EFT).
	EvEstimate
	// EvCommit is a placement committed to the schedule
	// (Task, Proc, Start, Finish, Dup = this commit materialised an entry
	// duplicate first).
	EvCommit
	// EvDispatch is an online-simulation task start
	// (Task, Proc, Time = decision time, Start, Finish = realised).
	EvDispatch
	// EvComplete is an online-simulation task completion
	// (Task, Proc, Start, Finish).
	EvComplete
	// EvFailure is a processor failing at Time (Proc).
	EvFailure
	// EvDrain is a task completing on a processor that failed while the
	// task was running — the graceful drain (Task, Proc, Finish).
	EvDrain
	// EvReplan is one online policy consultation (Alg = policy, Time = now,
	// Value = ready-set size). Decision latency is recorded in the metrics
	// registry, not on the event, so deterministic streams stay stable.
	EvReplan
)

// String returns the JSONL wire name of the event type.
func (t EventType) String() string {
	switch t {
	case EvIteration:
		return "iteration"
	case EvPV:
		return "pv"
	case EvEstimate:
		return "estimate"
	case EvCommit:
		return "commit"
	case EvDispatch:
		return "dispatch"
	case EvComplete:
		return "complete"
	case EvFailure:
		return "failure"
	case EvDrain:
		return "drain"
	case EvReplan:
		return "replan"
	}
	return "unknown"
}

// Event is one observation. Only the fields meaningful for the Type are
// set; Task and Proc are -1 when not applicable. Events hold no slices or
// maps so they can be passed by value through a Tracer without allocating.
type Event struct {
	Type EventType
	// Alg names the algorithm or online policy the event belongs to
	// ("HDLTS", "HEFT", "HDLTS-online", ...). Empty when unknown; the
	// Named wrapper stamps it.
	Alg string
	// Task is the subject task (-1 when not applicable).
	Task int
	// Proc is the subject processor (-1 when not applicable).
	Proc int
	// Iter is the decision-iteration ordinal (ITQ step, 1-based).
	Iter int
	// Time is the simulation time of the observation (online events).
	Time float64
	// Start and Finish delimit a span in schedule/simulation time.
	Start, Finish float64
	// Value carries the scalar payload: a penalty value, an EFT, or a
	// ready-set size, depending on Type.
	Value float64
	// Dup marks commits that materialised an entry duplicate.
	Dup bool
}

// Tracer receives events. Implementations must be safe for concurrent use.
// Instrumented code guards expensive event construction with Enabled.
type Tracer interface {
	// Enabled reports whether Emit does anything; hot paths skip event
	// assembly entirely when it returns false.
	Enabled() bool
	// Emit records one event.
	Emit(Event)
}

// nop is the guaranteed-cheap default tracer.
type nop struct{}

func (nop) Enabled() bool { return false }
func (nop) Emit(Event)    {}

// Nop is the no-op tracer: Enabled is false and Emit allocates nothing.
var Nop Tracer = nop{}

// OrNop returns t, or Nop when t is nil, so callers never branch on nil.
func OrNop(t Tracer) Tracer {
	if t == nil {
		return Nop
	}
	return t
}

// named stamps an algorithm name on events that lack one.
type named struct {
	t   Tracer
	alg string
}

func (n named) Enabled() bool { return n.t.Enabled() }

func (n named) Emit(ev Event) {
	if ev.Alg == "" {
		ev.Alg = n.alg
	}
	n.t.Emit(ev)
}

// Named wraps t so every event without an Alg is attributed to alg. A nil
// or no-op t returns Nop unchanged.
func Named(t Tracer, alg string) Tracer {
	t = OrNop(t)
	if _, isNop := t.(nop); isNop {
		return Nop
	}
	return named{t: t, alg: alg}
}

// multi fans events out to several tracers.
type multi []Tracer

func (m multi) Enabled() bool {
	for _, t := range m {
		if t.Enabled() {
			return true
		}
	}
	return false
}

func (m multi) Emit(ev Event) {
	for _, t := range m {
		if t.Enabled() {
			t.Emit(ev)
		}
	}
}

// Multi combines tracers; nil and Nop entries are dropped. With zero live
// tracers it returns Nop, with one it returns that tracer unwrapped.
func Multi(ts ...Tracer) Tracer {
	var live multi
	for _, t := range ts {
		if t == nil {
			continue
		}
		if _, isNop := t.(nop); isNop {
			continue
		}
		live = append(live, t)
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return live
}

// Collector buffers events in memory, for tests and programmatic analysis.
type Collector struct {
	mu  sync.Mutex
	evs []Event
}

// NewCollector returns an empty in-memory tracer.
func NewCollector() *Collector { return &Collector{} }

// Enabled implements Tracer.
func (c *Collector) Enabled() bool { return true }

// Emit implements Tracer.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

// Events returns a copy of everything collected, in emission order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.evs...)
}

// Len reports how many events were collected.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evs)
}

// Reset discards collected events.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.evs = nil
	c.mu.Unlock()
}
