package obs

// Canonical span-attribute keys. Every SetAttr / StartSpan attribute key
// in the module must be one of these constants (enforced by the eventkey
// analyzer): trace consumers — /v1/trace filters, the replay tool,
// downstream pipelines — match on these strings, so the vocabulary is
// closed and lives here.
const (
	// KeyAlg names the scheduling algorithm acting in the span.
	KeyAlg = "alg"
	// KeyMethod is the HTTP request method.
	KeyMethod = "method"
	// KeyPath is the HTTP request path.
	KeyPath = "path"
	// KeyStatus is the HTTP response status code.
	KeyStatus = "status"
	// KeyTask is a task index.
	KeyTask = "task"
	// KeyPhase is an algorithm phase name.
	KeyPhase = "phase"
	// KeyJob is a job identifier.
	KeyJob = "job"
	// KeyWorkflow is a workflow identifier.
	KeyWorkflow = "workflow"
	// KeyStep is a workflow step name.
	KeyStep = "step"
	// KeyProc is a processor index.
	KeyProc = "proc"
)

// Canonical wire-field names: the JSON keys the obs package is allowed to
// emit, mirroring the json tags of the wire structs (lineEvent, traceEvent,
// Span, BuildInfo, jsonMetric). The eventkey analyzer checks every json tag
// in this package against this set, so adding a wire field means adding a
// constant here — a deliberate speed bump on schema growth.
const (
	// JSONL decision-event stream (lineEvent).
	WireSeq    = "seq"
	WireEvent  = "ev"
	WireWallNS = "wall_ns"
	WireTask   = "task"
	WireProc   = "proc"
	WireIter   = "iter"
	WireTime   = "t"
	WireStart  = "start"
	WireFinish = "finish"
	WireValue  = "value"
	WireDup    = "dup"

	// Chrome trace events (traceEvent).
	WireName  = "name"
	WirePh    = "ph"
	WirePID   = "pid"
	WireTID   = "tid"
	WireTS    = "ts"
	WireDur   = "dur"
	WireScope = "s"
	WireArgs  = "args"

	// Build info.
	WireVersion   = "version"
	WireGoVersion = "go_version"
	WireRevision  = "revision"
	WireModified  = "modified"

	// Metrics JSON exposition (jsonMetric).
	WireLabels = "labels"
	WireKind   = "kind"
	WireCount  = "count"
	WireSum    = "sum"
	WireMean   = "mean"

	// Spans and traces.
	WireTraceID       = "trace_id"
	WireSpanID        = "span_id"
	WireParentID      = "parent_id"
	WireEnd           = "end"
	WireAttrs         = "attrs"
	WireSpans         = "spans"
	WireSpansDropped  = "spans_dropped"
	WireEventsDropped = "events_dropped"

	// Live event stream (StreamEvent).
	WireData    = "data"
	WireSkipped = "skipped"
)

// Canonical stream-event kinds: the values StreamEvent.Kind may carry, and
// the SSE `event:` names subscribers filter on. Closed for the same reason
// as the Key*/Wire* sets — live dashboards and the CI smoke tests match on
// these strings.
const (
	// KindSpan is a finished span republished from the trace store; the
	// payload is the span's wire form.
	KindSpan = "span"
	// KindDecision is a scheduler decision event republished from the trace
	// store; the payload is the JSONL wire form of the event.
	KindDecision = "decision"
	// KindWorkflowPlan marks a workflow admitted with an initial HDLTS plan.
	KindWorkflowPlan = "workflow.plan"
	// KindStepRun marks a step dispatched onto a processor slot.
	KindStepRun = "step.run"
	// KindStepDone marks a step attempt finishing successfully.
	KindStepDone = "step.done"
	// KindStepFail marks a step attempt failing (it may still be retried).
	KindStepFail = "step.fail"
	// KindWorkflowReplan marks an ITQ recomputation over the un-dispatched
	// frontier; Phase carries the trigger (drift, overdue, resume, stall).
	KindWorkflowReplan = "workflow.replan"
	// KindWorkflowDone marks a workflow reaching a terminal state; Phase
	// carries the state (done, failed, cancelled).
	KindWorkflowDone = "workflow.done"
	// KindStreamSkip is the synthetic marker a subscriber receives when
	// events matching its filter were published before it attached.
	KindStreamSkip = "stream.skip"
	// KindStreamDrop is the synthetic marker a slow subscriber receives
	// after the hub dropped events from its buffer.
	KindStreamDrop = "stream.drop"
)
