package obs

import (
	"testing"
)

func TestEventTypeStrings(t *testing.T) {
	cases := map[EventType]string{
		EvIteration:   "iteration",
		EvPV:          "pv",
		EvEstimate:    "estimate",
		EvCommit:      "commit",
		EvDispatch:    "dispatch",
		EvComplete:    "complete",
		EvFailure:     "failure",
		EvDrain:       "drain",
		EvReplan:      "replan",
		EventType(99): "unknown",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("EventType(%d).String() = %q, want %q", ty, got, want)
		}
	}
}

func TestNopIsDisabledAndAllocationFree(t *testing.T) {
	if Nop.Enabled() {
		t.Fatal("Nop.Enabled() = true")
	}
	// The event hot path through the no-op tracer must not allocate: this
	// is the guarantee that lets every scheduler stay instrumented
	// unconditionally.
	allocs := testing.AllocsPerRun(1000, func() {
		if Nop.Enabled() {
			t.Fatal("unreachable")
		}
		Nop.Emit(Event{Type: EvCommit, Alg: "HDLTS", Task: 3, Proc: 1, Start: 27, Finish: 40})
	})
	if allocs != 0 {
		t.Fatalf("no-op emit allocated %v times per run, want 0", allocs)
	}
}

func TestOrNop(t *testing.T) {
	if OrNop(nil) != Nop {
		t.Error("OrNop(nil) != Nop")
	}
	c := NewCollector()
	if OrNop(c) != Tracer(c) {
		t.Error("OrNop(c) != c")
	}
}

func TestNamedStampsMissingAlg(t *testing.T) {
	c := NewCollector()
	tr := Named(c, "HEFT")
	if !tr.Enabled() {
		t.Fatal("named collector should be enabled")
	}
	tr.Emit(Event{Type: EvCommit, Task: 1})
	tr.Emit(Event{Type: EvCommit, Task: 2, Alg: "CPOP"})
	evs := c.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Alg != "HEFT" {
		t.Errorf("blank alg not stamped: %q", evs[0].Alg)
	}
	if evs[1].Alg != "CPOP" {
		t.Errorf("explicit alg overwritten: %q", evs[1].Alg)
	}
	if Named(nil, "X") != Nop || Named(Nop, "X") != Nop {
		t.Error("Named of nil/Nop should collapse to Nop")
	}
}

func TestMulti(t *testing.T) {
	if Multi() != Nop || Multi(nil, Nop) != Nop {
		t.Error("empty Multi should collapse to Nop")
	}
	a, b := NewCollector(), NewCollector()
	if Multi(a, nil) != Tracer(a) {
		t.Error("single-tracer Multi should unwrap")
	}
	m := Multi(a, Nop, b)
	if !m.Enabled() {
		t.Fatal("multi with live tracers should be enabled")
	}
	m.Emit(Event{Type: EvDispatch, Task: 7})
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out failed: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestCollectorResetAndCopy(t *testing.T) {
	c := NewCollector()
	c.Emit(Event{Type: EvPV, Task: 0, Value: 1.5})
	evs := c.Events()
	evs[0].Value = -1 // mutation must not leak back
	if got := c.Events()[0].Value; got != 1.5 {
		t.Errorf("Events returned aliased storage: %g", got)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("Reset left %d events", c.Len())
	}
}
