package obs

import "runtime/debug"

// BuildInfo identifies the running binary: module version, Go toolchain,
// and the VCS revision the binary was built from (when the build embedded
// it). It backs the <name>_build_info gauge, GET /v1/version, and the
// daemon's -version flag, so all three always agree.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// ReadBuild extracts BuildInfo from runtime/debug.ReadBuildInfo. Binaries
// built outside module mode report version "(devel)" and no revision.
func ReadBuild() BuildInfo {
	info := BuildInfo{Version: "(devel)"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.GoVersion = bi.GoVersion
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// MetricBuildInfo is the conventional build-identity gauge series.
const MetricBuildInfo = "hdltsd_build_info"

// RegisterBuildInfo sets the conventional build-info gauge — value 1,
// identity in the labels — in reg under MetricBuildInfo and returns what
// it registered.
func RegisterBuildInfo(reg *Registry) BuildInfo {
	if reg == nil {
		reg = Default()
	}
	info := ReadBuild()
	reg.Gauge(MetricBuildInfo,
		"version", info.Version,
		"go_version", info.GoVersion,
		"revision", info.Revision,
	).Set(1)
	return info
}
