package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("reqs_total") != c {
		t.Error("get-or-create returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %g, want 2.5", g.Value())
	}
}

func TestGaugeAddConcurrent(t *testing.T) {
	g := NewRegistry().Gauge("in_flight")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Inc()
				g.Add(2)
				g.Dec()
				g.Add(-2)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 0 {
		t.Errorf("gauge = %g after balanced Inc/Dec pairs, want 0", g.Value())
	}
}

func TestLabelledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("phase_total", "alg", "HEFT")
	b := r.Counter("phase_total", "alg", "CPOP")
	if a == b {
		t.Fatal("labelled series collapsed")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Error("label isolation broken")
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	for _, v := range []float64{1e-7, 1e-3, 0.2, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 1e-7+1e-3+0.2+100; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	if h.Mean() == 0 {
		t.Error("mean should be non-zero")
	}
	var empty Histogram
	if empty.Mean() != 0 {
		t.Error("empty histogram mean should be 0")
	}
	h.ObserveSince(time.Now())
	if h.Count() != 5 {
		t.Error("ObserveSince did not record")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if got := h.Sum(); got < 7.99 || got > 8.01 {
		t.Errorf("sum = %g, want ~8", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("commits_total", "alg", "HDLTS").Add(10)
	r.Gauge("ready").Set(3)
	r.Histogram("validate_seconds").Observe(0.002)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`commits_total{alg="HDLTS"} 10`,
		"ready 3",
		`validate_seconds_bucket{le="+Inf"} 1`,
		"validate_seconds_sum 0.002",
		"validate_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative buckets: the 5e-3 bucket must already include the 2ms
	// observation.
	if !strings.Contains(out, `validate_seconds_bucket{le="0.005"} 1`) {
		t.Errorf("cumulative bucket missing in:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Gauge("b").Set(1.5)
	r.Histogram("c_seconds").Observe(2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 3 {
		t.Fatalf("got %d metrics, want 3", len(out))
	}
	if out[0]["name"] != "a_total" || out[0]["kind"] != "counter" {
		t.Errorf("unexpected first metric: %v", out[0])
	}
	if out[2]["kind"] != "histogram" || out[2]["count"].(float64) != 1 {
		t.Errorf("unexpected histogram metric: %v", out[2])
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Reset()
	if r.Counter("x").Value() != 0 {
		t.Error("Reset kept old counter state")
	}
}

func TestSolverProfileRecordsIntoDefault(t *testing.T) {
	Default().Reset()
	defer Default().Reset()
	prof := SolverProfileFor("HEFT")
	if prof == nil {
		t.Fatal("SolverProfileFor returned nil with profiling enabled")
	}
	prof.Start(PhaseRank).Stop()
	h := Default().Histogram(MetricSolverPhase, "alg", "HEFT", "phase", "rank")
	if h.Count() != 1 {
		t.Errorf("phase observation count = %d, want 1", h.Count())
	}
	if got := len(h.bounds); got != len(ExpBuckets(1e-6, 10, 3)) {
		t.Errorf("solver phase histogram has %d bounds, want the µs-resolution set", got)
	}
}

func TestOddLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd label list did not panic")
		}
	}()
	NewRegistry().Counter("bad", "alg")
}
