package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// lineEvent is the JSON Lines wire form of an Event. Field order is fixed,
// so identical event sequences serialise to identical bytes.
type lineEvent struct {
	Seq    uint64  `json:"seq"`
	Ev     string  `json:"ev"`
	WallNS int64   `json:"wall_ns,omitempty"`
	Alg    string  `json:"alg,omitempty"`
	Task   int     `json:"task"`
	Proc   int     `json:"proc"`
	Iter   int     `json:"iter,omitempty"`
	Time   float64 `json:"t,omitempty"`
	Start  float64 `json:"start,omitempty"`
	Finish float64 `json:"finish,omitempty"`
	Value  float64 `json:"value,omitempty"`
	Dup    bool    `json:"dup,omitempty"`
}

// JSONLSink writes one JSON object per event, one event per line. By
// default the stream is deterministic — events carry a sequence number but
// no wall-clock timestamp; WallClock(true) opts in to wall_ns fields.
type JSONLSink struct {
	mu   sync.Mutex
	bw   *bufio.Writer
	enc  *json.Encoder
	seq  uint64
	wall bool
	err  error
}

// NewJSONL returns a sink writing JSON Lines to w. Call Flush (or Close on
// the underlying file after Flush) when done.
func NewJSONL(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// WallClock enables wall-clock timestamps on every event. Streams with
// wall clocks are not byte-reproducible across runs.
func (s *JSONLSink) WallClock(on bool) *JSONLSink {
	s.mu.Lock()
	s.wall = on
	s.mu.Unlock()
	return s
}

// Enabled implements Tracer.
func (s *JSONLSink) Enabled() bool { return true }

// wireEvent renders ev in the JSONL wire form with the given sequence
// number — shared by the streaming sink and EncodeEvents.
func wireEvent(seq uint64, ev Event) lineEvent {
	return lineEvent{
		Seq:    seq,
		Ev:     ev.Type.String(),
		Alg:    ev.Alg,
		Task:   ev.Task,
		Proc:   ev.Proc,
		Iter:   ev.Iter,
		Time:   ev.Time,
		Start:  ev.Start,
		Finish: ev.Finish,
		Value:  ev.Value,
		Dup:    ev.Dup,
	}
}

// Emit implements Tracer.
func (s *JSONLSink) Emit(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.seq++
	le := wireEvent(s.seq, ev)
	if s.wall {
		le.WallNS = time.Now().UnixNano()
	}
	// The sink's mutex exists precisely to serialize writes to the one
	// output stream; the encoder targets a bufio.Writer, so an Emit is an
	// in-memory append except when the buffer spills.
	//lint:hdltsvet-ignore lockedio the lock's purpose is serializing writes to the buffered stream
	s.err = s.enc.Encode(le)
}

// EncodeEvents renders events in the JSONL wire form, one standalone JSON
// object per event with sequence numbers from 1 — byte-compatible with
// what a JSONLSink would stream for the same events.
func EncodeEvents(evs []Event) ([]json.RawMessage, error) {
	out := make([]json.RawMessage, len(evs))
	for i, ev := range evs {
		b, err := json.Marshal(wireEvent(uint64(i+1), ev))
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// Flush writes buffered lines through and reports the first emit or write
// error.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	//lint:hdltsvet-ignore lockedio Flush must drain under the same lock Emit appends under
	return s.bw.Flush()
}
