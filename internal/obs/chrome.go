package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// ChromeSink accumulates events and renders them in the Chrome trace-event
// format (the JSON object form with a "traceEvents" array), loadable in
// chrome://tracing and Perfetto.
//
// Mapping: each algorithm (Event.Alg) becomes a process track, each
// processor a thread track within it; task executions (EvCommit for offline
// schedules, EvComplete for online runs) become complete ("X") spans, and
// processor failures become instant ("i") events. Schedule time units are
// scaled by Scale into trace microseconds (default: 1 unit = 1 ms, so
// makespans read directly in the ms ruler).
type ChromeSink struct {
	mu sync.Mutex
	// Scale converts one schedule/simulation time unit into trace
	// microseconds. The default 1000 renders one unit as one millisecond.
	scale float64
	spans []chromeSpan
	insts []chromeInstant
	// procNames, when set, label thread tracks with platform processor
	// names instead of the positional "P1", "P2", ... fallback.
	procNames []string
}

type chromeSpan struct {
	alg        string
	proc       int
	task       int
	start, dur float64
	dup        bool
}

type chromeInstant struct {
	alg  string
	proc int
	name string
	ts   float64
}

// NewChrome returns an empty Chrome trace sink with the default time scale
// (one schedule unit = one millisecond).
func NewChrome() *ChromeSink { return &ChromeSink{scale: 1000} }

// SetScale changes how many trace microseconds one schedule unit spans.
func (c *ChromeSink) SetScale(unitsToMicros float64) *ChromeSink {
	c.mu.Lock()
	if unitsToMicros > 0 {
		c.scale = unitsToMicros
	}
	c.mu.Unlock()
	return c
}

// SetProcNames supplies platform processor names, indexed by processor
// slot; thread_name metadata then labels each lane with the real name
// ("edge-gpu-0") instead of the positional "P<n>" fallback. Processors
// beyond the slice keep the fallback.
func (c *ChromeSink) SetProcNames(names []string) *ChromeSink {
	c.mu.Lock()
	c.procNames = append([]string(nil), names...)
	c.mu.Unlock()
	return c
}

// Enabled implements Tracer.
func (c *ChromeSink) Enabled() bool { return true }

// Emit implements Tracer.
func (c *ChromeSink) Emit(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Type {
	case EvCommit, EvComplete, EvDispatch:
		// Dispatch and completion describe the same span in online runs;
		// keep completions (they exist for every finished task) and
		// commits (offline), drop dispatches to avoid double spans.
		if ev.Type == EvDispatch {
			return
		}
		c.spans = append(c.spans, chromeSpan{
			alg:   ev.Alg,
			proc:  ev.Proc,
			task:  ev.Task,
			start: ev.Start,
			dur:   ev.Finish - ev.Start,
			dup:   ev.Dup,
		})
	case EvFailure:
		c.insts = append(c.insts, chromeInstant{alg: ev.Alg, proc: ev.Proc, name: "failure", ts: ev.Time})
	case EvReplan:
		c.insts = append(c.insts, chromeInstant{alg: ev.Alg, proc: ev.Proc, name: "replan", ts: ev.Time})
	}
}

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON renders the accumulated trace as Chrome trace-event JSON. It may
// be called repeatedly; each call renders the full current content. The
// sink state is snapshotted under the lock and rendered outside it, so a
// slow writer never stalls concurrent Emit calls.
func (c *ChromeSink) WriteJSON(w io.Writer) error {
	c.mu.Lock()
	spans := append([]chromeSpan(nil), c.spans...)
	insts := append([]chromeInstant(nil), c.insts...)
	scale := c.scale
	procNames := c.procNames
	c.mu.Unlock()

	// Assign stable pids: algorithms in first-seen order.
	pid := map[string]int{}
	pidOf := func(alg string) int {
		if id, ok := pid[alg]; ok {
			return id
		}
		id := len(pid) + 1
		pid[alg] = id
		return id
	}
	for _, s := range spans {
		pidOf(s.alg)
	}
	for _, i := range insts {
		pidOf(i.alg)
	}

	var evs []traceEvent
	// Process/thread name metadata, in pid order for determinism.
	algs := make([]string, 0, len(pid))
	for alg := range pid {
		algs = append(algs, alg)
	}
	sort.Slice(algs, func(i, j int) bool { return pid[algs[i]] < pid[algs[j]] })
	procs := map[[2]int]bool{}
	for _, s := range spans {
		procs[[2]int{pid[s.alg], s.proc}] = true
	}
	for _, i := range insts {
		if i.proc >= 0 {
			procs[[2]int{pid[i.alg], i.proc}] = true
		}
	}
	for _, alg := range algs {
		name := alg
		if name == "" {
			name = "schedule"
		}
		evs = append(evs, traceEvent{
			Name: "process_name", Ph: "M", PID: pid[alg],
			Args: map[string]any{"name": name},
		})
	}
	tids := make([][2]int, 0, len(procs))
	for k := range procs {
		tids = append(tids, k)
	}
	sort.Slice(tids, func(i, j int) bool {
		if tids[i][0] != tids[j][0] {
			return tids[i][0] < tids[j][0]
		}
		return tids[i][1] < tids[j][1]
	})
	for _, k := range tids {
		lane := fmt.Sprintf("P%d", k[1]+1)
		if k[1] >= 0 && k[1] < len(procNames) && procNames[k[1]] != "" {
			lane = procNames[k[1]]
		}
		evs = append(evs, traceEvent{
			Name: "thread_name", Ph: "M", PID: k[0], TID: k[1],
			Args: map[string]any{"name": lane},
		})
	}

	for _, s := range spans {
		name := fmt.Sprintf("T%d", s.task+1)
		if s.dup {
			name += " (+dup)"
		}
		evs = append(evs, traceEvent{
			Name: name, Ph: "X", PID: pid[s.alg], TID: s.proc,
			TS: s.start * scale, Dur: s.dur * scale,
			Args: map[string]any{"task": s.task, "start": s.start, "finish": s.start + s.dur},
		})
	}
	for _, i := range insts {
		tid := i.proc
		if tid < 0 {
			tid = 0
		}
		evs = append(evs, traceEvent{
			Name: i.name, Ph: "i", PID: pid[i.alg], TID: tid,
			TS: i.ts * scale, S: "p",
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
	})
}
