package obs

import (
	"context"
	"math"
	"runtime/pprof"
	"testing"
	"time"
)

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 3)
	// 7 decades × 3 per decade + 1 endpoint.
	if len(b) != 22 {
		t.Fatalf("len(ExpBuckets(1e-6, 10, 3)) = %d, want 22", len(b))
	}
	if b[0] != 1e-6 {
		t.Errorf("first bound = %g, want exactly 1e-6", b[0])
	}
	if b[len(b)-1] != 10 {
		t.Errorf("last bound = %g, want exactly 10", b[len(b)-1])
	}
	// Log-spaced: the ratio between adjacent bounds is 10^(1/3) throughout.
	wantRatio := math.Pow(10, 1.0/3)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
		if r := b[i] / b[i-1]; math.Abs(r-wantRatio) > 1e-9 {
			t.Errorf("ratio b[%d]/b[%d] = %.12f, want %.12f", i, i-1, r, wantRatio)
		}
	}
	// A non-integer decade count still lands exactly on max.
	b = ExpBuckets(2e-6, 5, 4)
	if b[0] != 2e-6 || b[len(b)-1] != 5 {
		t.Errorf("endpoints = %g, %g, want exactly 2e-6 and 5", b[0], b[len(b)-1])
	}
}

func TestExpBucketsPanics(t *testing.T) {
	for _, tc := range []struct {
		min, max float64
		per      int
	}{{0, 1, 3}, {-1, 1, 3}, {1, 1, 3}, {2, 1, 3}, {1e-6, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExpBuckets(%g, %g, %d) did not panic", tc.min, tc.max, tc.per)
				}
			}()
			ExpBuckets(tc.min, tc.max, tc.per)
		}()
	}
}

func TestSetBuckets(t *testing.T) {
	r := NewRegistry()
	before := r.Histogram("hdlts_test_seconds", "k", "old")
	r.SetBuckets("hdlts_test_seconds", []float64{0.1, 1})
	after := r.Histogram("hdlts_test_seconds", "k", "new")
	if len(before.bounds) != len(defBuckets) {
		t.Errorf("pre-existing series re-bucketed: %d bounds", len(before.bounds))
	}
	if len(after.bounds) != 2 {
		t.Errorf("new series has %d bounds, want the 2 set", len(after.bounds))
	}
	// Unrelated names keep the defaults.
	if h := r.Histogram("hdlts_other_seconds"); len(h.bounds) != len(defBuckets) {
		t.Errorf("unrelated histogram got %d bounds", len(h.bounds))
	}
}

func TestSetBucketsRejectsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds did not panic")
		}
	}()
	NewRegistry().SetBuckets("hdlts_test_seconds", []float64{1, 1})
}

func TestSolverProfilePhases(t *testing.T) {
	Default().Reset()
	defer Default().Reset()
	prof := SolverProfileFor("HDLTS")
	acc := prof.Accum(PhaseScan)
	for i := 0; i < 3; i++ {
		tick := acc.Tick()
		tick.End()
	}
	acc.Flush()
	h := Default().Histogram(MetricSolverPhase, "alg", "HDLTS", "phase", "itq_scan")
	if h.Count() != 1 {
		t.Errorf("accumulator flushed %d observations, want 1", h.Count())
	}
	acc.Flush() // second flush with nothing accumulated records nothing
	if h.Count() != 1 {
		t.Errorf("empty flush recorded an observation (count %d)", h.Count())
	}
	acc.ObserveSince(time.Now())
	acc.Flush()
	if h.Count() != 2 {
		t.Errorf("ObserveSince+Flush count = %d, want 2", h.Count())
	}
	// The same algorithm resolves to the same cached profile.
	if SolverProfileFor("HDLTS") != prof {
		t.Error("SolverProfileFor did not cache the profile")
	}
	Default().Reset()
	if SolverProfileFor("HDLTS") == prof {
		t.Error("Reset kept the cached profile alive")
	}
}

func TestSolverProfilingDisabled(t *testing.T) {
	Default().Reset()
	defer Default().Reset()
	prev := SetSolverProfiling(false)
	defer SetSolverProfiling(prev)
	if !prev {
		t.Error("solver profiling not enabled by default")
	}
	prof := SolverProfileFor("HDLTS")
	if prof != nil {
		t.Fatal("SolverProfileFor returned a profile while disabled")
	}
	// Every primitive must be a no-op on the nil profile.
	prof.Start(PhaseSchedule).Stop()
	acc := prof.Accum(PhaseEFT)
	tick := acc.Tick()
	tick.End()
	acc.Flush()
	ran := false
	prof.Do(PhaseRank, func() { ran = true })
	if !ran {
		t.Error("nil Profile.Do did not run fn")
	}
	if prof.Alg() != "" {
		t.Error("nil Profile.Alg not empty")
	}
}

// TestPhasePrimitivesZeroAlloc pins the allocation guarantee the solver
// inner loops rely on: the timer primitives allocate nothing, enabled or
// disabled (mirroring the PR 4 span guardrail).
func TestPhasePrimitivesZeroAlloc(t *testing.T) {
	Default().Reset()
	defer Default().Reset()

	prev := SetSolverProfiling(false)
	defer SetSolverProfiling(prev)
	if n := testing.AllocsPerRun(200, func() {
		prof := SolverProfileFor("HDLTS")
		prof.Start(PhaseSchedule).Stop()
		acc := prof.Accum(PhaseScan)
		tick := acc.Tick()
		tick.End()
		acc.Flush()
	}); n != 0 {
		t.Errorf("disabled phase-timer path allocates %.1f/op, want 0", n)
	}

	SetSolverProfiling(true)
	prof := SolverProfileFor("HDLTS") // series creation outside the measured loop
	acc := prof.Accum(PhaseScan)
	if n := testing.AllocsPerRun(200, func() {
		prof.Start(PhaseSchedule).Stop()
		tick := acc.Tick()
		tick.End()
		acc.Flush()
	}); n != 0 {
		t.Errorf("enabled phase-timer path allocates %.1f/op, want 0", n)
	}
}

func TestProfileDoRecordsAndLabels(t *testing.T) {
	Default().Reset()
	defer Default().Reset()
	prof := SolverProfileFor("HEFT")
	ran := false
	prof.Do(PhaseRank, func() { ran = true })
	if !ran {
		t.Fatal("Do did not run fn")
	}
	h := Default().Histogram(MetricSolverPhase, "alg", "HEFT", "phase", "rank")
	if h.Count() != 1 {
		t.Errorf("Do recorded %d observations, want 1", h.Count())
	}
}

func TestWithPprofLabels(t *testing.T) {
	var alg, phase string
	var ok1, ok2 bool
	WithPprofLabels(context.Background(), "HDLTS", "solve", func(ctx context.Context) {
		alg, ok1 = pprof.Label(ctx, "algorithm")
		phase, ok2 = pprof.Label(ctx, "phase")
	})
	if !ok1 || !ok2 || alg != "HDLTS" || phase != "solve" {
		t.Errorf("labels = (%q,%v), (%q,%v), want HDLTS/solve", alg, ok1, phase, ok2)
	}
}

func TestPhaseIDString(t *testing.T) {
	want := map[PhaseID]string{
		PhaseSchedule:  "schedule",
		PhaseRank:      "rank",
		PhaseScan:      "itq_scan",
		PhaseEFT:       "eft",
		PhaseInsertion: "insertion",
		PhaseReplan:    "replan",
		numPhases:      "unknown",
	}
	for id, s := range want {
		if id.String() != s {
			t.Errorf("PhaseID(%d).String() = %q, want %q", id, id.String(), s)
		}
	}
}

// BenchmarkPhaseOverhead quantifies the per-boundary cost of the phase
// primitives against an empty baseline: the disabled path must be within
// measurement noise of the baseline, the enabled path a few clock reads.
func BenchmarkPhaseOverhead(b *testing.B) {
	b.Run("Baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = i
		}
	})
	b.Run("Disabled", func(b *testing.B) {
		prev := SetSolverProfiling(false)
		defer SetSolverProfiling(prev)
		prof := SolverProfileFor("HDLTS")
		acc := prof.Accum(PhaseScan)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tick := acc.Tick()
			tick.End()
		}
	})
	b.Run("Enabled", func(b *testing.B) {
		Default().Reset()
		defer Default().Reset()
		prof := SolverProfileFor("HDLTS")
		acc := prof.Accum(PhaseScan)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tick := acc.Tick()
			tick.End()
		}
		acc.Flush()
	})
}
