package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (negative deltas move it down); the update
// is atomic, so concurrent Inc/Dec pairs never lose counts.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one — with Dec, the in-flight-style usage pattern.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// defBuckets are the default histogram upper bounds, tuned for seconds:
// 1µs … 10s in decades, with a sub-decade point each.
var defBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
	1e-2, 5e-2, 0.1, 0.5, 1, 5, 10,
}

// Histogram is a fixed-bucket timing/size histogram with atomic cells. The
// +Inf bucket is implicit (Count minus the last cumulative bucket).
type Histogram struct {
	bounds []float64      // upper bounds, ascending
	cells  []atomic.Int64 // observation count per bucket (non-cumulative)
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = defBuckets
	}
	return &Histogram{bounds: bounds, cells: make([]atomic.Int64, len(bounds))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary-search the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.cells) {
		h.cells[lo].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed wall time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Mean returns Sum/Count (zero for an empty histogram).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// metricKey identifies one metric series: a name plus rendered labels.
type metricKey struct {
	name   string
	labels string // rendered {k="v",...} suffix, "" when unlabelled
}

// Registry holds named metrics and renders them in Prometheus text or JSON
// form. Metric accessors are get-or-create and safe for concurrent use; the
// returned values are shared, so callers typically cache them in package
// variables.
type Registry struct {
	mu       sync.Mutex
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[metricKey]*Histogram
	buckets  map[string][]float64 // per-name bounds for histogram creation
	profiles map[string]*Profile  // solver phase profiles by algorithm
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[metricKey]*Counter{},
		gauges:   map[metricKey]*Gauge{},
		hists:    map[metricKey]*Histogram{},
		buckets:  map[string][]float64{},
		profiles: map[string]*Profile{},
	}
}

// defaultRegistry is the process-wide registry the library records into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// key renders the series key for name and k1,v1,k2,v2,... label pairs.
func key(name string, labels []string) metricKey {
	if len(labels) == 0 {
		return metricKey{name: name}
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %s: %v", name, labels))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return metricKey{name: name, labels: b.String()}
}

// Counter returns the counter for name and optional k,v label pairs,
// creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for name and optional k,v label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram for name and optional k,v label pairs.
// All series of one name share bucket bounds: those set with SetBuckets,
// or the default decade buckets.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[k]
	if !ok {
		h = newHistogram(r.buckets[name])
		r.hists[k] = h
	}
	return h
}

// SetBuckets registers the upper bounds every future series of the named
// histogram is created with. Bounds must be strictly ascending. Series
// created before the call keep their bounds, so the owning package should
// set buckets before the first observation; name belongs to the same
// owner as the metric itself (the metricname analyzer enforces both).
func (r *Registry) SetBuckets(name string, bounds []float64) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: SetBuckets(%s): bounds not strictly ascending at index %d", name, i))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buckets[name] = append([]float64(nil), bounds...)
}

// ExpBuckets returns log-spaced histogram bounds from min to max with
// perDecade points per decade of magnitude — the bucket shape latency
// histograms want, where relative (not absolute) resolution is constant.
// The first bound is exactly min and the last exactly max.
func ExpBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade <= 0 {
		panic(fmt.Sprintf("obs: ExpBuckets(%g, %g, %d): need 0 < min < max and perDecade > 0", min, max, perDecade))
	}
	n := int(math.Round(math.Log10(max/min) * float64(perDecade)))
	if n < 1 {
		n = 1
	}
	out := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		out[i] = min * math.Pow(10, float64(i)/float64(perDecade))
	}
	out[0] = min
	out[n] = max
	return out
}

// Reset drops every registered metric, bucket override, and cached solver
// profile (tests and fresh CLI runs).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[metricKey]*Counter{}
	r.gauges = map[metricKey]*Gauge{}
	r.hists = map[metricKey]*Histogram{}
	r.buckets = map[string][]float64{}
	r.profiles = map[string]*Profile{}
}

// sortedKeys returns map keys ordered by name then label string, so
// exposition is deterministic.
func sortedKeys[V any](m map[metricKey]V) []metricKey {
	ks := make([]metricKey, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].name != ks[j].name {
			return ks[i].name < ks[j].name
		}
		return ks[i].labels < ks[j].labels
	})
	return ks
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (histograms as cumulative _bucket/_sum/_count series). The
// exposition is rendered into memory under the lock and written out after
// releasing it, so a slow scraper never stalls metric updates.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var buf bytes.Buffer
	r.mu.Lock()
	for _, k := range sortedKeys(r.counters) {
		fmt.Fprintf(&buf, "%s%s %d\n", k.name, k.labels, r.counters[k].Value())
	}
	for _, k := range sortedKeys(r.gauges) {
		fmt.Fprintf(&buf, "%s%s %g\n", k.name, k.labels, r.gauges[k].Value())
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		cum := int64(0)
		for i, ub := range h.bounds {
			cum += h.cells[i].Load()
			fmt.Fprintf(&buf, "%s_bucket%s %d\n", k.name, mergeLabels(k.labels, fmt.Sprintf("le=%q", fmtBound(ub))), cum)
		}
		fmt.Fprintf(&buf, "%s_bucket%s %d\n", k.name, mergeLabels(k.labels, `le="+Inf"`), h.Count())
		fmt.Fprintf(&buf, "%s_sum%s %g\n", k.name, k.labels, h.Sum())
		fmt.Fprintf(&buf, "%s_count%s %d\n", k.name, k.labels, h.Count())
	}
	r.mu.Unlock()
	_, err := w.Write(buf.Bytes())
	return err
}

// fmtBound renders a bucket bound the way Prometheus clients do.
func fmtBound(v float64) string { return fmt.Sprintf("%g", v) }

// mergeLabels splices extra into a rendered {..} label suffix.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// jsonMetric is the JSON exposition of one series.
type jsonMetric struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Value  float64 `json:"value,omitempty"`
	Count  int64   `json:"count,omitempty"`
	Sum    float64 `json:"sum,omitempty"`
	Mean   float64 `json:"mean,omitempty"`
}

// WriteJSON renders every metric as one JSON array (counters and gauges
// with value; histograms with count, sum, and mean). The snapshot is taken
// under the lock and encoded after releasing it.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	var out []jsonMetric
	for _, k := range sortedKeys(r.counters) {
		out = append(out, jsonMetric{Name: k.name, Labels: k.labels, Kind: "counter", Value: float64(r.counters[k].Value())})
	}
	for _, k := range sortedKeys(r.gauges) {
		out = append(out, jsonMetric{Name: k.name, Labels: k.labels, Kind: "gauge", Value: r.gauges[k].Value()})
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		out = append(out, jsonMetric{Name: k.name, Labels: k.labels, Kind: "histogram", Count: h.Count(), Sum: h.Sum(), Mean: h.Mean()})
	}
	r.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
