package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
)

// This file is the live half of the observability layer: a broadcast Hub
// fanning decision events, span completions, and workflow transitions out
// to bounded per-subscriber buffers. The JSONL/Chrome sinks and the trace
// ring are poll-after-the-fact surfaces; the Hub is what lets a client
// watch a workflow re-plan as it happens (the SSE endpoints in
// internal/server sit directly on top of it).
//
// Design constraints, in order:
//
//   - Zero cost with no subscriber. Publish starts with one atomic load;
//     when the subscriber count is zero nothing else runs, so the solver
//     and executor hot paths pay a predicated call, exactly like the Nop
//     tracer.
//   - Slow subscribers never block publishers. Each subscription owns a
//     bounded channel; when it is full the oldest buffered event is dropped
//     to make room and the loss is counted — per subscription (so the SSE
//     layer can emit a drop marker inline) and on the exported
//     hdlts_stream_dropped_total counter.
//   - Publish order is delivery order per subscriber (one channel each).

// Metric series registered by this package for the stream hub.
const (
	metricStreamEvents      = "hdlts_stream_events_total"
	metricStreamDropped     = "hdlts_stream_dropped_total"
	metricStreamSubscribers = "hdlts_stream_subscribers"
)

// StreamEvent is one live observation on the hub, wire-encodable as-is.
// Only the fields meaningful for the Kind are set; Proc is -1 when not
// applicable. Data carries the kind-specific payload (a span, a decision
// event) already rendered to JSON so fan-out never re-marshals per
// subscriber.
type StreamEvent struct {
	// Seq is the hub-wide publication ordinal (1-based).
	Seq uint64 `json:"seq"`
	// Kind discriminates the payload; one of the Kind* constants.
	Kind string `json:"kind"`
	// TraceID correlates the event with a request trace, when known.
	TraceID string `json:"trace_id,omitempty"`
	// Workflow is the subject workflow ID (workflow transitions only).
	Workflow string `json:"workflow,omitempty"`
	// Step is the subject step name (step transitions only).
	Step string `json:"step,omitempty"`
	// Name is the span name for KindSpan events.
	Name string `json:"name,omitempty"`
	// Phase carries the re-plan trigger or terminal state, when relevant.
	Phase string `json:"phase,omitempty"`
	// Proc is the subject processor slot, or -1 when not applicable (always
	// serialized: proc 0 is a real processor, so omitempty would lie).
	Proc int `json:"proc"`
	// Time is the event time in workflow-relative seconds, when relevant.
	Time float64 `json:"t,omitempty"`
	// Value carries the scalar payload (observed seconds, frontier size).
	Value float64 `json:"value,omitempty"`
	// Data is the kind-specific JSON payload (span or decision event).
	Data json.RawMessage `json:"data,omitempty"`
	// Skipped counts events a subscriber did not see: on a KindStreamSkip
	// marker, matching events published before it attached; on a
	// KindStreamDrop marker, events dropped from its buffer since the last
	// marker.
	Skipped uint64 `json:"skipped,omitempty"`
}

// StreamFilter restricts which events a subscription receives. The zero
// value matches everything. When both TraceID and Workflow are set an event
// matches if either field does — the per-workflow feed wants the engine's
// workflow transitions (stamped with the workflow ID) and the trace store's
// spans (stamped with the submitting request's trace ID) interleaved.
type StreamFilter struct {
	// Kinds, when non-empty, is the set of accepted Kind values.
	Kinds map[string]bool
	// TraceID, when set, accepts events stamped with this trace ID.
	TraceID string
	// Workflow, when set, accepts events stamped with this workflow ID.
	Workflow string
}

// match reports whether ev passes the filter.
func (f *StreamFilter) match(ev *StreamEvent) bool {
	if len(f.Kinds) > 0 && !f.Kinds[ev.Kind] {
		return false
	}
	if f.TraceID == "" && f.Workflow == "" {
		return true
	}
	return (f.TraceID != "" && ev.TraceID == f.TraceID) ||
		(f.Workflow != "" && ev.Workflow == f.Workflow)
}

// Subscription is one attached consumer: read events from C, report losses
// with Dropped, and Close when done. Safe for one reader goroutine.
type Subscription struct {
	hub     *Hub
	filter  StreamFilter
	ch      chan StreamEvent
	dropped atomic.Uint64
	// SkippedBefore counts matching events published before this
	// subscription attached — the basis of the stream.skip marker a mid-run
	// subscriber receives. For workflow-filtered subscriptions it is the
	// per-workflow publication count; otherwise the hub-wide count.
	SkippedBefore uint64

	closeOnce sync.Once
}

// C returns the event channel. It is closed by Close (never by the hub), so
// ranging over it requires the reader to own the Close call.
func (s *Subscription) C() <-chan StreamEvent { return s.ch }

// Dropped reports how many events have been dropped from this
// subscription's buffer so far.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription from the hub and releases its buffer.
// Safe to call more than once.
func (s *Subscription) Close() {
	s.closeOnce.Do(func() {
		s.hub.unsubscribe(s)
		close(s.ch)
	})
}

// Hub is the broadcast fan-out point. All methods are safe for concurrent
// use; Publish is wait-free with respect to subscribers (a full buffer
// drops, never blocks).
type Hub struct {
	mu   sync.Mutex
	subs map[*Subscription]struct{}
	seq  uint64
	// byWorkflow counts publications per workflow ID, so a subscriber
	// attaching mid-run learns how much of its workflow's stream it missed.
	// Entries live as long as the hub — the same retention the engine's
	// in-memory record table has.
	byWorkflow map[string]uint64

	nsubs  atomic.Int64
	defBuf int

	events  *Counter
	dropped *Counter
	gauge   *Gauge
}

// DefaultStreamBuffer is the per-subscriber buffer depth when the
// subscriber does not choose one.
const DefaultStreamBuffer = 256

// NewHub returns a hub whose subscriptions default to buf buffered events
// (0 = DefaultStreamBuffer), registering its counters in reg
// (nil = Default()).
func NewHub(reg *Registry, buf int) *Hub {
	if reg == nil {
		reg = Default()
	}
	if buf <= 0 {
		buf = DefaultStreamBuffer
	}
	return &Hub{
		subs:       make(map[*Subscription]struct{}),
		byWorkflow: make(map[string]uint64),
		defBuf:     buf,
		events:     reg.Counter(metricStreamEvents),
		dropped:    reg.Counter(metricStreamDropped),
		gauge:      reg.Gauge(metricStreamSubscribers),
	}
}

// Active reports whether any subscriber is attached — the guard that keeps
// publish sites free when nobody is watching. Safe on a nil hub.
func (h *Hub) Active() bool {
	return h != nil && h.nsubs.Load() > 0
}

// Subscribe attaches a consumer with the given filter and buffer depth
// (0 = the hub default). The returned subscription immediately receives
// matching events; SkippedBefore reports how many it already missed.
func (h *Hub) Subscribe(filter StreamFilter, buf int) *Subscription {
	if buf <= 0 {
		buf = h.defBuf
	}
	s := &Subscription{hub: h, filter: filter, ch: make(chan StreamEvent, buf)}
	h.mu.Lock()
	if filter.Workflow != "" {
		s.SkippedBefore = h.byWorkflow[filter.Workflow]
	} else {
		s.SkippedBefore = h.seq
	}
	h.subs[s] = struct{}{}
	h.nsubs.Store(int64(len(h.subs)))
	h.mu.Unlock()
	h.gauge.Inc()
	return s
}

// unsubscribe detaches s (Close's half; idempotence lives in Close).
func (h *Hub) unsubscribe(s *Subscription) {
	h.mu.Lock()
	_, ok := h.subs[s]
	delete(h.subs, s)
	h.nsubs.Store(int64(len(h.subs)))
	h.mu.Unlock()
	if ok {
		h.gauge.Dec()
	}
}

// Publish broadcasts ev to every matching subscriber, stamping the hub
// sequence number. With no subscriber attached the only work is one atomic
// load — but the per-workflow skip accounting still needs workflow events
// counted, so those pay the mutex even when idle. Safe on a nil hub.
func (h *Hub) Publish(ev StreamEvent) {
	if h == nil {
		return
	}
	if !h.Active() && ev.Workflow == "" {
		return
	}
	h.mu.Lock()
	h.seq++
	ev.Seq = h.seq
	if ev.Workflow != "" {
		h.byWorkflow[ev.Workflow]++
	}
	for s := range h.subs {
		if !s.filter.match(&ev) {
			continue
		}
		for {
			select {
			case s.ch <- ev:
			default:
				// Buffer full: drop the oldest buffered event to make room,
				// then retry. The subscriber learns about the loss from its
				// drop counter (the SSE layer turns it into an inline
				// stream.drop marker).
				select {
				case <-s.ch:
					s.dropped.Add(1)
					h.dropped.Inc()
				default:
					// The reader drained the channel between our probes; the
					// retry will land.
				}
				continue
			}
			break
		}
	}
	h.mu.Unlock()
	h.events.Inc()
}

// Published reports how many events the hub has broadcast in total.
func (h *Hub) Published() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// PublishedFor reports how many events carried the given workflow ID.
func (h *Hub) PublishedFor(workflow string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.byWorkflow[workflow]
}

// EncodeSpan renders a finished span as a stream payload.
func EncodeSpan(s *Span) (json.RawMessage, error) {
	return json.Marshal(s)
}

// EncodeEvent renders one decision event in the JSONL wire form (seq 0 —
// the stream event carries the hub sequence instead).
func EncodeEvent(ev Event) (json.RawMessage, error) {
	return json.Marshal(wireEvent(0, ev))
}

// publishSpan republishes a finished span on the live stream (Kind "span",
// payload = the span's wire form). Called by the trace store outside its
// mutex, only when a subscriber is attached.
func (h *Hub) publishSpan(s *Span) {
	data, err := EncodeSpan(s)
	if err != nil {
		return
	}
	h.Publish(StreamEvent{
		Kind:    KindSpan,
		TraceID: s.TraceID,
		Name:    s.Name,
		Proc:    -1,
		Data:    data,
	})
}

// publishDecision republishes one scheduler decision event on the live
// stream (Kind "decision", payload = the JSONL wire form).
func (h *Hub) publishDecision(traceID string, ev Event) {
	data, err := EncodeEvent(ev)
	if err != nil {
		return
	}
	h.Publish(StreamEvent{
		Kind:    KindDecision,
		TraceID: traceID,
		Name:    string(ev.Type),
		Proc:    ev.Proc,
		Time:    ev.Time,
		Data:    data,
	})
}
