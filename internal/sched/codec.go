package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
)

// jsonProblem is the on-disk representation of a Problem: the workflow, the
// processor count (with optional pairwise bandwidth), and the W matrix as
// per-task rows.
type jsonProblem struct {
	Graph     *dag.Graph  `json:"graph"`
	Procs     int         `json:"procs"`
	Bandwidth [][]float64 `json:"bandwidth,omitempty"`
	Costs     [][]float64 `json:"costs"`
}

// WriteJSON serialises the problem as indented JSON.
func (pr *Problem) WriteJSON(w io.Writer) error {
	jp := jsonProblem{Graph: pr.G, Procs: pr.NumProcs()}
	for t := 0; t < pr.NumTasks(); t++ {
		jp.Costs = append(jp.Costs, pr.W.Row(t))
	}
	// Emit the bandwidth matrix only when it is non-uniform.
	nonUniform := false
	for a := 0; a < pr.NumProcs() && !nonUniform; a++ {
		for b := 0; b < pr.NumProcs(); b++ {
			if a != b && pr.P.Bandwidth(platform.Proc(a), platform.Proc(b)) != 1 {
				nonUniform = true
				break
			}
		}
	}
	if nonUniform {
		jp.Bandwidth = make([][]float64, pr.NumProcs())
		for a := 0; a < pr.NumProcs(); a++ {
			jp.Bandwidth[a] = make([]float64, pr.NumProcs())
			for b := 0; b < pr.NumProcs(); b++ {
				if a != b {
					jp.Bandwidth[a][b] = pr.P.Bandwidth(platform.Proc(a), platform.Proc(b))
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jp)
}

// ReadProblemJSON deserialises and validates a problem written by WriteJSON.
func ReadProblemJSON(r io.Reader) (*Problem, error) {
	var jp jsonProblem
	if err := json.NewDecoder(r).Decode(&jp); err != nil {
		return nil, fmt.Errorf("sched: decode problem: %w", err)
	}
	if jp.Graph == nil {
		return nil, fmt.Errorf("sched: problem file has no graph")
	}
	var pl *platform.Platform
	var err error
	if jp.Bandwidth != nil {
		// Re-fill the (ignored) diagonal so validation passes.
		for i := range jp.Bandwidth {
			if i < len(jp.Bandwidth[i]) {
				jp.Bandwidth[i][i] = 1
			}
		}
		pl, err = platform.NewWithBandwidth(jp.Bandwidth)
	} else {
		pl, err = platform.NewUniform(jp.Procs)
	}
	if err != nil {
		return nil, err
	}
	w, err := platform.CostsFromRows(jp.Costs)
	if err != nil {
		return nil, err
	}
	return NewProblem(jp.Graph, pl, w)
}
