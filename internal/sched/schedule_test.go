package sched

import (
	"strings"
	"testing"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
)

// chainProblem builds a 3-task chain A -> B -> C on two processors with
// simple costs (A: 2/4, B: 3/1, C: 2/2) and edge data 5 each.
func chainProblem(t *testing.T) *Problem {
	t.Helper()
	g := dag.New(3)
	a := g.AddTask("A")
	b := g.AddTask("B")
	c := g.AddTask("C")
	g.MustAddEdge(a, b, 5)
	g.MustAddEdge(b, c, 5)
	w := platform.MustCostsFromRows([][]float64{{2, 4}, {3, 1}, {2, 2}})
	return MustProblem(g, platform.MustUniform(2), w)
}

func TestNewProblemValidation(t *testing.T) {
	g := dag.New(1)
	g.AddTask("a")
	pl := platform.MustUniform(2)
	w := platform.MustCostsFromRows([][]float64{{1, 1}})

	if _, err := NewProblem(nil, pl, w); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewProblem(g, nil, w); err == nil {
		t.Error("nil platform accepted")
	}
	if _, err := NewProblem(g, pl, nil); err == nil {
		t.Error("nil costs accepted")
	}
	badW := platform.MustCostsFromRows([][]float64{{1, 1}, {2, 2}})
	if _, err := NewProblem(g, pl, badW); err == nil {
		t.Error("mismatched cost rows accepted")
	}
	badP := platform.MustUniform(3)
	if _, err := NewProblem(g, badP, w); err == nil {
		t.Error("mismatched processor count accepted")
	}
	if _, err := NewProblem(g, pl, w); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
}

func TestPlaceAndQueries(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	if s.Complete() || s.NumPlaced() != 0 {
		t.Fatal("fresh schedule should be empty")
	}
	if err := s.Place(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(0, 1, 0); err == nil {
		t.Fatal("double placement accepted")
	}
	pl, ok := s.PlacementOf(0)
	if !ok || pl.Proc != 0 || pl.Start != 0 || pl.Finish != 2 {
		t.Fatalf("placement = %+v", pl)
	}
	if s.AFT(0) != 2 {
		t.Fatalf("AFT = %g, want 2", s.AFT(0))
	}
	if s.Avail(0) != 2 || s.Avail(1) != 0 {
		t.Fatalf("avail = %g/%g", s.Avail(0), s.Avail(1))
	}
	if !s.HasCopyOn(0, 0) || s.HasCopyOn(0, 1) {
		t.Fatal("HasCopyOn wrong")
	}
}

func TestAFTPanicsOnUnscheduled(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	defer func() {
		if recover() == nil {
			t.Fatal("AFT on unscheduled task did not panic")
		}
	}()
	s.AFT(2)
}

func TestDuplicates(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	if err := s.Place(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceDuplicate(0, 0, 10); err == nil {
		t.Fatal("duplicate on the same processor as the primary accepted")
	}
	if err := s.PlaceDuplicate(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceDuplicate(0, 1, 20); err == nil {
		t.Fatal("second duplicate on one processor accepted")
	}
	if got := s.NumDuplicates(); got != 1 {
		t.Fatalf("NumDuplicates = %d, want 1", got)
	}
	copies := s.Copies(0)
	if len(copies) != 2 || copies[0].Duplicate || !copies[1].Duplicate {
		t.Fatalf("Copies = %+v", copies)
	}
	// Makespan counts only primary copies.
	if mk := s.Makespan(); mk != 2 {
		t.Fatalf("makespan = %g, want 2 (duplicate at [0,4) must not count)", mk)
	}
}

func TestMakespanTracksLatestPrimary(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	if s.Makespan() != 0 {
		t.Fatal("empty makespan != 0")
	}
	_ = s.Place(0, 0, 0) // [0,2)
	_ = s.Place(1, 1, 7) // [7,8)
	_ = s.Place(2, 1, 8) // [8,10)
	if mk := s.Makespan(); mk != 10 {
		t.Fatalf("makespan = %g, want 10", mk)
	}
	if !s.Complete() {
		t.Fatal("schedule should be complete")
	}
}

func TestArrivalFromCopies(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0)          // A on P1, finishes 2
	_ = s.PlaceDuplicate(0, 1, 1) // dup on P2, finishes 1+4=5

	// Arrival of A's output (data 5, uniform bandwidth) on P1: local 2.
	if got := s.arrivalFromCopies(0, 5, 0); got != 2 {
		t.Errorf("arrival on P1 = %g, want 2", got)
	}
	// On P2: min(2+5 from P1, 5 local from dup) = 5.
	if got := s.arrivalFromCopies(0, 5, 1); got != 5 {
		t.Errorf("arrival on P2 = %g, want 5", got)
	}
}

func TestNormalizeProblem(t *testing.T) {
	g := dag.New(2)
	g.AddTask("a")
	g.AddTask("b") // two isolated tasks: 2 entries, 2 exits
	w := platform.MustCostsFromRows([][]float64{{1, 2}, {3, 4}})
	pr := MustProblem(g, platform.MustUniform(2), w)
	n := pr.Normalize()
	if n == pr {
		t.Fatal("normalisation did not copy")
	}
	if n.NumTasks() != 4 {
		t.Fatalf("normalised tasks = %d, want 4", n.NumTasks())
	}
	if n.W.NumTasks() != 4 {
		t.Fatalf("cost rows = %d, want 4", n.W.NumTasks())
	}
	if n.Exec(dag.TaskID(2), 0) != 0 || n.Exec(dag.TaskID(3), 1) != 0 {
		t.Fatal("pseudo tasks should cost zero")
	}
	// Already-normalised problems pass through.
	if n2 := n.Normalize(); n2 != n {
		t.Fatal("double normalisation copied again")
	}
}

func TestSeqTimeOnBestProc(t *testing.T) {
	pr := chainProblem(t)
	// P1 total: 2+3+2 = 7; P2 total: 4+1+2 = 7 -> min 7.
	if got := pr.SeqTimeOnBestProc(); got != 7 {
		t.Fatalf("SeqTimeOnBestProc = %g, want 7", got)
	}
}

func TestCPMinLowerBound(t *testing.T) {
	pr := chainProblem(t)
	// Chain: min costs 2 + 1 + 2 = 5.
	lb, err := pr.CPMinLowerBound()
	if err != nil {
		t.Fatal(err)
	}
	if lb != 5 {
		t.Fatalf("lower bound = %g, want 5", lb)
	}
}

func TestMeanComm(t *testing.T) {
	pr := chainProblem(t)
	if got := pr.MeanComm(5); got != 5 {
		t.Fatalf("uniform MeanComm = %g, want 5", got)
	}
	if got := pr.MeanComm(0); got != 0 {
		t.Fatalf("MeanComm(0) = %g, want 0", got)
	}
	// Single-processor platforms never communicate.
	g := dag.New(1)
	g.AddTask("a")
	pr1 := MustProblem(g, platform.MustUniform(1), platform.MustCostsFromRows([][]float64{{1}}))
	if got := pr1.MeanComm(9); got != 0 {
		t.Fatalf("single-proc MeanComm = %g, want 0", got)
	}
}

func TestSummary(t *testing.T) {
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0)
	if sum := s.Summary(); !strings.Contains(sum, "1/3 tasks") {
		t.Errorf("Summary = %q", sum)
	}
}
