package sched

import (
	"math"
	"testing"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
)

// forkProblem: entry E fans out to X with heavy communication, so that
// duplicating E on the other processor pays off.
//
//	E (cost 4 on P1, 6 on P2) --data 100--> X (cost 3/3)
func forkProblem(t *testing.T) *Problem {
	t.Helper()
	g := dag.New(2)
	e := g.AddTask("E")
	x := g.AddTask("X")
	g.MustAddEdge(e, x, 100)
	w := platform.MustCostsFromRows([][]float64{{4, 6}, {3, 3}})
	return MustProblem(g, platform.MustUniform(2), w)
}

func TestReadyTimeUnscheduledParent(t *testing.T) {
	pr := forkProblem(t)
	s := NewSchedule(pr)
	if _, _, _, _, err := s.ReadyTime(1, 0, HDLTSPolicy); err == nil {
		t.Fatal("ReadyTime with an unscheduled parent must error")
	}
}

func TestReadyTimeLocalAndRemote(t *testing.T) {
	pr := forkProblem(t)
	s := NewSchedule(pr)
	if err := s.Place(0, 0, 0); err != nil { // E on P1, finishes 4
		t.Fatal(err)
	}
	// Without duplication: local ready 4, remote ready 4+100.
	r, dup, _, _, err := s.ReadyTime(1, 0, Policy{})
	if err != nil || dup || r != 4 {
		t.Fatalf("local ready = %g dup=%v err=%v, want 4 false nil", r, dup, err)
	}
	r, dup, _, _, err = s.ReadyTime(1, 1, Policy{})
	if err != nil || dup || r != 104 {
		t.Fatalf("remote ready = %g dup=%v err=%v, want 104 false nil", r, dup, err)
	}
	// With duplication: on P2 a fresh copy of E finishes at 6 << 104.
	r, dup, dupTask, dupFin, err := s.ReadyTime(1, 1, HDLTSPolicy)
	if err != nil || !dup || r != 6 || dupFin != 6 || dupTask != 0 {
		t.Fatalf("dup ready = %g dup=%v task=%d fin=%g err=%v, want 6 true 0 6 nil", r, dup, dupTask, dupFin, err)
	}
	// On P1 the local copy is better than any duplicate; no dup reported.
	r, dup, _, _, err = s.ReadyTime(1, 0, HDLTSPolicy)
	if err != nil || dup || r != 4 {
		t.Fatalf("P1 ready = %g dup=%v, want 4 false", r, dup)
	}
}

func TestEstimateMaterialisesBeneficialDuplicate(t *testing.T) {
	pr := forkProblem(t)
	s := NewSchedule(pr)
	if err := s.Place(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	e, err := s.Estimate(1, 1, HDLTSPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if !e.UseDuplicate || e.EST != 6 || e.EFT != 9 {
		t.Fatalf("estimate = %+v, want duplicate with EST 6 EFT 9", e)
	}
	if err := s.Commit(e); err != nil {
		t.Fatal(err)
	}
	if s.NumDuplicates() != 1 {
		t.Fatalf("duplicates = %d, want 1", s.NumDuplicates())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	if mk := s.Makespan(); mk != 9 {
		t.Fatalf("makespan = %g, want 9", mk)
	}
}

func TestEstimateSkipsUselessDuplicate(t *testing.T) {
	// Entry is expensive on P2 and the edge is cheap: duplication never
	// helps, so the estimate must not request one.
	g := dag.New(2)
	e := g.AddTask("E")
	x := g.AddTask("X")
	g.MustAddEdge(e, x, 1)
	w := platform.MustCostsFromRows([][]float64{{4, 50}, {3, 3}})
	pr := MustProblem(g, platform.MustUniform(2), w)

	s := NewSchedule(pr)
	if err := s.Place(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	est, err := s.Estimate(1, 1, HDLTSPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if est.UseDuplicate {
		t.Fatalf("useless duplicate requested: %+v", est)
	}
	if est.EST != 5 { // AFT 4 + comm 1
		t.Fatalf("EST = %g, want 5", est.EST)
	}
}

func TestEstimateDuplicateBlockedWhenSlotTaken(t *testing.T) {
	// Occupy [0, 6) on P2 with a blocker task so the virtual duplicate of
	// the entry (which would need [0, 6) there) cannot start at time 0.
	g := dag.New(3)
	e := g.AddTask("E")
	blocker := g.AddTask("B")
	x := g.AddTask("X")
	g.MustAddEdge(e, blocker, 0)
	g.MustAddEdge(e, x, 100)
	w := platform.MustCostsFromRows([][]float64{{4, 6}, {5, 5}, {3, 3}})
	pr := MustProblem(g, platform.MustUniform(2), w)
	s := NewSchedule(pr)
	if err := s.Place(0, 0, 0); err != nil { // E on P1 [0,4)
		t.Fatal(err)
	}
	if err := s.Place(1, 1, 4); err != nil { // blocker on P2 [4,9) — [0,6) not free
		t.Fatal(err)
	}
	r, dup, _, _, err := s.ReadyTime(2, 1, HDLTSPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if dup {
		t.Fatal("duplicate offered although [0, W) is occupied")
	}
	if r != 104 {
		t.Fatalf("ready = %g, want 104", r)
	}
}

func TestEstimateInsertionVsAvail(t *testing.T) {
	// One processor, two tasks already at [0,2) and [10,12); a 3-unit task
	// with ready 2 starts at 2 under insertion but 12 under avail.
	g := dag.New(3)
	a := g.AddTask("A")
	b := g.AddTask("B")
	c := g.AddTask("C")
	_ = a
	_ = b
	_ = c
	w := platform.MustCostsFromRows([][]float64{{2}, {2}, {3}})
	pr := MustProblem(g, platform.MustUniform(1), w)
	s := NewSchedule(pr)
	if err := s.Place(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(1, 0, 10); err != nil {
		t.Fatal(err)
	}
	ins, err := s.Estimate(2, 0, Policy{Insertion: true})
	if err != nil {
		t.Fatal(err)
	}
	if ins.EST != 2 || ins.EFT != 5 {
		t.Fatalf("insertion EST/EFT = %g/%g, want 2/5", ins.EST, ins.EFT)
	}
	avail, err := s.Estimate(2, 0, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if avail.EST != 12 || avail.EFT != 15 {
		t.Fatalf("avail EST/EFT = %g/%g, want 12/15", avail.EST, avail.EFT)
	}
}

func TestBestEFTTieBreaksToLowerProc(t *testing.T) {
	g := dag.New(1)
	g.AddTask("a")
	w := platform.MustCostsFromRows([][]float64{{7, 7, 7}})
	pr := MustProblem(g, platform.MustUniform(3), w)
	s := NewSchedule(pr)
	best, err := s.BestEFT(0, HDLTSPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if best.Proc != 0 {
		t.Fatalf("tie broke to P%d, want P1", best.Proc+1)
	}
}

func TestEstimateAllReusesBuffer(t *testing.T) {
	pr := forkProblem(t)
	s := NewSchedule(pr)
	buf := make([]Estimate, 0, 2)
	es, err := s.EstimateAll(0, HDLTSPolicy, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 2 {
		t.Fatalf("estimates = %d, want 2", len(es))
	}
	if es[0].EFT != 4 || es[1].EFT != 6 {
		t.Fatalf("EFTs = %g/%g, want 4/6", es[0].EFT, es[1].EFT)
	}
}

func TestCommitWithoutEntryParentFails(t *testing.T) {
	pr := forkProblem(t)
	s := NewSchedule(pr)
	err := s.Commit(Estimate{Task: 0, Proc: 0, EST: 0, UseDuplicate: true})
	if err == nil {
		t.Fatal("Commit materialised a duplicate for a task with no entry parent")
	}
}

func TestReadyTimeNaNDupFinish(t *testing.T) {
	// dupFinish must only be meaningful when usedDup is true.
	pr := forkProblem(t)
	s := NewSchedule(pr)
	if err := s.Place(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	_, used, _, fin, err := s.ReadyTime(1, 0, HDLTSPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if used {
		t.Fatal("unexpected duplicate on the entry's own processor")
	}
	_ = fin // value is unspecified when used == false
	if !math.IsNaN(fin) && fin != 0 {
		// Accept either NaN or 0; anything else suggests state leakage.
		t.Fatalf("dupFinish = %g for unused duplicate", fin)
	}
}
