package sched

// Algorithm is a workflow scheduler: given a problem it produces a complete
// schedule. Implementations must be safe for concurrent use (the experiment
// harness runs them from a worker pool) and must normalise multi-entry/exit
// workflows themselves (Problem.Normalize).
type Algorithm interface {
	// Name identifies the algorithm in experiment tables ("HDLTS", "HEFT", ...).
	Name() string
	// Schedule maps the workflow onto the platform. The returned schedule is
	// complete and feasible; it may reference a normalised variant of pr.
	Schedule(pr *Problem) (*Schedule, error)
}
