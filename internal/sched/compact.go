package sched

import (
	"fmt"
	"sort"

	"hdlts/internal/dag"
)

// Compact rebuilds a complete schedule keeping every placement decision —
// the processor of each task copy and the relative order of copies on each
// processor — but re-timing every copy to start as early as precedence,
// communication, and its processor predecessor allow. Compaction never
// increases the makespan; it is a standard post-pass that recovers slack
// left by avail-based placement (insertion-based schedules are usually
// already tight).
func (s *Schedule) Compact() (*Schedule, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("sched: cannot compact an incomplete schedule (%d/%d placed)", s.NumPlaced(), s.prob.NumTasks())
	}

	// Collect every copy and order them so that all constraints point
	// backwards: ascending original start time, ties broken by topological
	// position (which orders zero-duration pseudo chains correctly).
	order, err := s.prob.G.TopoOrder()
	if err != nil {
		return nil, err
	}
	topoPos := make([]int, s.prob.NumTasks())
	for i, t := range order {
		topoPos[t] = i
	}
	type copyRef struct {
		p Placement
	}
	var copies []copyRef
	for t := 0; t < s.prob.NumTasks(); t++ {
		for _, c := range s.Copies(dag.TaskID(t)) {
			copies = append(copies, copyRef{p: c})
		}
	}
	sort.SliceStable(copies, func(i, j int) bool {
		a, b := copies[i].p, copies[j].p
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if topoPos[a.Task] != topoPos[b.Task] {
			return topoPos[a.Task] < topoPos[b.Task]
		}
		return a.Proc < b.Proc
	})

	n := NewSchedule(s.prob)
	procTail := make([]float64, s.prob.NumProcs())
	for _, cr := range copies {
		c := cr.p
		// Earliest start: data from every parent (via the nearest already
		// re-timed copy) and the processor's running tail (order preserved).
		ready := procTail[c.Proc]
		for _, a := range s.prob.G.Preds(c.Task) {
			arr := n.arrivalFromCopies(a.Task, a.Data, c.Proc)
			if arr > ready {
				ready = arr
			}
		}
		var placeErr error
		if c.Duplicate {
			placeErr = n.PlaceDuplicate(c.Task, c.Proc, ready)
		} else {
			placeErr = n.Place(c.Task, c.Proc, ready)
		}
		if placeErr != nil {
			return nil, fmt.Errorf("sched: compaction re-placement failed: %w", placeErr)
		}
		end := ready + s.prob.Exec(c.Task, c.Proc)
		if end > procTail[c.Proc] {
			procTail[c.Proc] = end
		}
	}
	return n, nil
}
