package sched

import (
	"fmt"
	"sort"
	"strings"

	"hdlts/internal/platform"
)

// Analysis summarises a completed schedule beyond its makespan: how busy
// each processor was, how much time went idle, how much data crossed the
// network, and how the load spread. These are the quantities one inspects
// when two algorithms' makespans are close.
type Analysis struct {
	Makespan float64
	// BusyTime is the total occupied time per processor (including entry
	// duplicates).
	BusyTime []float64
	// Utilization is BusyTime / Makespan per processor.
	Utilization []float64
	// MeanUtilization averages Utilization over processors.
	MeanUtilization float64
	// LoadImbalance is (max busy − min busy) / max busy; 0 is perfect.
	LoadImbalance float64
	// CommVolume is the total data shipped between distinct processors
	// (each dependency counted once, from the copy actually used: the one
	// yielding the earliest arrival).
	CommVolume float64
	// LocalDeps counts dependencies satisfied without network transfer.
	LocalDeps int
	// RemoteDeps counts dependencies that crossed the network.
	RemoteDeps int
	// Duplicates is the number of redundant entry-task copies.
	Duplicates int
}

// Analyze computes the schedule analysis. The schedule must be complete.
func (s *Schedule) Analyze() (*Analysis, error) {
	if !s.Complete() {
		return nil, fmt.Errorf("sched: cannot analyse an incomplete schedule (%d/%d placed)", s.NumPlaced(), s.prob.NumTasks())
	}
	a := &Analysis{
		Makespan:    s.Makespan(),
		BusyTime:    make([]float64, s.prob.NumProcs()),
		Utilization: make([]float64, s.prob.NumProcs()),
		Duplicates:  s.NumDuplicates(),
	}
	for p := range a.BusyTime {
		for _, sl := range s.ProcSlots(platform.Proc(p)) {
			a.BusyTime[p] += sl.Dur()
		}
	}
	if a.Makespan > 0 {
		sum := 0.0
		for p, b := range a.BusyTime {
			a.Utilization[p] = b / a.Makespan
			sum += a.Utilization[p]
		}
		a.MeanUtilization = sum / float64(len(a.BusyTime))
	}
	minB, maxB := a.BusyTime[0], a.BusyTime[0]
	for _, b := range a.BusyTime[1:] {
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	if maxB > 0 {
		a.LoadImbalance = (maxB - minB) / maxB
	}

	// Attribute each dependency to the parent copy that actually served it:
	// the copy with the earliest arrival at the child's processor.
	g := s.prob.G
	for t := 0; t < s.prob.NumTasks(); t++ {
		child := s.primary[t]
		for _, arc := range g.Preds(child.Task) {
			bestArr, bestProc := -1.0, child.Proc
			for _, c := range s.Copies(arc.Task) {
				arr := c.Finish + s.prob.Comm(arc.Data, c.Proc, child.Proc)
				if bestArr < 0 || arr < bestArr {
					bestArr, bestProc = arr, c.Proc
				}
			}
			if bestProc == child.Proc || arc.Data == 0 {
				a.LocalDeps++
			} else {
				a.RemoteDeps++
				a.CommVolume += arc.Data
			}
		}
	}
	return a, nil
}

// String renders a compact multi-line report.
func (a *Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.4g, mean utilization %.1f%%, imbalance %.1f%%\n",
		a.Makespan, a.MeanUtilization*100, a.LoadImbalance*100)
	fmt.Fprintf(&b, "deps: %d local / %d remote, comm volume %.4g, duplicates %d\n",
		a.LocalDeps, a.RemoteDeps, a.CommVolume, a.Duplicates)
	for p, u := range a.Utilization {
		fmt.Fprintf(&b, "  P%-3d busy %.4g (%.1f%%)\n", p+1, a.BusyTime[p], u*100)
	}
	return b.String()
}

// CompareSchedules reports, task by task, where two complete schedules of
// the same problem differ — a debugging aid when algorithm variants
// diverge. The result lists task IDs whose (processor, start) pair differs,
// in ascending order.
func CompareSchedules(a, b *Schedule) ([]int, error) {
	if a.prob.NumTasks() != b.prob.NumTasks() {
		return nil, fmt.Errorf("sched: schedules cover different problems (%d vs %d tasks)", a.prob.NumTasks(), b.prob.NumTasks())
	}
	if !a.Complete() || !b.Complete() {
		return nil, fmt.Errorf("sched: cannot compare incomplete schedules")
	}
	var diff []int
	for t := 0; t < a.prob.NumTasks(); t++ {
		pa, pb := a.primary[t], b.primary[t]
		if pa.Proc != pb.Proc || pa.Start != pb.Start {
			diff = append(diff, t)
		}
	}
	sort.Ints(diff)
	return diff, nil
}
