package sched

import (
	"math"
	"strings"
	"testing"
)

func completedChain(t *testing.T) *Schedule {
	t.Helper()
	pr := chainProblem(t)
	s := NewSchedule(pr)
	// A on P1 [0,2); B on P2 [7,8) after comm 5; C on P2 [8,10) local.
	if err := s.Place(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(1, 1, 7); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(2, 1, 8); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAnalyzeIncomplete(t *testing.T) {
	pr := chainProblem(t)
	if _, err := NewSchedule(pr).Analyze(); err == nil {
		t.Fatal("incomplete schedule analysed")
	}
}

func TestAnalyzeChain(t *testing.T) {
	s := completedChain(t)
	a, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != 10 {
		t.Errorf("makespan = %g", a.Makespan)
	}
	if a.BusyTime[0] != 2 || a.BusyTime[1] != 3 {
		t.Errorf("busy = %v, want [2 3]", a.BusyTime)
	}
	if math.Abs(a.Utilization[0]-0.2) > 1e-12 || math.Abs(a.Utilization[1]-0.3) > 1e-12 {
		t.Errorf("utilization = %v", a.Utilization)
	}
	if math.Abs(a.MeanUtilization-0.25) > 1e-12 {
		t.Errorf("mean utilization = %g", a.MeanUtilization)
	}
	// Imbalance: (3-2)/3.
	if math.Abs(a.LoadImbalance-1.0/3.0) > 1e-12 {
		t.Errorf("imbalance = %g", a.LoadImbalance)
	}
	// A->B crossed the network (5 units); B->C stayed local.
	if a.RemoteDeps != 1 || a.LocalDeps != 1 || a.CommVolume != 5 {
		t.Errorf("deps = %d local / %d remote, volume %g", a.LocalDeps, a.RemoteDeps, a.CommVolume)
	}
	if a.Duplicates != 0 {
		t.Errorf("duplicates = %d", a.Duplicates)
	}
	if rep := a.String(); !strings.Contains(rep, "P1") || !strings.Contains(rep, "remote") {
		t.Errorf("report = %q", rep)
	}
}

func TestAnalyzeDuplicateServesLocally(t *testing.T) {
	// With a duplicate of A on P2, the A->B dependency is served locally
	// and counts as local, not remote.
	pr := chainProblem(t)
	s := NewSchedule(pr)
	_ = s.Place(0, 0, 0)
	if err := s.PlaceDuplicate(0, 1, 0); err != nil { // finishes at 4 on P2
		t.Fatal(err)
	}
	_ = s.Place(1, 1, 4)
	_ = s.Place(2, 1, 5)
	a, err := s.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.RemoteDeps != 0 || a.LocalDeps != 2 {
		t.Errorf("deps = %d local / %d remote, want 2/0", a.LocalDeps, a.RemoteDeps)
	}
	if a.Duplicates != 1 {
		t.Errorf("duplicates = %d", a.Duplicates)
	}
	// The duplicate's busy time counts toward P2.
	if a.BusyTime[1] != 4+1+2 {
		t.Errorf("P2 busy = %g, want 7", a.BusyTime[1])
	}
}

func TestCompareSchedules(t *testing.T) {
	s1 := completedChain(t)
	s2 := completedChain(t)
	diff, err := CompareSchedules(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 0 {
		t.Fatalf("identical schedules differ: %v", diff)
	}

	pr := chainProblem(t)
	s3 := NewSchedule(pr)
	_ = s3.Place(0, 1, 0) // A on P2 instead
	_ = s3.Place(1, 1, 4)
	_ = s3.Place(2, 1, 5)
	diff, err = CompareSchedules(s1, s3)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 3 {
		t.Fatalf("diff = %v, want all three tasks", diff)
	}

	if _, err := CompareSchedules(s1, NewSchedule(pr)); err == nil {
		t.Fatal("incomplete comparison accepted")
	}
}
