package sched

import (
	"fmt"
	"math"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
)

// Placement records where one copy of a task executes.
type Placement struct {
	Task      dag.TaskID
	Proc      platform.Proc
	Start     float64
	Finish    float64
	Duplicate bool
}

// unplaced marks a task without a primary placement yet.
const unplaced platform.Proc = -1

// Schedule is a (possibly partial) mapping of workflow tasks onto the
// processors of a Problem, including any duplicated entry-task copies. All
// mutation goes through Place/PlaceDuplicate, which maintain per-processor
// timelines and reject overlapping reservations, so an accepted schedule is
// structurally sound by construction; Validate additionally re-checks
// precedence and communication feasibility from first principles.
type Schedule struct {
	prob      *Problem
	primary   []Placement   // indexed by task; Proc == unplaced when absent
	dups      [][]Placement // indexed by task; duplicated copies
	timelines []timeline    // indexed by processor
	placed    int
}

// NewSchedule returns an empty schedule for the problem.
func NewSchedule(pr *Problem) *Schedule {
	s := &Schedule{}
	s.Reset(pr)
	return s
}

// Reset empties the schedule and rebinds it to pr, retaining the backing
// storage of a previous solve where capacities allow. A long-running service
// scheduling a stream of similarly sized problems reuses one Schedule and
// pays no per-solve allocation; see HDLTS.ScheduleInto.
func (s *Schedule) Reset(pr *Problem) {
	n, p := pr.NumTasks(), pr.NumProcs()
	s.prob = pr
	s.placed = 0
	if cap(s.primary) < n {
		s.primary = make([]Placement, n)
	}
	s.primary = s.primary[:n]
	for i := range s.primary {
		s.primary[i] = Placement{Task: dag.TaskID(i), Proc: unplaced}
	}
	if cap(s.dups) < n {
		s.dups = make([][]Placement, n)
	}
	s.dups = s.dups[:n]
	for i := range s.dups {
		s.dups[i] = s.dups[i][:0]
	}
	if cap(s.timelines) < p {
		s.timelines = make([]timeline, p)
	}
	s.timelines = s.timelines[:p]
	for i := range s.timelines {
		s.timelines[i].reset()
	}
}

// Problem returns the problem this schedule maps.
func (s *Schedule) Problem() *Problem { return s.prob }

// Placed reports whether task t has its primary copy scheduled.
func (s *Schedule) Placed(t dag.TaskID) bool { return s.primary[t].Proc != unplaced }

// NumPlaced reports how many tasks have primary placements.
func (s *Schedule) NumPlaced() int { return s.placed }

// Complete reports whether every task has been scheduled.
func (s *Schedule) Complete() bool { return s.placed == s.prob.NumTasks() }

// PlacementOf returns the primary placement of t; ok is false if t is not
// yet scheduled.
func (s *Schedule) PlacementOf(t dag.TaskID) (Placement, bool) {
	p := s.primary[t]
	return p, p.Proc != unplaced
}

// AFT returns the actual finish time of task t's primary copy (Definition 4).
// It panics if t is unscheduled — callers must respect precedence order.
func (s *Schedule) AFT(t dag.TaskID) float64 {
	if !s.Placed(t) {
		panic(fmt.Sprintf("sched: AFT of unscheduled task %d", t))
	}
	return s.primary[t].Finish
}

// Copies returns every scheduled copy of t: the primary placement (if any)
// followed by duplicates in placement order.
func (s *Schedule) Copies(t dag.TaskID) []Placement {
	var out []Placement
	if s.Placed(t) {
		out = append(out, s.primary[t])
	}
	out = append(out, s.dups[t]...)
	return out
}

// HasCopyOn reports whether any copy of t runs on processor p.
func (s *Schedule) HasCopyOn(t dag.TaskID, p platform.Proc) bool {
	if s.Placed(t) && s.primary[t].Proc == p {
		return true
	}
	for _, d := range s.dups[t] {
		if d.Proc == p {
			return true
		}
	}
	return false
}

// Avail returns Avail(m_p): the time processor p finishes its last task.
func (s *Schedule) Avail(p platform.Proc) float64 { return s.timelines[p].avail() }

// FreeAt reports whether [start, start+dur) is idle on processor p.
func (s *Schedule) FreeAt(p platform.Proc, start, dur float64) bool {
	return s.timelines[p].freeAt(start, dur)
}

// EarliestFit returns the earliest insertion-policy start time >= ready for
// a task of the given duration on processor p.
func (s *Schedule) EarliestFit(p platform.Proc, ready, dur float64) float64 {
	return s.timelines[p].earliestFit(ready, dur)
}

// Place schedules the primary copy of t on processor p starting at start.
// Duration comes from the cost matrix. It rejects double placement and
// timeline overlap.
func (s *Schedule) Place(t dag.TaskID, p platform.Proc, start float64) error {
	if s.Placed(t) {
		return fmt.Errorf("sched: task %d already scheduled", t)
	}
	dur := s.prob.Exec(t, p)
	if err := s.timelines[p].insert(Slot{Start: start, End: start + dur, Task: t}); err != nil {
		return err
	}
	s.primary[t] = Placement{Task: t, Proc: p, Start: start, Finish: start + dur}
	s.placed++
	return nil
}

// PlaceDuplicate schedules a redundant copy of t on processor p starting at
// start. Duplicates of an already-duplicated-or-placed processor are
// rejected, as are overlaps.
func (s *Schedule) PlaceDuplicate(t dag.TaskID, p platform.Proc, start float64) error {
	if s.HasCopyOn(t, p) {
		return fmt.Errorf("sched: task %d already has a copy on processor %d", t, p)
	}
	dur := s.prob.Exec(t, p)
	if err := s.timelines[p].insert(Slot{Start: start, End: start + dur, Task: t, Duplicate: true}); err != nil {
		return err
	}
	s.dups[t] = append(s.dups[t], Placement{Task: t, Proc: p, Start: start, Finish: start + dur, Duplicate: true})
	return nil
}

// Makespan returns the overall schedule length: the maximum finish time of
// any primary task copy (equal to AFT(v_exit) for a complete normalised
// schedule, Definition 9). Zero for an empty schedule.
func (s *Schedule) Makespan() float64 {
	m := 0.0
	for i := range s.primary {
		if s.primary[i].Proc != unplaced && s.primary[i].Finish > m {
			m = s.primary[i].Finish
		}
	}
	return m
}

// ProcSlots returns a copy of processor p's occupied slots in start order.
func (s *Schedule) ProcSlots(p platform.Proc) []Slot { return s.timelines[p].snapshot() }

// NumDuplicates returns the total number of duplicated copies placed.
func (s *Schedule) NumDuplicates() int {
	n := 0
	for _, d := range s.dups {
		n += len(d)
	}
	return n
}

// Arrival returns the earliest time the output of parent u (with edge data
// volume data) can be available on processor p, considering every scheduled
// copy of u (primary and duplicates). +Inf when u has no copies yet. This is
// the non-allocating accessor behind ReadyTime; solvers probing tentative
// placements (e.g. the HDLTS lookahead) should use it instead of ranging
// over Copies, which allocates.
//
//hdlts:hotpath
func (s *Schedule) Arrival(u dag.TaskID, data float64, p platform.Proc) float64 {
	return s.arrivalFromCopies(u, data, p)
}

// arrivalFromCopies returns the earliest time the output of parent u (with
// edge data volume data) can be available on processor p, considering every
// scheduled copy of u. +Inf when u has no copies yet.
//
//hdlts:hotpath
func (s *Schedule) arrivalFromCopies(u dag.TaskID, data float64, p platform.Proc) float64 {
	arr := math.Inf(1)
	if s.Placed(u) {
		c := s.primary[u]
		if v := c.Finish + s.prob.Comm(data, c.Proc, p); v < arr {
			arr = v
		}
	}
	for _, c := range s.dups[u] {
		if v := c.Finish + s.prob.Comm(data, c.Proc, p); v < arr {
			arr = v
		}
	}
	return arr
}
