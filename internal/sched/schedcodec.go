package sched

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hdlts/internal/dag"
	"hdlts/internal/platform"
)

// jsonSchedule is the on-disk representation of a completed schedule: one
// record per task copy, ordered by (processor, start) for readability.
type jsonSchedule struct {
	Algorithm  string          `json:"algorithm,omitempty"`
	Makespan   float64         `json:"makespan"`
	Placements []jsonPlacement `json:"placements"`
}

type jsonPlacement struct {
	Task      dag.TaskID    `json:"task"`
	Name      string        `json:"name,omitempty"`
	Proc      platform.Proc `json:"proc"`
	Start     float64       `json:"start"`
	Finish    float64       `json:"finish"`
	Duplicate bool          `json:"duplicate,omitempty"`
}

// WriteScheduleJSON serialises a completed schedule (placements of every
// task copy plus the makespan) as indented JSON. The problem itself is not
// embedded — pair the file with the problem JSON it was computed from.
func (s *Schedule) WriteScheduleJSON(w io.Writer, algorithm string) error {
	if !s.Complete() {
		return fmt.Errorf("sched: cannot serialise an incomplete schedule (%d/%d placed)", s.NumPlaced(), s.prob.NumTasks())
	}
	js := jsonSchedule{Algorithm: algorithm, Makespan: s.Makespan()}
	for t := 0; t < s.prob.NumTasks(); t++ {
		for _, c := range s.Copies(dag.TaskID(t)) {
			js.Placements = append(js.Placements, jsonPlacement{
				Task: c.Task, Name: s.prob.G.Task(c.Task).Name,
				Proc: c.Proc, Start: c.Start, Finish: c.Finish, Duplicate: c.Duplicate,
			})
		}
	}
	sort.Slice(js.Placements, func(i, j int) bool {
		a, b := js.Placements[i], js.Placements[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Task < b.Task
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// ReadScheduleJSON reconstructs a schedule for the given problem from a
// file written by WriteScheduleJSON. The reconstruction re-applies every
// placement through the normal mutation path, so overlaps and double
// placements are rejected; call Validate afterwards for full precedence
// checking. It returns the algorithm name recorded in the file.
func ReadScheduleJSON(pr *Problem, r io.Reader) (*Schedule, string, error) {
	var js jsonSchedule
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, "", fmt.Errorf("sched: decode schedule: %w", err)
	}
	s := NewSchedule(pr)
	for _, p := range js.Placements {
		if int(p.Task) < 0 || int(p.Task) >= pr.NumTasks() {
			return nil, "", fmt.Errorf("sched: placement references unknown task %d", p.Task)
		}
		if int(p.Proc) < 0 || int(p.Proc) >= pr.NumProcs() {
			return nil, "", fmt.Errorf("sched: placement references unknown processor %d", p.Proc)
		}
		var err error
		if p.Duplicate {
			err = s.PlaceDuplicate(p.Task, p.Proc, p.Start)
		} else {
			err = s.Place(p.Task, p.Proc, p.Start)
		}
		if err != nil {
			return nil, "", err
		}
		// Cross-check the recorded finish against the cost matrix.
		want := p.Start + pr.Exec(p.Task, p.Proc)
		if diff := p.Finish - want; diff > eps || diff < -eps {
			return nil, "", fmt.Errorf("sched: task %d finish %g inconsistent with costs (want %g)", p.Task, p.Finish, want)
		}
	}
	if !s.Complete() {
		return nil, "", fmt.Errorf("sched: schedule file covers %d of %d tasks", s.NumPlaced(), pr.NumTasks())
	}
	if diff := js.Makespan - s.Makespan(); diff > eps || diff < -eps {
		return nil, "", fmt.Errorf("sched: recorded makespan %g does not match reconstructed %g", js.Makespan, s.Makespan())
	}
	return s, js.Algorithm, nil
}
